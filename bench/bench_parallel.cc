// Shard-sweep benchmarks for the conservative parallel engine. Both
// benchmarks build the SAME clustered internetwork — K clusters of
// (hosts + gateway), clusters coupled only by wide-area links with 10ms
// of propagation (the lookahead) — and sweep the shard count over
// 1/2/4/8 with one OS thread per shard:
//
//   BM_ParallelPps  — constant-bit-rate datagram traffic inside every
//                     cluster plus sparse cross-cluster flows; items/sec
//                     is aggregate simulated packet deliveries per
//                     wall-clock second.
//   BM_ManyFlows    — one bulk TCP transfer per cluster (intra-cluster)
//                     plus cross-cluster voice; the transport-heavy mix.
//
// With 1 shard the ParallelSimulator degenerates to the plain engine plus
// a trivial driver loop, so the sweep's shards=1 row is the fair
// sequential baseline for the speedup ratio. The aggregate-throughput
// gate (>= 2.5x at 4 shards) only has meaning on a machine with >= 4
// schedulable cores; the `bench` target records whatever the current box
// provides, and CHANGES.md states the core count next to the numbers.
//
// Run via the `bench` target, which emits BENCH_parallel.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/bulk.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"
#include "sim/parallel.h"
#include "udp/udp.h"

namespace {

using namespace catenet;

constexpr std::uint32_t kClusters = 8;
constexpr std::uint32_t kHostsPerCluster = 2;

struct Fixture {
    std::unique_ptr<sim::ParallelSimulator> psim;
    std::unique_ptr<core::Internetwork> net;
    std::vector<core::Host*> hosts;     // kClusters * kHostsPerCluster
    std::vector<core::Gateway*> gws;    // kClusters
};

// K clusters, cluster c in shard c % shards; a ring of 10ms wide-area
// links between neighboring clusters. The partitioner would produce the
// same assignment (the wide links are the only cuttable high-latency
// edges); spelling it out keeps the bench self-describing.
Fixture build(std::size_t shards) {
    Fixture f;
    f.psim = std::make_unique<sim::ParallelSimulator>(shards, /*threads=*/0);
    f.net = std::make_unique<core::Internetwork>(4242, *f.psim);
    link::LinkParams wide = link::presets::ethernet_hop();
    wide.propagation_delay = sim::milliseconds(10);
    for (std::uint32_t c = 0; c < kClusters; ++c) {
        const auto shard = static_cast<std::uint32_t>(c % shards);
        auto& g = f.net->add_gateway("g" + std::to_string(c), shard);
        f.gws.push_back(&g);
        for (std::uint32_t h = 0; h < kHostsPerCluster; ++h) {
            auto& host = f.net->add_host(
                "h" + std::to_string(c) + "_" + std::to_string(h), shard);
            f.net->connect(host, g, link::presets::ethernet_hop());
            f.hosts.push_back(&host);
        }
    }
    for (std::uint32_t c = 0; c < kClusters; ++c) {
        f.net->connect(*f.gws[c], *f.gws[(c + 1) % kClusters], wide);
    }
    f.net->use_static_routes();
    return f;
}

// Constant-bit-rate proto-253 datagram source: one packet every `period`
// per sender, re-armed from inside the engine so the whole run is one
// run_for call.
class CbrSource {
public:
    CbrSource(core::Host& from, util::Ipv4Address to, sim::Time period)
        : from_(from), to_(to), period_(period), payload_(512, 0xcb) {}

    void start() { tick(); }

private:
    void tick() {
        from_.ip().send(253, to_, payload_);
        from_.simulator().schedule_after(period_, [this] { tick(); });
    }

    core::Host& from_;
    util::Ipv4Address to_;
    sim::Time period_;
    std::vector<std::uint8_t> payload_;
};

void BM_ParallelPps(benchmark::State& state) {
    const auto shards = static_cast<std::size_t>(state.range(0));
    std::uint64_t total_delivered = 0;
    double sim_seconds = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Fixture f = build(shards);
        // One counter per host: hosts in different shards deliver from
        // different threads, so a shared counter would be a data race.
        std::vector<std::uint64_t> per_host(f.hosts.size(), 0);
        for (std::size_t i = 0; i < f.hosts.size(); ++i) {
            auto* slot = &per_host[i];
            f.hosts[i]->ip().register_protocol(
                253, [slot](const ip::Ipv4Header&,
                            std::span<const std::uint8_t>,
                            std::size_t) { ++*slot; });
        }
        std::vector<std::unique_ptr<CbrSource>> sources;
        // Dense intra-cluster traffic: each cluster's host 0 floods host 1.
        for (std::uint32_t c = 0; c < kClusters; ++c) {
            sources.push_back(std::make_unique<CbrSource>(
                *f.hosts[c * kHostsPerCluster],
                f.hosts[c * kHostsPerCluster + 1]->address(),
                sim::microseconds(200)));
        }
        // Sparse cross-cluster traffic keeps the boundary channels honest.
        for (std::uint32_t c = 0; c < kClusters; ++c) {
            sources.push_back(std::make_unique<CbrSource>(
                *f.hosts[c * kHostsPerCluster + 1],
                f.hosts[((c + 1) % kClusters) * kHostsPerCluster]->address(),
                sim::milliseconds(20)));
        }
        for (auto& s : sources) s->start();
        // Warm pools and rings outside the timed region.
        f.net->run_for(sim::milliseconds(50));
        state.ResumeTiming();

        f.net->run_for(sim::seconds(2));

        state.PauseTiming();
        for (const auto d : per_host) total_delivered += d;
        sim_seconds += 2.0;
        state.ResumeTiming();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total_delivered));
    state.counters["shards"] = static_cast<double>(shards);
    state.counters["sim_pps"] =
        sim_seconds > 0 ? static_cast<double>(total_delivered) / sim_seconds : 0;
}
BENCHMARK(BM_ParallelPps)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_ManyFlows(benchmark::State& state) {
    const auto shards = static_cast<std::size_t>(state.range(0));
    std::uint64_t total_bytes = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Fixture f = build(shards);
        std::vector<std::unique_ptr<app::BulkServer>> servers;
        std::vector<std::unique_ptr<app::BulkSender>> senders;
        for (std::uint32_t c = 0; c < kClusters; ++c) {
            auto* src = f.hosts[c * kHostsPerCluster];
            auto* dst = f.hosts[c * kHostsPerCluster + 1];
            servers.push_back(std::make_unique<app::BulkServer>(*dst, 21));
            senders.push_back(std::make_unique<app::BulkSender>(
                *src, dst->address(), 21, 512 * 1024));
            senders.back()->start();
        }
        std::vector<std::unique_ptr<app::VoiceOverUdp>> voices;
        for (std::uint32_t c = 0; c < kClusters; ++c) {
            voices.push_back(std::make_unique<app::VoiceOverUdp>(
                *f.hosts[c * kHostsPerCluster + 1],
                *f.hosts[((c + 1) % kClusters) * kHostsPerCluster],
                static_cast<std::uint16_t>(7000 + c)));
            voices.back()->start(sim::seconds(5));
        }
        state.ResumeTiming();

        f.net->run_for(sim::seconds(6));

        state.PauseTiming();
        for (const auto& s : servers) total_bytes += s->total_bytes_received();
        state.ResumeTiming();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(total_bytes));
    state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ManyFlows)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
