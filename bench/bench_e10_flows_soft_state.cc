// E10 — "Flows and soft state" (the paper's closing proposal).
//
// Claim: the datagram was the right building block for survivability, but
// it hides resource usage from gateways; "a new building block ... the
// flow ... [would let] gateways ... maintain state about individual flows
// — but that state would be *soft*: derived from the traffic, discardable
// on crash, rebuilt on the fly" (the paper's "soft state" coinage).
//
// Setup: a 512 kbit/s bottleneck carries one low-rate voice flow against
// three greedy TCP transfers. The bottleneck queue is the variable:
//   FIFO         — the 1988 reality (drop-tail, flow-blind)
//   priority/ToS — service classes from the ToS byte (goal-2 machinery)
//   fair (DRR)   — per-flow soft state in the gateway
// We also crash/restore the gateway under fair queuing to show the flow
// state rebuilding itself from traffic.
#include "app/bulk.h"
#include "app/voice.h"
#include "common.h"
#include "core/flow.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

enum class QueueKind { Fifo, Priority, Fair };

struct E10Result {
    app::VoiceReport voice;
    std::vector<double> tcp_kbps;
    double fairness;
    std::size_t peak_flow_state = 0;
};

E10Result run(QueueKind kind, bool crash_gateway) {
    core::Internetwork net(1010);
    core::Host& voice_src = net.add_host("v-src");
    core::Host& voice_dst = net.add_host("v-dst");
    core::Host& bulk_src = net.add_host("b-src");
    core::Host& bulk_dst = net.add_host("b-dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");

    link::LinkParams bottleneck = link::presets::leased_line();
    bottleneck.bits_per_second = 512'000;
    bottleneck.queue_capacity_packets = 48;
    net.connect(voice_src, g1, link::presets::ethernet_hop());
    net.connect(bulk_src, g1, link::presets::ethernet_hop());
    const auto b_link = net.connect(g1, g2, bottleneck);
    net.connect(g2, voice_dst, link::presets::ethernet_hop());
    net.connect(g2, bulk_dst, link::presets::ethernet_hop());
    net.use_static_routes();

    // Install the queue discipline on the bottleneck's g1-side egress.
    auto& link = net.link(b_link);
    link::FairQueue* fair_queue = nullptr;
    if (kind == QueueKind::Priority) {
        // Two levels by the IP ToS low-delay bit.
        link.set_queue_a(std::make_unique<link::PriorityQueue>(
            2, 24, [](const link::Packet& p) -> std::uint64_t {
                auto key = core::classify_packet(p.bytes);
                return (key && (key->tos & 0x10)) ? 0 : 1;
            }));
    } else if (kind == QueueKind::Fair) {
        auto q = std::make_unique<link::FairQueue>(
            12, 1500, [](const link::Packet& p) -> std::uint64_t {
                auto key = core::classify_packet(p.bytes);
                return key ? key->hash() : 0;
            });
        fair_queue = q.get();
        link.set_queue_a(std::move(q));
    }

    constexpr auto kRun = sim::seconds(60);
    std::vector<std::unique_ptr<app::BulkServer>> servers;
    std::vector<std::unique_ptr<app::BulkSender>> senders;
    for (int i = 0; i < 3; ++i) {
        const auto port = static_cast<std::uint16_t>(21 + i);
        servers.push_back(std::make_unique<app::BulkServer>(bulk_dst, port));
        senders.push_back(std::make_unique<app::BulkSender>(
            bulk_src, bulk_dst.address(), port, 512ull * 1024 * 1024));
        senders.back()->start();
    }

    app::VoiceConfig vc;
    vc.tos = 0x10;
    app::VoiceOverUdp call(voice_src, voice_dst, 5004, vc);
    call.start(kRun);

    E10Result out;
    if (crash_gateway) {
        net.run_for(sim::seconds(20));
        g1.set_down(true);   // all soft state (incl. queue contents) gone
        net.run_for(sim::seconds(2));
        g1.set_down(false);  // nothing to restore: state rebuilds from traffic
    }
    // Sample peak fair-queue flow state while running.
    for (int tick = 0; tick < 60; ++tick) {
        net.run_for(sim::seconds(1));
        if (fair_queue != nullptr) {
            out.peak_flow_state = std::max(out.peak_flow_state, fair_queue->active_flows());
        }
    }
    net.run_for(sim::seconds(10));

    out.voice = call.report();
    for (auto& server : servers) {
        out.tcp_kbps.push_back(static_cast<double>(server->total_bytes_received()) * 8 /
                               1000 / kRun.seconds());
    }
    out.fairness = jain_index(out.tcp_kbps);
    return out;
}

std::string row_label(QueueKind kind) {
    switch (kind) {
        case QueueKind::Fifo: return "FIFO drop-tail (1988)";
        case QueueKind::Priority: return "ToS priority";
        case QueueKind::Fair: return "fair queue (flow soft state)";
    }
    return "?";
}

}  // namespace

int main() {
    banner("E10 — flows and soft state in gateways",
           "datagram gateways are blind to conversations; per-flow soft "
           "state (fair queuing keyed on the 5-tuple) protects low-rate "
           "real-time flows and evens out greedy ones, while remaining "
           "discardable on crash with no setup protocol");

    std::printf("[voice (64 kb/s, ToS low-delay) vs 3 greedy TCPs over 512 kb/s]\n");
    Table t({"bottleneck queue", "voice usable %", "voice p99 ms", "voice lost %",
             "TCP kb/s (3 flows)", "Jain fairness", "peak flow state"});
    for (QueueKind kind : {QueueKind::Fifo, QueueKind::Priority, QueueKind::Fair}) {
        const auto r = run(kind, /*crash_gateway=*/false);
        t.row({row_label(kind), fmt(r.voice.usable_fraction * 100, 1),
               fmt(r.voice.p99_latency_ms, 1), fmt(r.voice.loss_fraction * 100, 2),
               fmt(r.tcp_kbps[0], 0) + "/" + fmt(r.tcp_kbps[1], 0) + "/" +
                   fmt(r.tcp_kbps[2], 0),
               fmt(r.fairness, 3),
               kind == QueueKind::Fair ? std::to_string(r.peak_flow_state) : "-"});
    }
    t.print();

    std::printf("\n[soft-state resilience: crash the fair-queuing gateway at t=20s for 2s]\n");
    const auto crashed = run(QueueKind::Fair, /*crash_gateway=*/true);
    Table c({"scenario", "voice usable %", "voice p99 ms", "Jain fairness"});
    const auto clean = run(QueueKind::Fair, false);
    c.row({"no crash", fmt(clean.voice.usable_fraction * 100, 1),
           fmt(clean.voice.p99_latency_ms, 1), fmt(clean.fairness, 3)});
    c.row({"crash+restart", fmt(crashed.voice.usable_fraction * 100, 1),
           fmt(crashed.voice.p99_latency_ms, 1), fmt(crashed.fairness, 3)});
    c.print();

    verdict(
        "under FIFO the voice flow drowns in the bulk queues (long tail, "
        "drops); ToS priority rescues latency using only the 1981 header "
        "bits; flow-grain fair queuing both protects voice and equalizes "
        "the TCPs — with only a handful of soft flow records that the "
        "crash test shows being rebuilt from traffic alone, no "
        "connection-setup protocol anywhere. This is the paper's proposed "
        "'next building block' working as advertised.");
    return 0;
}
