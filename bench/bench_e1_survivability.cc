// E1 — Survivability (the paper's goal #1).
//
// Claim: "Internet communication must continue despite loss of networks or
// gateways ... at the top of the list, it was clear [the connection]
// should be able to continue without having to reestablish or reset the
// high level state of their conversation."
//
// Setup: a bulk transfer crosses a redundant internet; at time T the
// on-path gateway is destroyed. Under the datagram architecture with
// dynamic routing, the transfer must complete with a bounded stall and no
// application-visible event. Under the virtual-circuit baseline, the call
// is cleared and all session state is lost.
#include "app/bulk.h"
#include "common.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "vc/network.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

struct DatagramResult {
    bool completed;
    double transfer_s;
    double stall_s;
    std::uint64_t retransmits;
};

DatagramResult run_datagram(double fail_at_s, bool with_failure) {
    core::Internetwork net(1001);
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Gateway& g3 = net.add_gateway("g3");
    core::Gateway& g4 = net.add_gateway("g4");
    const auto fast = link::presets::ethernet_hop();
    net.connect(src, g1, fast);
    net.connect(g1, g2, fast);
    net.connect(g2, g4, fast);
    net.connect(g1, g3, fast);
    net.connect(g3, g4, fast);
    net.connect(g4, dst, fast);
    routing::DvConfig dv;
    dv.period = sim::seconds(2);
    dv.route_timeout = sim::seconds(7);
    net.enable_dynamic_routing(dv);
    net.run_for(sim::seconds(15));

    constexpr std::uint64_t kBytes = 12ull * 1024 * 1024;
    app::BulkServer server(dst, 21);
    app::BulkSender sender(src, dst.address(), 21, kBytes);
    StallTracker stall(net.sim(), [&] { return server.total_bytes_received(); }, kBytes);
    const auto t0 = net.sim().now();
    sender.start();
    if (with_failure) {
        net.run_for(sim::from_seconds(fail_at_s));
        g2.set_down(true);
    }
    net.run_for(sim::seconds(400));

    DatagramResult r;
    r.completed = sender.finished();
    r.transfer_s = r.completed ? (sender.finish_time() - t0).seconds() : -1.0;
    r.stall_s = stall.longest_stall().seconds();
    r.retransmits = sender.socket_stats().retransmitted_segments;
    return r;
}

struct VcResult {
    bool survived;
    double bytes_delivered;
};

VcResult run_vc(double fail_at_s) {
    sim::Simulator sim;
    vc::VcNetwork net(sim, 1001);
    const auto s1 = net.add_switch("s1");
    const auto s2 = net.add_switch("s2");
    const auto s3 = net.add_switch("s3");   // redundancy exists in the graph...
    const auto s4 = net.add_switch("s4");
    const auto h1 = net.add_host(1, "src");
    const auto h2 = net.add_host(2, "dst");
    const auto fast = link::presets::ethernet_hop();
    net.connect_host(h1, s1, fast);
    net.connect_switches(s1, s2, fast);
    net.connect_switches(s2, s4, fast);
    net.connect_switches(s1, s3, fast);
    net.connect_switches(s3, s4, fast);
    net.connect_host(h2, s4, fast);
    net.compute_routes();  // ...but the circuit is pinned at setup time

    std::uint64_t delivered = 0;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<vc::VcCall> call) {
        call->on_data = [&](std::span<const std::uint8_t> d) { delivered += d.size(); };
    });
    auto call = net.host_at(h1).place_call(2);
    bool cleared = false;
    call->on_cleared = [&](std::uint8_t) { cleared = true; };

    // Paced source: 64 kB/s while the call lives.
    sim::PeriodicTimer source(sim, [&] {
        if (call->state() == vc::CallState::Connected) {
            call->send(util::ByteBuffer(1024, 0x42));
        }
    });
    source.start(sim::milliseconds(16));

    sim.run_until(sim::from_seconds(fail_at_s));
    net.fail_switch(s2);
    sim.run_until(sim::from_seconds(fail_at_s) + sim::seconds(120));
    source.stop();

    return VcResult{!cleared, static_cast<double>(delivered)};
}

}  // namespace

int main() {
    banner("E1 — survivability under gateway loss",
           "datagram+fate-sharing keeps transport connections alive across "
           "gateway destruction; connection-oriented networks lose the call");

    std::printf("[datagram architecture: 12 MiB transfer, on-path gateway killed]\n");
    Table dg({"fail at (s)", "completed", "transfer (s)", "stall (s)", "rexmit segs"});
    const auto baseline = run_datagram(0, /*with_failure=*/false);
    dg.row({"never", baseline.completed ? "yes" : "NO", fmt(baseline.transfer_s),
            fmt(baseline.stall_s), fmt_u(baseline.retransmits)});
    for (double t : {2.0, 5.0, 8.0, 12.0}) {
        const auto r = run_datagram(t, true);
        dg.row({fmt(t, 0), r.completed ? "yes" : "NO", fmt(r.transfer_s),
                fmt(r.stall_s), fmt_u(r.retransmits)});
    }
    dg.print();

    std::printf("\n[virtual-circuit baseline: same redundant topology, same drama]\n");
    Table vc({"fail at (s)", "call survived", "bytes before clear"});
    for (double t : {2.0, 5.0, 8.0, 12.0}) {
        const auto r = run_vc(t);
        vc.row({fmt(t, 0), r.survived ? "YES (?!)" : "no", fmt(r.bytes_delivered, 0)});
    }
    vc.print();

    verdict(
        "every datagram transfer completes despite the kill, with a stall "
        "bounded by routing reconvergence (seconds) and zero application "
        "involvement; every virtual circuit dies with the switch even though "
        "a physical detour existed. Matches the paper's goal-1 argument.");
    return 0;
}
