// E2 — Types of service (the paper's goal #2).
//
// Claim: one transport cannot serve both the reliable/throughput service
// (file transfer) and the low-latency/loss-tolerant services (remote
// login, packet voice, XNET). "It was decided ... to take the unreliable
// datagram service and make it available directly" — hence the TCP/IP
// split and UDP.
//
// Setup: a 256 kbit/s bottleneck carries three concurrent applications:
// bulk TCP, an interactive typist, and a voice call. The voice call runs
// once over UDP and once forced through TCP.
#include "app/bulk.h"
#include "app/interactive.h"
#include "app/request_response.h"
#include "app/voice.h"
#include "common.h"
#include "core/flow.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "link/queue.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

struct Scenario {
    // Measurements.
    double bulk_goodput_kbps = 0;
    double key_rtt_p50 = 0;
    double key_rtt_p99 = 0;
    app::VoiceReport voice;
};

Scenario run(bool voice_over_tcp, bool with_cross_traffic) {
    core::Internetwork net(2002);
    core::Host& user = net.add_host("user");
    core::Host& server = net.add_host("server");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");

    link::LinkParams bottleneck = link::presets::leased_line();
    bottleneck.bits_per_second = 256'000;
    bottleneck.queue_capacity_packets = 20;
    net.connect(user, g1, link::presets::ethernet_hop());
    net.connect(g1, g2, bottleneck);
    net.connect(g2, server, link::presets::ethernet_hop());
    net.use_static_routes();

    constexpr auto kRun = sim::seconds(60);

    // Bulk transfer (cross traffic).
    app::BulkServer bulk_server(server, 21);
    app::BulkSender bulk(user, server.address(), 21, 64ull * 1024 * 1024);
    if (with_cross_traffic) bulk.start();

    // Interactive typist.
    app::EchoServer echo(server, 23);
    app::InteractiveConfig ic;
    ic.mean_interkey = sim::milliseconds(200);
    ic.tcp.nagle = false;
    app::InteractiveClient typist(user, server.address(), 23, ic);
    typist.start();

    Scenario out;
    if (voice_over_tcp) {
        app::VoiceOverTcp call(user, server, 5004);
        call.start(kRun);
        net.run_for(kRun + sim::seconds(10));
        out.voice = call.report();
    } else {
        app::VoiceOverUdp call(user, server, 5004);
        call.start(kRun);
        net.run_for(kRun + sim::seconds(10));
        out.voice = call.report();
    }
    typist.stop();

    out.bulk_goodput_kbps =
        static_cast<double>(bulk_server.total_bytes_received()) * 8.0 / 1000.0 /
        kRun.seconds();
    out.key_rtt_p50 = typist.echo_rtts_ms().median();
    out.key_rtt_p99 = typist.echo_rtts_ms().percentile(99);
    return out;
}

// --- part 2: military precedence (the paper's other goal-2 clientele) ----

struct PrecedenceResult {
    double p50_ms;
    double p99_ms;
    std::uint64_t served;
};

PrecedenceResult run_precedence(bool precedence_queue) {
    core::Internetwork net(2003);
    core::Host& commander = net.add_host("commander");
    core::Host& clerk = net.add_host("clerk");
    core::Host& hq = net.add_host("hq");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    link::LinkParams thin = link::presets::leased_line();
    thin.bits_per_second = 128'000;
    thin.queue_capacity_packets = 30;
    net.connect(commander, g1, link::presets::ethernet_hop());
    net.connect(clerk, g1, link::presets::ethernet_hop());
    const auto bl = net.connect(g1, g2, thin);
    net.connect(g2, hq, link::presets::ethernet_hop());
    net.use_static_routes();
    if (precedence_queue) {
        net.link(bl).set_queue_a(std::make_unique<link::PriorityQueue>(
            2, 15, [](const link::Packet& p) -> std::uint64_t {
                auto key = core::classify_packet(p.bytes);
                return (key && (key->tos & 0b1110'0000) != 0) ? 0 : 1;
            }));
    }

    tcp::TcpConfig routine;
    app::BulkServer files(hq, 21, routine);
    app::BulkSender upload(clerk, hq.address(), 21, 512ull * 1024 * 1024, routine);
    upload.start();

    tcp::TcpConfig command;
    command.tos = 0b1000'0000;  // FLASH OVERRIDE
    command.nagle = false;
    app::RpcServer c2_server(hq, 111, command);
    app::RpcClientConfig rpc;
    rpc.tcp = command;
    rpc.response_bytes = 64;
    rpc.mean_interarrival = sim::milliseconds(250);
    app::RpcClient c2(commander, hq.address(), 111, rpc);
    c2.start();
    net.run_for(sim::seconds(60));
    c2.stop();

    return PrecedenceResult{c2.latencies_ms().median(), c2.latencies_ms().percentile(99),
                            c2.responses_received()};
}

}  // namespace

int main() {
    banner("E2 — multiple types of service over one datagram layer",
           "reliable-sequenced delivery (TCP) suits bulk transfer; remote "
           "login needs low delay; voice must trade reliability for "
           "timeliness (UDP) — one unified reliable transport cannot serve "
           "all three");

    const auto quiet = run(/*voice_over_tcp=*/false, /*with_cross_traffic=*/false);
    const auto udp = run(false, true);
    const auto tcp = run(true, true);

    std::printf("[60 s run; voice playout budget 150 ms; 256 kbit/s bottleneck]\n");
    Table t({"scenario", "bulk kb/s", "key p50 ms", "key p99 ms", "voice usable %",
             "voice lost %", "voice p99 ms"});
    t.row({"idle net, voice/UDP", fmt(quiet.bulk_goodput_kbps, 0), fmt(quiet.key_rtt_p50, 1),
           fmt(quiet.key_rtt_p99, 1), fmt(quiet.voice.usable_fraction * 100, 1),
           fmt(quiet.voice.loss_fraction * 100, 2), fmt(quiet.voice.p99_latency_ms, 1)});
    t.row({"loaded, voice/UDP", fmt(udp.bulk_goodput_kbps, 0), fmt(udp.key_rtt_p50, 1),
           fmt(udp.key_rtt_p99, 1), fmt(udp.voice.usable_fraction * 100, 1),
           fmt(udp.voice.loss_fraction * 100, 2), fmt(udp.voice.p99_latency_ms, 1)});
    t.row({"loaded, voice/TCP", fmt(tcp.bulk_goodput_kbps, 0), fmt(tcp.key_rtt_p50, 1),
           fmt(tcp.key_rtt_p99, 1), fmt(tcp.voice.usable_fraction * 100, 1),
           fmt(tcp.voice.loss_fraction * 100, 2), fmt(tcp.voice.p99_latency_ms, 1)});
    t.print();

    std::printf(
        "\n[part 2: military precedence — command RPCs (FLASH OVERRIDE ToS) vs a\n"
        " routine bulk upload saturating a 128 kbit/s line]\n");
    Table p({"bottleneck queue", "C2 RPC p50 ms", "C2 RPC p99 ms", "RPCs served"});
    const auto fifo = run_precedence(false);
    p.row({"FIFO (ToS ignored)", fmt(fifo.p50_ms, 1), fmt(fifo.p99_ms, 1),
           fmt_u(fifo.served)});
    const auto prio = run_precedence(true);
    p.row({"precedence queue", fmt(prio.p50_ms, 1), fmt(prio.p99_ms, 1),
           fmt_u(prio.served)});
    p.print();

    verdict(
        "bulk transfer fills the pipe in every case (TCP's job). Voice over "
        "UDP loses a few frames under load but keeps its latency tail short; "
        "the identical stream through TCP loses nothing yet delivers a "
        "longer tail and fewer on-time frames — retransmission converts loss "
        "into lateness, which is the wrong trade for speech. This is the "
        "paper's case for splitting TCP from IP and exposing datagrams. And "
        "the precedence table is goal 2's military half: the 1981 ToS bits "
        "plus a priority queue keep command traffic responsive through "
        "saturation.");
    return 0;
}
