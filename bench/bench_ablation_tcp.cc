// Ablations — what each era-defining TCP mechanism buys.
//
// The paper's architecture left reliability entirely to the host (goal 6),
// and the late-80s mechanisms this library implements — Jacobson
// congestion control, Karn/Jacobson adaptive retransmission, fast
// retransmit, Nagle, delayed ACKs — are exactly the "good implementation"
// it says hosts must supply. Each is switchable in TcpConfig; this bench
// turns them off one at a time under the workload they exist for.
#include "app/bulk.h"
#include "app/interactive.h"
#include "common.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

// --- Nagle: tinygram suppression on an interactive stream ----------------

void ablate_nagle() {
    // Typing must outpace the RTT for Nagle to have anything to batch:
    // ~100 keys/s (paste-rate) across a 200 ms RTT long-haul path.
    std::printf("[Nagle's algorithm — 60 s paste at ~100 keys/s, 200 ms RTT]\n");
    Table t({"nagle", "keystrokes", "segments sent", "segments/key", "echo p50 ms"});
    for (bool nagle : {true, false}) {
        core::Internetwork net(11001);
        core::Host& a = net.add_host("a");
        core::Host& b = net.add_host("b");
        link::LinkParams params = link::presets::ethernet_hop();
        params.propagation_delay = sim::milliseconds(100);
        net.connect(a, b, params);
        net.use_static_routes();
        app::EchoServer server(b, 23);
        app::InteractiveConfig ic;
        ic.mean_interkey = sim::milliseconds(10);
        ic.tcp.nagle = nagle;
        app::InteractiveClient client(a, b.address(), 23, ic);
        client.start();
        net.run_for(sim::seconds(60));
        client.stop();
        // Count client-side data segments via the socket stats exposed
        // through the stack aggregate: use keystrokes vs segments.
        const auto keys = client.keystrokes_sent();
        const auto segs = a.tcp().stats().connections_opened;  // placeholder guard
        (void)segs;
        // The client socket is private to InteractiveClient; use the
        // host-level IP datagram count as the tinygram proxy.
        const auto sent = a.ip().stats().datagrams_sent;
        t.row({nagle ? "on" : "off", fmt_u(keys), fmt_u(sent),
               fmt(static_cast<double>(sent) / static_cast<double>(keys), 2),
               fmt(client.echo_rtts_ms().median(), 1)});
    }
    t.print();
    std::printf("note: Nagle trades one extra RTT of echo latency at paste "
                "rates for a ~20x\nreduction in segments — the tinygram "
                "protection the 40-byte header tax (E5)\nmakes necessary.\n\n");
}

// --- delayed ACK: ack traffic on a bulk stream -----------------------------

void ablate_delayed_ack() {
    std::printf("[delayed ACKs — 2 MiB bulk transfer, receiver's ack count]\n");
    Table t({"delayed ack", "data segments", "acks sent by receiver", "acks/segment"});
    for (bool delayed : {true, false}) {
        core::Internetwork net(11002);
        core::Host& a = net.add_host("a");
        core::Host& b = net.add_host("b");
        net.connect(a, b, link::presets::ethernet_hop());
        net.use_static_routes();
        tcp::TcpConfig cfg;
        cfg.delayed_ack = delayed;
        app::BulkServer server(b, 21, cfg);
        app::BulkSender sender(a, b.address(), 21, 2ull * 1024 * 1024, cfg);
        sender.start();
        net.run_for(sim::seconds(60));
        const auto data_segs = sender.socket_stats().segments_sent;
        // Receiver's segments = acks (it sends no data).
        const auto acks = b.ip().stats().datagrams_sent;
        t.row({delayed ? "on" : "off", fmt_u(data_segs), fmt_u(acks),
               fmt(static_cast<double>(acks) / static_cast<double>(data_segs), 2)});
    }
    t.print();
    std::printf("\n");
}

// --- congestion control: sharing a bottleneck -------------------------------

void ablate_congestion_control() {
    std::printf("[congestion control — 2 senders, 512 kbit/s bottleneck, 60 s]\n");
    Table t({"cc", "goodput A+B kb/s", "gateway queue drops", "wire waste %"});
    for (bool cc : {true, false}) {
        core::Internetwork net(11003);
        core::Host& a = net.add_host("a");
        core::Host& b = net.add_host("b");
        core::Host& dst = net.add_host("dst");
        core::Gateway& g1 = net.add_gateway("g1");
        core::Gateway& g2 = net.add_gateway("g2");
        link::LinkParams bottleneck = link::presets::leased_line();
        bottleneck.bits_per_second = 512'000;
        bottleneck.queue_capacity_packets = 16;
        net.connect(a, g1, link::presets::ethernet_hop());
        net.connect(b, g1, link::presets::ethernet_hop());
        const auto bl = net.connect(g1, g2, bottleneck);
        net.connect(g2, dst, link::presets::ethernet_hop());
        net.use_static_routes();
        tcp::TcpConfig cfg;
        cfg.congestion_control = cc;
        app::BulkServer s1(dst, 21, cfg);
        app::BulkServer s2(dst, 22, cfg);
        app::BulkSender f1(a, dst.address(), 21, 512ull * 1024 * 1024, cfg);
        app::BulkSender f2(b, dst.address(), 22, 512ull * 1024 * 1024, cfg);
        f1.start();
        f2.start();
        net.run_for(sim::seconds(60));
        const double goodput =
            (static_cast<double>(s1.total_bytes_received()) +
             static_cast<double>(s2.total_bytes_received())) * 8 / 1000 / 60;
        const auto drops = net.link(bl).queue_a().stats().dropped;
        const auto& st1 = f1.socket_stats();
        const auto& st2 = f2.socket_stats();
        const double first = static_cast<double>(st1.bytes_sent + st2.bytes_sent);
        const double redo =
            static_cast<double>(st1.retransmitted_bytes + st2.retransmitted_bytes);
        t.row({cc ? "on" : "off", fmt(goodput, 0), fmt_u(drops),
               fmt(100.0 * redo / (first + redo), 1)});
    }
    t.print();
    std::printf("\n");
}

// --- adaptive RTO: long-delay path --------------------------------------------

void ablate_adaptive_rto() {
    std::printf("[adaptive RTO (Jacobson/Karn) — 256 kB over satellite, 2%% loss]\n");
    Table t({"rto", "completed", "time s", "rexmit segs", "spurious factor"});
    for (bool adaptive : {true, false}) {
        core::Internetwork net(11004);
        core::Host& a = net.add_host("a");
        core::Host& b = net.add_host("b");
        link::LinkParams params = link::presets::satellite();
        params.drop_probability = 0.02;
        net.connect(a, b, params);
        net.use_static_routes();
        tcp::TcpConfig cfg;
        cfg.adaptive_rto = adaptive;
        cfg.fixed_rto = sim::milliseconds(300);  // plausible LAN guess, wrong here
        app::BulkServer server(b, 21, cfg);
        app::BulkSender sender(a, b.address(), 21, 256 * 1024, cfg);
        sender.start();
        net.run_for(sim::seconds(600));
        const auto& st = sender.socket_stats();
        // Spurious factor: retransmitted bytes relative to what the loss
        // rate alone would require.
        const double needed = 0.02 * 256 * 1024;
        t.row({adaptive ? "adaptive" : "fixed 300ms",
               sender.finished() ? "yes" : "NO",
               fmt(sender.finished()
                       ? (sender.finish_time() - sender.start_time()).seconds()
                       : -1.0, 1),
               fmt_u(st.retransmitted_segments),
               fmt(static_cast<double>(st.retransmitted_bytes) / needed, 1)});
    }
    t.print();
    std::printf("\n");
}

// --- source quench: the gateway's congestion feedback ---------------------------

void ablate_source_quench() {
    std::printf("[ICMP Source Quench — 2 senders, 256 kbit/s bottleneck, tiny "
                "8-packet queue, 60 s]\n");
    Table t({"host / quench", "goodput A+B kb/s", "queue drops", "timeouts",
             "quenches"});
    struct Config {
        bool cc;
        bool quench;
        const char* label;
    };
    const Config configs[] = {
        {true, false, "Jacobson / off"},
        {true, true, "Jacobson / on"},
        {false, false, "pre-1988 / off"},
        {false, true, "pre-1988 / on"},
    };
    for (const auto& [cc, quench, label] : configs) {
        core::Internetwork net(11006);
        core::Host& a = net.add_host("a");
        core::Host& b = net.add_host("b");
        core::Host& dst = net.add_host("dst");
        core::Gateway& g1 = net.add_gateway("g1");
        core::Gateway& g2 = net.add_gateway("g2");
        link::LinkParams bottleneck = link::presets::leased_line();
        bottleneck.bits_per_second = 256'000;
        bottleneck.queue_capacity_packets = 8;
        net.connect(a, g1, link::presets::ethernet_hop());
        net.connect(b, g1, link::presets::ethernet_hop());
        const auto bl = net.connect(g1, g2, bottleneck);
        net.connect(g2, dst, link::presets::ethernet_hop());
        net.use_static_routes();
        if (quench) g1.enable_source_quench();

        tcp::TcpConfig cfg;
        cfg.congestion_control = cc;
        cfg.fast_retransmit = cc;
        cfg.respect_source_quench = quench;
        app::BulkServer s1(dst, 21, cfg);
        app::BulkServer s2(dst, 22, cfg);
        app::BulkSender f1(a, dst.address(), 21, 512ull * 1024 * 1024, cfg);
        app::BulkSender f2(b, dst.address(), 22, 512ull * 1024 * 1024, cfg);
        f1.start();
        f2.start();
        net.run_for(sim::seconds(60));
        const double goodput =
            (static_cast<double>(s1.total_bytes_received()) +
             static_cast<double>(s2.total_bytes_received())) * 8 / 1000 / 60;
        t.row({label, fmt(goodput, 0),
               fmt_u(net.link(bl).queue_a().stats().dropped),
               fmt_u(f1.socket_stats().timeouts + f2.socket_stats().timeouts),
               fmt_u(f1.socket_stats().source_quenches +
                     f2.socket_stats().source_quenches)});
    }
    t.print();
    std::printf(
        "note: the measurement is history's verdict in miniature. With Jacobson "
        "congestion\ncontrol the quench changes nothing (loss already says the "
        "same thing at the same\ntimescale). For the pre-1988 host it is the only "
        "brake there is — and even then it\nonly shaves a few percent off the drop "
        "storm, because the un-windowed sender dumps\na fresh burst the moment the "
        "pause ends. This is why the era needed host-side\ncongestion control, not "
        "better gateway advice, and why Source Quench died.\n\n");
}

// --- fast retransmit: isolated loss in a big window ----------------------------

void ablate_fast_retransmit() {
    std::printf("[fast retransmit — 8 MiB, 40 ms RTT, 1%% loss]\n");
    Table t({"fast rexmit", "time s", "timeouts", "fast rexmits"});
    for (bool fr : {true, false}) {
        core::Internetwork net(11005);
        core::Host& a = net.add_host("a");
        core::Host& b = net.add_host("b");
        link::LinkParams params = link::presets::ethernet_hop();
        params.propagation_delay = sim::milliseconds(20);
        params.drop_probability = 0.01;
        net.connect(a, b, params);
        net.use_static_routes();
        tcp::TcpConfig cfg;
        cfg.fast_retransmit = fr;
        app::BulkServer server(b, 21, cfg);
        app::BulkSender sender(a, b.address(), 21, 8ull * 1024 * 1024, cfg);
        sender.start();
        net.run_for(sim::seconds(600));
        const auto& st = sender.socket_stats();
        t.row({fr ? "on" : "off",
               fmt(sender.finished()
                       ? (sender.finish_time() - sender.start_time()).seconds()
                       : -1.0, 1),
               fmt_u(st.timeouts), fmt_u(st.fast_retransmits)});
    }
    t.print();
}

}  // namespace

int main() {
    banner("Ablations — the host-side mechanisms the architecture relies on",
           "goal 6 put reliability in hosts; these are the mechanisms a "
           "'good host implementation' (the paper's phrase) needs, each "
           "switched off under the workload that motivates it");
    ablate_nagle();
    ablate_delayed_ack();
    ablate_congestion_control();
    ablate_adaptive_rto();
    ablate_source_quench();
    ablate_fast_retransmit();
    verdict(
        "Nagle collapses tinygram counts (at the documented cost of an RTT "
        "when the sender outruns the acks); "
        "delayed ACKs halve reverse traffic; congestion control turns an "
        "overflowing bottleneck into a shared one; a fixed LAN-tuned timer "
        "on a satellite path floods the link with spurious copies where the "
        "adaptive estimator sends almost none; fast retransmit replaces "
        "full RTO stalls with one-RTT repairs.");
    return 0;
}
