#!/bin/sh
# Segmentation-offload perf gate (DESIGN.md §12), run from ONE binary:
# CATENET_NO_OFFLOAD=1 forces the per-segment pipeline, so the two sides
# share code placement and the comparison measures exactly the offload
# machinery. Runs strictly interleaved (off, on, off, on, ...) to cancel
# box-load drift and takes the best of N rounds per side, the
# ab_compare.sh methodology.
#
# Gates (override via MIN_SPEEDUP / MAX_REGRESSION):
#   BM_TcpGoodput/1/1460   offload must be >= 1.5x faster than off
#   BM_TcpGoodput/1/536,
#   BM_TcpConnChurn        offload must stay within +3% of off
#
# Statistic: median of the per-round pairwise deltas (round i's off run
# vs round i's on run, adjacent in time) — robust to the sustained
# frequency/steal drift a shared box shows across a multi-minute run,
# which best-of-N cannot cancel. BM_ForwardPps is deliberately NOT here:
# CATENET_NO_OFFLOAD does not reach the forwarding path, so on/off runs
# identical code and can only measure box noise; its non-regression gate
# is ab_compare.sh against a pre-change worktree (see CHANGES.md PR 8).
#
#   BIN=<path to bench_engine>   [./build/bench/bench_engine]
#   ROUNDS=5 MIN_TIME=0.2 OUT=<dir> to override the usual knobs.
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
BIN=${BIN:-$SRC/build/bench/bench_engine}
ROUNDS=${ROUNDS:-5}
MIN_TIME=${MIN_TIME:-0.2}
OUT=${OUT:-$(dirname "$BIN")/gate_offload}
FILTER='BM_TcpGoodput/1/|BM_TcpConnChurn'
MIN_SPEEDUP=${MIN_SPEEDUP:-1.5}
MAX_REGRESSION=${MAX_REGRESSION:-3}

[ -x "$BIN" ] || { echo "gate_offload: $BIN not built" >&2; exit 2; }
echo "== offload gate: BM_TcpGoodput/1/1460 >= ${MIN_SPEEDUP}x, others <= +${MAX_REGRESSION}% (best of $ROUNDS) =="

mkdir -p "$OUT"
i=1
while [ "$i" -le "$ROUNDS" ]; do
    for side in off on; do
        if [ "$side" = off ]; then
            CATENET_NO_OFFLOAD=1 "$BIN" \
                --benchmark_filter="$FILTER" \
                --benchmark_min_time="$MIN_TIME" \
                --benchmark_out="$OUT/${side}_${i}.json" \
                --benchmark_out_format=json >/dev/null
        else
            "$BIN" \
                --benchmark_filter="$FILTER" \
                --benchmark_min_time="$MIN_TIME" \
                --benchmark_out="$OUT/${side}_${i}.json" \
                --benchmark_out_format=json >/dev/null
        fi
    done
    echo "round $i/$ROUNDS done"
    i=$((i + 1))
done

python3 - "$OUT" "$ROUNDS" "$MIN_SPEEDUP" "$MAX_REGRESSION" <<'EOF'
import json, statistics, sys

out, rounds = sys.argv[1], int(sys.argv[2])
min_speedup, max_regression = float(sys.argv[3]), float(sys.argv[4])
SPEEDUP_BENCH = "BM_TcpGoodput/1/1460"

def times(side):
    per = {}
    for i in range(1, rounds + 1):
        with open(f"{out}/{side}_{i}.json") as f:
            data = json.load(f)
            if i == 1 and side == "off":
                bt = data.get("context", {}).get("library_build_type")
                if bt == "debug":
                    print("WARNING: Google Benchmark library is a DEBUG build; "
                          "timings are noisier than Release (CHANGES.md "
                          "methodology note)", file=sys.stderr)
            for b in data["benchmarks"]:
                per.setdefault(b["name"], []).append(b["cpu_time"])
    return per

off, on = times("off"), times("on")
if not off:
    sys.exit("offload gate FAILED: filter matched no benchmarks")
failed = False
print(f"{'benchmark':<28} {'off (median)':>12} {'on (median)':>12} {'effect':>10}")
for name in sorted(off):
    # Median of per-round pairwise ratios: round i's two runs sat next to
    # each other in time, so sustained box drift divides out of each pair.
    ratios = [a / b for a, b in zip(off[name], on[name])]
    ratio = statistics.median(ratios)
    moff = statistics.median(off[name])
    mon = statistics.median(on[name])
    flag = ""
    if name == SPEEDUP_BENCH:
        if ratio < min_speedup:
            failed = True
            flag = f"  BELOW {min_speedup:.2f}x"
        print(f"{name:<28} {moff:>10.1f}ns {mon:>10.1f}ns {ratio:>9.2f}x{flag}")
    else:
        pct = (1.0 / ratio - 1.0) * 100.0
        if pct > max_regression:
            failed = True
            flag = f"  EXCEEDS {max_regression:.0f}%"
        print(f"{name:<28} {moff:>10.1f}ns {mon:>10.1f}ns {pct:>+9.2f}%{flag}")
if failed:
    sys.exit("offload gate FAILED")
print("offload gate OK")
EOF
