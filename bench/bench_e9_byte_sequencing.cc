// E9 — Byte sequencing vs packet sequencing (the paper's §TCP).
//
// Claim: TCP numbers bytes, not packets, because byte sequencing "permits
// the insertion of control information into the sequence space" and —
// decisive here — permits repacketization: "a packet [can] be broken up
// into smaller packets" and "a number of small packets [gathered] together
// into one larger packet" when retransmitting. A packet-sequenced protocol
// is married forever to its original packet boundaries.
//
// Setup: a tinygram-heavy workload (many small application writes) over a
// lossy path. TCP (byte seq, Nagle off so the original transmission is
// equally tiny) recovers from a timeout by rebundling the outstanding
// bytes at full MSS; the packet-sequenced ARQ must resend every original
// tinygram as-is. We count packets on the wire per delivered byte.
#include "common.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "tcp/simple_arq.h"
#include "tcp/tcp.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

struct SeqResult {
    bool completed;
    std::uint64_t packets_sent;
    std::uint64_t retransmitted;
    double wire_bytes_per_byte;
    double seconds;
};

constexpr std::size_t kWriteSize = 100;   // the application's tinygrams
constexpr std::size_t kWrites = 800;
constexpr std::uint64_t kTotal = kWriteSize * kWrites;

SeqResult run_tcp(double loss, std::uint64_t seed) {
    core::Internetwork net(seed);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(20);
    params.drop_probability = loss;
    net.connect(a, b, params);
    net.use_static_routes();

    std::uint64_t delivered = 0;
    b.tcp().listen(9, [&](std::shared_ptr<tcp::TcpSocket> s) {
        auto held = s;
        s->on_data = [&delivered, held](std::span<const std::uint8_t> d) {
            delivered += d.size();
        };
    });
    tcp::TcpConfig cfg;
    cfg.nagle = false;  // level field: first transmission is tinygrams too
    auto client = a.tcp().connect(b.address(), 9, cfg);
    std::size_t written = 0;
    // Paced writes: one tinygram per 5 ms (an instrument stream); retry
    // on send-buffer backpressure.
    sim::PeriodicTimer writer(net.sim(), [&] {
        if (written < kWrites && client->connected()) {
            const util::ByteBuffer chunk(kWriteSize, 0x31);
            if (client->send(chunk) == chunk.size()) ++written;
        }
    });
    writer.start(sim::milliseconds(5));
    net.sim().run_while([&] { return delivered < kTotal && net.sim().now() < sim::seconds(600); });
    writer.stop();

    SeqResult r;
    r.completed = delivered >= kTotal;
    r.packets_sent = client->stats().segments_sent;
    r.retransmitted = client->stats().retransmitted_segments;
    r.wire_bytes_per_byte =
        static_cast<double>(net.total_link_bytes()) / static_cast<double>(kTotal);
    r.seconds = net.sim().now().seconds();
    return r;
}

SeqResult run_packet_seq(double loss, std::uint64_t seed) {
    core::Internetwork net(seed);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(20);
    params.drop_probability = loss;
    net.connect(a, b, params);
    net.use_static_routes();

    std::uint64_t delivered = 0;
    b.arq().listen(9, [&](util::Ipv4Address, std::uint16_t,
                          std::span<const std::uint8_t> d) { delivered += d.size(); });
    tcp::ArqConfig cfg;
    cfg.packet_payload = kWriteSize;  // packetized at write granularity, forever
    cfg.rto = sim::milliseconds(500);
    auto sender = a.arq().create_sender(b.address(), 9, cfg);
    std::size_t written = 0;
    sim::PeriodicTimer writer(net.sim(), [&] {
        if (written < kWrites) {
            // Retry on backpressure: a full send buffer defers the write.
            const util::ByteBuffer chunk(kWriteSize, 0x32);
            if (sender->send(chunk) == chunk.size()) ++written;
        }
    });
    writer.start(sim::milliseconds(5));
    net.sim().run_while([&] { return delivered < kTotal && net.sim().now() < sim::seconds(600); });
    writer.stop();

    SeqResult r;
    r.completed = delivered >= kTotal;
    r.packets_sent = sender->stats().packets_sent;
    r.retransmitted = sender->stats().packets_retransmitted;
    r.wire_bytes_per_byte =
        static_cast<double>(net.total_link_bytes()) / static_cast<double>(kTotal);
    r.seconds = net.sim().now().seconds();
    return r;
}

}  // namespace

int main() {
    banner("E9 — byte-granularity vs packet-granularity sequence numbers",
           "byte sequencing lets retransmissions be repacketized (many lost "
           "tinygrams return as one full-size segment); packet sequencing "
           "must resend every original packet unchanged");

    std::printf("[%zu writes of %zu B each, 40 ms RTT path, loss sweep]\n",
                kWrites, kWriteSize);
    Table t({"loss %", "protocol", "done", "pkts sent", "rexmit pkts",
             "wire B per app B", "time s"});
    for (double loss : {0.0, 0.02, 0.05, 0.10}) {
        const auto tcp_r = run_tcp(loss, 9001 + static_cast<std::uint64_t>(loss * 100));
        const auto arq_r =
            run_packet_seq(loss, 9001 + static_cast<std::uint64_t>(loss * 100));
        t.row({fmt(loss * 100, 0), "TCP (byte seq)", tcp_r.completed ? "yes" : "NO",
               fmt_u(tcp_r.packets_sent), fmt_u(tcp_r.retransmitted),
               fmt(tcp_r.wire_bytes_per_byte, 3), fmt(tcp_r.seconds, 1)});
        t.row({"", "ARQ (packet seq)", arq_r.completed ? "yes" : "NO",
               fmt_u(arq_r.packets_sent), fmt_u(arq_r.retransmitted),
               fmt(arq_r.wire_bytes_per_byte, 3), fmt(arq_r.seconds, 1)});
    }
    t.print();

    verdict(
        "at zero loss the two behave alike. As loss grows, TCP's "
        "retransmissions coalesce the outstanding tinygrams into MSS-sized "
        "segments, so its packet count barely moves; the packet-sequenced "
        "protocol resends tinygrams one for one and its wire cost and "
        "completion time inflate — the paper's repacketization argument, "
        "measured.");
    return 0;
}
