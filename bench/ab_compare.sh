#!/bin/sh
# Reusable A/B benchmark gate: builds two sides, runs the selected
# benchmarks strictly interleaved (A, B, A, B, ...) to cancel box-load
# drift, takes the best of N rounds per side, compares CPU time, and
# fails with a nonzero exit when the gate is violated. Both sides build
# RelWithDebInfo with -falign-functions=64 to tame the code-placement
# lottery between separately linked binaries, which at the few-hundred-ns
# scale of the engine benchmarks otherwise swamps a few-percent signal
# (the PR 3/PR 4 methodology in CHANGES.md, extracted from ab_overhead.sh
# so every perf PR states its claim through the same harness).
#
# Usage: bench/ab_compare.sh <benchmark-regex> <tolerance>
#
#   MODE=max-regression (default)  tolerance is a percentage: fail when
#       side B is more than <tolerance>% slower than side A on any
#       selected benchmark ("my change must not regress").
#   MODE=min-speedup               tolerance is a ratio: fail when side B
#       is not at least <tolerance>x faster than side A on every selected
#       benchmark ("my optimization must actually pay").
#
#   A_SRC / B_SRC      source trees (default: this repo for both — use a
#                      git worktree of the pre-change revision as A_SRC to
#                      gate a PR; copy new benchmark sources into it first
#                      if the benchmarks themselves are new)
#   A_CMAKE / B_CMAKE  extra cmake arguments per side (e.g. A_CMAKE=
#                      -DCATENET_NO_TELEMETRY=ON)
#   A_NAME / B_NAME    report labels            [baseline / candidate]
#   BENCH_TARGET       benchmark binary target  [bench_engine]
#   ROUNDS=5 MIN_TIME=0.2 OUT=<dir> to override the usual knobs.
set -eu

FILTER=${1:?usage: ab_compare.sh <benchmark-regex> <tolerance>}
TOL=${2:?usage: ab_compare.sh <benchmark-regex> <tolerance>}

SRC=$(cd "$(dirname "$0")/.." && pwd)
A_SRC=${A_SRC:-$SRC}
B_SRC=${B_SRC:-$SRC}
A_NAME=${A_NAME:-baseline}
B_NAME=${B_NAME:-candidate}
MODE=${MODE:-max-regression}
ROUNDS=${ROUNDS:-5}
MIN_TIME=${MIN_TIME:-0.2}
BENCH_TARGET=${BENCH_TARGET:-bench_engine}
A_BUILD=${A_BUILD:-$SRC/build-ab-a}
B_BUILD=${B_BUILD:-$SRC/build-ab-b}
OUT=${OUT:-$A_BUILD/ab}

echo "== A/B gate: $MODE $TOL on '$FILTER' (best of $ROUNDS) =="
echo "   A ($A_NAME): $A_SRC"
echo "   B ($B_NAME): $B_SRC"

cmake -S "$A_SRC" -B "$A_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-falign-functions=64 ${A_CMAKE:-} >/dev/null
cmake -S "$B_SRC" -B "$B_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-falign-functions=64 ${B_CMAKE:-} >/dev/null
cmake --build "$A_BUILD" --target "$BENCH_TARGET" --parallel 2 >/dev/null
cmake --build "$B_BUILD" --target "$BENCH_TARGET" --parallel 2 >/dev/null

mkdir -p "$OUT"
i=1
while [ "$i" -le "$ROUNDS" ]; do
    for side in a b; do
        if [ "$side" = a ]; then tree="$A_BUILD"; else tree="$B_BUILD"; fi
        "$tree/bench/$BENCH_TARGET" \
            --benchmark_filter="$FILTER" \
            --benchmark_min_time="$MIN_TIME" \
            --benchmark_out="$OUT/${side}_${i}.json" \
            --benchmark_out_format=json >/dev/null
    done
    echo "round $i/$ROUNDS done"
    i=$((i + 1))
done

python3 - "$OUT" "$TOL" "$ROUNDS" "$MODE" "$A_NAME" "$B_NAME" <<'EOF'
import json, sys

out, tol, rounds, mode, a_name, b_name = (
    sys.argv[1], float(sys.argv[2]), int(sys.argv[3]),
    sys.argv[4], sys.argv[5], sys.argv[6])

def best(side):
    per = {}
    for i in range(1, rounds + 1):
        with open(f"{out}/{side}_{i}.json") as f:
            for b in json.load(f)["benchmarks"]:
                t = b["cpu_time"]
                name = b["name"]
                if name not in per or t < per[name]:
                    per[name] = t
    return per

a, b = best("a"), best("b")
if not a:
    sys.exit("A/B gate FAILED: filter matched no benchmarks")
failed = False
hdr = f"{'benchmark':<28} {a_name[:12]:>12} {b_name[:12]:>12}"
if mode == "min-speedup":
    print(hdr + f" {'speedup':>9}")
else:
    print(hdr + f" {'delta':>9}")
for name in sorted(a):
    ta, tb = a[name], b[name]
    flag = ""
    if mode == "min-speedup":
        ratio = ta / tb
        if ratio < tol:
            failed = True
            flag = f"  BELOW {tol:.2f}x"
        print(f"{name:<28} {ta:>10.1f}ns {tb:>10.1f}ns {ratio:>8.2f}x{flag}")
    else:
        pct = (tb - ta) / ta * 100.0
        if pct > tol:
            failed = True
            flag = f"  EXCEEDS {tol:.0f}%"
        print(f"{name:<28} {ta:>10.1f}ns {tb:>10.1f}ns {pct:>+8.2f}%{flag}")
if failed:
    sys.exit("A/B gate FAILED")
print("A/B gate OK")
EOF
