// E5 — Cost effectiveness (the paper's goal #5).
//
// Claims: (a) "The headers of Internet packets are fairly long ... and if
// short packets are sent, this overhead is apparent" — the datagram tax is
// per-packet and regressive. (b) "...lost packets are not recovered at the
// network level [so] they must be retransmitted from one end of the
// Internet to the other. This means that the retransmitted packet may
// cross several intervening nets a second time" — end-to-end recovery
// re-buys every hop a loss already consumed.
//
// Part 1 sweeps payload size and reports wire efficiency for UDP and TCP.
// Part 2 puts a lossy hop at each position of a 4-hop path and compares
// the byte-hops each delivered byte costs under end-to-end recovery (TCP
// over stateless gateways) versus hop-by-hop recovery (the VC baseline's
// per-link ARQ).
#include "app/bulk.h"
#include "common.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "vc/network.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

// --- part 1: header tax -------------------------------------------------

void header_tax() {
    std::printf("[part 1: per-packet header overhead vs payload size]\n");
    Table t({"payload B", "UDP wire B", "UDP efficiency %", "TCP wire B",
             "TCP efficiency %"});
    for (std::size_t payload : {1ul, 8ul, 64ul, 128ul, 256ul, 576ul, 1024ul, 1460ul}) {
        const std::size_t udp_wire = payload + 8 + 20;
        const std::size_t tcp_wire = payload + 20 + 20;
        t.row({fmt_u(payload), fmt_u(udp_wire),
               fmt(100.0 * static_cast<double>(payload) / static_cast<double>(udp_wire), 1),
               fmt_u(tcp_wire),
               fmt(100.0 * static_cast<double>(payload) /
                       static_cast<double>(tcp_wire), 1)});
    }
    t.print();

    // Measured confirmation on the wire: a paced UDP stream of small vs
    // large datagrams over one hop.
    std::printf("\n[measured: 256 kB of application data over one hop]\n");
    Table m({"datagram payload", "app bytes", "wire bytes", "efficiency %"});
    for (std::size_t payload : {8ul, 64ul, 512ul, 1460ul}) {
        core::Internetwork net(5005);
        core::Host& a = net.add_host("a");
        core::Host& b = net.add_host("b");
        net.connect(a, b, link::presets::ethernet_hop());
        net.use_static_routes();
        auto rx = b.udp().bind(1000);
        rx->set_handler([](auto, auto, auto) {});
        auto tx = a.udp().bind_ephemeral();
        const std::size_t total = 256 * 1024;
        for (std::size_t sent = 0; sent < total; sent += payload) {
            tx->send_to(b.address(), 1000, util::ByteBuffer(payload, 1));
            net.run_for(sim::microseconds(1500));
        }
        net.run_for(sim::seconds(1));
        const auto wire = net.total_link_bytes();
        m.row({fmt_u(payload), fmt_u(total), fmt_u(wire),
               fmt(100.0 * static_cast<double>(total) / static_cast<double>(wire), 1)});
    }
    m.print();
}

// --- part 2: where loss recovery happens -----------------------------------

struct RecoveryCost {
    double byte_hops_per_byte;
    bool completed;
};

// End-to-end: TCP over a 4-hop datagram path with loss on hop `lossy_hop`.
RecoveryCost end_to_end(double loss, int lossy_hop) {
    core::Internetwork net(5006);
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Gateway& g3 = net.add_gateway("g3");

    auto params_for = [&](int hop) {
        auto p = link::presets::ethernet_hop();
        if (hop == lossy_hop) p.drop_probability = loss;
        return p;
    };
    net.connect(src, g1, params_for(0));
    net.connect(g1, g2, params_for(1));
    net.connect(g2, g3, params_for(2));
    net.connect(g3, dst, params_for(3));
    net.use_static_routes();

    constexpr std::uint64_t kBytes = 512 * 1024;
    app::BulkServer server(dst, 21);
    app::BulkSender sender(src, dst.address(), 21, kBytes);
    sender.start();
    net.run_for(sim::seconds(1200));

    RecoveryCost r;
    r.completed = sender.finished();
    r.byte_hops_per_byte = static_cast<double>(net.total_link_bytes()) /
                           static_cast<double>(kBytes);
    return r;
}

// Hop-by-hop: VC network, per-link ARQ repairs each hop locally.
RecoveryCost hop_by_hop(double loss, int lossy_hop) {
    sim::Simulator sim;
    auto params_for = [&](int hop) {
        auto p = link::presets::ethernet_hop();
        if (hop == lossy_hop) p.drop_probability = loss;
        return p;
    };
    vc::LinkArqConfig arq;
    arq.rto = sim::milliseconds(60);
    arq.max_retries = 1000;
    vc::VcHostConfig host_config;
    host_config.frame_payload = 512;
    host_config.arq = arq;

    vc::VcNetwork net(sim, 5007);
    const auto s1 = net.add_switch("s1", arq);
    const auto s2 = net.add_switch("s2", arq);
    const auto s3 = net.add_switch("s3", arq);
    const auto h1 = net.add_host(1, "src", host_config);
    const auto h2 = net.add_host(2, "dst", host_config);
    net.connect_host(h1, s1, params_for(0));
    net.connect_switches(s1, s2, params_for(1));
    net.connect_switches(s2, s3, params_for(2));
    net.connect_host(h2, s3, params_for(3));
    net.compute_routes();

    constexpr std::uint64_t kBytes = 512 * 1024;
    std::uint64_t delivered = 0;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<vc::VcCall> call) {
        call->on_data = [&](std::span<const std::uint8_t> d) { delivered += d.size(); };
    });
    auto call = net.host_at(h1).place_call(2);
    std::uint64_t queued = 0;
    sim::PeriodicTimer source(sim, [&] {
        if (call->state() == vc::CallState::Connected && queued < kBytes) {
            call->send(util::ByteBuffer(4096, 0x42));
            queued += 4096;
        }
    });
    source.start(sim::milliseconds(10));
    sim.run_until(sim::seconds(1200));
    source.stop();

    RecoveryCost r;
    r.completed = delivered >= kBytes;
    r.byte_hops_per_byte = static_cast<double>(net.total_link_bytes()) /
                           static_cast<double>(kBytes);
    return r;
}

void recovery_cost() {
    std::printf("\n[part 2: byte-hops spent per delivered byte, 4-hop path,\n"
                " 5%% loss placed on one hop; end-to-end (TCP) vs hop-by-hop (VC ARQ)]\n");
    Table t({"lossy hop", "e2e byte-hops/B", "hop-by-hop byte-hops/B",
             "e2e penalty vs hop 0"});
    double e2e_hop0 = 0;
    for (int hop = 0; hop < 4; ++hop) {
        const auto e2e = end_to_end(0.05, hop);
        const auto hbh = hop_by_hop(0.05, hop);
        if (hop == 0) e2e_hop0 = e2e.byte_hops_per_byte;
        t.row({std::to_string(hop), fmt(e2e.byte_hops_per_byte, 3),
               fmt(hbh.byte_hops_per_byte, 3),
               fmt(e2e.byte_hops_per_byte - e2e_hop0, 3)});
    }
    t.print();

    std::printf("\n[loss-rate sweep, loss on the last hop (worst case for e2e)]\n");
    Table s({"loss %", "e2e byte-hops/B", "hop-by-hop byte-hops/B"});
    for (double loss : {0.0, 0.01, 0.03, 0.05, 0.10}) {
        const auto e2e = end_to_end(loss, 3);
        const auto hbh = hop_by_hop(loss, 3);
        s.row({fmt(loss * 100, 0), fmt(e2e.byte_hops_per_byte, 3),
               fmt(hbh.byte_hops_per_byte, 3)});
    }
    s.print();
}

}  // namespace

int main() {
    banner("E5 — the costs of the datagram architecture",
           "40 bytes of header tax every packet (regressive for small ones); "
           "end-to-end retransmission re-crosses nets the packet already "
           "crossed, where hop-by-hop recovery would pay only the lossy hop");
    header_tax();
    recovery_cost();
    verdict(
        "headers take >80% of the wire for 8-byte payloads and <3% at full "
        "MSS, exactly the regressive tax the paper concedes. With loss on "
        "the last hop, end-to-end recovery pays ~4 hops per retransmitted "
        "byte while hop-by-hop pays ~1 — the architecture deliberately "
        "accepts this cost to keep gateways stateless (goals 1 and 7 beat "
        "goal 5 in the priority order).");
    return 0;
}
