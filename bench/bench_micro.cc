// Micro-benchmarks (google-benchmark): the per-packet costs of the fast
// paths — checksums, header codecs, queue disciplines, flow classification
// and the event engine. These bound the simulated-packets-per-second the
// experiment harness can push and document the cost of each mechanism.
#include <benchmark/benchmark.h>

#include "core/flow.h"
#include "ip/ipv4_header.h"
#include "ip/protocols.h"
#include "link/queue.h"
#include "sim/simulator.h"
#include "tcp/tcp_header.h"
#include "udp/udp.h"
#include "util/checksum.h"
#include "util/random.h"

namespace {

using namespace catenet;

util::ByteBuffer random_buffer(std::size_t size, std::uint64_t seed) {
    util::Rng rng(seed);
    util::ByteBuffer buf(size);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    return buf;
}

void BM_InternetChecksum(benchmark::State& state) {
    const auto buf = random_buffer(static_cast<std::size_t>(state.range(0)), 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(util::internet_checksum(buf));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(576)->Arg(1500)->Arg(65536);

void BM_Ipv4Encode(benchmark::State& state) {
    ip::Ipv4Header h;
    h.protocol = ip::kProtoTcp;
    h.src = util::Ipv4Address(10, 0, 0, 1);
    h.dst = util::Ipv4Address(10, 0, 1, 2);
    const auto payload = random_buffer(static_cast<std::size_t>(state.range(0)), 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ip::encode_datagram(h, payload));
    }
}
BENCHMARK(BM_Ipv4Encode)->Arg(0)->Arg(512)->Arg(1460);

void BM_Ipv4Decode(benchmark::State& state) {
    ip::Ipv4Header h;
    h.protocol = ip::kProtoTcp;
    const auto wire =
        ip::encode_datagram(h, random_buffer(static_cast<std::size_t>(state.range(0)), 3));
    for (auto _ : state) {
        ip::DecodedDatagram d;
        benchmark::DoNotOptimize(ip::decode_datagram(wire, d));
    }
}
BENCHMARK(BM_Ipv4Decode)->Arg(0)->Arg(512)->Arg(1460);

void BM_TcpEncode(benchmark::State& state) {
    tcp::TcpHeader h;
    h.src_port = 1234;
    h.dst_port = 80;
    h.flags.ack = true;
    const util::Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 2);
    const auto payload = random_buffer(static_cast<std::size_t>(state.range(0)), 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tcp::encode_tcp(h, src, dst, payload));
    }
}
BENCHMARK(BM_TcpEncode)->Arg(0)->Arg(536)->Arg(1460);

void BM_UdpRoundTrip(benchmark::State& state) {
    const util::Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 2);
    const auto payload = random_buffer(160, 5);
    for (auto _ : state) {
        const auto wire = udp::encode_udp(udp::UdpHeader{5004, 5004}, src, dst, payload);
        std::span<const std::uint8_t> out;
        benchmark::DoNotOptimize(udp::decode_udp(src, dst, wire, out));
    }
}
BENCHMARK(BM_UdpRoundTrip);

void BM_FlowClassify(benchmark::State& state) {
    ip::Ipv4Header h;
    h.protocol = ip::kProtoTcp;
    h.src = util::Ipv4Address(10, 0, 0, 1);
    h.dst = util::Ipv4Address(10, 0, 1, 2);
    util::BufferWriter tp;
    tp.put_u16(1234);
    tp.put_u16(80);
    tp.put_zero(16);
    const auto wire = ip::encode_datagram(h, tp.data());
    for (auto _ : state) {
        auto key = core::classify_packet(wire);
        benchmark::DoNotOptimize(key);
    }
}
BENCHMARK(BM_FlowClassify);

void BM_EventQueueScheduleFire(benchmark::State& state) {
    sim::Simulator sim;
    std::int64_t t = 0;
    for (auto _ : state) {
        sim.schedule_at(sim::Time(++t), [] {});
        sim.step();
    }
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueDeepBacklog(benchmark::State& state) {
    // Schedule/fire with a standing backlog, the realistic regime.
    sim::Simulator sim;
    std::int64_t t = 0;
    for (int i = 0; i < 10000; ++i) {
        sim.schedule_at(sim::Time(1'000'000'000 + i), [] {});
    }
    for (auto _ : state) {
        sim.schedule_at(sim::Time(++t), [] {});
        sim.step();
    }
}
BENCHMARK(BM_EventQueueDeepBacklog);

void BM_DropTailQueue(benchmark::State& state) {
    link::DropTailQueue q(1024);
    const auto payload = random_buffer(1500, 6);
    for (auto _ : state) {
        link::Packet p;
        p.bytes = payload;
        q.enqueue(std::move(p));
        benchmark::DoNotOptimize(q.dequeue());
    }
}
BENCHMARK(BM_DropTailQueue);

void BM_FairQueue(benchmark::State& state) {
    // Distinct flows hashed from a rotating counter.
    std::uint64_t counter = 0;
    link::FairQueue q(64, 1500, [&counter](const link::Packet&) {
        return counter % 16;
    });
    const auto payload = random_buffer(1500, 7);
    for (auto _ : state) {
        ++counter;
        link::Packet p;
        p.bytes = payload;
        q.enqueue(std::move(p));
        benchmark::DoNotOptimize(q.dequeue());
    }
}
BENCHMARK(BM_FairQueue);

}  // namespace

BENCHMARK_MAIN();
