// E8 — Fate-sharing vs replication.
//
// Claim: "the intermediate packet switching nodes, or gateways, must not
// have any essential state information about on-going connections ...
// they are stateless packet switches"; connection state should share fate
// with the endpoints that own it. The alternative — replicating
// connection state inside the network — means every switch crash is a
// connection massacre.
//
// Setup: N concurrent conversations cross one intermediate node. The node
// crashes and restarts. Datagram gateway: count conversations that
// survive, and the bytes of connection state the node held. VC switch:
// same counts.
#include "app/bulk.h"
#include "app/interactive.h"
#include "common.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "vc/network.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

struct FateResult {
    int survived;
    int total;
    std::size_t state_bytes;  // connection state held in the network node
};

FateResult run_datagram(int connections, double down_seconds) {
    core::Internetwork net(8008);
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g = net.add_gateway("g");
    net.connect(src, g, link::presets::ethernet_hop());
    net.connect(g, dst, link::presets::ethernet_hop());
    net.use_static_routes();

    // Long-running interactive-style connections (so they idle through
    // the outage rather than finishing early).
    std::vector<std::unique_ptr<app::EchoServer>> servers;
    servers.push_back(std::make_unique<app::EchoServer>(dst, 23));
    std::vector<std::unique_ptr<app::InteractiveClient>> clients;
    std::vector<bool> alive(static_cast<std::size_t>(connections), true);
    for (int i = 0; i < connections; ++i) {
        app::InteractiveConfig ic;
        ic.mean_interkey = sim::milliseconds(500);
        clients.push_back(std::make_unique<app::InteractiveClient>(
            src, dst.address(), 23, ic));
        clients.back()->start();
    }
    net.run_for(sim::seconds(10));

    // The gateway's connection-state footprint: by construction, zero.
    // (Its mutable state is the routing table and queues; neither mentions
    // any connection.)
    const std::size_t gw_state = 0;

    g.set_down(true);
    net.run_for(sim::from_seconds(down_seconds));
    g.set_down(false);
    net.run_for(sim::seconds(60));

    // Survival test: every client types a probe and must get an echo.
    std::vector<std::uint64_t> before;
    before.reserve(clients.size());
    for (auto& c : clients) before.push_back(c->echoes_received());
    net.run_for(sim::seconds(30));
    int survived = 0;
    for (std::size_t i = 0; i < clients.size(); ++i) {
        if (clients[i]->echoes_received() > before[i]) ++survived;
    }
    return FateResult{survived, connections, gw_state};
}

FateResult run_vc(int connections, double down_seconds) {
    sim::Simulator sim;
    vc::VcNetwork net(sim, 8008);
    const auto s = net.add_switch("s");
    const auto h1 = net.add_host(1, "src");
    const auto h2 = net.add_host(2, "dst");
    net.connect_host(h1, s, link::presets::ethernet_hop());
    net.connect_host(h2, s, link::presets::ethernet_hop());
    net.compute_routes();

    net.host_at(h2).set_incoming_handler([](std::shared_ptr<vc::VcCall> call) {
        auto held = call;
        call->on_data = [held](std::span<const std::uint8_t>) {};
    });
    std::vector<std::shared_ptr<vc::VcCall>> calls;
    std::vector<bool> cleared(static_cast<std::size_t>(connections), false);
    for (int i = 0; i < connections; ++i) {
        auto call = net.host_at(h1).place_call(2);
        call->on_cleared = [&cleared, i](std::uint8_t) {
            cleared[static_cast<std::size_t>(i)] = true;
        };
        calls.push_back(call);
    }
    // Periodic chatter on every call (so stalls are detected).
    sim::PeriodicTimer chatter(sim, [&] {
        for (auto& call : calls) {
            if (call->state() == vc::CallState::Connected) {
                call->send(util::ByteBuffer(64, 0x55));
            }
        }
    });
    chatter.start(sim::milliseconds(500));
    sim.run_until(sim::seconds(10));

    const std::size_t switch_state = net.switch_at(s).state_bytes();

    net.fail_switch(s);
    sim.run_until(sim::seconds(10) + sim::from_seconds(down_seconds));
    net.restore_switch(s);
    sim.run_until(sim.now() + sim::seconds(90));
    chatter.stop();

    int survived = 0;
    for (std::size_t i = 0; i < cleared.size(); ++i) {
        if (!cleared[i] && calls[i]->state() == vc::CallState::Connected) ++survived;
    }
    return FateResult{survived, connections, switch_state};
}

}  // namespace

int main() {
    banner("E8 — fate-sharing vs replicated in-network connection state",
           "stateless gateways mean a crash loses packets, never "
           "connections; switches that replicate connection state turn "
           "every crash into N dead conversations");

    std::printf("[intermediate node crashes for 5 s and restarts]\n");
    Table t({"architecture", "conns", "survived crash", "conn state in node (B)"});
    for (int n : {4, 16, 64}) {
        const auto dg = run_datagram(n, 5.0);
        t.row({"datagram gateway", std::to_string(n),
               std::to_string(dg.survived) + "/" + std::to_string(dg.total),
               fmt_u(dg.state_bytes)});
    }
    for (int n : {4, 16, 64}) {
        const auto vcr = run_vc(n, 5.0);
        t.row({"VC switch", std::to_string(n),
               std::to_string(vcr.survived) + "/" + std::to_string(vcr.total),
               fmt_u(vcr.state_bytes)});
    }
    t.print();

    verdict(
        "the gateway holds zero bytes of connection state, so every "
        "conversation rides out the crash on endpoint retransmission alone; "
        "the switch holds state proportional to the call count and every "
        "one of those calls dies with it. This asymmetry is fate-sharing — "
        "the paper's central mechanism for goal 1.");
    return 0;
}
