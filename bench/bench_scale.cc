// Scale benchmark: the tentpole measurement for ROADMAP item 3. Builds a
// generated two-tier internet (default: 1024 transit gateways, 512 stub
// LANs x 200 compact hosts = 103,424 nodes), reports
//   - build time (topology + bulk-loaded oracle routes),
//   - marginal resident bytes per host-class node (mallinfo2 heap delta
//     across the leaf-population phase / hosts added),
//   - steady-state forwarding pkts/s for leaf-to-leaf traffic waves
//     crossing the mesh,
// and writes BENCH_scale.json. With --gate, exits nonzero unless the
// ISSUE-7 budgets hold: build <= 5 s and <= 150 bytes/host.
//
// Methodology notes. Bytes/host is *marginal*, not amortized: the heap is
// snapshotted after the mesh (gateways + trunks) is built and again after
// the leaf population lands, so gateway FIBs, link objects and registry
// entries — costs that scale with the mesh, not the population — are
// excluded by construction. That is the number the 150-byte budget
// governs: what one more host costs. pkts/s is wall-clock packets
// delivered end to end (inject at a leaf, tally at the destination leaf's
// stub), not per-hop forwards.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__GLIBC__) || defined(__GLIBC_MINOR__)
#include <malloc.h>
#define CATENET_HAVE_MALLINFO2 1
#else
#define CATENET_HAVE_MALLINFO2 0
#endif

#include "core/internetwork.h"
#include "core/topology_gen.h"

namespace {

using namespace catenet;

struct Options {
    std::uint32_t gateways = 1024;
    std::uint32_t lans = 512;
    std::uint32_t hosts = 200;
    std::uint64_t seed = 7;
    std::uint32_t rounds = 32;   ///< traffic waves (one packet per LAN each)
    std::string out = "BENCH_scale.json";
    bool gate = false;
};

std::size_t heap_bytes() {
#if CATENET_HAVE_MALLINFO2
    // uordblks: total allocated space, arena + mmapped. The marginal
    // delta between two snapshots is what the intervening phase kept.
    struct mallinfo2 mi = mallinfo2();
    return mi.uordblks + mi.hblkhd;
#else
    return 0;  // no allocator introspection on this libc; gate is skipped
#endif
}

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char* flag) -> const char* {
            if (std::strcmp(argv[i], flag) != 0) return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char* v = value("--gateways")) {
            opt.gateways = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        } else if (const char* v = value("--lans")) {
            opt.lans = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        } else if (const char* v = value("--hosts")) {
            opt.hosts = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        } else if (const char* v = value("--seed")) {
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (const char* v = value("--rounds")) {
            opt.rounds = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        } else if (const char* v = value("--out")) {
            opt.out = v;
        } else if (std::strcmp(argv[i], "--gate") == 0) {
            opt.gate = true;
        } else {
            std::fprintf(stderr,
                         "usage: bench_scale [--gateways K] [--lans N] [--hosts H]\n"
                         "                   [--seed S] [--rounds R] [--out FILE] [--gate]\n");
            std::exit(2);
        }
    }
    return opt;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse(argc, argv);

    core::TwoTierParams params;
    params.gateways = opt.gateways;
    params.lans = opt.lans;
    params.hosts_per_lan = opt.hosts;
    params.seed = opt.seed;
    params.compact_hosts = true;
    params.install_routes = false;  // phased below, so each phase is timed
    // A fast, deep-queued core: the benchmark measures the simulator's
    // forwarding machinery, not a 10 Mb/s bottleneck's queueing.
    params.trunk.bits_per_second = 1'000'000'000;
    params.trunk.propagation_delay = sim::microseconds(50);
    params.trunk.queue_capacity_packets = 256;

    core::Internetwork net(opt.seed);
    const auto t_build = std::chrono::steady_clock::now();

    // Phase 1: the transit mesh (plan + gateways + trunks).
    const core::TwoTierPlan plan = core::plan_two_tier(params);
    std::vector<core::Gateway*> gateways;
    gateways.reserve(params.gateways);
    for (std::uint32_t i = 0; i < params.gateways; ++i) {
        gateways.push_back(&net.add_gateway("gw" + std::to_string(i)));
    }
    for (const auto& [a, b] : plan.trunks) {
        net.connect(*gateways[a], *gateways[b], params.trunk);
    }

    // Phase 2: the leaf population, bracketed by heap snapshots. The
    // reservation happens *inside* the bracket: the node arrays' capacity
    // is per-host cost and must be charged to the hosts, not the mesh.
    const std::size_t heap_before_hosts = heap_bytes();
    net.topology().reserve_nodes(
        params.gateways + std::size_t{params.lans} * params.hosts_per_lan,
        std::size_t{params.lans} * params.hosts_per_lan);
    std::vector<std::uint32_t> leaf_lans;
    leaf_lans.reserve(params.lans);
    for (std::uint32_t l = 0; l < params.lans; ++l) {
        leaf_lans.push_back(net.add_leaf_lan(*gateways[plan.lan_home[l]],
                                             params.hosts_per_lan,
                                             "leaf" + std::to_string(l)));
    }
    const std::size_t heap_after_hosts = heap_bytes();

    // Phase 3: oracle routes, one bulk load per gateway.
    const auto t_routes = std::chrono::steady_clock::now();
    net.use_static_routes();
    const double route_seconds = seconds_since(t_routes);
    const double build_seconds = seconds_since(t_build);

    const std::size_t total_hosts = std::size_t{params.lans} * params.hosts_per_lan;
    const std::size_t total_nodes = total_hosts + params.gateways;
    const double bytes_per_host =
        heap_after_hosts > heap_before_hosts && total_hosts > 0
            ? static_cast<double>(heap_after_hosts - heap_before_hosts) /
                  static_cast<double>(total_hosts)
            : 0.0;

    // Phase 4: steady-state forwarding soak. Each wave injects one
    // datagram per LAN (host i of LAN l toward host i of the LAN half the
    // ring away), then drains; paths spread across the whole mesh.
    core::TopologyStore& topo = net.topology();
    const std::uint8_t payload[8] = {0xC5, 0, 0, 0, 0, 0, 0, 0};
    std::uint64_t injected = 0;
    const auto t_soak = std::chrono::steady_clock::now();
    for (std::uint32_t round = 0; round < opt.rounds; ++round) {
        const std::uint32_t host_index = round % params.hosts_per_lan;
        for (std::uint32_t l = 0; l < params.lans; ++l) {
            const std::uint32_t dst_lan = (l + params.lans / 2) % params.lans;
            if (dst_lan == l) continue;
            const core::NodeId src = topo.leaf_host(leaf_lans[l], host_index);
            const core::NodeId dst = topo.leaf_host(leaf_lans[dst_lan], host_index);
            if (topo.leaf_inject(src, topo.address(dst), 253, payload, 255)) {
                ++injected;
            }
        }
        net.run_for(sim::seconds(2));  // drain the wave completely
    }
    const double soak_seconds = seconds_since(t_soak);
    const std::uint64_t delivered = topo.leaf_delivered_total();
    const double pkts_per_second =
        soak_seconds > 0 ? static_cast<double>(delivered) / soak_seconds : 0.0;

    const bool build_ok = build_seconds <= 5.0;
    const bool memory_ok = !CATENET_HAVE_MALLINFO2 || bytes_per_host <= 150.0;

    std::printf("bench_scale: %zu nodes (%u gateways, %u LANs x %u hosts)\n",
                total_nodes, params.gateways, params.lans, params.hosts_per_lan);
    std::printf("  build: %.3f s (routes %.3f s)  [budget 5 s: %s]\n", build_seconds,
                route_seconds, build_ok ? "ok" : "FAIL");
    std::printf("  marginal bytes/host: %.1f  [budget 150: %s]\n", bytes_per_host,
                CATENET_HAVE_MALLINFO2 ? (memory_ok ? "ok" : "FAIL") : "skipped");
    std::printf("  soak: %llu injected, %llu delivered, %.0f pkts/s end-to-end\n",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(delivered), pkts_per_second);

    if (FILE* f = std::fopen(opt.out.c_str(), "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"benchmark\": \"bench_scale\",\n"
                     "  \"gateways\": %u,\n"
                     "  \"lans\": %u,\n"
                     "  \"hosts_per_lan\": %u,\n"
                     "  \"total_nodes\": %zu,\n"
                     "  \"seed\": %llu,\n"
                     "  \"build_seconds\": %.6f,\n"
                     "  \"route_seconds\": %.6f,\n"
                     "  \"bytes_per_host\": %.2f,\n"
                     "  \"mallinfo2_available\": %s,\n"
                     "  \"soak_rounds\": %u,\n"
                     "  \"packets_injected\": %llu,\n"
                     "  \"packets_delivered\": %llu,\n"
                     "  \"soak_seconds\": %.6f,\n"
                     "  \"pkts_per_second\": %.0f,\n"
                     "  \"gate_build_le_5s\": %s,\n"
                     "  \"gate_bytes_per_host_le_150\": %s\n"
                     "}\n",
                     params.gateways, params.lans, params.hosts_per_lan, total_nodes,
                     static_cast<unsigned long long>(opt.seed), build_seconds,
                     route_seconds, bytes_per_host,
                     CATENET_HAVE_MALLINFO2 ? "true" : "false", opt.rounds,
                     static_cast<unsigned long long>(injected),
                     static_cast<unsigned long long>(delivered), soak_seconds,
                     pkts_per_second, build_ok ? "true" : "false",
                     memory_ok ? "true" : "false");
        std::fclose(f);
    } else {
        std::fprintf(stderr, "bench_scale: cannot write %s\n", opt.out.c_str());
        return 3;
    }

    if (opt.gate && (!build_ok || !memory_ok)) return 1;
    return 0;
}
