// E3 — Variety of networks (the paper's goal #3).
//
// Claim: the Internet architecture works over networks making "a very
// small set of assumptions": a packet of reasonable size delivered with
// nonzero probability. Long-haul nets, LANs, satellite, packet radio and
// 1200 bit/s serial lines all carried the same TCP/IP unchanged.
//
// Setup: an identical bulk workload crosses one technology at a time, then
// a concatenated path crossing FOUR technologies (with three MTU changes)
// in one connection.
#include "app/bulk.h"
#include "common.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

struct PathStats {
    bool completed;
    double goodput_kbps;
    double srtt_ms;
    std::uint64_t retransmits;
    std::uint64_t fragments;
};

PathStats run_single(const link::LinkParams& tech, std::uint64_t bytes) {
    core::Internetwork net(3003);
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& gw = net.add_gateway("gw");
    net.connect(src, gw, link::presets::ethernet_hop());
    net.connect(gw, dst, tech);
    net.use_static_routes();

    app::BulkServer server(dst, 21);
    app::BulkSender sender(src, dst.address(), 21, bytes);
    sender.start();
    net.run_for(sim::seconds(3600));

    PathStats r;
    r.completed = sender.finished();
    r.goodput_kbps = sender.throughput_bps() / 1000.0;
    r.srtt_ms = sender.socket_stats().srtt_ms;
    r.retransmits = sender.socket_stats().retransmitted_segments;
    r.fragments = gw.ip().stats().fragments_created;
    return r;
}

PathStats run_concatenated(std::uint64_t bytes) {
    // src -eth- g1 -satellite- g2 -radio- g3 -leased56k- dst
    core::Internetwork net(3004);
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Gateway& g3 = net.add_gateway("g3");
    net.connect(src, g1, link::presets::ethernet_hop());
    net.connect(g1, g2, link::presets::satellite());
    net.connect(g2, g3, link::presets::packet_radio());
    net.connect(g3, dst, link::presets::leased_line());
    net.use_static_routes();

    app::BulkServer server(dst, 21);
    app::BulkSender sender(src, dst.address(), 21, bytes);
    sender.start();
    net.run_for(sim::seconds(3600));

    PathStats r;
    r.completed = sender.finished();
    r.goodput_kbps = sender.throughput_bps() / 1000.0;
    r.srtt_ms = sender.socket_stats().srtt_ms;
    r.retransmits = sender.socket_stats().retransmitted_segments;
    r.fragments = g1.ip().stats().fragments_created +
                  g2.ip().stats().fragments_created +
                  g3.ip().stats().fragments_created;
    return r;
}

}  // namespace

int main() {
    banner("E3 — one transport over every network technology",
           "IP assumes only 'a packet of reasonable size, delivered with "
           "nonzero probability'; the same unmodified TCP must function over "
           "LANs, leased lines, satellite links, packet radio and slow "
           "serial lines");

    Table t({"path", "completed", "goodput kb/s", "srtt ms", "rexmits",
             "gw fragments"});
    struct Tech {
        const char* name;
        link::LinkParams params;
        std::uint64_t bytes;
    };
    const Tech techs[] = {
        {"ethernet 10M", link::presets::ethernet_hop(), 2ull * 1024 * 1024},
        {"leased line 56k", link::presets::leased_line(), 128 * 1024},
        {"satellite T1 (500ms RTT)", link::presets::satellite(), 1024 * 1024},
        {"packet radio (lossy)", link::presets::packet_radio(), 128 * 1024},
        {"serial 1200 b/s", link::presets::slow_serial(), 8 * 1024},
        {"X.25-era PDN hop", link::presets::x25_hop(), 128 * 1024},
    };
    for (const auto& tech : techs) {
        const auto r = run_single(tech.params, tech.bytes);
        t.row({tech.name, r.completed ? "yes" : "NO", fmt(r.goodput_kbps, 1),
               fmt(r.srtt_ms, 1), fmt_u(r.retransmits), fmt_u(r.fragments)});
    }
    const auto concat = run_concatenated(128 * 1024);
    t.row({"eth+sat+radio+56k concatenated", concat.completed ? "yes" : "NO",
           fmt(concat.goodput_kbps, 1), fmt(concat.srtt_ms, 1),
           fmt_u(concat.retransmits), fmt_u(concat.fragments)});
    t.print();

    verdict(
        "every technology carries the identical TCP to completion. Goodput "
        "tracks each network's raw rate, the RTT estimator absorbs three "
        "orders of magnitude of delay variation, loss is repaired end to "
        "end, and gateways re-fragment transparently where MTUs shrink — "
        "the goal-3 'minimal assumptions' discipline doing its job.");
    return 0;
}
