// Shared helpers for the experiment benchmarks: aligned table printing,
// progress/stall tracking, and fairness metrics. Every bench_eN binary
// prints (1) the paper's claim, (2) a table of measurements, (3) the
// observed verdict, so EXPERIMENTS.md can quote them directly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/timer.h"

namespace catenet::bench {

/// Fixed-width table writer for bench output.
class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    Table& row(std::vector<std::string> cells) {
        rows_.push_back(std::move(cells));
        return *this;
    }

    void print() const {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
        for (const auto& r : rows_) {
            for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
                width[i] = std::max(width[i], r[i].size());
            }
        }
        auto print_row = [&](const std::vector<std::string>& cells) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                std::printf("%-*s  ", static_cast<int>(width[i]), cells[i].c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::string rule;
        for (std::size_t i = 0; i < headers_.size(); ++i) {
            rule += std::string(width[i], '-') + "  ";
        }
        std::printf("%s\n", rule.c_str());
        for (const auto& r : rows_) print_row(r);
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

inline void banner(const char* experiment, const char* claim) {
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("paper claim: %s\n", claim);
    std::printf("==============================================================\n\n");
}

inline void verdict(const char* text) { std::printf("\nverdict: %s\n\n", text); }

/// Samples a byte counter periodically and reports the longest interval
/// with zero progress (the user-visible "stall" after a failure).
class StallTracker {
public:
    /// `target`: measurement stops once progress reaches it (so idle time
    /// after completion is not mistaken for a stall). 0 = never stop.
    StallTracker(sim::Simulator& sim, std::function<std::uint64_t()> progress,
                 std::uint64_t target = 0,
                 sim::Time sample_period = sim::milliseconds(100))
        : progress_(std::move(progress)),
          target_(target),
          timer_(sim, [this, &sim] { sample(sim.now()); }) {
        timer_.start(sample_period);
    }

    sim::Time longest_stall() const noexcept { return longest_; }

private:
    void sample(sim::Time now) {
        const std::uint64_t current = progress_();
        if (!started_ && current > 0) {
            started_ = true;
            last_progress_at_ = now;
        }
        if (!started_) return;
        if (current > last_value_) {
            last_value_ = current;
            last_progress_at_ = now;
        } else {
            longest_ = std::max(longest_, now - last_progress_at_);
        }
        if (target_ != 0 && current >= target_) timer_.stop();
    }

    std::function<std::uint64_t()> progress_;
    std::uint64_t target_ = 0;
    sim::PeriodicTimer timer_;
    std::uint64_t last_value_ = 0;
    sim::Time last_progress_at_;
    sim::Time longest_;
    bool started_ = false;
};

/// Jain's fairness index over per-flow throughputs: 1.0 = perfectly fair.
inline double jain_index(const std::vector<double>& xs) {
    double sum = 0, sum_sq = 0;
    for (double x : xs) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq == 0) return 0;
    return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace catenet::bench
