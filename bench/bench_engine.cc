// Event-engine benchmarks: the scheduling hot path that bounds the
// simulated packets-per-second of every experiment. Three regimes:
//
//   BM_ScheduleCancel  — schedule + cancel against a standing backlog,
//                        the TCP-retransmission-timer pattern (armed on
//                        every segment, cancelled by almost every ack).
//   BM_TimerWheelChurn — a population of sim::Timers re-armed round-robin,
//                        the protocol-timer steady state of a large net.
//   BM_ForwardPps      — end-to-end: one datagram pushed through an N-hop
//                        chain of real ip::IpStack gateways per iteration;
//                        items/sec is simulated forwarded-packets/sec.
//
// Run via the `bench` target, which emits BENCH_engine.json.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace {

using namespace catenet;

// Capture bulky enough (40 bytes) to defeat libstdc++'s tiny SSO buffer in
// std::function yet fit the engine's 48-byte inline-callback storage: the
// exact size class the schedule path must never heap-allocate for.
struct FatCapture {
    std::uint64_t a, b, c, d;
    std::uint64_t* sink;
};

void BM_ScheduleCancel(benchmark::State& state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    FatCapture fat{1, 2, 3, 4, &sink};
    // Standing backlog so heap pushes pay a realistic log(n).
    const std::int64_t horizon = 1'000'000'000'000;  // far future
    for (int i = 0; i < 1000; ++i) {
        sim.schedule_at(sim::Time(horizon + i), [fat] { *fat.sink += fat.a; });
    }
    for (auto _ : state) {
        auto id = sim.schedule_after(sim::milliseconds(200),
                                     [fat] { *fat.sink += fat.b; });
        sim.cancel(id);
        benchmark::DoNotOptimize(id);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ScheduleCancel);

void BM_TimerWheelChurn(benchmark::State& state) {
    sim::Simulator sim;
    std::uint64_t fires = 0;
    std::vector<std::unique_ptr<sim::Timer>> timers;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    timers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        timers.push_back(std::make_unique<sim::Timer>(sim, [&fires] { ++fires; }));
        timers.back()->schedule(sim::milliseconds(100 + static_cast<std::int64_t>(i)));
    }
    std::size_t next = 0;
    for (auto _ : state) {
        // Re-arm one pending timer per op: the ack-advances-the-RTO pattern.
        timers[next]->schedule(sim::milliseconds(200));
        if (++next == n) {
            next = 0;
            // Let simulated time creep forward so some timers actually fire.
            sim.run_until(sim.now() + sim::microseconds(50));
        }
    }
    benchmark::DoNotOptimize(fires);
}
BENCHMARK(BM_TimerWheelChurn)->Arg(64)->Arg(1024);

void BM_ForwardPps(benchmark::State& state) {
    const int hops = static_cast<int>(state.range(0));
    core::Internetwork net(42);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    std::vector<core::Gateway*> gws;
    for (int i = 0; i < hops; ++i) gws.push_back(&net.add_gateway("g" + std::to_string(i)));
    core::Node* prev = &a;
    for (auto* gw : gws) {
        net.connect(*prev, *gw, link::presets::ethernet_hop());
        prev = gw;
    }
    net.connect(*prev, b, link::presets::ethernet_hop());
    net.use_static_routes();

    std::uint64_t delivered = 0;
    constexpr std::uint8_t kProto = 253;  // RFC 3692 experimental
    b.ip().register_protocol(kProto, [&delivered](const ip::Ipv4Header&,
                                                  std::span<const std::uint8_t>,
                                                  std::size_t) { ++delivered; });
    const std::vector<std::uint8_t> payload(512, 0xab);
    const auto dst = b.address();
    for (auto _ : state) {
        a.ip().send(kProto, dst, payload);
        net.sim().run();  // drain: full store-and-forward path per op
    }
    if (delivered != static_cast<std::uint64_t>(state.iterations())) {
        state.SkipWithError("datagrams lost in forwarding chain");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.counters["hops"] = static_cast<double>(hops);
}
BENCHMARK(BM_ForwardPps)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
