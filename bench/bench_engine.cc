// Event-engine benchmarks: the scheduling hot path that bounds the
// simulated packets-per-second of every experiment. Three regimes:
//
//   BM_ScheduleCancel  — schedule + cancel against a standing backlog,
//                        the TCP-retransmission-timer pattern (armed on
//                        every segment, cancelled by almost every ack).
//   BM_TimerWheelChurn — a population of sim::Timers re-armed round-robin,
//                        the protocol-timer steady state of a large net.
//   BM_ForwardPps      — end-to-end: one datagram pushed through an N-hop
//                        chain of real ip::IpStack gateways per iteration;
//                        items/sec is simulated forwarded-packets/sec.
//   BM_ForwardBurst    — N back-to-back datagrams through one gateway on a
//                        long fat link per iteration: the wire regime where
//                        whole runs are in flight at once, i.e. the burst
//                        pipeline's target workload (and, at Arg(1), its
//                        single-packet bypass). Deliberately expressed in
//                        params every engine generation understands, so the
//                        same source A/Bs across trees (bench/ab_compare.sh).
//   BM_TcpGoodput      — bulk TCP transfer over an established connection
//                        across 1- and 4-link paths at several MSS values;
//                        bytes/sec is simulated TCP goodput.
//   BM_TcpConnChurn    — full connect/transfer-nothing/close lifecycle per
//                        iteration: handshake, FIN exchange, TIME-WAIT.
//
// Run via the `bench` target, which emits BENCH_engine.json.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "tcp/tcp.h"
#include "telemetry/counters.h"

namespace {

using namespace catenet;

// Folds the run's nonzero network counter totals into the benchmark's user
// counters, so BENCH_engine.json carries packet-level accounting (segments,
// retransmits, forwards, prediction hits) alongside the timing.
void export_network_counters(benchmark::State& state, const core::Internetwork& net) {
    const telemetry::CounterBlock totals = net.metrics().totals();
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        const auto c = static_cast<telemetry::Counter>(i);
        if (totals.get(c) == 0) continue;
        state.counters[std::string("net.") + telemetry::counter_name(c)] =
            static_cast<double>(totals.get(c));
    }
}

// Capture bulky enough (40 bytes) to defeat libstdc++'s tiny SSO buffer in
// std::function yet fit the engine's 64-byte inline-callback storage: the
// exact size class the schedule path must never heap-allocate for.
struct FatCapture {
    std::uint64_t a, b, c, d;
    std::uint64_t* sink;
};

void BM_ScheduleCancel(benchmark::State& state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    FatCapture fat{1, 2, 3, 4, &sink};
    // Standing backlog so heap pushes pay a realistic log(n).
    const std::int64_t horizon = 1'000'000'000'000;  // far future
    for (int i = 0; i < 1000; ++i) {
        sim.schedule_at(sim::Time(horizon + i), [fat] { *fat.sink += fat.a; });
    }
    for (auto _ : state) {
        auto id = sim.schedule_after(sim::milliseconds(200),
                                     [fat] { *fat.sink += fat.b; });
        sim.cancel(id);
        benchmark::DoNotOptimize(id);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ScheduleCancel);

void BM_TimerWheelChurn(benchmark::State& state) {
    sim::Simulator sim;
    std::uint64_t fires = 0;
    std::vector<std::unique_ptr<sim::Timer>> timers;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    timers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        timers.push_back(std::make_unique<sim::Timer>(sim, [&fires] { ++fires; }));
        timers.back()->schedule(sim::milliseconds(100 + static_cast<std::int64_t>(i)));
    }
    std::size_t next = 0;
    for (auto _ : state) {
        // Re-arm one pending timer per op: the ack-advances-the-RTO pattern.
        timers[next]->schedule(sim::milliseconds(200));
        if (++next == n) {
            next = 0;
            // Let simulated time creep forward so some timers actually fire.
            sim.run_until(sim.now() + sim::microseconds(50));
        }
    }
    benchmark::DoNotOptimize(fires);
}
BENCHMARK(BM_TimerWheelChurn)->Arg(64)->Arg(1024);

void BM_ForwardPps(benchmark::State& state) {
    const int hops = static_cast<int>(state.range(0));
    core::Internetwork net(42);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    std::vector<core::Gateway*> gws;
    for (int i = 0; i < hops; ++i) gws.push_back(&net.add_gateway("g" + std::to_string(i)));
    core::Node* prev = &a;
    for (auto* gw : gws) {
        net.connect(*prev, *gw, link::presets::ethernet_hop());
        prev = gw;
    }
    net.connect(*prev, b, link::presets::ethernet_hop());
    net.use_static_routes();

    std::uint64_t delivered = 0;
    constexpr std::uint8_t kProto = 253;  // RFC 3692 experimental
    b.ip().register_protocol(kProto, [&delivered](const ip::Ipv4Header&,
                                                  std::span<const std::uint8_t>,
                                                  std::size_t) { ++delivered; });
    const std::vector<std::uint8_t> payload(512, 0xab);
    const auto dst = b.address();
    for (auto _ : state) {
        a.ip().send(kProto, dst, payload);
        net.sim().run();  // drain: full store-and-forward path per op
    }
    if (delivered != static_cast<std::uint64_t>(state.iterations())) {
        state.SkipWithError("datagrams lost in forwarding chain");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.counters["hops"] = static_cast<double>(hops);
    export_network_counters(state, net);
}
BENCHMARK(BM_ForwardPps)->Arg(1)->Arg(4)->Arg(8);

void BM_ForwardBurst(benchmark::State& state) {
    const int wave = static_cast<int>(state.range(0));
    core::Internetwork net(42);
    core::Host& a = net.add_host("a");
    core::Gateway& gw = net.add_gateway("gw");
    core::Host& b = net.add_host("b");
    // 100 Mb/s with 2 ms of propagation: tx(532B) = 42.56us, so a 32-deep
    // wave is entirely in flight before the first datagram lands — the
    // sustained-run regime, as opposed to BM_ForwardPps's one-at-a-time
    // store-and-forward.
    link::LinkParams wan;
    wan.bits_per_second = 100'000'000;
    wan.propagation_delay = sim::milliseconds(2);
    wan.queue_capacity_packets = 64;
    net.connect(a, gw, wan);
    net.connect(gw, b, wan);
    net.use_static_routes();

    std::uint64_t delivered = 0;
    constexpr std::uint8_t kProto = 253;
    b.ip().register_protocol(kProto, [&delivered](const ip::Ipv4Header&,
                                                  std::span<const std::uint8_t>,
                                                  std::size_t) { ++delivered; });
    const std::vector<std::uint8_t> payload(512, 0xab);
    const auto dst = b.address();
    for (auto _ : state) {
        for (int i = 0; i < wave; ++i) a.ip().send(kProto, dst, payload);
        net.sim().run();
    }
    const auto expected =
        static_cast<std::uint64_t>(state.iterations()) * static_cast<std::uint64_t>(wave);
    if (delivered != expected) {
        state.SkipWithError("datagrams lost in burst forwarding");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(expected));
    export_network_counters(state, net);
}
BENCHMARK(BM_ForwardBurst)->Arg(1)->Arg(32);

// Segmentation offload (GSO/GRO, DESIGN.md §12) is on by default, exactly
// as real traffic runs it. CATENET_NO_OFFLOAD=1 forces the per-segment
// pipeline so bench/gate_offload.sh can A/B the two modes from one binary.
bool offload_enabled() {
    static const bool on = std::getenv("CATENET_NO_OFFLOAD") == nullptr;
    return on;
}

// Builds an a — (links-1 gateways) — b chain and returns it ready to run.
struct TcpPath {
    explicit TcpPath(int links) : net(1988) {
        core::Host& host_a = net.add_host("a");
        core::Host& host_b = net.add_host("b");
        core::Node* prev = &host_a;
        for (int i = 0; i < links - 1; ++i) {
            core::Gateway& gw = net.add_gateway("g" + std::to_string(i));
            net.connect(*prev, gw, link::presets::ethernet_hop());
            prev = &gw;
        }
        net.connect(*prev, host_b, link::presets::ethernet_hop());
        net.use_static_routes();
        a = &host_a;
        b = &host_b;
    }
    core::Internetwork net;
    core::Host* a;
    core::Host* b;
};

void BM_TcpGoodput(benchmark::State& state) {
    const int links = static_cast<int>(state.range(0));
    const auto mss = static_cast<std::uint16_t>(state.range(1));
    TcpPath path(links);

    std::uint64_t received = 0;
    tcp::TcpConfig cfg;
    cfg.mss_cap = mss;
    cfg.segmentation_offload = offload_enabled();
    path.b->tcp().listen(
        80,
        [&received](std::shared_ptr<tcp::TcpSocket> s) {
            s->on_data = [&received](std::span<const std::uint8_t> d) {
                received += d.size();
            };
        },
        cfg);
    auto client = path.a->tcp().connect(path.b->address(), 80, cfg);
    path.net.sim().run();
    if (!client->connected()) {
        state.SkipWithError("TCP handshake did not complete");
        return;
    }

    constexpr std::uint64_t kChunk = 256 * 1024;
    const std::vector<std::uint8_t> block(16 * 1024, 0x5a);
    std::uint64_t queued = 0;
    std::uint64_t goal = 0;
    auto pump = [&] {
        while (queued < goal) {
            const std::size_t want =
                std::min<std::uint64_t>(block.size(), goal - queued);
            const auto accepted = client->send(
                std::span<const std::uint8_t>(block.data(), want));
            queued += accepted;
            if (accepted < want) break;
        }
    };
    client->on_send_space = pump;

    for (auto _ : state) {
        goal += kChunk;
        pump();
        path.net.sim().run();
        if (received != goal) {
            state.SkipWithError("bytes lost in bulk transfer");
            return;
        }
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(state.iterations()) * kChunk));
    state.counters["links"] = static_cast<double>(links);
    state.counters["mss"] = static_cast<double>(mss);
    export_network_counters(state, path.net);
}
BENCHMARK(BM_TcpGoodput)
    ->Args({1, 536})
    ->Args({1, 1460})
    ->Args({4, 536})
    ->Args({4, 1460});

// N concurrent bulk connections interleaved through one shared gateway:
// the regime where receive runs are short and keep switching connections,
// so the GRO run pin earns (or loses) its keep. Aggregate goodput over
// all connections is the reported byte rate.
void BM_TcpManyConns(benchmark::State& state) {
    const int conns = static_cast<int>(state.range(0));
    TcpPath path(2);  // a — g0 — b: every connection shares the middle hop

    std::uint64_t received = 0;
    tcp::TcpConfig cfg;
    cfg.segmentation_offload = offload_enabled();
    path.b->tcp().listen(
        80,
        [&received](std::shared_ptr<tcp::TcpSocket> s) {
            s->on_data = [&received](std::span<const std::uint8_t> d) {
                received += d.size();
            };
        },
        cfg);

    struct Conn {
        std::shared_ptr<tcp::TcpSocket> socket;
        std::uint64_t queued = 0;
        std::uint64_t goal = 0;
    };
    std::vector<Conn> c(static_cast<std::size_t>(conns));
    const std::vector<std::uint8_t> block(16 * 1024, 0x5a);
    for (auto& conn : c) {
        conn.socket = path.a->tcp().connect(path.b->address(), 80, cfg);
        Conn* cp = &conn;  // stable: the vector never grows after this loop
        conn.socket->on_send_space = [cp, &block] {
            while (cp->queued < cp->goal) {
                const std::size_t want = std::min<std::uint64_t>(
                    block.size(), cp->goal - cp->queued);
                const auto accepted = cp->socket->send(
                    std::span<const std::uint8_t>(block.data(), want));
                cp->queued += accepted;
                if (accepted < want) break;
            }
        };
    }
    path.net.sim().run();
    for (const auto& conn : c) {
        if (!conn.socket->connected()) {
            state.SkipWithError("TCP handshake did not complete");
            return;
        }
    }

    constexpr std::uint64_t kChunkPerConn = 32 * 1024;
    std::uint64_t goal_total = 0;
    for (auto _ : state) {
        for (auto& conn : c) {
            conn.goal += kChunkPerConn;
            conn.socket->on_send_space();
        }
        goal_total += kChunkPerConn * static_cast<std::uint64_t>(conns);
        path.net.sim().run();
        if (received != goal_total) {
            state.SkipWithError("bytes lost in bulk transfer");
            return;
        }
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(goal_total));
    state.counters["conns"] = static_cast<double>(conns);
    export_network_counters(state, path.net);
}
BENCHMARK(BM_TcpManyConns)->Arg(8)->Arg(64);

void BM_TcpConnChurn(benchmark::State& state) {
    TcpPath path(1);
    tcp::TcpConfig cfg;
    cfg.segmentation_offload = offload_enabled();
    path.b->tcp().listen(
        80,
        [](std::shared_ptr<tcp::TcpSocket> s) {
            // Raw capture: a strong self-capture would cycle and leak.
            s->on_remote_close = [raw = s.get()] { raw->close(); };
        },
        cfg);
    for (auto _ : state) {
        bool closed = false;
        auto client = path.a->tcp().connect(path.b->address(), 80, cfg);
        client->on_connected = [&client] { client->close(); };
        client->on_closed = [&closed] { closed = true; };
        path.net.sim().run();  // handshake, FIN exchange, 2MSL TIME-WAIT
        if (!closed) {
            state.SkipWithError("connection did not complete its lifecycle");
            return;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TcpConnChurn);

}  // namespace

BENCHMARK_MAIN();
