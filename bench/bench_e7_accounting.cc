// E7 — Accountability (the paper's goal #7, "placed nearly last").
//
// Claim: "the Internet architecture ... provides poor tools for
// accounting for packet flows"; gateways see datagrams, not conversations.
// The flows-and-soft-state idea sketched in the paper's closing section is
// what makes gateway-grain accounting possible: classify packets into
// flows and keep soft per-flow counters.
//
// Setup: a gateway with a flow table forwards a known mixture of UDP and
// TCP conversations. We compare the gateway's books against ground truth,
// and measure the two ways they inevitably diverge: wire bytes vs
// application bytes (headers), and retransmissions (charged by the
// network, sent once by the application).
#include <chrono>

#include "app/bulk.h"
#include "common.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;
using namespace catenet::bench;

int main() {
    banner("E7 — accounting for packet flows at a gateway",
           "the datagram layer has no notion of a conversation; per-flow "
           "soft state in gateways yields usable books, but the meter "
           "counts wire bytes and retransmissions, not application bytes");

    core::Internetwork net(7007);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");
    link::LinkParams right = link::presets::ethernet_hop();
    right.drop_probability = 0.02;  // force some TCP retransmissions
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, right);
    net.use_static_routes();
    auto& flows = g.enable_flow_accounting(sim::seconds(30));

    // Ground truth: two paced UDP streams and one TCP transfer.
    auto rx1 = b.udp().bind(1000);
    rx1->set_handler([](auto, auto, auto) {});
    auto rx2 = b.udp().bind(2000);
    rx2->set_handler([](auto, auto, auto) {});
    auto tx1 = a.udp().bind_ephemeral();
    auto tx2 = a.udp().bind_ephemeral();
    tx2->set_tos(0x10);

    constexpr int kUdp1Packets = 500;   // 200-byte payloads
    constexpr int kUdp2Packets = 250;   // 1000-byte payloads
    sim::PeriodicTimer pacer1(net.sim(), [&, n = 0]() mutable {
        if (n++ < kUdp1Packets) tx1->send_to(b.address(), 1000, util::ByteBuffer(200, 1));
    });
    sim::PeriodicTimer pacer2(net.sim(), [&, n = 0]() mutable {
        if (n++ < kUdp2Packets) tx2->send_to(b.address(), 2000, util::ByteBuffer(1000, 2));
    });
    pacer1.start(sim::milliseconds(20));
    pacer2.start(sim::milliseconds(40));

    constexpr std::uint64_t kTcpBytes = 2ull * 1024 * 1024;
    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, kTcpBytes);
    sender.start();

    net.run_for(sim::seconds(25));
    pacer1.stop();
    pacer2.stop();

    std::printf("[gateway books after 25 s, vs ground truth]\n");
    Table t({"flow (proto/tos)", "gw packets", "gw bytes", "truth app bytes",
             "meter/app ratio"});
    for (const auto& [key, rec] : flows.flows()) {
        std::string label = key.protocol == 17 ? "UDP" : key.protocol == 6 ? "TCP" : "?";
        label += "/tos=" + std::to_string(key.tos);
        std::uint64_t truth = 0;
        if (key.protocol == 17 && key.tos == 0) truth = 500ull * 200;
        if (key.protocol == 17 && key.tos == 0x10) truth = 250ull * 1000;
        if (key.protocol == 6 && key.src == a.address().value()) truth = kTcpBytes;
        if (truth == 0) continue;  // reverse-direction ACK flow etc.
        t.row({label, fmt_u(rec.packets), fmt_u(rec.bytes), fmt_u(truth),
               fmt(static_cast<double>(rec.bytes) / static_cast<double>(truth), 3)});
    }
    t.print();
    std::printf("\nflows tracked: %zu (incl. reverse ACK flows); created %llu, "
                "expired %llu — state is soft and self-limiting\n",
                flows.active_flows(),
                static_cast<unsigned long long>(flows.stats().flows_created),
                static_cast<unsigned long long>(flows.stats().flows_expired));
    std::printf("TCP retransmitted %llu bytes: the network meter bills them, the "
                "application sent them once\n",
                static_cast<unsigned long long>(
                    sender.socket_stats().retransmitted_bytes));

    // Classifier cost (wall clock): the per-packet price of accounting.
    {
        ip::Ipv4Header h;
        h.protocol = 6;
        h.src = util::Ipv4Address(10, 0, 0, 1);
        h.dst = util::Ipv4Address(10, 0, 1, 1);
        util::BufferWriter tp;
        tp.put_u16(1234);
        tp.put_u16(80);
        tp.put_zero(16);
        const auto wire = ip::encode_datagram(h, tp.data());
        constexpr int kIters = 2'000'000;
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t sink = 0;
        for (int i = 0; i < kIters; ++i) {
            auto key = core::classify_packet(wire);
            sink += key ? key->hash() : 0;
        }
        const auto dt = std::chrono::steady_clock::now() - t0;
        const double ns =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
            kIters;
        std::printf("\nclassifier cost: %.1f ns/packet (checksum+parse+hash; sink=%llx)\n",
                    ns, static_cast<unsigned long long>(sink & 0xf));
    }

    verdict(
        "per-flow soft state gives the gateway accurate packet counts per "
        "conversation at sub-microsecond per-packet cost, but what it "
        "meters is wire bytes — headers inflate small-packet flows and "
        "retransmissions are billed although the user sent them once. "
        "Exactly the paper's complaint: the architecture accounts for "
        "datagrams, while 'accounting must be done at the flow level'.");
    return 0;
}
