// E6 — The host as part of the architecture (the paper's goal #6).
//
// Claim: "the burden of reliability was placed on the host ... a poor
// implementation of the [transport] mechanism can hurt the host" — and,
// as 1986's congestion collapses showed, a misbehaving host also hurts
// everyone sharing the path. The architecture cannot force a host to
// implement TCP well; it can only arrange that most of the pain lands on
// the offender.
//
// Setup: two senders share a 512 kbit/s bottleneck. Each is either a
// well-behaved 1988 TCP (adaptive RTO, slow start, congestion avoidance,
// fast retransmit) or a "naive host" (fixed 1 s retransmission timer, no
// congestion control, no fast retransmit) — the implementation quality
// the paper frets about.
#include "app/bulk.h"
#include "common.h"
#include "core/internetwork.h"
#include "link/presets.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

tcp::TcpConfig good_host() { return tcp::TcpConfig{}; }

tcp::TcpConfig naive_host() {
    tcp::TcpConfig c;
    c.adaptive_rto = false;
    c.fixed_rto = sim::seconds(1);
    c.congestion_control = false;
    c.fast_retransmit = false;
    return c;
}

struct Outcome {
    double goodput_a_kbps;
    double goodput_b_kbps;
    double waste_pct;  // retransmitted bytes / first-transmission bytes
    double util_pct;   // bottleneck utilization by useful data
};

Outcome run(const tcp::TcpConfig& cfg_a, const tcp::TcpConfig& cfg_b) {
    core::Internetwork net(6006);
    core::Host& src_a = net.add_host("srcA");
    core::Host& src_b = net.add_host("srcB");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");

    link::LinkParams bottleneck = link::presets::leased_line();
    bottleneck.bits_per_second = 512'000;
    bottleneck.queue_capacity_packets = 16;
    net.connect(src_a, g1, link::presets::ethernet_hop());
    net.connect(src_b, g1, link::presets::ethernet_hop());
    net.connect(g1, g2, bottleneck);
    net.connect(g2, dst, link::presets::ethernet_hop());
    net.use_static_routes();

    constexpr auto kRun = sim::seconds(120);
    app::BulkServer server_a(dst, 21, cfg_a);
    app::BulkServer server_b(dst, 22, cfg_b);
    app::BulkSender a(src_a, dst.address(), 21, 512ull * 1024 * 1024, cfg_a);
    app::BulkSender b(src_b, dst.address(), 22, 512ull * 1024 * 1024, cfg_b);
    a.start();
    b.start();
    net.run_for(kRun);

    Outcome out;
    out.goodput_a_kbps =
        static_cast<double>(server_a.total_bytes_received()) * 8 / 1000 / kRun.seconds();
    out.goodput_b_kbps =
        static_cast<double>(server_b.total_bytes_received()) * 8 / 1000 / kRun.seconds();
    const auto& sa = a.socket_stats();
    const auto& sb = b.socket_stats();
    const double first = static_cast<double>(sa.bytes_sent + sb.bytes_sent);
    const double redo = static_cast<double>(sa.retransmitted_bytes + sb.retransmitted_bytes);
    out.waste_pct = first > 0 ? 100.0 * redo / (first + redo) : 0;
    out.util_pct = (out.goodput_a_kbps + out.goodput_b_kbps) / 512.0 * 100.0;
    return out;
}

}  // namespace

int main() {
    banner("E6 — implementation quality of the host transport",
           "the architecture pushes reliability into hosts; a host that "
           "implements it poorly mostly hurts its own performance, and a "
           "population of such hosts wastes the network (the congestion-"
           "collapse scenario that motivated Jacobson's algorithms)");

    std::printf("[two senders share a 512 kbit/s bottleneck for 120 s]\n");
    Table t({"sender A / sender B", "A goodput kb/s", "B goodput kb/s",
             "wire waste %", "useful util %"});
    const auto gg = run(good_host(), good_host());
    t.row({"good / good", fmt(gg.goodput_a_kbps, 0), fmt(gg.goodput_b_kbps, 0),
           fmt(gg.waste_pct, 1), fmt(gg.util_pct, 1)});
    const auto gn = run(good_host(), naive_host());
    t.row({"good / NAIVE", fmt(gn.goodput_a_kbps, 0), fmt(gn.goodput_b_kbps, 0),
           fmt(gn.waste_pct, 1), fmt(gn.util_pct, 1)});
    const auto nn = run(naive_host(), naive_host());
    t.row({"NAIVE / NAIVE", fmt(nn.goodput_a_kbps, 0), fmt(nn.goodput_b_kbps, 0),
           fmt(nn.waste_pct, 1), fmt(nn.util_pct, 1)});
    t.print();

    verdict(
        "two good hosts split the link cleanly with negligible waste. A "
        "naive host opposite a good one mostly damages itself (its fixed "
        "timer and missing congestion control keep its goodput low) while "
        "degrading the shared queue; two naive hosts drive waste up and "
        "useful utilization down — a miniature of the 1986 congestion "
        "collapse the paper alludes to, and the reason host implementation "
        "quality is an architectural concern.");
    return 0;
}
