#!/bin/sh
# Telemetry overhead gate: measures what the additive observation
# machinery — the flight-recorder branch and the note() observation bodies
# — costs on the two hot paths the repo gates: N-hop forwarding and
# established-flow TCP goodput. (The counter block itself is the storage
# behind the per-stack statistics and is live on both sides; events are
# counted once, so there is no separate "counters off" configuration that
# still behaves like the simulator.) Side A builds with
# -DCATENET_NO_TELEMETRY=ON, side B is the tree as-is; the gate fails if
# the instrumented build is more than TOL percent slower on any benchmark.
#
# Thin wrapper: the interleaved best-of-N CPU-time methodology lives in
# bench/ab_compare.sh, shared by every perf gate.
#
# Usage: bench/ab_overhead.sh  [from anywhere; builds siblings of bench/]
#   TOL=3 ROUNDS=5 MIN_TIME=0.2 to override.
set -eu

HERE=$(cd "$(dirname "$0")" && pwd)
SRC=$(cd "$HERE/.." && pwd)

TOL=${TOL:-3}
export ROUNDS=${ROUNDS:-5}
export MIN_TIME=${MIN_TIME:-0.2}
export MODE=max-regression
export A_NAME=tel-off
export B_NAME=tel-on
export A_CMAKE="-DCATENET_NO_TELEMETRY=ON"
export A_BUILD="$SRC/build-tel-off"
export B_BUILD="$SRC/build-tel-on"

echo "== telemetry A/B overhead gate (tolerance ${TOL}%, best of ${ROUNDS}) =="
exec "$HERE/ab_compare.sh" 'BM_ForwardPps/4$|BM_TcpGoodput/1/1460$' "$TOL"
