#!/bin/sh
# Telemetry overhead gate: measures what this PR's additive observation
# machinery — the flight-recorder branch and the note() observation bodies
# — costs on the two hot paths the repo gates: N-hop forwarding and
# established-flow TCP goodput. (The counter block itself is the storage
# behind the per-stack statistics and is live on both sides; events are
# counted once, so there is no separate "counters off" configuration that
# still behaves like the simulator.) The tree is built twice, once as-is
# and once with -DCATENET_NO_TELEMETRY=ON, and both binaries run strictly
# interleaved (ON, OFF, ON, OFF, ...) to cancel box-load drift, best of N
# rounds per side, CPU time (the PR 3/PR 4 A/B methodology in CHANGES.md).
# -falign-functions=64 on both sides tames the code-placement lottery
# between separately linked binaries, which at the ~400 ns scale of
# BM_ForwardPps otherwise swamps a few-percent signal. Fails if the
# instrumented build is more than TOL percent slower on any benchmark.
#
# Usage: bench/ab_overhead.sh  [from anywhere; builds siblings of bench/]
#   TOL=3 ROUNDS=5 MIN_TIME=0.2 to override.
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
ON="$SRC/build-tel-on"
OFF="$SRC/build-tel-off"
TOL=${TOL:-3}
ROUNDS=${ROUNDS:-5}
MIN_TIME=${MIN_TIME:-0.2}
FILTER='BM_ForwardPps/4$|BM_TcpGoodput/1/1460$'
OUT="$SRC/build-tel-on/ab"

echo "== telemetry A/B overhead gate (tolerance ${TOL}%, best of ${ROUNDS}) =="

cmake -S "$SRC" -B "$ON" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-falign-functions=64 >/dev/null
cmake -S "$SRC" -B "$OFF" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-falign-functions=64 \
    -DCATENET_NO_TELEMETRY=ON >/dev/null
cmake --build "$ON" --target bench_engine --parallel 2 >/dev/null
cmake --build "$OFF" --target bench_engine --parallel 2 >/dev/null

mkdir -p "$OUT"
i=1
while [ "$i" -le "$ROUNDS" ]; do
    for side in on off; do
        if [ "$side" = on ]; then tree="$ON"; else tree="$OFF"; fi
        "$tree/bench/bench_engine" \
            --benchmark_filter="$FILTER" \
            --benchmark_min_time="$MIN_TIME" \
            --benchmark_out="$OUT/${side}_${i}.json" \
            --benchmark_out_format=json >/dev/null
    done
    echo "round $i/$ROUNDS done"
    i=$((i + 1))
done

python3 - "$OUT" "$TOL" "$ROUNDS" <<'EOF'
import json, sys

out, tol, rounds = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])

def best(side):
    per = {}
    for i in range(1, rounds + 1):
        with open(f"{out}/{side}_{i}.json") as f:
            for b in json.load(f)["benchmarks"]:
                t = b["cpu_time"]
                name = b["name"]
                if name not in per or t < per[name]:
                    per[name] = t
    return per

on, off = best("on"), best("off")
failed = False
print(f"{'benchmark':<24} {'off ns':>10} {'on ns':>10} {'overhead':>9}")
for name in sorted(off):
    o, n = off[name], on[name]
    pct = (n - o) / o * 100.0
    flag = ""
    if pct > tol:
        failed = True
        flag = f"  EXCEEDS {tol:.0f}%"
    print(f"{name:<24} {o:>10.1f} {n:>10.1f} {pct:>+8.2f}%{flag}")
if failed:
    sys.exit("telemetry overhead gate FAILED")
print("telemetry overhead gate OK")
EOF
