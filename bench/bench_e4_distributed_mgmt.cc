// E4 — Distributed management of resources (the paper's goal #4).
//
// Claim: the Internet must be manageable by multiple independent
// administrations: gateways of one region exchange routing inside it,
// while a separate two-party protocol (EGP) crosses the management
// boundary with policy control. No single authority configures the whole.
//
// Setup: R regions, each a chain of gateways running distance-vector
// internally; border gateways peer over EGP. We measure how long the whole
// internet takes to learn full reachability, how it reconverges after a
// failure, and what each gateway has to know.
#include "common.h"
#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"

using namespace catenet;
using namespace catenet::bench;

namespace {

struct Build {
    std::unique_ptr<core::Internetwork> net;
    std::vector<core::Gateway*> gateways;
    std::vector<core::Gateway*> borders;
    std::vector<core::Host*> hosts;
    std::size_t inter_region_link = 0;  // first inter-region link index
};

routing::DvConfig fast_dv() {
    routing::DvConfig c;
    c.period = sim::seconds(2);
    c.route_timeout = sim::seconds(7);
    // The historical infinity of 16 caps the internet's diameter — with 5
    // regions of 4 gateways the accumulated metric exceeds it (a real
    // RIP-era scaling wall). Raised here so the sweep can measure the
    // larger topologies; the wall itself is asserted in the test suite.
    c.infinity = 64;
    return c;
}

routing::EgpConfig fast_egp() {
    routing::EgpConfig c;
    c.period = sim::seconds(3);
    c.route_timeout = sim::seconds(10);
    return c;
}

// R regions in a line; each region: host - gw0 - gw1 - ... - gw(n-1);
// gw(n-1) of region i peers with gw0 of region i+1.
Build build(std::size_t regions, std::size_t gws_per_region) {
    Build b;
    b.net = std::make_unique<core::Internetwork>(4004 + regions);
    auto& net = *b.net;
    std::vector<std::vector<core::Gateway*>> region_gws(regions);

    for (std::size_t r = 0; r < regions; ++r) {
        core::Host& h = net.add_host("h" + std::to_string(r));
        b.hosts.push_back(&h);
        for (std::size_t i = 0; i < gws_per_region; ++i) {
            auto& g = net.add_gateway("r" + std::to_string(r) + "g" + std::to_string(i));
            region_gws[r].push_back(&g);
            b.gateways.push_back(&g);
            if (i == 0) {
                net.connect(h, g, link::presets::ethernet_hop());
            } else {
                net.connect(*region_gws[r][i - 1], g, link::presets::ethernet_hop());
            }
        }
    }
    // Inter-region links between adjacent regions' border gateways.
    std::vector<std::size_t> inter_links;
    for (std::size_t r = 0; r + 1 < regions; ++r) {
        inter_links.push_back(net.connect(*region_gws[r].back(), *region_gws[r + 1].front(),
                                          link::presets::leased_line()));
    }
    b.inter_region_link = inter_links.empty() ? 0 : inter_links.front();

    // Interior routing, scoped away from the inter-region interfaces.
    for (std::size_t r = 0; r < regions; ++r) {
        for (std::size_t i = 0; i < region_gws[r].size(); ++i) {
            auto& dv = region_gws[r][i]->enable_distance_vector(fast_dv());
            // Border interfaces: the last gateway's last iface faces the
            // next region; the first gateway's extra iface faces the
            // previous region.
            if (r + 1 < regions && i == region_gws[r].size() - 1) {
                dv.disable_interface(region_gws[r][i]->ip().interface_count() - 1);
            }
            if (r > 0 && i == 0) {
                // first gateway of region r: its inter-region iface is the
                // one added when the inter link was created = last.
                dv.disable_interface(region_gws[r][i]->ip().interface_count() - 1);
            }
        }
    }
    net.install_host_default_routes();

    // EGP between border pairs.
    for (std::size_t r = 0; r + 1 < regions; ++r) {
        auto* left = region_gws[r].back();
        auto* right = region_gws[r + 1].front();
        auto& egp_l = left->enable_egp(static_cast<std::uint16_t>(r + 1), fast_egp());
        auto& egp_r =
            right->enable_egp(static_cast<std::uint16_t>(r + 2), fast_egp());
        egp_l.add_peer(right->ip().interface_address(right->ip().interface_count() - 1));
        egp_r.add_peer(left->ip().interface_address(left->ip().interface_count() - 1));
        b.borders.push_back(left);
        b.borders.push_back(right);
    }
    return b;
}

// Full reachability: host 0 can ping every other region's host.
bool fully_reachable(Build& b) {
    for (std::size_t i = 1; i < b.hosts.size(); ++i) {
        bool found = false;
        // Check the first region's border can route toward host i.
        for (auto* g : b.gateways) {
            auto r = g->ip().routing_table().lookup(b.hosts[i]->address());
            if (!r) return false;
            found = true;
        }
        if (!found) return false;
    }
    return true;
}

}  // namespace

int main() {
    banner("E4 — two-tier routing across independent administrations",
           "regions run their own interior routing; an inter-region protocol "
           "(EGP) with explicit peering and policy filters stitches them "
           "together — no global coordination required");

    Table t({"regions x gws", "gateways", "converged (s)", "reconverge (s)",
             "avg routes/gw", "dv msgs", "egp msgs"});

    for (const auto& [regions, per] :
         std::vector<std::pair<std::size_t, std::size_t>>{{2, 2}, {3, 3}, {4, 3}, {5, 4}}) {
        auto b = build(regions, per);
        auto& net = *b.net;

        // Convergence: run until every gateway can route to every host.
        double converged_s = -1;
        for (int tick = 0; tick < 300; ++tick) {
            net.run_for(sim::milliseconds(500));
            if (fully_reachable(b)) {
                converged_s = net.sim().now().seconds();
                break;
            }
        }

        // Reconvergence after an inter-region link flap.
        net.run_for(sim::seconds(5));
        net.fail_link(b.inter_region_link);
        net.run_for(sim::seconds(30));
        net.restore_link(b.inter_region_link);
        const double t_restore = net.sim().now().seconds();
        double reconverged_s = -1;
        for (int tick = 0; tick < 300; ++tick) {
            net.run_for(sim::milliseconds(500));
            if (fully_reachable(b)) {
                reconverged_s = net.sim().now().seconds() - t_restore;
                break;
            }
        }

        double routes = 0;
        std::uint64_t dv_msgs = 0, egp_msgs = 0;
        for (auto* g : b.gateways) {
            routes += static_cast<double>(g->ip().routing_table().size());
            if (g->distance_vector()) dv_msgs += g->distance_vector()->stats().updates_sent;
            if (g->egp()) egp_msgs += g->egp()->stats().updates_sent;
        }
        routes /= static_cast<double>(b.gateways.size());

        t.row({std::to_string(regions) + " x " + std::to_string(per),
               std::to_string(b.gateways.size()), fmt(converged_s, 1),
               fmt(reconverged_s, 1), fmt(routes, 1), fmt_u(dv_msgs), fmt_u(egp_msgs)});
    }
    t.print();

    verdict(
        "every topology converges to full cross-region reachability in a "
        "handful of protocol periods and reconverges after a border-link "
        "flap, with each gateway holding only its region's routes plus "
        "region-level summaries — the management boundary holds: interior "
        "protocols never cross it, and only configured EGP peers are "
        "believed.");
    return 0;
}
