// Grand integration: one internet exercising every subsystem at once —
// two administrative regions (DV interior + EGP border), a LAN, four link
// technologies, fragmentation, all four application types, flow
// accounting, and a mid-run gateway failure — with cross-checked
// invariants at the end. If the architecture holds together anywhere, it
// must hold together here.
#include <gtest/gtest.h>

#include "app/bulk.h"
#include "app/interactive.h"
#include "app/request_response.h"
#include "app/traceroute.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"

namespace catenet {
namespace {

TEST(GrandIntegration, EverythingAtOnce) {
    core::Internetwork net(20250706);

    // --- region 1: an office LAN behind two gateways -------------------
    core::Host& alice = net.add_host("alice");
    core::Host& bob = net.add_host("bob");
    core::Gateway& r1a = net.add_gateway("r1a");
    core::Gateway& r1b = net.add_gateway("r1b");
    const auto lan = net.add_lan(link::presets::ethernet_lan(), "office");
    net.attach_to_lan(alice, lan);
    net.attach_to_lan(bob, lan);
    net.attach_to_lan(r1a, lan);
    net.connect(r1a, r1b, link::presets::ethernet_hop());

    // --- region 2: a data center -----------------------------------------
    core::Host& server = net.add_host("server");
    core::Gateway& r2a = net.add_gateway("r2a");
    core::Gateway& r2b = net.add_gateway("r2b");
    net.connect(r2a, r2b, link::presets::ethernet_hop());
    net.connect(r2b, server, link::presets::ethernet_hop());

    // --- inter-region links: satellite primary, radio backup ------------
    const auto sat = net.connect(r1b, r2a, link::presets::satellite());
    net.connect(r1b, r2a, link::presets::packet_radio());

    // --- routing: DV interior, EGP between regions ----------------------
    routing::DvConfig dv;
    dv.period = sim::seconds(2);
    dv.route_timeout = sim::seconds(7);
    routing::EgpConfig egp_config;
    egp_config.period = sim::seconds(3);
    egp_config.route_timeout = sim::seconds(10);

    r1a.enable_distance_vector(dv);
    // r1b's interfaces: 0 = link to r1a, 1 = satellite, 2 = radio.
    auto& dv_r1b = r1b.enable_distance_vector(dv);
    dv_r1b.disable_interface(1);
    dv_r1b.disable_interface(2);
    auto& dv_r2a = r2a.enable_distance_vector(dv);
    dv_r2a.disable_interface(1);  // r2a: 0 = to r2b, 1 = satellite, 2 = radio
    dv_r2a.disable_interface(2);
    r2b.enable_distance_vector(dv);
    net.install_host_default_routes();

    auto& egp1 = r1b.enable_egp(1, egp_config);
    auto& egp2 = r2a.enable_egp(2, egp_config);
    egp1.add_peer(r2a.ip().interface_address(1));
    egp1.add_peer(r2a.ip().interface_address(2));
    egp2.add_peer(r1b.ip().interface_address(1));
    egp2.add_peer(r1b.ip().interface_address(2));

    auto& books = r2a.enable_flow_accounting(sim::seconds(60));

    net.run_for(sim::seconds(20));  // converge

    // --- workloads --------------------------------------------------------
    app::BulkServer file_server(server, 21);
    app::BulkSender upload(alice, server.address(), 21, 1024 * 1024);
    upload.start();

    app::EchoServer echo(server, 23);
    app::InteractiveConfig ic;
    ic.mean_interkey = sim::milliseconds(400);
    ic.tcp.nagle = false;
    app::InteractiveClient typist(bob, server.address(), 23, ic);
    typist.start();

    app::RpcServer rpc_server(server, 111);
    app::RpcClientConfig rpc_config;
    rpc_config.mean_interarrival = sim::milliseconds(700);
    app::RpcClient rpc(alice, server.address(), 111, rpc_config);
    rpc.start();

    app::VoiceOverUdp call(bob, server, 5004);
    call.start(sim::seconds(120));

    // --- run, with a mid-flight inter-region failure ---------------------
    net.run_for(sim::seconds(30));
    net.fail_link(sat);  // satellite dies; EGP + DV must move to radio
    net.run_for(sim::seconds(60));
    net.restore_link(sat);
    net.run_for(sim::seconds(120));
    typist.stop();
    rpc.stop();
    net.run_for(sim::seconds(240));  // drain

    // --- invariants --------------------------------------------------------
    // 1. The bulk upload completed exactly, despite the failover.
    EXPECT_TRUE(upload.finished());
    EXPECT_EQ(file_server.total_bytes_received(), 1024u * 1024u);
    EXPECT_EQ(file_server.pattern_errors(), 0u);

    // 2. Interactive and RPC sessions survived and made progress.
    EXPECT_GT(typist.echoes_received(), typist.keystrokes_sent() / 2);
    EXPECT_GT(rpc.responses_received(), 20u);

    // 3. Voice kept flowing (loss during the failover window is expected
    //    and bounded).
    const auto report = call.report();
    EXPECT_GT(report.frames_received, report.frames_sent / 2);

    // 4. No gateway ever held reassembly state for through-traffic.
    for (const auto* g : {&r1a, &r1b, &r2a, &r2b}) {
        EXPECT_EQ(g->ip().reassembly_stats().fragments_received, 0u)
            << g->name() << " must not reassemble in transit";
    }

    // 5. The border gateway's flow books saw all four conversations.
    EXPECT_GE(books.stats().flows_created, 4u);

    // 6. Fragmentation happened (radio MTU 512 < segment sizes) and was
    //    repaired end to end (0 pattern errors above).
    EXPECT_GT(r1b.ip().stats().fragments_created + r2a.ip().stats().fragments_created, 0u);

    // 7. Cross-region reachability is restored end to end.
    int replies = 0;
    alice.ip().register_protocol(
        ip::kProtoIcmp,
        [&](const ip::Ipv4Header&, std::span<const std::uint8_t> p, std::size_t) {
            auto m = ip::decode_icmp(p);
            if (m && m->type == ip::IcmpType::EchoReply) ++replies;
        });
    alice.ip().ping(server.address(), 9, 9);
    net.run_for(sim::seconds(5));
    EXPECT_EQ(replies, 1);
}

}  // namespace
}  // namespace catenet
