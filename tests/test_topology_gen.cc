// Two-tier generator tests: the generator's determinism contract (same
// seed, byte-identical topology), the partitioner's shard assignment on
// generated meshes (LANs pinned to their home gateway), compact leaf-host
// forwarding end to end, and the determinism suite's sequential-vs-sharded
// signature equality on a generated ~1k-node internet.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "app/bulk.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "core/topology_gen.h"
#include "sim/parallel.h"

namespace catenet::core {
namespace {

TwoTierParams small_params(std::uint64_t seed) {
    TwoTierParams p;
    p.gateways = 8;
    p.lans = 16;
    p.hosts_per_lan = 5;
    p.seed = seed;
    return p;
}

TEST(TwoTierPlan, SameSeedSamePlan) {
    const auto a = plan_two_tier(small_params(42));
    const auto b = plan_two_tier(small_params(42));
    EXPECT_EQ(a.trunks, b.trunks);
    EXPECT_EQ(a.lan_home, b.lan_home);
    EXPECT_EQ(a.gateway_shard, b.gateway_shard);
    EXPECT_GE(a.trunks.size(), 8u) << "ring plus chords";
}

TEST(TwoTierPlan, DifferentSeedsDiverge) {
    const auto a = plan_two_tier(small_params(1));
    const auto b = plan_two_tier(small_params(2));
    EXPECT_TRUE(a.trunks != b.trunks || a.lan_home != b.lan_home);
}

TEST(TwoTierPlan, RingGuaranteesConnectivity) {
    // Even with zero successful chord draws the ring is there: every
    // gateway appears in at least two trunks (degree >= 2 for k > 2).
    const auto plan = plan_two_tier(small_params(7));
    std::vector<int> degree(plan.gateways, 0);
    for (const auto& [a, b] : plan.trunks) {
        ++degree[a];
        ++degree[b];
    }
    EXPECT_TRUE(std::ranges::all_of(degree, [](int d) { return d >= 2; }));
}

TEST(TwoTierBuild, SameSeedByteIdenticalTopology) {
    Internetwork net1(99), net2(99);
    const auto t1 = generate_two_tier(net1, small_params(42));
    const auto t2 = generate_two_tier(net2, small_params(42));
    EXPECT_EQ(net1.topology().signature(), net2.topology().signature());
    // Spot-check beyond the hash: identical node counts and addresses.
    ASSERT_EQ(net1.topology().node_count(), net2.topology().node_count());
    for (NodeId id = 0; id < net1.topology().node_count(); ++id) {
        ASSERT_EQ(net1.topology().address(id), net2.topology().address(id));
        ASSERT_EQ(net1.topology().kind(id), net2.topology().kind(id));
    }
    EXPECT_EQ(t1.leaf_lans, t2.leaf_lans);
}

TEST(TwoTierBuild, DifferentSeedsDifferentSignature) {
    Internetwork net1(99), net2(99);
    generate_two_tier(net1, small_params(1));
    generate_two_tier(net2, small_params(2));
    EXPECT_NE(net1.topology().signature(), net2.topology().signature());
}

TEST(TwoTierBuild, CompactPopulationCounts) {
    Internetwork net(5);
    const auto params = small_params(5);
    const auto topo = generate_two_tier(net, params);
    const TopologyStore& store = net.topology();
    EXPECT_EQ(store.node_count(),
              params.gateways + std::size_t{params.lans} * params.hosts_per_lan);
    EXPECT_EQ(topo.leaf_lans.size(), params.lans);
    EXPECT_TRUE(topo.hosts.empty()) << "compact mode materializes no Host objects";
    std::size_t leaves = 0;
    for (NodeId id = 0; id < store.node_count(); ++id) {
        if (store.is_leaf(id)) {
            ++leaves;
            EXPECT_EQ(store.object(id), nullptr);
        }
    }
    EXPECT_EQ(leaves, std::size_t{params.lans} * params.hosts_per_lan);
}

TEST(TwoTierShards, PartitionIsDeterministicAndPinsLansToHomes) {
    const auto a = plan_two_tier(small_params(11), /*shards=*/2);
    const auto b = plan_two_tier(small_params(11), /*shards=*/2);
    EXPECT_EQ(a.gateway_shard, b.gateway_shard);
    ASSERT_EQ(a.gateway_shard.size(), 8u);
    EXPECT_TRUE(std::ranges::all_of(a.gateway_shard, [](auto s) { return s < 2; }));
    // Both shards actually used (8 gateways, balanced packing).
    EXPECT_TRUE(std::ranges::count(a.gateway_shard, 0u) > 0);
    EXPECT_TRUE(std::ranges::count(a.gateway_shard, 1u) > 0);

    // Build it sharded: every node — gateway, leaf host — must live in its
    // home gateway's shard (the stub edge is the one the partitioner must
    // never cut).
    sim::ParallelSimulator psim(2, 1);
    Internetwork net(11, psim);
    generate_two_tier(net, small_params(11));
    const TopologyStore& store = net.topology();
    for (const auto& lan : store.leaf_lans()) {
        for (std::uint32_t i = 0; i < lan.count; ++i) {
            EXPECT_EQ(store.shard(lan.first + i), store.shard(lan.gateway));
        }
    }
}

TEST(TwoTierTraffic, CompactLeafDatagramCrossesTheMesh) {
    Internetwork net(3);
    TwoTierParams params = small_params(3);
    params.gateways = 4;
    params.lans = 4;
    params.hosts_per_lan = 3;
    const auto topo = generate_two_tier(net, params);
    TopologyStore& store = net.topology();

    const NodeId src = store.leaf_host(topo.leaf_lans[0], 0);
    const NodeId dst = store.leaf_host(topo.leaf_lans[2], 1);
    const std::uint8_t payload[4] = {1, 2, 3, 4};
    ASSERT_TRUE(store.leaf_inject(src, store.address(dst), 253, payload));
    net.run_for(sim::seconds(1));

    EXPECT_EQ(store.leaf_sent(src), 1u);
    EXPECT_EQ(store.leaf_delivered(dst), 1u);
    EXPECT_EQ(store.leaf_delivered_total(), 1u);
    EXPECT_GE(store.leaf_counters(topo.leaf_lans[0])
                  .get(telemetry::Counter::IpTx),
              1u);
    EXPECT_GE(store.leaf_counters(topo.leaf_lans[2])
                  .get(telemetry::Counter::IpDeliver),
              1u);
}

// --- sequential vs sharded determinism on a generated internet ---------------

struct RunSignature {
    std::uint64_t events;
    std::uint64_t link_bytes;
    std::uint64_t bytes_received;
    std::uint64_t retransmits;
    std::uint64_t voice_received;
    telemetry::CounterBlock counters;

    bool operator==(const RunSignature&) const = default;
};

/// A generated ~1k-node materialized internet (8 gateways, 16 LANs x 61
/// hosts = 984 hosts), driven by a bulk transfer and a voice stream
/// between hosts on different LANs. The sharded twin partitions the
/// gateway mesh across 2 engines; signature equality is the same contract
/// the hand-wired determinism scenarios enforce.
RunSignature run_generated(std::uint64_t seed, bool parallel) {
    std::unique_ptr<sim::ParallelSimulator> psim;
    std::unique_ptr<Internetwork> owned;
    if (parallel) {
        psim = std::make_unique<sim::ParallelSimulator>(2, 1);
        owned = std::make_unique<Internetwork>(seed, *psim);
    } else {
        owned = std::make_unique<Internetwork>(seed);
    }
    Internetwork& net = *owned;

    TwoTierParams params;
    params.gateways = 8;
    params.lans = 16;
    params.hosts_per_lan = 61;
    params.seed = seed;
    params.compact_hosts = false;  // real hosts: full transports end to end
    const auto topo = generate_two_tier(net, params);

    Host& sender_host = *topo.hosts[0];            // LAN 0
    Host& receiver_host = *topo.hosts.back();      // LAN 15
    Host& voice_a = *topo.hosts[61];               // LAN 1
    Host& voice_b = *topo.hosts[14 * 61 + 3];      // LAN 14

    app::BulkServer server(receiver_host, 21);
    app::BulkSender sender(sender_host, receiver_host.address(), 21, 64 * 1024);
    sender.start();
    app::VoiceOverUdp voice(voice_a, voice_b, 5004);
    voice.start(sim::seconds(5));
    net.run_for(sim::seconds(30));

    RunSignature sig;
    sig.events = parallel ? psim->events_processed() : net.sim().events_processed();
    sig.link_bytes = net.total_link_bytes();
    sig.bytes_received = server.total_bytes_received();
    sig.retransmits = sender.socket_stats().retransmitted_segments;
    sig.voice_received = voice.report().frames_received;
    sig.counters = net.metrics().totals();
    return sig;
}

TEST(TwoTierDeterminism, ShardedGeneratedInternetEqualsSequentialTwin) {
    const auto sequential = run_generated(1234, false);
    const auto sharded = run_generated(1234, true);
    EXPECT_EQ(sequential, sharded);
    EXPECT_GT(sequential.bytes_received, 0u) << "the transfer must actually run";
    EXPECT_GT(sequential.voice_received, 0u);
    EXPECT_EQ(sequential.counters.slots, sharded.counters.slots);
}

TEST(TwoTierDeterminism, GeneratedInternetReplaysExactly) {
    const auto first = run_generated(99, true);
    const auto second = run_generated(99, true);
    EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace catenet::core
