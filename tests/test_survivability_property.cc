// Survivability as a property: under randomized link flaps and gateway
// crashes (never a permanent partition), transport connections must
// always deliver their exact byte streams — goal 1 stated as an
// invariant and swept across random failure schedules.
#include <gtest/gtest.h>

#include "app/bulk.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "util/random.h"

namespace catenet {
namespace {

// Topology: src - g1 - {g2 | g3} - g4 - dst (two disjoint middle paths).
// The failure injector flaps one middle element at a time, restoring it
// before (possibly) flapping the other — so the network is never
// permanently partitioned, though it may be transiently.
class SurvivabilityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SurvivabilityProperty, TransferSurvivesRandomFailures) {
    const std::uint64_t seed = GetParam();
    core::Internetwork net(seed);
    util::Rng chaos(seed * 1337 + 1);

    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Gateway& g3 = net.add_gateway("g3");
    core::Gateway& g4 = net.add_gateway("g4");
    net.connect(src, g1, link::presets::ethernet_hop());
    net.connect(g1, g2, link::presets::ethernet_hop());
    net.connect(g2, g4, link::presets::ethernet_hop());
    net.connect(g1, g3, link::presets::ethernet_hop());
    net.connect(g3, g4, link::presets::ethernet_hop());
    net.connect(g4, dst, link::presets::ethernet_hop());

    routing::DvConfig dv;
    dv.period = sim::seconds(1);
    dv.route_timeout = sim::milliseconds(3500);
    net.enable_dynamic_routing(dv);
    net.run_for(sim::seconds(8));

    constexpr std::uint64_t kBytes = 3ull * 1024 * 1024;
    tcp::TcpConfig patient;
    patient.max_retries = 30;  // outage-resistant sender
    app::BulkServer server(dst, 21, patient);
    app::BulkSender sender(src, dst.address(), 21, kBytes, patient);
    sender.start();

    // Chaos schedule: alternate killing g2 and g3, with random timing.
    core::Gateway* middles[2] = {&g2, &g3};
    for (int round = 0; round < 6 && !sender.finished(); ++round) {
        core::Gateway* victim = middles[chaos.uniform(0, 1)];
        net.run_for(sim::from_seconds(1.0 + chaos.uniform01() * 4.0));
        victim->set_down(true);
        net.run_for(sim::from_seconds(2.0 + chaos.uniform01() * 6.0));
        victim->set_down(false);
    }
    net.run_for(sim::seconds(600));

    EXPECT_TRUE(sender.finished()) << "seed " << seed;
    EXPECT_FALSE(sender.failed()) << "seed " << seed;
    EXPECT_EQ(server.total_bytes_received(), kBytes) << "seed " << seed;
    EXPECT_EQ(server.pattern_errors(), 0u)
        << "seed " << seed << ": reordering/duplication across reroutes must "
        << "never corrupt the stream";
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, SurvivabilityProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace catenet
