// Source Quench tests: the 1988 congestion-feedback loop. A congested
// gateway tells the source it dropped a datagram; TCP backs off to one
// segment. (History's verdict — later deprecated as unfair and abusable —
// is visible in the ablation bench; here we verify the mechanism.)
#include <gtest/gtest.h>

#include "app/bulk.h"
#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"

namespace catenet {
namespace {

struct QuenchFixture : ::testing::Test {
    core::Internetwork net{161};
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g = net.add_gateway("g");

    void wire(std::size_t queue_packets = 8) {
        link::LinkParams bottleneck = link::presets::leased_line();
        bottleneck.bits_per_second = 256'000;
        bottleneck.queue_capacity_packets = queue_packets;
        net.connect(src, g, link::presets::ethernet_hop());
        net.connect(g, dst, bottleneck);
        net.use_static_routes();
        g.enable_source_quench();
    }
};

TEST_F(QuenchFixture, GatewayQuenchesOnQueueOverflow) {
    wire();
    int quenches_received = 0;
    src.ip().add_icmp_error_handler(
        [&](const ip::IcmpMessage& msg, util::Ipv4Address from) {
            if (msg.type == ip::IcmpType::SourceQuench) {
                ++quenches_received;
                EXPECT_EQ(from, g.ip().primary_address());
            }
        });
    // Blast UDP far beyond the bottleneck rate.
    auto rx = dst.udp().bind(1000);
    rx->set_handler([](auto, auto, auto) {});
    auto tx = src.udp().bind_ephemeral();
    for (int i = 0; i < 200; ++i) {
        tx->send_to(dst.address(), 1000, util::ByteBuffer(1000, 1));
        net.run_for(sim::milliseconds(1));
    }
    net.run_for(sim::seconds(2));
    EXPECT_GT(quenches_received, 0);
    EXPECT_GT(g.ip().stats().source_quenches_sent, 0u);
    // Rate limiting: far fewer quenches than drops.
    EXPECT_LT(g.ip().stats().source_quenches_sent, 100u);
}

TEST_F(QuenchFixture, TcpBacksOffWhenQuenched) {
    wire();
    tcp::TcpConfig cfg;
    cfg.respect_source_quench = true;
    app::BulkServer server(dst, 21, cfg);
    app::BulkSender sender(src, dst.address(), 21, 4ull * 1024 * 1024, cfg);
    sender.start();
    net.run_for(sim::seconds(60));
    EXPECT_GT(sender.socket_stats().source_quenches, 0u)
        << "slow start must overrun the tiny queue and draw a quench";
    EXPECT_GT(server.total_bytes_received(), 0u);
}

TEST_F(QuenchFixture, QuenchDisabledIsIgnored) {
    wire();
    tcp::TcpConfig deaf;
    deaf.respect_source_quench = false;
    app::BulkServer server(dst, 21, deaf);
    app::BulkSender sender(src, dst.address(), 21, 4ull * 1024 * 1024, deaf);
    sender.start();
    net.run_for(sim::seconds(60));
    EXPECT_EQ(sender.socket_stats().source_quenches, 0u);
    EXPECT_GT(server.total_bytes_received(), 0u) << "loss recovery still works";
}

TEST_F(QuenchFixture, QuenchTargetsTheOffendingConnection) {
    wire(6);
    // Aggressive bulk flow vs a polite low-rate RPC-ish flow: the quench
    // goes to whoever's datagram overflowed the queue — overwhelmingly
    // the aggressor.
    tcp::TcpConfig cfg;
    app::BulkServer s1(dst, 21, cfg);
    app::BulkSender aggressive(src, dst.address(), 21, 8ull * 1024 * 1024, cfg);
    aggressive.start();

    std::shared_ptr<tcp::TcpSocket> polite_server;
    dst.tcp().listen(22, [&](std::shared_ptr<tcp::TcpSocket> s) {
        polite_server = s;
        s->on_data = [](std::span<const std::uint8_t>) {};
    });
    auto polite = src.tcp().connect(dst.address(), 22, cfg);
    sim::PeriodicTimer trickle(net.sim(), [&] {
        if (polite->connected()) {
            polite->send(util::ByteBuffer(64, 1));
            polite->push();
        }
    });
    trickle.start(sim::milliseconds(500));

    net.run_for(sim::seconds(30));
    trickle.stop();
    EXPECT_GT(aggressive.socket_stats().source_quenches, 0u);
    EXPECT_GE(aggressive.socket_stats().source_quenches,
              polite->stats().source_quenches * 2)
        << "the congestion signal must land mostly on the cause";
}

TEST(QuenchRestraint, HostsDoNotQuenchThemselves) {
    core::Internetwork net(162);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    link::LinkParams thin = link::presets::slow_serial();
    net.connect(a, b, thin);
    net.use_static_routes();
    // Hosts never enable source quench; self-drops at a's own egress
    // queue must not generate ICMP.
    auto rx = b.udp().bind(1000);
    rx->set_handler([](auto, auto, auto) {});
    auto tx = a.udp().bind_ephemeral();
    for (int i = 0; i < 100; ++i) tx->send_to(b.address(), 1000, util::ByteBuffer(400, 1));
    net.run_for(sim::seconds(5));
    EXPECT_EQ(a.ip().stats().source_quenches_sent, 0u);
}

}  // namespace
}  // namespace catenet
