// Unit tests for the internet layer: RFC 791 header codec, ICMP,
// longest-prefix routing, fragmentation/reassembly (with property sweeps),
// forwarding, TTL, and the stateless-gateway discipline.
#include <gtest/gtest.h>

#include "core/internetwork.h"
#include "ip/icmp.h"
#include "ip/ip_stack.h"
#include "ip/ipv4_header.h"
#include "ip/protocols.h"
#include "ip/reassembly.h"
#include "ip/routing_table.h"
#include "link/presets.h"

namespace catenet::ip {
namespace {

using util::Ipv4Address;
using util::Ipv4Prefix;

// --- header codec --------------------------------------------------------

TEST(Ipv4Header, EncodeDecodeRoundTrip) {
    Ipv4Header h;
    h.tos = 0x10;
    h.identification = 0x1234;
    h.dont_fragment = true;
    h.ttl = 17;
    h.protocol = kProtoTcp;
    h.src = Ipv4Address(10, 0, 0, 1);
    h.dst = Ipv4Address(10, 0, 0, 2);
    const util::ByteBuffer payload{1, 2, 3, 4, 5};
    const auto wire = encode_datagram(h, payload);
    ASSERT_EQ(wire.size(), kIpv4HeaderSize + payload.size());

    DecodedDatagram d;
    ASSERT_TRUE(decode_datagram(wire, d));
    EXPECT_EQ(d.header.tos, 0x10);
    EXPECT_EQ(d.header.identification, 0x1234);
    EXPECT_TRUE(d.header.dont_fragment);
    EXPECT_FALSE(d.header.more_fragments);
    EXPECT_EQ(d.header.ttl, 17);
    EXPECT_EQ(d.header.protocol, kProtoTcp);
    EXPECT_EQ(d.header.src, h.src);
    EXPECT_EQ(d.header.dst, h.dst);
    EXPECT_EQ(d.payload_length, payload.size());
    const auto view = payload_of(wire, d);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), view.begin()));
}

TEST(Ipv4Header, HeaderChecksumDetectsHeaderCorruption) {
    Ipv4Header h;
    h.protocol = kProtoUdp;
    h.src = Ipv4Address(1, 2, 3, 4);
    h.dst = Ipv4Address(5, 6, 7, 8);
    auto wire = encode_datagram(h, {});
    wire[8] ^= 0x40;  // flip a TTL bit
    DecodedDatagram d;
    EXPECT_FALSE(decode_datagram(wire, d));
}

TEST(Ipv4Header, RejectsNonIpv4) {
    util::ByteBuffer junk(20, 0);
    junk[0] = 0x60;  // version 6
    DecodedDatagram d;
    EXPECT_THROW(decode_datagram(junk, d), util::DecodeError);
}

TEST(Ipv4Header, RejectsBadTotalLength) {
    Ipv4Header h;
    auto wire = encode_datagram(h, util::ByteBuffer(10, 0));
    wire.resize(20);  // truncate payload below total_length
    DecodedDatagram d;
    EXPECT_THROW(decode_datagram(wire, d), util::DecodeError);
}

TEST(Ipv4Header, OversizeThrows) {
    Ipv4Header h;
    EXPECT_THROW(encode_datagram(h, util::ByteBuffer(65536, 0)), std::length_error);
}

TEST(Ipv4Header, FragmentFieldsRoundTrip) {
    Ipv4Header h;
    h.more_fragments = true;
    h.fragment_offset = 185;  // 1480 bytes
    const auto wire = encode_datagram(h, {});
    DecodedDatagram d;
    ASSERT_TRUE(decode_datagram(wire, d));
    EXPECT_TRUE(d.header.more_fragments);
    EXPECT_EQ(d.header.fragment_offset, 185);
    EXPECT_EQ(d.header.payload_offset_bytes(), 1480u);
    EXPECT_TRUE(d.header.is_fragment());
}

// --- ICMP ------------------------------------------------------------------

TEST(Icmp, EchoRoundTrip) {
    const auto req = IcmpMessage::echo_request(0x0102, 7, {9, 9, 9});
    const auto wire = encode_icmp(req);
    const auto back = decode_icmp(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, IcmpType::EchoRequest);
    EXPECT_EQ(back->echo_id(), 0x0102);
    EXPECT_EQ(back->echo_seq(), 7);
    EXPECT_EQ(back->body, (util::ByteBuffer{9, 9, 9}));
}

TEST(Icmp, ChecksumFailureReturnsNullopt) {
    auto wire = encode_icmp(IcmpMessage::echo_request(1, 1, {}));
    wire[0] ^= 0xff;
    EXPECT_FALSE(decode_icmp(wire).has_value());
}

TEST(Icmp, ErrorQuotesOffendingDatagram) {
    Ipv4Header h;
    h.protocol = kProtoUdp;
    h.src = Ipv4Address(1, 1, 1, 1);
    h.dst = Ipv4Address(2, 2, 2, 2);
    const auto offending = encode_datagram(h, util::ByteBuffer(100, 0xcc));
    const auto err = IcmpMessage::error(IcmpType::TimeExceeded, 0, offending);
    EXPECT_EQ(err.body.size(), 28u) << "header + 8 bytes";
    EXPECT_TRUE(std::equal(err.body.begin(), err.body.end(), offending.begin()));
}

// --- routing table -------------------------------------------------------------

TEST(RoutingTable, LongestPrefixWins) {
    RoutingTable table;
    Route wide{Ipv4Prefix::parse("10.0.0.0/8"), Ipv4Address(1, 1, 1, 1), 0, 0, "static"};
    Route narrow{Ipv4Prefix::parse("10.1.0.0/16"), Ipv4Address(2, 2, 2, 2), 1, 0, "static"};
    table.install(wide);
    table.install(narrow);
    auto hit = table.lookup(Ipv4Address(10, 1, 5, 5));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->next_hop, Ipv4Address(2, 2, 2, 2));
    hit = table.lookup(Ipv4Address(10, 2, 5, 5));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->next_hop, Ipv4Address(1, 1, 1, 1));
}

TEST(RoutingTable, DefaultRouteCatchesAll) {
    RoutingTable table;
    table.install(Route{Ipv4Prefix(Ipv4Address(0), 0), Ipv4Address(9, 9, 9, 9), 3, 0,
                        "static"});
    auto hit = table.lookup(Ipv4Address(123, 45, 67, 89));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ifindex, 3u);
}

TEST(RoutingTable, InstallReplacesSamePrefix) {
    RoutingTable table;
    const auto p = Ipv4Prefix::parse("10.0.0.0/24");
    table.install(Route{p, Ipv4Address(1, 1, 1, 1), 0, 5, "dv"});
    table.install(Route{p, Ipv4Address(2, 2, 2, 2), 1, 3, "dv"});
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.lookup(Ipv4Address(10, 0, 0, 7))->metric, 3u);
}

TEST(RoutingTable, RemoveByOrigin) {
    RoutingTable table;
    table.install(Route{Ipv4Prefix::parse("10.0.0.0/24"), {}, 0, 0, "connected"});
    table.install(Route{Ipv4Prefix::parse("10.0.1.0/24"), {}, 0, 2, "dv"});
    table.install(Route{Ipv4Prefix::parse("10.0.2.0/24"), {}, 0, 2, "dv"});
    table.remove_by_origin("dv");
    EXPECT_EQ(table.size(), 1u);
    EXPECT_TRUE(table.find(Ipv4Prefix::parse("10.0.0.0/24")).has_value());
}

TEST(RoutingTable, NoMatchReturnsNullopt) {
    RoutingTable table;
    table.install(Route{Ipv4Prefix::parse("10.0.0.0/24"), {}, 0, 0, "connected"});
    EXPECT_FALSE(table.lookup(Ipv4Address(11, 0, 0, 1)).has_value());
}

// --- reassembly -----------------------------------------------------------------

struct ReassemblyFixture : ::testing::Test {
    sim::Simulator sim;
    Reassembler reasm{sim, sim::seconds(15)};

    Ipv4Header frag_header(std::uint16_t id, std::size_t offset_bytes, bool more) {
        Ipv4Header h;
        h.identification = id;
        h.protocol = kProtoUdp;
        h.src = Ipv4Address(1, 1, 1, 1);
        h.dst = Ipv4Address(2, 2, 2, 2);
        h.fragment_offset = static_cast<std::uint16_t>(offset_bytes / 8);
        h.more_fragments = more;
        return h;
    }
};

TEST_F(ReassemblyFixture, InOrderFragmentsComplete) {
    util::ByteBuffer part1(16, 0xaa), part2(8, 0xbb);
    EXPECT_FALSE(reasm.add_fragment(frag_header(1, 0, true), part1).has_value());
    auto done = reasm.add_fragment(frag_header(1, 16, false), part2);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->size(), 24u);
    EXPECT_EQ((*done)[0], 0xaa);
    EXPECT_EQ((*done)[16], 0xbb);
    EXPECT_EQ(reasm.pending(), 0u);
}

TEST_F(ReassemblyFixture, OutOfOrderFragmentsComplete) {
    util::ByteBuffer part1(16, 0x11), part2(16, 0x22), part3(4, 0x33);
    EXPECT_FALSE(reasm.add_fragment(frag_header(2, 32, false), part3).has_value());
    EXPECT_FALSE(reasm.add_fragment(frag_header(2, 0, true), part1).has_value());
    auto done = reasm.add_fragment(frag_header(2, 16, true), part2);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->size(), 36u);
}

TEST_F(ReassemblyFixture, DuplicateFragmentsAreIdempotent) {
    util::ByteBuffer part(8, 0x44);
    reasm.add_fragment(frag_header(3, 0, true), part);
    reasm.add_fragment(frag_header(3, 0, true), part);  // dup
    auto done = reasm.add_fragment(frag_header(3, 8, false), part);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->size(), 16u);
}

TEST_F(ReassemblyFixture, DistinctKeysDoNotMix) {
    util::ByteBuffer part(8, 0x55);
    reasm.add_fragment(frag_header(10, 0, true), part);
    auto other = frag_header(11, 8, false);
    EXPECT_FALSE(reasm.add_fragment(other, part).has_value())
        << "different identification = different datagram";
    EXPECT_EQ(reasm.pending(), 2u);
}

TEST_F(ReassemblyFixture, TimeoutDiscardsPartialDatagram) {
    util::ByteBuffer part(8, 0x66);
    reasm.add_fragment(frag_header(4, 0, true), part);
    sim.run_until(sim::seconds(20));
    // Trigger the sweep with an unrelated fragment.
    reasm.add_fragment(frag_header(5, 0, true), part);
    EXPECT_EQ(reasm.stats().timeouts, 1u);
    // The late tail of datagram 4 can no longer complete it.
    EXPECT_FALSE(reasm.add_fragment(frag_header(4, 8, false), part).has_value());
}

// Property sweep: fragmentation at one MTU then reassembly restores the
// exact payload, across payload sizes and MTUs (including multi-level
// fragmentation through two different-MTU hops, exercised at stack level).
struct FragParam {
    std::size_t payload;
    std::size_t mtu;
};

class FragmentationProperty : public ::testing::TestWithParam<FragParam> {};

TEST_P(FragmentationProperty, StackFragmentsAndPeerReassembles) {
    sim::Simulator sim;
    util::Rng rng(7);
    link::LinkParams params = link::presets::ethernet_hop();
    params.mtu = GetParam().mtu;
    link::PointToPointLink link(sim, rng, params);

    IpStack a(sim, "a");
    IpStack b(sim, "b");
    a.add_interface(link.port_a(), Ipv4Address(10, 0, 0, 1),
                    Ipv4Prefix::parse("10.0.0.0/24"));
    b.add_interface(link.port_b(), Ipv4Address(10, 0, 0, 2),
                    Ipv4Prefix::parse("10.0.0.0/24"));

    util::ByteBuffer payload(GetParam().payload);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }

    util::ByteBuffer received;
    b.register_protocol(200, [&](const Ipv4Header&, std::span<const std::uint8_t> data,
                                 std::size_t) { received = util::to_buffer(data); });
    ASSERT_TRUE(a.send(200, Ipv4Address(10, 0, 0, 2), payload));
    sim.run();
    EXPECT_EQ(received, payload);
    if (GetParam().payload + kIpv4HeaderSize > GetParam().mtu) {
        EXPECT_GT(a.stats().fragments_created, 0u);
        EXPECT_EQ(b.reassembly_stats().datagrams_completed, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FragmentationProperty,
    ::testing::Values(FragParam{100, 1500}, FragParam{1480, 1500}, FragParam{1481, 1500},
                      FragParam{3000, 1500}, FragParam{8192, 1500}, FragParam{3000, 576},
                      FragParam{8192, 576}, FragParam{517, 512}, FragParam{4096, 512},
                      FragParam{65000, 1500}, FragParam{1, 512}, FragParam{556, 576}));

// --- stack behaviours --------------------------------------------------------

struct TwoHostsOneGateway : ::testing::Test {
    core::Internetwork net{11};
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");

    void wire(link::LinkParams left = link::presets::ethernet_hop(),
              link::LinkParams right = link::presets::ethernet_hop()) {
        net.connect(a, g, left);
        net.connect(g, b, right);
        net.use_static_routes();
    }
};

TEST_F(TwoHostsOneGateway, ForwardingDecrementsTtl) {
    wire();
    std::uint8_t seen_ttl = 0;
    b.ip().register_protocol(200, [&](const Ipv4Header& h, std::span<const std::uint8_t>,
                                      std::size_t) { seen_ttl = h.ttl; });
    ip::SendOptions opts;
    opts.ttl = 10;
    a.ip().send(200, b.address(), util::ByteBuffer{1}, opts);
    net.sim().run();
    EXPECT_EQ(seen_ttl, 9);
}

TEST_F(TwoHostsOneGateway, TtlExpiryGeneratesTimeExceeded) {
    wire();
    bool got_time_exceeded = false;
    a.ip().set_icmp_error_handler([&](const IcmpMessage& msg, Ipv4Address from) {
        if (msg.type == IcmpType::TimeExceeded) {
            got_time_exceeded = true;
            EXPECT_EQ(from, g.ip().primary_address());
        }
    });
    ip::SendOptions opts;
    opts.ttl = 1;  // dies at the gateway
    a.ip().send(200, b.address(), util::ByteBuffer{1}, opts);
    net.sim().run();
    EXPECT_TRUE(got_time_exceeded);
}

TEST_F(TwoHostsOneGateway, NoRouteGeneratesUnreachable) {
    wire();
    bool got_unreachable = false;
    a.ip().set_icmp_error_handler([&](const IcmpMessage& msg, Ipv4Address) {
        if (msg.type == IcmpType::DestinationUnreachable) got_unreachable = true;
    });
    // Host a has a route for 10/8-space subnets only via static oracle;
    // use an address in no subnet. Host's routing: only known subnets.
    a.ip().send(200, Ipv4Address(192, 168, 99, 99), util::ByteBuffer{1});
    net.sim().run();
    // The send fails locally (no route at a): acceptable alternative to a
    // remote unreachable. Force the remote case via default route.
    ip::Route def;
    def.prefix = Ipv4Prefix(Ipv4Address(0), 0);
    def.next_hop = g.ip().primary_address();
    def.ifindex = 0;
    def.origin = "static";
    a.ip().routing_table().install(def);
    ASSERT_TRUE(a.ip().send(200, Ipv4Address(192, 168, 99, 99), util::ByteBuffer{1}));
    net.sim().run();
    EXPECT_TRUE(got_unreachable);
}

TEST_F(TwoHostsOneGateway, GatewayHoldsNoConnectionState) {
    // The fate-sharing invariant, asserted structurally: a gateway's
    // entire mutable state is its routing table, queues and counters.
    // Reassembly buffers exist only for datagrams addressed TO it.
    wire(link::presets::ethernet_hop(), link::presets::packet_radio());
    // Large transfers through the gateway must not create reassembly state
    // there (fragments pass through; only the destination reassembles).
    util::ByteBuffer payload(4000, 0x77);
    b.ip().register_protocol(200, [](const Ipv4Header&, std::span<const std::uint8_t>,
                                     std::size_t) {});
    a.ip().send(200, b.address(), payload);
    net.run_for(sim::seconds(2));
    EXPECT_EQ(g.ip().reassembly_stats().fragments_received, 0u);
    EXPECT_GT(g.ip().stats().forwarded, 0u);
}

TEST_F(TwoHostsOneGateway, MixedMtuPathFragmentsAtGateway) {
    wire(link::presets::ethernet_hop(), link::presets::packet_radio());  // 1500 -> 512
    util::ByteBuffer payload(1400, 0x11);
    util::ByteBuffer received;
    b.ip().register_protocol(200, [&](const Ipv4Header&, std::span<const std::uint8_t> d,
                                      std::size_t) { received = util::to_buffer(d); });
    a.ip().send(200, b.address(), payload);
    net.run_for(sim::seconds(2));
    EXPECT_EQ(received, payload);
    EXPECT_GT(g.ip().stats().fragments_created, 0u) << "gateway must refragment";
}

TEST_F(TwoHostsOneGateway, DontFragmentElicitsFragNeeded) {
    wire(link::presets::ethernet_hop(), link::presets::packet_radio());
    bool got_frag_needed = false;
    a.ip().set_icmp_error_handler([&](const IcmpMessage& msg, Ipv4Address) {
        if (msg.type == IcmpType::DestinationUnreachable &&
            msg.code == kUnreachFragNeeded) {
            got_frag_needed = true;
        }
    });
    ip::SendOptions opts;
    opts.dont_fragment = true;
    a.ip().send(200, b.address(), util::ByteBuffer(1400, 0), opts);
    net.run_for(sim::seconds(2));
    EXPECT_TRUE(got_frag_needed);
}

TEST_F(TwoHostsOneGateway, DownNodeDiscardsSilently) {
    wire();
    int delivered = 0;
    b.ip().register_protocol(200, [&](const Ipv4Header&, std::span<const std::uint8_t>,
                                      std::size_t) { ++delivered; });
    g.set_down(true);
    a.ip().send(200, b.address(), util::ByteBuffer{1});
    net.run_for(sim::seconds(1));
    EXPECT_EQ(delivered, 0);
    g.set_down(false);
    a.ip().send(200, b.address(), util::ByteBuffer{1});
    net.run_for(sim::seconds(1));
    EXPECT_EQ(delivered, 1);
}

TEST_F(TwoHostsOneGateway, PingEndToEnd) {
    wire();
    int replies = 0;
    a.ip().register_protocol(kProtoIcmp, [&](const Ipv4Header&,
                                             std::span<const std::uint8_t> payload,
                                             std::size_t) {
        auto msg = decode_icmp(payload);
        if (msg && msg->type == IcmpType::EchoReply) ++replies;
    });
    for (std::uint16_t i = 0; i < 5; ++i) a.ip().ping(b.address(), 1, i);
    net.run_for(sim::seconds(1));
    EXPECT_EQ(replies, 5);
}

TEST_F(TwoHostsOneGateway, UnknownProtocolElicitsProtocolUnreachable) {
    wire();
    bool got = false;
    a.ip().set_icmp_error_handler([&](const IcmpMessage& msg, Ipv4Address) {
        if (msg.type == IcmpType::DestinationUnreachable &&
            msg.code == kUnreachProtocol) {
            got = true;
        }
    });
    a.ip().send(123, b.address(), util::ByteBuffer{1, 2, 3});
    net.run_for(sim::seconds(1));
    EXPECT_TRUE(got);
}

TEST(IpStackLocal, LoopbackDeliveryWithoutInterfaces) {
    core::Internetwork net(12);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    net.connect(a, b, link::presets::ethernet_hop());
    int delivered = 0;
    a.ip().register_protocol(200, [&](const Ipv4Header& h, std::span<const std::uint8_t>,
                                      std::size_t) {
        ++delivered;
        EXPECT_EQ(h.dst, a.address());
    });
    a.ip().send(200, a.address(), util::ByteBuffer{5});
    net.sim().run();
    EXPECT_EQ(delivered, 1);
}

TEST(IpStackBroadcast, ReachesAllLanStationsAndIsNotForwarded) {
    core::Internetwork net(13);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");
    core::Host& far = net.add_host("far");
    const auto lan = net.add_lan(link::presets::ethernet_lan());
    net.attach_to_lan(a, lan);
    net.attach_to_lan(b, lan);
    net.attach_to_lan(g, lan);
    net.connect(g, far, link::presets::ethernet_hop());
    net.use_static_routes();

    int b_got = 0, far_got = 0;
    b.ip().register_protocol(201, [&](const Ipv4Header&, std::span<const std::uint8_t>,
                                      std::size_t) { ++b_got; });
    far.ip().register_protocol(201, [&](const Ipv4Header&, std::span<const std::uint8_t>,
                                        std::size_t) { ++far_got; });
    a.ip().send_broadcast(201, 0, util::ByteBuffer{1});
    net.run_for(sim::seconds(1));
    EXPECT_EQ(b_got, 1);
    EXPECT_EQ(far_got, 0) << "broadcasts must never cross a gateway";
}

}  // namespace
}  // namespace catenet::ip
