// TCP edge-case and timer-behaviour tests: RTO backoff, TIME-WAIT
// re-acking, half-close, listener teardown, MSS property sweep over path
// MTUs, connection storms, and the DV-era interplay of retransmission
// with rerouting.
#include <gtest/gtest.h>

#include "app/bulk.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "tcp/tcp.h"

namespace catenet::tcp {
namespace {

struct TcpEdgeFixture : ::testing::Test {
    core::Internetwork net{101};
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");

    void wire(const link::LinkParams& params = link::presets::ethernet_hop()) {
        net.connect(a, b, params);
        net.use_static_routes();
    }

    std::shared_ptr<TcpSocket> server_socket;
    util::ByteBuffer server_received;
    void serve(std::uint16_t port, const TcpConfig& config = {}) {
        b.tcp().listen(
            port,
            [this](std::shared_ptr<TcpSocket> s) {
                server_socket = s;
                s->on_data = [this](std::span<const std::uint8_t> d) {
                    server_received.insert(server_received.end(), d.begin(), d.end());
                };
            },
            config);
    }
};

TEST_F(TcpEdgeFixture, RtoBacksOffExponentially) {
    wire();
    serve(80);
    TcpConfig cfg;
    cfg.initial_rto = sim::milliseconds(100);
    cfg.max_retries = 20;
    auto client = a.tcp().connect(b.address(), 80, cfg);
    client->on_connected = [&] {
        client->send(util::ByteBuffer(500, 1));
        net.link(0).set_up(false);
    };
    net.run_for(sim::seconds(1));
    const auto timeouts_1s = client->stats().timeouts;
    net.run_for(sim::seconds(9));
    const auto timeouts_10s = client->stats().timeouts;
    // Exponential backoff: most of the timeouts happen early; the count
    // over 10 s is far below 10s/initial_rto = 100.
    EXPECT_GE(timeouts_1s, 2u);
    EXPECT_LE(timeouts_10s, 10u);
    EXPECT_GT(client->stats().rto_ms, 1000.0);
}

TEST_F(TcpEdgeFixture, TimeWaitReAcksRetransmittedFin) {
    wire();
    serve(80);
    TcpConfig cfg;
    cfg.msl = sim::seconds(5);
    auto client = a.tcp().connect(b.address(), 80, cfg);
    client->on_connected = [&] { client->close(); };
    net.run_for(sim::seconds(2));
    // Client should be in TIME-WAIT (its FIN acked, server's FIN arrived
    // after the server's close? — server never closed; so client is in
    // FIN-WAIT-2). Close the server half now.
    ASSERT_EQ(client->state(), TcpState::FinWait2);
    server_socket->close();
    net.run_for(sim::seconds(1));
    EXPECT_EQ(client->state(), TcpState::TimeWait);
    // After 2*MSL the socket evaporates.
    net.run_for(sim::seconds(11));
    EXPECT_EQ(a.tcp().connection_count(), 0u);
    EXPECT_EQ(b.tcp().connection_count(), 0u);
}

TEST_F(TcpEdgeFixture, HalfCloseAllowsServerToKeepSending) {
    wire();
    serve(80);
    util::ByteBuffer client_received;
    auto client = a.tcp().connect(b.address(), 80);
    client->on_data = [&](std::span<const std::uint8_t> d) {
        client_received.insert(client_received.end(), d.begin(), d.end());
    };
    client->on_connected = [&] {
        client->send(util::buffer_from_string("request"));
        client->close();  // half-close: we are done talking
    };
    net.run_for(sim::seconds(1));
    ASSERT_TRUE(server_socket);
    EXPECT_EQ(server_socket->state(), TcpState::CloseWait);
    // Server responds into the half-open connection, then closes.
    server_socket->send(util::ByteBuffer(10000, 0x5c));
    server_socket->close();
    net.run_for(sim::seconds(5));
    EXPECT_EQ(client_received.size(), 10000u)
        << "data must flow toward the closer after its FIN";
    EXPECT_EQ(util::string_from_buffer(server_received), "request");
}

TEST_F(TcpEdgeFixture, StopListeningRefusesNewConnections) {
    wire();
    serve(80);
    b.tcp().stop_listening(80);
    auto client = a.tcp().connect(b.address(), 80);
    bool reset = false;
    client->on_reset = [&] { reset = true; };
    net.run_for(sim::seconds(2));
    EXPECT_TRUE(reset);
}

TEST_F(TcpEdgeFixture, ConnectionSurvivesRerouteMidTransfer) {
    // Topology with two disjoint paths; DV flips routes under the
    // connection while data is in flight.
    core::Internetwork net2(102);
    core::Host& src = net2.add_host("src");
    core::Host& dst = net2.add_host("dst");
    core::Gateway& g1 = net2.add_gateway("g1");
    core::Gateway& g2 = net2.add_gateway("g2");
    core::Gateway& g3 = net2.add_gateway("g3");
    net2.connect(src, g1, link::presets::ethernet_hop());
    const auto fast_path = net2.connect(g1, g2, link::presets::ethernet_hop());
    net2.connect(g1, g3, link::presets::leased_line());  // slow detour
    net2.connect(g3, g2, link::presets::leased_line());
    net2.connect(g2, dst, link::presets::ethernet_hop());
    routing::DvConfig dv;
    dv.period = sim::seconds(1);
    dv.route_timeout = sim::milliseconds(3500);
    net2.enable_dynamic_routing(dv);
    net2.run_for(sim::seconds(8));

    app::BulkServer server(dst, 21);
    app::BulkSender sender(src, dst.address(), 21, 4ull * 1024 * 1024);
    sender.start();
    net2.run_for(sim::seconds(1));
    net2.fail_link(fast_path);
    net2.run_for(sim::seconds(30));
    net2.restore_link(fast_path);  // flap back
    net2.run_for(sim::seconds(600));
    EXPECT_TRUE(sender.finished());
    EXPECT_EQ(server.total_bytes_received(), 4ull * 1024 * 1024);
    EXPECT_EQ(server.pattern_errors(), 0u)
        << "reordering across the reroute must be hidden by sequencing";
}

TEST_F(TcpEdgeFixture, ManySimultaneousConnections) {
    wire();
    int completed = 0;
    std::vector<std::shared_ptr<TcpSocket>> held;
    b.tcp().listen(80, [&](std::shared_ptr<TcpSocket> s) {
        held.push_back(s);
        s->on_data = [](std::span<const std::uint8_t>) {};
        s->on_remote_close = [raw = s.get()] { raw->close(); };
    });
    std::vector<std::shared_ptr<TcpSocket>> clients;
    constexpr int kConns = 50;
    for (int i = 0; i < kConns; ++i) {
        auto c = a.tcp().connect(b.address(), 80);
        c->on_connected = [raw = c.get()] {
            raw->send(util::ByteBuffer(1000, 7));
            raw->close();
        };
        c->on_remote_close = [&completed] { ++completed; };
        clients.push_back(std::move(c));
    }
    net.run_for(sim::seconds(30));
    EXPECT_EQ(completed, kConns);
    EXPECT_EQ(b.tcp().stats().connections_accepted, static_cast<std::uint64_t>(kConns));
}

TEST_F(TcpEdgeFixture, DelayedAckTimerFiresForLoneSegment) {
    // One small segment with no follow-up: the delayed-ACK timer (200 ms)
    // must eventually ack it rather than waiting forever.
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(1);
    wire(params);
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    client->on_connected = [&] { client->send(util::ByteBuffer(100, 9)); };
    net.run_for(sim::milliseconds(120));
    // Not yet acked (timer pending): the segment is still in flight state.
    const auto rexmits_before = client->stats().retransmitted_segments;
    net.run_for(sim::milliseconds(400));
    // Acked via the delayed timer: no retransmission was needed.
    EXPECT_EQ(client->stats().retransmitted_segments, rexmits_before);
    EXPECT_EQ(server_received.size(), 100u);
    client->send(util::ByteBuffer(100, 9));
    net.run_for(sim::seconds(1));
    EXPECT_EQ(server_received.size(), 200u);
}

TEST_F(TcpEdgeFixture, SimultaneousCloseReachesClosedOnBothSides) {
    wire();
    TcpConfig cfg;
    cfg.msl = sim::seconds(2);  // both sides: TIME-WAIT must expire in-test
    serve(80, cfg);
    auto client = a.tcp().connect(b.address(), 80, cfg);
    client->on_connected = [&] {
        // Close both ends in the same instant: FINs cross in flight.
        client->close();
        server_socket->close();
    };
    net.run_for(sim::seconds(10));
    EXPECT_EQ(a.tcp().connection_count(), 0u);
    EXPECT_EQ(b.tcp().connection_count(), 0u);
}

// MSS/MTU property: no direct-path fragmentation for any link MTU, and
// the transfer always completes exactly.
class MssProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MssProperty, NoFragmentationAndExactDelivery) {
    core::Internetwork net(103);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    link::LinkParams params = link::presets::ethernet_hop();
    params.mtu = GetParam();
    net.connect(a, b, params);
    net.use_static_routes();
    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 100 * 1024);
    sender.start();
    net.run_for(sim::seconds(120));
    EXPECT_TRUE(sender.finished()) << "mtu=" << GetParam();
    EXPECT_EQ(server.total_bytes_received(), 100u * 1024u);
    EXPECT_EQ(server.pattern_errors(), 0u);
    EXPECT_EQ(a.ip().stats().fragments_created, 0u)
        << "negotiated MSS must fit mtu=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(MtuSweep, MssProperty,
                         ::testing::Values(128, 256, 296, 576, 1006, 1500, 4096));

// Zero-window persistence property over different receiver stall lengths.
class PersistProperty : public ::testing::TestWithParam<int> {};

TEST_P(PersistProperty, TransferResumesAfterReceiverStall) {
    core::Internetwork net(104);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    net.connect(a, b, link::presets::ethernet_hop());
    net.use_static_routes();
    std::shared_ptr<TcpSocket> server;
    std::size_t received = 0;
    b.tcp().listen(80, [&](std::shared_ptr<TcpSocket> s) {
        server = s;
        s->on_data = [&](std::span<const std::uint8_t> d) { received += d.size(); };
    });
    auto client = a.tcp().connect(b.address(), 80);
    client->on_connected = [&] {
        server->set_receive_open(false);
        client->send(util::ByteBuffer(8 * 1024, 0x3f));
    };
    net.run_for(sim::from_seconds(GetParam()));
    const auto stalled_at = received;
    server->set_receive_open(true);
    net.run_for(sim::seconds(30));
    EXPECT_LE(stalled_at, received);
    EXPECT_EQ(received, 8u * 1024u) << "stall of " << GetParam() << "s";
}

INSTANTIATE_TEST_SUITE_P(StallLengths, PersistProperty, ::testing::Values(1, 3, 10, 30));

}  // namespace
}  // namespace catenet::tcp
