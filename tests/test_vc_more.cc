// Additional virtual-circuit coverage: concurrent calls, VCI management,
// bidirectional data, hosts on the same switch, failure-cause fidelity,
// and a property sweep of transfer sizes over lossy circuits.
#include <gtest/gtest.h>

#include "link/presets.h"
#include "vc/network.h"

namespace catenet::vc {
namespace {

struct VcMoreFixture : ::testing::Test {
    sim::Simulator sim;
    VcNetwork net{sim, 121};
    std::size_t s1 = net.add_switch("s1");
    std::size_t s2 = net.add_switch("s2");
    std::size_t h1 = net.add_host(1, "h1");
    std::size_t h2 = net.add_host(2, "h2");
    std::size_t h3 = net.add_host(3, "h3");

    void wire() {
        net.connect_switches(s1, s2, link::presets::ethernet_hop());
        net.connect_host(h1, s1, link::presets::ethernet_hop());
        net.connect_host(h2, s2, link::presets::ethernet_hop());
        net.connect_host(h3, s1, link::presets::ethernet_hop());  // same switch as h1
        net.compute_routes();
    }
};

TEST_F(VcMoreFixture, ManyConcurrentCallsGetDistinctCircuits) {
    wire();
    int received = 0;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<VcCall> call) {
        call->on_data = [&received](std::span<const std::uint8_t>) { ++received; };
    });
    std::vector<std::shared_ptr<VcCall>> calls;
    constexpr int kCalls = 20;
    for (int i = 0; i < kCalls; ++i) {
        auto call = net.host_at(h1).place_call(2);
        call->on_accepted = [raw = call.get()] {
            raw->send(util::ByteBuffer(10, 0x61));
        };
        calls.push_back(std::move(call));
    }
    sim.run_until(sim::seconds(30));
    EXPECT_EQ(received, kCalls);
    EXPECT_EQ(net.switch_at(s1).active_circuits(), static_cast<std::size_t>(kCalls));
    EXPECT_EQ(net.host_at(h1).active_calls(), static_cast<std::size_t>(kCalls));
}

TEST_F(VcMoreFixture, BidirectionalDataOnOneCall) {
    wire();
    util::ByteBuffer at_h2, at_h1;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<VcCall> call) {
        call->on_data = [&, raw = call.get()](std::span<const std::uint8_t> d) {
            at_h2.insert(at_h2.end(), d.begin(), d.end());
            raw->send(util::buffer_from_string("pong"));
        };
    });
    auto call = net.host_at(h1).place_call(2);
    call->on_data = [&](std::span<const std::uint8_t> d) {
        at_h1.insert(at_h1.end(), d.begin(), d.end());
    };
    call->on_accepted = [&] { call->send(util::buffer_from_string("ping")); };
    sim.run_until(sim::seconds(10));
    EXPECT_EQ(util::string_from_buffer(at_h2), "ping");
    EXPECT_EQ(util::string_from_buffer(at_h1), "pong");
}

TEST_F(VcMoreFixture, SameSwitchHosts) {
    wire();
    util::ByteBuffer got;
    net.host_at(h3).set_incoming_handler([&](std::shared_ptr<VcCall> call) {
        call->on_data = [&](std::span<const std::uint8_t> d) {
            got.insert(got.end(), d.begin(), d.end());
        };
    });
    auto call = net.host_at(h1).place_call(3);
    call->on_accepted = [&] { call->send(util::buffer_from_string("local")); };
    sim.run_until(sim::seconds(10));
    EXPECT_EQ(util::string_from_buffer(got), "local");
    EXPECT_EQ(net.switch_at(s2).active_circuits(), 0u)
        << "a same-switch call must not touch the far switch";
}

TEST_F(VcMoreFixture, CalleeCanRejectByClearing) {
    wire();
    net.host_at(h2).set_incoming_handler([](std::shared_ptr<VcCall> call) {
        call->clear(kClearByUser);  // refuse service
    });
    auto call = net.host_at(h1).place_call(2);
    std::uint8_t cause = 0xff;
    bool cleared = false;
    call->on_cleared = [&](std::uint8_t c) {
        cleared = true;
        cause = c;
    };
    sim.run_until(sim::seconds(10));
    EXPECT_TRUE(cleared);
    EXPECT_EQ(cause, kClearByUser);
    EXPECT_EQ(net.switch_at(s1).active_circuits(), 0u);
}

TEST_F(VcMoreFixture, DataAfterClearIsRefused) {
    wire();
    net.host_at(h2).set_incoming_handler([](std::shared_ptr<VcCall>) {});
    auto call = net.host_at(h1).place_call(2);
    sim.run_until(sim::seconds(5));
    ASSERT_EQ(call->state(), CallState::Connected);
    call->clear();
    sim.run_until(sim::seconds(5));
    EXPECT_FALSE(call->send(util::ByteBuffer(10, 1)));
}

// Property: circuits deliver exact byte streams across sizes and loss
// rates (hop-by-hop ARQ doing the reliability work).
struct VcTransferParam {
    std::size_t bytes;
    double loss;
};

class VcTransferProperty : public ::testing::TestWithParam<VcTransferParam> {};

TEST_P(VcTransferProperty, ExactDelivery) {
    sim::Simulator sim;
    VcNetwork net(sim, 314);
    const auto s1 = net.add_switch("s1");
    const auto s2 = net.add_switch("s2");
    const auto h1 = net.add_host(1, "h1");
    const auto h2 = net.add_host(2, "h2");
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = GetParam().loss;
    LinkArqConfig arq;
    arq.rto = sim::milliseconds(100);
    arq.max_retries = 1000;
    VcHostConfig hc;
    hc.arq = arq;
    // Rebuild with lossy params on the inter-switch link only.
    net.connect_switches(s1, s2, params);
    net.connect_host(h1, s1, link::presets::ethernet_hop());
    net.connect_host(h2, s2, link::presets::ethernet_hop());
    net.compute_routes();

    util::ByteBuffer sent(GetParam().bytes);
    for (std::size_t i = 0; i < sent.size(); ++i) {
        sent[i] = static_cast<std::uint8_t>(i * 17 + 3);
    }
    util::ByteBuffer got;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<VcCall> call) {
        call->on_data = [&](std::span<const std::uint8_t> d) {
            got.insert(got.end(), d.begin(), d.end());
        };
    });
    auto call = net.host_at(h1).place_call(2);
    call->on_accepted = [&] { call->send(sent); };
    sim.run_until(sim::seconds(600));
    EXPECT_EQ(got, sent) << "bytes=" << GetParam().bytes << " loss=" << GetParam().loss;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VcTransferProperty,
    ::testing::Values(VcTransferParam{1, 0.0}, VcTransferParam{127, 0.0},
                      VcTransferParam{128, 0.0}, VcTransferParam{129, 0.0},
                      VcTransferParam{10000, 0.0}, VcTransferParam{10000, 0.05},
                      VcTransferParam{5000, 0.15}, VcTransferParam{1000, 0.30}));

}  // namespace
}  // namespace catenet::vc
