// XNET debugger tests: the paper's flagship "datagrams, not streams"
// application must function over clean paths, over badly lossy paths
// (where TCP could not even hold a connection open cheaply), and across a
// crash of the target's own network path — the exact scenario a debugger
// exists for.
#include <gtest/gtest.h>

#include "app/xnet.h"
#include "core/internetwork.h"
#include "link/presets.h"

namespace catenet::app {
namespace {

struct XnetFixture : ::testing::Test {
    core::Internetwork net{141};
    core::Host& dbg_host = net.add_host("dbg");
    core::Host& target_host = net.add_host("target");
    core::Gateway& g = net.add_gateway("g");

    void wire(const link::LinkParams& far_side = link::presets::ethernet_hop()) {
        net.connect(dbg_host, g, link::presets::ethernet_hop());
        net.connect(g, target_host, far_side);
        net.use_static_routes();
    }
};

TEST_F(XnetFixture, PeekPokeHaltResume) {
    wire();
    XnetTarget target(target_host, 69, 4096);
    target.poke_direct(100, 0xde);
    target.poke_direct(101, 0xad);

    XnetDebugger debugger(dbg_host, target_host.address(), 69);
    std::vector<std::uint8_t> peeked;
    bool poked = false, halted = false, resumed = false;

    debugger.peek(100, 2, [&](const XnetResult& r) {
        ASSERT_TRUE(r.ok);
        peeked = r.data;
        const std::uint8_t patch[] = {0xbe, 0xef};
        debugger.poke(200, patch, [&](const XnetResult& r2) {
            ASSERT_TRUE(r2.ok);
            poked = true;
            debugger.halt([&](const XnetResult& r3) {
                ASSERT_TRUE(r3.ok);
                halted = target.halted();
                debugger.resume([&](const XnetResult& r4) {
                    ASSERT_TRUE(r4.ok);
                    resumed = !target.halted();
                });
            });
        });
    });
    net.run_for(sim::seconds(5));
    EXPECT_EQ(peeked, (std::vector<std::uint8_t>{0xde, 0xad}));
    EXPECT_TRUE(poked);
    EXPECT_EQ(target.peek_direct(200), 0xbe);
    EXPECT_EQ(target.peek_direct(201), 0xef);
    EXPECT_TRUE(halted);
    EXPECT_TRUE(resumed);
}

TEST_F(XnetFixture, OperatesOverBrutallyLossyPath) {
    // 40% loss each way: TCP would spend its life in retransmission
    // backoff; the debugger's own retry loop just grinds through.
    link::LinkParams brutal = link::presets::ethernet_hop();
    brutal.drop_probability = 0.4;
    wire(brutal);
    XnetTarget target(target_host, 69, 4096);
    target.poke_direct(0, 42);

    XnetDebugger debugger(dbg_host, target_host.address(), 69,
                          sim::milliseconds(200), /*max_retries=*/200);
    std::optional<std::uint8_t> value;
    debugger.peek(0, 1, [&](const XnetResult& r) {
        if (r.ok) value = r.data.at(0);
    });
    net.run_for(sim::seconds(60));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, 42);
    EXPECT_GT(debugger.retries(), 0u);
}

TEST_F(XnetFixture, DuplicatedPokesAreIdempotent) {
    // Force duplicates: a slow path whose replies often die, so the
    // client retransmits requests the target already served.
    link::LinkParams lossy = link::presets::ethernet_hop();
    lossy.drop_probability = 0.3;
    wire(lossy);
    XnetTarget target(target_host, 69, 4096);
    XnetDebugger debugger(dbg_host, target_host.address(), 69,
                          sim::milliseconds(150), 300);
    bool done = false;
    const std::uint8_t patch[] = {7, 7, 7};
    debugger.poke(10, patch, [&](const XnetResult& r) { done = r.ok; });
    net.run_for(sim::seconds(60));
    ASSERT_TRUE(done);
    EXPECT_EQ(target.peek_direct(10), 7);
    EXPECT_EQ(target.peek_direct(12), 7);
    // The target may well have served the same poke several times; memory
    // is still exactly right — idempotence is the reliability strategy.
    EXPECT_GE(target.requests_served(), 1u);
}

TEST_F(XnetFixture, SurvivesGatewayCrashMidSession) {
    wire();
    XnetTarget target(target_host, 69, 4096);
    XnetDebugger debugger(dbg_host, target_host.address(), 69,
                          sim::milliseconds(300), 100);
    target.poke_direct(5, 0x55);

    std::optional<std::uint8_t> value;
    g.set_down(true);  // the path is dead before we even start
    debugger.peek(5, 1, [&](const XnetResult& r) {
        if (r.ok) value = r.data.at(0);
    });
    net.run_for(sim::seconds(5));
    EXPECT_FALSE(value.has_value());
    g.set_down(false);  // path heals; the standing retry gets through
    net.run_for(sim::seconds(10));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, 0x55);
}

TEST_F(XnetFixture, OneOutstandingOperationAtATime) {
    wire();
    XnetTarget target(target_host, 69, 64);
    XnetDebugger debugger(dbg_host, target_host.address(), 69);
    EXPECT_TRUE(debugger.peek(0, 1, [](const XnetResult&) {}));
    EXPECT_FALSE(debugger.peek(0, 1, [](const XnetResult&) {}))
        << "serial tool: second op refused while one is pending";
}

TEST_F(XnetFixture, OutOfRangeAddressFails) {
    wire();
    XnetTarget target(target_host, 69, 64);
    XnetDebugger debugger(dbg_host, target_host.address(), 69);
    bool failed = false;
    debugger.peek(1000, 4, [&](const XnetResult& r) { failed = !r.ok; });
    net.run_for(sim::seconds(5));
    EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace catenet::app
