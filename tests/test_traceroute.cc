// Traceroute tests: the TTL + ICMP Time Exceeded mechanism produces a
// correct hop-by-hop path map with no cooperation from the network.
#include <gtest/gtest.h>

#include "app/traceroute.h"
#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"

namespace catenet::app {
namespace {

struct TracerouteFixture : ::testing::Test {
    core::Internetwork net{91};
    core::Host& src = net.add_host("src");
    core::Host& dst = net.add_host("dst");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Gateway& g3 = net.add_gateway("g3");

    void wire() {
        net.connect(src, g1, link::presets::ethernet_hop());
        net.connect(g1, g2, link::presets::ethernet_hop());
        net.connect(g2, g3, link::presets::satellite());
        net.connect(g3, dst, link::presets::ethernet_hop());
        net.use_static_routes();
    }
};

TEST_F(TracerouteFixture, DiscoversEveryHopInOrder) {
    wire();
    Traceroute trace(src, dst.address());
    bool done = false;
    trace.start([&](const std::vector<TracerouteHop>& hops) {
        done = true;
        ASSERT_EQ(hops.size(), 4u);
        EXPECT_EQ(hops[0].responder, g1.ip().primary_address());
        EXPECT_EQ(hops[1].responder, g2.ip().primary_address());
        EXPECT_EQ(hops[2].responder, g3.ip().primary_address());
        EXPECT_EQ(hops[3].responder, dst.address());
        EXPECT_TRUE(hops[3].reached_destination);
        EXPECT_FALSE(hops[2].reached_destination);
    });
    net.run_for(sim::seconds(30));
    EXPECT_TRUE(done);
}

TEST_F(TracerouteFixture, RttsReflectThePath) {
    wire();
    Traceroute trace(src, dst.address());
    trace.start({});
    net.run_for(sim::seconds(30));
    ASSERT_TRUE(trace.finished());
    const auto& hops = trace.hops();
    ASSERT_EQ(hops.size(), 4u);
    // The satellite hop (g2->g3) adds ~500 ms of RTT from hop 3 onward.
    EXPECT_LT(hops[1].rtt.millis(), 100.0);
    EXPECT_GT(hops[2].rtt.millis(), 400.0);
    EXPECT_GT(hops[3].rtt.millis(), 400.0);
}

TEST_F(TracerouteFixture, UnreachableDestinationTimesOutToMaxHops) {
    wire();
    // Default route exists, but nothing past g1 knows 192.168/16.
    ip::Route def;
    def.prefix = util::Ipv4Prefix(util::Ipv4Address(0), 0);
    def.next_hop = g1.ip().primary_address();
    def.ifindex = 0;
    def.origin = "static";
    src.ip().routing_table().install(def);

    TracerouteConfig config;
    config.max_hops = 4;
    config.probe_timeout = sim::seconds(1);
    Traceroute trace(src, util::Ipv4Address(192, 168, 1, 1), config);
    trace.start({});
    net.run_for(sim::seconds(60));
    ASSERT_TRUE(trace.finished());
    EXPECT_EQ(trace.hops().size(), 4u);
    EXPECT_FALSE(trace.hops().back().reached_destination);
    // At least the later probes must have timed out (no path).
    EXPECT_FALSE(trace.hops().back().responder.has_value());
}

TEST_F(TracerouteFixture, SingleHopPath) {
    core::Internetwork net2(92);
    core::Host& a = net2.add_host("a");
    core::Host& b = net2.add_host("b");
    net2.connect(a, b, link::presets::ethernet_hop());
    net2.use_static_routes();
    Traceroute trace(a, b.address());
    trace.start({});
    net2.run_for(sim::seconds(10));
    ASSERT_TRUE(trace.finished());
    ASSERT_EQ(trace.hops().size(), 1u);
    EXPECT_TRUE(trace.hops()[0].reached_destination);
    EXPECT_EQ(trace.hops()[0].responder, b.address());
}

}  // namespace
}  // namespace catenet::app
