// Routing tests: message codecs, distance-vector convergence and failure
// response, split horizon, EGP policy and two-tier interworking (goal 4).
#include <gtest/gtest.h>

#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"
#include "routing/distance_vector.h"
#include "routing/egp.h"
#include "routing/messages.h"

namespace catenet::routing {
namespace {

using util::Ipv4Address;
using util::Ipv4Prefix;

TEST(RoutingMessages, DvRoundTrip) {
    DvMessage msg;
    msg.entries.push_back({Ipv4Prefix::parse("10.0.1.0/24"), 3});
    msg.entries.push_back({Ipv4Prefix::parse("10.0.2.0/24"), 16});
    const auto wire = encode_dv(msg);
    const auto back = decode_dv(wire);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->entries.size(), 2u);
    EXPECT_EQ(back->entries[0].prefix.to_string(), "10.0.1.0/24");
    EXPECT_EQ(back->entries[1].metric, 16u);
}

TEST(RoutingMessages, EgpRoundTripWithRegion) {
    EgpMessage msg;
    msg.region = 7;
    msg.entries.push_back({Ipv4Prefix::parse("10.0.9.0/24"), 2});
    const auto back = decode_egp(encode_egp(msg));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->region, 7);
    ASSERT_EQ(back->entries.size(), 1u);
}

TEST(RoutingMessages, MalformedRejected) {
    EXPECT_FALSE(decode_dv(util::ByteBuffer{9, 9, 9}).has_value());
    EXPECT_FALSE(decode_egp(util::ByteBuffer{}).has_value());
    // Bad prefix length inside an otherwise valid envelope.
    util::BufferWriter w;
    w.put_u8(1);
    w.put_u8(0);
    w.put_u16(1);
    w.put_u32(0x0a000000);
    w.put_u8(60);  // invalid length
    w.put_u32(1);
    EXPECT_FALSE(decode_dv(w.data()).has_value());
}

// --- distance vector ----------------------------------------------------

struct DvChain : ::testing::Test {
    // h1 - g1 - g2 - g3 - h2, all DV with a fast period for test speed.
    core::Internetwork net{51};
    core::Host& h1 = net.add_host("h1");
    core::Host& h2 = net.add_host("h2");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Gateway& g3 = net.add_gateway("g3");

    routing::DvConfig fast() {
        routing::DvConfig config;
        config.period = sim::seconds(1);
        config.route_timeout = sim::milliseconds(3500);
        return config;
    }

    void wire() {
        net.connect(h1, g1, link::presets::ethernet_hop());
        net.connect(g1, g2, link::presets::ethernet_hop());
        net.connect(g2, g3, link::presets::ethernet_hop());
        net.connect(g3, h2, link::presets::ethernet_hop());
        net.enable_dynamic_routing(fast());
    }
};

TEST_F(DvChain, ConvergesToFullReachability) {
    wire();
    net.run_for(sim::seconds(10));
    // g1 must know h2's subnet (3 hops of propagation).
    const auto route = g1.ip().routing_table().lookup(h2.address());
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->origin, "dv");
    // h2's subnet is connected at g3 (advertised at 0): g2 learns 1, g1 learns 2.
    EXPECT_EQ(route->metric, 2u);
    // And traffic flows.
    int replies = 0;
    h1.ip().register_protocol(ip::kProtoIcmp, [&](const ip::Ipv4Header&,
                                                  std::span<const std::uint8_t> p,
                                                  std::size_t) {
        auto m = ip::decode_icmp(p);
        if (m && m->type == ip::IcmpType::EchoReply) ++replies;
    });
    h1.ip().ping(h2.address(), 1, 1);
    net.run_for(sim::seconds(1));
    EXPECT_EQ(replies, 1);
}

TEST_F(DvChain, RoutesExpireWhenNeighborDies) {
    wire();
    net.run_for(sim::seconds(10));
    ASSERT_TRUE(g1.ip().routing_table().lookup(h2.address()).has_value());
    g3.set_down(true);
    net.run_for(sim::seconds(15));
    EXPECT_FALSE(g1.ip().routing_table().lookup(h2.address()).has_value())
        << "stale routes must time out after the far gateway dies";
    EXPECT_GT(g1.distance_vector()->stats().routes_expired, 0u);
}

TEST_F(DvChain, RecoversWhenNeighborReturns) {
    wire();
    net.run_for(sim::seconds(10));
    g3.set_down(true);
    net.run_for(sim::seconds(15));
    g3.set_down(false);
    net.run_for(sim::seconds(10));
    EXPECT_TRUE(g1.ip().routing_table().lookup(h2.address()).has_value())
        << "restart must relearn everything from protocol traffic alone";
}

TEST(DvTriangle, PrefersShorterPathAndFailsOver) {
    // g1 -- g2 directly, plus g1 -- g3 -- g2.
    core::Internetwork net(52);
    core::Host& h1 = net.add_host("h1");
    core::Host& h2 = net.add_host("h2");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Gateway& g3 = net.add_gateway("g3");
    net.connect(h1, g1, link::presets::ethernet_hop());
    const auto direct = net.connect(g1, g2, link::presets::ethernet_hop());
    net.connect(g1, g3, link::presets::ethernet_hop());
    net.connect(g3, g2, link::presets::ethernet_hop());
    net.connect(g2, h2, link::presets::ethernet_hop());
    routing::DvConfig config;
    config.period = sim::seconds(1);
    config.route_timeout = sim::milliseconds(3500);
    net.enable_dynamic_routing(config);
    net.run_for(sim::seconds(10));

    auto route = g1.ip().routing_table().lookup(h2.address());
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->metric, 1u) << "h2's subnet is connected at g2: one hop from g1";

    net.fail_link(direct);
    net.run_for(sim::seconds(15));
    route = g1.ip().routing_table().lookup(h2.address());
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->metric, 2u) << "detour via g3 after the direct link dies";
}

TEST(DvPoison, SplitHorizonLimitsCountToInfinity) {
    // Two gateways with a stub subnet behind g2; kill the stub; verify g1
    // expires the route within a few periods rather than counting up.
    core::Internetwork net(53);
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Host& stub = net.add_host("stub");
    net.connect(g1, g2, link::presets::ethernet_hop());
    const auto stub_link = net.connect(g2, stub, link::presets::ethernet_hop());
    routing::DvConfig config;
    config.period = sim::seconds(1);
    config.route_timeout = sim::milliseconds(3500);
    net.enable_dynamic_routing(config);
    net.run_for(sim::seconds(5));
    ASSERT_TRUE(g1.ip().routing_table().lookup(stub.address()).has_value());

    net.fail_link(stub_link);
    net.run_for(sim::seconds(12));
    const auto route = g1.ip().routing_table().lookup(stub.address());
    EXPECT_FALSE(route.has_value()) << "poisoned/expired, not counting to infinity";
}

// --- EGP ----------------------------------------------------------------------

struct TwoRegions : ::testing::Test {
    // Region 1: h1 - g1a - g1b ; Region 2: g2a - h2. g1b <-> g2a is the
    // inter-region link, spoken over EGP only.
    core::Internetwork net{54};
    core::Host& h1 = net.add_host("h1");
    core::Host& h2 = net.add_host("h2");
    core::Gateway& g1a = net.add_gateway("g1a");
    core::Gateway& g1b = net.add_gateway("g1b");
    core::Gateway& g2a = net.add_gateway("g2a");

    routing::DvConfig fast_dv() {
        routing::DvConfig c;
        c.period = sim::seconds(1);
        c.route_timeout = sim::milliseconds(3500);
        return c;
    }
    routing::EgpConfig fast_egp() {
        routing::EgpConfig c;
        c.period = sim::seconds(2);
        c.route_timeout = sim::seconds(7);
        return c;
    }

    void wire(bool with_policy = false) {
        net.connect(h1, g1a, link::presets::ethernet_hop());
        net.connect(g1a, g1b, link::presets::ethernet_hop());
        const auto inter = net.connect(g1b, g2a, link::presets::leased_line());
        net.connect(g2a, h2, link::presets::ethernet_hop());
        (void)inter;

        // Interior routing per region; the inter-region interfaces are
        // excluded from it (the management boundary).
        g1a.enable_distance_vector(fast_dv());
        g1b.enable_distance_vector(fast_dv()).disable_interface(1);
        g2a.enable_distance_vector(fast_dv()).disable_interface(0);
        net.install_host_default_routes();

        auto& egp1 = g1b.enable_egp(1, fast_egp());
        auto& egp2 = g2a.enable_egp(2, fast_egp());
        // Peer addresses: each other's side of the inter-region link.
        // Peer addresses are each side of the inter-region link: g2a's
        // ifindex 0 (its first link) and g1b's ifindex 1 (its second).
        egp1.add_peer(g2a.ip().interface_address(0));
        egp2.add_peer(g1b.ip().interface_address(1));
        if (with_policy) {
            // Region 2 refuses to import h1's subnet.
            const auto secret = util::Ipv4Prefix(
                util::Ipv4Address(h1.address().value() & 0xffffff00u), 24);
            egp2.set_import_policy([secret](const util::Ipv4Prefix& p, std::uint16_t) {
                return !(p == secret);
            });
        }
    }
};

TEST_F(TwoRegions, InterRegionReachabilityPropagates) {
    wire();
    net.run_for(sim::seconds(20));
    // g1a (interior, region 1) must reach h2's subnet via redistribution.
    const auto route = g1a.ip().routing_table().lookup(h2.address());
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->origin, "dv") << "interior gateways learn via redistribution";
    const auto border = g1b.ip().routing_table().lookup(h2.address());
    ASSERT_TRUE(border.has_value());
    EXPECT_EQ(border->origin, "egp");

    int replies = 0;
    h1.ip().register_protocol(ip::kProtoIcmp, [&](const ip::Ipv4Header&,
                                                  std::span<const std::uint8_t> p,
                                                  std::size_t) {
        auto m = ip::decode_icmp(p);
        if (m && m->type == ip::IcmpType::EchoReply) ++replies;
    });
    h1.ip().ping(h2.address(), 3, 1);
    net.run_for(sim::seconds(2));
    EXPECT_EQ(replies, 1) << "cross-region ping must work end to end";
}

TEST_F(TwoRegions, ImportPolicyFiltersPrefixes) {
    wire(/*with_policy=*/true);
    net.run_for(sim::seconds(20));
    EXPECT_FALSE(g2a.ip().routing_table().lookup(h1.address()).has_value())
        << "policy-filtered prefix must not be imported";
    EXPECT_GT(g2a.egp()->stats().routes_filtered, 0u);
    // Unfiltered prefixes still flow the other way.
    EXPECT_TRUE(g1b.ip().routing_table().lookup(h2.address()).has_value());
}

TEST_F(TwoRegions, EgpIgnoresUnconfiguredPeers) {
    wire();
    // A rogue host speaking EGP to g1b must be ignored.
    net.run_for(sim::seconds(20));
    EgpMessage rogue;
    rogue.region = 9;
    rogue.entries.push_back({Ipv4Prefix::parse("99.99.99.0/24"), 1});
    h1.ip().send(ip::kProtoEgp, g1b.address(), encode_egp(rogue));
    net.run_for(sim::seconds(2));
    EXPECT_FALSE(
        g1b.ip().routing_table().find(Ipv4Prefix::parse("99.99.99.0/24")).has_value())
        << "management boundary: only configured peers are believed";
}

TEST_F(TwoRegions, ExportPolicyHidesPrefixesFromAPeer) {
    // Region 1 refuses to EXPORT h1's subnet (an internal-only network);
    // region 2 must never learn it even without import filtering.
    net.connect(h1, g1a, link::presets::ethernet_hop());
    net.connect(g1a, g1b, link::presets::ethernet_hop());
    net.connect(g1b, g2a, link::presets::leased_line());
    net.connect(g2a, h2, link::presets::ethernet_hop());
    g1a.enable_distance_vector(fast_dv());
    g1b.enable_distance_vector(fast_dv()).disable_interface(1);
    auto& dv2 = g2a.enable_distance_vector(fast_dv());
    dv2.disable_interface(0);
    net.install_host_default_routes();

    auto& egp1 = g1b.enable_egp(1, fast_egp());
    auto& egp2 = g2a.enable_egp(2, fast_egp());
    egp1.add_peer(g2a.ip().interface_address(0));
    egp2.add_peer(g1b.ip().interface_address(1));
    const auto secret =
        util::Ipv4Prefix(util::Ipv4Address(h1.address().value() & 0xffffff00u), 24);
    egp1.set_export_policy([secret](const util::Ipv4Prefix& p, std::uint16_t) {
        return !(p == secret);
    });

    net.run_for(sim::seconds(25));
    EXPECT_FALSE(g2a.ip().routing_table().lookup(h1.address()).has_value())
        << "the unexported prefix must be invisible across the boundary";
    EXPECT_TRUE(g2a.ip().routing_table().find(
                    util::Ipv4Prefix(util::Ipv4Address(
                                         g1a.address().value() & 0xffffff00u),
                                     24))
                    .has_value() ||
                g2a.egp()->stats().updates_received > 0)
        << "other region-1 prefixes still flow";
}

TEST_F(TwoRegions, EgpRoutesExpireWhenPeerDies) {
    wire();
    net.run_for(sim::seconds(20));
    ASSERT_TRUE(g1b.ip().routing_table().lookup(h2.address()).has_value());
    g2a.set_down(true);
    net.run_for(sim::seconds(20));
    EXPECT_FALSE(g1b.ip().routing_table().lookup(h2.address()).has_value());
}

}  // namespace
}  // namespace catenet::routing
