// End-to-end smoke tests: the whole stack (apps over TCP/UDP over IP over
// links through gateways) on small topologies. If these pass, the unit
// suites are testing a system that actually works end to end.
#include <gtest/gtest.h>

#include "app/bulk.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"

namespace catenet {
namespace {

using namespace core;

TEST(Smoke, PingAcrossOneGateway) {
    Internetwork net(1);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    Gateway& g = net.add_gateway("g");
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();

    int replies = 0;
    a.ip().register_protocol(ip::kProtoIcmp, [&](const ip::Ipv4Header&,
                                                 std::span<const std::uint8_t> payload,
                                                 std::size_t) {
        auto msg = ip::decode_icmp(payload);
        if (msg && msg->type == ip::IcmpType::EchoReply) ++replies;
    });
    ASSERT_TRUE(a.ip().ping(b.address(), 7, 1));
    net.run_for(sim::seconds(1));
    EXPECT_EQ(replies, 1);
}

TEST(Smoke, TcpBulkTransferAcrossTwoGateways) {
    Internetwork net(2);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    Gateway& g1 = net.add_gateway("g1");
    Gateway& g2 = net.add_gateway("g2");
    net.connect(a, g1, link::presets::ethernet_hop());
    net.connect(g1, g2, link::presets::leased_line());
    net.connect(g2, b, link::presets::ethernet_hop());
    net.use_static_routes();

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 200 * 1024);
    sender.start();
    net.run_for(sim::seconds(120));

    EXPECT_TRUE(sender.finished());
    EXPECT_EQ(server.total_bytes_received(), 200u * 1024u);
    EXPECT_EQ(server.pattern_errors(), 0u);
    EXPECT_EQ(server.connections_completed(), 1u);
}

TEST(Smoke, TcpSurvivesLossyRadioPath) {
    Internetwork net(3);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    Gateway& g = net.add_gateway("g");
    net.connect(a, g, link::presets::packet_radio());
    net.connect(g, b, link::presets::packet_radio());
    net.use_static_routes();

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 50 * 1024);
    sender.start();
    net.run_for(sim::seconds(300));

    EXPECT_TRUE(sender.finished());
    EXPECT_EQ(server.total_bytes_received(), 50u * 1024u);
    EXPECT_EQ(server.pattern_errors(), 0u);
    EXPECT_GT(sender.socket_stats().retransmitted_segments, 0u);
}

TEST(Smoke, VoiceOverUdpDelivers) {
    Internetwork net(4);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    Gateway& g = net.add_gateway("g");
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();

    app::VoiceOverUdp call(a, b, 5004);
    call.start(sim::seconds(10));
    net.run_for(sim::seconds(12));

    const auto report = call.report();
    EXPECT_EQ(report.frames_sent, 500u);
    EXPECT_EQ(report.frames_lost, 0u);
    EXPECT_GT(report.usable_fraction, 0.99);
    EXPECT_LT(report.mean_latency_ms, 5.0);
}

TEST(Smoke, DynamicRoutingReroutesAroundGatewayFailure) {
    // a -- g1 -- g2 -- b     with a backup path  g1 -- g3 -- g2
    Internetwork net(5);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    Gateway& g1 = net.add_gateway("g1");
    Gateway& g2 = net.add_gateway("g2");
    Gateway& g3 = net.add_gateway("g3");
    net.connect(a, g1, link::presets::ethernet_hop());
    const std::size_t main_link = net.connect(g1, g2, link::presets::ethernet_hop());
    net.connect(g1, g3, link::presets::ethernet_hop());
    net.connect(g3, g2, link::presets::ethernet_hop());
    net.connect(g2, b, link::presets::ethernet_hop());
    routing::DvConfig dv;
    dv.period = sim::seconds(2);
    dv.route_timeout = sim::seconds(7);
    net.enable_dynamic_routing(dv);

    net.run_for(sim::seconds(15));  // converge

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 16 * 1024 * 1024);
    sender.start();
    net.run_for(sim::seconds(3));
    EXPECT_FALSE(sender.finished());

    net.fail_link(main_link);  // direct path dies mid-transfer
    net.run_for(sim::seconds(120));

    EXPECT_TRUE(sender.finished()) << "transfer should survive the reroute";
    EXPECT_EQ(server.total_bytes_received(), 16u * 1024u * 1024u);
    EXPECT_EQ(server.pattern_errors(), 0u);
}

}  // namespace
}  // namespace catenet
