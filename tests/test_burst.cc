// Burst forwarding pipeline tests (DESIGN.md §10). The contract under
// test: the burst engine is an *optimization*, never a semantic — every
// observable surface (counters, trace text, flight-recorder transcript,
// interface statistics, gauge time-series, queue accounting, delivered
// payloads) must be byte-identical between a burst-mode run and its
// per-packet twin. The suite runs the same scenario with LinkParams::burst
// at 32 and at 1 and diffs the full observation record, then pins the edge
// cases individually: single-packet bursts, TTL expiry mid-run, malformed
// datagrams at chosen run positions, and a routing-table mutation landing
// between two arrivals of one run (the memo-invalidation window).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "core/internetwork.h"
#include "ip/ip_stack.h"
#include "ip/trace.h"
#include "link/packet.h"
#include "link/point_to_point.h"
#include "link/presets.h"
#include "sim/time.h"
#include "telemetry/counters.h"
#include "telemetry/flight_recorder.h"

// Global allocation counter (same per-binary harness as test_sim.cc /
// test_forward_fastpath.cc): counts every operator-new in this binary so
// the steady-state test can assert the burst path never touches the heap.
namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

// The nothrow forms must be overridden too: libstdc++'s temporary buffers
// (std::inplace_merge in RoutingTable::bulk_load) allocate with
// operator new(nothrow) but release through plain operator delete — if
// only the throwing forms route to malloc, the pairing splits across
// allocators (ASan flags the mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace catenet {
namespace {

constexpr std::uint8_t kProto = 253;  // RFC 3692 experimental

// A link fast enough (and long enough) that 32 back-to-back datagrams are
// all in flight at once: tx(532B) = 42.56us at 100 Mb/s, 31 of them =
// 1.32ms < 2ms of propagation. Queue capacity leaves room for a full
// burst behind an in-progress transmission.
link::LinkParams wan(std::size_t burst) {
    link::LinkParams p;
    p.bits_per_second = 100'000'000;
    p.propagation_delay = sim::milliseconds(2);
    p.queue_capacity_packets = 64;
    p.burst = burst;
    return p;
}

// --- the twin harness ----------------------------------------------------

/// Everything the simulation lets an experimenter observe, flattened for
/// operator==. `events` is deliberately absent: the burst engine replaces
/// per-packet wake-ups with one chain event per run, so event counts are
/// the one number allowed to differ.
struct Observation {
    telemetry::CounterBlock counters;
    std::uint64_t link_bytes = 0;
    std::uint64_t delivered_at_b = 0;
    std::uint64_t delivered_at_a = 0;
    std::string trace;     ///< TraceCollector::merged(), every node
    std::string recorder;  ///< FlightRecorder::merged(), every node
    std::vector<std::uint64_t> port_stats;
    std::vector<std::uint64_t> queue_stats;
    /// (t_ns, value) for every held sample of every gauge series.
    std::vector<std::pair<std::int64_t, double>> gauges;

    bool operator==(const Observation&) const = default;
};

void append_port(std::vector<std::uint64_t>& out, const link::NetIf& netif) {
    const link::NetIfStats& s = netif.stats();
    out.insert(out.end(), {s.packets_sent, s.bytes_sent, s.packets_received,
                           s.bytes_received, s.send_failures, s.busy_ns});
}

void append_queue(std::vector<std::uint64_t>& out, const link::QueueStats& s) {
    out.insert(out.end(),
               {s.enqueued, s.dequeued, s.dropped, s.bytes_enqueued, s.bytes_dropped});
}

/// One rich a — gw — b scenario: ten 32-datagram waves a->b (two of them
/// carrying short-TTL datagrams that expire at the gateway), interleaved
/// 8-datagram replies b->a, a malformed frame injected mid-wave, and a
/// routing-table mutation timed to land between two arrivals of a
/// fully-committed run. Tracing, flight recording, and gauge sampling all
/// enabled — the point is to record everything.
Observation run_twin_scenario(std::size_t burst) {
    core::Internetwork net(99);
    core::Host& a = net.add_host("a");
    core::Gateway& gw = net.add_gateway("gw");
    core::Host& b = net.add_host("b");
    const std::size_t link_ab = net.connect(a, gw, wan(burst));
    const std::size_t link_gb = net.connect(gw, b, wan(burst));
    net.use_static_routes();

    net.enable_gauge_sampling(sim::milliseconds(1));
    telemetry::FlightRecorder& rec = net.attach_flight_recorder();
    ip::TraceCollector traces;
    for (core::Node* n : {static_cast<core::Node*>(&a), static_cast<core::Node*>(&gw),
                          static_cast<core::Node*>(&b)}) {
        const std::size_t lane = traces.add_lane(n->name());
        n->ip().set_trace(traces.make_tracer(lane, n->name(), net.sim()));
    }

    std::uint64_t delivered_b = 0;
    std::uint64_t delivered_a = 0;
    b.ip().register_protocol(kProto, [&delivered_b](const ip::Ipv4Header&,
                                                    std::span<const std::uint8_t>,
                                                    std::size_t) { ++delivered_b; });
    a.ip().register_protocol(kProto, [&delivered_a](const ip::Ipv4Header&,
                                                    std::span<const std::uint8_t>,
                                                    std::size_t) { ++delivered_a; });

    const util::ByteBuffer payload(512, 0x5a);
    const util::ByteBuffer small(64, 0x5a);
    for (int wave = 0; wave < 10; ++wave) {
        for (int i = 0; i < 32; ++i) {
            ip::SendOptions opt;
            // Waves 3 and 7 lace in datagrams that expire at the gateway.
            if ((wave == 3 || wave == 7) && i % 11 == 5) opt.ttl = 1;
            a.ip().send(kProto, b.address(), payload, opt);
        }
        if (wave == 5) {
            // Garbage on the wire mid-wave: version nibble 0xf.
            a.ip().interface(0).send(
                link::make_packet(util::ByteBuffer(40, 0xff), net.sim()),
                b.address());
        }
        for (int i = 0; i < 8; ++i) b.ip().send(kProto, a.address(), small);
        if (wave == 4) {
            // Lands between arrivals 10 and 11 of the committed a->gw run:
            // 2ms propagation + 10.5 serializations of 42.56us.
            net.sim().schedule_after(
                sim::microseconds(2000) + sim::nanoseconds(10 * 42'560 + 21'280),
                [&gw] {
                    ip::Route r;
                    r.prefix = util::Ipv4Prefix::parse("203.0.113.0/24");
                    r.ifindex = 0;
                    gw.ip().routing_table().install(r);
                });
        }
        net.run_for(sim::milliseconds(20));
    }
    // Carrier flap at quiescence (the documented contract point for
    // carrier changes), then one more wave over the restored link.
    net.fail_link(link_ab);
    for (int i = 0; i < 4; ++i) a.ip().send(kProto, b.address(), payload);
    net.run_for(sim::milliseconds(5));
    net.restore_link(link_ab);
    for (int i = 0; i < 32; ++i) a.ip().send(kProto, b.address(), payload);
    net.run_for(sim::milliseconds(20));

    Observation obs;
    obs.counters = net.metrics().totals();
    obs.link_bytes = net.total_link_bytes();
    obs.delivered_at_b = delivered_b;
    obs.delivered_at_a = delivered_a;
    obs.trace = traces.merged();
    obs.recorder = rec.merged();
    for (std::size_t li : {link_ab, link_gb}) {
        append_port(obs.port_stats, net.link(li).port_a());
        append_port(obs.port_stats, net.link(li).port_b());
        append_queue(obs.queue_stats, net.link(li).queue_a().stats());
        append_queue(obs.queue_stats, net.link(li).queue_b().stats());
    }
    for (std::size_t si = 0; si < net.metrics().series_count(); ++si) {
        const telemetry::GaugeSeries& s = net.metrics().series(si);
        for (std::size_t k = 0; k < s.held(); ++k) {
            obs.gauges.emplace_back(s.at(k).t_ns, s.at(k).value);
        }
    }
    return obs;
}

TEST(BurstTwin, EveryObservableSurfaceMatchesPerPacketEngine) {
    const Observation burst = run_twin_scenario(32);
    const Observation legacy = run_twin_scenario(1);
    // Diff the cheap scalars first so a failure names the surface.
    EXPECT_EQ(burst.counters.slots, legacy.counters.slots);
    EXPECT_EQ(burst.link_bytes, legacy.link_bytes);
    EXPECT_EQ(burst.delivered_at_b, legacy.delivered_at_b);
    EXPECT_EQ(burst.delivered_at_a, legacy.delivered_at_a);
    EXPECT_EQ(burst.port_stats, legacy.port_stats);
    EXPECT_EQ(burst.queue_stats, legacy.queue_stats);
    EXPECT_EQ(burst.gauges, legacy.gauges);
    EXPECT_EQ(burst.trace, legacy.trace);
    EXPECT_EQ(burst.recorder, legacy.recorder);
    EXPECT_EQ(burst, legacy);
    // The scenario must actually have exercised the interesting paths.
    EXPECT_GT(burst.counters.get(telemetry::Counter::IpDropTtlExpired), 0u);
    EXPECT_GT(burst.counters.get(telemetry::Counter::IpDropMalformed), 0u);
    EXPECT_GT(burst.counters.get(telemetry::Counter::IpRouteCacheHit), 0u);
    EXPECT_EQ(burst.delivered_at_b, 10u * 32u - 6u + 32u);
}

TEST(BurstTwin, BurstModeReplaysExactly) {
    EXPECT_EQ(run_twin_scenario(32), run_twin_scenario(32));
}

// --- edge cases ----------------------------------------------------------

struct Chain {
    explicit Chain(std::size_t burst, std::uint64_t seed = 7)
        : net(seed),
          a(net.add_host("a")),
          gw(net.add_gateway("gw")),
          b(net.add_host("b")) {
        net.connect(a, gw, wan(burst));
        net.connect(gw, b, wan(burst));
        net.use_static_routes();
        b.ip().register_protocol(kProto,
                                 [this](const ip::Ipv4Header&,
                                        std::span<const std::uint8_t>,
                                        std::size_t) { ++delivered; });
    }
    core::Internetwork net;
    core::Host& a;
    core::Gateway& gw;
    core::Host& b;
    std::uint64_t delivered = 0;
};

TEST(BurstEdge, RunOfOneTakesTheBypassAndDelivers) {
    Chain c(32);
    ASSERT_TRUE(c.a.ip().send(kProto, c.b.address(), util::ByteBuffer(512, 1)));
    c.net.sim().run();
    EXPECT_EQ(c.delivered, 1u);
    EXPECT_EQ(c.gw.ip().stats().forwarded, 1u);
}

TEST(BurstEdge, TtlExpiresMidRun) {
    // Positions 10 and 20 of a 32-run expire at the gateway; the other 30
    // arrive, and the sender hears two Time Exceeded datagrams.
    Chain c(32);
    const util::ByteBuffer payload(512, 2);
    for (int i = 0; i < 32; ++i) {
        ip::SendOptions opt;
        if (i == 10 || i == 20) opt.ttl = 1;
        c.a.ip().send(kProto, c.b.address(), payload, opt);
    }
    c.net.sim().run();
    EXPECT_EQ(c.delivered, 30u);
    EXPECT_EQ(c.gw.ip().stats().dropped_ttl_expired, 2u);
    EXPECT_EQ(c.gw.ip().stats().icmp_errors_sent, 2u);
    EXPECT_EQ(c.gw.ip().stats().forwarded, 30u);
}

class BurstMalformedPosition : public ::testing::TestWithParam<int> {};

TEST_P(BurstMalformedPosition, DroppedAtExactRunPosition) {
    // A garbage frame at run position 0, 15, or 31: the decode pass flags
    // it, the commit loop drops it, and every other slot still forwards.
    const int pos = GetParam();
    Chain c(32);
    const util::ByteBuffer payload(512, 3);
    for (int i = 0; i < 32; ++i) {
        if (i == pos) {
            c.a.ip().interface(0).send(
                link::make_packet(util::ByteBuffer(40, 0xff), c.net.sim()),
                c.b.address());
        } else {
            c.a.ip().send(kProto, c.b.address(), payload);
        }
    }
    c.net.sim().run();
    EXPECT_EQ(c.delivered, 31u);
    EXPECT_EQ(c.gw.ip().stats().dropped_malformed, 1u);
    EXPECT_EQ(c.gw.ip().stats().forwarded, 31u);
}

INSTANTIATE_TEST_SUITE_P(Positions, BurstMalformedPosition,
                         ::testing::Values(0, 15, 31));

TEST(BurstEdge, RouteMutationBetweenArrivalsInvalidatesTheMemo) {
    // The memo is probed once per destination per run — unless the table
    // generation moves underneath it. Install an (unrelated) route timed
    // between arrival 10 and arrival 11 of a committed run and check the
    // pipeline re-probed: two cold misses for one destination, and every
    // datagram still forwarded.
    Chain c(32);
    const util::ByteBuffer payload(512, 4);
    for (int i = 0; i < 32; ++i) c.a.ip().send(kProto, c.b.address(), payload);
    c.net.sim().schedule_after(
        sim::microseconds(2000) + sim::nanoseconds(10 * 42'560 + 21'280), [&c] {
            ip::Route r;
            r.prefix = util::Ipv4Prefix::parse("203.0.113.0/24");
            r.ifindex = 0;
            c.gw.ip().routing_table().install(r);
        });
    c.net.sim().run();
    EXPECT_EQ(c.delivered, 32u);
    EXPECT_EQ(c.gw.ip().stats().forwarded, 32u);
    const auto& counters = c.gw.ip().counters();
    EXPECT_EQ(counters.get(telemetry::Counter::IpRouteCacheMiss), 2u)
        << "exactly one extra cold probe after the generation bump";
    EXPECT_EQ(counters.get(telemetry::Counter::IpRouteCacheHit), 30u);
}

TEST(BurstEdge, CarrierCutMidRunStaysSaneAndRecovers) {
    // Not a twin-equality claim (carrier changes mid-flight are outside
    // the determinism contract — DESIGN.md §10): the committed run is
    // partially lost, nothing crashes or leaks, and traffic flows again
    // after restore.
    Chain c(32);
    const util::ByteBuffer payload(512, 5);
    for (int i = 0; i < 32; ++i) c.a.ip().send(kProto, c.b.address(), payload);
    // Mid-serialization of the run: 2 of 32 slots settled.
    c.net.sim().schedule_after(sim::microseconds(100), [&c] { c.net.fail_link(0); });
    c.net.run_for(sim::milliseconds(50));
    const std::uint64_t after_cut = c.delivered;
    EXPECT_LT(after_cut, 32u);
    c.net.restore_link(0);
    for (int i = 0; i < 32; ++i) c.a.ip().send(kProto, c.b.address(), payload);
    c.net.sim().run();
    EXPECT_EQ(c.delivered, after_cut + 32u);
}

// --- allocation silence --------------------------------------------------

TEST(BurstAlloc, SteadyStateForwardingIsHeapSilent) {
    Chain c(32);
    const util::ByteBuffer payload(512, 6);
    auto wave = [&] {
        for (int i = 0; i < 32; ++i) c.a.ip().send(kProto, c.b.address(), payload);
        c.net.sim().run();
    };
    // Warm-up: buffer pool, in-flight rings, event heap, route cache —
    // and the engine's far-bucket arena, primed past any high-water mark
    // a wave can reach (a wave straddling the 67 ms far-horizon boundary
    // parks its deliveries there; that arena's amortized growth is engine
    // behavior, not part of the burst path under test).
    for (int i = 0; i < 256; ++i) {
        c.net.sim().schedule_after(sim::milliseconds(100 + i), [] {});
    }
    c.net.sim().run();
    for (int i = 0; i < 5; ++i) wave();
    const std::uint64_t before = g_heap_allocs;
    for (int i = 0; i < 10; ++i) wave();
    EXPECT_EQ(g_heap_allocs - before, 0u)
        << "burst forwarding allocated on the steady-state path";
    EXPECT_EQ(c.delivered, 15u * 32u);
}

}  // namespace
}  // namespace catenet
