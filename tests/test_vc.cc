// Virtual-circuit baseline tests: frame codec, per-link ARQ, call setup
// and data transfer through switches, and the architecture's defining
// weakness — calls die with the switches that carry them.
#include <gtest/gtest.h>

#include "link/presets.h"
#include "vc/frame.h"
#include "vc/link_arq.h"
#include "vc/network.h"

namespace catenet::vc {
namespace {

TEST(VcFrameCodec, CallRequestRoundTrip) {
    const auto f = VcFrame::call_request(42, 7, 3);
    const auto back = decode_frame(encode_frame(f));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, VcFrameType::CallRequest);
    EXPECT_EQ(back->vci, 42);
    EXPECT_EQ(back->requested_dst(), 7);
    EXPECT_EQ(back->requested_src(), 3);
}

TEST(VcFrameCodec, DataAndClearRoundTrip) {
    const util::ByteBuffer payload{1, 2, 3};
    auto back = decode_frame(encode_frame(VcFrame::data(9, payload)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, VcFrameType::Data);
    EXPECT_EQ(back->body, payload);

    back = decode_frame(encode_frame(VcFrame::call_clear(9, kClearLinkFailure)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->clear_cause(), kClearLinkFailure);
}

TEST(VcFrameCodec, RejectsUnknownType) {
    EXPECT_FALSE(decode_frame(util::ByteBuffer{0, 0, 0}).has_value());
    EXPECT_FALSE(decode_frame(util::ByteBuffer{99, 0, 1}).has_value());
    EXPECT_FALSE(decode_frame(util::ByteBuffer{}).has_value());
}

// --- link ARQ -------------------------------------------------------------

struct ArqLinkFixture : ::testing::Test {
    sim::Simulator sim;
    util::Rng rng{61};
};

TEST_F(ArqLinkFixture, ReliableInOrderOverLossyLink) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = 0.2;
    link::PointToPointLink link(sim, rng, params);
    LinkArqConfig config;
    config.rto = sim::milliseconds(50);
    config.max_retries = 100;
    LinkArq left(sim, link.port_a(), config);
    LinkArq right(sim, link.port_b(), config);

    std::vector<int> received;
    right.set_deliver([&](util::ByteBuffer frame) { received.push_back(frame.at(0)); });
    for (int i = 0; i < 100; ++i) {
        left.send(util::ByteBuffer{static_cast<std::uint8_t>(i)});
    }
    sim.run_until(sim::seconds(60));
    ASSERT_EQ(received.size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(received[i], i);
    EXPECT_GT(left.stats().frames_retransmitted, 0u);
}

TEST_F(ArqLinkFixture, DeclaresLinkDeadAfterRetries) {
    link::PointToPointLink link(sim, rng, link::presets::ethernet_hop());
    LinkArqConfig config;
    config.rto = sim::milliseconds(50);
    config.max_retries = 3;
    LinkArq left(sim, link.port_a(), config);
    LinkArq right(sim, link.port_b(), config);
    right.set_deliver([](util::ByteBuffer) {});

    bool failed = false;
    left.set_on_link_failed([&] { failed = true; });
    link.set_up(false);  // peer unreachable
    left.send(util::ByteBuffer{1});
    sim.run_until(sim::seconds(10));
    EXPECT_TRUE(failed);
}

TEST_F(ArqLinkFixture, FullDuplexSimultaneousTraffic) {
    link::PointToPointLink link(sim, rng, link::presets::ethernet_hop());
    LinkArq left(sim, link.port_a());
    LinkArq right(sim, link.port_b());
    int to_right = 0, to_left = 0;
    right.set_deliver([&](util::ByteBuffer) { ++to_right; });
    left.set_deliver([&](util::ByteBuffer) { ++to_left; });
    for (int i = 0; i < 20; ++i) {
        left.send(util::ByteBuffer{1});
        right.send(util::ByteBuffer{2});
    }
    sim.run_until(sim::seconds(10));
    EXPECT_EQ(to_right, 20);
    EXPECT_EQ(to_left, 20);
}

// --- network-level behaviour --------------------------------------------------

struct VcNetFixture : ::testing::Test {
    sim::Simulator sim;
    VcNetwork net{sim, 62};

    // h1 - s1 - s2 - s3 - h2
    std::size_t s1 = net.add_switch("s1");
    std::size_t s2 = net.add_switch("s2");
    std::size_t s3 = net.add_switch("s3");
    std::size_t h1 = net.add_host(1, "h1");
    std::size_t h2 = net.add_host(2, "h2");

    void wire() {
        net.connect_switches(s1, s2, link::presets::leased_line());
        net.connect_switches(s2, s3, link::presets::leased_line());
        net.connect_host(h1, s1, link::presets::leased_line());
        net.connect_host(h2, s3, link::presets::leased_line());
        net.compute_routes();
    }
};

TEST_F(VcNetFixture, CallSetupAcceptAndData) {
    wire();
    bool accepted = false;
    util::ByteBuffer received;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<VcCall> call) {
        call->on_data = [&received](std::span<const std::uint8_t> d) {
            received.insert(received.end(), d.begin(), d.end());
        };
    });
    auto call = net.host_at(h1).place_call(2);
    call->on_accepted = [&] {
        accepted = true;
        call->send(util::buffer_from_string("through the circuit"));
    };
    sim.run_until(sim::seconds(30));
    EXPECT_TRUE(accepted);
    EXPECT_EQ(util::string_from_buffer(received), "through the circuit");
    EXPECT_EQ(net.switch_at(s2).active_circuits(), 1u)
        << "the call's state lives inside every switch on the path";
}

TEST_F(VcNetFixture, LargeTransferIsChunkedAndOrdered) {
    wire();
    util::ByteBuffer received;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<VcCall> call) {
        call->on_data = [&received](std::span<const std::uint8_t> d) {
            received.insert(received.end(), d.begin(), d.end());
        };
    });
    util::ByteBuffer data(5000);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i % 251);
    }
    auto call = net.host_at(h1).place_call(2);
    call->on_accepted = [&] { call->send(data); };
    sim.run_until(sim::seconds(120));
    EXPECT_EQ(received, data);
}

TEST_F(VcNetFixture, ClearTearsDownCircuitStateEverywhere) {
    wire();
    std::shared_ptr<VcCall> callee;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<VcCall> c) { callee = c; });
    auto call = net.host_at(h1).place_call(2);
    bool cleared_remote = false;
    sim.run_until(sim::seconds(10));
    ASSERT_TRUE(callee);
    callee->on_cleared = [&](std::uint8_t) { cleared_remote = true; };
    ASSERT_EQ(net.switch_at(s2).active_circuits(), 1u);
    call->clear();
    sim.run_until(sim::seconds(20));
    EXPECT_TRUE(cleared_remote);
    EXPECT_EQ(net.switch_at(s1).active_circuits(), 0u);
    EXPECT_EQ(net.switch_at(s2).active_circuits(), 0u);
    EXPECT_EQ(net.switch_at(s3).active_circuits(), 0u);
}

TEST_F(VcNetFixture, CallToUnroutableAddressRefused) {
    wire();
    auto call = net.host_at(h1).place_call(99);
    std::uint8_t cause = 0xff;
    call->on_cleared = [&](std::uint8_t c) { cause = c; };
    sim.run_until(sim::seconds(10));
    EXPECT_EQ(call->state(), CallState::Cleared);
    EXPECT_EQ(cause, kClearNoRoute);
}

TEST_F(VcNetFixture, SwitchCrashKillsCallsThroughIt) {
    wire();
    util::ByteBuffer received;
    net.host_at(h2).set_incoming_handler([&](std::shared_ptr<VcCall> call) {
        call->on_data = [&received](std::span<const std::uint8_t> d) {
            received.insert(received.end(), d.begin(), d.end());
        };
    });
    auto call = net.host_at(h1).place_call(2);
    bool cleared = false;
    std::uint8_t cause = 0xff;
    call->on_cleared = [&](std::uint8_t c) {
        cleared = true;
        cause = c;
    };
    call->on_accepted = [&] { call->send(util::ByteBuffer(2000, 0x11)); };
    sim.run_until(sim::seconds(15));
    ASSERT_EQ(call->state(), CallState::Connected);

    net.fail_switch(s2);  // mid-path switch dies; its circuit table is gone
    // Keep talking: the stalled hop-by-hop ARQ at s1 is what detects the
    // death and clears the call (X.25 had no end-to-end liveness).
    for (int i = 0; i < 20 && !cleared; ++i) {
        call->send(util::ByteBuffer(100, 0x33));
        sim.run_until(sim.now() + sim::seconds(5));
    }
    EXPECT_TRUE(cleared) << "the defining VC failure mode: calls die with switches";
    EXPECT_TRUE(cause == kClearLinkFailure || cause == kClearUnknownCircuit)
        << "cause=" << int(cause);
}

TEST_F(VcNetFixture, RestartedSwitchRefusesOrphanCircuits) {
    wire();
    auto call = net.host_at(h1).place_call(2);
    bool cleared = false;
    call->on_accepted = [&] {};
    call->on_cleared = [&](std::uint8_t) { cleared = true; };
    sim.run_until(sim::seconds(15));
    ASSERT_EQ(call->state(), CallState::Connected);

    // Crash and immediately restore: the table is empty afterwards; the
    // first data frame on the old circuit draws a clear.
    net.fail_switch(s2);
    sim.run_until(sim.now() + sim::milliseconds(100));
    net.restore_switch(s2);
    call->send(util::ByteBuffer(100, 0x22));
    sim.run_until(sim.now() + sim::seconds(60));
    EXPECT_TRUE(cleared);
    EXPECT_EQ(net.switch_at(s2).active_circuits(), 0u);
}

TEST_F(VcNetFixture, NewCallSucceedsAfterSwitchRestart) {
    wire();
    net.host_at(h2).set_incoming_handler([](std::shared_ptr<VcCall>) {});
    net.fail_switch(s2);
    sim.run_until(sim.now() + sim::seconds(1));
    net.restore_switch(s2);

    auto call = net.host_at(h1).place_call(2);
    bool accepted = false;
    call->on_accepted = [&] { accepted = true; };
    sim.run_until(sim.now() + sim::seconds(30));
    EXPECT_TRUE(accepted) << "a restarted switch serves new calls normally";
}

TEST_F(VcNetFixture, StateBytesGrowWithCalls) {
    wire();
    net.host_at(h2).set_incoming_handler([](std::shared_ptr<VcCall>) {});
    const auto before = net.switch_at(s2).state_bytes();
    std::vector<std::shared_ptr<VcCall>> calls;
    for (int i = 0; i < 10; ++i) calls.push_back(net.host_at(h1).place_call(2));
    sim.run_until(sim::seconds(30));
    EXPECT_EQ(net.switch_at(s2).active_circuits(), 10u);
    EXPECT_GT(net.switch_at(s2).state_bytes(), before)
        << "per-call switch memory is the replication cost the paper rejects";
}

}  // namespace
}  // namespace catenet::vc
