// Segmentation-offload tests (DESIGN.md §12). The contract under test:
// GSO (one mega-segment descriptor per transmission opportunity, split
// late at the egress link) and GRO (in-order receive runs coalesced
// through one demux probe) are *optimizations*, never semantics — wire
// bytes, ACK cadence, delivered payloads, traces, flight-recorder
// transcripts, and every cross-mode-comparable counter must be identical
// between an offload-on run and its per-segment twin. The four
// Tcp{Gso,Gro}* counters are diagnostics of how work was batched and are
// the only slots allowed to differ (the same exception class as event
// counts in the burst-engine twins).
//
// The suite runs one rich bulk-transfer scenario with segmentation_offload
// on and off and diffs the full observation record — including the wire
// digest stream each host's interface delivered, which pins byte-for-byte
// and packet-for-packet wire identity in both directions — then walks the
// edges: mega-segments truncated by cwnd/rwnd mid-build, FIN and PSH
// landing inside a run, corruption under a bit-error link, retransmission
// over GSO-built spans, zero-window stalls with persist probes, and
// foreign datagrams splitting receive runs. A final pair of allocation
// tests asserts the steady-state GSO build and GRO delivery paths are
// heap-silent.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "core/internetwork.h"
#include "ip/ip_stack.h"
#include "ip/trace.h"
#include "link/netif.h"
#include "link/packet.h"
#include "link/point_to_point.h"
#include "sim/time.h"
#include "tcp/tcp.h"
#include "telemetry/counters.h"
#include "telemetry/flight_recorder.h"

// Global allocation counter (same per-binary harness as test_burst.cc):
// counts every operator-new in this binary so the steady-state tests can
// assert the offload paths never touch the heap.
namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

// The nothrow forms must be overridden too: libstdc++'s temporary buffers
// (std::inplace_merge in RoutingTable::bulk_load) allocate with
// operator new(nothrow) but release through plain operator delete — if
// only the throwing forms route to malloc, the pairing splits across
// allocators (ASan flags the mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace catenet {
namespace {

constexpr std::uint8_t kForeignProto = 253;  // RFC 3692 experimental

// Fast and long enough that whole segment trains are in flight at once:
// tx(1500B) = 120us at 100 Mb/s, 2 ms of propagation — the regime where
// burst delivery (and therefore GRO) actually engages at the receiver.
link::LinkParams wan() {
    link::LinkParams p;
    p.bits_per_second = 100'000'000;
    p.propagation_delay = sim::milliseconds(2);
    p.queue_capacity_packets = 64;
    return p;
}

/// Zeroes the offload diagnostics — the only counters allowed to differ
/// between an offload-on run and its per-segment twin.
telemetry::CounterBlock mask_offload(telemetry::CounterBlock block) {
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        if (telemetry::offload_diagnostic(static_cast<telemetry::Counter>(i))) {
            block.slots[i] = 0;
        }
    }
    return block;
}

// --- the twin harness ----------------------------------------------------

struct Knobs {
    bool offload = true;
    std::uint64_t goal = 256 * 1024;   ///< app bytes to transfer a -> b
    double drop = 0.0;                 ///< first-hop drop probability
    double ber = 0.0;                  ///< first-hop bit error rate
    std::size_t recv_buffer = 64 * 1024;
    bool close_after = false;          ///< sender closes once goal is queued
    bool interleave_foreign = false;   ///< lace datagrams into the trains
    bool zero_window = false;          ///< manual receive, slow drain, probes
};

/// Everything the simulation lets an experimenter observe, flattened for
/// field-by-field diffing. The wire digest streams record (FNV-1a, size)
/// of every packet delivered up each host's interface, in delivery order:
/// two runs whose streams match put identical bytes on the wire in
/// identical order — the GSO late split is byte-equivalent to per-segment
/// encode, and the ACK cadence (delayed-ACK timing included) is identical.
struct Observation {
    telemetry::CounterBlock counters;
    std::uint64_t delivered = 0;      ///< app payload bytes received at b
    std::uint64_t foreign = 0;        ///< interleaved datagrams seen at b
    std::uint64_t link_bytes = 0;
    bool client_closed = false;
    std::string trace;                ///< TraceCollector::merged(), every node
    std::string recorder;             ///< FlightRecorder::merged(), every node
    std::vector<std::uint64_t> wire_at_b;  ///< digest stream into b (data dir)
    std::vector<std::uint64_t> wire_at_a;  ///< digest stream into a (ACK dir)
    std::vector<std::uint64_t> socket_stats;

    bool operator==(const Observation&) const = default;
};

void append_socket(std::vector<std::uint64_t>& out, const tcp::TcpSocketStats& s) {
    out.insert(out.end(),
               {s.segments_sent, s.segments_received, s.bytes_sent, s.bytes_received,
                s.retransmitted_segments, s.retransmitted_bytes, s.timeouts,
                s.fast_retransmits, s.duplicate_acks_received, s.out_of_order_segments,
                s.fast_path_acks, s.fast_path_data});
}

Observation run_offload_scenario(const Knobs& k) {
    core::Internetwork net(2026);
    core::Host& a = net.add_host("a");
    core::Gateway& gw = net.add_gateway("gw");
    core::Host& b = net.add_host("b");
    link::LinkParams first = wan();
    first.drop_probability = k.drop;
    first.bit_error_rate = k.ber;
    net.connect(a, gw, first);  // impairments confined to the first hop
    net.connect(gw, b, wan());
    net.use_static_routes();

    telemetry::FlightRecorder& rec = net.attach_flight_recorder();
    ip::TraceCollector traces;
    for (core::Node* n : {static_cast<core::Node*>(&a), static_cast<core::Node*>(&gw),
                          static_cast<core::Node*>(&b)}) {
        const std::size_t lane = traces.add_lane(n->name());
        n->ip().set_trace(traces.make_tracer(lane, n->name(), net.sim()));
    }

    Observation obs;
    a.ip().interface(0).set_wire_tap(
        [&obs](std::uint64_t digest, std::uint32_t size) {
            obs.wire_at_a.push_back(digest);
            obs.wire_at_a.push_back(size);
        });
    b.ip().interface(0).set_wire_tap(
        [&obs](std::uint64_t digest, std::uint32_t size) {
            obs.wire_at_b.push_back(digest);
            obs.wire_at_b.push_back(size);
        });
    b.ip().register_protocol(kForeignProto,
                             [&obs](const ip::Ipv4Header&, std::span<const std::uint8_t>,
                                    std::size_t) { ++obs.foreign; });

    tcp::TcpConfig cfg;
    cfg.segmentation_offload = k.offload;
    cfg.recv_buffer = k.recv_buffer;

    std::shared_ptr<tcp::TcpSocket> server;
    b.tcp().listen(
        80,
        [&](std::shared_ptr<tcp::TcpSocket> s) {
            server = s;
            if (k.zero_window) {
                s->set_manual_receive(true);
            } else {
                s->on_data = [&obs](std::span<const std::uint8_t> d) {
                    obs.delivered += d.size();
                };
            }
            s->on_remote_close = [raw = s.get()] { raw->close(); };
        },
        cfg);
    auto client = a.tcp().connect(b.address(), 80, cfg);
    client->on_closed = [&obs] { obs.client_closed = true; };
    net.sim().run();
    EXPECT_TRUE(client->connected()) << "handshake did not complete";

    const std::vector<std::uint8_t> block(16 * 1024, 0x5a);
    std::uint64_t queued = 0;
    auto pump = [&] {
        while (queued < k.goal) {
            const std::size_t want =
                std::min<std::uint64_t>(block.size(), k.goal - queued);
            const std::size_t accepted =
                client->send(std::span<const std::uint8_t>(block.data(), want));
            queued += accepted;
            if (accepted < want) return;
        }
        if (k.close_after) {
            client->close();
            client->on_send_space = nullptr;
        }
    };
    client->on_send_space = pump;

    if (k.interleave_foreign) {
        // Foreign datagrams timed to land inside the data trains at b:
        // each one splits whatever GRO run is open at that slot.
        const util::ByteBuffer noise(512, 0xab);
        for (int i = 1; i <= 40; ++i) {
            net.sim().schedule_after(sim::milliseconds(2 * i), [&a, &b, noise] {
                a.ip().send(kForeignProto, b.address(), noise);
            });
        }
    }
    if (k.zero_window) {
        // Drain 1 KB every 1.2 s — slower than the 1 s persist interval,
        // so the advertised window genuinely closes and the transfer is
        // carried across zero-window stalls by persist probes.
        for (int i = 1; i <= 120; ++i) {
            net.sim().schedule_after(
                sim::milliseconds(1200) * i, [&server, &obs] {
                    if (server == nullptr) return;
                    std::array<std::uint8_t, 1024> buf;
                    obs.delivered += server->read(buf);
                });
        }
    }

    pump();
    net.sim().run();

    obs.counters = net.metrics().totals();
    obs.link_bytes = net.total_link_bytes();
    obs.trace = traces.merged();
    obs.recorder = rec.merged();
    append_socket(obs.socket_stats, client->stats());
    if (server != nullptr) append_socket(obs.socket_stats, server->stats());
    return obs;
}

/// Diffs the cheap scalars first so a failure names the surface, then the
/// full record with offload diagnostics masked out.
void expect_twin_equal(const Observation& on, const Observation& off) {
    EXPECT_EQ(on.delivered, off.delivered);
    EXPECT_EQ(on.foreign, off.foreign);
    EXPECT_EQ(on.link_bytes, off.link_bytes);
    EXPECT_EQ(on.client_closed, off.client_closed);
    EXPECT_EQ(on.socket_stats, off.socket_stats);
    EXPECT_EQ(on.wire_at_b, off.wire_at_b) << "data-direction wire stream diverged";
    EXPECT_EQ(on.wire_at_a, off.wire_at_a) << "ACK-direction wire stream diverged";
    EXPECT_EQ(on.trace, off.trace);
    EXPECT_EQ(on.recorder, off.recorder);
    EXPECT_EQ(mask_offload(on.counters).slots, mask_offload(off.counters).slots);
    // Off means off: the per-segment pipeline must not so much as touch
    // the offload machinery.
    EXPECT_EQ(off.counters.get(telemetry::Counter::TcpGsoBuilds), 0u);
    EXPECT_EQ(off.counters.get(telemetry::Counter::TcpGroSegs), 0u);
}

// --- the main twins -------------------------------------------------------

TEST(OffloadTwin, BulkTransferMatchesPerSegmentPipelineEverywhere) {
    Knobs k;
    const Observation on = run_offload_scenario(k);
    k.offload = false;
    const Observation off = run_offload_scenario(k);
    expect_twin_equal(on, off);
    EXPECT_EQ(on.delivered, k.goal);
    // The scenario must actually have exercised both halves of the offload.
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpGsoBuilds), 0u)
        << "no mega-segment was ever built";
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpGroSegs), 0u)
        << "the receive run lane never consumed a segment";
    EXPECT_GE(on.counters.get(telemetry::Counter::TcpGsoSegs),
              2 * on.counters.get(telemetry::Counter::TcpGsoBuilds))
        << "mega-segments must cover at least two MSS each";
}

TEST(OffloadTwin, OffloadRunReplaysExactly) {
    Knobs k;
    const Observation first = run_offload_scenario(k);
    const Observation second = run_offload_scenario(k);
    EXPECT_EQ(first, second);
}

// --- equivalence edges ----------------------------------------------------

TEST(OffloadEdge, MegaSegmentTruncatedByReceiveWindow) {
    // An 8 KB advertised window caps every build at ~5 MSS: the usable-
    // window clamp trims trains mid-build, over and over.
    Knobs k;
    k.recv_buffer = 8 * 1024;
    k.goal = 64 * 1024;
    const Observation on = run_offload_scenario(k);
    k.offload = false;
    const Observation off = run_offload_scenario(k);
    expect_twin_equal(on, off);
    EXPECT_EQ(on.delivered, k.goal);
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpGsoBuilds), 0u);
    EXPECT_LE(on.counters.get(telemetry::Counter::TcpGsoSegs),
              5 * on.counters.get(telemetry::Counter::TcpGsoBuilds))
        << "the receive window should have capped every build below 6 segments";
}

TEST(OffloadEdge, FinAndPushInsideTheFinalRun) {
    // The sender closes the moment the last byte is queued: the FIN chases
    // the final train, and every drained train carries PSH on its last
    // segment. The FIN-bearing segment must decline the run lane and take
    // the slow path — connection teardown is bit-identical either way.
    Knobs k;
    k.goal = 64 * 1024;
    k.close_after = true;
    const Observation on = run_offload_scenario(k);
    k.offload = false;
    const Observation off = run_offload_scenario(k);
    expect_twin_equal(on, off);
    EXPECT_EQ(on.delivered, k.goal);
    EXPECT_TRUE(on.client_closed) << "full close handshake did not complete";
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpGsoBuilds), 0u);
}

TEST(OffloadEdge, RetransmissionOverGsoBuiltSpans) {
    // 2% first-hop loss: spans sent as mega-segments are lost and
    // re-sent — retransmission re-reads the ring per wire segment, so
    // recovery must be identical to the per-segment pipeline's.
    Knobs k;
    k.goal = 256 * 1024;  // enough crossings that 2% loss always bites
    k.drop = 0.02;
    const Observation on = run_offload_scenario(k);
    k.offload = false;
    const Observation off = run_offload_scenario(k);
    expect_twin_equal(on, off);
    EXPECT_EQ(on.delivered, k.goal);
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpRetransSegs), 0u)
        << "the lossy scenario never actually lost a segment";
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpGsoBuilds), 0u);
}

TEST(OffloadEdge, BitErrorsInvalidateTheChecksumVouch) {
    // A bit-error link corrupts segments in flight; maybe_corrupt clears
    // the csum_ok vouch, so the receiver's full checksum verification
    // catches every mangled segment exactly as the per-segment pipeline
    // does — corruption, drop accounting, and recovery are identical.
    Knobs k;
    k.goal = 128 * 1024;
    k.ber = 2e-6;
    const Observation on = run_offload_scenario(k);
    k.offload = false;
    const Observation off = run_offload_scenario(k);
    expect_twin_equal(on, off);
    EXPECT_EQ(on.delivered, k.goal);
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpDropChecksum) +
                  on.counters.get(telemetry::Counter::IpDropChecksum),
              0u)
        << "the bit-error link never actually corrupted a segment";
}

TEST(OffloadEdge, ForeignDatagramsSplitReceiveRuns) {
    // Datagrams of another protocol landing inside the data trains force
    // the receive loop to close the open run, dispatch the foreigner
    // through the ordinary path, and start a fresh run — with no effect
    // on anything observable.
    Knobs k;
    k.goal = 128 * 1024;
    k.interleave_foreign = true;
    const Observation on = run_offload_scenario(k);
    k.offload = false;
    const Observation off = run_offload_scenario(k);
    expect_twin_equal(on, off);
    EXPECT_EQ(on.delivered, k.goal);
    EXPECT_EQ(on.foreign, 40u);
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpGroRuns), 0u);
}

TEST(OffloadEdge, ZeroWindowProbesCarryTheTransfer) {
    // Manual receive with a 1 KB drain every 1.2 s against a 1 s persist
    // interval: the window spends most of the transfer closed, and persist
    // probes (which the run lane must decline — zero window fails the
    // predicate) keep the connection alive identically in both modes.
    Knobs k;
    k.goal = 16 * 1024;
    k.recv_buffer = 8 * 1024;
    k.zero_window = true;
    const Observation on = run_offload_scenario(k);
    k.offload = false;
    const Observation off = run_offload_scenario(k);
    expect_twin_equal(on, off);
    EXPECT_EQ(on.delivered, k.goal);
    EXPECT_GT(on.counters.get(telemetry::Counter::TcpZeroWindowEvents), 0u)
        << "the window never actually closed";
}

// --- allocation silence ---------------------------------------------------

TEST(OffloadAlloc, SteadyStateGsoBuildAndGroDeliveryAreHeapSilent) {
    core::Internetwork net(7);
    core::Host& a = net.add_host("a");
    core::Gateway& gw = net.add_gateway("gw");
    core::Host& b = net.add_host("b");
    net.connect(a, gw, wan());
    net.connect(gw, b, wan());
    net.use_static_routes();

    std::uint64_t delivered = 0;
    b.tcp().listen(80, [&delivered](std::shared_ptr<tcp::TcpSocket> s) {
        s->on_data = [&delivered](std::span<const std::uint8_t> d) {
            delivered += d.size();
        };
    });
    auto client = a.tcp().connect(b.address(), 80);
    net.sim().run();
    ASSERT_TRUE(client->connected());

    const std::vector<std::uint8_t> block(16 * 1024, 0x5a);
    std::uint64_t queued = 0;
    std::uint64_t goal = 0;
    auto pump = [&] {
        while (queued < goal) {
            const std::size_t want =
                std::min<std::uint64_t>(block.size(), goal - queued);
            const std::size_t accepted =
                client->send(std::span<const std::uint8_t>(block.data(), want));
            queued += accepted;
            if (accepted < want) return;
        }
    };
    client->on_send_space = pump;
    auto wave = [&] {
        goal += 64 * 1024;
        pump();
        net.sim().run();
    };

    // Warm-up: buffer pool, rings, route caches, the event heap — and the
    // engine's far-bucket arena, primed past any high-water mark a wave
    // can reach (same discipline as test_burst.cc).
    for (int i = 0; i < 256; ++i) {
        net.sim().schedule_after(sim::milliseconds(100 + i), [] {});
    }
    net.sim().run();
    for (int i = 0; i < 5; ++i) wave();

    const telemetry::CounterBlock warm = net.metrics().totals();
    const std::uint64_t before = g_heap_allocs;
    for (int i = 0; i < 10; ++i) wave();
    EXPECT_EQ(g_heap_allocs - before, 0u)
        << "the steady-state offload path allocated";
    const telemetry::CounterBlock after = net.metrics().totals();
    EXPECT_EQ(delivered, 15u * 64u * 1024u);
    // The silent phase must have actually gone through the offload paths.
    EXPECT_GT(after.get(telemetry::Counter::TcpGsoBuilds),
              warm.get(telemetry::Counter::TcpGsoBuilds));
    EXPECT_GT(after.get(telemetry::Counter::TcpGroSegs),
              warm.get(telemetry::Counter::TcpGroSegs));
}

}  // namespace
}  // namespace catenet
