// UDP unit tests: codec, checksum semantics, demultiplexing, ephemeral
// ports, behaviour over fragmenting and lossy paths.
#include <gtest/gtest.h>

#include "core/internetwork.h"
#include "link/presets.h"
#include "udp/udp.h"

namespace catenet::udp {
namespace {

using util::Ipv4Address;

TEST(UdpCodec, RoundTrip) {
    const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
    UdpHeader h;
    h.src_port = 5353;
    h.dst_port = 53;
    const util::ByteBuffer payload{1, 2, 3, 4, 5, 6, 7};
    const auto wire = encode_udp(h, src, dst, payload);
    EXPECT_EQ(wire.size(), kUdpHeaderSize + payload.size());

    std::span<const std::uint8_t> out;
    const auto back = decode_udp(src, dst, wire, out);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->src_port, 5353);
    EXPECT_EQ(back->dst_port, 53);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), out.begin()));
}

TEST(UdpCodec, ChecksumCatchesCorruption) {
    const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
    auto wire = encode_udp(UdpHeader{1, 2}, src, dst, util::ByteBuffer{9, 9});
    wire.back() ^= 0x10;
    std::span<const std::uint8_t> out;
    EXPECT_FALSE(decode_udp(src, dst, wire, out).has_value());
}

TEST(UdpCodec, ChecksumCoversAddresses) {
    const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
    const auto wire = encode_udp(UdpHeader{1, 2}, src, dst, {});
    std::span<const std::uint8_t> out;
    EXPECT_FALSE(decode_udp(src, Ipv4Address(9, 9, 9, 9), wire, out).has_value())
        << "misrouted datagram must fail the pseudo-header checksum";
}

TEST(UdpCodec, TruncatedRejected) {
    const Ipv4Address src(1, 1, 1, 1), dst(2, 2, 2, 2);
    std::span<const std::uint8_t> out;
    const util::ByteBuffer tiny{1, 2, 3};
    EXPECT_FALSE(decode_udp(src, dst, tiny, out).has_value());
}

struct UdpPair : ::testing::Test {
    core::Internetwork net{31};
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");

    void wire(const link::LinkParams& params = link::presets::ethernet_hop()) {
        net.connect(a, b, params);
        net.use_static_routes();
    }
};

TEST_F(UdpPair, DatagramDelivery) {
    wire();
    auto rx = b.udp().bind(1000);
    std::string got;
    std::uint16_t got_port = 0;
    rx->set_handler([&](Ipv4Address from, std::uint16_t port,
                        std::span<const std::uint8_t> data) {
        got = util::string_from_buffer(data);
        got_port = port;
        EXPECT_EQ(from, a.address());
    });
    auto tx = a.udp().bind_ephemeral();
    ASSERT_TRUE(tx->send_to(b.address(), 1000, util::buffer_from_string("datagram!")));
    net.run_for(sim::seconds(1));
    EXPECT_EQ(got, "datagram!");
    EXPECT_EQ(got_port, tx->local_port());
}

TEST_F(UdpPair, DemuxAcrossPorts) {
    wire();
    auto rx1 = b.udp().bind(1001);
    auto rx2 = b.udp().bind(1002);
    int got1 = 0, got2 = 0;
    rx1->set_handler([&](auto, auto, auto) { ++got1; });
    rx2->set_handler([&](auto, auto, auto) { ++got2; });
    auto tx = a.udp().bind_ephemeral();
    tx->send_to(b.address(), 1001, util::ByteBuffer{1});
    tx->send_to(b.address(), 1002, util::ByteBuffer{2});
    tx->send_to(b.address(), 1002, util::ByteBuffer{3});
    net.run_for(sim::seconds(1));
    EXPECT_EQ(got1, 1);
    EXPECT_EQ(got2, 2);
}

TEST_F(UdpPair, UnboundPortCounted) {
    wire();
    auto tx = a.udp().bind_ephemeral();
    tx->send_to(b.address(), 4242, util::ByteBuffer{1});
    net.run_for(sim::seconds(1));
    EXPECT_EQ(b.udp().stats().dropped_no_socket, 1u);
}

TEST_F(UdpPair, DoubleBindThrows) {
    wire();
    auto rx = b.udp().bind(1000);
    EXPECT_THROW(b.udp().bind(1000), std::invalid_argument);
}

TEST_F(UdpPair, SocketDestructionUnbinds) {
    wire();
    { auto rx = b.udp().bind(1000); }
    auto rx2 = b.udp().bind(1000);  // rebind must succeed
    SUCCEED();
}

TEST_F(UdpPair, LargeDatagramSurvivesFragmentation) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.mtu = 576;
    wire(params);
    auto rx = b.udp().bind(1000);
    util::ByteBuffer got;
    rx->set_handler([&](auto, auto, std::span<const std::uint8_t> data) {
        got = util::to_buffer(data);
    });
    util::ByteBuffer big(4000);
    for (std::size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<std::uint8_t>(i * 7);
    }
    auto tx = a.udp().bind_ephemeral();
    tx->send_to(b.address(), 1000, big);
    net.run_for(sim::seconds(1));
    EXPECT_EQ(got, big);
    EXPECT_GT(a.ip().stats().fragments_created, 0u);
}

TEST_F(UdpPair, LossIsSilent) {
    // The defining UDP property: datagrams vanish and nobody tells you.
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = 0.5;
    wire(params);
    auto rx = b.udp().bind(1000);
    int got = 0;
    rx->set_handler([&](auto, auto, auto) { ++got; });
    auto tx = a.udp().bind_ephemeral();
    constexpr int kSent = 400;
    for (int i = 0; i < kSent; ++i) {
        tx->send_to(b.address(), 1000, util::ByteBuffer{1});
        net.run_for(sim::milliseconds(5));  // pace: isolate channel loss from queue loss
    }
    net.run_for(sim::seconds(5));
    EXPECT_GT(got, kSent / 4);
    EXPECT_LT(got, 3 * kSent / 4);
    EXPECT_EQ(a.udp().stats().datagrams_sent, static_cast<std::uint64_t>(kSent));
}

TEST_F(UdpPair, TosBitsCarriedInIpHeader) {
    wire();
    std::uint8_t seen_tos = 0;
    // Peek at the IP layer via a tap on the receiving host's handler.
    b.ip().register_protocol(
        200, [](const ip::Ipv4Header&, std::span<const std::uint8_t>, std::size_t) {});
    auto rx = b.udp().bind(1000);
    rx->set_handler([&](auto, auto, auto) {});
    // Observe via gateway-free direct path: use IP stats instead; simplest
    // check: send and confirm on the wire through a forward tap on b.
    // Direct connection has no forwarding, so decode the header in a raw
    // protocol handler instead: re-register UDP is not possible. Use the
    // socket's own path: set ToS then verify via a's datagrams_sent and
    // the fact the checksum (which covers nothing of ToS) passed. The
    // real assertion happens in the IP codec tests; here we verify the
    // setter is plumbed by sending through a gateway with a tap.
    core::Internetwork net2(32);
    core::Host& c = net2.add_host("c");
    core::Host& d = net2.add_host("d");
    core::Gateway& gw = net2.add_gateway("gw");
    net2.connect(c, gw, link::presets::ethernet_hop());
    net2.connect(gw, d, link::presets::ethernet_hop());
    net2.use_static_routes();
    gw.ip().set_forward_tap([&](const ip::Ipv4Header& h, std::size_t) { seen_tos = h.tos; });
    auto rx2 = d.udp().bind(1000);
    rx2->set_handler([](auto, auto, auto) {});
    auto tx2 = c.udp().bind_ephemeral();
    tx2->set_tos(0x10);
    tx2->send_to(d.address(), 1000, util::ByteBuffer{1});
    net2.run_for(sim::seconds(1));
    EXPECT_EQ(seen_tos, 0x10);
}

}  // namespace
}  // namespace catenet::udp
