// The zero-copy forwarding fast path: RFC 1624 incremental checksum
// equivalence, byte-identity of the in-place TTL rewrite against full
// re-serialization, allocation-freedom of the N-hop forward loop, and the
// soft-state destination cache's invalidation-by-generation discipline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <new>
#include <random>
#include <vector>

#include "core/internetwork.h"
#include "ip/ipv4_header.h"
#include "ip/protocols.h"
#include "ip/routing_table.h"
#include "link/point_to_point.h"
#include "link/presets.h"
#include "util/buffer_pool.h"
#include "util/checksum.h"

// Global allocation counter (same per-binary harness as test_sim.cc):
// counts every operator-new in this binary; tests measure deltas around
// loops that must never touch the allocator.
namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

// The nothrow forms must be overridden too: libstdc++'s temporary buffers
// (std::inplace_merge in RoutingTable::bulk_load) allocate with
// operator new(nothrow) but release through plain operator delete — if
// only the throwing forms route to malloc, the pairing splits across
// allocators (ASan flags the mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

// GCC flags free() inside replaced operator delete as mismatched when it
// inlines both sides; the pairing here is malloc/free-consistent.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace catenet {
namespace {

using util::checksum_update_u16;
using util::internet_checksum;

// Full RFC 1071 recompute of a header whose checksum field (bytes 10-11)
// is in place: zero the field, sum, restore nothing (caller owns copy).
std::uint16_t full_recompute(std::vector<std::uint8_t> header) {
    header[10] = 0;
    header[11] = 0;
    return internet_checksum(header);
}

std::uint16_t word_at(const std::vector<std::uint8_t>& b, std::size_t off) {
    return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

void set_word(std::vector<std::uint8_t>& b, std::size_t off, std::uint16_t v) {
    b[off] = static_cast<std::uint8_t>(v >> 8);
    b[off + 1] = static_cast<std::uint8_t>(v & 0xff);
}

// --- RFC 1624 equivalence ----------------------------------------------

TEST(ChecksumUpdate, MatchesFullRecomputeOnRandomHeaders) {
    std::mt19937 rng(0xc1a88u);
    std::uniform_int_distribution<int> byte(0, 255);
    for (int trial = 0; trial < 5000; ++trial) {
        std::vector<std::uint8_t> hdr(20);
        for (auto& b : hdr) b = static_cast<std::uint8_t>(byte(rng));
        hdr[0] = 0x45;  // a real header's version/IHL byte: sum never 0
        set_word(hdr, 10, full_recompute(hdr));

        // Change one random 16-bit word (not the checksum's own word).
        std::size_t off = (static_cast<std::size_t>(byte(rng)) % 10) * 2;
        if (off == 10) off = 8;
        const std::uint16_t old_word = word_at(hdr, off);
        const std::uint16_t new_word =
            static_cast<std::uint16_t>((byte(rng) << 8) | byte(rng));

        const std::uint16_t incremental =
            checksum_update_u16(word_at(hdr, 10), old_word, new_word);
        set_word(hdr, off, new_word);
        EXPECT_EQ(incremental, full_recompute(hdr))
            << "trial " << trial << " offset " << off << " old " << old_word
            << " new " << new_word;
    }
}

TEST(ChecksumUpdate, EdgeWordsZeroAndAllOnes) {
    // The 0x0000 / 0xffff representations are where naive incremental
    // updates (RFC 1141 eqn 2) historically diverged; sweep all edge
    // combinations of the changing word on real-shaped headers.
    std::mt19937 rng(7u);
    std::uniform_int_distribution<int> byte(0, 255);
    const std::uint16_t edges[] = {0x0000, 0xffff, 0x0001, 0xfffe, 0x1234};
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> hdr(20);
        for (auto& b : hdr) b = static_cast<std::uint8_t>(byte(rng));
        hdr[0] = 0x45;
        for (std::uint16_t old_word : edges) {
            for (std::uint16_t new_word : edges) {
                set_word(hdr, 8, old_word);
                set_word(hdr, 10, full_recompute(hdr));
                const std::uint16_t incremental =
                    checksum_update_u16(word_at(hdr, 10), old_word, new_word);
                auto changed = hdr;
                set_word(changed, 8, new_word);
                EXPECT_EQ(incremental, full_recompute(changed))
                    << old_word << " -> " << new_word;
            }
        }
    }
}

TEST(ChecksumUpdate, HeaderDrivenToChecksumZeroStillMatches) {
    // Scan identification values until the header checksum itself lands on
    // the 0x0000 representation, then check the TTL-decrement update there.
    ip::Ipv4Header h;
    h.ttl = 64;
    h.protocol = 17;
    h.src = util::Ipv4Address::parse("10.1.0.1");
    h.dst = util::Ipv4Address::parse("10.2.0.2");
    bool found = false;
    for (std::uint32_t id = 0; id <= 0xffff; ++id) {
        h.identification = static_cast<std::uint16_t>(id);
        auto wire = ip::encode_datagram(h, {});
        if (word_at(wire, 10) != 0x0000) continue;
        found = true;
        ip::Ipv4Header dec = h;
        dec.ttl = 63;
        EXPECT_EQ(ip::encode_datagram(dec, {}),
                  [&] { auto w = wire; ip::decrement_ttl(w); return w; }());
        break;
    }
    EXPECT_TRUE(found) << "no identification produced checksum 0x0000";
}

// --- byte identity of the in-place rewrite ------------------------------

TEST(FastPath, DecrementTtlMatchesReserialization) {
    std::mt19937 rng(0x1624u);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> len(0, 512);
    for (int trial = 0; trial < 2000; ++trial) {
        ip::Ipv4Header h;
        h.tos = static_cast<std::uint8_t>(byte(rng));
        h.identification = static_cast<std::uint16_t>((byte(rng) << 8) | byte(rng));
        h.dont_fragment = (trial % 2) == 0;
        h.ttl = static_cast<std::uint8_t>(2 + byte(rng) % 254);
        h.protocol = static_cast<std::uint8_t>(byte(rng));
        h.src = util::Ipv4Address(static_cast<std::uint32_t>(rng()));
        h.dst = util::Ipv4Address(static_cast<std::uint32_t>(rng()));
        std::vector<std::uint8_t> payload(static_cast<std::size_t>(len(rng)));
        for (auto& b : payload) b = static_cast<std::uint8_t>(byte(rng));

        auto wire = ip::encode_datagram(h, payload);
        ip::decrement_ttl(wire);

        ip::Ipv4Header hopped = h;
        hopped.ttl = static_cast<std::uint8_t>(h.ttl - 1);
        EXPECT_EQ(wire, ip::encode_datagram(hopped, payload)) << "trial " << trial;
    }
}

TEST(FastPath, ForwardedWireIsByteIdenticalToReencoding) {
    // End to end through a real gateway: capture the frame arriving at the
    // destination host's interface and check it is exactly the canonical
    // serialization of the decoded header — i.e. what the seed's
    // re-encoding forwarder put on the wire.
    core::Internetwork net(7);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& gw = net.add_gateway("gw");
    net.connect(a, gw, link::presets::ethernet_hop());
    net.connect(gw, b, link::presets::ethernet_hop());
    net.use_static_routes();

    std::vector<util::ByteBuffer> captured;
    b.ip().interface(0).set_receiver(
        [&captured](link::Packet p) { captured.push_back(std::move(p.bytes)); });

    const std::vector<std::uint8_t> payload(64, 0x5a);
    ASSERT_TRUE(a.ip().send(253, b.address(), payload));
    net.sim().run();

    ASSERT_EQ(captured.size(), 1u);
    const auto& wire = captured.front();
    ip::DecodedDatagram d;
    ASSERT_TRUE(ip::decode_datagram(wire, d));
    EXPECT_EQ(d.header.ttl, 63);  // one hop off the default 64
    EXPECT_EQ(gw.ip().stats().forwarded, 1u);
    const auto reencoded =
        ip::encode_datagram(d.header, ip::payload_of(wire, d));
    EXPECT_EQ(wire, reencoded);
}

// --- allocation freedom -------------------------------------------------

TEST(FastPath, NHopForwardingIsAllocationFreeInSteadyState) {
    constexpr int kHops = 4;
    core::Internetwork net(42);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    std::vector<core::Gateway*> gws;
    for (int i = 0; i < kHops; ++i) {
        gws.push_back(&net.add_gateway("g" + std::to_string(i)));
    }
    core::Node* prev = &a;
    for (auto* gw : gws) {
        net.connect(*prev, *gw, link::presets::ethernet_hop());
        prev = gw;
    }
    net.connect(*prev, b, link::presets::ethernet_hop());
    net.use_static_routes();

    std::uint64_t delivered = 0;
    b.ip().register_protocol(253, [&delivered](const ip::Ipv4Header&,
                                               std::span<const std::uint8_t>,
                                               std::size_t) { ++delivered; });
    const std::vector<std::uint8_t> payload(512, 0xab);
    const auto dst = b.address();

    // Warm every pool on the path: packet buffers, event slots, in-flight
    // nodes, the destination route caches.
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(a.ip().send(253, dst, payload));
        net.sim().run();
    }
    ASSERT_EQ(delivered, 64u);

    const std::uint64_t before = g_heap_allocs;
    constexpr std::uint64_t kRounds = 256;
    for (std::uint64_t i = 0; i < kRounds; ++i) {
        a.ip().send(253, dst, payload);
        net.sim().run();
    }
    const std::uint64_t delta = g_heap_allocs - before;
    EXPECT_EQ(delivered, 64u + kRounds);
    EXPECT_EQ(delta, 0u) << "heap allocations on the steady-state forward path";
}

// --- buffer pool --------------------------------------------------------

TEST(BufferPool, RecyclesCapacityAndIgnoresMovedFromBuffers) {
    util::BufferPool pool(4);
    auto b1 = pool.acquire(1500);
    EXPECT_GE(b1.capacity(), 1500u);
    EXPECT_TRUE(b1.empty());
    const auto* data = b1.data();
    pool.recycle(std::move(b1));
    EXPECT_EQ(pool.pooled(), 1u);
    auto b2 = pool.acquire(100);
    EXPECT_EQ(b2.data(), data);  // same storage came back
    EXPECT_EQ(pool.stats().reuses, 1u);

    util::ByteBuffer dead;  // capacity 0: the moved-from shell
    pool.recycle(std::move(dead));
    EXPECT_EQ(pool.pooled(), 0u);

    // The pool caps its hoard.
    for (int i = 0; i < 10; ++i) pool.recycle(util::ByteBuffer(64));
    EXPECT_EQ(pool.pooled(), 4u);
}

// --- routing table interning & generations ------------------------------

TEST(RoutingTable, LookupPointersAreStableAcrossMutation) {
    ip::RoutingTable table;
    const auto p24 = util::Ipv4Prefix::parse("10.1.0.0/24");
    table.install({p24, util::Ipv4Address::parse("10.9.9.1"), 3, 5, "dv"});
    const ip::Route* route = table.lookup(util::Ipv4Address::parse("10.1.0.7")).get();
    ASSERT_NE(route, nullptr);
    EXPECT_EQ(route->ifindex, 3u);

    // Churn the table around it.
    for (int i = 0; i < 64; ++i) {
        table.install({util::Ipv4Prefix(util::Ipv4Address(0xc0a80000u + 256u * i), 24),
                       util::Ipv4Address::parse("10.9.9.2"), 1, 1, "static"});
    }
    table.remove(util::Ipv4Prefix::parse("192.168.5.0/24"));

    // Re-installing the same prefix updates the interned node in place:
    // the old pointer observes the new contents.
    table.install({p24, util::Ipv4Address::parse("10.9.9.3"), 7, 2, "dv"});
    EXPECT_EQ(route, table.lookup(util::Ipv4Address::parse("10.1.0.7")).get());
    EXPECT_EQ(route->ifindex, 7u);
    EXPECT_EQ(route->next_hop, util::Ipv4Address::parse("10.9.9.3"));
}

TEST(RoutingTable, GenerationBumpsOnEveryEffectiveMutation) {
    ip::RoutingTable table;
    const auto g0 = table.generation();
    table.install({util::Ipv4Prefix::parse("10.0.0.0/8"),
                   util::Ipv4Address::parse("10.0.0.1"), 0, 0, "static"});
    const auto g1 = table.generation();
    EXPECT_GT(g1, g0);

    table.install({util::Ipv4Prefix::parse("10.0.0.0/8"),
                   util::Ipv4Address::parse("10.0.0.2"), 0, 0, "static"});
    const auto g2 = table.generation();
    EXPECT_GT(g2, g1);  // replacement changes routing: must invalidate

    table.remove_by_origin("dv");  // nothing matches: harmless no-op
    EXPECT_EQ(table.generation(), g2);
    EXPECT_FALSE(table.remove(util::Ipv4Prefix::parse("172.16.0.0/12")));
    EXPECT_EQ(table.generation(), g2);

    EXPECT_TRUE(table.remove(util::Ipv4Prefix::parse("10.0.0.0/8")));
    EXPECT_GT(table.generation(), g2);
}

TEST(RoutingTable, RemoveByUnknownOriginIsANoOp) {
    ip::RoutingTable table;
    table.install({util::Ipv4Prefix::parse("10.0.0.0/8"),
                   util::Ipv4Address::parse("10.0.0.1"), 0, 0, "static"});
    table.remove_by_origin("bogus");
    EXPECT_EQ(table.size(), 1u);
}

// --- route cache invalidation through the live stack --------------------

class RouteCacheTopology : public ::testing::Test {
protected:
    // a reaches b through g1 or g2 (parallel two-hop paths). Static routes
    // pick one; the tests then steer a's stack with a /32 and watch which
    // gateway's forwarded counter moves — a stale cache line would keep
    // packets on the old path.
    RouteCacheTopology() : net(11), a(net.add_host("a")), b(net.add_host("b")),
                           g1(net.add_gateway("g1")), g2(net.add_gateway("g2")) {
        net.connect(a, g1, link::presets::ethernet_hop());  // a ifindex 0
        net.connect(a, g2, link::presets::ethernet_hop());  // a ifindex 1
        net.connect(g1, b, link::presets::ethernet_hop());
        net.connect(g2, b, link::presets::ethernet_hop());
        net.use_static_routes();
        b.ip().register_protocol(253, [this](const ip::Ipv4Header&,
                                             std::span<const std::uint8_t>,
                                             std::size_t) { ++delivered; });
    }

    // Next hop on one of a's point-to-point subnets: a holds .1, peer .2.
    util::Ipv4Address next_hop_via(std::size_t a_ifindex) const {
        return util::Ipv4Address(a.ip().interface_address(a_ifindex).value() + 1);
    }

    void send_n(int n) {
        const std::vector<std::uint8_t> payload(32, 0x11);
        for (int i = 0; i < n; ++i) {
            ASSERT_TRUE(a.ip().send(253, b.address(), payload));
            net.sim().run();
        }
    }

    std::uint64_t via_g1() const { return g1.ip().stats().forwarded; }
    std::uint64_t via_g2() const { return g2.ip().stats().forwarded; }

    core::Internetwork net;
    core::Host& a;
    core::Host& b;
    core::Gateway& g1;
    core::Gateway& g2;
    std::uint64_t delivered = 0;
};

TEST_F(RouteCacheTopology, InstallInvalidatesWarmCache) {
    send_n(5);  // warm a's destination cache on the static path
    const bool warm_via_g1 = via_g1() == 5;
    ASSERT_TRUE(warm_via_g1 || via_g2() == 5);

    // Steer b's address through the *other* gateway with a /32.
    const std::size_t other_if = warm_via_g1 ? 1u : 0u;
    a.ip().routing_table().install({util::Ipv4Prefix(b.address(), 32),
                                    next_hop_via(other_if), other_if, 0, "dv"});
    send_n(5);
    EXPECT_EQ(warm_via_g1 ? via_g2() : via_g1(), 5u)
        << "packets kept flowing through the stale cached route";
    EXPECT_EQ(delivered, 10u);
}

TEST_F(RouteCacheTopology, RemoveRestoresTheCoarserRoute) {
    send_n(3);
    const bool warm_via_g1 = via_g1() == 3;
    const std::size_t other_if = warm_via_g1 ? 1u : 0u;
    a.ip().routing_table().install({util::Ipv4Prefix(b.address(), 32),
                                    next_hop_via(other_if), other_if, 0, "dv"});
    send_n(3);
    ASSERT_TRUE(a.ip().routing_table().remove(util::Ipv4Prefix(b.address(), 32)));
    send_n(3);  // must fall back to the original path, not the dead cache line
    EXPECT_EQ(warm_via_g1 ? via_g1() : via_g2(), 6u);
    EXPECT_EQ(warm_via_g1 ? via_g2() : via_g1(), 3u);
    EXPECT_EQ(delivered, 9u);
}

TEST_F(RouteCacheTopology, RemoveByOriginInvalidates) {
    send_n(2);
    const bool warm_via_g1 = via_g1() == 2;
    const std::size_t other_if = warm_via_g1 ? 1u : 0u;
    a.ip().routing_table().install({util::Ipv4Prefix(b.address(), 32),
                                    next_hop_via(other_if), other_if, 0, "dv"});
    send_n(2);
    a.ip().routing_table().remove_by_origin("dv");
    send_n(2);
    EXPECT_EQ(warm_via_g1 ? via_g1() : via_g2(), 4u);
    EXPECT_EQ(delivered, 6u);
}

TEST_F(RouteCacheTopology, FlushRoutesLeavesNoCachedPath) {
    send_n(4);
    EXPECT_EQ(delivered, 4u);
    a.ip().flush_routes();
    const std::vector<std::uint8_t> payload(32, 0x22);
    // A stale cache hit would silently forward; the flush must surface as
    // a synchronous no-route failure.
    EXPECT_FALSE(a.ip().send(253, b.address(), payload));
    EXPECT_EQ(a.ip().stats().dropped_no_route, 1u);
}

// --- exact serialization delay ------------------------------------------

TEST(LinkParams, TransmissionTimeIsExactIntegerCeil) {
    link::LinkParams p;
    p.bits_per_second = 10'000'000;
    EXPECT_EQ(p.transmission_time(1500), sim::Time(1'200'000));  // exact

    p.bits_per_second = 3;  // pathological rate: 1 byte = 8/3 s
    EXPECT_EQ(p.transmission_time(1), sim::Time(2'666'666'667));  // ceil, not trunc

    p.bits_per_second = 7;
    EXPECT_EQ(p.transmission_time(1), sim::Time(1'142'857'143));  // 8e9/7 rounded up

    p.bits_per_second = 1'000'000'000;
    EXPECT_EQ(p.transmission_time(1500), sim::Time(12'000));

    // Above ~4 Gb/s the old double round-trip lost low bits; the integer
    // path stays exact.
    p.bits_per_second = 100'000'000'000ull;
    EXPECT_EQ(p.transmission_time(1500), sim::Time(120));
    p.bits_per_second = 64'000'000'000ull;
    EXPECT_EQ(p.transmission_time(1), sim::Time(1));  // 0.125 ns occupies 1 ns
}

}  // namespace
}  // namespace catenet
