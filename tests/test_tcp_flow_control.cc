// Flow-control tests in manual-receive mode: the real RFC 793 window
// dance. The receiving application paces consumption with read(); the
// advertised window shrinks as data queues, closes when the buffer fills,
// and reopens via silly-window-avoided updates.
#include <gtest/gtest.h>

#include "core/internetwork.h"
#include "link/presets.h"
#include "tcp/tcp.h"

namespace catenet::tcp {
namespace {

struct FlowFixture : ::testing::Test {
    core::Internetwork net{151};
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    std::shared_ptr<TcpSocket> server;

    void wire_and_listen(std::size_t server_recv_buffer = 8 * 1024) {
        net.connect(a, b, link::presets::ethernet_hop());
        net.use_static_routes();
        TcpConfig cfg;
        cfg.recv_buffer = server_recv_buffer;
        b.tcp().listen(
            80,
            [this](std::shared_ptr<TcpSocket> s) {
                server = s;
                s->set_manual_receive(true);
            },
            cfg);
    }
};

TEST_F(FlowFixture, SenderStallsWhenReceiverStopsReading) {
    wire_and_listen(8 * 1024);
    auto client = a.tcp().connect(b.address(), 80);
    std::size_t accepted = 0;
    client->on_connected = [&] { accepted = client->send(util::ByteBuffer(64 * 1024, 1)); };
    net.run_for(sim::seconds(10));
    // The receiver never reads: at most recv_buffer bytes can be queued.
    ASSERT_TRUE(server);
    EXPECT_LE(server->bytes_available(), 8u * 1024u);
    EXPECT_GE(server->bytes_available(), 6u * 1024u)
        << "the window should let roughly a buffer's worth through";
}

TEST_F(FlowFixture, ReadingReopensTheWindow) {
    wire_and_listen(8 * 1024);
    auto client = a.tcp().connect(b.address(), 80);
    constexpr std::size_t kTotal = 64 * 1024;
    std::size_t queued = 0;
    auto pump = [&] {
        util::ByteBuffer chunk(4096, 2);
        while (queued < kTotal) {
            const std::size_t want = std::min(chunk.size(), kTotal - queued);
            const auto took =
                client->send(std::span<const std::uint8_t>(chunk.data(), want));
            queued += took;
            if (took < want) break;
        }
    };
    client->on_connected = pump;
    client->on_send_space = pump;

    // The application drains 1 KiB every 50 ms — slower than the network.
    std::size_t consumed = 0;
    sim::PeriodicTimer reader(net.sim(), [&] {
        std::uint8_t buf[1024];
        consumed += server ? server->read(buf) : 0;
        if (client && queued < kTotal) pump();
    });
    reader.start(sim::milliseconds(50));
    net.run_for(sim::seconds(10));
    reader.stop();
    // Drain what's left.
    while (server && server->bytes_available() > 0) {
        std::uint8_t buf[4096];
        consumed += server->read(buf);
        net.run_for(sim::milliseconds(100));
    }
    net.run_for(sim::seconds(5));
    while (server && server->bytes_available() > 0) {
        std::uint8_t buf[4096];
        consumed += server->read(buf);
        net.run_for(sim::milliseconds(100));
    }
    EXPECT_EQ(queued, kTotal);
    EXPECT_EQ(consumed, kTotal) << "every byte must eventually pass the window";
}

TEST_F(FlowFixture, ThroughputIsPacedByTheReader) {
    wire_and_listen(8 * 1024);
    auto client = a.tcp().connect(b.address(), 80);
    std::size_t queued = 0;
    auto pump = [&] {
        util::ByteBuffer chunk(4096, 3);
        for (;;) {
            const auto took = client->send(chunk);
            queued += took;
            if (took < chunk.size()) break;
        }
    };
    client->on_connected = pump;
    client->on_send_space = pump;

    // Reader consumes exactly 2 KiB per 100 ms = ~20 KiB/s.
    std::size_t consumed = 0;
    sim::PeriodicTimer reader(net.sim(), [&] {
        std::uint8_t buf[2048];
        if (server) consumed += server->read(buf);
    });
    reader.start(sim::milliseconds(100));
    net.run_for(sim::seconds(20));
    reader.stop();
    const double rate = static_cast<double>(consumed) / 20.0;
    EXPECT_NEAR(rate, 20480.0, 4096.0)
        << "end-to-end rate must track the application's consumption rate";
    // And the sender was held back accordingly (not megabytes ahead):
    // at most one send buffer + one receive buffer of slack.
    EXPECT_LE(queued, consumed + 64 * 1024 + 8 * 1024);
}

TEST_F(FlowFixture, SillyWindowUpdatesAreSuppressed) {
    wire_and_listen(8 * 1024);
    auto client = a.tcp().connect(b.address(), 80);
    client->on_connected = [&] { client->send(util::ByteBuffer(32 * 1024, 4)); };
    net.run_for(sim::seconds(3));
    ASSERT_TRUE(server);
    // Window is now pinched. Tiny 16-byte reads must not each produce a
    // window-update ACK (receiver-side SWS avoidance).
    const auto acks_before = b.ip().stats().datagrams_sent;
    for (int i = 0; i < 64; ++i) {
        std::uint8_t buf[16];
        server->read(buf);
        net.run_for(sim::milliseconds(5));
    }
    const auto acks_after = b.ip().stats().datagrams_sent;
    EXPECT_LT(acks_after - acks_before, 16u)
        << "64 dribble reads must coalesce into few window updates";
}

TEST_F(FlowFixture, ManualModeDeliversExactBytes) {
    wire_and_listen(4 * 1024);
    auto client = a.tcp().connect(b.address(), 80);
    constexpr std::size_t kTotal = 20000;
    std::size_t queued = 0;
    auto pump = [&] {
        while (queued < kTotal) {
            util::ByteBuffer chunk(997);  // awkward size on purpose
            for (std::size_t i = 0; i < chunk.size(); ++i) {
                chunk[i] = static_cast<std::uint8_t>((queued + i) % 251);
            }
            const std::size_t want = std::min<std::size_t>(chunk.size(), kTotal - queued);
            const auto took =
                client->send(std::span<const std::uint8_t>(chunk.data(), want));
            queued += took;
            if (took < want) break;
        }
    };
    client->on_connected = pump;
    client->on_send_space = pump;

    util::ByteBuffer received;
    sim::PeriodicTimer reader(net.sim(), [&] {
        std::uint8_t buf[512];
        while (server) {
            const auto n = server->read(buf);
            if (n == 0) break;
            received.insert(received.end(), buf, buf + n);
        }
        pump();
    });
    reader.start(sim::milliseconds(20));
    net.run_for(sim::seconds(60));
    reader.stop();
    ASSERT_EQ(received.size(), kTotal);
    for (std::size_t i = 0; i < kTotal; ++i) {
        ASSERT_EQ(received[i], static_cast<std::uint8_t>(i % 251)) << "offset " << i;
    }
}

}  // namespace
}  // namespace catenet::tcp
