// Robustness ("fuzz") tests: every wire decoder must survive arbitrary
// bytes — random garbage, truncations, and bit-flipped mutations of valid
// packets — by either rejecting cleanly or decoding consistently. A node
// fed garbage must drop it and keep forwarding. The only permitted
// escape is util::DecodeError (and the decoders that promise optional
// returns must not throw at all).
#include <gtest/gtest.h>

#include "core/flow.h"
#include "core/internetwork.h"
#include "ip/icmp.h"
#include "ip/ipv4_header.h"
#include "ip/protocols.h"
#include "link/presets.h"
#include "routing/messages.h"
#include "tcp/tcp_header.h"
#include "udp/udp.h"
#include "util/random.h"
#include "vc/frame.h"

namespace catenet {
namespace {

util::ByteBuffer random_bytes(util::Rng& rng, std::size_t max_len) {
    util::ByteBuffer buf(rng.uniform(0, max_len));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    return buf;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, IpDecoderNeverMisbehaves) {
    util::Rng rng(GetParam());
    for (int i = 0; i < 3000; ++i) {
        const auto buf = random_bytes(rng, 128);
        ip::DecodedDatagram d;
        try {
            if (ip::decode_datagram(buf, d)) {
                // Claims valid: invariants must hold.
                EXPECT_LE(d.payload_offset + d.payload_length, buf.size());
                EXPECT_GE(d.header_length, ip::kIpv4HeaderSize);
            }
        } catch (const util::DecodeError&) {
            // fine: rejected
        }
    }
}

TEST_P(FuzzSeeds, OptionalDecodersNeverThrow) {
    util::Rng rng(GetParam() + 1000);
    const util::Ipv4Address src(1, 2, 3, 4), dst(5, 6, 7, 8);
    for (int i = 0; i < 3000; ++i) {
        const auto buf = random_bytes(rng, 96);
        EXPECT_NO_THROW({
            (void)ip::decode_icmp(buf);
            std::span<const std::uint8_t> out;
            (void)udp::decode_udp(src, dst, buf, out);
            (void)routing::decode_dv(buf);
            (void)routing::decode_egp(buf);
            (void)vc::decode_frame(buf);
            (void)core::classify_packet(buf);
        });
    }
}

TEST_P(FuzzSeeds, TcpDecoderThrowsOnlyDecodeError) {
    util::Rng rng(GetParam() + 2000);
    const util::Ipv4Address src(1, 2, 3, 4), dst(5, 6, 7, 8);
    for (int i = 0; i < 3000; ++i) {
        const auto buf = random_bytes(rng, 96);
        std::span<const std::uint8_t> payload;
        try {
            (void)tcp::decode_tcp(src, dst, buf, payload);
        } catch (const util::DecodeError&) {
        }
    }
}

TEST_P(FuzzSeeds, MutatedValidPacketsAreRejectedOrConsistent) {
    util::Rng rng(GetParam() + 3000);
    // Start from a valid TCP/IP datagram and mutate it.
    tcp::TcpHeader th;
    th.src_port = 1234;
    th.dst_port = 80;
    th.flags.ack = true;
    const util::Ipv4Address src(10, 0, 0, 1), dst(10, 0, 1, 1);
    const auto segment = tcp::encode_tcp(th, src, dst, util::ByteBuffer(64, 0x2a));
    ip::Ipv4Header ih;
    ih.protocol = ip::kProtoTcp;
    ih.src = src;
    ih.dst = dst;
    const auto pristine = ip::encode_datagram(ih, segment);

    for (int i = 0; i < 2000; ++i) {
        auto mutant = pristine;
        const auto mutations = rng.uniform(1, 4);
        for (std::uint64_t m = 0; m < mutations; ++m) {
            switch (rng.uniform(0, 2)) {
                case 0: {  // bit flip
                    const auto bit = rng.uniform(0, mutant.size() * 8 - 1);
                    mutant[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
                    break;
                }
                case 1: {  // truncate
                    if (mutant.size() > 1) {
                        mutant.resize(rng.uniform(1, mutant.size() - 1));
                    }
                    break;
                }
                case 2: {  // extend with garbage
                    mutant.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
                    break;
                }
            }
        }
        ip::DecodedDatagram d;
        try {
            if (ip::decode_datagram(mutant, d)) {
                const auto payload = ip::payload_of(mutant, d);
                std::span<const std::uint8_t> tcp_payload;
                try {
                    (void)tcp::decode_tcp(d.header.src, d.header.dst, payload,
                                          tcp_payload);
                } catch (const util::DecodeError&) {
                }
            }
        } catch (const util::DecodeError&) {
        }
    }
}

TEST_P(FuzzSeeds, HostSurvivesGarbageInjection) {
    util::Rng rng(GetParam() + 4000);
    core::Internetwork net(GetParam());
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();

    // A real conversation to keep alive through the garbage storm.
    auto rx = b.udp().bind(1000);
    int delivered = 0;
    rx->set_handler([&](auto, auto, auto) { ++delivered; });
    auto tx = a.udp().bind_ephemeral();

    for (int i = 0; i < 500; ++i) {
        // Inject raw garbage straight into b's interface receive path.
        b.ip().interface(0);  // ensure it exists
        auto garbage = random_bytes(rng, 200);
        // Also inject semi-valid garbage: pristine IP header, random body.
        net.sim().schedule_after(sim::microseconds(i * 10), [&b, garbage] {
            // Direct delivery through the nic callback is private; loop
            // it through the peer gateway instead by sending from a with
            // random protocol and payload.
            (void)b;
            (void)garbage;
        });
        const auto proto = static_cast<std::uint8_t>(rng.uniform(0, 255));
        a.ip().send(proto, b.address(), garbage);
        if (i % 10 == 0) {
            tx->send_to(b.address(), 1000, util::ByteBuffer{1, 2, 3});
        }
        net.run_for(sim::milliseconds(1));
    }
    net.run_for(sim::seconds(1));
    EXPECT_EQ(delivered, 50) << "real traffic must flow through the garbage";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace catenet
