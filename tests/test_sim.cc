// Unit tests for the discrete-event engine: ordering, cancellation,
// bounded runs, timers — plus the slot/generation pool's id-safety and
// allocation guarantees.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "sim/simulator.h"
#include "sim/timer.h"

// Global allocation counter for the zero-allocation guarantees below.
// Counts every operator-new in this test binary; tests measure deltas
// around tight loops that make no other calls.
namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

// The nothrow forms must be overridden too: libstdc++'s temporary buffers
// (std::inplace_merge in RoutingTable::bulk_load) allocate with
// operator new(nothrow) but release through plain operator delete — if
// only the throwing forms route to malloc, the pairing splits across
// allocators (ASan flags the mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace catenet::sim {
namespace {

TEST(Time, ArithmeticAndFormat) {
    EXPECT_EQ(milliseconds(3) + microseconds(500), microseconds(3500));
    EXPECT_EQ(seconds(1) - milliseconds(250), milliseconds(750));
    EXPECT_EQ((seconds(2) * 3).seconds(), 6.0);
    EXPECT_DOUBLE_EQ(seconds(1) / milliseconds(250), 4.0);
    EXPECT_EQ(seconds(2).to_string(), "2s");
    EXPECT_LT(milliseconds(1), seconds(1));
}

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(milliseconds(30), [&] { order.push_back(3); });
    sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
    sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(Simulator, EqualTimesFireFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(milliseconds(5), [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CancelPreventsExecution) {
    Simulator sim;
    bool fired = false;
    const auto id = sim.schedule_at(milliseconds(1), [&] { fired = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
    Simulator sim;
    const auto id = sim.schedule_at(milliseconds(1), [] {});
    sim.run();
    sim.cancel(id);  // no-op
    sim.cancel(id);
    EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, SchedulingInPastThrows) {
    Simulator sim;
    sim.schedule_at(milliseconds(10), [] {});
    sim.run();
    EXPECT_THROW(sim.schedule_at(milliseconds(5), [] {}), std::logic_error);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.schedule_at(seconds(i), [&] { ++count; });
    }
    sim.run_until(seconds(5));
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.now(), seconds(5));
    sim.run_until(seconds(20));
    EXPECT_EQ(count, 10);
    EXPECT_EQ(sim.now(), seconds(20));
}

TEST(Simulator, EventsCanScheduleEvents) {
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 100) sim.schedule_after(milliseconds(1), recurse);
    };
    sim.schedule_after(milliseconds(1), recurse);
    sim.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), milliseconds(100));
}

TEST(Simulator, RunWhileStopsOnPredicate) {
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 100; ++i) {
        sim.schedule_at(milliseconds(i), [&] { ++count; });
    }
    sim.run_while([&] { return count < 7; });
    EXPECT_EQ(count, 7);
}

TEST(Simulator, CancelAfterFireDoesNotKillSlotReuser) {
    // The fired event's slot is immediately reusable; the stale id must
    // not cancel whatever new event landed in that slot.
    Simulator sim;
    bool first = false, second = false;
    const auto stale = sim.schedule_at(milliseconds(1), [&] { first = true; });
    sim.run();
    ASSERT_TRUE(first);
    const auto fresh = sim.schedule_at(milliseconds(2), [&] { second = true; });
    EXPECT_EQ(fresh & 0xffffffffu, stale & 0xffffffffu) << "slot should be reused";
    EXPECT_NE(fresh, stale) << "generation must differ";
    sim.cancel(stale);  // no-op: generation moved on
    EXPECT_TRUE(sim.is_pending(fresh));
    sim.run();
    EXPECT_TRUE(second);
}

TEST(Simulator, CancelTwiceDoesNotKillSlotReuser) {
    Simulator sim;
    bool fired = false;
    const auto stale = sim.schedule_at(milliseconds(1), [] {});
    sim.cancel(stale);
    const auto fresh = sim.schedule_at(milliseconds(1), [&] { fired = true; });
    sim.cancel(stale);  // double-cancel targets the retired generation
    sim.cancel(stale);
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, RescheduleMovesFiringTime) {
    Simulator sim;
    Time fired_at;
    const auto id = sim.schedule_at(milliseconds(5), [&] { fired_at = sim.now(); });
    EXPECT_TRUE(sim.reschedule(id, milliseconds(40)));
    sim.run();
    EXPECT_EQ(fired_at, milliseconds(40));
    EXPECT_EQ(sim.events_processed(), 1u) << "the old arming must not fire too";
    EXPECT_FALSE(sim.reschedule(id, milliseconds(50))) << "already fired";
}

TEST(Simulator, RescheduleInsideCallback) {
    // A firing event pushes a still-pending peer further out — the
    // soft-state-refresh pattern. The peer must fire exactly once, at the
    // new time.
    Simulator sim;
    std::vector<int> order;
    EventId peer = kInvalidEventId;
    sim.schedule_at(milliseconds(10), [&] {
        order.push_back(1);
        EXPECT_TRUE(sim.reschedule(peer, milliseconds(30)));
    });
    peer = sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
    sim.schedule_at(milliseconds(25), [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, RescheduleEarlierRunsBeforeInterveners) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
    const auto id = sim.schedule_at(milliseconds(50), [&] { order.push_back(2); });
    sim.reschedule(id, milliseconds(5));
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
    EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, IdReuseAcrossManyScheduleCancelCycles) {
    // A million schedule/cancel cycles funnel through the same slot; every
    // handed-out id must be distinct from its predecessor and stale ids
    // must stay dead even as the generation counter climbs.
    Simulator sim;
    constexpr int kCycles = 1 << 20;
    EventId previous = kInvalidEventId;
    for (int i = 0; i < kCycles; ++i) {
        const auto id = sim.schedule_after(milliseconds(1), [] { FAIL(); });
        ASSERT_NE(id, previous);
        ASSERT_NE(id, kInvalidEventId);
        sim.cancel(id);
        ASSERT_FALSE(sim.is_pending(id));
        if (previous != kInvalidEventId) sim.cancel(previous);  // stale no-op
        previous = id;
    }
    EXPECT_EQ(sim.pending_events(), 0u);
    // The engine is still fully functional afterwards.
    bool fired = false;
    sim.schedule_after(milliseconds(1), [&] { fired = true; });
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, ScheduleCancelIsAllocationFreeAtSteadyState) {
    // The hot-path guarantee: once the slab and heap have grown to
    // capacity, schedule/cancel with captures <= 48 bytes never allocates.
    Simulator sim;
    struct Fat {
        std::uint64_t a = 1, b = 2, c = 3, d = 4;
        std::uint64_t* out;
    } fat{};
    std::uint64_t sink = 0;
    fat.out = &sink;
    static_assert(sizeof(Fat) <= util::InlineCallback::kInlineSize);
    for (int i = 0; i < 4096; ++i) {  // warm-up: grow slab, heap, free list
        sim.cancel(sim.schedule_after(milliseconds(1), [fat] { *fat.out += fat.a; }));
    }
    const std::uint64_t before = g_heap_allocs;
    for (int i = 0; i < 4096; ++i) {
        const auto id = sim.schedule_after(milliseconds(1), [fat] { *fat.out += fat.a; });
        sim.cancel(id);
    }
    EXPECT_EQ(g_heap_allocs - before, 0u);
}

TEST(Simulator, TimerRearmIsAllocationFreeAtSteadyState) {
    Simulator sim;
    std::uint64_t fires = 0;
    Timer t(sim, [&fires] { ++fires; });
    t.schedule(milliseconds(5));
    for (int i = 0; i < 1024; ++i) t.schedule(milliseconds(5));  // warm-up
    const std::uint64_t before = g_heap_allocs;
    for (int i = 0; i < 4096; ++i) t.schedule(milliseconds(5));
    EXPECT_EQ(g_heap_allocs - before, 0u);
    sim.run();
    EXPECT_EQ(fires, 1u) << "re-arming must collapse to a single firing";
}

TEST(InlineCallbackEngine, OversizedCapturesStillWork) {
    // Captures beyond the inline budget take the heap fallback and must
    // behave identically.
    Simulator sim;
    struct Big {
        std::uint64_t words[12];  // 96 bytes > 48
    } big{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}};
    static_assert(!util::InlineCallback::fits_inline<Big>());
    std::uint64_t got = 0;
    sim.schedule_after(milliseconds(1), [big, &got] { got = big.words[11]; });
    sim.run();
    EXPECT_EQ(got, 12u);
}

TEST(Timer, SchedulesAndFires) {
    Simulator sim;
    int fires = 0;
    Timer t(sim, [&] { ++fires; });
    t.schedule(milliseconds(5));
    EXPECT_TRUE(t.pending());
    EXPECT_EQ(t.expiry(), milliseconds(5));
    sim.run();
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleReplacesPrevious) {
    Simulator sim;
    int fires = 0;
    Timer t(sim, [&] { ++fires; });
    t.schedule(milliseconds(5));
    t.schedule(milliseconds(50));
    sim.run_until(milliseconds(10));
    EXPECT_EQ(fires, 0);
    sim.run_until(milliseconds(100));
    EXPECT_EQ(fires, 1);
}

TEST(Timer, ScheduleIfIdleKeepsEarlierDeadline) {
    Simulator sim;
    int fires = 0;
    Timer t(sim, [&] { ++fires; });
    t.schedule(milliseconds(5));
    t.schedule_if_idle(milliseconds(50));  // ignored: already pending
    sim.run_until(milliseconds(10));
    EXPECT_EQ(fires, 1);
}

TEST(Timer, DestructionCancels) {
    Simulator sim;
    int fires = 0;
    {
        Timer t(sim, [&] { ++fires; });
        t.schedule(milliseconds(5));
    }
    sim.run();
    EXPECT_EQ(fires, 0);
}

TEST(Timer, CanRescheduleItselfFromCallback) {
    Simulator sim;
    int fires = 0;
    Timer* self = nullptr;
    Timer t(sim, [&] {
        if (++fires < 5) self->schedule(milliseconds(1));
    });
    self = &t;
    t.schedule(milliseconds(1));
    sim.run();
    EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, FiresAtPeriod) {
    Simulator sim;
    std::vector<Time> fire_times;
    PeriodicTimer t(sim, [&] { fire_times.push_back(sim.now()); });
    t.start(seconds(2));
    sim.run_until(seconds(7));
    ASSERT_EQ(fire_times.size(), 3u);
    EXPECT_EQ(fire_times[0], seconds(2));
    EXPECT_EQ(fire_times[2], seconds(6));
}

TEST(PeriodicTimer, StartImmediatelyFiresAtZero) {
    Simulator sim;
    std::vector<Time> fire_times;
    PeriodicTimer t(sim, [&] { fire_times.push_back(sim.now()); });
    t.start(seconds(1), /*start_immediately=*/true);
    sim.run_until(milliseconds(2500));
    ASSERT_EQ(fire_times.size(), 3u);
    EXPECT_EQ(fire_times[0], Time(0));
}

TEST(PeriodicTimer, StopHalts) {
    Simulator sim;
    int fires = 0;
    PeriodicTimer t(sim, [&] { ++fires; });
    t.start(seconds(1));
    sim.run_until(milliseconds(3500));
    t.stop();
    sim.run_until(seconds(10));
    EXPECT_EQ(fires, 3);
    EXPECT_FALSE(t.running());
}

// --- the far (calendar) tier of the event store -------------------------

TEST(FarEvents, DistantEventsFireInOrderAcrossWindows) {
    // Spread events across many 67ms calendar windows, interleaved with
    // near-term ones, scheduled in adversarial (reverse) order.
    Simulator sim;
    std::vector<std::int64_t> fired;
    for (int i = 40; i-- > 0;) {
        const std::int64_t when = std::int64_t{i} * 500'000'000 + 123;  // every 0.5s
        sim.schedule_at(Time(when), [&fired, when] { fired.push_back(when); });
    }
    sim.schedule_after(microseconds(5), [&fired] { fired.push_back(5'000); });
    sim.run();
    ASSERT_EQ(fired.size(), 41u);
    EXPECT_EQ(fired.front(), 123);  // the i=0 event precedes the 5us one
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(FarEvents, CancelAndRescheduleInFarWindows) {
    Simulator sim;
    int fired = 0;
    // Far-future event, cancelled before its window opens: must not fire.
    auto doomed = sim.schedule_at(Time(seconds(30)), [&fired] { fired += 100; });
    sim.cancel(doomed);
    EXPECT_FALSE(sim.is_pending(doomed));
    // Far-future event rescheduled earlier, into another far window.
    auto moved = sim.schedule_at(Time(seconds(20)), [&fired] { ++fired; });
    sim.reschedule(moved, Time(seconds(10)));
    // And one rescheduled from far into the near window.
    auto near = sim.schedule_at(Time(seconds(40)), [&fired] { fired += 10; });
    sim.reschedule(near, Time(milliseconds(1)));
    sim.run();
    EXPECT_EQ(fired, 11);
    EXPECT_EQ(sim.now(), Time(seconds(10)));
}

TEST(FarEvents, RunUntilDeadlineDoesNotDisturbFarEvents) {
    Simulator sim;
    bool fired = false;
    sim.schedule_at(Time(seconds(100)), [&fired] { fired = true; });
    sim.run_until(Time(seconds(99)));  // clock jumps far past many windows
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.now(), Time(seconds(99)));
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), Time(seconds(100)));
}

TEST(FarEvents, SteadyStateFarRearmIsAllocationFree) {
    // The RTO pattern at far distances: a standing population of timers
    // parked seconds out, re-armed round-robin. After warmup the far
    // tier's node slab and bucket chains must be capacity-stable.
    Simulator sim;
    std::uint64_t fires = 0;
    std::vector<std::unique_ptr<Timer>> timers;
    for (int i = 0; i < 64; ++i) {
        timers.push_back(std::make_unique<Timer>(sim, [&fires] { ++fires; }));
        timers.back()->schedule(seconds(2 + i % 5));
    }
    // The re-armed population never comes due (each lap pushes it back out,
    // exactly like an RTO that keeps being satisfied). These parked
    // one-shots are left alone so the far tier provably delivers during
    // both the warm and the measured laps.
    std::vector<std::unique_ptr<Timer>> oneshots;
    for (int i = 0; i < 12; ++i) {
        oneshots.push_back(std::make_unique<Timer>(sim, [&fires] { ++fires; }));
        oneshots.back()->schedule(seconds(1 + 2 * i));
    }
    // Warm: several full re-arm laps plus time creep across windows.
    std::size_t next = 0;
    for (int i = 0; i < 4096; ++i) {
        timers[next]->schedule(seconds(3));
        if (++next == timers.size()) {
            next = 0;
            sim.run_until(sim.now() + milliseconds(200));
        }
    }
    const std::uint64_t before = g_heap_allocs;
    for (int i = 0; i < 4096; ++i) {
        timers[next]->schedule(seconds(3));
        if (++next == timers.size()) {
            next = 0;
            sim.run_until(sim.now() + milliseconds(200));
        }
    }
    EXPECT_EQ(g_heap_allocs - before, 0u)
        << "far-tier re-arm path allocated at steady state";
    EXPECT_GT(fires, 0u);
}

}  // namespace
}  // namespace catenet::sim
