// Unit tests for the discrete-event engine: ordering, cancellation,
// bounded runs, timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/timer.h"

namespace catenet::sim {
namespace {

TEST(Time, ArithmeticAndFormat) {
    EXPECT_EQ(milliseconds(3) + microseconds(500), microseconds(3500));
    EXPECT_EQ(seconds(1) - milliseconds(250), milliseconds(750));
    EXPECT_EQ((seconds(2) * 3).seconds(), 6.0);
    EXPECT_DOUBLE_EQ(seconds(1) / milliseconds(250), 4.0);
    EXPECT_EQ(seconds(2).to_string(), "2s");
    EXPECT_LT(milliseconds(1), seconds(1));
}

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(milliseconds(30), [&] { order.push_back(3); });
    sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
    sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(Simulator, EqualTimesFireFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(milliseconds(5), [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CancelPreventsExecution) {
    Simulator sim;
    bool fired = false;
    const auto id = sim.schedule_at(milliseconds(1), [&] { fired = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
    Simulator sim;
    const auto id = sim.schedule_at(milliseconds(1), [] {});
    sim.run();
    sim.cancel(id);  // no-op
    sim.cancel(id);
    EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, SchedulingInPastThrows) {
    Simulator sim;
    sim.schedule_at(milliseconds(10), [] {});
    sim.run();
    EXPECT_THROW(sim.schedule_at(milliseconds(5), [] {}), std::logic_error);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.schedule_at(seconds(i), [&] { ++count; });
    }
    sim.run_until(seconds(5));
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.now(), seconds(5));
    sim.run_until(seconds(20));
    EXPECT_EQ(count, 10);
    EXPECT_EQ(sim.now(), seconds(20));
}

TEST(Simulator, EventsCanScheduleEvents) {
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 100) sim.schedule_after(milliseconds(1), recurse);
    };
    sim.schedule_after(milliseconds(1), recurse);
    sim.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), milliseconds(100));
}

TEST(Simulator, RunWhileStopsOnPredicate) {
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 100; ++i) {
        sim.schedule_at(milliseconds(i), [&] { ++count; });
    }
    sim.run_while([&] { return count < 7; });
    EXPECT_EQ(count, 7);
}

TEST(Timer, SchedulesAndFires) {
    Simulator sim;
    int fires = 0;
    Timer t(sim, [&] { ++fires; });
    t.schedule(milliseconds(5));
    EXPECT_TRUE(t.pending());
    EXPECT_EQ(t.expiry(), milliseconds(5));
    sim.run();
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleReplacesPrevious) {
    Simulator sim;
    int fires = 0;
    Timer t(sim, [&] { ++fires; });
    t.schedule(milliseconds(5));
    t.schedule(milliseconds(50));
    sim.run_until(milliseconds(10));
    EXPECT_EQ(fires, 0);
    sim.run_until(milliseconds(100));
    EXPECT_EQ(fires, 1);
}

TEST(Timer, ScheduleIfIdleKeepsEarlierDeadline) {
    Simulator sim;
    int fires = 0;
    Timer t(sim, [&] { ++fires; });
    t.schedule(milliseconds(5));
    t.schedule_if_idle(milliseconds(50));  // ignored: already pending
    sim.run_until(milliseconds(10));
    EXPECT_EQ(fires, 1);
}

TEST(Timer, DestructionCancels) {
    Simulator sim;
    int fires = 0;
    {
        Timer t(sim, [&] { ++fires; });
        t.schedule(milliseconds(5));
    }
    sim.run();
    EXPECT_EQ(fires, 0);
}

TEST(Timer, CanRescheduleItselfFromCallback) {
    Simulator sim;
    int fires = 0;
    Timer* self = nullptr;
    Timer t(sim, [&] {
        if (++fires < 5) self->schedule(milliseconds(1));
    });
    self = &t;
    t.schedule(milliseconds(1));
    sim.run();
    EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, FiresAtPeriod) {
    Simulator sim;
    std::vector<Time> fire_times;
    PeriodicTimer t(sim, [&] { fire_times.push_back(sim.now()); });
    t.start(seconds(2));
    sim.run_until(seconds(7));
    ASSERT_EQ(fire_times.size(), 3u);
    EXPECT_EQ(fire_times[0], seconds(2));
    EXPECT_EQ(fire_times[2], seconds(6));
}

TEST(PeriodicTimer, StartImmediatelyFiresAtZero) {
    Simulator sim;
    std::vector<Time> fire_times;
    PeriodicTimer t(sim, [&] { fire_times.push_back(sim.now()); });
    t.start(seconds(1), /*start_immediately=*/true);
    sim.run_until(milliseconds(2500));
    ASSERT_EQ(fire_times.size(), 3u);
    EXPECT_EQ(fire_times[0], Time(0));
}

TEST(PeriodicTimer, StopHalts) {
    Simulator sim;
    int fires = 0;
    PeriodicTimer t(sim, [&] { ++fires; });
    t.start(seconds(1));
    sim.run_until(milliseconds(3500));
    t.stop();
    sim.run_until(seconds(10));
    EXPECT_EQ(fires, 3);
    EXPECT_FALSE(t.running());
}

}  // namespace
}  // namespace catenet::sim
