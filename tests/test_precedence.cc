// Precedence — the military half of goal 2: "the most important
// [services] ... are command and control". The IP ToS byte's precedence
// bits plus a strict-priority gateway queue must keep command traffic
// responsive while routine traffic saturates the net.
#include <gtest/gtest.h>

#include "app/bulk.h"
#include "app/request_response.h"
#include "core/flow.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "link/queue.h"

namespace catenet {
namespace {

// Precedence levels in the ToS byte's top three bits (RFC 791):
constexpr std::uint8_t kFlashOverride = 0b1000'0000;  // command traffic
constexpr std::uint8_t kRoutine = 0;

struct PrecedenceFixture : ::testing::Test {
    core::Internetwork net{221};
    core::Host& commander = net.add_host("commander");
    core::Host& clerk = net.add_host("clerk");
    core::Host& hq = net.add_host("hq");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    std::size_t bottleneck_link = 0;

    void wire(bool precedence_queue) {
        link::LinkParams thin = link::presets::leased_line();
        thin.bits_per_second = 128'000;
        thin.queue_capacity_packets = 30;
        net.connect(commander, g1, link::presets::ethernet_hop());
        net.connect(clerk, g1, link::presets::ethernet_hop());
        bottleneck_link = net.connect(g1, g2, thin);
        net.connect(g2, hq, link::presets::ethernet_hop());
        net.use_static_routes();
        if (precedence_queue) {
            net.link(bottleneck_link)
                .set_queue_a(std::make_unique<link::PriorityQueue>(
                    2, 15, [](const link::Packet& p) -> std::uint64_t {
                        auto key = core::classify_packet(p.bytes);
                        // Precedence >= FLASH OVERRIDE -> level 0.
                        return (key && (key->tos & 0b1110'0000) >= kFlashOverride) ? 0
                                                                                   : 1;
                    }));
        }
    }

    double command_rpc_p99(bool precedence_queue) {
        wire(precedence_queue);
        // Routine saturation: the clerk bulk-uploads at full window.
        tcp::TcpConfig routine;
        routine.tos = kRoutine;
        app::BulkServer files(hq, 21, routine);
        app::BulkSender upload(clerk, hq.address(), 21, 512ull * 1024 * 1024, routine);
        upload.start();

        // Command traffic: small RPCs at FLASH OVERRIDE precedence.
        tcp::TcpConfig command;
        command.tos = kFlashOverride;
        command.nagle = false;
        app::RpcServer c2_server(hq, 111, command);
        app::RpcClientConfig rpc;
        rpc.tcp = command;
        rpc.response_bytes = 64;
        rpc.mean_interarrival = sim::milliseconds(250);
        app::RpcClient c2(commander, hq.address(), 111, rpc);
        c2.start();

        net.run_for(sim::seconds(60));
        c2.stop();
        EXPECT_GT(c2.responses_received(), 100u)
            << "precedence_queue=" << precedence_queue;
        return c2.latencies_ms().percentile(99);
    }
};

TEST_F(PrecedenceFixture, FifoGatewayDrownsCommandTraffic) {
    const double p99 = command_rpc_p99(/*precedence_queue=*/false);
    EXPECT_GT(p99, 400.0) << "behind a saturated FIFO, command RPCs queue with bulk";
}

TEST_F(PrecedenceFixture, PrecedenceQueueProtectsCommandTraffic) {
    const double p99 = command_rpc_p99(/*precedence_queue=*/true);
    EXPECT_LT(p99, 150.0) << "FLASH OVERRIDE must preempt routine bulk in the queue";
}

}  // namespace
}  // namespace catenet
