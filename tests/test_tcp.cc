// TCP unit and behaviour tests: header codec, sequence arithmetic, the
// state machine (handshake, close, reset), reliability under loss (property
// sweep), adaptive retransmission, congestion control, Nagle, delayed ACK,
// zero-window persistence, MSS negotiation and repacketization, plus the
// packet-sequenced ARQ baseline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <unordered_map>

#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"
#include "tcp/conn_table.h"
#include "tcp/sequence.h"
#include "tcp/simple_arq.h"
#include "tcp/tcp.h"
#include "tcp/tcp_header.h"
#include "util/checksum.h"

// Global allocation counter (same per-binary harness as test_sim.cc):
// counts every operator-new in this binary; the steady-state tests below
// measure deltas around windows that must never touch the allocator.
namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

// The nothrow forms must be overridden too: libstdc++'s temporary buffers
// (std::inplace_merge in RoutingTable::bulk_load) allocate with
// operator new(nothrow) but release through plain operator delete — if
// only the throwing forms route to malloc, the pairing splits across
// allocators (ASan flags the mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

// GCC flags free() inside replaced operator delete as mismatched when it
// inlines both sides; the pairing here is malloc/free-consistent.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace catenet::tcp {
namespace {

using util::Ipv4Address;

// --- sequence arithmetic ------------------------------------------------

TEST(Sequence, WrapsCorrectly) {
    EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));
    EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
    EXPECT_TRUE(seq_leq(5u, 5u));
    EXPECT_FALSE(seq_lt(5u, 5u));
}

TEST(Sequence, WindowMembership) {
    EXPECT_TRUE(seq_in_window(10, 10, 5));
    EXPECT_TRUE(seq_in_window(14, 10, 5));
    EXPECT_FALSE(seq_in_window(15, 10, 5));
    EXPECT_FALSE(seq_in_window(9, 10, 5));
    EXPECT_FALSE(seq_in_window(10, 10, 0));
    EXPECT_TRUE(seq_in_window(2, 0xfffffffe, 10)) << "window spanning wrap";
}

// --- header codec ----------------------------------------------------------

TEST(TcpHeaderCodec, RoundTripWithMss) {
    TcpHeader h;
    h.src_port = 1234;
    h.dst_port = 80;
    h.seq = 0xdeadbeef;
    h.ack = 0xfeedface;
    h.flags.syn = true;
    h.flags.ack = true;
    h.window = 8192;
    h.mss = 1460;
    const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
    const auto wire = encode_tcp(h, src, dst, {});
    EXPECT_EQ(wire.size(), kTcpHeaderSize + 4);

    std::span<const std::uint8_t> payload;
    const auto back = decode_tcp(src, dst, wire, payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->src_port, 1234);
    EXPECT_EQ(back->dst_port, 80);
    EXPECT_EQ(back->seq, 0xdeadbeefu);
    EXPECT_EQ(back->ack, 0xfeedfaceu);
    EXPECT_TRUE(back->flags.syn);
    EXPECT_TRUE(back->flags.ack);
    EXPECT_FALSE(back->flags.fin);
    EXPECT_EQ(back->window, 8192);
    ASSERT_TRUE(back->mss.has_value());
    EXPECT_EQ(*back->mss, 1460);
    EXPECT_TRUE(payload.empty());
}

TEST(TcpHeaderCodec, ChecksumCoversPayloadAndPseudoHeader) {
    TcpHeader h;
    const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
    auto wire = encode_tcp(h, src, dst, util::ByteBuffer{1, 2, 3});
    std::span<const std::uint8_t> payload;
    EXPECT_TRUE(decode_tcp(src, dst, wire, payload).has_value());
    EXPECT_EQ(payload.size(), 3u);
    // Payload corruption must be caught.
    wire.back() ^= 0x01;
    EXPECT_FALSE(decode_tcp(src, dst, wire, payload).has_value());
    wire.back() ^= 0x01;
    // Spoofed source address must be caught by the pseudo-header.
    EXPECT_FALSE(decode_tcp(Ipv4Address(9, 9, 9, 9), dst, wire, payload).has_value());
}

TEST(TcpHeaderCodec, AllFlagsRoundTrip) {
    TcpHeader h;
    h.flags.fin = h.flags.syn = h.flags.rst = h.flags.psh = h.flags.ack = h.flags.urg = true;
    h.urgent_pointer = 99;
    const Ipv4Address src(1, 1, 1, 1), dst(2, 2, 2, 2);
    const auto wire = encode_tcp(h, src, dst, {});
    std::span<const std::uint8_t> payload;
    const auto back = decode_tcp(src, dst, wire, payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->flags.fin && back->flags.syn && back->flags.rst &&
                back->flags.psh && back->flags.ack && back->flags.urg);
    EXPECT_EQ(back->urgent_pointer, 99);
}

// --- codec byte identity ----------------------------------------------------
//
// The production encoder writes fields with direct stores; this reference
// builds the same segment through the definitional bounds-checked writer.
// The two must agree byte for byte on every header shape, or a peer
// implementation would see different wires.

util::ByteBuffer reference_encode(const TcpHeader& h, Ipv4Address src, Ipv4Address dst,
                                  std::span<const std::uint8_t> payload) {
    util::BufferWriter w;
    w.put_u16(h.src_port);
    w.put_u16(h.dst_port);
    w.put_u32(h.seq);
    w.put_u32(h.ack);
    const std::size_t header_len = kTcpHeaderSize + (h.mss ? 4 : 0);
    w.put_u8(static_cast<std::uint8_t>((header_len / 4) << 4));
    std::uint8_t flags = 0;
    if (h.flags.fin) flags |= 0x01;
    if (h.flags.syn) flags |= 0x02;
    if (h.flags.rst) flags |= 0x04;
    if (h.flags.psh) flags |= 0x08;
    if (h.flags.ack) flags |= 0x10;
    if (h.flags.urg) flags |= 0x20;
    w.put_u8(flags);
    w.put_u16(h.window);
    w.put_u16(0);  // checksum slot
    w.put_u16(h.urgent_pointer);
    if (h.mss) {
        w.put_u8(2);
        w.put_u8(4);
        w.put_u16(*h.mss);
    }
    for (const auto byte : payload) w.put_u8(byte);
    auto out = w.take();
    const auto sum = util::transport_checksum(src, dst, ip::kProtoTcp, out);
    out[16] = static_cast<std::uint8_t>(sum >> 8);
    out[17] = static_cast<std::uint8_t>(sum & 0xff);
    return out;
}

TEST(TcpHeaderCodec, DirectStoreEncoderMatchesReferenceByteForByte) {
    const Ipv4Address src(10, 1, 2, 3), dst(172, 16, 254, 9);
    util::Rng rng(2024);
    for (int trial = 0; trial < 64; ++trial) {
        TcpHeader h;
        h.src_port = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        h.dst_port = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        h.seq = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffu));
        h.ack = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffu));
        h.flags.fin = rng.chance(0.3);
        h.flags.syn = rng.chance(0.3);
        h.flags.rst = rng.chance(0.2);
        h.flags.psh = rng.chance(0.5);
        h.flags.ack = rng.chance(0.8);
        h.flags.urg = rng.chance(0.1);
        h.window = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        h.urgent_pointer = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        if (rng.chance(0.5)) h.mss = static_cast<std::uint16_t>(rng.uniform(1, 0xffff));

        // Odd and even payload lengths both matter: the checksum pass pads
        // odd tails.
        util::ByteBuffer payload(rng.uniform(0, 1461));
        for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform(0, 255));

        const auto wire = encode_tcp(h, src, dst, payload);
        const auto ref = reference_encode(h, src, dst, payload);
        ASSERT_EQ(wire, ref) << "trial " << trial << " payload " << payload.size();

        std::span<const std::uint8_t> decoded_payload;
        const auto back = decode_tcp(src, dst, wire, decoded_payload);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(decoded_payload.size(), payload.size());
    }
}

TEST(TcpHeaderCodec, GatheringEncoderMatchesContiguousAtEverySplit) {
    // encode_tcp_segment takes the payload as two spans (a ring buffer's
    // wrap); wherever the seam lands, the bytes past the headroom must be
    // identical to the contiguous encoding.
    const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
    util::BufferPool pool(8);
    TcpHeader h;
    h.src_port = 4000;
    h.dst_port = 80;
    h.seq = 0x01020304;
    h.ack = 0x0a0b0c0d;
    h.flags.ack = true;
    h.flags.psh = true;
    h.window = 32768;

    util::ByteBuffer payload(537);  // odd length on purpose
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
    }
    const auto contiguous = encode_tcp(h, src, dst, payload);
    const std::span<const std::uint8_t> view(payload);
    constexpr std::size_t kHeadroom = 20;

    for (const std::size_t split :
         {std::size_t{0}, std::size_t{1}, std::size_t{268}, payload.size() - 1,
          payload.size()}) {
        auto wire = encode_tcp_segment(h, src, dst, view.first(split),
                                       view.subspan(split), kHeadroom, pool);
        ASSERT_EQ(wire.size(), kHeadroom + contiguous.size()) << "split " << split;
        EXPECT_TRUE(std::equal(wire.begin() + kHeadroom, wire.end(),
                               contiguous.begin(), contiguous.end()))
            << "split " << split;
        pool.recycle(std::move(wire));
    }
}

// Re-checksums a hand-mangled segment so it reaches the structural checks
// (decode_tcp validates the checksum before anything else).
void fix_checksum(util::ByteBuffer& seg, Ipv4Address src, Ipv4Address dst) {
    seg[16] = seg[17] = 0;
    const auto sum = util::transport_checksum(src, dst, ip::kProtoTcp, seg);
    seg[16] = static_cast<std::uint8_t>(sum >> 8);
    seg[17] = static_cast<std::uint8_t>(sum & 0xff);
}

TEST(TcpHeaderCodec, MalformedStructureThrowsNotCrashes) {
    const Ipv4Address src(1, 2, 3, 4), dst(5, 6, 7, 8);
    std::span<const std::uint8_t> payload;
    TcpHeader h;
    h.flags.ack = true;

    // Data offset below the fixed header (3 words).
    auto wire = encode_tcp(h, src, dst, {});
    wire[12] = 0x30;
    fix_checksum(wire, src, dst);
    EXPECT_THROW((void)decode_tcp(src, dst, wire, payload), util::DecodeError);

    // Data offset past the end of the segment.
    wire = encode_tcp(h, src, dst, {});
    wire[12] = 0xf0;  // 60-byte header claimed on a 20-byte segment
    fix_checksum(wire, src, dst);
    EXPECT_THROW((void)decode_tcp(src, dst, wire, payload), util::DecodeError);

    // Option kind with no room for its length byte.
    h.mss = 1460;
    wire = encode_tcp(h, src, dst, {});
    wire[20] = 1;  // NOP
    wire[21] = 1;  // NOP
    wire[22] = 1;  // NOP
    wire[23] = 2;  // MSS kind as the very last option byte: length truncated
    fix_checksum(wire, src, dst);
    EXPECT_THROW((void)decode_tcp(src, dst, wire, payload), util::DecodeError);

    // Option length smaller than the two mandatory bytes.
    wire = encode_tcp(h, src, dst, {});
    wire[21] = 1;
    fix_checksum(wire, src, dst);
    EXPECT_THROW((void)decode_tcp(src, dst, wire, payload), util::DecodeError);

    // Option length overrunning the header.
    wire = encode_tcp(h, src, dst, {});
    wire[21] = 40;
    fix_checksum(wire, src, dst);
    EXPECT_THROW((void)decode_tcp(src, dst, wire, payload), util::DecodeError);

    // NOP padding and end-of-options remain legal.
    wire = encode_tcp(h, src, dst, {});
    wire[20] = 1;
    wire[21] = 1;
    wire[22] = 0;
    wire[23] = 0;
    fix_checksum(wire, src, dst);
    const auto back = decode_tcp(src, dst, wire, payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->mss.has_value());
}

// --- connection table -------------------------------------------------------

TEST(ConnTable, InsertFindEraseBasics) {
    ConnTable<int> table;
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.find(1), nullptr);
    table.insert(make_conn_key(0x0a000001, 80, 49152), 7);
    table.insert(make_conn_key(0x0a000001, 80, 49153), 8);
    ASSERT_NE(table.find(make_conn_key(0x0a000001, 80, 49152)), nullptr);
    EXPECT_EQ(*table.find(make_conn_key(0x0a000001, 80, 49152)), 7);
    EXPECT_EQ(table.size(), 2u);
    table.insert(make_conn_key(0x0a000001, 80, 49152), 9);  // overwrite
    EXPECT_EQ(*table.find(make_conn_key(0x0a000001, 80, 49152)), 9);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_TRUE(table.erase(make_conn_key(0x0a000001, 80, 49152)));
    EXPECT_FALSE(table.erase(make_conn_key(0x0a000001, 80, 49152)));
    EXPECT_EQ(table.find(make_conn_key(0x0a000001, 80, 49152)), nullptr);
    EXPECT_EQ(*table.find(make_conn_key(0x0a000001, 80, 49153)), 8);
}

TEST(ConnTable, KeyPackingKeepsLanesDistinct) {
    const auto k = make_conn_key(0xc0a80001, 0x1234, 0x5678);
    EXPECT_EQ(conn_key_local_port(k), 0x5678);
    EXPECT_NE(make_conn_key(0xc0a80001, 0x1234, 0x5679), k);
    EXPECT_NE(make_conn_key(0xc0a80001, 0x1235, 0x5678), k);
    EXPECT_NE(make_conn_key(0xc0a80002, 0x1234, 0x5678), k);
}

TEST(ConnTable, ChurnMatchesReferenceMap) {
    // Randomized insert/erase/find storm over a deliberately small key pool
    // (forces collisions and long probe chains) checked against
    // std::unordered_map. Backward-shift deletion bugs show up here as
    // lookups that die early at a hole.
    ConnTable<std::uint64_t> table;
    std::unordered_map<std::uint64_t, std::uint64_t> reference;
    util::Rng rng(5150);
    for (int op = 0; op < 20000; ++op) {
        const auto key = make_conn_key(0x0a000000 + rng.uniform(0, 7),
                                       static_cast<std::uint16_t>(rng.uniform(0, 3)),
                                       static_cast<std::uint16_t>(rng.uniform(0, 31)));
        const auto roll = rng.uniform(0, 99);
        if (roll < 45) {
            const std::uint64_t value = op;
            table.insert(key, value);
            reference[key] = value;
        } else if (roll < 75) {
            EXPECT_EQ(table.erase(key), reference.erase(key) > 0) << "op " << op;
        } else {
            auto* found = table.find(key);
            auto it = reference.find(key);
            ASSERT_EQ(found != nullptr, it != reference.end()) << "op " << op;
            if (found != nullptr) {
                EXPECT_EQ(*found, it->second);
            }
        }
        ASSERT_EQ(table.size(), reference.size());
    }
    // Every survivor is visible to iteration, once.
    std::size_t visited = 0;
    table.for_each([&](std::uint64_t key, const std::uint64_t& value) {
        ++visited;
        auto it = reference.find(key);
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(value, it->second);
    });
    EXPECT_EQ(visited, reference.size());
}

TEST(ConnTable, GrowthPreservesEveryEntry) {
    ConnTable<std::size_t> table;
    constexpr std::size_t kCount = 1000;  // forces many doublings from 16
    for (std::size_t i = 0; i < kCount; ++i) {
        table.insert(make_conn_key(static_cast<std::uint32_t>(i * 2654435761u),
                                   static_cast<std::uint16_t>(i), 80),
                     i);
    }
    EXPECT_EQ(table.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
        auto* v = table.find(make_conn_key(static_cast<std::uint32_t>(i * 2654435761u),
                                           static_cast<std::uint16_t>(i), 80));
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, i);
    }
    EXPECT_TRUE(table.any_of(
        [](std::uint64_t, const std::size_t& v) { return v == kCount - 1; }));
    EXPECT_FALSE(
        table.any_of([](std::uint64_t, const std::size_t& v) { return v == kCount; }));
}

// --- behaviour fixture --------------------------------------------------------

struct TcpPair : ::testing::Test {
    core::Internetwork net{21};
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");

    void wire(const link::LinkParams& params = link::presets::ethernet_hop()) {
        net.connect(a, b, params);
        net.use_static_routes();
    }

    // Collects everything the server receives; echoes nothing.
    struct Server {
        std::shared_ptr<TcpSocket> socket;
        util::ByteBuffer received;
        bool remote_closed = false;
        bool closed = false;
        int accepted = 0;
    };

    Server serve(std::uint16_t port, const TcpConfig& config = {}) {
        auto server = std::make_shared<Server>();
        b.tcp().listen(
            port,
            [server](std::shared_ptr<TcpSocket> s) {
                ++server->accepted;
                server->socket = s;
                // Socket callbacks capture the Server raw: a strong capture
                // would cycle (socket -> callback -> Server -> socket) and
                // leak both. servers_ keeps the Server alive.
                Server* srv = server.get();
                s->on_data = [srv](std::span<const std::uint8_t> data) {
                    srv->received.insert(srv->received.end(), data.begin(),
                                         data.end());
                };
                s->on_remote_close = [srv] {
                    srv->remote_closed = true;
                    srv->socket->close();
                };
                s->on_closed = [srv] { srv->closed = true; };
            },
            config);
        servers_.push_back(server);
        return *server;  // snapshot view; use servers_.back() for live state
    }

    std::shared_ptr<Server> last_server() { return servers_.back(); }
    std::vector<std::shared_ptr<Server>> servers_;
};

TEST_F(TcpPair, ThreeWayHandshake) {
    wire();
    serve(80);
    bool connected = false;
    auto client = a.tcp().connect(b.address(), 80);
    client->on_connected = [&] { connected = true; };
    net.run_for(sim::seconds(1));
    EXPECT_TRUE(connected);
    EXPECT_EQ(client->state(), TcpState::Established);
    EXPECT_EQ(last_server()->socket->state(), TcpState::Established);
    EXPECT_EQ(b.tcp().stats().connections_accepted, 1u);
}

TEST_F(TcpPair, DataTransferBothDirections) {
    wire();
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    util::ByteBuffer client_received;
    client->on_data = [&](std::span<const std::uint8_t> d) {
        client_received.insert(client_received.end(), d.begin(), d.end());
    };
    client->on_connected = [&] {
        client->send(util::buffer_from_string("hello from a"));
        client->push();
    };
    net.run_for(sim::seconds(1));
    ASSERT_TRUE(last_server()->socket);
    last_server()->socket->send(util::buffer_from_string("hello from b"));
    last_server()->socket->push();
    net.run_for(sim::seconds(1));
    EXPECT_EQ(util::string_from_buffer(last_server()->received), "hello from a");
    EXPECT_EQ(util::string_from_buffer(client_received), "hello from b");
}

TEST_F(TcpPair, GracefulCloseRunsFullSequence) {
    wire();
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    bool client_closed = false;
    client->on_connected = [&] {
        client->send(util::buffer_from_string("bye"));
        client->close();
    };
    client->on_closed = [&] { client_closed = true; };
    net.run_for(sim::seconds(5));
    EXPECT_TRUE(last_server()->remote_closed);
    EXPECT_TRUE(last_server()->closed);
    // Client entered TIME-WAIT; after 2MSL it fully closes.
    net.run_for(sim::seconds(70));
    EXPECT_TRUE(client_closed);
    EXPECT_EQ(a.tcp().connection_count(), 0u);
    EXPECT_EQ(b.tcp().connection_count(), 0u);
}

TEST_F(TcpPair, ConnectToClosedPortIsReset) {
    wire();
    auto client = a.tcp().connect(b.address(), 4444);
    bool reset = false;
    client->on_reset = [&] { reset = true; };
    net.run_for(sim::seconds(2));
    EXPECT_TRUE(reset);
    EXPECT_EQ(b.tcp().stats().resets_sent, 1u);
    EXPECT_EQ(a.tcp().connection_count(), 0u);
}

TEST_F(TcpPair, AbortSendsRst) {
    wire();
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    client->on_connected = [&] { client->abort(); };
    net.run_for(sim::seconds(1));
    EXPECT_EQ(last_server()->socket->state(), TcpState::Closed);
    EXPECT_EQ(b.tcp().connection_count(), 0u);
}

TEST_F(TcpPair, MssNegotiatedFromSmallerMtu) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.mtu = 576;
    wire(params);
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    bool connected = false;
    client->on_connected = [&] { connected = true; };
    net.run_for(sim::seconds(1));
    ASSERT_TRUE(connected);
    // Neither side may emit a segment needing IP fragmentation.
    client->send(util::ByteBuffer(5000, 0x42));
    net.run_for(sim::seconds(5));
    EXPECT_EQ(a.ip().stats().fragments_created, 0u)
        << "MSS negotiation must prevent fragmentation on the direct link";
    EXPECT_EQ(last_server()->received.size(), 5000u);
}

TEST_F(TcpPair, SendBufferBackpressure) {
    wire(link::presets::slow_serial());  // 1200 bit/s: buffer must fill
    serve(80);
    TcpConfig config;
    config.send_buffer = 2048;
    auto client = a.tcp().connect(b.address(), 80, config);
    std::size_t accepted_total = 0;
    bool saw_backpressure = false;
    client->on_connected = [&] {
        util::ByteBuffer big(8192, 0x55);
        accepted_total = client->send(big);
        if (accepted_total < big.size()) saw_backpressure = true;
    };
    net.run_for(sim::seconds(2));
    EXPECT_TRUE(saw_backpressure);
    EXPECT_LE(accepted_total, 2048u);
}

TEST_F(TcpPair, OnSendSpaceFiresWhenBufferDrains) {
    wire();
    serve(80);
    TcpConfig config;
    config.send_buffer = 1024;
    auto client = a.tcp().connect(b.address(), 80, config);
    int space_events = 0;
    std::size_t total_sent = 0;
    client->on_send_space = [&] {
        ++space_events;
        total_sent += client->send(util::ByteBuffer(1024, 1));
    };
    client->on_connected = [&] { total_sent += client->send(util::ByteBuffer(2048, 1)); };
    net.run_for(sim::seconds(2));
    EXPECT_GT(space_events, 0);
    EXPECT_GT(total_sent, 1024u);
}

TEST_F(TcpPair, ZeroWindowEngagesPersistProbes) {
    wire();
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    client->on_connected = [&] {
        last_server()->socket->set_receive_open(false);  // slam the window shut
        client->send(util::ByteBuffer(4096, 0x77));
    };
    net.run_for(sim::seconds(10));
    EXPECT_LT(last_server()->received.size(), 4096u)
        << "closed window must throttle the sender";
    // Reopen: transfer completes via the window update / probes.
    last_server()->socket->set_receive_open(true);
    net.run_for(sim::seconds(20));
    EXPECT_EQ(last_server()->received.size(), 4096u);
}

TEST_F(TcpPair, NagleCoalescesSmallWrites) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(20);
    wire(params);
    serve(80);

    TcpConfig nagle_on;
    nagle_on.nagle = true;
    auto client = a.tcp().connect(b.address(), 80, nagle_on);
    client->on_connected = [&] {
        // 100 one-byte writes back to back.
        for (int i = 0; i < 100; ++i) {
            const std::uint8_t byte = 'x';
            client->send(std::span<const std::uint8_t>(&byte, 1));
        }
    };
    net.run_for(sim::seconds(5));
    EXPECT_EQ(last_server()->received.size(), 100u);
    const auto coalesced = client->stats().segments_sent;

    // Same workload without Nagle on a second connection.
    TcpConfig nagle_off = nagle_on;
    nagle_off.nagle = false;
    auto client2 = a.tcp().connect(b.address(), 80, nagle_off);
    client2->on_connected = [&] {
        for (int i = 0; i < 100; ++i) {
            const std::uint8_t byte = 'y';
            client2->send(std::span<const std::uint8_t>(&byte, 1));
        }
    };
    net.run_for(sim::seconds(5));
    EXPECT_GT(client2->stats().segments_sent, coalesced * 3)
        << "Nagle must drastically reduce tinygram count";
}

TEST_F(TcpPair, DelayedAckReducesAckTraffic) {
    wire();
    serve(80);
    TcpConfig cfg;
    cfg.delayed_ack = true;
    auto client = a.tcp().connect(b.address(), 80, cfg);
    client->on_connected = [&] { client->send(util::ByteBuffer(32 * 1024, 3)); };
    net.run_for(sim::seconds(5));
    const auto acks_with_delay = last_server()->socket->stats().segments_sent;
    EXPECT_EQ(last_server()->received.size(), 32u * 1024u);
    // Roughly: >= 2 data segments per ack -> acks < segments received.
    EXPECT_LT(acks_with_delay, client->stats().segments_sent);
}

TEST_F(TcpPair, RttEstimateTracksPathDelay) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(50);  // 100ms RTT
    wire(params);
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    client->on_connected = [&] { client->send(util::ByteBuffer(64 * 1024, 1)); };
    net.run_for(sim::seconds(10));
    const auto& stats = client->stats();
    EXPECT_GT(stats.srtt_ms, 80.0);
    EXPECT_LT(stats.srtt_ms, 300.0);
    EXPECT_GE(stats.rto_ms, stats.srtt_ms);
}

TEST_F(TcpPair, RepeatedTimeoutsResetTheConnection) {
    wire();
    serve(80);
    TcpConfig cfg;
    cfg.max_retries = 3;
    cfg.initial_rto = sim::milliseconds(100);
    auto client = a.tcp().connect(b.address(), 80, cfg);
    bool reset = false;
    client->on_reset = [&] { reset = true; };
    client->on_connected = [&] {
        client->send(util::ByteBuffer(1000, 1));
        net.link(0).set_up(false);  // cut the cable mid-conversation
    };
    net.run_for(sim::seconds(60));
    EXPECT_TRUE(reset) << "sender must give up after max_retries";
}

TEST_F(TcpPair, SimultaneousOpenConnects) {
    wire();
    // Both sides actively connect to each other's ephemeral port — drive
    // via direct connect to listener-less ports won't meet; instead test
    // the SynSent -> SynReceived path with crossing SYNs using two
    // listeners and simultaneous connects between fixed ports is not
    // supported by the API; so approximate: A connects while B's SYN to A
    // crosses. Covered behaviourally: both connects to each other's
    // listeners at the same instant succeed independently.
    serve(80);
    a.tcp().listen(81, [](std::shared_ptr<TcpSocket>) {});
    auto c1 = a.tcp().connect(b.address(), 80);
    auto c2 = b.tcp().connect(a.address(), 81);
    int connected = 0;
    c1->on_connected = [&] { ++connected; };
    c2->on_connected = [&] { ++connected; };
    net.run_for(sim::seconds(2));
    EXPECT_EQ(connected, 2);
}

TEST_F(TcpPair, CongestionWindowGrowsFromOneMss) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(20);
    wire(params);
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    client->on_connected = [&] { client->send(util::ByteBuffer(60000, 9)); };
    // Shortly after connect, cwnd must still be small (slow start ramp).
    net.run_for(sim::milliseconds(120));
    EXPECT_LT(client->stats().cwnd_bytes, 20000u);
    net.run_for(sim::seconds(10));
    EXPECT_EQ(last_server()->received.size(), 60000u);
    EXPECT_GT(client->stats().cwnd_bytes, 10000u);
}

// --- reliability property sweep -------------------------------------------------

struct LossParam {
    double loss;
    std::uint64_t seed;
};

class TcpLossProperty : public ::testing::TestWithParam<LossParam> {};

TEST_P(TcpLossProperty, ExactDeliveryUnderLoss) {
    core::Internetwork net(GetParam().seed);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = GetParam().loss;
    net.connect(a, b, params);
    net.use_static_routes();

    constexpr std::size_t kBytes = 64 * 1024;
    util::ByteBuffer received;
    bool remote_closed = false;
    std::shared_ptr<TcpSocket> server_socket;
    b.tcp().listen(80, [&](std::shared_ptr<TcpSocket> s) {
        server_socket = s;
        s->on_data = [&](std::span<const std::uint8_t> d) {
            received.insert(received.end(), d.begin(), d.end());
        };
        s->on_remote_close = [&] { remote_closed = true; };
    });

    auto client = a.tcp().connect(b.address(), 80);
    std::size_t queued = 0;
    auto pump = [&] {
        util::ByteBuffer chunk(2048);
        while (queued < kBytes) {
            const std::size_t want = std::min(chunk.size(), kBytes - queued);
            for (std::size_t i = 0; i < want; ++i) {
                chunk[i] = static_cast<std::uint8_t>((queued + i) * 13 + 5);
            }
            const auto accepted =
                client->send(std::span<const std::uint8_t>(chunk.data(), want));
            queued += accepted;
            if (accepted < want) break;
        }
        if (queued >= kBytes) client->close();
    };
    client->on_connected = pump;
    client->on_send_space = pump;
    net.run_for(sim::seconds(600));

    ASSERT_EQ(received.size(), kBytes) << "loss=" << GetParam().loss;
    for (std::size_t i = 0; i < kBytes; ++i) {
        ASSERT_EQ(received[i], static_cast<std::uint8_t>(i * 13 + 5))
            << "corruption at offset " << i;
    }
    EXPECT_TRUE(remote_closed);
    if (GetParam().loss > 0.0) {
        EXPECT_GT(client->stats().retransmitted_segments, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, TcpLossProperty,
    ::testing::Values(LossParam{0.0, 1}, LossParam{0.01, 2}, LossParam{0.05, 3},
                      LossParam{0.10, 4}, LossParam{0.20, 5}, LossParam{0.05, 6},
                      LossParam{0.05, 7}, LossParam{0.30, 8}));

// Corruption property: checksums must turn bit errors into loss, never
// into delivered garbage.
class TcpCorruptionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpCorruptionProperty, CorruptionNeverReachesTheApplication) {
    core::Internetwork net(GetParam());
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    link::LinkParams params = link::presets::ethernet_hop();
    params.bit_error_rate = 5e-6;
    net.connect(a, b, params);
    net.use_static_routes();

    constexpr std::size_t kBytes = 32 * 1024;
    util::ByteBuffer received;
    b.tcp().listen(80, [&](std::shared_ptr<TcpSocket> s) {
        // No self-capture: the stack keeps the accepted socket alive while
        // it can deliver; a strong capture here would leak it via a cycle.
        s->on_data = [&received](std::span<const std::uint8_t> d) {
            received.insert(received.end(), d.begin(), d.end());
        };
    });
    auto client = a.tcp().connect(b.address(), 80);
    std::size_t queued = 0;
    auto pump = [&] {
        util::ByteBuffer chunk(2048);
        while (queued < kBytes) {
            const std::size_t want = std::min(chunk.size(), kBytes - queued);
            for (std::size_t i = 0; i < want; ++i) {
                chunk[i] = static_cast<std::uint8_t>((queued + i) & 0xff);
            }
            const auto accepted =
                client->send(std::span<const std::uint8_t>(chunk.data(), want));
            queued += accepted;
            if (accepted < want) break;
        }
    };
    client->on_connected = pump;
    client->on_send_space = pump;
    net.run_for(sim::seconds(600));

    ASSERT_EQ(received.size(), kBytes);
    for (std::size_t i = 0; i < kBytes; ++i) {
        ASSERT_EQ(received[i], static_cast<std::uint8_t>(i & 0xff));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpCorruptionProperty, ::testing::Values(31, 32, 33, 34));

// --- ablation switches -------------------------------------------------------------

TEST_F(TcpPair, FixedRtoModeUsesConfiguredTimeout) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = 0.2;
    wire(params);
    serve(80);
    TcpConfig naive;
    naive.adaptive_rto = false;
    naive.fixed_rto = sim::milliseconds(500);
    naive.congestion_control = false;
    naive.fast_retransmit = false;
    auto client = a.tcp().connect(b.address(), 80, naive);
    client->on_connected = [&] { client->send(util::ByteBuffer(16 * 1024, 1)); };
    net.run_for(sim::seconds(120));
    EXPECT_EQ(last_server()->received.size(), 16u * 1024u)
        << "even the naive configuration must eventually deliver";
    EXPECT_GT(client->stats().timeouts, 0u);
    EXPECT_NEAR(client->stats().rto_ms, 500.0, 1.0);
}

TEST_F(TcpPair, FastRetransmitRecoversViaDuplicateAcks) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(10);
    params.drop_probability = 0.005;  // rare single losses inside big windows
    wire(params);
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    constexpr std::size_t kBytes = 512 * 1024;
    std::size_t queued = 0;
    auto pump = [&] {
        util::ByteBuffer chunk(4096, 1);
        while (queued < kBytes) {
            const auto accepted = client->send(chunk);
            queued += accepted;
            if (accepted < chunk.size()) break;
        }
    };
    client->on_connected = pump;
    client->on_send_space = pump;
    net.run_for(sim::seconds(120));
    EXPECT_GE(last_server()->received.size(), kBytes);
    EXPECT_GT(client->stats().duplicate_acks_received, 0u);
    EXPECT_GT(client->stats().fast_retransmits, 0u)
        << "isolated losses in large windows should recover via dup acks";
}

// --- repacketization (byte sequencing) ---------------------------------------------

TEST_F(TcpPair, RetransmissionRepacketizesAtCurrentMss) {
    // Force many small segments into flight (Nagle off), then cut the link
    // so everything must be retransmitted; after the RTO rewind the bytes
    // go out repacked at full MSS — fewer, larger segments.
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(30);
    wire(params);
    serve(80);
    TcpConfig cfg;
    cfg.nagle = false;
    cfg.initial_rto = sim::milliseconds(200);
    auto client = a.tcp().connect(b.address(), 80, cfg);
    client->on_connected = [&] {
        for (int i = 0; i < 40; ++i) {
            client->send(util::ByteBuffer(100, static_cast<std::uint8_t>(i)));
        }
    };
    // Let the small segments leave, then cut the link before acks return.
    net.run_for(sim::milliseconds(145));
    net.link(0).set_up(false);
    net.run_for(sim::milliseconds(100));
    net.link(0).set_up(true);
    net.run_for(sim::seconds(30));
    EXPECT_EQ(last_server()->received.size(), 4000u);
    const auto& st = client->stats();
    EXPECT_GT(st.retransmitted_segments, 0u);
    // Repacketization: retransmitted bytes exceed retransmitted segments *
    // 100, i.e. retransmissions carried more than the original tinygrams.
    EXPECT_GT(st.retransmitted_bytes, st.retransmitted_segments * 100)
        << "byte sequencing must coalesce retransmissions";
}

// --- header prediction ---------------------------------------------------------------

TEST_F(TcpPair, HeaderPredictionCarriesBulkTransfer) {
    wire();
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    constexpr std::size_t kBytes = 48 * 1024;
    client->on_connected = [&] { client->send(util::ByteBuffer(kBytes, 0x42)); };
    net.run_for(sim::seconds(5));
    ASSERT_EQ(last_server()->received.size(), kBytes);

    // Steady-state bulk traffic is exactly the two predicted shapes: the
    // receiver should take nearly every data segment on the fast path, the
    // sender nearly every ACK.
    const auto& server_stats = last_server()->socket->stats();
    const auto& client_stats = client->stats();
    EXPECT_GT(server_stats.fast_path_data, server_stats.segments_received / 2);
    EXPECT_GT(client_stats.fast_path_acks, 0u);
    EXPECT_EQ(server_stats.bytes_received, kBytes);
}

TEST_F(TcpPair, FastPathStaysOffDuringRecovery) {
    // With loss in play the fast path must keep yielding to the slow path
    // (dup ACKs, rewinds, reassembly) without corrupting the stream — and
    // the transfer still completes exactly.
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = 0.05;
    wire(params);
    serve(80);
    auto client = a.tcp().connect(b.address(), 80);
    constexpr std::size_t kBytes = 48 * 1024;
    client->on_connected = [&] { client->send(util::ByteBuffer(kBytes, 0x17)); };
    net.run_for(sim::seconds(60));
    ASSERT_EQ(last_server()->received.size(), kBytes);
    EXPECT_GT(last_server()->socket->stats().out_of_order_segments, 0u);
}

// --- steady-state allocation freedom ---------------------------------------------------

TEST(TcpAllocation, TimerChurnReschedulesWithoutAllocating) {
    // A request/response ping-pong exercises the timer hot path on every
    // leg: RTO re-arm (in-place reschedule), delayed-ACK arm
    // (schedule_if_idle) and its lazy no-op fire. After warm-up none of it
    // may touch the heap.
    core::Internetwork net(77);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    net.connect(a, b, link::presets::ethernet_hop());
    net.use_static_routes();

    std::shared_ptr<TcpSocket> server;
    b.tcp().listen(80, [&](std::shared_ptr<TcpSocket> s) {
        server = s;
        s->on_data = [&](std::span<const std::uint8_t> d) { server->send(d); };
    });
    util::ByteBuffer ball(512, 0x42);
    std::uint64_t rounds = 0;
    auto client = a.tcp().connect(b.address(), 80);
    client->on_data = [&](std::span<const std::uint8_t>) {
        ++rounds;
        client->send(ball);
    };
    client->on_connected = [&] { client->send(ball); };

    net.run_for(sim::seconds(3));
    ASSERT_GT(rounds, 100u);
    const auto rounds_before = rounds;
    const std::uint64_t before = g_heap_allocs;
    net.run_for(sim::seconds(3));
    EXPECT_GT(rounds, rounds_before + 100);
    EXPECT_EQ(g_heap_allocs - before, 0u)
        << "timer churn on the established path must not allocate";
}

TEST(TcpAllocation, EstablishedBulkTransferOverFourHopsIsAllocationFree) {
    // The acceptance bar for the data-path rebuild: an Established bulk
    // transfer across four store-and-forward hops runs with zero heap
    // allocations per segment once rings, pools and caches are warm —
    // sender segmentation, gateway forwarding, receiver delivery, ACK
    // return, congestion bookkeeping, all of it.
    core::Internetwork net(88);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Node* prev = &a;
    for (int i = 0; i < 3; ++i) {
        core::Gateway& gw = net.add_gateway("g" + std::to_string(i));
        net.connect(*prev, gw, link::presets::ethernet_hop());
        prev = &gw;
    }
    net.connect(*prev, b, link::presets::ethernet_hop());
    net.use_static_routes();

    std::size_t received = 0;
    std::shared_ptr<TcpSocket> server;
    b.tcp().listen(80, [&](std::shared_ptr<TcpSocket> s) {
        server = s;
        s->on_data = [&](std::span<const std::uint8_t> d) { received += d.size(); };
    });
    auto client = a.tcp().connect(b.address(), 80);
    util::ByteBuffer chunk(16 * 1024, 0x5a);
    auto pump = [&] {
        while (client->send(chunk) == chunk.size()) {
        }
    };
    client->on_connected = pump;
    client->on_send_space = pump;

    net.run_for(sim::seconds(3));  // handshake, slow start, pools warming
    ASSERT_GT(received, std::size_t{100} * 1024);
    const auto received_before = received;
    const std::uint64_t before = g_heap_allocs;
    net.run_for(sim::seconds(3));
    EXPECT_GT(received, received_before + std::size_t{100} * 1024);
    EXPECT_EQ(g_heap_allocs - before, 0u)
        << "heap allocations on the steady-state TCP data path";
    EXPECT_GT(client->stats().fast_path_acks, 0u);
    EXPECT_GT(server->stats().fast_path_data, 0u);
}

TEST(TcpAllocation, ReorderingRecoveryReusesPooledBuffers) {
    // Sustained loss keeps the receiver's reassembly queue busy: every hole
    // parks segments out of order. The queue's entries live in a vector
    // reserved at connection setup and its payloads in pool buffers, so
    // once warm even a reordering-heavy steady state allocates nothing.
    core::Internetwork net(99);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = 0.02;
    net.connect(a, b, params);
    net.use_static_routes();

    std::size_t received = 0;
    std::shared_ptr<TcpSocket> server;
    b.tcp().listen(80, [&](std::shared_ptr<TcpSocket> s) {
        server = s;
        s->on_data = [&](std::span<const std::uint8_t> d) { received += d.size(); };
    });
    auto client = a.tcp().connect(b.address(), 80);
    util::ByteBuffer chunk(16 * 1024, 0x3c);
    auto pump = [&] {
        while (client->send(chunk) == chunk.size()) {
        }
    };
    client->on_connected = pump;
    client->on_send_space = pump;

    net.run_for(sim::seconds(10));
    ASSERT_GT(received, std::size_t{100} * 1024);
    ASSERT_GT(server->stats().out_of_order_segments, 10u)
        << "the loss rate must actually exercise reassembly";
    const auto ooo_before = server->stats().out_of_order_segments;
    const std::uint64_t before = g_heap_allocs;
    net.run_for(sim::seconds(10));
    EXPECT_GT(server->stats().out_of_order_segments, ooo_before)
        << "reordering must continue during the measured window";
    EXPECT_EQ(g_heap_allocs - before, 0u)
        << "reassembly churn must recycle, not allocate";
}

// --- ARQ baseline transport ----------------------------------------------------------

struct ArqPair : ::testing::Test {
    core::Internetwork net{41};
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");

    void wire(const link::LinkParams& params = link::presets::ethernet_hop()) {
        net.connect(a, b, params);
        net.use_static_routes();
    }
};

TEST_F(ArqPair, DeliversInOrder) {
    wire();
    util::ByteBuffer received;
    b.arq().listen(9, [&](Ipv4Address, std::uint16_t, std::span<const std::uint8_t> d) {
        received.insert(received.end(), d.begin(), d.end());
    });
    auto sender = a.arq().create_sender(b.address(), 9);
    util::ByteBuffer data(5000);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i & 0xff);
    }
    sender->send(data);
    sender->flush();
    net.run_for(sim::seconds(10));
    EXPECT_EQ(received, data);
}

TEST_F(ArqPair, RecoversFromLossViaGoBackN) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = 0.1;
    wire(params);
    util::ByteBuffer received;
    b.arq().listen(9, [&](Ipv4Address, std::uint16_t, std::span<const std::uint8_t> d) {
        received.insert(received.end(), d.begin(), d.end());
    });
    ArqConfig cfg;
    cfg.rto = sim::milliseconds(300);
    auto sender = a.arq().create_sender(b.address(), 9, cfg);
    util::ByteBuffer data(20000, 0x5a);
    sender->send(data);
    sender->flush();
    net.run_for(sim::seconds(120));
    EXPECT_EQ(received.size(), data.size());
    EXPECT_GT(sender->stats().packets_retransmitted, 0u);
}

TEST_F(ArqPair, FixedPacketizationNeverCoalesces) {
    wire();
    b.arq().listen(9, [](Ipv4Address, std::uint16_t, std::span<const std::uint8_t>) {});
    ArqConfig cfg;
    cfg.packet_payload = 100;
    auto sender = a.arq().create_sender(b.address(), 9, cfg);
    sender->send(util::ByteBuffer(1000, 1));
    net.run_for(sim::seconds(5));
    EXPECT_EQ(sender->stats().packets_sent, 10u)
        << "1000 bytes at a 100-byte quantum = exactly 10 packets";
}

}  // namespace
}  // namespace catenet::tcp
