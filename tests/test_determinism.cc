// Determinism tests: the entire point of seeding every source of
// randomness is exact replay — identical seeds must produce identical
// packet-level behaviour, and different seeds must actually differ.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "link/presets.h"
#include "sim/parallel.h"

namespace catenet {
namespace {

struct RunSignature {
    std::uint64_t events;
    std::uint64_t link_bytes;
    std::uint64_t bytes_received;
    std::uint64_t retransmits;
    std::uint64_t voice_received;
    /// Registry totals: every telemetry counter of every node, merged.
    /// Slot-for-slot equality across replays (and across the sequential /
    /// sharded twins) is the counter registry's determinism contract.
    telemetry::CounterBlock counters;

    bool operator==(const RunSignature&) const = default;
};

/// Zeroes the segmentation-offload diagnostics (GSO builds/segs, GRO
/// runs/segs). Like `events`, they describe engine mechanics — how work
/// was batched — not packet-level behaviour, so the burst and sharded
/// twins are allowed (expected, even) to differ on exactly these slots.
telemetry::CounterBlock mask_offload_diagnostics(telemetry::CounterBlock block) {
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        if (telemetry::offload_diagnostic(static_cast<telemetry::Counter>(i))) {
            block.slots[i] = 0;
        }
    }
    return block;
}

RunSignature run_scenario(std::uint64_t seed) {
    core::Internetwork net(seed);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");
    link::LinkParams lossy = link::presets::ethernet_hop();
    lossy.drop_probability = 0.03;
    lossy.jitter = sim::milliseconds(2);
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, lossy);
    net.use_static_routes();

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 256 * 1024);
    sender.start();
    app::VoiceOverUdp voice(a, b, 5004);
    voice.start(sim::seconds(10));
    net.run_for(sim::seconds(60));

    RunSignature sig;
    sig.events = net.sim().events_processed();
    sig.link_bytes = net.total_link_bytes();
    sig.bytes_received = server.total_bytes_received();
    sig.retransmits = sender.socket_stats().retransmitted_segments;
    sig.voice_received = voice.report().frames_received;
    sig.counters = net.metrics().totals();
    return sig;
}

TEST(Determinism, SameSeedSamePacketsExactly) {
    const auto first = run_scenario(1234);
    const auto second = run_scenario(1234);
    EXPECT_EQ(first, second);
    EXPECT_GT(first.retransmits, 0u) << "scenario must actually exercise randomness";
}

TEST(Determinism, DifferentSeedsDiverge) {
    const auto first = run_scenario(1);
    const auto second = run_scenario(2);
    // Loss patterns differ, so at least one of these must differ.
    EXPECT_TRUE(first.events != second.events || first.link_bytes != second.link_bytes ||
                first.retransmits != second.retransmits);
}

// The same discipline for the sharded engine: a 2-shard run (randomness
// confined to the intra-shard hop; the boundary link is deterministic, so
// parallel and sequential draw identical streams) must equal its
// sequential twin AND replay itself exactly under real threads.
RunSignature run_sharded_scenario(std::uint64_t seed, bool parallel,
                                  std::size_t threads) {
    std::unique_ptr<sim::ParallelSimulator> psim;
    std::unique_ptr<core::Internetwork> owned;
    if (parallel) {
        psim = std::make_unique<sim::ParallelSimulator>(2, threads);
        owned = std::make_unique<core::Internetwork>(seed, *psim);
    } else {
        owned = std::make_unique<core::Internetwork>(seed);
    }
    core::Internetwork& net = *owned;
    core::Host& a = net.add_host("a");
    core::Gateway& g = net.add_gateway("g");
    core::Host& b = net.add_host("b", parallel ? 1u : 0u);
    link::LinkParams lossy = link::presets::ethernet_hop();
    lossy.drop_probability = 0.03;
    lossy.jitter = sim::milliseconds(2);
    link::LinkParams wide = link::presets::ethernet_hop();
    wide.propagation_delay = sim::milliseconds(10);
    net.connect(a, g, lossy);   // randomness stays inside shard 0
    net.connect(g, b, wide);    // the deterministic shard boundary
    net.use_static_routes();

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 256 * 1024);
    sender.start();
    app::VoiceOverUdp voice(a, b, 5004);
    voice.start(sim::seconds(10));
    net.run_for(sim::seconds(60));

    RunSignature sig;
    sig.events = parallel ? psim->events_processed() : net.sim().events_processed();
    sig.link_bytes = net.total_link_bytes();
    sig.bytes_received = server.total_bytes_received();
    sig.retransmits = sender.socket_stats().retransmitted_segments;
    sig.voice_received = voice.report().frames_received;
    sig.counters = net.metrics().totals();
    return sig;
}

TEST(Determinism, ShardedRunEqualsSequentialTwin) {
    auto sequential = run_sharded_scenario(1234, false, 1);
    auto sharded = run_sharded_scenario(1234, true, 1);
    // The boundary link batches deliveries differently from the in-shard
    // burst engine, so GRO run shapes (an engine artifact, like `events`)
    // may differ; every behavioural counter must still match exactly.
    sequential.counters = mask_offload_diagnostics(sequential.counters);
    sharded.counters = mask_offload_diagnostics(sharded.counters);
    EXPECT_EQ(sequential, sharded);
    EXPECT_GT(sequential.retransmits, 0u) << "scenario must exercise randomness";
    // The merged per-shard counter blocks are slot-for-slot what one
    // sequential engine counted — not merely the same sums, the same
    // counters (the signature's operator== already folded this in, but the
    // telemetry claim deserves its own line).
    EXPECT_EQ(sequential.counters.slots, sharded.counters.slots);
    EXPECT_GT(sharded.counters.get(telemetry::Counter::IpFwd), 0u);
    EXPECT_GT(sharded.counters.get(telemetry::Counter::TcpRetransSegs), 0u);
}

TEST(Determinism, ShardedRunReplaysExactlyUnderThreads) {
    const auto first = run_sharded_scenario(555, true, 0);
    const auto second = run_sharded_scenario(555, true, 0);
    const auto cooperative = run_sharded_scenario(555, true, 1);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, cooperative);
}

// The burst forwarding engine (LinkParams::burst, on by default for clean
// FIFO links) is constrained to be invisible: a run with 32-deep drains
// must match its per-packet twin on every signature field except
// `events` — the burst engine's entire point is fewer wake-ups, so the
// event count is the one number allowed (and expected) to drop.
RunSignature run_burst_twin(std::uint64_t seed, std::size_t burst) {
    core::Internetwork net(seed);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");
    // Long fat links: 32 serializations (42.56us each at 100 Mb/s for a
    // 532B datagram) fit inside 2 ms of propagation, so whole runs are in
    // flight at once — the sustained-chain regime.
    link::LinkParams wan;
    wan.bits_per_second = 100'000'000;
    wan.propagation_delay = sim::milliseconds(2);
    wan.queue_capacity_packets = 64;
    wan.burst = burst;
    net.connect(a, g, wan);
    net.connect(g, b, wan);
    net.use_static_routes();

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 256 * 1024);
    sender.start();
    app::VoiceOverUdp voice(a, b, 5004);
    voice.start(sim::seconds(10));
    net.run_for(sim::seconds(60));

    RunSignature sig;
    sig.events = net.sim().events_processed();
    sig.link_bytes = net.total_link_bytes();
    sig.bytes_received = server.total_bytes_received();
    sig.retransmits = sender.socket_stats().retransmitted_segments;
    sig.voice_received = voice.report().frames_received;
    sig.counters = net.metrics().totals();
    return sig;
}

TEST(Determinism, BurstEngineEqualsPerPacketTwinExceptEvents) {
    const auto burst = run_burst_twin(1234, 32);
    const auto legacy = run_burst_twin(1234, 1);
    EXPECT_LT(burst.events, legacy.events)
        << "the burst engine never engaged — no run was ever drained";
    // GRO coalescing only happens inside burst deliveries, so the offload
    // diagnostics join `events` in the engine-artifact exception set;
    // every behavioural counter must still match slot for slot.
    RunSignature masked = burst;
    masked.events = legacy.events;
    masked.counters = mask_offload_diagnostics(burst.counters);
    RunSignature legacy_masked = legacy;
    legacy_masked.counters = mask_offload_diagnostics(legacy.counters);
    EXPECT_EQ(masked, legacy_masked);
    EXPECT_EQ(masked.counters.slots, legacy_masked.counters.slots);
    EXPECT_GT(burst.counters.get(telemetry::Counter::TcpGroSegs), 0u)
        << "the GRO run lane never consumed a segment under burst delivery";
    EXPECT_GT(burst.bytes_received, 0u);
}

// Property: replay stability across many seeds (each seed replays itself).
class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, ReplaysExactly) {
    EXPECT_EQ(run_scenario(GetParam()), run_scenario(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace catenet
