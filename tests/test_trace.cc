// Packet-trace tests: the tcpdump-style hook reports the right events in
// the right order with faithful header detail.
#include <gtest/gtest.h>

#include <sstream>

#include "core/internetwork.h"
#include "ip/protocols.h"
#include "ip/trace.h"
#include "link/presets.h"

namespace catenet::ip {
namespace {

TEST(ProtocolName, KnownAndUnknown) {
    EXPECT_EQ(protocol_name(kProtoTcp), "TCP");
    EXPECT_EQ(protocol_name(kProtoUdp), "UDP");
    EXPECT_EQ(protocol_name(kProtoIcmp), "ICMP");
    EXPECT_EQ(protocol_name(kProtoEgp), "EGP");
    EXPECT_EQ(protocol_name(200), "200");
}

struct TraceFixture : ::testing::Test {
    core::Internetwork net{191};
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");

    void wire() {
        net.connect(a, g, link::presets::ethernet_hop());
        net.connect(g, b, link::presets::ethernet_hop());
        net.use_static_routes();
    }
};

TEST_F(TraceFixture, GatewaySeesRxAndFwd) {
    wire();
    std::vector<std::string> events;
    g.ip().set_trace([&](const char* event, const Ipv4Header& h, std::size_t bytes) {
        events.push_back(std::string(event) + " " + protocol_name(h.protocol) + " " +
                         std::to_string(bytes));
    });
    b.ip().register_protocol(200, [](auto&, auto, auto) {});
    a.ip().send(200, b.address(), util::ByteBuffer(100, 1));
    net.run_for(sim::seconds(1));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0], "rx 200 120");
    EXPECT_EQ(events[1], "fwd 200 120");
}

TEST_F(TraceFixture, EndpointsSeeTxAndDeliver) {
    wire();
    std::vector<std::string> a_events, b_events;
    a.ip().set_trace([&](const char* e, const Ipv4Header&, std::size_t) {
        a_events.push_back(e);
    });
    b.ip().set_trace([&](const char* e, const Ipv4Header&, std::size_t) {
        b_events.push_back(e);
    });
    b.ip().register_protocol(200, [](auto&, auto, auto) {});
    a.ip().send(200, b.address(), util::ByteBuffer(10, 1));
    net.run_for(sim::seconds(1));
    ASSERT_GE(a_events.size(), 1u);
    EXPECT_EQ(a_events[0], "tx");
    ASSERT_GE(b_events.size(), 2u);
    EXPECT_EQ(b_events[0], "rx");
    EXPECT_EQ(b_events[1], "deliver");
}

TEST_F(TraceFixture, TtlDropIsTraced) {
    wire();
    bool saw_drop = false;
    g.ip().set_trace([&](const char* e, const Ipv4Header&, std::size_t) {
        if (std::string(e) == "drop") saw_drop = true;
    });
    ip::SendOptions opts;
    opts.ttl = 1;
    a.ip().send(200, b.address(), util::ByteBuffer(10, 1), opts);
    net.run_for(sim::seconds(1));
    EXPECT_TRUE(saw_drop);
}

TEST_F(TraceFixture, TextTracerFormatsReadably) {
    wire();
    std::ostringstream os;
    g.ip().set_trace(make_text_tracer(os, "gw", net.sim()));
    b.ip().register_protocol(200, [](auto&, auto, auto) {});
    ip::SendOptions opts;
    opts.tos = 0x10;
    a.ip().send(200, b.address(), util::ByteBuffer(2000, 1), opts);  // fragments
    net.run_for(sim::seconds(1));
    const std::string out = os.str();
    EXPECT_NE(out.find("gw"), std::string::npos);
    EXPECT_NE(out.find("fwd"), std::string::npos);
    EXPECT_NE(out.find(" > "), std::string::npos);
    EXPECT_NE(out.find("tos=0x10"), std::string::npos);
    EXPECT_NE(out.find("frag="), std::string::npos) << out;
    EXPECT_NE(out.find("ttl=63"), std::string::npos) << out;
}

}  // namespace
}  // namespace catenet::ip
