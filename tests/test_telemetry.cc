// The telemetry subsystem: drop-reason/counter-name unification, exactness
// of the counter registry against the legacy per-stack statistics on a
// seeded lossy multi-hop transfer, byte-identity of the binary flight
// recorder against the live text tracer, bounded-ring overwrite
// accounting, allocation-freedom of steady-state instrumentation, gauge
// sampling, and determinism of the exported JSON report.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <new>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "app/bulk.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "ip/trace.h"
#include "link/presets.h"
#include "telemetry/counters.h"
#include "telemetry/drop_reason.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/gauges.h"
#include "telemetry/record.h"
#include "telemetry/report.h"

// Global allocation counter (same per-binary harness as test_sim.cc and
// test_forward_fastpath.cc): counts every operator-new in this binary;
// tests measure deltas around loops that must never touch the allocator.
namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    ++g_heap_allocs;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

// The nothrow forms must be overridden too: libstdc++'s temporary buffers
// (std::inplace_merge in RoutingTable::bulk_load) allocate with
// operator new(nothrow) but release through plain operator delete — if
// only the throwing forms route to malloc, the pairing splits across
// allocators (ASan flags the mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace catenet {
namespace {

using telemetry::Counter;
using telemetry::CounterBlock;
using telemetry::DropReason;

// --- name unification ---------------------------------------------------

TEST(CounterNames, DropCountersEndWithSharedReasonSpelling) {
    // The contract satellite (b) exists to enforce: a trace line's drop
    // reason and the matching counter's name come from one spelling.
    for (std::size_t i = 1; i < static_cast<std::size_t>(DropReason::kCount); ++i) {
        const auto r = static_cast<DropReason>(i);
        const Counter c = telemetry::drop_counter(r);
        ASSERT_NE(c, Counter::kCount) << "reason " << i << " has no counter";
        const std::string_view name = telemetry::counter_name(c);
        const std::string_view reason = telemetry::to_string(r);
        EXPECT_TRUE(name.starts_with("ip.drop.")) << name;
        EXPECT_TRUE(name.ends_with(reason)) << name << " vs " << reason;
    }
}

TEST(CounterNames, AllSlotsNamedAndUnique) {
    std::set<std::string_view> seen;
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        const std::string_view name = telemetry::counter_name(static_cast<Counter>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?") << "slot " << i << " unnamed";
        EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    }
}

TEST(CounterBlock, MergeIsElementWiseAndOrderInvariant) {
    CounterBlock a, b, c;
    a.add(Counter::IpTx, 3);
    a.inc(Counter::TcpSegsOut);
    b.add(Counter::IpTx, 4);
    b.add(Counter::UdpRx, 9);
    c.add(Counter::TcpSegsOut, 5);

    CounterBlock abc;
    abc.merge(a);
    abc.merge(b);
    abc.merge(c);
    CounterBlock cba;
    cba.merge(c);
    cba.merge(b);
    cba.merge(a);
    EXPECT_EQ(abc.slots, cba.slots);
    EXPECT_EQ(abc.get(Counter::IpTx), 7u);
    EXPECT_EQ(abc.get(Counter::TcpSegsOut), 6u);
    EXPECT_EQ(abc.get(Counter::UdpRx), 9u);
    EXPECT_EQ(abc.get(Counter::IpRx), 0u);
}

TEST(GaugeSeries, RingKeepsMostRecentButStatsSeeEverything) {
    telemetry::GaugeSeries s("x", 4);
    for (int i = 0; i < 10; ++i) s.record(i, static_cast<double>(i));
    EXPECT_EQ(s.total(), 10u);
    EXPECT_EQ(s.held(), 4u);
    EXPECT_EQ(s.at(0).value, 6.0);  // oldest held
    EXPECT_EQ(s.last().value, 9.0);
    EXPECT_EQ(s.stats().count(), 10u);  // moments cover evicted samples too
    EXPECT_EQ(s.stats().min(), 0.0);
    EXPECT_EQ(s.stats().max(), 9.0);
}

// --- end-to-end counter exactness ---------------------------------------

// Asserts a node's legacy IpStats view reads back the counter slots it is
// synthesized from. The counters are the only storage, so this pins the
// slot→field mapping (a swapped pair here silently mislabels every report
// and legacy consumer), not a second set of increments; the genuinely
// independent double-entry checks are the cross-layer conservation laws
// and the TCP/UDP stats below, which live in separate structs.
void expect_ip_counters_exact(const core::Node& n) {
    const CounterBlock& c = n.ip().counters();
    const ip::IpStats s = n.ip().stats();
    EXPECT_EQ(c.get(Counter::IpTx), s.datagrams_sent) << n.name();
    EXPECT_EQ(c.get(Counter::IpRx), s.datagrams_received) << n.name();
    EXPECT_EQ(c.get(Counter::IpDeliver), s.delivered_locally) << n.name();
    EXPECT_EQ(c.get(Counter::IpFwd), s.forwarded) << n.name();
    EXPECT_EQ(c.get(Counter::IpDropChecksum), s.dropped_bad_checksum) << n.name();
    EXPECT_EQ(c.get(Counter::IpDropMalformed), s.dropped_malformed) << n.name();
    EXPECT_EQ(c.get(Counter::IpDropNoRoute), s.dropped_no_route) << n.name();
    EXPECT_EQ(c.get(Counter::IpDropTtlExpired), s.dropped_ttl_expired) << n.name();
    EXPECT_EQ(c.get(Counter::IpDropIfaceDown), s.dropped_iface_down) << n.name();
    EXPECT_EQ(c.get(Counter::IpDropNotForUs), s.dropped_not_for_us) << n.name();
    EXPECT_EQ(c.get(Counter::IpDropReassemblyTimeout),
              n.ip().reassembly_stats().timeouts)
        << n.name();
    EXPECT_EQ(c.get(Counter::IpFragsCreated), s.fragments_created) << n.name();
    EXPECT_EQ(c.get(Counter::IpIcmpErrorsSent), s.icmp_errors_sent) << n.name();
    EXPECT_EQ(c.get(Counter::IpSourceQuenchSent), s.source_quenches_sent) << n.name();
}

TEST(CounterExactness, LossyFourHopTransferMirrorsLegacyStats) {
    // a - g0 - g1 - g2 - b: a clean edge, a lossy jittered hop with bit
    // errors, and a narrow-MTU lossy hop that forces mid-path
    // fragmentation (so reassembly and its timeout path run too).
    core::Internetwork net(777);
    core::Host& a = net.add_host("a");
    core::Gateway& g0 = net.add_gateway("g0");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Host& b = net.add_host("b");

    link::LinkParams edge = link::presets::ethernet_hop();
    link::LinkParams lossy = link::presets::ethernet_hop();
    lossy.drop_probability = 0.02;
    lossy.jitter = sim::milliseconds(2);
    lossy.bit_error_rate = 1e-6;
    link::LinkParams narrow = link::presets::ethernet_hop();
    narrow.mtu = 600;
    narrow.drop_probability = 0.02;
    net.connect(a, g0, edge);
    net.connect(g0, g1, lossy);
    net.connect(g1, g2, narrow);
    net.connect(g2, b, edge);
    net.use_static_routes();

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 128 * 1024);
    sender.start();
    app::VoiceOverUdp voice(a, b, 5004);
    voice.start(sim::seconds(5));
    net.run_for(sim::seconds(60));

    // The scenario must actually exercise the interesting paths.
    ASSERT_GT(server.total_bytes_received(), 0u);
    ASSERT_GT(sender.socket_stats().retransmitted_segments, 0u);
    ASSERT_GT(g1.ip().stats().fragments_created, 0u) << "narrow hop never fragmented";
    ASSERT_GT(g0.ip().stats().forwarded, 0u);

    for (const core::Node* n : net.nodes()) expect_ip_counters_exact(*n);

    // Conservation at the gateways: every datagram a gateway receives is
    // forwarded, delivered, or dropped for a counted reason — nothing
    // else. These sum independent increment sites, so a missed or doubled
    // increment anywhere on the receive path breaks the books.
    for (const core::Gateway* g : {&g0, &g1, &g2}) {
        const CounterBlock& c = g->ip().counters();
        EXPECT_EQ(c.get(Counter::IpRx),
                  c.get(Counter::IpFwd) + c.get(Counter::IpDeliver) +
                      c.get(Counter::IpDropChecksum) + c.get(Counter::IpDropMalformed) +
                      c.get(Counter::IpDropNotForUs) + c.get(Counter::IpDropTtlExpired) +
                      c.get(Counter::IpDropNoRoute) + c.get(Counter::IpDropIfaceDown))
            << g->name();
    }
    // Cross-layer double entry at the hosts: the internet layer's tx count
    // must equal what the transports (and ICMP) handed it — TCP, UDP and
    // IP count at different layers with separate storage, so agreement
    // here is earned, not definitional. Stack-level RSTs go straight to
    // ip_.send without touching segments_sent, hence their own term.
    // (Neither host fragments locally; g1 does the fragmenting.)
    for (core::Host* h : {&a, &b}) {
        const CounterBlock& c = h->ip().counters();
        ASSERT_EQ(c.get(Counter::IpFragsCreated), 0u) << h->name();
        EXPECT_EQ(c.get(Counter::IpTx),
                  h->tcp().counters().get(Counter::TcpSegsOut) +
                      h->tcp().counters().get(Counter::TcpResetsSent) +
                      h->udp().counters().get(Counter::UdpTx) +
                      c.get(Counter::IpIcmpErrorsSent) +
                      c.get(Counter::IpSourceQuenchSent))
            << h->name();
    }
    // Host a never reassembles (everything it receives is unfragmented),
    // so its receive side balances exactly; host b consumes multiple
    // received fragments per delivered datagram, so its receive count
    // strictly exceeds its outcomes.
    {
        const CounterBlock& c = a.ip().counters();
        EXPECT_EQ(c.get(Counter::IpRx),
                  c.get(Counter::IpDeliver) + c.get(Counter::IpDropChecksum) +
                      c.get(Counter::IpDropMalformed) + c.get(Counter::IpDropNotForUs) +
                      c.get(Counter::IpDropTtlExpired) + c.get(Counter::IpDropNoRoute) +
                      c.get(Counter::IpDropIfaceDown));
        EXPECT_GT(b.ip().counters().get(Counter::IpRx),
                  b.ip().counters().get(Counter::IpDeliver));
    }

    // Destination-cache counters have no legacy mirror; sanity-bound them:
    // steady flows hit the cache, and the first lookup had to miss.
    EXPECT_GT(a.ip().counters().get(Counter::IpRouteCacheHit), 0u);
    EXPECT_GT(a.ip().counters().get(Counter::IpRouteCacheMiss), 0u);

    // TCP: host a's stack holds exactly one socket (the bulk sender keeps
    // it alive), so the stack's counter slots must equal that socket's
    // per-connection statistics plus the stack-level tallies.
    const CounterBlock& ta = a.tcp().counters();
    const tcp::TcpSocketStats& ss = sender.socket_stats();
    EXPECT_EQ(ta.get(Counter::TcpSegsOut), ss.segments_sent);
    EXPECT_EQ(ta.get(Counter::TcpRetransSegs), ss.retransmitted_segments);
    EXPECT_EQ(ta.get(Counter::TcpRtos), ss.timeouts);
    EXPECT_EQ(ta.get(Counter::TcpDupAcks), ss.duplicate_acks_received);
    EXPECT_EQ(ta.get(Counter::TcpFastRetransmits), ss.fast_retransmits);
    EXPECT_EQ(ta.get(Counter::TcpPredAcks), ss.fast_path_acks);
    EXPECT_EQ(ta.get(Counter::TcpPredData), ss.fast_path_data);
    EXPECT_EQ(ta.get(Counter::TcpSegsIn), a.tcp().stats().segments_received);
    EXPECT_EQ(ta.get(Counter::TcpConnsOpened), a.tcp().stats().connections_opened);
    EXPECT_EQ(ta.get(Counter::TcpConnsOpened), 1u);

    const CounterBlock& tb = b.tcp().counters();
    EXPECT_EQ(tb.get(Counter::TcpSegsIn), b.tcp().stats().segments_received);
    EXPECT_EQ(tb.get(Counter::TcpConnsAccepted), b.tcp().stats().connections_accepted);
    EXPECT_EQ(tb.get(Counter::TcpDropChecksum), b.tcp().stats().dropped_bad_checksum);
    EXPECT_EQ(tb.get(Counter::TcpDropNoConnection),
              b.tcp().stats().dropped_no_connection);
    EXPECT_EQ(tb.get(Counter::TcpResetsSent), b.tcp().stats().resets_sent);

    // UDP both ends.
    EXPECT_EQ(a.udp().counters().get(Counter::UdpTx), a.udp().stats().datagrams_sent);
    EXPECT_GT(a.udp().counters().get(Counter::UdpTx), 0u);
    EXPECT_EQ(b.udp().counters().get(Counter::UdpRx),
              b.udp().stats().datagrams_received);
    EXPECT_EQ(b.udp().counters().get(Counter::UdpDropChecksum),
              b.udp().stats().dropped_bad_checksum);
    EXPECT_EQ(b.udp().counters().get(Counter::UdpDropNoSocket),
              b.udp().stats().dropped_no_socket);

    // And the registry's fold agrees with summing by hand.
    CounterBlock by_hand;
    for (const core::Node* n : net.nodes()) by_hand.merge(n->ip().counters());
    by_hand.merge(a.tcp().counters());
    by_hand.merge(a.udp().counters());
    by_hand.merge(b.tcp().counters());
    by_hand.merge(b.udp().counters());
    EXPECT_EQ(net.metrics().totals().slots, by_hand.slots);
}

// --- flight recorder ----------------------------------------------------

// Attaches both the live text tracer and the binary recorder to every
// node, runs a lossy transfer, and demands the recorder's decoded
// transcript equal the tracer's, byte for byte — per lane and merged.
TEST(FlightRecorder, DecodeIsByteIdenticalToLiveTracer) {
    core::Internetwork net(4242);
    core::Host& a = net.add_host("a");
    core::Gateway& g = net.add_gateway("g");
    core::Host& b = net.add_host("b");
    link::LinkParams lossy = link::presets::ethernet_hop();
    lossy.drop_probability = 0.03;
    lossy.bit_error_rate = 1e-6;
    lossy.jitter = sim::milliseconds(1);
    net.connect(a, g, lossy);
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();

    telemetry::FlightRecorder& rec = net.attach_flight_recorder();
    ip::TraceCollector col;
    for (core::Node* n : net.nodes()) {
        const std::size_t lane = col.add_lane(n->name());
        n->ip().set_trace(col.make_tracer(lane, n->name(), n->simulator()));
    }

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 64 * 1024);
    sender.start();
    net.run_for(sim::seconds(30));

    ASSERT_GT(rec.total_records(), 0u);
    EXPECT_EQ(rec.total_overwritten(), 0u);  // default lanes are ample here
    ASSERT_EQ(rec.lane_count(), net.nodes().size());
    for (std::size_t i = 0; i < rec.lane_count(); ++i) {
        EXPECT_EQ(rec.decode_lane(i), col.lane_text(i)) << rec.lane_name(i);
    }
    EXPECT_EQ(rec.merged(), col.merged());
}

TEST(FlightRecorder, BoundedLaneOverwritesOldestAndReportsIt) {
    core::Internetwork net(9);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    net.connect(a, b, link::presets::ethernet_hop());
    net.use_static_routes();

    telemetry::FlightRecorder& rec = net.attach_flight_recorder(/*lane_capacity=*/8);
    ip::TraceCollector col;
    for (core::Node* n : net.nodes()) {
        const std::size_t lane = col.add_lane(n->name());
        n->ip().set_trace(col.make_tracer(lane, n->name(), n->simulator()));
    }

    const std::vector<std::uint8_t> payload(64, 0x5a);
    b.ip().register_protocol(
        253, [](const ip::Ipv4Header&, std::span<const std::uint8_t>, std::size_t) {});
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(a.ip().send(253, b.address(), payload));
        net.sim().run();
    }

    const telemetry::RecorderLane& lane_a = rec.lane(0);
    EXPECT_EQ(rec.lane_name(0), "a");
    EXPECT_EQ(lane_a.total(), 50u);  // one tx event per send
    EXPECT_EQ(lane_a.held(), 8u);
    EXPECT_EQ(lane_a.overwritten(), 42u);
    EXPECT_GT(rec.total_overwritten(), 0u);

    // The decode renders exactly the held suffix of the full transcript.
    const std::string full = col.lane_text(0);
    const std::string kept = rec.decode_lane(0);
    ASSERT_FALSE(kept.empty());
    EXPECT_LT(kept.size(), full.size());
    EXPECT_TRUE(full.ends_with(kept));
}

// --- allocation freedom -------------------------------------------------

TEST(TelemetryOverhead, SteadyStateInstrumentationIsHeapSilent) {
    // The forwarding fast-path harness with the full telemetry stack live:
    // counters incrementing, a flight recorder lane per node appending, and
    // a 1 ms gauge sampler ticking. None of it may allocate once warm.
    constexpr int kHops = 4;
    core::Internetwork net(42);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    std::vector<core::Gateway*> gws;
    for (int i = 0; i < kHops; ++i) {
        gws.push_back(&net.add_gateway("g" + std::to_string(i)));
    }
    core::Node* prev = &a;
    for (auto* gw : gws) {
        net.connect(*prev, *gw, link::presets::ethernet_hop());
        prev = gw;
    }
    net.connect(*prev, b, link::presets::ethernet_hop());
    net.use_static_routes();

    net.attach_flight_recorder();
    net.enable_gauge_sampling(sim::milliseconds(1));

    std::uint64_t delivered = 0;
    b.ip().register_protocol(253, [&delivered](const ip::Ipv4Header&,
                                               std::span<const std::uint8_t>,
                                               std::size_t) { ++delivered; });
    const std::vector<std::uint8_t> payload(512, 0xab);
    const auto dst = b.address();

    // Warm every pool: packet buffers, event slots, route caches, the
    // sampler's periodic event. (run_for, not run: the sampler never lets
    // the event queue drain.)
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(a.ip().send(253, dst, payload));
        net.run_for(sim::milliseconds(5));
    }
    ASSERT_EQ(delivered, 64u);

    const std::uint64_t before = g_heap_allocs;
    constexpr std::uint64_t kRounds = 256;
    for (std::uint64_t i = 0; i < kRounds; ++i) {
        a.ip().send(253, dst, payload);
        net.run_for(sim::milliseconds(5));
    }
    const std::uint64_t delta = g_heap_allocs - before;
    EXPECT_EQ(delivered, 64u + kRounds);
    EXPECT_EQ(delta, 0u) << "telemetry allocated on the steady-state path";

    // The gauges really were sampling while we measured.
    bool sampled = false;
    const auto& reg = net.metrics();
    for (std::size_t i = 0; i < reg.series_count(); ++i) {
        if (reg.series(i).total() > 0) sampled = true;
    }
    EXPECT_TRUE(sampled);
}

// --- gauge sampling ------------------------------------------------------

TEST(Gauges, SamplerRecordsQueueDepthUtilizationAndTcpState) {
    core::Internetwork net(31);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    net.connect(a, b, link::presets::ethernet_hop());
    net.use_static_routes();
    net.enable_gauge_sampling(sim::milliseconds(10));

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 512 * 1024);
    sender.start();
    net.watch_tcp(a, sender.shared_socket(), "a.bulk");
    net.run_for(sim::seconds(5));

    const telemetry::MetricsReport report = net.metrics_report();
    auto row = [&](const std::string& name) -> const telemetry::MetricsReport::GaugeRow* {
        for (const auto& g : report.gauges)
            if (g.name == name) return &g;
        return nullptr;
    };

    const auto* util = row("a-b:a.util");
    ASSERT_NE(util, nullptr);
    EXPECT_GT(util->samples, 0u);
    EXPECT_GE(util->min, 0.0);
    EXPECT_LE(util->max, 1.0);
    EXPECT_GT(util->max, 0.0) << "a 512 KiB transfer must busy the wire";

    const auto* qdepth = row("a-b:a.qdepth");
    ASSERT_NE(qdepth, nullptr);
    EXPECT_GT(qdepth->samples, 0u);
    EXPECT_GE(qdepth->min, 0.0);

    const auto* cwnd = row("a.bulk.cwnd_bytes");
    ASSERT_NE(cwnd, nullptr);
    EXPECT_GT(cwnd->samples, 0u);
    EXPECT_GT(cwnd->max, 0.0);
    const auto* srtt = row("a.bulk.srtt_ms");
    ASSERT_NE(srtt, nullptr);
    EXPECT_GT(srtt->max, 0.0);
}

TEST(Gauges, EmptySeriesReportsNullNotZero) {
    // Satellite (f): a series with no samples must serialize as null —
    // RunningStats now reports NaN extrema when empty instead of 0.0, and
    // the JSON layer must not leak either spelling.
    core::Internetwork net(1);
    net.add_host("a");
    net.metrics().add_series("never.sampled");
    const telemetry::MetricsReport report = net.metrics_report();
    ASSERT_EQ(report.gauges.size(), 1u);
    EXPECT_EQ(report.gauges[0].samples, 0u);
    const std::string json = report.to_json();
    EXPECT_NE(json.find("{\"name\":\"never.sampled\",\"samples\":0,"
                        "\"min\":null,\"max\":null,\"mean\":null,\"last\":null}"),
              std::string::npos)
        << json;
    EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

// --- report determinism --------------------------------------------------

std::string run_report_scenario(std::uint64_t seed) {
    core::Internetwork net(seed);
    core::Host& a = net.add_host("a");
    core::Gateway& g = net.add_gateway("g");
    core::Host& b = net.add_host("b");
    link::LinkParams lossy = link::presets::ethernet_hop();
    lossy.drop_probability = 0.03;
    lossy.jitter = sim::milliseconds(2);
    net.connect(a, g, lossy);
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();
    net.attach_flight_recorder();
    net.enable_gauge_sampling(sim::milliseconds(50));

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 128 * 1024);
    sender.start();
    net.watch_tcp(a, sender.shared_socket(), "a.bulk");
    app::VoiceOverUdp voice(a, b, 5004);
    voice.start(sim::seconds(5));
    net.run_for(sim::seconds(30));
    return net.metrics_report().to_json();
}

TEST(Report, JsonIsDeterministicAcrossSameSeedReruns) {
    const std::string first = run_report_scenario(1234);
    const std::string second = run_report_scenario(1234);
    EXPECT_EQ(first, second);
    // And it carries real content, not an empty shell.
    EXPECT_NE(first.find("\"ip.fwd\":"), std::string::npos);
    EXPECT_NE(first.find("\"tcp.retrans_segs\":"), std::string::npos);
    EXPECT_NE(first.find("\"recorder\":{"), std::string::npos);
}

TEST(Report, TableListsNonzeroCountersAndRecorder) {
    core::Internetwork net(7);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    net.connect(a, b, link::presets::ethernet_hop());
    net.use_static_routes();
    net.attach_flight_recorder();
    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 16 * 1024);
    sender.start();
    net.run_for(sim::seconds(10));

    const std::string table = net.metrics_report().to_table();
    EXPECT_NE(table.find("ip.tx"), std::string::npos);
    EXPECT_NE(table.find("tcp.segs_out"), std::string::npos);
    EXPECT_NE(table.find("flight recorder"), std::string::npos);
    EXPECT_EQ(table.find("ip.drop.no_route"), std::string::npos)
        << "zero counters must not clutter the table";
}

}  // namespace
}  // namespace catenet
