// Scenario-DSL tests: parsing, validation errors, and end-to-end runs
// driven entirely from text.
#include <gtest/gtest.h>

#include "app/scenario.h"

namespace catenet::app {
namespace {

TEST(Scenario, MinimalTwoHostTransfer) {
    const auto report = run_scenario(R"(
host a
host b
link a b ethernet
transfer a b 64K
run 30s
)");
    ASSERT_EQ(report.transfers.size(), 1u);
    EXPECT_TRUE(report.transfers[0].completed);
    EXPECT_EQ(report.transfers[0].bytes, 64u * 1024u);
    EXPECT_GT(report.transfers[0].goodput_bps, 0.0);
    EXPECT_GT(report.events, 0u);
}

TEST(Scenario, CommentsAndBlankLines) {
    EXPECT_NO_THROW(run_scenario(R"(
# a comment
host a   # trailing comment

host b
link a b ethernet
run 1s
)"));
}

TEST(Scenario, LinkOptionsApply) {
    const auto report = run_scenario(R"(
host a
host b
link a b ethernet loss=0.1 delay=20
transfer a b 256K
run 240s
)");
    ASSERT_EQ(report.transfers.size(), 1u);
    EXPECT_TRUE(report.transfers[0].completed);
    EXPECT_GT(report.transfers[0].retransmits, 0u) << "loss option must bite";
}

TEST(Scenario, GatewayLanAndDynamicRouting) {
    const auto report = run_scenario(R"(
host a
host b
gateway g
lan net1
attach a net1
attach g net1
link g b ethernet
routing dv
transfer a b 32K
run 60s
)");
    ASSERT_EQ(report.transfers.size(), 1u);
    EXPECT_TRUE(report.transfers[0].completed);
}

TEST(Scenario, FailureDirectiveSurvivable) {
    const auto report = run_scenario(R"(
host a
host b
gateway g1
gateway g2
gateway g3
link a g1 ethernet
link g1 g2 ethernet
link g1 g3 ethernet
link g2 b ethernet
link g3 b ethernet
routing dv
transfer a b 4M
fail g2 at 5s for 5s
run 240s
)");
    ASSERT_EQ(report.transfers.size(), 1u);
    EXPECT_TRUE(report.transfers[0].completed)
        << "the redundant path must carry the transfer through the crash";
}

TEST(Scenario, VoiceAndInteractiveReports) {
    const auto report = run_scenario(R"(
host a
host b
link a b ethernet
voice a b 10s
echo b
interactive a b 10s
run 20s
)");
    ASSERT_EQ(report.voices.size(), 1u);
    EXPECT_GT(report.voices[0].report.frames_received, 400u);
    ASSERT_EQ(report.interactives.size(), 1u);
    EXPECT_GT(report.interactives[0].echoes, 0u);
}

TEST(Scenario, QueueDirectiveProtectsVoice) {
    // The E10 story, driven from text: a greedy transfer vs a voice call
    // over a thin link, with and without a fair queue at the bottleneck.
    const char* base = R"(
host a
host b
gateway g1
gateway g2
link a g1 ethernet
link g1 g2 leased56k rate=512000
link g2 b ethernet
{QUEUE}
transfer a b 16M
voice a b 30s
run 45s
)";
    auto run_variant = [&](const std::string& queue_line) {
        std::string text = base;
        text.replace(text.find("{QUEUE}"), 7, queue_line);
        return run_scenario(text);
    };
    const auto fifo = run_variant("# fifo default");
    const auto fair = run_variant("queue g1 g2 fair");
    ASSERT_EQ(fifo.voices.size(), 1u);
    ASSERT_EQ(fair.voices.size(), 1u);
    EXPECT_GT(fair.voices[0].report.usable_fraction,
              fifo.voices[0].report.usable_fraction + 0.1)
        << "the fair queue must rescue the voice flow from the bulk transfer";
}

TEST(Scenario, QueueOnUnknownLinkRejected) {
    EXPECT_THROW(run_scenario(R"(
host a
host b
link a b ethernet
queue b a fair
run 1s
)"),
                 ScenarioError);
}

TEST(Scenario, GeneratedTwoTierRunsWorkloads) {
    const auto report = run_scenario(R"(
generate two_tier 4 4 3 full seed=5
transfer h0_0 h2_1 64K
run 30s
)");
    ASSERT_EQ(report.transfers.size(), 1u);
    EXPECT_TRUE(report.transfers[0].completed);
    EXPECT_GT(report.total_link_bytes, 64u * 1024u);
}

TEST(Scenario, GeneratedTwoTierIsDeterministic) {
    const std::string text = R"(
generate two_tier 4 4 3 full seed=5
transfer h0_0 h2_1 64K
run 30s
)";
    const auto a = run_scenario(text, 9);
    const auto b = run_scenario(text, 9);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.total_link_bytes, b.total_link_bytes);
}

TEST(Scenario, GeneratedCompactHostsAreNotAddressable) {
    // Compact leaves exist only in the arrays — referencing one by name is
    // an error, not a silent miss.
    EXPECT_THROW(run_scenario(R"(
generate two_tier 4 4 3 compact
transfer h0_0 h2_1 64K
run 5s
)"),
                 ScenarioError);
}

TEST(Scenario, GenerateRejectsBadArguments) {
    EXPECT_THROW(run_scenario("generate two_tier x y z\nrun 1s\n"), ScenarioError);
    EXPECT_THROW(run_scenario("generate two_tier 4 4 3 turbo\nrun 1s\n"),
                 ScenarioError);
}

TEST(Scenario, ErrorsCarryLineNumbers) {
    try {
        run_scenario("host a\nbogus directive\n");
        FAIL() << "expected ScenarioError";
    } catch (const ScenarioError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Scenario, UnknownNodeRejected) {
    EXPECT_THROW(run_scenario("host a\nlink a ghost ethernet\nrun 1s\n"), ScenarioError);
}

TEST(Scenario, UnknownTechnologyRejected) {
    EXPECT_THROW(run_scenario("host a\nhost b\nlink a b warp\nrun 1s\n"), ScenarioError);
}

TEST(Scenario, MissingRunRejected) {
    EXPECT_THROW(run_scenario("host a\n"), ScenarioError);
}

TEST(Scenario, BadDurationRejected) {
    EXPECT_THROW(run_scenario("host a\nhost b\nlink a b ethernet\nrun banana\n"),
                 ScenarioError);
}

TEST(Scenario, TransferBetweenGatewaysRejected) {
    EXPECT_THROW(run_scenario(R"(
host a
gateway g
link a g ethernet
transfer a g 1K
run 1s
)"),
                 ScenarioError);
}

}  // namespace
}  // namespace catenet::app
