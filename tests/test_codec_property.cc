// Codec property sweeps: every wire codec in the library round-trips
// arbitrary field values exactly, across randomized inputs.
#include <gtest/gtest.h>

#include "ip/ipv4_header.h"
#include "ip/protocols.h"
#include "routing/messages.h"
#include "tcp/tcp_header.h"
#include "udp/udp.h"
#include "util/random.h"
#include "vc/frame.h"

namespace catenet {
namespace {

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {
protected:
    util::Rng rng{GetParam() * 131 + 17};

    util::ByteBuffer random_payload(std::size_t max_len) {
        util::ByteBuffer buf(rng.uniform(0, max_len));
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
        return buf;
    }
};

TEST_P(CodecProperty, Ipv4RoundTripsRandomFields) {
    for (int i = 0; i < 300; ++i) {
        ip::Ipv4Header h;
        h.tos = static_cast<std::uint8_t>(rng.uniform(0, 255));
        h.identification = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        h.dont_fragment = rng.chance(0.5);
        h.more_fragments = rng.chance(0.5);
        h.fragment_offset = static_cast<std::uint16_t>(rng.uniform(0, 0x1fff));
        h.ttl = static_cast<std::uint8_t>(rng.uniform(1, 255));
        h.protocol = static_cast<std::uint8_t>(rng.uniform(0, 255));
        h.src = util::Ipv4Address(static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)));
        h.dst = util::Ipv4Address(static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)));
        const auto payload = random_payload(600);
        const auto wire = ip::encode_datagram(h, payload);
        ip::DecodedDatagram d;
        ASSERT_TRUE(ip::decode_datagram(wire, d));
        EXPECT_EQ(d.header.tos, h.tos);
        EXPECT_EQ(d.header.identification, h.identification);
        EXPECT_EQ(d.header.dont_fragment, h.dont_fragment);
        EXPECT_EQ(d.header.more_fragments, h.more_fragments);
        EXPECT_EQ(d.header.fragment_offset, h.fragment_offset);
        EXPECT_EQ(d.header.ttl, h.ttl);
        EXPECT_EQ(d.header.protocol, h.protocol);
        EXPECT_EQ(d.header.src, h.src);
        EXPECT_EQ(d.header.dst, h.dst);
        EXPECT_EQ(d.payload_length, payload.size());
    }
}

TEST_P(CodecProperty, TcpRoundTripsRandomFields) {
    const util::Ipv4Address src(10, 1, 2, 3), dst(10, 4, 5, 6);
    for (int i = 0; i < 300; ++i) {
        tcp::TcpHeader h;
        h.src_port = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        h.dst_port = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        h.seq = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff));
        h.ack = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff));
        h.flags.fin = rng.chance(0.5);
        h.flags.syn = rng.chance(0.5);
        h.flags.rst = rng.chance(0.5);
        h.flags.psh = rng.chance(0.5);
        h.flags.ack = rng.chance(0.5);
        h.flags.urg = rng.chance(0.5);
        h.window = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        h.urgent_pointer = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        if (rng.chance(0.5)) h.mss = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        const auto payload = random_payload(600);
        const auto wire = tcp::encode_tcp(h, src, dst, payload);
        std::span<const std::uint8_t> out;
        const auto back = tcp::decode_tcp(src, dst, wire, out);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->src_port, h.src_port);
        EXPECT_EQ(back->dst_port, h.dst_port);
        EXPECT_EQ(back->seq, h.seq);
        EXPECT_EQ(back->ack, h.ack);
        EXPECT_EQ(back->flags.fin, h.flags.fin);
        EXPECT_EQ(back->flags.syn, h.flags.syn);
        EXPECT_EQ(back->flags.rst, h.flags.rst);
        EXPECT_EQ(back->flags.psh, h.flags.psh);
        EXPECT_EQ(back->flags.ack, h.flags.ack);
        EXPECT_EQ(back->flags.urg, h.flags.urg);
        EXPECT_EQ(back->window, h.window);
        EXPECT_EQ(back->urgent_pointer, h.urgent_pointer);
        EXPECT_EQ(back->mss, h.mss);
        EXPECT_EQ(out.size(), payload.size());
    }
}

TEST_P(CodecProperty, UdpRoundTripsRandomFields) {
    const util::Ipv4Address src(1, 2, 3, 4), dst(4, 3, 2, 1);
    for (int i = 0; i < 300; ++i) {
        udp::UdpHeader h;
        h.src_port = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        h.dst_port = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
        const auto payload = random_payload(600);
        const auto wire = udp::encode_udp(h, src, dst, payload);
        std::span<const std::uint8_t> out;
        const auto back = udp::decode_udp(src, dst, wire, out);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->src_port, h.src_port);
        EXPECT_EQ(back->dst_port, h.dst_port);
        ASSERT_EQ(out.size(), payload.size());
        EXPECT_TRUE(std::equal(payload.begin(), payload.end(), out.begin()));
    }
}

TEST_P(CodecProperty, RoutingMessagesRoundTripRandomTables) {
    for (int i = 0; i < 100; ++i) {
        routing::DvMessage msg;
        const auto entries = rng.uniform(0, 50);
        for (std::uint64_t e = 0; e < entries; ++e) {
            msg.entries.push_back(routing::RouteEntry{
                util::Ipv4Prefix(
                    util::Ipv4Address(static_cast<std::uint32_t>(
                        rng.uniform(0, 0xffffffff))),
                    static_cast<int>(rng.uniform(0, 32))),
                static_cast<std::uint32_t>(rng.uniform(0, 64))});
        }
        const auto back = routing::decode_dv(routing::encode_dv(msg));
        ASSERT_TRUE(back.has_value());
        ASSERT_EQ(back->entries.size(), msg.entries.size());
        for (std::size_t e = 0; e < msg.entries.size(); ++e) {
            EXPECT_EQ(back->entries[e].prefix, msg.entries[e].prefix);
            EXPECT_EQ(back->entries[e].metric, msg.entries[e].metric);
        }
    }
}

TEST_P(CodecProperty, VcFramesRoundTripRandomBodies) {
    for (int i = 0; i < 300; ++i) {
        vc::VcFrame f = vc::VcFrame::data(
            static_cast<std::uint16_t>(rng.uniform(0, 0xffff)), random_payload(200));
        const auto back = vc::decode_frame(vc::encode_frame(f));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->type, f.type);
        EXPECT_EQ(back->vci, f.vci);
        EXPECT_EQ(back->body, f.body);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace catenet
