// The sharded conservative engine, bottom to top: the SPSC ring's order
// and swap-recycling contract, the latency-aware partitioner, equivalence
// of a 1-shard ParallelSimulator with the plain Simulator, cross-shard
// runs against their sequential twins (packet-exact), thread-count
// independence, lookahead correctness when the boundary latency is the
// global minimum, allocation-freedom of steady-state cross-shard
// forwarding, and the shard-safe stats/trace/logging utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "app/bulk.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "ip/trace.h"
#include "link/boundary.h"
#include "link/presets.h"
#include "sim/parallel.h"
#include "util/logging.h"
#include "util/spsc_ring.h"
#include "util/stats.h"

// Global allocation counter (same per-binary harness as test_sim.cc):
// counts every operator-new in this binary; tests measure deltas around
// loops that must never touch the allocator. Atomic because the parallel
// driver may run shard threads.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

// The nothrow forms must be overridden too: libstdc++'s temporary buffers
// (std::inplace_merge in RoutingTable::bulk_load) allocate with
// operator new(nothrow) but release through plain operator delete — if
// only the throwing forms route to malloc, the pairing splits across
// allocators (ASan flags the mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    ++g_heap_allocs;
    return std::malloc(size);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace catenet {
namespace {

// --- SPSC ring ----------------------------------------------------------

TEST(SpscRing, FifoOrderAndCapacity) {
    util::SpscRing<int> ring(4);  // rounds up to a power of two >= 4
    int v = 0;
    for (int i = 0; i < 4; ++i) {
        v = i;
        EXPECT_TRUE(ring.push(v)) << i;
    }
    v = 99;
    EXPECT_FALSE(ring.push(v));
    EXPECT_EQ(v, 99);  // rejected push leaves the item alone
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.pop(v));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, SwapDepositsFlowBackToProducer) {
    // The recycling contract: pop() swaps the consumer's item into the
    // slot, and the next push() at that slot hands it back to the
    // producer. Model buffers as vectors with recognizable capacity.
    util::SpscRing<std::vector<int>> ring(2);
    std::vector<int> item(100, 7);  // "fresh data" with capacity
    ASSERT_TRUE(ring.push(item));
    EXPECT_TRUE(item.empty());  // slot was empty: producer gets an empty shell

    std::vector<int> deposit(64);  // consumer's retired buffer
    deposit.clear();
    ASSERT_TRUE(ring.pop(deposit));
    EXPECT_EQ(deposit.size(), 100u);  // got the data

    // Next push at the same slot harvests the retired capacity.
    std::vector<int> next(10, 1);
    ASSERT_TRUE(ring.push(next));
    ASSERT_TRUE(ring.push(next));  // second slot: empty shell comes back
    std::vector<int> got;
    ASSERT_TRUE(ring.pop(got));
    EXPECT_EQ(got.size(), 10u);
}

TEST(SpscRing, ThreadedStressPreservesSequence) {
    util::SpscRing<std::uint64_t> ring(64);
    constexpr std::uint64_t kCount = 200'000;
    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kCount;) {
            std::uint64_t v = i;
            if (ring.push(v)) {
                ++i;
            } else {
                std::this_thread::yield();
            }
        }
    });
    std::uint64_t expected = 0;
    while (expected < kCount) {
        std::uint64_t v;
        if (ring.pop(v)) {
            ASSERT_EQ(v, expected);
            ++expected;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

// --- the partitioner ----------------------------------------------------

TEST(PartitionTopology, CutsTheHighestLatencyEdges) {
    // 0-1 and 2-3 are tight (1us); 1-2 is a 50ms satellite hop. Two shards
    // must cut the satellite link.
    std::vector<core::PartitionEdge> edges = {
        {0, 1, 1'000, true},
        {1, 2, 50'000'000, true},
        {2, 3, 1'000, true},
    };
    const auto shard = core::partition_topology(4, edges, 2);
    EXPECT_EQ(shard[0], shard[1]);
    EXPECT_EQ(shard[2], shard[3]);
    EXPECT_NE(shard[0], shard[2]);
}

TEST(PartitionTopology, NonCuttableEdgesPinComponents) {
    // The 1-2 edge is the highest-latency but marked non-cuttable (a LAN);
    // the partitioner must cut elsewhere.
    std::vector<core::PartitionEdge> edges = {
        {0, 1, 1'000, true},
        {1, 2, 50'000'000, false},
        {2, 3, 2'000, true},
    };
    const auto shard = core::partition_topology(4, edges, 2);
    EXPECT_EQ(shard[1], shard[2]);
    // Exactly two shards in use, and they partition the chain.
    EXPECT_NE(shard[0] == shard[1] ? shard[3] : shard[0], shard[1]);
}

TEST(PartitionTopology, DeterministicAndBalanced) {
    // 8 isolated pairs over 4 shards: every shard gets exactly 2 pairs.
    std::vector<core::PartitionEdge> edges;
    for (std::size_t i = 0; i < 8; ++i) {
        edges.push_back({2 * i, 2 * i + 1, 1'000, false});
    }
    const auto a = core::partition_topology(16, edges, 4);
    const auto b = core::partition_topology(16, edges, 4);
    EXPECT_EQ(a, b);
    std::vector<int> load(4, 0);
    for (const auto s : a) {
        ASSERT_LT(s, 4u);
        ++load[s];
    }
    for (int l : load) EXPECT_EQ(l, 4);
}

// --- scenario twins ------------------------------------------------------

struct RunSignature {
    std::uint64_t events;
    std::uint64_t link_bytes;
    std::uint64_t bytes_received;
    std::uint64_t retransmits;
    std::uint64_t voice_received;
    std::string trace;

    bool operator==(const RunSignature&) const = default;
};

// A two-cluster internetwork: (a — g1) | (g2 — b), with a lossy+jittery
// intra-cluster hop on the far side so randomness is exercised away from
// the (deterministic) boundary. `shards` 1 or 2; `threads` forwarded to
// the driver; `parallel` false builds the identical sequential twin.
RunSignature run_cross_scenario(std::uint64_t seed, bool parallel,
                                std::size_t shards, std::size_t threads) {
    std::unique_ptr<sim::ParallelSimulator> psim;
    std::unique_ptr<core::Internetwork> owned;
    if (parallel) {
        psim = std::make_unique<sim::ParallelSimulator>(shards, threads);
        owned = std::make_unique<core::Internetwork>(seed, *psim);
    } else {
        owned = std::make_unique<core::Internetwork>(seed);
    }
    core::Internetwork& net = *owned;
    const std::uint32_t far = parallel && shards > 1 ? 1u : 0u;

    core::Host& a = net.add_host("a");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2", far);
    core::Host& b = net.add_host("b", far);

    link::LinkParams lossy = link::presets::ethernet_hop();
    lossy.drop_probability = 0.03;
    lossy.jitter = sim::milliseconds(2);
    link::LinkParams wide = link::presets::ethernet_hop();
    wide.propagation_delay = sim::milliseconds(10);  // the shard boundary

    net.connect(a, g1, link::presets::ethernet_hop());
    net.connect(g1, g2, wide);
    net.connect(g2, b, lossy);
    net.use_static_routes();

    ip::TraceCollector traces;
    const auto lane_a = traces.add_lane("a");
    const auto lane_b = traces.add_lane("b");
    a.ip().set_trace(traces.make_tracer(lane_a, "a", a.simulator()));
    b.ip().set_trace(traces.make_tracer(lane_b, "b", b.simulator()));

    app::BulkServer server(b, 21);
    app::BulkSender sender(a, b.address(), 21, 256 * 1024);
    sender.start();
    app::VoiceOverUdp voice(a, b, 5004);
    voice.start(sim::seconds(10));
    net.run_for(sim::seconds(60));

    RunSignature sig;
    sig.events = parallel ? psim->events_processed() : net.sim().events_processed();
    sig.link_bytes = net.total_link_bytes();
    sig.bytes_received = server.total_bytes_received();
    sig.retransmits = sender.socket_stats().retransmitted_segments;
    sig.voice_received = voice.report().frames_received;
    sig.trace = traces.merged();
    return sig;
}

TEST(ParallelEquivalence, OneShardMatchesPlainSimulatorExactly) {
    const auto sequential = run_cross_scenario(1234, false, 1, 1);
    const auto one_shard = run_cross_scenario(1234, true, 1, 1);
    EXPECT_EQ(sequential, one_shard);
    EXPECT_GT(sequential.retransmits, 0u) << "scenario must exercise randomness";
    EXPECT_FALSE(sequential.trace.empty());
}

TEST(ParallelEquivalence, TwoShardsMatchSequentialPacketForPacket) {
    const auto sequential = run_cross_scenario(1234, false, 1, 1);
    const auto sharded = run_cross_scenario(1234, true, 2, 1);
    EXPECT_EQ(sequential, sharded);
}

TEST(ParallelEquivalence, ThreadedRunMatchesCooperativeRun) {
    const auto cooperative = run_cross_scenario(99, true, 2, 1);
    const auto threaded1 = run_cross_scenario(99, true, 2, 0);
    const auto threaded2 = run_cross_scenario(99, true, 2, 0);
    EXPECT_EQ(cooperative, threaded1);
    EXPECT_EQ(threaded1, threaded2);
}

// Four clusters in a ring of wide links, datagram traffic in every
// cluster and across every boundary; the parallel run must replay itself
// exactly at any thread count.
RunSignature run_ring_scenario(std::uint64_t seed, bool parallel, std::size_t threads) {
    std::unique_ptr<sim::ParallelSimulator> psim;
    std::unique_ptr<core::Internetwork> owned;
    if (parallel) {
        psim = std::make_unique<sim::ParallelSimulator>(4, threads);
        owned = std::make_unique<core::Internetwork>(seed, *psim);
    } else {
        owned = std::make_unique<core::Internetwork>(seed);
    }
    core::Internetwork& net = *owned;

    std::vector<core::Host*> hosts;
    std::vector<core::Gateway*> gws;
    for (std::uint32_t s = 0; s < 4; ++s) {
        const std::uint32_t shard = parallel ? s : 0u;
        auto& h = net.add_host("h" + std::to_string(s), shard);
        auto& g = net.add_gateway("g" + std::to_string(s), shard);
        net.connect(h, g, link::presets::ethernet_hop());
        hosts.push_back(&h);
        gws.push_back(&g);
    }
    link::LinkParams wide = link::presets::ethernet_hop();
    wide.propagation_delay = sim::milliseconds(5);
    for (std::uint32_t s = 0; s < 4; ++s) {
        net.connect(*gws[s], *gws[(s + 1) % 4], wide);
    }
    net.use_static_routes();

    std::vector<std::unique_ptr<app::VoiceOverUdp>> flows;
    for (std::uint32_t s = 0; s < 4; ++s) {
        flows.push_back(std::make_unique<app::VoiceOverUdp>(
            *hosts[s], *hosts[(s + 1) % 4], static_cast<std::uint16_t>(6000 + s)));
        flows.back()->start(sim::seconds(20));
    }
    net.run_for(sim::seconds(30));

    RunSignature sig{};
    sig.events = parallel ? psim->events_processed() : net.sim().events_processed();
    sig.link_bytes = net.total_link_bytes();
    for (const auto& f : flows) sig.voice_received += f->report().frames_received;
    return sig;
}

TEST(ParallelEquivalence, FourShardRingMatchesSequentialAndItself) {
    const auto sequential = run_ring_scenario(7, false, 1);
    const auto coop = run_ring_scenario(7, true, 1);
    const auto threaded = run_ring_scenario(7, true, 0);
    EXPECT_EQ(sequential, coop);
    EXPECT_EQ(coop, threaded);
    EXPECT_GT(sequential.voice_received, 0u);
}

// --- lookahead as the global minimum ------------------------------------

TEST(ParallelLookahead, TinyBoundaryLatencyStaysCorrectAndLive) {
    // The boundary hop's latency (1us propagation at LAN rate) is far
    // below every other timescale in the scenario: the conservative
    // driver's rounds are then dominated by null-message projection, and
    // any off-by-one in the horizon arithmetic shows up as a lost or
    // misordered packet — counted against the sequential twin.
    auto run = [](bool parallel) {
        std::unique_ptr<sim::ParallelSimulator> psim;
        std::unique_ptr<core::Internetwork> owned;
        if (parallel) {
            psim = std::make_unique<sim::ParallelSimulator>(2, 1);
            owned = std::make_unique<core::Internetwork>(11, *psim);
        } else {
            owned = std::make_unique<core::Internetwork>(11);
        }
        core::Internetwork& net = *owned;
        core::Host& a = net.add_host("a");
        core::Host& b = net.add_host("b", parallel ? 1u : 0u);
        link::LinkParams tight = link::presets::ethernet_hop();
        tight.propagation_delay = sim::microseconds(1);
        net.connect(a, b, tight);
        net.use_static_routes();

        app::VoiceOverUdp voice(a, b, 5004);
        voice.start(sim::seconds(5));
        net.run_for(sim::seconds(6));
        return voice.report().frames_received;
    };
    const auto sequential = run(false);
    const auto sharded = run(true);
    EXPECT_EQ(sequential, sharded);
    EXPECT_GT(sequential, 0u);
}

// --- allocation freedom across the boundary -----------------------------

TEST(ParallelAllocation, SteadyStateCrossShardForwardingIsAllocationFree) {
    sim::ParallelSimulator psim(2, 1);  // cooperative: no thread spawns
    core::Internetwork net(42, psim);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b", 1);
    net.connect(a, b, link::presets::ethernet_hop());
    net.use_static_routes();

    std::uint64_t delivered = 0;
    b.ip().register_protocol(253, [&delivered](const ip::Ipv4Header&,
                                               std::span<const std::uint8_t>,
                                               std::size_t) { ++delivered; });
    const std::vector<std::uint8_t> payload(512, 0xab);
    const auto dst = b.address();

    // Warm both shards' pools, the ring's swap slots, the staging heap,
    // and the driver's scratch vectors.
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(a.ip().send(253, dst, payload));
        net.run_for(sim::milliseconds(5));
    }
    ASSERT_EQ(delivered, 64u);

    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    constexpr std::uint64_t kRounds = 256;
    for (std::uint64_t i = 0; i < kRounds; ++i) {
        a.ip().send(253, dst, payload);
        net.run_for(sim::milliseconds(5));
    }
    const std::uint64_t delta = g_heap_allocs.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(delivered, 64u + kRounds);
    EXPECT_EQ(delta, 0u) << "heap allocations on the steady-state boundary path";
}

// --- shard-safe measurement utilities -----------------------------------

TEST(StatsMerge, RunningStatsMergeMatchesSinglePass) {
    util::RunningStats all, lo, hi;
    for (int i = 0; i < 1000; ++i) {
        const double x = 0.001 * i * i - 3.0 * i + 7.0;
        all.add(x);
        (i % 2 == 0 ? lo : hi).add(x);
    }
    util::RunningStats merged = lo;
    merged.merge(hi);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_NEAR(merged.mean(), all.mean(), 1e-9 * std::abs(all.mean()));
    EXPECT_NEAR(merged.variance(), all.variance(), 1e-6 * all.variance());
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
    EXPECT_NEAR(merged.sum(), all.sum(), 1e-9 * std::abs(all.sum()));

    util::RunningStats empty;
    merged.merge(empty);  // merging empty is a no-op
    EXPECT_EQ(merged.count(), all.count());
    empty.merge(all);  // merging into empty copies
    EXPECT_EQ(empty.count(), all.count());
    EXPECT_NEAR(empty.mean(), all.mean(), 1e-12);
}

TEST(StatsMerge, PercentilesAndHistogramMerge) {
    util::Percentiles all, p1, p2;
    util::Histogram h_all(0, 100, 10), h1(0, 100, 10), h2(0, 100, 10);
    for (int i = 0; i < 500; ++i) {
        const double x = (i * 37) % 101;
        all.add(x);
        h_all.add(x);
        (i < 250 ? p1 : p2).add(x);
        (i < 250 ? h1 : h2).add(x);
    }
    p1.merge(p2);
    EXPECT_EQ(p1.count(), all.count());
    EXPECT_EQ(p1.median(), all.median());
    EXPECT_EQ(p1.percentile(99), all.percentile(99));

    h1.merge(h2);
    EXPECT_EQ(h1.total(), h_all.total());
    for (std::size_t i = 0; i < h_all.bucket_count(); ++i) {
        EXPECT_EQ(h1.bucket(i), h_all.bucket(i)) << "bucket " << i;
    }
    util::Histogram mismatched(0, 50, 10);
    EXPECT_THROW(h1.merge(mismatched), std::invalid_argument);
}

TEST(Logging, ConcurrentWritersNeverInterleaveMidLine) {
    const auto prev = util::log_threshold();
    util::set_log_threshold(util::LogLevel::Info);
    ::testing::internal::CaptureStderr();
    constexpr int kThreads = 4;
    constexpr int kLines = 200;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([t] {
            const std::string msg(64, static_cast<char>('A' + t));
            for (int i = 0; i < kLines; ++i) {
                util::log_line(util::LogLevel::Info, "shard", msg);
            }
        });
    }
    for (auto& w : writers) w.join();
    const std::string captured = ::testing::internal::GetCapturedStderr();
    util::set_log_threshold(prev);

    // Every line must be one writer's complete message: 64 identical
    // letters, never a mix.
    std::istringstream is(captured);
    std::string line;
    int complete = 0;
    while (std::getline(is, line)) {
        const auto pos = line.find_last_of(' ');
        ASSERT_NE(pos, std::string::npos) << line;
        const std::string body = line.substr(pos + 1);
        ASSERT_EQ(body.size(), 64u) << "torn line: " << line;
        for (char c : body) ASSERT_EQ(c, body[0]) << "interleaved line: " << line;
        ++complete;
    }
    EXPECT_EQ(complete, kThreads * kLines);
}

}  // namespace
}  // namespace catenet
