// Goal 6 measured in source lines: "a host ... must implement [the
// protocols] ... the burden is not excessive". A functioning internet
// host — attach to a network, speak IP, serve a UDP echo — needs only
// the IpStack and UdpStack primitives, no core::Host scaffolding. This
// test IS the minimal host; its brevity is the assertion.
#include <gtest/gtest.h>

#include "ip/ip_stack.h"
#include "ip/protocols.h"
#include "link/presets.h"
#include "link/point_to_point.h"
#include "udp/udp.h"
#include "util/random.h"

namespace catenet {
namespace {

TEST(MinimalHost, FullUdpServiceInAFewLines) {
    sim::Simulator sim;
    util::Rng rng(181);
    link::PointToPointLink wire(sim, rng, link::presets::ethernet_hop());

    // --- the minimal host: one IP stack, one UDP binding, an echo ------
    ip::IpStack tiny(sim, "tiny");
    tiny.add_interface(wire.port_a(), util::Ipv4Address(10, 0, 0, 1),
                       util::Ipv4Prefix::parse("10.0.0.0/24"));
    udp::UdpStack tiny_udp(tiny);
    auto service = tiny_udp.bind(7);
    service->set_handler([&service](util::Ipv4Address from, std::uint16_t port,
                                    std::span<const std::uint8_t> data) {
        service->send_to(from, port, data);  // echo
    });
    // -------------------------------------------------------------------

    // A full peer talks to it.
    ip::IpStack peer(sim, "peer");
    peer.add_interface(wire.port_b(), util::Ipv4Address(10, 0, 0, 2),
                       util::Ipv4Prefix::parse("10.0.0.0/24"));
    udp::UdpStack peer_udp(peer);
    auto client = peer_udp.bind_ephemeral();
    std::string echoed;
    client->set_handler([&](util::Ipv4Address, std::uint16_t,
                            std::span<const std::uint8_t> data) {
        echoed = util::string_from_buffer(data);
    });
    client->send_to(util::Ipv4Address(10, 0, 0, 1), 7,
                    util::buffer_from_string("tiny host lives"));
    sim.run_until(sim::seconds(1));
    EXPECT_EQ(echoed, "tiny host lives");

    // The minimal host even answers pings for free (ICMP echo lives in
    // the IP stack itself).
    int replies = 0;
    peer.register_protocol(ip::kProtoIcmp, [&](const ip::Ipv4Header&,
                                               std::span<const std::uint8_t> p,
                                               std::size_t) {
        auto m = ip::decode_icmp(p);
        if (m && m->type == ip::IcmpType::EchoReply) ++replies;
    });
    peer.ping(util::Ipv4Address(10, 0, 0, 1), 1, 1);
    sim.run_until(sim.now() + sim::seconds(1));
    EXPECT_EQ(replies, 1);
}

}  // namespace
}  // namespace catenet
