// Distance-vector over a shared LAN: multiple gateways hear each other's
// broadcasts on one segment (the common campus topology of the era), and
// hosts on the LAN reach stub networks behind any of them.
#include <gtest/gtest.h>

#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"

namespace catenet::routing {
namespace {

struct LanRoutingFixture : ::testing::Test {
    core::Internetwork net{171};
    core::Host& pc = net.add_host("pc");
    core::Gateway& g1 = net.add_gateway("g1");
    core::Gateway& g2 = net.add_gateway("g2");
    core::Gateway& g3 = net.add_gateway("g3");
    core::Host& stub1 = net.add_host("stub1");
    core::Host& stub2 = net.add_host("stub2");

    DvConfig fast() {
        DvConfig c;
        c.period = sim::seconds(1);
        c.route_timeout = sim::milliseconds(3500);
        return c;
    }

    void wire() {
        const auto lan = net.add_lan(link::presets::ethernet_lan(), "campus");
        net.attach_to_lan(pc, lan);
        net.attach_to_lan(g1, lan);
        net.attach_to_lan(g2, lan);
        net.attach_to_lan(g3, lan);
        net.connect(g1, stub1, link::presets::leased_line());
        net.connect(g3, stub2, link::presets::packet_radio());
        for (auto* g : {&g1, &g2, &g3}) g->enable_distance_vector(fast());
        net.install_host_default_routes();
    }

    int ping(core::Host& from, util::Ipv4Address to) {
        int replies = 0;
        from.ip().register_protocol(
            ip::kProtoIcmp,
            [&replies](const ip::Ipv4Header&, std::span<const std::uint8_t> p,
                       std::size_t) {
                auto m = ip::decode_icmp(p);
                if (m && m->type == ip::IcmpType::EchoReply) ++replies;
            });
        from.ip().ping(to, 1, 1);
        net.run_for(sim::seconds(3));
        return replies;
    }
};

TEST_F(LanRoutingFixture, GatewaysLearnEachOthersStubsOverTheLan) {
    wire();
    net.run_for(sim::seconds(8));
    // g2 has no stubs of its own but must know both via LAN broadcasts.
    EXPECT_TRUE(g2.ip().routing_table().lookup(stub1.address()).has_value());
    EXPECT_TRUE(g2.ip().routing_table().lookup(stub2.address()).has_value());
    // And the direct owners know each other's.
    EXPECT_TRUE(g1.ip().routing_table().lookup(stub2.address()).has_value());
    EXPECT_TRUE(g3.ip().routing_table().lookup(stub1.address()).has_value());
}

TEST_F(LanRoutingFixture, HostReachesStubsBehindDifferentGateways) {
    wire();
    net.run_for(sim::seconds(8));
    // The pc's default route points at one gateway; that gateway forwards
    // across the LAN to the right border when needed.
    EXPECT_EQ(ping(pc, stub1.address()), 1);
    EXPECT_EQ(ping(pc, stub2.address()), 1);
}

TEST_F(LanRoutingFixture, LanGatewayFailureWithdrawsItsStub) {
    wire();
    net.run_for(sim::seconds(8));
    ASSERT_TRUE(g2.ip().routing_table().lookup(stub1.address()).has_value());
    g1.set_down(true);
    net.run_for(sim::seconds(10));
    EXPECT_FALSE(g2.ip().routing_table().lookup(stub1.address()).has_value())
        << "stub1's prefix must expire everywhere after its gateway dies";
    EXPECT_TRUE(g2.ip().routing_table().lookup(stub2.address()).has_value())
        << "unrelated prefixes must survive";
}

TEST_F(LanRoutingFixture, DirectLanTrafficNeverTransitsAGateway) {
    wire();
    core::Host& pc2 = net.add_host("pc2");
    // Attach after the fact to the same LAN.
    net.attach_to_lan(pc2, 0);
    net.install_host_default_routes();
    net.run_for(sim::seconds(3));
    const auto forwarded_before = g1.ip().stats().forwarded +
                                  g2.ip().stats().forwarded +
                                  g3.ip().stats().forwarded;
    EXPECT_EQ(ping(pc, pc2.address()), 1);
    const auto forwarded_after = g1.ip().stats().forwarded +
                                 g2.ip().stats().forwarded +
                                 g3.ip().stats().forwarded;
    EXPECT_EQ(forwarded_before, forwarded_after)
        << "on-link traffic uses the connected route, not a gateway";
}

}  // namespace
}  // namespace catenet::routing
