// Realization tests — the paper's §"Architecture and Realization": the
// same architecture and the same applications must function over wildly
// divergent concrete internets, with performance properties that belong
// to the realization, not to the protocols.
#include <gtest/gtest.h>

#include "app/bulk.h"
#include "app/voice.h"
#include "core/realizations.h"
#include "ip/protocols.h"

namespace catenet::core {
namespace {

struct WorkloadOutcome {
    bool transfer_completed;
    double goodput_kbps;
    std::uint64_t retransmits;
    double voice_usable;
};

// The identical workload, byte for byte, on any realization.
WorkloadOutcome run_standard_workload(Realization& r) {
    auto& net = *r.net;
    net.run_for(sim::seconds(20));  // routing warm-up

    Host& near_host = *r.hosts[0];
    Host& far_host = *r.hosts[2];

    app::BulkServer server(far_host, 21);
    app::BulkSender sender(near_host, far_host.address(), 21, 128 * 1024);
    sender.start();

    app::VoiceConfig vc;
    vc.playout_delay = sim::milliseconds(800);  // generous: satellite paths
    app::VoiceOverUdp call(*r.hosts[1], far_host, 5004, vc);
    call.start(sim::seconds(30));

    net.run_for(sim::seconds(600));

    WorkloadOutcome out;
    out.transfer_completed = sender.finished();
    out.goodput_kbps = sender.throughput_bps() / 1000.0;
    out.retransmits = sender.socket_stats().retransmitted_segments;
    out.voice_usable = call.report().usable_fraction;
    return out;
}

TEST(Realizations, MilitaryFieldCarriesTheStandardWorkload) {
    auto r = military_field_realization(211);
    const auto outcome = run_standard_workload(r);
    EXPECT_TRUE(outcome.transfer_completed);
    EXPECT_GT(outcome.retransmits, 0u) << "radio loss is the realization's nature";
    EXPECT_GT(outcome.voice_usable, 0.5);
}

TEST(Realizations, CommercialCarriesTheStandardWorkload) {
    auto r = commercial_realization(212);
    const auto outcome = run_standard_workload(r);
    EXPECT_TRUE(outcome.transfer_completed);
    EXPECT_GT(outcome.voice_usable, 0.95);
}

TEST(Realizations, PerformanceBelongsToTheRealizationNotTheProtocols) {
    auto field = military_field_realization(213);
    auto office = commercial_realization(213);
    const auto f = run_standard_workload(field);
    const auto o = run_standard_workload(office);
    ASSERT_TRUE(f.transfer_completed);
    ASSERT_TRUE(o.transfer_completed);
    EXPECT_GT(o.goodput_kbps, f.goodput_kbps * 5)
        << "same stack, an order of magnitude apart: the realization decides";
}

TEST(Realizations, FieldRealizationSurvivesRelayLoss) {
    auto r = military_field_realization(214);
    auto& net = *r.net;
    net.run_for(sim::seconds(20));

    Host& unit = *r.hosts[0];
    Host& rear = *r.hosts[2];
    app::BulkServer server(rear, 21);
    app::BulkSender sender(unit, rear.address(), 21, 64 * 1024);
    sender.start();
    net.run_for(sim::seconds(5));

    // The uplink truck reboots mid-transfer (there is no alternate path:
    // the transfer must STALL, survive, and resume — not die).
    r.gateways[1]->set_down(true);
    net.run_for(sim::seconds(15));
    EXPECT_FALSE(sender.failed());
    r.gateways[1]->set_down(false);
    net.run_for(sim::seconds(600));
    EXPECT_TRUE(sender.finished())
        << "fate-sharing: the conversation outlives its only path's outage";
}

TEST(Realizations, CommercialRealizationReroutesAroundWanHub) {
    auto r = commercial_realization(215);
    auto& net = *r.net;
    net.run_for(sim::seconds(45));

    Host& desk = *r.hosts[0];
    Host& server_host = *r.hosts[2];
    app::BulkServer server(server_host, 21);
    app::BulkSender sender(desk, server_host.address(), 21, 4ull * 1024 * 1024);
    sender.start();
    net.run_for(sim::seconds(2));

    // Office A has a redundant direct line to the data center: losing the
    // hub reroutes instead of stalling until restore.
    r.gateways[3]->set_down(true);
    net.run_for(sim::seconds(600));
    EXPECT_TRUE(sender.finished());
    EXPECT_EQ(server.total_bytes_received(), 4ull * 1024 * 1024);
}

}  // namespace
}  // namespace catenet::core
