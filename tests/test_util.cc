// Unit tests for the utility layer: wire codecs, checksums, addresses,
// statistics, deterministic randomness.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>

#include "util/byte_buffer.h"
#include "util/checksum.h"
#include "util/ip_address.h"
#include "util/random.h"
#include "util/ring_buffer.h"
#include "util/stats.h"

namespace catenet::util {
namespace {

TEST(BufferWriter, WritesBigEndian) {
    BufferWriter w;
    w.put_u8(0x01);
    w.put_u16(0x0203);
    w.put_u32(0x04050607);
    w.put_u64(0x08090a0b0c0d0e0full);
    const auto buf = w.take();
    const std::uint8_t expected[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
                                     0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    ASSERT_EQ(buf.size(), sizeof(expected));
    EXPECT_TRUE(std::equal(buf.begin(), buf.end(), expected));
}

TEST(BufferWriter, PatchU16OverwritesInPlace) {
    BufferWriter w;
    w.put_u32(0);
    w.patch_u16(1, 0xbeef);
    EXPECT_EQ(w.data()[1], 0xbe);
    EXPECT_EQ(w.data()[2], 0xef);
}

TEST(BufferWriter, PatchPastEndThrows) {
    BufferWriter w;
    w.put_u16(0);
    EXPECT_THROW(w.patch_u16(1, 0), std::out_of_range);
}

TEST(BufferWriter, PatchRejectsHugeOffsetWithoutWrapping) {
    // A naive `offset + 2 > size` bounds check wraps for offsets near
    // SIZE_MAX and silently writes out of range.
    BufferWriter w;
    w.put_u32(0);
    EXPECT_THROW(w.patch_u16(std::numeric_limits<std::size_t>::max(), 0xffff),
                 std::out_of_range);
    EXPECT_THROW(w.patch_u16(std::numeric_limits<std::size_t>::max() - 1, 0xffff),
                 std::out_of_range);
}

TEST(BufferWriter, PatchOnEmptyOrTinyBufferThrows) {
    BufferWriter w;
    EXPECT_THROW(w.patch_u16(0, 1), std::out_of_range);
    w.put_u8(0);
    EXPECT_THROW(w.patch_u16(0, 1), std::out_of_range);
}

TEST(BufferReader, RoundTripsWriterOutput) {
    BufferWriter w;
    w.put_u16(0xabcd);
    w.put_u32(0x12345678);
    w.put_u8(0x7f);
    const auto buf = w.take();
    BufferReader r(buf);
    EXPECT_EQ(r.get_u16(), 0xabcd);
    EXPECT_EQ(r.get_u32(), 0x12345678u);
    EXPECT_EQ(r.get_u8(), 0x7f);
    EXPECT_TRUE(r.at_end());
}

TEST(BufferReader, ThrowsOnTruncation) {
    const std::uint8_t data[] = {1, 2, 3};
    BufferReader r(data);
    EXPECT_EQ(r.get_u16(), 0x0102);
    EXPECT_THROW(r.get_u16(), DecodeError);
}

TEST(BufferReader, SkipAndRemaining) {
    const std::uint8_t data[] = {1, 2, 3, 4, 5};
    BufferReader r(data);
    r.skip(2);
    EXPECT_EQ(r.remaining_size(), 3u);
    EXPECT_EQ(r.get_bytes(2).size(), 2u);
    EXPECT_EQ(r.remaining()[0], 5);
}

TEST(BufferString, RoundTrip) {
    const auto buf = buffer_from_string("hello catenet");
    EXPECT_EQ(string_from_buffer(buf), "hello catenet");
}

// --- checksum ---------------------------------------------------------

TEST(Checksum, Rfc1071WorkedExample) {
    // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 -> checksum 0x220d
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, KnownIpv4HeaderVector) {
    // Classic worked IPv4 header (checksum field holds 0xb861); a buffer
    // containing its correct checksum folds to zero.
    const std::uint8_t header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
                                   0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8, 0x00, 0x01,
                                   0xc0, 0xa8, 0x00, 0xc7};
    EXPECT_TRUE(checksum_valid(header));
    auto zeroed = ByteBuffer(header, header + sizeof(header));
    zeroed[10] = zeroed[11] = 0;
    EXPECT_EQ(internet_checksum(zeroed), 0xb861);
}

TEST(Checksum, WordAtATimeMatchesByteAtATimeReference) {
    // The production path folds 64-bit chunks (RFC 1071 deferred carries);
    // it must agree bit-for-bit with the definitional per-word sum at
    // every length, including odd tails and sub-word buffers.
    Rng rng(7);
    for (std::size_t size = 0; size <= 130; ++size) {
        ByteBuffer buf(size);
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
        std::uint64_t ref = 0;
        std::size_t i = 0;
        for (; i + 1 < buf.size(); i += 2) {
            ref += static_cast<std::uint16_t>((buf[i] << 8) | buf[i + 1]);
        }
        if (i < buf.size()) ref += static_cast<std::uint16_t>(buf[i] << 8);
        while (ref >> 16) ref = (ref & 0xffff) + (ref >> 16);
        const auto expected = static_cast<std::uint16_t>(~ref & 0xffff);
        ASSERT_EQ(internet_checksum(buf), expected) << "size=" << size;
    }
}

TEST(Checksum, ChunkedAddsMatchOneShot) {
    // Feeding the accumulator in arbitrary even-size chunks must match a
    // single add — chunk seams land mid-word-block on purpose.
    Rng rng(11);
    ByteBuffer buf(96);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    ChecksumAccumulator chunked;
    std::span<const std::uint8_t> view(buf);
    chunked.add(view.subspan(0, 2));
    chunked.add(view.subspan(2, 6));
    chunked.add(view.subspan(8, 10));
    chunked.add(view.subspan(18, 78));
    EXPECT_EQ(chunked.finish(), internet_checksum(buf));
}

TEST(Checksum, OddLengthPadsWithZero) {
    const std::uint8_t odd[] = {0x12, 0x34, 0x56};
    const std::uint8_t even[] = {0x12, 0x34, 0x56, 0x00};
    EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(Checksum, ValidBufferSumsToZero) {
    BufferWriter w;
    w.put_u32(0xdeadbeef);
    w.put_u16(0);  // checksum slot
    w.put_u32(0x01020304);
    auto buf = w.take();
    const auto sum = internet_checksum(buf);
    buf[4] = static_cast<std::uint8_t>(sum >> 8);
    buf[5] = static_cast<std::uint8_t>(sum & 0xff);
    EXPECT_TRUE(checksum_valid(buf));
}

TEST(Checksum, DetectsSingleBitFlip) {
    Rng rng(42);
    int detected = 0;
    constexpr int kTrials = 200;
    for (int t = 0; t < kTrials; ++t) {
        ByteBuffer buf(64);
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
        buf[6] = buf[7] = 0;
        const auto sum = internet_checksum(buf);
        buf[6] = static_cast<std::uint8_t>(sum >> 8);
        buf[7] = static_cast<std::uint8_t>(sum & 0xff);
        ASSERT_TRUE(checksum_valid(buf));
        const auto bit = rng.uniform(0, buf.size() * 8 - 1);
        buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        if (!checksum_valid(buf)) ++detected;
    }
    // One's-complement checksum detects all single-bit errors.
    EXPECT_EQ(detected, kTrials);
}

// Property: checksum of (buffer + its checksum) folds to zero for random
// buffers of every parity and size.
class ChecksumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChecksumProperty, AppendedChecksumValidates) {
    Rng rng(GetParam() * 977 + 13);
    ByteBuffer buf(GetParam());
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    const auto sum = internet_checksum(buf);
    // Append checksum as a trailing 16-bit word (even-size buffers only —
    // odd sizes pad, which moves the word boundary).
    if (buf.size() % 2 == 0) {
        buf.push_back(static_cast<std::uint8_t>(sum >> 8));
        buf.push_back(static_cast<std::uint8_t>(sum & 0xff));
        EXPECT_TRUE(checksum_valid(buf));
    } else {
        EXPECT_NE(internet_checksum(buf), 0xffff);  // still well-defined
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChecksumProperty,
                         ::testing::Values(0, 1, 2, 3, 8, 9, 20, 21, 64, 127, 128, 255,
                                           256, 575, 576, 1499, 1500));

TEST(TransportChecksum, CoversPseudoHeader) {
    const Ipv4Address src(10, 0, 0, 1);
    const Ipv4Address dst(10, 0, 0, 2);
    const std::uint8_t seg[] = {1, 2, 3, 4};
    const auto a = transport_checksum(src, dst, 6, seg);
    const auto b = transport_checksum(src, Ipv4Address(10, 0, 0, 3), 6, seg);
    const auto c = transport_checksum(src, dst, 17, seg);
    EXPECT_NE(a, b) << "destination address must affect the checksum";
    EXPECT_NE(a, c) << "protocol must affect the checksum";
}

// --- addresses ---------------------------------------------------------

TEST(Ipv4Address, ParsesAndFormats) {
    const auto addr = Ipv4Address::parse("192.168.1.200");
    EXPECT_EQ(addr, Ipv4Address(192, 168, 1, 200));
    EXPECT_EQ(addr.to_string(), "192.168.1.200");
}

TEST(Ipv4Address, RejectsMalformed) {
    EXPECT_THROW(Ipv4Address::parse(""), std::invalid_argument);
    EXPECT_THROW(Ipv4Address::parse("1.2.3"), std::invalid_argument);
    EXPECT_THROW(Ipv4Address::parse("1.2.3.4.5"), std::invalid_argument);
    EXPECT_THROW(Ipv4Address::parse("256.0.0.1"), std::invalid_argument);
    EXPECT_THROW(Ipv4Address::parse("1.2.3.x"), std::invalid_argument);
    EXPECT_THROW(Ipv4Address::parse("-1.2.3.4"), std::invalid_argument);
}

TEST(Ipv4Prefix, MaskAndContains) {
    const auto p = Ipv4Prefix::parse("10.1.2.0/24");
    EXPECT_EQ(p.mask(), 0xffffff00u);
    EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 2, 77)));
    EXPECT_FALSE(p.contains(Ipv4Address(10, 1, 3, 77)));
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
    const Ipv4Prefix p(Ipv4Address(10, 1, 2, 77), 24);
    EXPECT_EQ(p.address(), Ipv4Address(10, 1, 2, 0));
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
    const Ipv4Prefix def(Ipv4Address(0), 0);
    EXPECT_TRUE(def.contains(Ipv4Address(255, 255, 255, 255)));
    EXPECT_TRUE(def.contains(Ipv4Address(0)));
}

TEST(Ipv4Prefix, RejectsBadLength) {
    EXPECT_THROW(Ipv4Prefix(Ipv4Address(0), 33), std::invalid_argument);
    EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0/40"), std::invalid_argument);
    EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0"), std::invalid_argument);
}

// --- stats -------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, EmptyHasNoExtrema) {
    // An accumulator that saw nothing must not claim it observed 0.0:
    // min()/max() are NaN until the first sample, and empty() says why.
    RunningStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    s.add(-3.5);
    EXPECT_FALSE(s.empty());
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(RunningStats, MergeWithEmptyIsIdentityBothWays) {
    RunningStats filled;
    for (double x : {1.0, 2.0, 6.0}) filled.add(x);
    RunningStats empty;

    RunningStats a = filled;
    a.merge(empty);  // right identity
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);

    RunningStats b;  // left identity
    b.merge(filled);
    EXPECT_EQ(b.count(), 3u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
    EXPECT_DOUBLE_EQ(b.min(), 1.0);
    EXPECT_DOUBLE_EQ(b.max(), 6.0);

    RunningStats both;
    both.merge(empty);
    EXPECT_TRUE(both.empty());
    EXPECT_TRUE(std::isnan(both.min()));
}

TEST(Percentiles, ExactQuartiles) {
    Percentiles p;
    for (int i = 1; i <= 101; ++i) p.add(i);
    EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(50), 51.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
    EXPECT_DOUBLE_EQ(p.percentile(25), 26.0);
}

TEST(Percentiles, InterleavedAddAndQuery) {
    Percentiles p;
    p.add(10);
    EXPECT_DOUBLE_EQ(p.median(), 10.0);
    p.add(20);
    p.add(30);
    EXPECT_DOUBLE_EQ(p.median(), 20.0);
}

TEST(Histogram, BucketsAndOverflow) {
    Histogram h(0.0, 10.0, 10);
    h.add(-1);
    h.add(0.5);
    h.add(9.5);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 5u);
}

// --- shard-merge properties ---------------------------------------------
// The parallel engine folds per-shard accumulators after quiescence; the
// merged result must be indistinguishable from one accumulator that saw
// every sample, regardless of how the samples were split or in what order
// the shards joined.

TEST(Percentiles, MergeWithEmptyIsIdentity) {
    Percentiles filled;
    for (int i = 1; i <= 9; ++i) filled.add(i);
    Percentiles empty;
    filled.merge(empty);
    EXPECT_EQ(filled.count(), 9u);
    EXPECT_DOUBLE_EQ(filled.median(), 5.0);

    Percentiles target;
    target.merge(filled);
    EXPECT_EQ(target.count(), 9u);
    EXPECT_DOUBLE_EQ(target.median(), 5.0);
    EXPECT_DOUBLE_EQ(target.percentile(100), 9.0);
}

TEST(Percentiles, MergeSingleSampleShards) {
    // Degenerate sharding: every shard saw exactly one sample.
    Percentiles merged;
    for (double x : {7.0, 1.0, 5.0, 3.0, 9.0}) {
        Percentiles shard;
        shard.add(x);
        merged.merge(shard);
    }
    EXPECT_EQ(merged.count(), 5u);
    EXPECT_DOUBLE_EQ(merged.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(merged.median(), 5.0);
    EXPECT_DOUBLE_EQ(merged.percentile(100), 9.0);
}

TEST(Percentiles, MergeOrderDoesNotMatter) {
    Percentiles lo, hi;
    for (int i = 1; i <= 50; ++i) lo.add(i);
    for (int i = 51; i <= 101; ++i) hi.add(i);

    Percentiles lo_first = lo;
    lo_first.merge(hi);
    Percentiles hi_first = hi;
    hi_first.merge(lo);
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
        EXPECT_DOUBLE_EQ(lo_first.percentile(p), hi_first.percentile(p)) << p;
    }
    // And both match the unsharded accumulator.
    Percentiles all;
    for (int i = 1; i <= 101; ++i) all.add(i);
    EXPECT_DOUBLE_EQ(lo_first.percentile(50), all.percentile(50));
}

TEST(Histogram, MergeAddsBucketsUnderflowAndOverflow) {
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(-1);
    a.add(0.5);
    b.add(0.7);
    b.add(9.5);
    b.add(42.0);

    Histogram empty(0.0, 10.0, 10);
    a.merge(empty);  // empty merge changes nothing
    EXPECT_EQ(a.total(), 2u);

    Histogram ab = a;
    ab.merge(b);
    Histogram ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.total(), 5u);
    EXPECT_EQ(ab.bucket(0), 2u);
    EXPECT_EQ(ab.bucket(9), 1u);
    EXPECT_EQ(ab.underflow(), 1u);
    EXPECT_EQ(ab.overflow(), 1u);
    for (std::size_t i = 0; i < ab.bucket_count(); ++i) {
        EXPECT_EQ(ab.bucket(i), ba.bucket(i)) << i;
    }
    EXPECT_EQ(ab.underflow(), ba.underflow());
    EXPECT_EQ(ab.overflow(), ba.overflow());
}

TEST(Histogram, MergeRejectsMismatchedShape) {
    Histogram a(0.0, 10.0, 10);
    Histogram different_range(0.0, 20.0, 10);
    Histogram different_buckets(0.0, 10.0, 5);
    EXPECT_THROW(a.merge(different_range), std::invalid_argument);
    EXPECT_THROW(a.merge(different_buckets), std::invalid_argument);
}

// --- ring buffer --------------------------------------------------------

TEST(RingBuffer, RoundsCapacityUpToPowerOfTwo) {
    EXPECT_EQ(RingBuffer(1000).capacity(), 1024u);
    EXPECT_EQ(RingBuffer(1024).capacity(), 1024u);
    EXPECT_EQ(RingBuffer(1).capacity(), 1u);
    EXPECT_EQ(RingBuffer(0).capacity(), 1u);
}

TEST(RingBuffer, WriteBoundedByFreeSpace) {
    RingBuffer ring(8);
    const std::uint8_t data[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    EXPECT_EQ(ring.write(data), 8u);
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_EQ(ring.free_space(), 0u);
    EXPECT_EQ(ring.write(data), 0u);
    ring.consume(3);
    EXPECT_EQ(ring.write(data), 3u);
    EXPECT_EQ(ring.size(), 8u);
}

TEST(RingBuffer, PeekSplitsOnlyAtPhysicalWrap) {
    RingBuffer ring(8);
    const std::uint8_t first[6] = {1, 2, 3, 4, 5, 6};
    ASSERT_EQ(ring.write(first), 6u);
    ring.consume(4);  // head at 4, tail at 6
    const std::uint8_t second[5] = {7, 8, 9, 10, 11};
    ASSERT_EQ(ring.write(second), 5u);  // tail wraps: bytes 9,10,11 at slots 0..2

    // Contiguous range: one span.
    auto s = ring.peek(0, 2);
    EXPECT_EQ(s.first.size(), 2u);
    EXPECT_TRUE(s.second.empty());
    EXPECT_EQ(s.first[0], 5);

    // Range across the wrap: exactly two spans, contents in order.
    s = ring.peek(1, 6);
    EXPECT_EQ(s.size(), 6u);
    EXPECT_EQ(s.first.size(), 3u);
    EXPECT_EQ(s.second.size(), 3u);
    const std::uint8_t expected[] = {6, 7, 8, 9, 10, 11};
    std::uint8_t got[6];
    ring.read(1, got);
    EXPECT_TRUE(std::equal(std::begin(got), std::end(got), std::begin(expected)));
    EXPECT_EQ(s.first[0], 6);
    EXPECT_EQ(s.second[2], 11);
}

TEST(RingBuffer, ReadAtOffsetDoesNotConsume) {
    RingBuffer ring(16);
    const std::uint8_t data[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    ring.write(data);
    std::uint8_t out[4];
    ring.read(3, out);
    EXPECT_EQ(out[0], 3);
    EXPECT_EQ(out[3], 6);
    EXPECT_EQ(ring.size(), 10u);
    ring.consume(10);
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, SurvivesLongWrappingTraffic) {
    // Grind a small ring with a pseudo-random produce/consume schedule and
    // check byte-for-byte against a straightforward shadow model.
    RingBuffer ring(64);
    Rng rng(1988);
    ByteBuffer shadow;
    std::uint8_t next = 0;
    for (int round = 0; round < 2000; ++round) {
        ByteBuffer chunk(rng.uniform(0, 80));
        for (auto& b : chunk) b = next++;
        const std::size_t free_before = ring.free_space();
        const auto taken = ring.write(chunk);
        EXPECT_EQ(taken, std::min(chunk.size(), free_before));
        shadow.insert(shadow.end(), chunk.begin(), chunk.begin() + taken);

        const std::size_t drop = rng.uniform(0, ring.size());
        if (ring.size() > 0) {
            ByteBuffer got(ring.size());
            ring.read(0, got);
            ASSERT_EQ(got, shadow) << "round " << round;
        }
        ring.consume(drop);
        shadow.erase(shadow.begin(), shadow.begin() + drop);
    }
}

TEST(RingBuffer, ClearResets) {
    RingBuffer ring(8);
    const std::uint8_t data[5] = {1, 2, 3, 4, 5};
    ring.write(data);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.free_space(), 8u);
    EXPECT_EQ(ring.write(data), 5u);
    std::uint8_t out[5];
    ring.read(0, out);
    EXPECT_EQ(out[4], 5);
}

// --- rng ----------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
    }
}

TEST(Rng, ForkIndependence) {
    Rng parent(7);
    Rng child = parent.fork();
    // The child stream must not replay the parent stream.
    bool differs = false;
    Rng parent2(7);
    Rng child2 = parent2.fork();
    for (int i = 0; i < 10; ++i) {
        if (child.uniform(0, 1u << 30) != child2.uniform(0, 1u << 30)) differs = true;
    }
    EXPECT_FALSE(differs) << "same-seed forks must match";
}

TEST(Rng, ChanceBoundaries) {
    Rng rng(1);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ExponentialHasRequestedMean) {
    Rng rng(99);
    double sum = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / kSamples, 5.0, 0.15);
}

}  // namespace
}  // namespace catenet::util
