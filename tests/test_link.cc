// Unit tests for the link layer: queue disciplines, point-to-point channel
// model (rate, delay, loss, corruption), shared LAN.
#include <gtest/gtest.h>

#include "link/lan.h"
#include "link/point_to_point.h"
#include "link/presets.h"
#include "link/queue.h"

namespace catenet::link {
namespace {

Packet make_test_packet(std::size_t size, std::uint8_t fill = 0xab) {
    Packet p;
    p.bytes = util::ByteBuffer(size, fill);
    return p;
}

// --- DropTailQueue -----------------------------------------------------

TEST(DropTailQueue, FifoOrder) {
    DropTailQueue q(4);
    for (std::uint8_t i = 0; i < 3; ++i) q.enqueue(make_test_packet(10, i));
    EXPECT_EQ(q.dequeue()->bytes[0], 0);
    EXPECT_EQ(q.dequeue()->bytes[0], 1);
    EXPECT_EQ(q.dequeue()->bytes[0], 2);
    EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
    DropTailQueue q(2);
    EXPECT_TRUE(q.enqueue(make_test_packet(10)));
    EXPECT_TRUE(q.enqueue(make_test_packet(10)));
    EXPECT_FALSE(q.enqueue(make_test_packet(10)));
    EXPECT_EQ(q.stats().dropped, 1u);
    EXPECT_EQ(q.stats().enqueued, 2u);
    EXPECT_EQ(q.packets(), 2u);
}

TEST(DropTailQueue, TracksBytes) {
    DropTailQueue q(8);
    q.enqueue(make_test_packet(100));
    q.enqueue(make_test_packet(50));
    EXPECT_EQ(q.bytes(), 150u);
    q.dequeue();
    EXPECT_EQ(q.bytes(), 50u);
    q.clear();
    EXPECT_EQ(q.bytes(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, ZeroCapacityRejected) {
    EXPECT_THROW(DropTailQueue q(0), std::invalid_argument);
}

// --- PriorityQueue ------------------------------------------------------

TEST(PriorityQueue, HighPriorityFirst) {
    // Classify by first byte.
    PriorityQueue q(2, 8, [](const Packet& p) { return std::uint64_t{p.bytes[0]}; });
    q.enqueue(make_test_packet(10, 1));  // low priority
    q.enqueue(make_test_packet(10, 0));  // high priority
    q.enqueue(make_test_packet(10, 1));
    EXPECT_EQ(q.dequeue()->bytes[0], 0);
    EXPECT_EQ(q.dequeue()->bytes[0], 1);
    EXPECT_EQ(q.dequeue()->bytes[0], 1);
}

TEST(PriorityQueue, LevelsClampToLast) {
    PriorityQueue q(2, 8, [](const Packet& p) { return std::uint64_t{p.bytes[0]}; });
    q.enqueue(make_test_packet(10, 250));  // clamps to level 1
    EXPECT_EQ(q.packets(), 1u);
}

TEST(PriorityQueue, PerLevelCapacity) {
    PriorityQueue q(2, 1, [](const Packet& p) { return std::uint64_t{p.bytes[0]}; });
    EXPECT_TRUE(q.enqueue(make_test_packet(10, 0)));
    EXPECT_FALSE(q.enqueue(make_test_packet(10, 0)));  // level 0 full
    EXPECT_TRUE(q.enqueue(make_test_packet(10, 1)));   // level 1 still open
}

// --- FairQueue -----------------------------------------------------------

TEST(FairQueue, InterleavesCompetingFlows) {
    FairQueue q(64, 100, [](const Packet& p) { return std::uint64_t{p.bytes[0]}; });
    // Flow 0 dumps 6 packets, flow 1 dumps 2; service should alternate.
    for (int i = 0; i < 6; ++i) q.enqueue(make_test_packet(100, 0));
    for (int i = 0; i < 2; ++i) q.enqueue(make_test_packet(100, 1));
    std::vector<int> service;
    while (auto p = q.dequeue()) service.push_back(p->bytes[0]);
    ASSERT_EQ(service.size(), 8u);
    // Within the first four dequeues both flows must appear.
    const int flow1_in_first4 =
        static_cast<int>(std::count(service.begin(), service.begin() + 4, 1));
    EXPECT_GE(flow1_in_first4, 1);
}

TEST(FairQueue, SoftStateEvaporatesWithBacklog) {
    FairQueue q(64, 1500, [](const Packet& p) { return std::uint64_t{p.bytes[0]}; });
    q.enqueue(make_test_packet(10, 0));
    q.enqueue(make_test_packet(10, 1));
    EXPECT_EQ(q.active_flows(), 2u);
    q.dequeue();
    q.dequeue();
    EXPECT_EQ(q.active_flows(), 0u) << "drained flows must leave no state";
}

TEST(FairQueue, PerFlowCapacityIsolatesHog) {
    FairQueue q(4, 1500, [](const Packet& p) { return std::uint64_t{p.bytes[0]}; });
    for (int i = 0; i < 10; ++i) q.enqueue(make_test_packet(10, 0));  // hog
    EXPECT_TRUE(q.enqueue(make_test_packet(10, 1)));  // victim still fits
    EXPECT_EQ(q.stats().dropped, 6u);
}

TEST(FairQueue, QuantumSmallerThanPacketStillProgresses) {
    FairQueue q(8, 10, [](const Packet&) { return 0ull; });  // quantum 10 < packet 100
    q.enqueue(make_test_packet(100, 7));
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->bytes[0], 7);
}

// --- PointToPointLink -------------------------------------------------------

struct P2pFixture : ::testing::Test {
    sim::Simulator sim;
    util::Rng rng{1};
};

TEST_F(P2pFixture, DeliversWithRateAndPropagationDelay) {
    LinkParams params;
    params.bits_per_second = 8'000'000;        // 1 byte/us
    params.propagation_delay = sim::microseconds(100);
    PointToPointLink link(sim, rng, params);

    sim::Time delivered_at;
    link.port_b().set_receiver([&](Packet) { delivered_at = sim.now(); });
    link.port_a().send(make_test_packet(1000), {});
    sim.run();
    // 1000 bytes at 1 byte/us = 1ms transmission + 100us propagation.
    EXPECT_EQ(delivered_at, sim::microseconds(1100));
}

TEST_F(P2pFixture, SerializesBackToBackPackets) {
    LinkParams params;
    params.bits_per_second = 8'000'000;
    params.propagation_delay = sim::Time(0);
    PointToPointLink link(sim, rng, params);

    std::vector<sim::Time> arrivals;
    link.port_b().set_receiver([&](Packet) { arrivals.push_back(sim.now()); });
    link.port_a().send(make_test_packet(1000), {});
    link.port_a().send(make_test_packet(1000), {});
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[1] - arrivals[0], sim::milliseconds(1))
        << "second packet must wait for the first to clock out";
}

TEST_F(P2pFixture, DuplexDirectionsAreIndependent) {
    PointToPointLink link(sim, rng, presets::ethernet_hop());
    int a_received = 0, b_received = 0;
    link.port_a().set_receiver([&](Packet) { ++a_received; });
    link.port_b().set_receiver([&](Packet) { ++b_received; });
    link.port_a().send(make_test_packet(100), {});
    link.port_b().send(make_test_packet(100), {});
    sim.run();
    EXPECT_EQ(a_received, 1);
    EXPECT_EQ(b_received, 1);
}

TEST_F(P2pFixture, RandomLossDropsExpectedFraction) {
    LinkParams params = presets::ethernet_hop();
    params.drop_probability = 0.3;
    PointToPointLink link(sim, rng, params);
    int received = 0;
    link.port_b().set_receiver([&](Packet) { ++received; });
    constexpr int kPackets = 2000;
    for (int i = 0; i < kPackets; ++i) {
        link.port_a().send(make_test_packet(50), {});
        sim.run();
    }
    EXPECT_NEAR(static_cast<double>(received) / kPackets, 0.7, 0.05);
    EXPECT_EQ(link.stats_a_to_b().packets_lost,
              static_cast<std::uint64_t>(kPackets - received));
}

TEST_F(P2pFixture, BitErrorsCorruptPayloadBytes) {
    LinkParams params = presets::ethernet_hop();
    params.bit_error_rate = 1e-3;  // virtually every 1000-byte packet hit
    PointToPointLink link(sim, rng, params);
    int corrupted = 0, received = 0;
    link.port_b().set_receiver([&](Packet p) {
        ++received;
        for (auto b : p.bytes) {
            if (b != 0xab) {
                ++corrupted;
                break;
            }
        }
    });
    for (int i = 0; i < 50; ++i) {
        link.port_a().send(make_test_packet(1000), {});
        sim.run();
    }
    EXPECT_EQ(received, 50);
    EXPECT_GT(corrupted, 40) << "high BER must corrupt most packets";
    EXPECT_EQ(link.stats_a_to_b().packets_corrupted,
              static_cast<std::uint64_t>(corrupted));
}

TEST_F(P2pFixture, DownLinkLosesInFlightAndBlocksSends) {
    LinkParams params = presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(10);
    PointToPointLink link(sim, rng, params);
    int received = 0;
    link.port_b().set_receiver([&](Packet) { ++received; });
    link.port_a().send(make_test_packet(100), {});
    sim.run_until(sim::microseconds(500));  // transmitted, still propagating
    link.set_up(false);
    sim.run();
    EXPECT_EQ(received, 0);
    link.port_a().send(make_test_packet(100), {});
    sim.run();
    EXPECT_EQ(received, 0);
    EXPECT_EQ(link.port_a().stats().send_failures, 1u);
    link.set_up(true);
    link.port_a().send(make_test_packet(100), {});
    sim.run();
    EXPECT_EQ(received, 1);
}

TEST_F(P2pFixture, JitterVariesDelay) {
    LinkParams params = presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(1);
    params.jitter = sim::milliseconds(10);
    PointToPointLink link(sim, rng, params);
    std::vector<double> delays;
    link.port_b().set_receiver([&](Packet p) {
        delays.push_back((sim.now() - p.created).millis());
    });
    for (int i = 0; i < 100; ++i) {
        auto p = make_test_packet(10);
        p.created = sim.now();
        link.port_a().send(std::move(p), {});
        sim.run();
    }
    const auto [min_it, max_it] = std::minmax_element(delays.begin(), delays.end());
    EXPECT_GT(*max_it - *min_it, 2.0) << "jitter must spread delivery times";
}

// --- Lan ---------------------------------------------------------------------

struct LanFixture : ::testing::Test {
    sim::Simulator sim;
    util::Rng rng{2};
    LanParams params = presets::ethernet_lan();
};

TEST_F(LanFixture, UnicastReachesOnlyAddressee) {
    Lan lan(sim, rng, params);
    auto& p0 = lan.add_port();
    auto& p1 = lan.add_port();
    auto& p2 = lan.add_port();
    lan.register_address(util::Ipv4Address(10, 0, 0, 1), 0);
    lan.register_address(util::Ipv4Address(10, 0, 0, 2), 1);
    lan.register_address(util::Ipv4Address(10, 0, 0, 3), 2);
    int got1 = 0, got2 = 0;
    p1.set_receiver([&](Packet) { ++got1; });
    p2.set_receiver([&](Packet) { ++got2; });
    (void)p0;
    p0.send(make_test_packet(100), util::Ipv4Address(10, 0, 0, 2));
    sim.run();
    EXPECT_EQ(got1, 1);
    EXPECT_EQ(got2, 0);
}

TEST_F(LanFixture, BroadcastReachesEveryoneElse) {
    Lan lan(sim, rng, params);
    auto& p0 = lan.add_port();
    auto& p1 = lan.add_port();
    auto& p2 = lan.add_port();
    int got0 = 0, got1 = 0, got2 = 0;
    p0.set_receiver([&](Packet) { ++got0; });
    p1.set_receiver([&](Packet) { ++got1; });
    p2.set_receiver([&](Packet) { ++got2; });
    p0.send(make_test_packet(100), util::Ipv4Address{});  // unspecified = broadcast
    sim.run();
    EXPECT_EQ(got0, 0) << "sender must not hear its own frame";
    EXPECT_EQ(got1, 1);
    EXPECT_EQ(got2, 1);
}

TEST_F(LanFixture, UnresolvableNextHopCountsFailure) {
    Lan lan(sim, rng, params);
    auto& p0 = lan.add_port();
    lan.add_port();
    p0.send(make_test_packet(100), util::Ipv4Address(1, 2, 3, 4));
    sim.run();
    EXPECT_EQ(p0.stats().send_failures, 1u);
}

TEST_F(LanFixture, SharedMediumSerializesStations) {
    // Two stations transmit simultaneously; arrivals must be spaced by at
    // least the transmission time of one frame.
    Lan lan(sim, rng, params);
    auto& p0 = lan.add_port();
    auto& p1 = lan.add_port();
    auto& p2 = lan.add_port();
    lan.register_address(util::Ipv4Address(10, 0, 0, 3), 2);
    std::vector<sim::Time> arrivals;
    p2.set_receiver([&](Packet) { arrivals.push_back(sim.now()); });
    p0.send(make_test_packet(1250), util::Ipv4Address(10, 0, 0, 3));  // 1ms at 10Mb/s
    p1.send(make_test_packet(1250), util::Ipv4Address(10, 0, 0, 3));
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_GE((arrivals[1] - arrivals[0]).nanos(),
              sim::microseconds(990).nanos());
}

TEST_F(LanFixture, PreservesPayloadBytes) {
    Lan lan(sim, rng, params);
    auto& p0 = lan.add_port();
    auto& p1 = lan.add_port();
    lan.register_address(util::Ipv4Address(10, 0, 0, 2), 1);
    util::ByteBuffer sent{1, 2, 3, 4, 5};
    util::ByteBuffer got;
    p1.set_receiver([&](Packet p) { got = p.bytes; });
    p0.send(make_packet(sent, sim), util::Ipv4Address(10, 0, 0, 2));
    sim.run();
    EXPECT_EQ(got, sent);
}

}  // namespace
}  // namespace catenet::link
