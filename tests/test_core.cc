// Core-layer tests: Internetwork construction and addressing, oracle
// routing, LAN attachment, flow classification and soft-state accounting,
// and crash semantics of gateways (fate-sharing, goal 1 / goal 7).
#include <gtest/gtest.h>

#include "core/flow.h"
#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"

namespace catenet::core {
namespace {

using util::Ipv4Address;
using util::Ipv4Prefix;

TEST(Internetwork, AllocatesDistinctSubnetsAndAddresses) {
    Internetwork net(71);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    Host& c = net.add_host("c");
    net.connect(a, b, link::presets::ethernet_hop());
    net.connect(b, c, link::presets::ethernet_hop());
    EXPECT_NE(a.address(), b.address());
    EXPECT_NE(b.address(), c.address());
    // b has two interfaces on two subnets.
    EXPECT_EQ(b.ip().interface_count(), 2u);
    EXPECT_NE(b.ip().interface_address(0).value() & 0xffffff00,
              b.ip().interface_address(1).value() & 0xffffff00);
}

TEST(Internetwork, StaticRoutesReachEverySubnet) {
    // Ring of four gateways with a host on each.
    Internetwork net(72);
    std::vector<Gateway*> gws;
    std::vector<Host*> hosts;
    for (int i = 0; i < 4; ++i) {
        gws.push_back(&net.add_gateway("g" + std::to_string(i)));
        hosts.push_back(&net.add_host("h" + std::to_string(i)));
    }
    for (int i = 0; i < 4; ++i) {
        net.connect(*gws[i], *gws[(i + 1) % 4], link::presets::ethernet_hop());
        net.connect(*hosts[i], *gws[i], link::presets::ethernet_hop());
    }
    net.use_static_routes();

    int replies = 0;
    hosts[0]->ip().register_protocol(
        ip::kProtoIcmp,
        [&](const ip::Ipv4Header&, std::span<const std::uint8_t> p, std::size_t) {
            auto m = ip::decode_icmp(p);
            if (m && m->type == ip::IcmpType::EchoReply) ++replies;
        });
    for (int i = 1; i < 4; ++i) {
        hosts[0]->ip().ping(hosts[i]->address(), 1, static_cast<std::uint16_t>(i));
    }
    net.run_for(sim::seconds(2));
    EXPECT_EQ(replies, 3);
}

TEST(Internetwork, LanAttachmentsShareSubnetAndTalkDirectly) {
    Internetwork net(73);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    const auto lan = net.add_lan(link::presets::ethernet_lan());
    const auto addr_a = net.attach_to_lan(a, lan);
    const auto addr_b = net.attach_to_lan(b, lan);
    EXPECT_EQ(addr_a.value() & 0xffffff00, addr_b.value() & 0xffffff00);

    int delivered = 0;
    b.ip().register_protocol(200, [&](const ip::Ipv4Header&, std::span<const std::uint8_t>,
                                      std::size_t) { ++delivered; });
    a.ip().send(200, addr_b, util::ByteBuffer{1});
    net.run_for(sim::seconds(1));
    EXPECT_EQ(delivered, 1);
}

TEST(Internetwork, TotalLinkBytesAccumulates) {
    Internetwork net(74);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    net.connect(a, b, link::presets::ethernet_hop());
    net.use_static_routes();
    b.ip().register_protocol(200, [](auto&, auto, auto) {});
    EXPECT_EQ(net.total_link_bytes(), 0u);
    a.ip().send(200, b.address(), util::ByteBuffer(100, 1));
    net.run_for(sim::seconds(1));
    EXPECT_EQ(net.total_link_bytes(), 120u) << "100 payload + 20 IP header";
}

// --- flow classification -----------------------------------------------------

TEST(FlowClassify, ExtractsFiveTupleFromTcpPacket) {
    // Build a TCP/IP packet by hand.
    util::BufferWriter transport;
    transport.put_u16(1234);  // src port
    transport.put_u16(80);    // dst port
    transport.put_zero(16);
    ip::Ipv4Header h;
    h.protocol = ip::kProtoTcp;
    h.tos = 0x08;
    h.src = Ipv4Address(10, 0, 0, 1);
    h.dst = Ipv4Address(10, 0, 1, 1);
    const auto wire = ip::encode_datagram(h, transport.data());

    const auto key = classify_packet(wire);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->src, h.src.value());
    EXPECT_EQ(key->dst, h.dst.value());
    EXPECT_EQ(key->protocol, ip::kProtoTcp);
    EXPECT_EQ(key->src_port, 1234);
    EXPECT_EQ(key->dst_port, 80);
    EXPECT_EQ(key->tos, 0x08);
}

TEST(FlowClassify, NonFirstFragmentHasNoPorts) {
    ip::Ipv4Header h;
    h.protocol = ip::kProtoUdp;
    h.fragment_offset = 100;
    h.src = Ipv4Address(1, 1, 1, 1);
    h.dst = Ipv4Address(2, 2, 2, 2);
    const auto wire = ip::encode_datagram(h, util::ByteBuffer(64, 0));
    const auto key = classify_packet(wire);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->src_port, 0);
    EXPECT_EQ(key->dst_port, 0);
}

TEST(FlowClassify, CorruptPacketRejected) {
    util::ByteBuffer junk(32, 0xff);
    EXPECT_FALSE(classify_packet(junk).has_value());
}

TEST(FlowKeyHash, DistinguishesFlows) {
    FlowKey a{1, 2, 6, 100, 200, 0};
    FlowKey b = a;
    b.dst_port = 201;
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.hash(), FlowKey{a}.hash());
}

// --- flow table -------------------------------------------------------------------

TEST(FlowTable, RecordsAndAggregates) {
    FlowTable table(sim::seconds(30));
    FlowKey k{1, 2, 6, 10, 20, 0};
    table.record(k, 100, sim::seconds(1));
    table.record(k, 200, sim::seconds(2));
    ASSERT_EQ(table.active_flows(), 1u);
    const auto snapshot = table.flows();
    const auto& rec = snapshot.front().second;
    EXPECT_EQ(rec.packets, 2u);
    EXPECT_EQ(rec.bytes, 300u);
    EXPECT_EQ(rec.first_seen, sim::seconds(1));
    EXPECT_EQ(rec.last_seen, sim::seconds(2));
}

TEST(FlowTable, IdleFlowsEvicted) {
    FlowTable table(sim::seconds(10));
    table.record(FlowKey{1, 2, 6, 1, 1, 0}, 10, sim::seconds(0));
    table.record(FlowKey{3, 4, 6, 1, 1, 0}, 10, sim::seconds(8));
    EXPECT_EQ(table.sweep(sim::seconds(12)), 1u);
    EXPECT_EQ(table.active_flows(), 1u);
    EXPECT_EQ(table.stats().flows_expired, 1u);
}

TEST(FlowTable, ClearLosesOnlyHistory) {
    FlowTable table(sim::seconds(30));
    FlowKey k{1, 2, 6, 1, 1, 0};
    table.record(k, 10, sim::seconds(1));
    table.clear();  // the crash
    EXPECT_EQ(table.active_flows(), 0u);
    table.record(k, 10, sim::seconds(2));  // rebuilt from traffic
    EXPECT_EQ(table.active_flows(), 1u);
}

// --- gateway accounting end to end ------------------------------------------------

TEST(GatewayAccounting, CountsForwardedTraffic) {
    Internetwork net(75);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    Gateway& g = net.add_gateway("g");
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();
    auto& flows = g.enable_flow_accounting();

    auto rx = b.udp().bind(1000);
    rx->set_handler([](auto, auto, auto) {});
    auto tx = a.udp().bind_ephemeral();
    for (int i = 0; i < 10; ++i) {
        tx->send_to(b.address(), 1000, util::ByteBuffer(100, 1));
        net.run_for(sim::milliseconds(10));
    }
    net.run_for(sim::seconds(1));
    ASSERT_EQ(flows.active_flows(), 1u);
    const auto snapshot = flows.flows();
    const auto& rec = snapshot.front().second;
    EXPECT_EQ(rec.packets, 10u);
    EXPECT_EQ(rec.bytes, 10u * 128u) << "100 payload + 8 UDP + 20 IP per packet";
}

TEST(GatewayAccounting, SoftStateSurvivesCrashFunctionally) {
    Internetwork net(76);
    Host& a = net.add_host("a");
    Host& b = net.add_host("b");
    Gateway& g = net.add_gateway("g");
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();
    auto& flows = g.enable_flow_accounting();

    auto rx = b.udp().bind(1000);
    int delivered = 0;
    rx->set_handler([&](auto, auto, auto) { ++delivered; });
    auto tx = a.udp().bind_ephemeral();
    tx->send_to(b.address(), 1000, util::ByteBuffer(10, 1));
    net.run_for(sim::seconds(1));
    EXPECT_EQ(flows.active_flows(), 1u);

    g.set_down(true);  // crash: accounting state evaporates
    net.run_for(sim::seconds(1));
    g.set_down(false);
    EXPECT_EQ(flows.active_flows(), 0u);

    tx->send_to(b.address(), 1000, util::ByteBuffer(10, 1));
    net.run_for(sim::seconds(1));
    EXPECT_EQ(delivered, 2) << "forwarding resumes without any reconstruction step";
    EXPECT_EQ(flows.active_flows(), 1u) << "accounting rebuilds itself from traffic";
}

TEST(GatewayCrash, LearnedRoutesDieStaticSurvive) {
    Internetwork net(77);
    Gateway& g = net.add_gateway("g");
    Host& h = net.add_host("h");
    net.connect(g, h, link::presets::ethernet_hop());
    ip::Route learned;
    learned.prefix = Ipv4Prefix::parse("10.9.9.0/24");
    learned.origin = "dv";
    g.ip().routing_table().install(learned);
    ip::Route configured;
    configured.prefix = Ipv4Prefix::parse("10.8.8.0/24");
    configured.origin = "static";
    g.ip().routing_table().install(configured);

    g.set_down(true);
    g.set_down(false);
    EXPECT_FALSE(g.ip().routing_table().find(learned.prefix).has_value());
    EXPECT_TRUE(g.ip().routing_table().find(configured.prefix).has_value());
}

TEST(HostDefaults, PreferGatewayNeighbor) {
    Internetwork net(78);
    Host& a = net.add_host("a");
    Host& peer = net.add_host("peer");
    Gateway& g = net.add_gateway("g");
    net.connect(a, peer, link::presets::ethernet_hop());  // host neighbor first
    net.connect(a, g, link::presets::ethernet_hop());
    net.install_host_default_routes();
    const auto def = a.ip().routing_table().lookup(Ipv4Address(99, 99, 99, 99));
    ASSERT_TRUE(def.has_value());
    EXPECT_EQ(def->next_hop, g.ip().interface_address(0))
        << "default routes should point at gateways, not peer hosts";
}

}  // namespace
}  // namespace catenet::core
