// Routing at scale: the historical infinity=16 diameter wall, convergence
// on randomized topologies (property sweep), and routing-protocol traffic
// overhead growth.
#include <gtest/gtest.h>

#include "core/internetwork.h"
#include "ip/protocols.h"
#include "link/presets.h"

namespace catenet::routing {
namespace {

DvConfig fast_dv(std::uint32_t infinity = 16) {
    DvConfig c;
    c.period = sim::seconds(1);
    c.route_timeout = sim::milliseconds(3500);
    c.infinity = infinity;
    return c;
}

TEST(DvScale, HistoricalInfinity16CapsTheDiameter) {
    // A 20-gateway chain: with infinity 16, the far end's subnet is
    // unreachable from the near end (metric saturates); with a larger
    // infinity the same topology converges. This is the RIP-era scaling
    // wall that motivated richer routing, noted in E4.
    for (const std::uint32_t infinity : {16u, 64u}) {
        core::Internetwork net(111);
        core::Host& near = net.add_host("near");
        core::Host& far = net.add_host("far");
        std::vector<core::Gateway*> gws;
        for (int i = 0; i < 20; ++i) {
            gws.push_back(&net.add_gateway("g" + std::to_string(i)));
            if (i > 0) net.connect(*gws[i - 1], *gws[i], link::presets::ethernet_hop());
        }
        net.connect(near, *gws.front(), link::presets::ethernet_hop());
        net.connect(far, *gws.back(), link::presets::ethernet_hop());
        for (auto* g : gws) g->enable_distance_vector(fast_dv(infinity));
        net.install_host_default_routes();
        net.run_for(sim::seconds(60));

        const auto route = gws.front()->ip().routing_table().lookup(far.address());
        if (infinity == 16) {
            EXPECT_FALSE(route.has_value()) << "metric must saturate at 16";
        } else {
            ASSERT_TRUE(route.has_value()) << "larger infinity must converge";
            // far's subnet is connected at g19 and advertised at metric 0,
            // so g0 sees it 19 advertisement hops later.
            EXPECT_EQ(route->metric, 19u);
        }
    }
}

// Property: on a random connected gateway graph, DV converges to full
// host-to-host reachability, and reachability actually works (pings).
class RandomGraphConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphConvergence, ConvergesAndRoutes) {
    const std::uint64_t seed = GetParam();
    core::Internetwork net(seed);
    util::Rng rng(seed * 31 + 7);

    constexpr int kGateways = 8;
    std::vector<core::Gateway*> gws;
    for (int i = 0; i < kGateways; ++i) {
        gws.push_back(&net.add_gateway("g" + std::to_string(i)));
    }
    // Random spanning tree (guarantees connectivity) + extra chords.
    for (int i = 1; i < kGateways; ++i) {
        const auto parent = static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(i - 1)));
        net.connect(*gws[parent], *gws[i], link::presets::ethernet_hop());
    }
    for (int c = 0; c < 4; ++c) {
        const auto x = static_cast<int>(rng.uniform(0, kGateways - 1));
        const auto y = static_cast<int>(rng.uniform(0, kGateways - 1));
        if (x != y) net.connect(*gws[x], *gws[y], link::presets::ethernet_hop());
    }
    std::vector<core::Host*> hosts;
    for (int i = 0; i < 3; ++i) {
        hosts.push_back(&net.add_host("h" + std::to_string(i)));
        const auto at = static_cast<int>(rng.uniform(0, kGateways - 1));
        net.connect(*hosts.back(), *gws[at], link::presets::ethernet_hop());
    }
    for (auto* g : gws) g->enable_distance_vector(fast_dv(64));
    net.install_host_default_routes();
    net.run_for(sim::seconds(30));

    // All-pairs ping.
    int replies = 0;
    int expected = 0;
    for (auto* src : hosts) {
        src->ip().register_protocol(
            ip::kProtoIcmp,
            [&replies](const ip::Ipv4Header&, std::span<const std::uint8_t> p,
                       std::size_t) {
                auto m = ip::decode_icmp(p);
                if (m && m->type == ip::IcmpType::EchoReply) ++replies;
            });
    }
    for (auto* src : hosts) {
        for (auto* dst : hosts) {
            if (src == dst) continue;
            ASSERT_TRUE(src->ip().ping(dst->address(), 1, 1)) << "seed " << seed;
            ++expected;
        }
    }
    net.run_for(sim::seconds(5));
    EXPECT_EQ(replies, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphConvergence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DvOverhead, UpdateTrafficScalesWithTopologySize) {
    // Routing chatter is the standing cost of distributed management.
    std::vector<std::uint64_t> totals;
    for (int n : {3, 6, 12}) {
        core::Internetwork net(112);
        std::vector<core::Gateway*> gws;
        for (int i = 0; i < n; ++i) {
            gws.push_back(&net.add_gateway("g" + std::to_string(i)));
            if (i > 0) net.connect(*gws[i - 1], *gws[i], link::presets::ethernet_hop());
        }
        for (auto* g : gws) g->enable_distance_vector(fast_dv(64));
        net.run_for(sim::seconds(30));
        std::uint64_t updates = 0;
        for (auto* g : gws) updates += g->distance_vector()->stats().updates_sent;
        totals.push_back(updates);
    }
    EXPECT_LT(totals[0], totals[1]);
    EXPECT_LT(totals[1], totals[2]);
}

TEST(DvTriggered, BadNewsPropagatesFastOnlyWithTriggers) {
    // Chain g3 - g1 - g2(h). When g1-g2 dies, g1 invalidates instantly
    // (carrier loss); how fast g3 learns depends on triggered updates:
    // with them the poison arrives in milliseconds, without them g3 waits
    // for g1's next 10 s periodic.
    for (const bool triggered : {true, false}) {
        core::Internetwork net(113);
        core::Gateway& g1 = net.add_gateway("g1");
        core::Gateway& g2 = net.add_gateway("g2");
        core::Gateway& g3 = net.add_gateway("g3");
        core::Host& h = net.add_host("h");
        net.connect(g3, g1, link::presets::ethernet_hop());
        const auto direct = net.connect(g1, g2, link::presets::ethernet_hop());
        net.connect(g2, h, link::presets::ethernet_hop());
        DvConfig config;
        config.period = sim::seconds(10);  // slow periodic
        config.route_timeout = sim::seconds(35);
        config.triggered_updates = triggered;
        g1.enable_distance_vector(config);
        g2.enable_distance_vector(config);
        g3.enable_distance_vector(config);
        net.run_for(sim::seconds(40));
        ASSERT_TRUE(g3.ip().routing_table().lookup(h.address()).has_value());

        net.fail_link(direct);
        const auto before = net.sim().now();
        double lost_at = -1;
        for (int tick = 0; tick < 60; ++tick) {
            net.run_for(sim::milliseconds(250));
            if (!g3.ip().routing_table().lookup(h.address()).has_value()) {
                lost_at = (net.sim().now() - before).seconds();
                break;
            }
        }
        ASSERT_GE(lost_at, 0.0) << "triggered=" << triggered;
        if (triggered) {
            EXPECT_LT(lost_at, 2.0) << "triggered poison must beat the 10 s period";
        } else {
            EXPECT_GT(lost_at, 4.0) << "without triggers, the period dominates";
        }
    }
}

}  // namespace
}  // namespace catenet::routing
