// Routing at scale: the historical infinity=16 diameter wall, convergence
// on randomized topologies (property sweep), and routing-protocol traffic
// overhead growth.
#include <gtest/gtest.h>

#include "core/internetwork.h"
#include "ip/protocols.h"
#include "ip/routing_table.h"
#include "link/presets.h"

namespace catenet::routing {
namespace {

DvConfig fast_dv(std::uint32_t infinity = 16) {
    DvConfig c;
    c.period = sim::seconds(1);
    c.route_timeout = sim::milliseconds(3500);
    c.infinity = infinity;
    return c;
}

TEST(DvScale, HistoricalInfinity16CapsTheDiameter) {
    // A 20-gateway chain: with infinity 16, the far end's subnet is
    // unreachable from the near end (metric saturates); with a larger
    // infinity the same topology converges. This is the RIP-era scaling
    // wall that motivated richer routing, noted in E4.
    for (const std::uint32_t infinity : {16u, 64u}) {
        core::Internetwork net(111);
        core::Host& near = net.add_host("near");
        core::Host& far = net.add_host("far");
        std::vector<core::Gateway*> gws;
        for (int i = 0; i < 20; ++i) {
            gws.push_back(&net.add_gateway("g" + std::to_string(i)));
            if (i > 0) net.connect(*gws[i - 1], *gws[i], link::presets::ethernet_hop());
        }
        net.connect(near, *gws.front(), link::presets::ethernet_hop());
        net.connect(far, *gws.back(), link::presets::ethernet_hop());
        for (auto* g : gws) g->enable_distance_vector(fast_dv(infinity));
        net.install_host_default_routes();
        net.run_for(sim::seconds(60));

        const auto route = gws.front()->ip().routing_table().lookup(far.address());
        if (infinity == 16) {
            EXPECT_FALSE(route.has_value()) << "metric must saturate at 16";
        } else {
            ASSERT_TRUE(route.has_value()) << "larger infinity must converge";
            // far's subnet is connected at g19 and advertised at metric 0,
            // so g0 sees it 19 advertisement hops later.
            EXPECT_EQ(route->metric, 19u);
        }
    }
}

// Property: on a random connected gateway graph, DV converges to full
// host-to-host reachability, and reachability actually works (pings).
class RandomGraphConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphConvergence, ConvergesAndRoutes) {
    const std::uint64_t seed = GetParam();
    core::Internetwork net(seed);
    util::Rng rng(seed * 31 + 7);

    constexpr int kGateways = 8;
    std::vector<core::Gateway*> gws;
    for (int i = 0; i < kGateways; ++i) {
        gws.push_back(&net.add_gateway("g" + std::to_string(i)));
    }
    // Random spanning tree (guarantees connectivity) + extra chords.
    for (int i = 1; i < kGateways; ++i) {
        const auto parent = static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(i - 1)));
        net.connect(*gws[parent], *gws[i], link::presets::ethernet_hop());
    }
    for (int c = 0; c < 4; ++c) {
        const auto x = static_cast<int>(rng.uniform(0, kGateways - 1));
        const auto y = static_cast<int>(rng.uniform(0, kGateways - 1));
        if (x != y) net.connect(*gws[x], *gws[y], link::presets::ethernet_hop());
    }
    std::vector<core::Host*> hosts;
    for (int i = 0; i < 3; ++i) {
        hosts.push_back(&net.add_host("h" + std::to_string(i)));
        const auto at = static_cast<int>(rng.uniform(0, kGateways - 1));
        net.connect(*hosts.back(), *gws[at], link::presets::ethernet_hop());
    }
    for (auto* g : gws) g->enable_distance_vector(fast_dv(64));
    net.install_host_default_routes();
    net.run_for(sim::seconds(30));

    // All-pairs ping.
    int replies = 0;
    int expected = 0;
    for (auto* src : hosts) {
        src->ip().register_protocol(
            ip::kProtoIcmp,
            [&replies](const ip::Ipv4Header&, std::span<const std::uint8_t> p,
                       std::size_t) {
                auto m = ip::decode_icmp(p);
                if (m && m->type == ip::IcmpType::EchoReply) ++replies;
            });
    }
    for (auto* src : hosts) {
        for (auto* dst : hosts) {
            if (src == dst) continue;
            ASSERT_TRUE(src->ip().ping(dst->address(), 1, 1)) << "seed " << seed;
            ++expected;
        }
    }
    net.run_for(sim::seconds(5));
    EXPECT_EQ(replies, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphConvergence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DvOverhead, UpdateTrafficScalesWithTopologySize) {
    // Routing chatter is the standing cost of distributed management.
    std::vector<std::uint64_t> totals;
    for (int n : {3, 6, 12}) {
        core::Internetwork net(112);
        std::vector<core::Gateway*> gws;
        for (int i = 0; i < n; ++i) {
            gws.push_back(&net.add_gateway("g" + std::to_string(i)));
            if (i > 0) net.connect(*gws[i - 1], *gws[i], link::presets::ethernet_hop());
        }
        for (auto* g : gws) g->enable_distance_vector(fast_dv(64));
        net.run_for(sim::seconds(30));
        std::uint64_t updates = 0;
        for (auto* g : gws) updates += g->distance_vector()->stats().updates_sent;
        totals.push_back(updates);
    }
    EXPECT_LT(totals[0], totals[1]);
    EXPECT_LT(totals[1], totals[2]);
}

TEST(DvTriggered, BadNewsPropagatesFastOnlyWithTriggers) {
    // Chain g3 - g1 - g2(h). When g1-g2 dies, g1 invalidates instantly
    // (carrier loss); how fast g3 learns depends on triggered updates:
    // with them the poison arrives in milliseconds, without them g3 waits
    // for g1's next 10 s periodic.
    for (const bool triggered : {true, false}) {
        core::Internetwork net(113);
        core::Gateway& g1 = net.add_gateway("g1");
        core::Gateway& g2 = net.add_gateway("g2");
        core::Gateway& g3 = net.add_gateway("g3");
        core::Host& h = net.add_host("h");
        net.connect(g3, g1, link::presets::ethernet_hop());
        const auto direct = net.connect(g1, g2, link::presets::ethernet_hop());
        net.connect(g2, h, link::presets::ethernet_hop());
        DvConfig config;
        config.period = sim::seconds(10);  // slow periodic
        config.route_timeout = sim::seconds(35);
        config.triggered_updates = triggered;
        g1.enable_distance_vector(config);
        g2.enable_distance_vector(config);
        g3.enable_distance_vector(config);
        net.run_for(sim::seconds(40));
        ASSERT_TRUE(g3.ip().routing_table().lookup(h.address()).has_value());

        net.fail_link(direct);
        const auto before = net.sim().now();
        double lost_at = -1;
        for (int tick = 0; tick < 60; ++tick) {
            net.run_for(sim::milliseconds(250));
            if (!g3.ip().routing_table().lookup(h.address()).has_value()) {
                lost_at = (net.sim().now() - before).seconds();
                break;
            }
        }
        ASSERT_GE(lost_at, 0.0) << "triggered=" << triggered;
        if (triggered) {
            EXPECT_LT(lost_at, 2.0) << "triggered poison must beat the 10 s period";
        } else {
            EXPECT_GT(lost_at, 4.0) << "without triggers, the period dominates";
        }
    }
}

// --- RoutingTable structure at population scale ------------------------------
//
// The flat sorted-array FIB (binary-search install/find, 33-bit length
// mask, bulk_load batch path) must behave exactly like the naive table it
// replaced, at sizes where the difference matters.

TEST(FibBulkLoad, MatchesSequentialInstalls) {
    // The same 4096-route set loaded both ways must produce identical
    // snapshots and identical lookups.
    std::vector<ip::Route> batch;
    for (std::uint32_t i = 0; i < 4096; ++i) {
        ip::Route r;
        r.prefix = util::Ipv4Prefix(util::Ipv4Address(10, (i >> 8) & 0xff, i & 0xff, 0),
                                    24);
        r.next_hop = util::Ipv4Address(192, 168, 0, 1 + (i % 200));
        r.ifindex = i % 4;
        r.origin = "static";
        batch.push_back(r);
    }
    ip::RoutingTable sequential;
    for (const auto& r : batch) sequential.install(r);
    ip::RoutingTable bulk;
    bulk.bulk_load(batch);

    ASSERT_EQ(sequential.size(), bulk.size());
    const auto a = sequential.routes();
    const auto b = bulk.routes();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prefix, b[i].prefix);
        EXPECT_EQ(a[i].next_hop, b[i].next_hop);
        EXPECT_EQ(a[i].ifindex, b[i].ifindex);
    }
    for (std::uint32_t i = 0; i < 4096; i += 37) {
        const util::Ipv4Address dst(10, (i >> 8) & 0xff, i & 0xff, 99);
        const auto ra = sequential.lookup(dst);
        const auto rb = bulk.lookup(dst);
        ASSERT_TRUE(ra.has_value());
        ASSERT_TRUE(rb.has_value());
        EXPECT_EQ(ra->next_hop, rb->next_hop);
    }
}

TEST(FibBulkLoad, LaterDuplicateWinsLikeSequentialInstall) {
    ip::Route first;
    first.prefix = util::Ipv4Prefix::parse("10.1.0.0/16");
    first.next_hop = util::Ipv4Address(1, 1, 1, 1);
    ip::Route second = first;
    second.next_hop = util::Ipv4Address(2, 2, 2, 2);

    ip::RoutingTable table;
    table.bulk_load(std::vector<ip::Route>{first, second});
    EXPECT_EQ(table.size(), 1u);
    const auto found = table.find(first.prefix);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->next_hop, second.next_hop) << "batch order is install order";
}

TEST(FibBulkLoad, UpdatesExistingRoutesInPlace) {
    // A pointer handed out before a bulk_load must stay valid and observe
    // the batch's replacement — the generation-checked route cache relies
    // on exactly this interning contract.
    ip::RoutingTable table;
    ip::Route seed;
    seed.prefix = util::Ipv4Prefix::parse("10.5.0.0/16");
    seed.next_hop = util::Ipv4Address(1, 1, 1, 1);
    table.install(seed);
    const auto before = table.find(seed.prefix);
    ASSERT_TRUE(before.has_value());
    const auto generation = table.generation();

    ip::Route replacement = seed;
    replacement.next_hop = util::Ipv4Address(9, 9, 9, 9);
    ip::Route fresh;
    fresh.prefix = util::Ipv4Prefix::parse("10.6.0.0/16");
    fresh.next_hop = util::Ipv4Address(8, 8, 8, 8);
    table.bulk_load(std::vector<ip::Route>{replacement, fresh});

    EXPECT_EQ(before.get(), table.find(seed.prefix).get()) << "same interned node";
    EXPECT_EQ(before->next_hop, replacement.next_hop) << "updated in place";
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.generation(), generation + 1) << "one bump per batch";
}

TEST(FibBinarySearch, LongestPrefixWinsAcrossLengths) {
    ip::RoutingTable table;
    const auto add = [&](const char* prefix, std::uint8_t octet) {
        ip::Route r;
        r.prefix = util::Ipv4Prefix::parse(prefix);
        r.next_hop = util::Ipv4Address(octet, octet, octet, octet);
        table.install(r);
    };
    add("0.0.0.0/0", 1);
    add("10.0.0.0/8", 2);
    add("10.20.0.0/16", 3);
    add("10.20.30.0/24", 4);

    EXPECT_EQ(table.lookup(util::Ipv4Address(10, 20, 30, 5))->next_hop.value(),
              util::Ipv4Address(4, 4, 4, 4).value());
    EXPECT_EQ(table.lookup(util::Ipv4Address(10, 20, 99, 5))->next_hop.value(),
              util::Ipv4Address(3, 3, 3, 3).value());
    EXPECT_EQ(table.lookup(util::Ipv4Address(10, 99, 99, 5))->next_hop.value(),
              util::Ipv4Address(2, 2, 2, 2).value());
    EXPECT_EQ(table.lookup(util::Ipv4Address(99, 99, 99, 5))->next_hop.value(),
              util::Ipv4Address(1, 1, 1, 1).value());

    // Removing the most specific falls back to the next length, and the
    // occupancy mask must not strand the now-empty /24 bucket.
    EXPECT_TRUE(table.remove(util::Ipv4Prefix::parse("10.20.30.0/24")));
    EXPECT_EQ(table.lookup(util::Ipv4Address(10, 20, 30, 5))->next_hop.value(),
              util::Ipv4Address(3, 3, 3, 3).value());
    EXPECT_FALSE(table.remove(util::Ipv4Prefix::parse("10.20.30.0/24")));
}

TEST(FibBinarySearch, RemoveByOriginRebuildsCounts) {
    ip::RoutingTable table;
    for (std::uint32_t i = 0; i < 64; ++i) {
        ip::Route r;
        r.prefix = util::Ipv4Prefix(util::Ipv4Address(10, 0, i, 0), 24);
        r.next_hop = util::Ipv4Address(1, 1, 1, 1);
        r.origin = (i % 2 == 0) ? "dv" : "static";
        table.install(r);
    }
    table.remove_by_origin("dv");
    EXPECT_EQ(table.size(), 32u);
    EXPECT_FALSE(table.lookup(util::Ipv4Address(10, 0, 2, 9)).has_value());
    EXPECT_TRUE(table.lookup(util::Ipv4Address(10, 0, 3, 9)).has_value());
}

}  // namespace
}  // namespace catenet::routing
