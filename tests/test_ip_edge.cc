// IP edge cases: overlapping and pathological fragments, reassembly
// soft-state bounds, options handling, identification reuse, and error-
// generation restraint.
#include <gtest/gtest.h>

#include "core/internetwork.h"
#include "ip/ip_stack.h"
#include "ip/protocols.h"
#include "ip/reassembly.h"
#include "link/presets.h"
#include "util/checksum.h"

namespace catenet::ip {
namespace {

using util::Ipv4Address;

struct ReasmEdge : ::testing::Test {
    sim::Simulator sim;
    Reassembler reasm{sim, sim::seconds(15)};

    Ipv4Header frag(std::uint16_t id, std::size_t offset, bool more) {
        Ipv4Header h;
        h.identification = id;
        h.protocol = kProtoUdp;
        h.src = Ipv4Address(1, 1, 1, 1);
        h.dst = Ipv4Address(2, 2, 2, 2);
        h.fragment_offset = static_cast<std::uint16_t>(offset / 8);
        h.more_fragments = more;
        return h;
    }
};

TEST_F(ReasmEdge, OverlappingFragmentsStillComplete) {
    // Two fragments overlapping by 8 bytes; the datagram must complete
    // with a consistent byte for every position.
    util::ByteBuffer first(16, 0xaa);
    util::ByteBuffer second(16, 0xbb);  // covers [8, 24)
    reasm.add_fragment(frag(1, 0, true), first);
    auto done = reasm.add_fragment(frag(1, 8, false), second);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->size(), 24u);
    EXPECT_EQ((*done)[0], 0xaa);
    EXPECT_EQ((*done)[23], 0xbb);
}

TEST_F(ReasmEdge, FragmentEntirelyInsideAnother) {
    util::ByteBuffer outer(32, 0x11);
    util::ByteBuffer inner(8, 0x22);  // [8, 16), redundant
    reasm.add_fragment(frag(2, 8, true), inner);
    auto done = reasm.add_fragment(frag(2, 0, false), outer);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->size(), 32u);
}

TEST_F(ReasmEdge, ZeroLengthFragmentIsHarmless) {
    util::ByteBuffer empty;
    EXPECT_FALSE(reasm.add_fragment(frag(3, 0, true), empty).has_value());
    util::ByteBuffer tail(8, 0x33);
    // Note the datagram is [0,8) carried entirely by the tail at offset 0.
    auto done = reasm.add_fragment(frag(3, 0, false), tail);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->size(), 8u);
}

TEST_F(ReasmEdge, ManyIncompleteDatagramsAreBoundedByTimeout) {
    // A fragment flood creates soft state that the timeout reclaims.
    for (std::uint16_t id = 0; id < 200; ++id) {
        reasm.add_fragment(frag(id, 0, true), util::ByteBuffer(8, 1));
    }
    EXPECT_EQ(reasm.pending(), 200u);
    sim.run_until(sim::seconds(20));
    // Trigger the sweep.
    reasm.add_fragment(frag(9999, 0, true), util::ByteBuffer(8, 1));
    EXPECT_EQ(reasm.pending(), 1u) << "flood state must evaporate";
    EXPECT_EQ(reasm.stats().timeouts, 200u);
}

TEST_F(ReasmEdge, SameIdentificationAfterCompletionStartsFresh) {
    util::ByteBuffer half(8, 0x44);
    reasm.add_fragment(frag(7, 0, true), half);
    auto done = reasm.add_fragment(frag(7, 8, false), half);
    ASSERT_TRUE(done.has_value());
    // Reusing id 7: must behave as a brand new datagram.
    EXPECT_FALSE(reasm.add_fragment(frag(7, 0, true), half).has_value());
    done = reasm.add_fragment(frag(7, 8, false), half);
    EXPECT_TRUE(done.has_value());
}

TEST(IpOptions, HeaderWithOptionsIsDecoded) {
    // Hand-build a datagram with IHL=6 (4 bytes of options).
    util::BufferWriter w;
    w.put_u8(0x46);  // version 4, IHL 6
    w.put_u8(0);
    w.put_u16(24 + 4);  // total: 24 header + 4 payload
    w.put_u16(0x1234);
    w.put_u16(0);
    w.put_u8(64);
    w.put_u8(kProtoUdp);
    w.put_u16(0);  // checksum placeholder
    w.put_u32(Ipv4Address(1, 2, 3, 4).value());
    w.put_u32(Ipv4Address(5, 6, 7, 8).value());
    w.put_u8(7);  // record-route option kind
    w.put_u8(3);
    w.put_u8(4);
    w.put_u8(0);  // end of options
    const auto checksum = util::internet_checksum(
        std::span<const std::uint8_t>(w.data().data(), 24));
    w.patch_u16(10, checksum);
    w.put_bytes(util::ByteBuffer{9, 9, 9, 9});

    DecodedDatagram d;
    ASSERT_TRUE(decode_datagram(w.data(), d));
    EXPECT_EQ(d.header_length, 24u);
    EXPECT_EQ(d.payload_length, 4u);
    EXPECT_EQ(payload_of(w.data(), d)[0], 9);
}

TEST(IcmpRestraint, NoErrorAboutAnError) {
    // A time-exceeded about an inbound ICMP error must NOT be generated:
    // send an unreachable-eliciting datagram whose payload is itself an
    // ICMP error. The stack must stay silent rather than loop.
    core::Internetwork net(131);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();

    // Craft an ICMP error message and send it to b with TTL 1 so it dies
    // at the gateway. The gateway must not emit Time Exceeded about it.
    const auto inner = IcmpMessage::error(IcmpType::DestinationUnreachable, 0,
                                          util::ByteBuffer(28, 0));
    SendOptions opts;
    opts.ttl = 1;
    int errors_back = 0;
    a.ip().set_icmp_error_handler(
        [&](const IcmpMessage&, Ipv4Address) { ++errors_back; });
    a.ip().send(kProtoIcmp, b.address(), encode_icmp(inner), opts);
    net.run_for(sim::seconds(1));
    EXPECT_EQ(errors_back, 0) << "errors about errors are forbidden";
    EXPECT_EQ(g.ip().stats().icmp_errors_sent, 0u);
}

TEST(IcmpRestraint, NoErrorAboutNonFirstFragment) {
    core::Internetwork net(132);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    core::Gateway& g = net.add_gateway("g");
    net.connect(a, g, link::presets::ethernet_hop());
    net.connect(g, b, link::presets::ethernet_hop());
    net.use_static_routes();

    // A non-first fragment with TTL 1 expires at the gateway: silence.
    // Build it by sending a fragmented datagram with TTL 1: the gateway
    // drops each fragment but may only report about the first.
    link::LinkParams small = link::presets::ethernet_hop();
    (void)small;
    int errors_back = 0;
    a.ip().set_icmp_error_handler(
        [&](const IcmpMessage& m, Ipv4Address) {
            if (m.type == IcmpType::TimeExceeded) ++errors_back;
        });
    SendOptions opts;
    opts.ttl = 1;
    // 3000 bytes over a 1500 MTU: two fragments leave host a.
    a.ip().send(200, b.address(), util::ByteBuffer(3000, 0x55), opts);
    net.run_for(sim::seconds(1));
    EXPECT_EQ(errors_back, 1) << "exactly one error: about the first fragment only";
}

TEST(IpStats, HeaderChecksumProtectsOnlyTheHeader) {
    // The end-to-end argument in miniature: IP's checksum covers 20 of
    // ~1020 bytes, so most corruption sails through the internet layer and
    // lands on the transport. IP only discards when the *header* is hit.
    core::Internetwork net(133);
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");
    link::LinkParams noisy = link::presets::ethernet_hop();
    noisy.bit_error_rate = 1e-4;  // nearly every 1000-byte packet corrupted
    net.connect(a, b, noisy);
    net.use_static_routes();
    int delivered = 0;
    int payload_corrupt = 0;
    b.ip().register_protocol(200, [&](const Ipv4Header&,
                                      std::span<const std::uint8_t> payload,
                                      std::size_t) {
        ++delivered;
        for (auto byte : payload) {
            if (byte != 0x5a) {
                ++payload_corrupt;
                break;
            }
        }
    });
    constexpr int kSent = 100;
    for (int i = 0; i < kSent; ++i) {
        a.ip().send(200, b.address(), util::ByteBuffer(1000, 0x5a));
        net.run_for(sim::milliseconds(10));
    }
    net.run_for(sim::seconds(1));
    const auto& stats = b.ip().stats();
    EXPECT_GT(delivered, kSent / 2) << "payload-only corruption passes IP";
    EXPECT_GT(payload_corrupt, kSent / 4)
        << "the application sees the damage — transports must checksum";
    // Header hits happen at roughly 20/1020 of flips: a few drops.
    EXPECT_GT(stats.dropped_bad_checksum + stats.dropped_malformed, 0u);
}

}  // namespace
}  // namespace catenet::ip
