// Application-library tests: bulk transfer, interactive echo, voice over
// both transports, request/response — the workloads behind the goal-2
// experiments, validated here in isolation.
#include <gtest/gtest.h>

#include "app/bulk.h"
#include "app/interactive.h"
#include "app/request_response.h"
#include "app/voice.h"
#include "core/internetwork.h"
#include "link/presets.h"

namespace catenet::app {
namespace {

struct AppFixture : ::testing::Test {
    core::Internetwork net{81};
    core::Host& a = net.add_host("a");
    core::Host& b = net.add_host("b");

    void wire(const link::LinkParams& params = link::presets::ethernet_hop()) {
        net.connect(a, b, params);
        net.use_static_routes();
    }
};

TEST_F(AppFixture, BulkTransferCompletesAndValidates) {
    wire();
    BulkServer server(b, 21);
    BulkSender sender(a, b.address(), 21, 300 * 1024);
    bool completion_fired = false;
    sender.on_complete = [&] { completion_fired = true; };
    sender.start();
    net.run_for(sim::seconds(30));
    EXPECT_TRUE(sender.finished());
    EXPECT_TRUE(completion_fired);
    EXPECT_EQ(server.total_bytes_received(), 300u * 1024u);
    EXPECT_EQ(server.pattern_errors(), 0u);
    EXPECT_GT(sender.throughput_bps(), 0.0);
}

TEST_F(AppFixture, BulkThroughputTracksLinkRate) {
    wire(link::presets::leased_line());  // 56 kbit/s
    BulkServer server(b, 21);
    BulkSender sender(a, b.address(), 21, 56 * 1024);
    sender.start();
    net.run_for(sim::seconds(60));
    ASSERT_TRUE(sender.finished());
    // Achievable goodput is below line rate (headers, acks) but within 2x.
    EXPECT_LT(sender.throughput_bps(), 56000.0);
    EXPECT_GT(sender.throughput_bps(), 25000.0);
}

TEST_F(AppFixture, ConcurrentBulkSendersShareServer) {
    wire();
    BulkServer server(b, 21);
    BulkSender s1(a, b.address(), 21, 50 * 1024);
    BulkSender s2(a, b.address(), 21, 50 * 1024);
    s1.start();
    s2.start();
    net.run_for(sim::seconds(30));
    EXPECT_TRUE(s1.finished());
    EXPECT_TRUE(s2.finished());
    EXPECT_EQ(server.total_bytes_received(), 100u * 1024u);
    EXPECT_EQ(server.connections_completed(), 2u);
}

TEST_F(AppFixture, InteractiveEchoMeasuresRtt) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(25);  // 50 ms RTT floor
    wire(params);
    EchoServer server(b, 23);
    InteractiveConfig config;
    config.mean_interkey = sim::milliseconds(100);
    config.tcp.nagle = false;
    InteractiveClient client(a, b.address(), 23, config);
    client.start();
    net.run_for(sim::seconds(30));
    client.stop();
    EXPECT_GT(client.keystrokes_sent(), 100u);
    EXPECT_GT(client.echoes_received(), client.keystrokes_sent() * 9 / 10);
    EXPECT_GE(client.echo_rtts_ms().median(), 50.0);
    EXPECT_LT(client.echo_rtts_ms().median(), 120.0);
}

TEST_F(AppFixture, VoiceOverUdpQuietPath) {
    wire();
    VoiceOverUdp call(a, b, 5004);
    call.start(sim::seconds(20));
    net.run_for(sim::seconds(25));
    const auto r = call.report();
    EXPECT_EQ(r.frames_sent, 1000u);
    EXPECT_GT(r.usable_fraction, 0.99);
    EXPECT_LT(r.jitter_ms, 1.0);
}

TEST_F(AppFixture, VoiceOverUdpLossyPathDegradesGracefully) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = 0.05;
    wire(params);
    VoiceOverUdp call(a, b, 5004);
    call.start(sim::seconds(20));
    net.run_for(sim::seconds(25));
    const auto r = call.report();
    EXPECT_NEAR(r.loss_fraction, 0.05, 0.03) << "UDP loses frames, nothing else";
    EXPECT_LT(r.p95_latency_ms, 50.0) << "survivors arrive on time";
}

TEST_F(AppFixture, VoiceOverTcpLossyPathStalls) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.drop_probability = 0.05;
    wire(params);
    VoiceOverTcp call(a, b, 5005);
    call.start(sim::seconds(20));
    net.run_for(sim::seconds(30));
    const auto r = call.report();
    // Everything arrives (reliable), but retransmission stalls make many
    // frames useless for real-time playout.
    EXPECT_LT(r.loss_fraction, 0.05);
    EXPECT_GT(r.frames_late, 0u);
    EXPECT_GT(r.p99_latency_ms, 100.0)
        << "head-of-line blocking must show up in the tail";
}

TEST_F(AppFixture, RpcPersistentConnection) {
    wire();
    RpcServer server(b, 111);
    RpcClientConfig config;
    config.mean_interarrival = sim::milliseconds(50);
    config.response_bytes = 256;
    RpcClient client(a, b.address(), 111, config);
    client.start();
    net.run_for(sim::seconds(20));
    client.stop();
    EXPECT_GT(client.requests_sent(), 200u);
    EXPECT_EQ(client.responses_received(), client.requests_sent());
    EXPECT_GT(server.requests_served(), 200u);
    EXPECT_LT(client.latencies_ms().median(), 10.0);
}

TEST_F(AppFixture, RpcConnectionPerRequestPaysHandshake) {
    link::LinkParams params = link::presets::ethernet_hop();
    params.propagation_delay = sim::milliseconds(20);  // 40ms RTT
    wire(params);
    RpcServer server(b, 111);

    RpcClientConfig persistent;
    persistent.mean_interarrival = sim::milliseconds(200);
    RpcClient warm(a, b.address(), 111, persistent);
    warm.start();
    net.run_for(sim::seconds(30));
    warm.stop();

    RpcClientConfig per_request = persistent;
    per_request.connection_per_request = true;
    RpcClient cold(a, b.address(), 111, per_request);
    cold.start();
    net.run_for(sim::seconds(30));
    cold.stop();

    ASSERT_GT(warm.responses_received(), 50u);
    ASSERT_GT(cold.responses_received(), 50u);
    EXPECT_GT(cold.latencies_ms().median(), warm.latencies_ms().median() + 30.0)
        << "per-request connections must pay roughly one extra RTT";
}

}  // namespace
}  // namespace catenet::app
