add_test([=[GrandIntegration.EverythingAtOnce]=]  /root/repo/build/tests/test_grand_integration [==[--gtest_filter=GrandIntegration.EverythingAtOnce]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GrandIntegration.EverythingAtOnce]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_grand_integration_TESTS GrandIntegration.EverythingAtOnce)
