add_test([=[MinimalHost.FullUdpServiceInAFewLines]=]  /root/repo/build/tests/test_minimal_host [==[--gtest_filter=MinimalHost.FullUdpServiceInAFewLines]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MinimalHost.FullUdpServiceInAFewLines]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_minimal_host_TESTS MinimalHost.FullUdpServiceInAFewLines)
