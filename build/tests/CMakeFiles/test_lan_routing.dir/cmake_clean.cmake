file(REMOVE_RECURSE
  "CMakeFiles/test_lan_routing.dir/test_lan_routing.cc.o"
  "CMakeFiles/test_lan_routing.dir/test_lan_routing.cc.o.d"
  "test_lan_routing"
  "test_lan_routing.pdb"
  "test_lan_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lan_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
