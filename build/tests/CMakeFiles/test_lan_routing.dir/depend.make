# Empty dependencies file for test_lan_routing.
# This may be replaced when dependencies are built.
