file(REMOVE_RECURSE
  "CMakeFiles/test_routing_scale.dir/test_routing_scale.cc.o"
  "CMakeFiles/test_routing_scale.dir/test_routing_scale.cc.o.d"
  "test_routing_scale"
  "test_routing_scale.pdb"
  "test_routing_scale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
