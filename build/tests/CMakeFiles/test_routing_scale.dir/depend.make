# Empty dependencies file for test_routing_scale.
# This may be replaced when dependencies are built.
