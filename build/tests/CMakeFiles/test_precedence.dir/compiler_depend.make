# Empty compiler generated dependencies file for test_precedence.
# This may be replaced when dependencies are built.
