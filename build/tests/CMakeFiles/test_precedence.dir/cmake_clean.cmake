file(REMOVE_RECURSE
  "CMakeFiles/test_precedence.dir/test_precedence.cc.o"
  "CMakeFiles/test_precedence.dir/test_precedence.cc.o.d"
  "test_precedence"
  "test_precedence.pdb"
  "test_precedence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_precedence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
