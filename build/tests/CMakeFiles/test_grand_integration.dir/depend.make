# Empty dependencies file for test_grand_integration.
# This may be replaced when dependencies are built.
