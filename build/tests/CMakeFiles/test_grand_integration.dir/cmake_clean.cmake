file(REMOVE_RECURSE
  "CMakeFiles/test_grand_integration.dir/test_grand_integration.cc.o"
  "CMakeFiles/test_grand_integration.dir/test_grand_integration.cc.o.d"
  "test_grand_integration"
  "test_grand_integration.pdb"
  "test_grand_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grand_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
