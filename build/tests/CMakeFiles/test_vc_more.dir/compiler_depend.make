# Empty compiler generated dependencies file for test_vc_more.
# This may be replaced when dependencies are built.
