file(REMOVE_RECURSE
  "CMakeFiles/test_vc_more.dir/test_vc_more.cc.o"
  "CMakeFiles/test_vc_more.dir/test_vc_more.cc.o.d"
  "test_vc_more"
  "test_vc_more.pdb"
  "test_vc_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vc_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
