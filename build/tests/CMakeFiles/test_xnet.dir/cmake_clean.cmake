file(REMOVE_RECURSE
  "CMakeFiles/test_xnet.dir/test_xnet.cc.o"
  "CMakeFiles/test_xnet.dir/test_xnet.cc.o.d"
  "test_xnet"
  "test_xnet.pdb"
  "test_xnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
