# Empty dependencies file for test_xnet.
# This may be replaced when dependencies are built.
