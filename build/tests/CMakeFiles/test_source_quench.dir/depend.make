# Empty dependencies file for test_source_quench.
# This may be replaced when dependencies are built.
