file(REMOVE_RECURSE
  "CMakeFiles/test_source_quench.dir/test_source_quench.cc.o"
  "CMakeFiles/test_source_quench.dir/test_source_quench.cc.o.d"
  "test_source_quench"
  "test_source_quench.pdb"
  "test_source_quench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_source_quench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
