file(REMOVE_RECURSE
  "CMakeFiles/test_realizations.dir/test_realizations.cc.o"
  "CMakeFiles/test_realizations.dir/test_realizations.cc.o.d"
  "test_realizations"
  "test_realizations.pdb"
  "test_realizations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
