# Empty dependencies file for test_realizations.
# This may be replaced when dependencies are built.
