# Empty compiler generated dependencies file for test_ip_edge.
# This may be replaced when dependencies are built.
