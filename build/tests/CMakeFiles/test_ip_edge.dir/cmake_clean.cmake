file(REMOVE_RECURSE
  "CMakeFiles/test_ip_edge.dir/test_ip_edge.cc.o"
  "CMakeFiles/test_ip_edge.dir/test_ip_edge.cc.o.d"
  "test_ip_edge"
  "test_ip_edge.pdb"
  "test_ip_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ip_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
