file(REMOVE_RECURSE
  "CMakeFiles/test_minimal_host.dir/test_minimal_host.cc.o"
  "CMakeFiles/test_minimal_host.dir/test_minimal_host.cc.o.d"
  "test_minimal_host"
  "test_minimal_host.pdb"
  "test_minimal_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimal_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
