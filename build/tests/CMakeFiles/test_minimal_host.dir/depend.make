# Empty dependencies file for test_minimal_host.
# This may be replaced when dependencies are built.
