file(REMOVE_RECURSE
  "CMakeFiles/test_codec_property.dir/test_codec_property.cc.o"
  "CMakeFiles/test_codec_property.dir/test_codec_property.cc.o.d"
  "test_codec_property"
  "test_codec_property.pdb"
  "test_codec_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
