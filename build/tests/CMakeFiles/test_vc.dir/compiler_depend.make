# Empty compiler generated dependencies file for test_vc.
# This may be replaced when dependencies are built.
