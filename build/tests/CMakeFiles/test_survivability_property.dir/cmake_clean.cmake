file(REMOVE_RECURSE
  "CMakeFiles/test_survivability_property.dir/test_survivability_property.cc.o"
  "CMakeFiles/test_survivability_property.dir/test_survivability_property.cc.o.d"
  "test_survivability_property"
  "test_survivability_property.pdb"
  "test_survivability_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_survivability_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
