# Empty dependencies file for test_survivability_property.
# This may be replaced when dependencies are built.
