# Empty compiler generated dependencies file for path_discovery.
# This may be replaced when dependencies are built.
