file(REMOVE_RECURSE
  "CMakeFiles/path_discovery.dir/path_discovery.cpp.o"
  "CMakeFiles/path_discovery.dir/path_discovery.cpp.o.d"
  "path_discovery"
  "path_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
