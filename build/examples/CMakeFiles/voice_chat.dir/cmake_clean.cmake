file(REMOVE_RECURSE
  "CMakeFiles/voice_chat.dir/voice_chat.cpp.o"
  "CMakeFiles/voice_chat.dir/voice_chat.cpp.o.d"
  "voice_chat"
  "voice_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
