# Empty compiler generated dependencies file for voice_chat.
# This may be replaced when dependencies are built.
