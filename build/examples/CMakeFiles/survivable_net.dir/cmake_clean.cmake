file(REMOVE_RECURSE
  "CMakeFiles/survivable_net.dir/survivable_net.cpp.o"
  "CMakeFiles/survivable_net.dir/survivable_net.cpp.o.d"
  "survivable_net"
  "survivable_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survivable_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
