# Empty compiler generated dependencies file for survivable_net.
# This may be replaced when dependencies are built.
