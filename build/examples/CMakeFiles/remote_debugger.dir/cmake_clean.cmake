file(REMOVE_RECURSE
  "CMakeFiles/remote_debugger.dir/remote_debugger.cpp.o"
  "CMakeFiles/remote_debugger.dir/remote_debugger.cpp.o.d"
  "remote_debugger"
  "remote_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
