# Empty dependencies file for remote_debugger.
# This may be replaced when dependencies are built.
