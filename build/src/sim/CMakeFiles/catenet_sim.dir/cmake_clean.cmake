file(REMOVE_RECURSE
  "CMakeFiles/catenet_sim.dir/simulator.cc.o"
  "CMakeFiles/catenet_sim.dir/simulator.cc.o.d"
  "CMakeFiles/catenet_sim.dir/timer.cc.o"
  "CMakeFiles/catenet_sim.dir/timer.cc.o.d"
  "libcatenet_sim.a"
  "libcatenet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
