file(REMOVE_RECURSE
  "libcatenet_sim.a"
)
