# Empty dependencies file for catenet_sim.
# This may be replaced when dependencies are built.
