# Empty dependencies file for catenet_link.
# This may be replaced when dependencies are built.
