file(REMOVE_RECURSE
  "libcatenet_link.a"
)
