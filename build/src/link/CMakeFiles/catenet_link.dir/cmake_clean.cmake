file(REMOVE_RECURSE
  "CMakeFiles/catenet_link.dir/lan.cc.o"
  "CMakeFiles/catenet_link.dir/lan.cc.o.d"
  "CMakeFiles/catenet_link.dir/netif.cc.o"
  "CMakeFiles/catenet_link.dir/netif.cc.o.d"
  "CMakeFiles/catenet_link.dir/point_to_point.cc.o"
  "CMakeFiles/catenet_link.dir/point_to_point.cc.o.d"
  "CMakeFiles/catenet_link.dir/presets.cc.o"
  "CMakeFiles/catenet_link.dir/presets.cc.o.d"
  "CMakeFiles/catenet_link.dir/queue.cc.o"
  "CMakeFiles/catenet_link.dir/queue.cc.o.d"
  "libcatenet_link.a"
  "libcatenet_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
