
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/lan.cc" "src/link/CMakeFiles/catenet_link.dir/lan.cc.o" "gcc" "src/link/CMakeFiles/catenet_link.dir/lan.cc.o.d"
  "/root/repo/src/link/netif.cc" "src/link/CMakeFiles/catenet_link.dir/netif.cc.o" "gcc" "src/link/CMakeFiles/catenet_link.dir/netif.cc.o.d"
  "/root/repo/src/link/point_to_point.cc" "src/link/CMakeFiles/catenet_link.dir/point_to_point.cc.o" "gcc" "src/link/CMakeFiles/catenet_link.dir/point_to_point.cc.o.d"
  "/root/repo/src/link/presets.cc" "src/link/CMakeFiles/catenet_link.dir/presets.cc.o" "gcc" "src/link/CMakeFiles/catenet_link.dir/presets.cc.o.d"
  "/root/repo/src/link/queue.cc" "src/link/CMakeFiles/catenet_link.dir/queue.cc.o" "gcc" "src/link/CMakeFiles/catenet_link.dir/queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/catenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/catenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
