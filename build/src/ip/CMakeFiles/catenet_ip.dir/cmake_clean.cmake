file(REMOVE_RECURSE
  "CMakeFiles/catenet_ip.dir/icmp.cc.o"
  "CMakeFiles/catenet_ip.dir/icmp.cc.o.d"
  "CMakeFiles/catenet_ip.dir/ip_stack.cc.o"
  "CMakeFiles/catenet_ip.dir/ip_stack.cc.o.d"
  "CMakeFiles/catenet_ip.dir/ipv4_header.cc.o"
  "CMakeFiles/catenet_ip.dir/ipv4_header.cc.o.d"
  "CMakeFiles/catenet_ip.dir/reassembly.cc.o"
  "CMakeFiles/catenet_ip.dir/reassembly.cc.o.d"
  "CMakeFiles/catenet_ip.dir/routing_table.cc.o"
  "CMakeFiles/catenet_ip.dir/routing_table.cc.o.d"
  "CMakeFiles/catenet_ip.dir/trace.cc.o"
  "CMakeFiles/catenet_ip.dir/trace.cc.o.d"
  "libcatenet_ip.a"
  "libcatenet_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
