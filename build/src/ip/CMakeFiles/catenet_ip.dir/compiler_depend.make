# Empty compiler generated dependencies file for catenet_ip.
# This may be replaced when dependencies are built.
