
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ip/icmp.cc" "src/ip/CMakeFiles/catenet_ip.dir/icmp.cc.o" "gcc" "src/ip/CMakeFiles/catenet_ip.dir/icmp.cc.o.d"
  "/root/repo/src/ip/ip_stack.cc" "src/ip/CMakeFiles/catenet_ip.dir/ip_stack.cc.o" "gcc" "src/ip/CMakeFiles/catenet_ip.dir/ip_stack.cc.o.d"
  "/root/repo/src/ip/ipv4_header.cc" "src/ip/CMakeFiles/catenet_ip.dir/ipv4_header.cc.o" "gcc" "src/ip/CMakeFiles/catenet_ip.dir/ipv4_header.cc.o.d"
  "/root/repo/src/ip/reassembly.cc" "src/ip/CMakeFiles/catenet_ip.dir/reassembly.cc.o" "gcc" "src/ip/CMakeFiles/catenet_ip.dir/reassembly.cc.o.d"
  "/root/repo/src/ip/routing_table.cc" "src/ip/CMakeFiles/catenet_ip.dir/routing_table.cc.o" "gcc" "src/ip/CMakeFiles/catenet_ip.dir/routing_table.cc.o.d"
  "/root/repo/src/ip/trace.cc" "src/ip/CMakeFiles/catenet_ip.dir/trace.cc.o" "gcc" "src/ip/CMakeFiles/catenet_ip.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/link/CMakeFiles/catenet_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/catenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/catenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
