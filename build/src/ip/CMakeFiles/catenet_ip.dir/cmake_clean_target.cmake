file(REMOVE_RECURSE
  "libcatenet_ip.a"
)
