file(REMOVE_RECURSE
  "CMakeFiles/catenet_app.dir/bulk.cc.o"
  "CMakeFiles/catenet_app.dir/bulk.cc.o.d"
  "CMakeFiles/catenet_app.dir/interactive.cc.o"
  "CMakeFiles/catenet_app.dir/interactive.cc.o.d"
  "CMakeFiles/catenet_app.dir/request_response.cc.o"
  "CMakeFiles/catenet_app.dir/request_response.cc.o.d"
  "CMakeFiles/catenet_app.dir/scenario.cc.o"
  "CMakeFiles/catenet_app.dir/scenario.cc.o.d"
  "CMakeFiles/catenet_app.dir/traceroute.cc.o"
  "CMakeFiles/catenet_app.dir/traceroute.cc.o.d"
  "CMakeFiles/catenet_app.dir/voice.cc.o"
  "CMakeFiles/catenet_app.dir/voice.cc.o.d"
  "CMakeFiles/catenet_app.dir/xnet.cc.o"
  "CMakeFiles/catenet_app.dir/xnet.cc.o.d"
  "libcatenet_app.a"
  "libcatenet_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
