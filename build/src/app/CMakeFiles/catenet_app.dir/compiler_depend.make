# Empty compiler generated dependencies file for catenet_app.
# This may be replaced when dependencies are built.
