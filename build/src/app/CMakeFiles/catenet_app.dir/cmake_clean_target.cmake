file(REMOVE_RECURSE
  "libcatenet_app.a"
)
