file(REMOVE_RECURSE
  "CMakeFiles/catenet_routing.dir/distance_vector.cc.o"
  "CMakeFiles/catenet_routing.dir/distance_vector.cc.o.d"
  "CMakeFiles/catenet_routing.dir/egp.cc.o"
  "CMakeFiles/catenet_routing.dir/egp.cc.o.d"
  "CMakeFiles/catenet_routing.dir/messages.cc.o"
  "CMakeFiles/catenet_routing.dir/messages.cc.o.d"
  "libcatenet_routing.a"
  "libcatenet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
