
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/distance_vector.cc" "src/routing/CMakeFiles/catenet_routing.dir/distance_vector.cc.o" "gcc" "src/routing/CMakeFiles/catenet_routing.dir/distance_vector.cc.o.d"
  "/root/repo/src/routing/egp.cc" "src/routing/CMakeFiles/catenet_routing.dir/egp.cc.o" "gcc" "src/routing/CMakeFiles/catenet_routing.dir/egp.cc.o.d"
  "/root/repo/src/routing/messages.cc" "src/routing/CMakeFiles/catenet_routing.dir/messages.cc.o" "gcc" "src/routing/CMakeFiles/catenet_routing.dir/messages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/catenet_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/catenet_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/catenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/catenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
