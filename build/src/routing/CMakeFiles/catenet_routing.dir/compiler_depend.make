# Empty compiler generated dependencies file for catenet_routing.
# This may be replaced when dependencies are built.
