file(REMOVE_RECURSE
  "libcatenet_routing.a"
)
