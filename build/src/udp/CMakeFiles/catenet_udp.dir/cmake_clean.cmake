file(REMOVE_RECURSE
  "CMakeFiles/catenet_udp.dir/udp.cc.o"
  "CMakeFiles/catenet_udp.dir/udp.cc.o.d"
  "libcatenet_udp.a"
  "libcatenet_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
