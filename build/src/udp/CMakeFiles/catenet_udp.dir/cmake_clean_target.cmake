file(REMOVE_RECURSE
  "libcatenet_udp.a"
)
