# Empty compiler generated dependencies file for catenet_udp.
# This may be replaced when dependencies are built.
