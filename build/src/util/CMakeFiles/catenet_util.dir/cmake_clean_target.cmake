file(REMOVE_RECURSE
  "libcatenet_util.a"
)
