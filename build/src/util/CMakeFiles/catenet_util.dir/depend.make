# Empty dependencies file for catenet_util.
# This may be replaced when dependencies are built.
