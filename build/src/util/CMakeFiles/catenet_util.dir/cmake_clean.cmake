file(REMOVE_RECURSE
  "CMakeFiles/catenet_util.dir/byte_buffer.cc.o"
  "CMakeFiles/catenet_util.dir/byte_buffer.cc.o.d"
  "CMakeFiles/catenet_util.dir/checksum.cc.o"
  "CMakeFiles/catenet_util.dir/checksum.cc.o.d"
  "CMakeFiles/catenet_util.dir/ip_address.cc.o"
  "CMakeFiles/catenet_util.dir/ip_address.cc.o.d"
  "CMakeFiles/catenet_util.dir/logging.cc.o"
  "CMakeFiles/catenet_util.dir/logging.cc.o.d"
  "CMakeFiles/catenet_util.dir/random.cc.o"
  "CMakeFiles/catenet_util.dir/random.cc.o.d"
  "CMakeFiles/catenet_util.dir/stats.cc.o"
  "CMakeFiles/catenet_util.dir/stats.cc.o.d"
  "libcatenet_util.a"
  "libcatenet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
