file(REMOVE_RECURSE
  "libcatenet_vc.a"
)
