
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vc/frame.cc" "src/vc/CMakeFiles/catenet_vc.dir/frame.cc.o" "gcc" "src/vc/CMakeFiles/catenet_vc.dir/frame.cc.o.d"
  "/root/repo/src/vc/host.cc" "src/vc/CMakeFiles/catenet_vc.dir/host.cc.o" "gcc" "src/vc/CMakeFiles/catenet_vc.dir/host.cc.o.d"
  "/root/repo/src/vc/link_arq.cc" "src/vc/CMakeFiles/catenet_vc.dir/link_arq.cc.o" "gcc" "src/vc/CMakeFiles/catenet_vc.dir/link_arq.cc.o.d"
  "/root/repo/src/vc/network.cc" "src/vc/CMakeFiles/catenet_vc.dir/network.cc.o" "gcc" "src/vc/CMakeFiles/catenet_vc.dir/network.cc.o.d"
  "/root/repo/src/vc/switch.cc" "src/vc/CMakeFiles/catenet_vc.dir/switch.cc.o" "gcc" "src/vc/CMakeFiles/catenet_vc.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/link/CMakeFiles/catenet_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/catenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/catenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
