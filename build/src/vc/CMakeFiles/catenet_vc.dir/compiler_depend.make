# Empty compiler generated dependencies file for catenet_vc.
# This may be replaced when dependencies are built.
