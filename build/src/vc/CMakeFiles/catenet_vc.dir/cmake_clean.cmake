file(REMOVE_RECURSE
  "CMakeFiles/catenet_vc.dir/frame.cc.o"
  "CMakeFiles/catenet_vc.dir/frame.cc.o.d"
  "CMakeFiles/catenet_vc.dir/host.cc.o"
  "CMakeFiles/catenet_vc.dir/host.cc.o.d"
  "CMakeFiles/catenet_vc.dir/link_arq.cc.o"
  "CMakeFiles/catenet_vc.dir/link_arq.cc.o.d"
  "CMakeFiles/catenet_vc.dir/network.cc.o"
  "CMakeFiles/catenet_vc.dir/network.cc.o.d"
  "CMakeFiles/catenet_vc.dir/switch.cc.o"
  "CMakeFiles/catenet_vc.dir/switch.cc.o.d"
  "libcatenet_vc.a"
  "libcatenet_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
