# Empty dependencies file for catenet_tcp.
# This may be replaced when dependencies are built.
