file(REMOVE_RECURSE
  "CMakeFiles/catenet_tcp.dir/simple_arq.cc.o"
  "CMakeFiles/catenet_tcp.dir/simple_arq.cc.o.d"
  "CMakeFiles/catenet_tcp.dir/tcp.cc.o"
  "CMakeFiles/catenet_tcp.dir/tcp.cc.o.d"
  "CMakeFiles/catenet_tcp.dir/tcp_header.cc.o"
  "CMakeFiles/catenet_tcp.dir/tcp_header.cc.o.d"
  "libcatenet_tcp.a"
  "libcatenet_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
