file(REMOVE_RECURSE
  "libcatenet_tcp.a"
)
