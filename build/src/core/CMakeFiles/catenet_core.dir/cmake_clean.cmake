file(REMOVE_RECURSE
  "CMakeFiles/catenet_core.dir/flow.cc.o"
  "CMakeFiles/catenet_core.dir/flow.cc.o.d"
  "CMakeFiles/catenet_core.dir/internetwork.cc.o"
  "CMakeFiles/catenet_core.dir/internetwork.cc.o.d"
  "CMakeFiles/catenet_core.dir/node.cc.o"
  "CMakeFiles/catenet_core.dir/node.cc.o.d"
  "CMakeFiles/catenet_core.dir/realizations.cc.o"
  "CMakeFiles/catenet_core.dir/realizations.cc.o.d"
  "libcatenet_core.a"
  "libcatenet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catenet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
