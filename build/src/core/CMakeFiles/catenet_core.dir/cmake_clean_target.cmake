file(REMOVE_RECURSE
  "libcatenet_core.a"
)
