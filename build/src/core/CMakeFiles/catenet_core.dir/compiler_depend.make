# Empty compiler generated dependencies file for catenet_core.
# This may be replaced when dependencies are built.
