file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_accounting.dir/bench/bench_e7_accounting.cc.o"
  "CMakeFiles/bench_e7_accounting.dir/bench/bench_e7_accounting.cc.o.d"
  "bench/bench_e7_accounting"
  "bench/bench_e7_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
