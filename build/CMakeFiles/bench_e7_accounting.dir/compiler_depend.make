# Empty compiler generated dependencies file for bench_e7_accounting.
# This may be replaced when dependencies are built.
