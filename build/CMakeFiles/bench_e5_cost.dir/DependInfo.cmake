
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e5_cost.cc" "CMakeFiles/bench_e5_cost.dir/bench/bench_e5_cost.cc.o" "gcc" "CMakeFiles/bench_e5_cost.dir/bench/bench_e5_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/catenet_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/catenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/catenet_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/catenet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/catenet_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/udp/CMakeFiles/catenet_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/catenet_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/catenet_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/catenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/catenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
