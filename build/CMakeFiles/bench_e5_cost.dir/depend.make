# Empty dependencies file for bench_e5_cost.
# This may be replaced when dependencies are built.
