file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_cost.dir/bench/bench_e5_cost.cc.o"
  "CMakeFiles/bench_e5_cost.dir/bench/bench_e5_cost.cc.o.d"
  "bench/bench_e5_cost"
  "bench/bench_e5_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
