file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_survivability.dir/bench/bench_e1_survivability.cc.o"
  "CMakeFiles/bench_e1_survivability.dir/bench/bench_e1_survivability.cc.o.d"
  "bench/bench_e1_survivability"
  "bench/bench_e1_survivability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_survivability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
