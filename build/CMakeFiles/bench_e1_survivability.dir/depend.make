# Empty dependencies file for bench_e1_survivability.
# This may be replaced when dependencies are built.
