# Empty compiler generated dependencies file for bench_e2_service_types.
# This may be replaced when dependencies are built.
