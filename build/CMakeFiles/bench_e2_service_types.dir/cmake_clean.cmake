file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_service_types.dir/bench/bench_e2_service_types.cc.o"
  "CMakeFiles/bench_e2_service_types.dir/bench/bench_e2_service_types.cc.o.d"
  "bench/bench_e2_service_types"
  "bench/bench_e2_service_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_service_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
