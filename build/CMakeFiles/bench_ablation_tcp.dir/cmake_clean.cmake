file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tcp.dir/bench/bench_ablation_tcp.cc.o"
  "CMakeFiles/bench_ablation_tcp.dir/bench/bench_ablation_tcp.cc.o.d"
  "bench/bench_ablation_tcp"
  "bench/bench_ablation_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
