# Empty compiler generated dependencies file for bench_e10_flows_soft_state.
# This may be replaced when dependencies are built.
