file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_flows_soft_state.dir/bench/bench_e10_flows_soft_state.cc.o"
  "CMakeFiles/bench_e10_flows_soft_state.dir/bench/bench_e10_flows_soft_state.cc.o.d"
  "bench/bench_e10_flows_soft_state"
  "bench/bench_e10_flows_soft_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_flows_soft_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
