file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_host_burden.dir/bench/bench_e6_host_burden.cc.o"
  "CMakeFiles/bench_e6_host_burden.dir/bench/bench_e6_host_burden.cc.o.d"
  "bench/bench_e6_host_burden"
  "bench/bench_e6_host_burden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_host_burden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
