# Empty dependencies file for bench_e6_host_burden.
# This may be replaced when dependencies are built.
