file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_distributed_mgmt.dir/bench/bench_e4_distributed_mgmt.cc.o"
  "CMakeFiles/bench_e4_distributed_mgmt.dir/bench/bench_e4_distributed_mgmt.cc.o.d"
  "bench/bench_e4_distributed_mgmt"
  "bench/bench_e4_distributed_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_distributed_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
