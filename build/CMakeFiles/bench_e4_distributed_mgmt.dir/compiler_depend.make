# Empty compiler generated dependencies file for bench_e4_distributed_mgmt.
# This may be replaced when dependencies are built.
