file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_network_variety.dir/bench/bench_e3_network_variety.cc.o"
  "CMakeFiles/bench_e3_network_variety.dir/bench/bench_e3_network_variety.cc.o.d"
  "bench/bench_e3_network_variety"
  "bench/bench_e3_network_variety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_network_variety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
