# Empty dependencies file for bench_e3_network_variety.
# This may be replaced when dependencies are built.
