file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_byte_sequencing.dir/bench/bench_e9_byte_sequencing.cc.o"
  "CMakeFiles/bench_e9_byte_sequencing.dir/bench/bench_e9_byte_sequencing.cc.o.d"
  "bench/bench_e9_byte_sequencing"
  "bench/bench_e9_byte_sequencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_byte_sequencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
