# Empty dependencies file for bench_e9_byte_sequencing.
# This may be replaced when dependencies are built.
