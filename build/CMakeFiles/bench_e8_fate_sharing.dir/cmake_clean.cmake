file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_fate_sharing.dir/bench/bench_e8_fate_sharing.cc.o"
  "CMakeFiles/bench_e8_fate_sharing.dir/bench/bench_e8_fate_sharing.cc.o.d"
  "bench/bench_e8_fate_sharing"
  "bench/bench_e8_fate_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_fate_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
