// Simulated time. A single value type serves as both instant and duration
// (like a plain integer timeline); resolution is one nanosecond, range
// ~292 years — ample for any scenario in this library.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace catenet::sim {

class Time {
public:
    constexpr Time() = default;
    constexpr explicit Time(std::int64_t nanos) : ns_(nanos) {}

    constexpr std::int64_t nanos() const noexcept { return ns_; }
    constexpr double micros() const noexcept { return static_cast<double>(ns_) / 1e3; }
    constexpr double millis() const noexcept { return static_cast<double>(ns_) / 1e6; }
    constexpr double seconds() const noexcept { return static_cast<double>(ns_) / 1e9; }

    friend constexpr auto operator<=>(Time, Time) = default;

    constexpr Time operator+(Time rhs) const noexcept { return Time(ns_ + rhs.ns_); }
    constexpr Time operator-(Time rhs) const noexcept { return Time(ns_ - rhs.ns_); }
    constexpr Time& operator+=(Time rhs) noexcept { ns_ += rhs.ns_; return *this; }
    constexpr Time& operator-=(Time rhs) noexcept { ns_ -= rhs.ns_; return *this; }
    constexpr Time operator*(std::int64_t k) const noexcept { return Time(ns_ * k); }
    constexpr Time operator/(std::int64_t k) const noexcept { return Time(ns_ / k); }
    constexpr double operator/(Time rhs) const noexcept {
        return static_cast<double>(ns_) / static_cast<double>(rhs.ns_);
    }

    /// Formats with an adaptive unit, e.g. "1.5ms".
    std::string to_string() const;

private:
    std::int64_t ns_ = 0;
};

constexpr Time nanoseconds(std::int64_t n) { return Time(n); }
constexpr Time microseconds(std::int64_t n) { return Time(n * 1000); }
constexpr Time milliseconds(std::int64_t n) { return Time(n * 1000000); }
constexpr Time seconds(std::int64_t n) { return Time(n * 1000000000); }

/// Converts a real-valued second count (e.g. from an exponential draw).
constexpr Time from_seconds(double s) {
    return Time(static_cast<std::int64_t>(s * 1e9));
}

std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace catenet::sim
