// The discrete-event engine. Single-threaded and deterministic: events at
// equal times fire in scheduling order. Everything in the library — link
// transmissions, protocol timers, application workloads — runs as events
// on one Simulator instance per scenario.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace catenet::sim {

/// Handle for a scheduled event; lets the owner cancel it.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
public:
    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    Time now() const noexcept { return now_; }

    /// Schedules `fn` to run at absolute time `when` (must be >= now()).
    EventId schedule_at(Time when, std::function<void()> fn);

    /// Schedules `fn` to run `delay` after the current time.
    EventId schedule_after(Time delay, std::function<void()> fn) {
        return schedule_at(now_ + delay, std::move(fn));
    }

    /// Cancels a pending event; no-op if already fired or cancelled.
    void cancel(EventId id);

    /// Runs a single event; returns false when the queue is empty.
    bool step();

    /// Runs until the queue drains.
    void run();

    /// Runs events with time <= deadline, then sets now() = deadline.
    void run_until(Time deadline);

    /// Runs until `pred()` turns true or the queue drains; checks after
    /// every event. Returns the predicate's final value.
    bool run_while(const std::function<bool()>& pred);

    std::uint64_t events_processed() const noexcept { return events_processed_; }
    std::size_t pending_events() const noexcept { return queue_.size() - cancelled_.size(); }

private:
    struct Event {
        Time when;
        EventId id;
        // Ordered as a min-heap: earliest time first; FIFO among equals.
        bool operator>(const Event& rhs) const noexcept {
            if (when != rhs.when) return when > rhs.when;
            return id > rhs.id;
        }
    };

    // Callbacks live beside the heap entries, keyed by id, so heap moves
    // stay cheap and cancellation is O(1).
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::unordered_map<EventId, std::function<void()>> callbacks_;
    std::unordered_set<EventId> cancelled_;
    Time now_;
    EventId next_id_ = 1;
    std::uint64_t events_processed_ = 0;
};

}  // namespace catenet::sim
