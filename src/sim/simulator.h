// The discrete-event engine. Single-threaded and deterministic: events at
// equal times fire in scheduling order. Everything in the library — link
// transmissions, protocol timers, application workloads — runs as events
// on one Simulator instance per scenario.
//
// Internals are built for the hot path (see DESIGN.md §"Event-engine
// internals"): events live in a contiguous free-listed slab of slots, an
// EventId packs (slot index, generation) so cancellation is an O(1)
// generation bump with no auxiliary containers, and the binary heap holds
// only (time, seq, slot) triples that are invalidated lazily at pop.
// Callbacks are InlineCallbacks: captures up to 64 bytes never touch the
// heap, so steady-state schedule/cancel is allocation-free.
//
// The event store is two-tiered: imminent events (firing inside the
// current ~67ms window) live in the 4-ary heap; distant ones (protocol
// timers parked hundreds of milliseconds out, mostly re-armed or cancelled
// before they fire) live in lazy calendar buckets where scheduling is an
// O(1) append with no sift and no ordering work. Buckets migrate into the
// heap only when simulated time approaches, so a timer that is re-armed a
// thousand times costs a thousand appends and zero heap operations.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/time.h"
#include "util/buffer_pool.h"
#include "util/inline_function.h"

namespace catenet::sim {

/// Handle for a scheduled event; lets the owner cancel it. Packs
/// (generation << 32) | slot index; generations start at 1, so no valid
/// handle is ever 0.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
public:
    using Callback = util::InlineCallback;

    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    Time now() const noexcept { return now_; }

    /// Schedules `fn` to run at absolute time `when` (must be >= now()).
    /// Defined inline: this and cancel() are the two hottest functions in
    /// the library, and the compiler folds the callback's ops dispatch to
    /// straight-line code only when it sees construction and storage
    /// together. Templated on the callable so the capture is constructed
    /// directly in the event slot — handing over a prebuilt Callback would
    /// relocate it twice (into the parameter, then into the slot), and for
    /// lambdas that carry a Packet each relocation is a real move.
    template <typename F>
    EventId schedule_at(Time when, F&& fn) {
        if (when < now_) throw_past("schedule_at", when);
        const std::uint32_t slot = acquire_slot();
        EventSlot& s = slots_[slot];
        s.when = when;
        s.seq = next_seq_++;
        s.armed = true;
        if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
            s.fn = std::forward<F>(fn);
        } else {
            s.fn.emplace(std::forward<F>(fn));
        }
        ++live_;
        push_event(when, s.seq, slot);
        return pack(s.generation, slot);
    }

    /// Schedules `fn` to run `delay` after the current time.
    template <typename F>
    EventId schedule_after(Time delay, F&& fn) {
        return schedule_at(now_ + delay, std::forward<F>(fn));
    }

    /// Cancels a pending event; no-op if already fired or cancelled.
    /// O(1): the slot's generation bump retires the id and the heap entry
    /// goes stale, to be skipped lazily at pop.
    void cancel(EventId id) {
        std::uint32_t slot;
        if (resolve(id, slot) != nullptr) release_slot(slot);
    }

    /// Moves a pending event to a new firing time (>= now()), keeping its
    /// callback, slot and id. Returns false — having done nothing — if the
    /// event already fired or was cancelled. The allocation-free re-arm
    /// path for protocol timers.
    bool reschedule(EventId id, Time when) {
        if (when < now_) throw_past("reschedule", when);
        std::uint32_t slot;
        EventSlot* s = resolve(id, slot);
        if (s == nullptr) return false;
        s->when = when;
        s->seq = next_seq_++;  // orphans the old heap/bucket entry
        push_event(when, s->seq, slot);
        return true;
    }

    /// True while `id` refers to an event that has neither fired nor been
    /// cancelled.
    bool is_pending(EventId id) const noexcept;

    /// Runs a single event; returns false when the queue is empty.
    bool step();

    /// Runs until the queue drains.
    void run();

    /// Runs events with time <= deadline, then sets now() = deadline.
    void run_until(Time deadline);

    /// Runs until `pred()` turns true or the queue drains; checks after
    /// every event. Returns the predicate's final value.
    bool run_while(const std::function<bool()>& pred);

    /// Runs every pending event with time <= `when`, moves the clock to
    /// `when`, then invokes `fn` as if it were an event scheduled there.
    /// This is the cross-shard delivery hook for the parallel driver:
    /// local events at the same timestamp fire first (a fixed, seed-stable
    /// tie rule), then the arrival executes and is counted in
    /// events_processed() exactly like the propagation event the
    /// sequential engine would have fired.
    template <typename F>
    void invoke_at(Time when, F&& fn) {
        if (when < now_) throw_past("invoke_at", when);
        run_until(when);
        ++events_processed_;
        fn();
    }

    /// The burst pipeline's clock hook (DESIGN.md §"burst forwarding").
    /// If no pending event would fire at or before `t` — and `t` does not
    /// overrun the deadline of an enclosing run_until() — advances the
    /// clock to `t`, counts one processed event (standing in for the
    /// per-packet delivery event the legacy engine would have fired
    /// there) and returns true. Otherwise leaves the clock untouched and
    /// returns false: the caller must flush its batched state and
    /// reschedule a real event, so the pending event observes exactly the
    /// state it would have seen under per-packet delivery.
    bool advance_if_idle(Time t);

    /// Firing time (ns) of the earliest pending event at or before
    /// `bound_ns`, or INT64_MAX when none exists in that range. Used by the
    /// parallel driver to project how far this shard could possibly be from
    /// sending anything (null-message lookahead propagation). May migrate
    /// far-tier buckets up to the bound as a side effect; never fires
    /// events.
    std::int64_t next_event_ns(std::int64_t bound_ns);

    std::uint64_t events_processed() const noexcept { return events_processed_; }
    std::size_t pending_events() const noexcept { return live_; }

    /// Monotonic per-simulation id source (packet trace uids and the
    /// like). Part of the deterministic replay state: same scenario, same
    /// ids — and independent scenarios in one process never share it.
    std::uint64_t next_uid() noexcept { return ++last_uid_; }

    /// Per-simulation recycling pool for packet wire buffers. Every stack
    /// and link in a scenario shares it, so a datagram retired at one node
    /// funds the next datagram encoded at another. Scoped to the Simulator
    /// for the same reason as next_uid(): scenarios in one process must
    /// not share mutable state.
    util::BufferPool& buffer_pool() noexcept { return buffer_pool_; }

private:
    static constexpr std::uint32_t kNilSlot = 0xffffffffu;

    // One pool entry. `seq` is the global schedule sequence number of the
    // slot's current arming: it breaks ties FIFO in the heap and doubles
    // as the staleness check at pop (a cancelled or rescheduled arming
    // leaves its old heap entry pointing at a slot whose seq moved on).
    struct EventSlot {
        Time when;
        std::uint64_t seq = 0;
        std::uint32_t generation = 1;
        std::uint32_t next_free = kNilSlot;
        bool armed = false;
        Callback fn;
    };

    // What the min-heap actually stores; 24 bytes, trivially copyable, so
    // sift operations never touch callbacks. The heap is 4-ary: half the
    // sift depth of a binary heap, and the four children share cache lines.
    struct HeapEntry {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    // Earliest time first; FIFO among equals by schedule sequence.
    static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
        if (a.when != b.when) return a.when < b.when;
        return a.seq < b.seq;
    }

    static constexpr EventId pack(std::uint32_t generation, std::uint32_t slot) noexcept {
        return (static_cast<EventId>(generation) << 32) | slot;
    }

    EventSlot* resolve(EventId id, std::uint32_t& slot_out) noexcept {
        const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
        const auto generation = static_cast<std::uint32_t>(id >> 32);
        if (slot >= slots_.size()) return nullptr;
        EventSlot& s = slots_[slot];
        if (!s.armed || s.generation != generation) return nullptr;
        slot_out = slot;
        return &s;
    }

    std::uint32_t acquire_slot() {
        if (free_head_ != kNilSlot) {
            const std::uint32_t slot = free_head_;
            free_head_ = slots_[slot].next_free;
            return slot;
        }
        return grow_slots();
    }

    void release_slot(std::uint32_t index) noexcept {
        EventSlot& s = slots_[index];
        s.armed = false;
        // Bumping the generation retires every EventId handed out for this
        // arming; 0 is skipped on wraparound so packed ids stay nonzero.
        if (++s.generation == 0) s.generation = 1;
        s.fn.reset();
        s.next_free = free_head_;
        free_head_ = index;
        --live_;
    }

    /// Routes a fresh (or re-armed) event to the near heap or a far
    /// bucket. The invariant the whole engine rests on: every live heap
    /// entry has when < far_horizon_ and every live far entry has
    /// when >= far_horizon_, so a nonempty (skimmed) heap top is always
    /// the globally next event.
    void push_event(Time when, std::uint64_t seq, std::uint32_t slot) {
        if (when.nanos() < far_horizon_) {
            push_heap_entry(when, seq, slot);
        } else {
            std::uint32_t node;
            if (far_free_ != kNilSlot) {
                node = far_free_;
                far_free_ = far_nodes_[node].next;
            } else {
                node = static_cast<std::uint32_t>(far_nodes_.size());
                far_nodes_.emplace_back();
            }
            auto& head =
                far_head_[static_cast<std::uint64_t>(when.nanos() >> kFarShift) % kFarBuckets];
            far_nodes_[node] = FarNode{when, seq, slot, head};
            head = node;
            ++far_count_;
            // Cancel/re-arm churn strands stale copies in the buckets; sweep
            // when they dominate, amortized O(1) per append.
            if (far_count_ > 64 && far_count_ > 4 * live_) compact_far();
        }
    }

    void push_heap_entry(Time when, std::uint64_t seq, std::uint32_t slot) {
        const HeapEntry e{when, seq, slot};
        std::size_t i = heap_.size();
        heap_.push_back(e);
        while (i > 0) {
            const std::size_t parent = (i - 1) >> 2;
            if (!before(e, heap_[parent])) break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
        // Cancel- or reschedule-heavy workloads strand stale entries whose
        // firing time never reaches the top. Sweep them out when they
        // dominate, keeping the heap O(live) without per-cancel surgery.
        if (heap_.size() > 64 && heap_.size() > 4 * live_) compact_heap();
    }

    // Restores the heap property downward from `i`, assuming the subtrees
    // below are valid heaps.
    void sift_down(std::size_t i) {
        const std::size_t n = heap_.size();
        const HeapEntry e = heap_[i];
        for (;;) {
            const std::size_t first = 4 * i + 1;
            if (first >= n) break;
            std::size_t best = first;
            const std::size_t end = first + 4 < n ? first + 4 : n;
            for (std::size_t k = first + 1; k < end; ++k) {
                if (before(heap_[k], heap_[best])) best = k;
            }
            if (!before(heap_[best], e)) break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = e;
    }

    // Removes heap_[0], restoring the 4-ary heap property.
    void pop_heap_entry() {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) sift_down(0);
    }

    [[noreturn]] void throw_past(const char* what, Time when) const;
    std::uint32_t grow_slots();
    void compact_heap();

    // --- far tier ------------------------------------------------------
    // Distant events (when >= far_horizon_) sit unsorted in calendar
    // buckets of 2^kFarShift ns keyed by (when >> kFarShift) mod
    // kFarBuckets. Scheduling far is an O(1) append; ordering work happens
    // only if the event survives long enough to migrate into the heap.
    // Bucket entries live in one free-listed node slab chained by index —
    // capacity is shared across buckets and warmed once, so the steady
    // state stays allocation-free even as the clock rolls into calendar
    // windows it has never touched before (a per-bucket vector would
    // allocate on each first touch).
    static constexpr int kFarShift = 26;        // bucket width ~67 ms
    static constexpr std::size_t kFarBuckets = 64;

    struct FarNode {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t next;  ///< bucket chain / free list link
    };

    /// Skims stale heap tops, then migrates far buckets forward until the
    /// heap holds the globally next event or no event exists at or before
    /// `bound_ns`. Returns the valid top, or nullptr.
    const HeapEntry* prepare_top(std::int64_t bound_ns);

    /// Migrates the bucket at far_horizon_ into the heap (live, due
    /// entries), keeps later-lap entries, drops stale ones, and advances
    /// far_horizon_ one window. Returns how many entries left the bucket.
    std::size_t advance_far_window();

    /// Earliest `when` among bucket entries (live or stale); max() if none.
    std::int64_t far_min_ns() const;

    /// Keeps far_horizon_ ahead of the clock so near-term schedules keep
    /// taking the heap path after a big run_until jump.
    void raise_horizon_past_now();

    /// Drops stale bucket entries in place (capacity retained).
    void compact_far();

    std::vector<EventSlot> slots_;
    std::vector<HeapEntry> heap_;
    std::vector<FarNode> far_nodes_;
    std::array<std::uint32_t, kFarBuckets> far_head_ = make_nil_heads();
    std::uint32_t far_free_ = kNilSlot;
    std::size_t far_count_ = 0;  ///< bucket entries, live and stale
    std::int64_t far_horizon_ = std::int64_t{1} << kFarShift;

    static constexpr std::array<std::uint32_t, kFarBuckets> make_nil_heads() {
        std::array<std::uint32_t, kFarBuckets> a{};
        a.fill(kNilSlot);
        return a;
    }
    std::uint32_t free_head_ = kNilSlot;
    std::size_t live_ = 0;  ///< armed slots = pending events
    Time now_;
    /// Deadline of the innermost active run_until(); advance_if_idle may
    /// never move the clock past it (a bounded run must leave later
    /// arrivals pending, exactly as it leaves later events pending).
    std::int64_t advance_bound_ns_ = std::numeric_limits<std::int64_t>::max();
    std::uint64_t next_seq_ = 1;
    std::uint64_t events_processed_ = 0;
    std::uint64_t last_uid_ = 0;
    util::BufferPool buffer_pool_;
};

}  // namespace catenet::sim
