#include "sim/timer.h"

namespace catenet::sim {

void Timer::schedule(Time delay) {
    expiry_ = sim_.now() + delay;
    // Re-arm in place while pending: the event keeps its slot and callback
    // and only its firing time moves (one heap push, zero allocations).
    if (id_ != kInvalidEventId && sim_.reschedule(id_, expiry_)) return;
    id_ = sim_.schedule_at(expiry_, [this] {
        id_ = kInvalidEventId;
        on_fire_();
    });
}

void Timer::cancel() {
    if (id_ != kInvalidEventId) {
        sim_.cancel(id_);
        id_ = kInvalidEventId;
    }
}

void PeriodicTimer::start(Time period, bool start_immediately) {
    period_ = period;
    running_ = true;
    timer_.schedule(start_immediately ? Time(0) : period_);
}

void PeriodicTimer::fire() {
    if (!running_) return;
    timer_.schedule(period_);
    on_fire_();
}

}  // namespace catenet::sim
