#include "sim/parallel.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

namespace catenet::sim {

namespace {
constexpr std::int64_t kInfNs = std::numeric_limits<std::int64_t>::max();
}

ParallelSimulator::ParallelSimulator(std::size_t shards, std::size_t threads)
    : threads_(threads) {
    if (shards == 0) throw std::invalid_argument("ParallelSimulator: zero shards");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
        auto s = std::make_unique<ShardState>();
        s->id = static_cast<std::uint32_t>(i);
        shards_.push_back(std::move(s));
    }
}

ParallelSimulator::~ParallelSimulator() = default;

std::uint32_t ParallelSimulator::register_channel(BoundaryChannel* channel) {
    const auto id = static_cast<std::uint32_t>(channels_.size());
    channels_.push_back(channel);
    // in/out vectors stay ordered by id because registration appends.
    shards_.at(channel->dest_shard())->in.push_back(channel);
    shards_.at(channel->source_shard())->out.push_back(channel);
    return id;
}

std::uint64_t ParallelSimulator::events_processed() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->sim.events_processed();
    return total;
}

bool ParallelSimulator::shard_round(ShardState& s, std::int64_t deadline_ns,
                                    bool& progressed) {
    // 1. Read input horizons (acquire), then drain the rings. The order
    //    matters twice over: the acquire load is what makes "every arrival
    //    <= safe is now visible in the ring" true when we drain afterwards,
    //    and the values are snapshotted because the projection in step 3
    //    must not see a *newer* horizon — an arrival pushed after our drain
    //    but covered by a fresher horizon would be invisible to the
    //    projection and could falsify it.
    std::int64_t safe = kInfNs;
    s.safe_snapshot.clear();
    for (BoundaryChannel* ch : s.in) {
        const std::int64_t ch_safe = ch->safe_ns();
        s.safe_snapshot.push_back(ch_safe);
        safe = std::min(safe, ch_safe);
    }
    for (BoundaryChannel* ch : s.in) ch->stage();

    const std::int64_t bound = std::min(safe, deadline_ns);

    // 2. Deliver every complete arrival in canonical (time, channel id,
    //    seq) order, interleaved with local events via invoke_at. `in` is
    //    ordered by channel id and we replace only on strictly earlier
    //    time, so equal-time arrivals resolve to the lowest channel id;
    //    seq order within a channel is the staging heap's job.
    for (;;) {
        BoundaryChannel* best = nullptr;
        std::int64_t best_t = 0;
        for (BoundaryChannel* ch : s.in) {
            std::int64_t t;
            std::uint64_t seq;
            if (!ch->peek(t, seq) || t > bound) continue;
            if (best == nullptr || t < best_t) {
                best = ch;
                best_t = t;
            }
        }
        if (best == nullptr) break;
        s.sim.invoke_at(Time(best_t), [best] { best->deliver_head(); });
        progressed = true;
    }
    if (Time(bound) > s.sim.now()) {
        s.sim.run_until(Time(bound));
        progressed = true;
    }
    if (bound > s.last_bound) {
        s.last_bound = bound;
        progressed = true;
    }

    // 3. Project this shard's horizon. Everything at or before `bound` has
    //    fired and its sends are buffered in the out-channels, so "all
    //    future sends > bound" already holds; when the shard is idle we can
    //    promise more — nothing can make it send before its next local
    //    event, its earliest staged arrival, or the first instant an
    //    unknown arrival could reach it (its own input bound + 1).
    std::int64_t e_min = s.sim.next_event_ns(deadline_ns);
    for (std::size_t i = 0; i < s.in.size(); ++i) {
        e_min = std::min(e_min, s.in[i]->staged_head_ns());
        const std::int64_t ch_safe = std::min(s.safe_snapshot[i], deadline_ns);
        e_min = std::min(e_min, ch_safe + 1);
    }
    std::int64_t horizon = bound;
    if (e_min != kInfNs) horizon = std::max(horizon, std::min(e_min - 1, deadline_ns));
    else horizon = std::max(horizon, deadline_ns);
    for (BoundaryChannel* ch : s.out) ch->flush(horizon);

    // 4. Done once the clock is at the deadline, no input can produce more
    //    work due by then, and every accepted send has made it into a ring.
    //    All three conditions are monotone, so "done" never regresses.
    bool done = s.sim.now().nanos() >= deadline_ns && safe >= deadline_ns;
    for (BoundaryChannel* ch : s.out) done = done && ch->fully_flushed();
    return done;
}

void ParallelSimulator::worker(std::size_t k, std::size_t stride,
                               std::int64_t deadline_ns) {
    const std::size_t total = shards_.size();
    while (done_count_.load(std::memory_order_acquire) < total) {
        bool progressed = false;
        for (std::size_t i = k; i < total; i += stride) {
            ShardState& s = *shards_[i];
            const bool done = shard_round(s, deadline_ns, progressed);
            if (done && !s.counted_done) {
                s.counted_done = true;
                done_count_.fetch_add(1, std::memory_order_acq_rel);
            }
        }
        // A fruitless lap means we are waiting on another thread's shards;
        // yield so they actually run (essential on loaded or small boxes).
        if (!progressed) std::this_thread::yield();
    }
}

void ParallelSimulator::run_until(Time deadline) {
    if (deadline <= now_ && now_ > Time(0)) return;
    const std::int64_t deadline_ns = deadline.nanos();
    done_count_.store(0, std::memory_order_relaxed);
    for (auto& s : shards_) s->counted_done = false;

    std::size_t nthreads = threads_ == 0 ? shards_.size() : threads_;
    nthreads = std::min(nthreads, shards_.size());
    if (nthreads <= 1) {
        worker(0, 1, deadline_ns);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nthreads - 1);
        for (std::size_t k = 1; k < nthreads; ++k) {
            pool.emplace_back([this, k, nthreads, deadline_ns] {
                worker(k, nthreads, deadline_ns);
            });
        }
        worker(0, nthreads, deadline_ns);
        for (auto& t : pool) t.join();
    }
    now_ = deadline;
}

}  // namespace catenet::sim
