// Conservative parallel simulation: one single-threaded Simulator per
// shard, synchronized only at shard boundaries. The design leans directly
// on the architecture being simulated — the catenet couples autonomous
// networks through gateways, and fate-sharing keeps all connection state
// in the end hosts, so cutting the topology at gateway links severs no
// shared state. Each cut link's latency is a hard lower bound (the
// "lookahead") on how soon one shard can affect another, which is exactly
// what a Chandy-Misra-Bryant-style conservative engine needs.
//
// Synchronization model (a null-message / epoch hybrid):
//  - Every cross-shard link direction is a BoundaryChannel: an SPSC ring
//    of timestamped datagrams plus a published *horizon* — the producer's
//    promise that every future send on that channel will carry a send time
//    strictly greater than the horizon. No locks anywhere on the path.
//  - A shard may safely advance to bound = min over in-channels of
//    (horizon + lookahead): any not-yet-seen arrival must deliver after
//    that. Arrivals at or before the bound are complete, so they are
//    merged deterministically — by (deliver time, channel id, channel seq)
//    — and injected with Simulator::invoke_at, which fires same-timestamp
//    local events first (the fixed tie rule).
//  - After advancing, the shard republishes its own horizons. When it is
//    idle the horizon is *projected* forward to just before the earliest
//    thing that could still make it send (its next local event, its
//    earliest staged arrival, or its own input bound) — the null-message
//    trick that lets chains of idle shards leapfrog to the deadline in a
//    few rounds instead of crawling by one lookahead per round.
//
// Determinism: the merged arrival order and the local engines' behaviour
// depend only on timestamps and registration order, never on thread
// timing, so a seeded run is bit-identical across executions and thread
// counts — asserted in tests/test_parallel.cc and test_determinism.cc.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace catenet::sim {

/// One direction of a cross-shard link. Implemented by the link layer
/// (link::BoundaryLink); the driver sees only the synchronization surface.
/// Producer-side calls run on the source shard's thread, consumer-side
/// calls on the destination shard's thread.
class BoundaryChannel {
public:
    virtual ~BoundaryChannel() = default;

    virtual std::uint32_t source_shard() const noexcept = 0;
    virtual std::uint32_t dest_shard() const noexcept = 0;

    // --- producer side ------------------------------------------------
    /// Moves buffered sends into the ring, then publishes a horizon no
    /// greater than `horizon_ns`: the promise that every future send has
    /// send time > horizon. The channel itself caps the published value
    /// below any send still waiting for ring space, so the promise holds
    /// even under backpressure. Monotone by construction.
    virtual void flush(std::int64_t horizon_ns) = 0;

    /// True when no accepted send is still waiting for ring space.
    virtual bool fully_flushed() const noexcept = 0;

    // --- consumer side ------------------------------------------------
    /// Reads the producer's horizon (acquire) and returns the delivery
    /// bound horizon + lookahead: every arrival at or before it is either
    /// already staged or in the ring. Call BEFORE stage() — the acquire
    /// load is what guarantees the ring then contains all sends covered by
    /// the bound.
    virtual std::int64_t safe_ns() = 0;

    /// Drains the ring into the channel's local staging order.
    virtual void stage() = 0;

    /// Earliest staged, undelivered arrival; false when none.
    virtual bool peek(std::int64_t& deliver_ns, std::uint64_t& seq) const = 0;

    /// Delivers the head arrival into the destination stack. The driver
    /// has already advanced the destination simulator to the arrival time.
    virtual void deliver_head() = 0;

    /// Earliest staged, undelivered arrival time, or INT64_MAX (for
    /// horizon projection).
    virtual std::int64_t staged_head_ns() const = 0;
};

/// Runs N per-shard Simulators to a common deadline, conservatively
/// synchronized through registered BoundaryChannels.
///
/// `threads` = 0 runs one OS thread per shard; 1 runs everything
/// cooperatively on the caller's thread (useful for determinism baselines,
/// allocation-counting tests, and single-core boxes); k in between
/// multiplexes shards over k threads round-robin. The simulated result is
/// identical in every case.
class ParallelSimulator {
public:
    explicit ParallelSimulator(std::size_t shards, std::size_t threads = 0);
    ParallelSimulator(const ParallelSimulator&) = delete;
    ParallelSimulator& operator=(const ParallelSimulator&) = delete;
    ~ParallelSimulator();

    std::size_t shard_count() const noexcept { return shards_.size(); }
    Simulator& shard(std::size_t i) { return shards_.at(i)->sim; }

    /// Registers a channel (both calls per duplex link). Channels must be
    /// registered before run_until and in deterministic construction order
    /// — the returned id is the cross-channel tie-break rank.
    std::uint32_t register_channel(BoundaryChannel* channel);

    /// Advances every shard to `deadline`, delivering all cross-shard
    /// traffic due by then. All shard clocks equal `deadline` on return.
    /// May be called repeatedly; in-flight boundary datagrams persist
    /// between calls, exactly like pending events in a plain Simulator.
    void run_until(Time deadline);

    Time now() const noexcept { return now_; }

    /// Total events across shards. Cross-shard deliveries count once, in
    /// the destination shard, mirroring the sequential engine's one
    /// propagation event per in-flight packet.
    std::uint64_t events_processed() const;

private:
    struct ShardState {
        Simulator sim;
        std::uint32_t id = 0;
        std::vector<BoundaryChannel*> in;   ///< ordered by channel id
        std::vector<BoundaryChannel*> out;
        std::int64_t last_bound = -1;
        bool counted_done = false;
        std::vector<std::int64_t> safe_snapshot;  ///< round-local scratch
    };

    /// One synchronization round; returns true when the shard has reached
    /// the deadline with nothing left to flush or deliver.
    bool shard_round(ShardState& s, std::int64_t deadline_ns, bool& progressed);

    /// Drives shards k, k+stride, ... until every shard (globally) is done.
    void worker(std::size_t k, std::size_t stride, std::int64_t deadline_ns);

    std::vector<std::unique_ptr<ShardState>> shards_;
    std::vector<BoundaryChannel*> channels_;
    std::size_t threads_;
    Time now_;
    std::atomic<std::size_t> done_count_{0};
};

}  // namespace catenet::sim
