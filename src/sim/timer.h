// Restartable one-shot timer bound to a callback. Protocol code (TCP
// retransmission, reassembly timeouts, routing periodics) owns Timers as
// members; destruction cancels automatically, so a dying connection can
// never fire a stale timer.
#pragma once

#include "sim/simulator.h"

namespace catenet::sim {

class Timer {
public:
    Timer(Simulator& sim, Simulator::Callback on_fire)
        : sim_(sim), on_fire_(std::move(on_fire)) {}

    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;
    ~Timer() { cancel(); }

    /// (Re)arms the timer to fire `delay` from now. A pending timer keeps
    /// its event slot: re-arming is a Simulator::reschedule, which never
    /// allocates and never reconstructs the callback.
    void schedule(Time delay);

    /// Arms the timer only if it is not already pending.
    void schedule_if_idle(Time delay) {
        if (!pending()) schedule(delay);
    }

    void cancel();

    bool pending() const noexcept { return id_ != kInvalidEventId; }

    /// Absolute expiry time; only meaningful while pending().
    Time expiry() const noexcept { return expiry_; }

private:
    Simulator& sim_;
    Simulator::Callback on_fire_;
    EventId id_ = kInvalidEventId;
    Time expiry_;
};

/// Fires a callback at a fixed period until cancelled (routing updates,
/// CBR sources). The first firing is one period from schedule time unless
/// `start_immediately` is set.
class PeriodicTimer {
public:
    PeriodicTimer(Simulator& sim, Simulator::Callback on_fire)
        : sim_(sim), on_fire_(std::move(on_fire)), timer_(sim, [this] { fire(); }) {}

    void start(Time period, bool start_immediately = false);
    void stop() { timer_.cancel(); running_ = false; }
    bool running() const noexcept { return running_; }

private:
    void fire();

    Simulator& sim_;
    Simulator::Callback on_fire_;
    Timer timer_;
    Time period_;
    bool running_ = false;
};

}  // namespace catenet::sim
