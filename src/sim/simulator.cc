#include "sim/simulator.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace catenet::sim {

std::string Time::to_string() const {
    std::ostringstream os;
    const auto n = ns_;
    if (n == 0) {
        os << "0s";
    } else if (n % 1000000000 == 0) {
        os << n / 1000000000 << "s";
    } else if (n < 1000000) {
        os << micros() << "us";
    } else if (n < 1000000000) {
        os << millis() << "ms";
    } else {
        os << seconds() << "s";
    }
    return os.str();
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.to_string(); }

EventId Simulator::schedule_at(Time when, std::function<void()> fn) {
    if (when < now_) {
        throw std::logic_error("Simulator::schedule_at in the past: " + when.to_string() +
                               " < " + now_.to_string());
    }
    const EventId id = next_id_++;
    queue_.push(Event{when, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
}

void Simulator::cancel(EventId id) {
    if (callbacks_.erase(id) > 0) {
        cancelled_.insert(id);
    }
}

bool Simulator::step() {
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (auto cancelled_it = cancelled_.find(ev.id); cancelled_it != cancelled_.end()) {
            cancelled_.erase(cancelled_it);
            continue;
        }
        auto it = callbacks_.find(ev.id);
        // The callback must exist: ids are removed from callbacks_ only via
        // cancel(), which also records them in cancelled_.
        auto fn = std::move(it->second);
        callbacks_.erase(it);
        now_ = ev.when;
        ++events_processed_;
        fn();
        return true;
    }
    return false;
}

void Simulator::run() {
    while (step()) {
    }
}

void Simulator::run_until(Time deadline) {
    while (!queue_.empty()) {
        // Peek past cancelled entries without firing anything late.
        Event ev = queue_.top();
        if (cancelled_.contains(ev.id)) {
            queue_.pop();
            cancelled_.erase(ev.id);
            continue;
        }
        if (ev.when > deadline) break;
        step();
    }
    if (deadline > now_) now_ = deadline;
}

bool Simulator::run_while(const std::function<bool()>& pred) {
    while (pred()) {
        if (!step()) return pred();
    }
    return false;
}

}  // namespace catenet::sim
