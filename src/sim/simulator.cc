#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace catenet::sim {

std::string Time::to_string() const {
    std::ostringstream os;
    const auto n = ns_;
    if (n == 0) {
        os << "0s";
    } else if (n % 1000000000 == 0) {
        os << n / 1000000000 << "s";
    } else if (n < 1000000) {
        os << micros() << "us";
    } else if (n < 1000000000) {
        os << millis() << "ms";
    } else {
        os << seconds() << "s";
    }
    return os.str();
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.to_string(); }

void Simulator::throw_past(const char* what, Time when) const {
    throw std::logic_error("Simulator::" + std::string(what) + " in the past: " +
                           when.to_string() + " < " + now_.to_string());
}

std::uint32_t Simulator::grow_slots() {
    if (slots_.size() >= kNilSlot) {
        throw std::length_error("Simulator: event slot space exhausted");
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::compact_heap() {
    std::erase_if(heap_, [this](const HeapEntry& e) {
        const EventSlot& s = slots_[e.slot];
        return !s.armed || s.seq != e.seq;
    });
    // Bottom-up heapify: O(n), and compaction runs amortized O(1) per
    // schedule because the heap must double in stale entries to retrigger.
    if (heap_.size() > 1) {
        for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
            sift_down(i);
        }
    }
}

void Simulator::compact_far() {
    for (auto& head : far_head_) {
        std::uint32_t* link = &head;
        while (*link != kNilSlot) {
            FarNode& n = far_nodes_[*link];
            const EventSlot& s = slots_[n.slot];
            if (s.armed && s.seq == n.seq) {
                link = &n.next;
            } else {
                const std::uint32_t freed = *link;
                *link = n.next;
                n.next = far_free_;
                far_free_ = freed;
                --far_count_;
            }
        }
    }
}

std::int64_t Simulator::far_min_ns() const {
    std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
    for (const auto head : far_head_) {
        for (std::uint32_t i = head; i != kNilSlot; i = far_nodes_[i].next) {
            min_ns = std::min(min_ns, far_nodes_[i].when.nanos());
        }
    }
    return min_ns;
}

std::size_t Simulator::advance_far_window() {
    auto& head = far_head_[static_cast<std::uint64_t>(far_horizon_ >> kFarShift) % kFarBuckets];
    far_horizon_ += std::int64_t{1} << kFarShift;
    if (head == kNilSlot) return 0;
    std::size_t moved = 0;
    std::uint32_t* link = &head;
    while (*link != kNilSlot) {
        FarNode& n = far_nodes_[*link];
        const EventSlot& s = slots_[n.slot];
        const bool stale = !s.armed || s.seq != n.seq;  // cancelled / re-armed elsewhere
        if (!stale && n.when.nanos() >= far_horizon_) {
            link = &n.next;  // same ring slot, a later lap: keep
            continue;
        }
        if (!stale) push_heap_entry(n.when, n.seq, n.slot);  // due in the new window
        const std::uint32_t freed = *link;
        *link = n.next;
        n.next = far_free_;
        far_free_ = freed;
        --far_count_;
        ++moved;
    }
    return moved;
}

const Simulator::HeapEntry* Simulator::prepare_top(std::int64_t bound_ns) {
    for (std::size_t empty_streak = 0;;) {
        while (!heap_.empty()) {
            const HeapEntry& top = heap_.front();
            const EventSlot& s = slots_[top.slot];
            if (s.armed && s.seq == top.seq) return &top;  // global min: heap < horizon <= far
            pop_heap_entry();
        }
        if (far_count_ == 0 || far_horizon_ > bound_ns) return nullptr;
        if (advance_far_window() != 0) {
            empty_streak = 0;
        } else if (++empty_streak >= kFarBuckets) {
            // A whole lap of empty windows: the next event is far beyond the
            // current position. Drop stale entries, then jump the horizon to
            // the earliest survivor's window (safe: nothing live lies below
            // it) instead of crawling bucket by bucket.
            compact_far();
            if (far_count_ == 0) return nullptr;
            far_horizon_ = std::max(far_horizon_, (far_min_ns() >> kFarShift) << kFarShift);
            empty_streak = 0;
        }
    }
}

void Simulator::raise_horizon_past_now() {
    if (far_horizon_ > now_.nanos()) return;
    if (far_count_ == 0) {
        // Nothing parked: snap the horizon just past the clock so fresh
        // near-term schedules keep taking the heap path.
        far_horizon_ = ((now_.nanos() >> kFarShift) + 1) << kFarShift;
        return;
    }
    // Entries may lie between the old horizon and now (all stale or still
    // future within the window); walk the windows so they migrate or drop.
    std::size_t empty_streak = 0;
    while (far_horizon_ <= now_.nanos()) {
        if (advance_far_window() != 0) {
            empty_streak = 0;
        } else if (++empty_streak >= kFarBuckets) {
            compact_far();
            if (far_count_ == 0) {
                far_horizon_ = ((now_.nanos() >> kFarShift) + 1) << kFarShift;
                return;
            }
            // Live entries are all in the future; jump to whichever comes
            // first, their window or the clock's.
            const std::int64_t target =
                std::min((far_min_ns() >> kFarShift) << kFarShift,
                         ((now_.nanos() >> kFarShift) + 1) << kFarShift);
            far_horizon_ = std::max(far_horizon_, target);
            empty_streak = 0;
        }
    }
}

std::int64_t Simulator::next_event_ns(std::int64_t bound_ns) {
    const HeapEntry* top = prepare_top(bound_ns);
    if (top == nullptr || top->when.nanos() > bound_ns) {
        return std::numeric_limits<std::int64_t>::max();
    }
    return top->when.nanos();
}

bool Simulator::is_pending(EventId id) const noexcept {
    const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto generation = static_cast<std::uint32_t>(id >> 32);
    return slot < slots_.size() && slots_[slot].armed &&
           slots_[slot].generation == generation;
}

bool Simulator::step() {
    const HeapEntry* prepared = prepare_top(std::numeric_limits<std::int64_t>::max());
    if (prepared == nullptr) return false;
    const HeapEntry top = *prepared;
    pop_heap_entry();
    EventSlot& s = slots_[top.slot];
    now_ = top.when;
    // Move the callback out and free the slot *before* invoking: the
    // callback may cancel its own (now stale) id or schedule new
    // events — typically re-arming into this very slot.
    Callback fn = std::move(s.fn);
    release_slot(top.slot);
    ++events_processed_;
    fn();
    return true;
}

void Simulator::run() {
    while (step()) {
    }
}

void Simulator::run_until(Time deadline) {
    // Nested run_until (invoke_at inside a parallel driver window) can only
    // tighten the advance bound, never widen it.
    const std::int64_t saved_bound = advance_bound_ns_;
    advance_bound_ns_ = std::min(saved_bound, deadline.nanos());
    for (;;) {
        // prepare_top is bounded by the deadline so a short run never drags
        // distant buckets into the heap (the far tier's whole point).
        const HeapEntry* top = prepare_top(deadline.nanos());
        if (top == nullptr || top->when > deadline) break;
        step();
    }
    advance_bound_ns_ = saved_bound;
    if (deadline > now_) {
        now_ = deadline;
        raise_horizon_past_now();
    }
}

bool Simulator::advance_if_idle(Time t) {
    if (t < now_) throw_past("advance_if_idle", t);
    if (t.nanos() > advance_bound_ns_) return false;
    const HeapEntry* top = prepare_top(t.nanos());
    if (top != nullptr && top->when <= t) return false;
    now_ = t;
    raise_horizon_past_now();
    ++events_processed_;
    return true;
}

bool Simulator::run_while(const std::function<bool()>& pred) {
    while (pred()) {
        if (!step()) return pred();
    }
    return false;
}

}  // namespace catenet::sim
