#include "sim/simulator.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace catenet::sim {

std::string Time::to_string() const {
    std::ostringstream os;
    const auto n = ns_;
    if (n == 0) {
        os << "0s";
    } else if (n % 1000000000 == 0) {
        os << n / 1000000000 << "s";
    } else if (n < 1000000) {
        os << micros() << "us";
    } else if (n < 1000000000) {
        os << millis() << "ms";
    } else {
        os << seconds() << "s";
    }
    return os.str();
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.to_string(); }

void Simulator::throw_past(const char* what, Time when) const {
    throw std::logic_error("Simulator::" + std::string(what) + " in the past: " +
                           when.to_string() + " < " + now_.to_string());
}

std::uint32_t Simulator::grow_slots() {
    if (slots_.size() >= kNilSlot) {
        throw std::length_error("Simulator: event slot space exhausted");
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::compact_heap() {
    std::erase_if(heap_, [this](const HeapEntry& e) {
        const EventSlot& s = slots_[e.slot];
        return !s.armed || s.seq != e.seq;
    });
    // Bottom-up heapify: O(n), and compaction runs amortized O(1) per
    // schedule because the heap must double in stale entries to retrigger.
    if (heap_.size() > 1) {
        for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
            sift_down(i);
        }
    }
}

bool Simulator::is_pending(EventId id) const noexcept {
    const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto generation = static_cast<std::uint32_t>(id >> 32);
    return slot < slots_.size() && slots_[slot].armed &&
           slots_[slot].generation == generation;
}

bool Simulator::step() {
    while (!heap_.empty()) {
        const HeapEntry top = heap_.front();
        pop_heap_entry();
        EventSlot& s = slots_[top.slot];
        if (!s.armed || s.seq != top.seq) continue;  // cancelled/rescheduled
        now_ = top.when;
        // Move the callback out and free the slot *before* invoking: the
        // callback may cancel its own (now stale) id or schedule new
        // events — typically re-arming into this very slot.
        Callback fn = std::move(s.fn);
        release_slot(top.slot);
        ++events_processed_;
        fn();
        return true;
    }
    return false;
}

void Simulator::run() {
    while (step()) {
    }
}

void Simulator::run_until(Time deadline) {
    while (!heap_.empty()) {
        // Peek past stale entries without firing anything late.
        const HeapEntry& top = heap_.front();
        const EventSlot& s = slots_[top.slot];
        if (!s.armed || s.seq != top.seq) {
            pop_heap_entry();
            continue;
        }
        if (top.when > deadline) break;
        step();
    }
    if (deadline > now_) now_ = deadline;
}

bool Simulator::run_while(const std::function<bool()>& pred) {
    while (pred()) {
        if (!step()) return pred();
    }
    return false;
}

}  // namespace catenet::sim
