#include "link/queue.h"

#include <stdexcept>

namespace catenet::link {

DropTailQueue::DropTailQueue(std::size_t capacity_packets) : slots_(capacity_packets) {
    if (capacity_packets == 0) throw std::invalid_argument("DropTailQueue: zero capacity");
}

bool DropTailQueue::enqueue(Packet&& packet) {
    if (count_ == slots_.size()) {
        ++stats_.dropped;
        stats_.bytes_dropped += packet.size();
        return false;
    }
    ++stats_.enqueued;
    stats_.bytes_enqueued += packet.size();
    bytes_ += packet.size();
    // head_ and count_ are both < size, so one conditional subtract wraps
    // the ring — no integer division on the per-packet path.
    std::size_t tail = head_ + count_;
    if (tail >= slots_.size()) tail -= slots_.size();
    slots_[tail] = std::move(packet);
    ++count_;
    return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
    if (count_ == 0) return std::nullopt;
    Packet p = std::move(slots_[head_]);
    if (++head_ == slots_.size()) head_ = 0;
    --count_;
    bytes_ -= p.size();
    ++stats_.dequeued;
    return p;
}

void DropTailQueue::clear() {
    for (auto& slot : slots_) slot = Packet{};  // release buffers, keep slots
    head_ = 0;
    count_ = 0;
    bytes_ = 0;
}

PriorityQueue::PriorityQueue(std::size_t levels, std::size_t per_level_capacity,
                             Classifier level_of)
    : levels_(levels), per_level_capacity_(per_level_capacity), level_of_(std::move(level_of)) {
    if (levels == 0 || per_level_capacity == 0) {
        throw std::invalid_argument("PriorityQueue: zero levels or capacity");
    }
}

bool PriorityQueue::enqueue(Packet&& packet) {
    auto level = static_cast<std::size_t>(level_of_(packet));
    if (level >= levels_.size()) level = levels_.size() - 1;
    auto& q = levels_[level];
    if (q.size() >= per_level_capacity_) {
        ++stats_.dropped;
        stats_.bytes_dropped += packet.size();
        return false;
    }
    ++stats_.enqueued;
    stats_.bytes_enqueued += packet.size();
    ++packets_;
    bytes_ += packet.size();
    q.push_back(std::move(packet));
    return true;
}

std::optional<Packet> PriorityQueue::dequeue() {
    for (auto& q : levels_) {
        if (!q.empty()) {
            Packet p = std::move(q.front());
            q.pop_front();
            --packets_;
            bytes_ -= p.size();
            ++stats_.dequeued;
            return p;
        }
    }
    return std::nullopt;
}

void PriorityQueue::clear() {
    for (auto& q : levels_) q.clear();
    packets_ = 0;
    bytes_ = 0;
}

FairQueue::FairQueue(std::size_t per_flow_capacity, std::size_t quantum_bytes,
                     Classifier flow_of)
    : per_flow_capacity_(per_flow_capacity),
      quantum_(quantum_bytes),
      flow_of_(std::move(flow_of)) {
    if (per_flow_capacity == 0 || quantum_bytes == 0) {
        throw std::invalid_argument("FairQueue: zero capacity or quantum");
    }
}

bool FairQueue::enqueue(Packet&& packet) {
    const std::uint64_t id = flow_of_(packet);
    auto [it, inserted] = flows_.try_emplace(id);
    Flow& flow = it->second;
    if (flow.q.size() >= per_flow_capacity_) {
        ++stats_.dropped;
        stats_.bytes_dropped += packet.size();
        if (inserted) flows_.erase(it);
        return false;
    }
    if (flow.q.empty()) {
        // (Re)activate the flow at the back of the round.
        round_robin_.push_back(id);
        flow.deficit = 0;
    }
    ++stats_.enqueued;
    stats_.bytes_enqueued += packet.size();
    ++packets_;
    bytes_ += packet.size();
    flow.q.push_back(std::move(packet));
    return true;
}

std::optional<Packet> FairQueue::dequeue() {
    while (!round_robin_.empty()) {
        const std::uint64_t id = round_robin_.front();
        auto it = flows_.find(id);
        // Flows leave flows_ only when their queue drains, at which point
        // they are also removed from the round; the entry must exist.
        Flow& flow = it->second;
        if (flow.deficit < flow.q.front().size()) {
            // Not enough credit: add a quantum and move to the back.
            flow.deficit += quantum_;
            round_robin_.pop_front();
            round_robin_.push_back(id);
            continue;
        }
        Packet p = std::move(flow.q.front());
        flow.q.pop_front();
        flow.deficit -= p.size();
        --packets_;
        bytes_ -= p.size();
        ++stats_.dequeued;
        if (flow.q.empty()) {
            // Soft state evaporates with the backlog.
            flows_.erase(it);
            round_robin_.pop_front();
        }
        return p;
    }
    return std::nullopt;
}

void FairQueue::clear() {
    flows_.clear();
    round_robin_.clear();
    packets_ = 0;
    bytes_ = 0;
}

}  // namespace catenet::link
