// A duplex point-to-point link whose two ends live in different shards of
// a ParallelSimulator. Each direction is a BoundaryChannel: the sending
// port runs the same transmitter state machine as PointToPointLink (egress
// queue, busy-until wire, single combined serialize+propagate delay), but
// instead of scheduling the delivery event locally it timestamps the
// datagram and hands it to an SPSC ring; the destination shard's driver
// injects it at exactly the computed arrival time. The link's
// propagation + serialization delay is the channel's lookahead — the
// paper's own argument that networks are coupled only by links with real
// latency, made load-bearing.
//
// Datagrams are self-contained (fate-sharing: no connection state in the
// network), so the handoff moves nothing but the wire bytes and trace
// metadata. Buffer capacity flows back against the packet stream via the
// ring's swap protocol (see util/spsc_ring.h), keeping a one-way flow
// allocation-free in steady state on both shards.
//
// Channel-model randomness (drop, jitter, corruption) draws from one Rng
// per direction, forked at construction — each is owned by exactly one
// shard thread. A boundary link with a deterministic channel (no loss,
// no jitter, no bit errors) is behaviourally identical to the sequential
// PointToPointLink; with randomness enabled the parallel run is still
// deterministic against itself, but the draw interleaving across the two
// directions differs from the single-Rng sequential link, so equality
// tests keep lossy channels inside shards.
#pragma once

#include <memory>
#include <string>

#include "link/netif.h"
#include "link/point_to_point.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace catenet::link {

class BoundaryLink {
public:
    /// Symmetric link between shard `shard_a` (simulator `sim_a`) and
    /// shard `shard_b`. Forks exactly one child off `parent_rng`, like
    /// PointToPointLink, so swapping link types does not shift the
    /// parent's stream for later topology elements.
    BoundaryLink(sim::Simulator& sim_a, std::uint32_t shard_a, sim::Simulator& sim_b,
                 std::uint32_t shard_b, util::Rng& parent_rng, const LinkParams& params,
                 std::string name = "boundary");
    /// Asymmetric variant.
    BoundaryLink(sim::Simulator& sim_a, std::uint32_t shard_a, sim::Simulator& sim_b,
                 std::uint32_t shard_b, util::Rng& parent_rng, const LinkParams& a_to_b,
                 const LinkParams& b_to_a, std::string name = "boundary");
    ~BoundaryLink();

    NetIf& port_a() noexcept;
    NetIf& port_b() noexcept;

    /// The two synchronization surfaces; register both with the
    /// ParallelSimulator that owns the shards.
    sim::BoundaryChannel& channel_a_to_b() noexcept;
    sim::BoundaryChannel& channel_b_to_a() noexcept;

    const ChannelStats& stats_a_to_b() const noexcept;
    const ChannelStats& stats_b_to_a() const noexcept;

    /// Bytes clocked onto the wire in both directions (cost metrics).
    std::uint64_t total_bytes_sent() const noexcept;

private:
    class Port;
    class Channel;

    std::unique_ptr<Channel> ab_;
    std::unique_ptr<Channel> ba_;
    std::unique_ptr<Port> a_;
    std::unique_ptr<Port> b_;
};

}  // namespace catenet::link
