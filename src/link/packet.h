// The unit the link layer carries: a byte buffer (a serialized IP datagram
// or VC frame) plus simulation bookkeeping. The bookkeeping fields never
// travel "on the wire" conceptually — they are what a real node would
// compute locally (enqueue timestamps) or what the tracing harness needs
// (unique ids); protocol behaviour depends only on `bytes`.
#pragma once

#include <cstdint>
#include <utility>

#include "sim/time.h"
#include "util/byte_buffer.h"

namespace catenet::link {

struct Packet {
    util::ByteBuffer bytes;

    /// Global trace id, assigned at creation.
    std::uint64_t uid = 0;

    /// When the packet was created (for end-to-end latency measurement).
    sim::Time created;

    /// When the packet was last enqueued (for queueing-delay measurement).
    sim::Time enqueued;

    std::size_t size() const noexcept { return bytes.size(); }
};

/// Allocates trace ids. One instance per scenario is typical but a global
/// default keeps casual use simple.
class PacketIdAllocator {
public:
    std::uint64_t next() noexcept { return ++last_; }

private:
    std::uint64_t last_ = 0;
};

PacketIdAllocator& default_packet_ids() noexcept;

inline Packet make_packet(util::ByteBuffer bytes, sim::Time now) {
    Packet p;
    p.bytes = std::move(bytes);
    p.uid = default_packet_ids().next();
    p.created = now;
    p.enqueued = now;
    return p;
}

}  // namespace catenet::link
