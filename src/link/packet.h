// The unit the link layer carries: a byte buffer (a serialized IP datagram
// or VC frame) plus simulation bookkeeping. The bookkeeping fields never
// travel "on the wire" conceptually — they are what a real node would
// compute locally (enqueue timestamps) or what the tracing harness needs
// (unique ids); protocol behaviour depends only on `bytes`.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/byte_buffer.h"

namespace catenet::link {

struct Packet {
    util::ByteBuffer bytes;

    /// Per-simulation trace id, assigned at creation. Drawn from the
    /// owning Simulator's uid counter, so ids are reproducible run-to-run
    /// and across scenarios running in the same process (no global state).
    std::uint64_t uid = 0;

    /// When the packet was created (for end-to-end latency measurement).
    sim::Time created;

    /// When the packet was last enqueued (for queueing-delay measurement).
    sim::Time enqueued;

    std::size_t size() const noexcept { return bytes.size(); }
};

inline Packet make_packet(util::ByteBuffer bytes, sim::Simulator& sim) {
    Packet p;
    p.bytes = std::move(bytes);
    p.uid = sim.next_uid();
    p.created = sim.now();
    p.enqueued = sim.now();
    return p;
}

/// Largest run of packets the burst forwarding pipeline hands up the stack
/// in one descriptor array (DESIGN.md §"burst forwarding"). 32 descriptors
/// keep the whole burst — packets, decoded headers, status flags — inside
/// the L1 working set while amortizing the per-wakeup costs.
inline constexpr std::size_t kBurst = 32;

/// A stack-resident descriptor array for one delivery run: pointers into
/// the transmitter's in-flight ring plus each packet's arrival time. The
/// receiver consumes items in order, advancing the clock to each arrival
/// (Simulator::advance_if_idle); a consumed item's Packet has been moved
/// out of the ring slot. Never heap-allocated and never outlives the
/// delivery call that built it.
struct PacketBurst {
    struct Item {
        Packet* packet;
        sim::Time arrival;
    };
    std::array<Item, kBurst> items;
    std::size_t count = 0;
};

}  // namespace catenet::link
