// The unit the link layer carries: a byte buffer (a serialized IP datagram
// or VC frame) plus simulation bookkeeping. The bookkeeping fields never
// travel "on the wire" conceptually — they are what a real node would
// compute locally (enqueue timestamps) or what the tracing harness needs
// (unique ids); protocol behaviour depends only on `bytes`.
#pragma once

#include <cstdint>
#include <utility>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/byte_buffer.h"

namespace catenet::link {

struct Packet {
    util::ByteBuffer bytes;

    /// Per-simulation trace id, assigned at creation. Drawn from the
    /// owning Simulator's uid counter, so ids are reproducible run-to-run
    /// and across scenarios running in the same process (no global state).
    std::uint64_t uid = 0;

    /// When the packet was created (for end-to-end latency measurement).
    sim::Time created;

    /// When the packet was last enqueued (for queueing-delay measurement).
    sim::Time enqueued;

    std::size_t size() const noexcept { return bytes.size(); }
};

inline Packet make_packet(util::ByteBuffer bytes, sim::Simulator& sim) {
    Packet p;
    p.bytes = std::move(bytes);
    p.uid = sim.next_uid();
    p.created = sim.now();
    p.enqueued = sim.now();
    return p;
}

}  // namespace catenet::link
