// The unit the link layer carries: a byte buffer (a serialized IP datagram
// or VC frame) plus simulation bookkeeping. The bookkeeping fields never
// travel "on the wire" conceptually — they are what a real node would
// compute locally (enqueue timestamps) or what the tracing harness needs
// (unique ids); protocol behaviour depends only on `bytes`.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/byte_buffer.h"

namespace catenet::link {

struct Packet {
    util::ByteBuffer bytes;

    /// Per-simulation trace id, assigned at creation. Drawn from the
    /// owning Simulator's uid counter, so ids are reproducible run-to-run
    /// and across scenarios running in the same process (no global state).
    std::uint64_t uid = 0;

    /// When the packet was created (for end-to-end latency measurement).
    sim::Time created;

    /// When the packet was last enqueued (for queueing-delay measurement).
    sim::Time enqueued;

    /// Checksum offload (DESIGN.md §12): set by an encoder that just
    /// computed this buffer's IP and transport checksums, cleared the
    /// moment a link corrupts the bytes. Receivers may skip checksum
    /// *verification* when set — behaviourally identical, since the flag
    /// implies verification would succeed. Like `uid` and the timestamps,
    /// it never travels on the wire conceptually; it stands in for the
    /// hardware offload bit a real NIC descriptor carries.
    bool csum_ok = false;

    /// TX checksum offload, one step further (DESIGN.md §12): the GSO
    /// split leaves the TCP checksum field zero and sets this flag instead
    /// of folding header+payload per wire segment. Like a NIC that never
    /// computes a checksum for a frame nothing will verify, the fold is
    /// performed lazily — by materialize_checksum() — at the first point
    /// that actually observes the wire bytes: a wire tap's digest, a
    /// corrupting link (before it flips bits), a shard-boundary frame's
    /// far side, a re-serializing forward, or a custom per-packet
    /// receiver. Packets that cross only vouch-preserving links into a
    /// vouch-trusting stack never pay the fold at all.
    bool csum_deferred = false;

    std::size_t size() const noexcept { return bytes.size(); }
};

/// Computes and stores the deferred TCP checksum (see Packet::
/// csum_deferred), clearing the flag. Only the GSO split defers, so the
/// buffer is always a well-formed [IPv4|TCP] wire datagram whose checksum
/// field currently holds the zero the fold expects.
void materialize_checksum(Packet& packet) noexcept;

inline Packet make_packet(util::ByteBuffer bytes, sim::Simulator& sim) {
    Packet p;
    p.bytes = std::move(bytes);
    p.uid = sim.next_uid();
    p.created = sim.now();
    p.enqueued = sim.now();
    return p;
}

/// Largest run of packets the burst forwarding pipeline hands up the stack
/// in one descriptor array (DESIGN.md §"burst forwarding"). 32 descriptors
/// keep the whole burst — packets, decoded headers, status flags — inside
/// the L1 working set while amortizing the per-wakeup costs.
inline constexpr std::size_t kBurst = 32;

/// A stack-resident descriptor array for one delivery run: pointers into
/// the transmitter's in-flight ring plus each packet's arrival time. The
/// receiver consumes items in order, advancing the clock to each arrival
/// (Simulator::advance_if_idle); a consumed item's Packet has been moved
/// out of the ring slot. Never heap-allocated and never outlives the
/// delivery call that built it.
struct PacketBurst {
    struct Item {
        Packet* packet;
        sim::Time arrival;
    };
    std::array<Item, kBurst> items;
    std::size_t count = 0;
};

/// Most MSS-spans one mega-segment descriptor may cover (GSO, DESIGN.md
/// §12). 16 splits amortize the per-train fixed costs well past the knee
/// while keeping a split's working set (16 wire buffers) pool-sized.
inline constexpr std::size_t kGsoSegs = 16;

/// One TCP mega-segment: a train of equally-sized wire segments described
/// by a single 40-byte header template plus views into the sender's ring.
/// The egress link performs the late split — stamping per-segment headers
/// and checksums into pooled buffers byte-identical to the per-segment
/// encode. The descriptor lives on the build/send call stack only; the
/// ring views stay valid because the whole build → split → admit chain is
/// synchronous within one event.
///
/// Per-segment variation is confined to: IP total_length (last segment),
/// IP identification (+i), TCP sequence (+i·seg_payload), TCP flags on the
/// last segment (`last_flags_or`, e.g. PSH), and both checksums. Every
/// other header field is constant across the train by construction — the
/// TCP sender never interleaves state changes inside one build.
struct GsoDescriptor {
    /// Wire-segment 0's [IPv4 | TCP] header image, checksums already
    /// correct for a `seg_payload`-sized segment. Data segments never
    /// carry TCP options, so both headers are their fixed 20 bytes.
    std::array<std::uint8_t, 40> proto;

    /// The train's payload in send order; `payload_b` is non-empty only
    /// when the range straddles the send ring's physical wrap.
    std::span<const std::uint8_t> payload_a;
    std::span<const std::uint8_t> payload_b;

    std::size_t seg_payload = 0;  ///< payload bytes per wire segment
    std::size_t seg_count = 0;    ///< number of wire segments (>= 2)
    std::uint8_t last_flags_or = 0;  ///< TCP flag bits OR'd into the final segment

    /// The owning simulator: the split draws packet uids and timestamps
    /// from it, exactly as the per-segment path's make_packet would.
    sim::Simulator* sim = nullptr;

    std::size_t payload_size() const noexcept {
        return payload_a.size() + payload_b.size();
    }
};

/// Stamps wire segment `i` of the train: header template copied, the
/// per-segment fields advanced, RFC 1071 run over each span, payload
/// copied from the ring views — byte-identical to the one-pass encode the
/// per-segment path performs, with `csum_ok` set (this encoder just
/// computed both checksums). Buffers come from the simulator's pool.
Packet gso_split_segment(const GsoDescriptor& d, std::size_t i);

}  // namespace catenet::link
