#include "link/lan.h"

#include <algorithm>
#include <stdexcept>

namespace catenet::link {

namespace {

// Link-layer framing on the LAN: 2-byte destination port, then payload.
constexpr std::size_t kFrameHeader = 2;

// Frames in place: the two header bytes are inserted at the front of the
// existing buffer rather than rebuilding it through a BufferWriter, so a
// pooled buffer keeps its identity (and, after first growth, its
// capacity) across the encode -> frame -> deliver -> strip cycle.
Packet frame_packet(Packet packet, std::uint16_t dst_port) {
    const std::uint8_t hi = static_cast<std::uint8_t>(dst_port >> 8);
    const std::uint8_t lo = static_cast<std::uint8_t>(dst_port & 0xff);
    packet.bytes.insert(packet.bytes.begin(), {hi, lo});
    return packet;
}

}  // namespace

class Lan::Port final : public NetIf {
public:
    Port(Lan& lan, std::size_t index, std::string name)
        : lan_(lan), index_(index), name_(std::move(name)),
          queue_(std::make_unique<DropTailQueue>(lan.params_.queue_capacity_packets)) {}

    std::size_t mtu() const noexcept override { return lan_.params_.mtu; }
    const std::string& name() const noexcept override { return name_; }

    void send(Packet packet, util::Ipv4Address next_hop) override {
        if (!up_ || !lan_.up_) {
            ++stats_.send_failures;
            lan_.sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        std::uint16_t dst = kBroadcastPort;
        if (!next_hop.is_unspecified()) {
            auto it = lan_.neighbors_.find(next_hop);
            if (it == lan_.neighbors_.end()) {
                // Unresolvable next hop: a real LAN would ARP and fail;
                // we count it and drop.
                ++stats_.send_failures;
                lan_.sim_.buffer_pool().recycle(std::move(packet.bytes));
                return;
            }
            dst = static_cast<std::uint16_t>(it->second);
        }
        packet.enqueued = lan_.sim_.now();
        const std::size_t wire_size = packet.size() + kFrameHeader;
        Packet frame = frame_packet(std::move(packet), dst);
        if (!queue_->enqueue(std::move(frame))) {
            // Strip the LAN framing so observers see the network-layer
            // datagram they handed us (frame intact on rejection per the
            // PacketQueue contract).
            frame.bytes.erase(frame.bytes.begin(),
                              frame.bytes.begin() + static_cast<std::ptrdiff_t>(kFrameHeader));
            notify_drop(frame);
            lan_.sim_.buffer_pool().recycle(std::move(frame.bytes));
            return;
        }
        ++stats_.packets_sent;
        stats_.bytes_sent += wire_size;
        lan_.transmit_from(index_);
    }

    void set_up(bool up) override {
        NetIf::set_up(up);
        if (!up) queue_->clear();
    }

    // Strips framing and hands the payload to the bound node.
    void receive_frame(Packet frame) {
        frame.bytes.erase(frame.bytes.begin(),
                          frame.bytes.begin() + static_cast<std::ptrdiff_t>(kFrameHeader));
        deliver(std::move(frame));
    }

    PacketQueue& queue() noexcept { return *queue_; }

private:
    Lan& lan_;
    std::size_t index_;
    std::string name_;
    std::unique_ptr<PacketQueue> queue_;
};

Lan::Lan(sim::Simulator& sim, util::Rng& parent_rng, const LanParams& params, std::string name)
    : sim_(sim), rng_(parent_rng.fork()), params_(params), name_(std::move(name)) {}

Lan::~Lan() = default;

NetIf& Lan::add_port() {
    const std::size_t index = ports_.size();
    ports_.push_back(std::make_unique<Port>(*this, index, name_ + ":" + std::to_string(index)));
    return *ports_.back();
}

std::size_t Lan::port_count() const noexcept { return ports_.size(); }

void Lan::register_address(util::Ipv4Address addr, std::size_t port_index) {
    if (port_index >= ports_.size()) {
        throw std::out_of_range("Lan::register_address: no such port");
    }
    neighbors_[addr] = port_index;
}

std::uint64_t Lan::total_bytes_sent() const noexcept {
    std::uint64_t total = 0;
    for (const auto& port : ports_) total += port->stats().bytes_sent;
    return total;
}

void Lan::set_up(bool up) {
    up_ = up;
    if (!up) {
        for (auto& port : ports_) port->queue().clear();
        backlog_.clear();
        medium_busy_ = false;
    }
}

void Lan::transmit_from(std::size_t port_index) {
    if (std::find(backlog_.begin(), backlog_.end(), port_index) == backlog_.end()) {
        backlog_.push_back(port_index);
    }
    if (!medium_busy_) medium_idle();
}

void Lan::medium_idle() {
    while (!backlog_.empty()) {
        const std::size_t src = backlog_.front();
        auto frame = ports_[src]->queue().dequeue();
        if (!frame) {
            backlog_.erase(backlog_.begin());
            continue;
        }
        medium_busy_ = true;
        const sim::Time tx = sim::Time(static_cast<std::int64_t>(
            static_cast<double>(frame->size()) * 8.0 /
            static_cast<double>(params_.bits_per_second) * 1e9));
        // The frame rides inside the event slot itself (InlineCallback's
        // capture budget covers this + src + Packet): a forwarding station
        // can re-enter medium_idle() from inside a delivery, so more than
        // one frame can be in flight at once, and each slot is its own
        // storage — no side free list, no heap traffic.
        sim_.schedule_after(tx + params_.propagation_delay,
                            [this, src, delivered = std::move(*frame)]() mutable {
            medium_busy_ = false;
            if (up_) {
                deliver_frame(src, std::move(delivered));
            } else {
                sim_.buffer_pool().recycle(std::move(delivered.bytes));
            }
            // If the source's queue drained, retire it from the backlog.
            if (!backlog_.empty() && ports_[backlog_.front()]->queue().empty()) {
                backlog_.erase(backlog_.begin());
            } else if (!backlog_.empty()) {
                // Round-robin: move the sender to the back.
                auto head = backlog_.front();
                backlog_.erase(backlog_.begin());
                backlog_.push_back(head);
            }
            medium_idle();
        });
        return;
    }
}

void Lan::deliver_frame(std::size_t src_port, Packet frame) {
    if (rng_.chance(params_.drop_probability)) {
        ++channel_stats_.packets_lost;
        sim_.buffer_pool().recycle(std::move(frame.bytes));
        return;
    }
    util::BufferReader r(frame.bytes);
    const std::uint16_t dst = r.get_u16();
    if (dst == kBroadcastPort) {
        for (std::size_t i = 0; i < ports_.size(); ++i) {
            if (i == src_port) continue;
            Packet copy = frame;
            ports_[i]->receive_frame(std::move(copy));
        }
        sim_.buffer_pool().recycle(std::move(frame.bytes));
    } else if (dst < ports_.size() && dst != src_port) {
        ports_[dst]->receive_frame(std::move(frame));
    } else {
        sim_.buffer_pool().recycle(std::move(frame.bytes));
    }
}

}  // namespace catenet::link
