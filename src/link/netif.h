// The attachment point between a node and a network. The IP layer talks
// only to this interface, which is exactly the paper's goal-3 discipline:
// the internet layer may assume a network can carry a packet of reasonable
// size with nonzero probability and nothing else — no reliability, no
// ordering, no broadcast.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "link/packet.h"
#include "util/ip_address.h"

namespace catenet::link {

/// Channel-model outcomes (loss, corruption) on a link or LAN segment.
struct ChannelStats {
    std::uint64_t packets_lost = 0;       ///< dropped by the channel model
    std::uint64_t packets_corrupted = 0;  ///< delivered with flipped bits
};

struct NetIfStats {
    std::uint64_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t send_failures = 0;  // down interface or unresolvable next hop
    std::uint64_t busy_ns = 0;  // time the transmitter spent clocking bits out
};

class NetIf {
public:
    // The packet is handed up by rvalue reference so the four-deep delivery
    // chain (channel event → port → deliver → IP receive) moves the Packet
    // once, at the end, instead of at every by-value hand-off. Lambdas that
    // take `Packet` by value still bind — the move happens at their call.
    using Receiver = std::function<void(Packet&&)>;

    virtual ~NetIf() = default;

    /// Largest payload this network carries in one frame.
    virtual std::size_t mtu() const noexcept = 0;

    /// Hands a packet to the network for delivery toward `next_hop` (the
    /// link-layer resolves it; point-to-point links ignore it). Best
    /// effort: the packet may be queued, dropped, corrupted or reordered
    /// downstream and the caller will never know — by design.
    virtual void send(Packet packet, util::Ipv4Address next_hop) = 0;

    virtual const std::string& name() const noexcept = 0;

    void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

    /// Administrative / failure state. A down interface silently discards
    /// traffic in both directions (a dead transceiver).
    bool is_up() const noexcept { return up_; }
    virtual void set_up(bool up) {
        if (up_ == up) return;
        up_ = up;
        for (const auto& observer : state_observers_) observer(up);
    }

    /// Registers a carrier-state observer (routing protocols react to
    /// interface death immediately rather than waiting for timeouts).
    void add_state_observer(std::function<void(bool up)> observer) {
        state_observers_.push_back(std::move(observer));
    }

    /// Observer for egress-queue drops: the node that owns the interface
    /// sees which datagram it just threw away (Source Quench hooks here —
    /// the one piece of feedback a 1988 gateway could give).
    using DropObserver = std::function<void(const Packet&)>;
    void set_drop_observer(DropObserver observer) { drop_observer_ = std::move(observer); }

    const NetIfStats& stats() const noexcept { return stats_; }

    /// The IP address bound to this interface (assigned by the builder).
    util::Ipv4Address address() const noexcept { return address_; }
    void set_address(util::Ipv4Address addr) noexcept { address_ = addr; }

protected:
    void deliver(Packet&& packet) {
        if (!up_ || !receiver_) return;
        ++stats_.packets_received;
        stats_.bytes_received += packet.size();
        receiver_(std::move(packet));
    }

    void notify_drop(const Packet& packet) {
        if (drop_observer_) drop_observer_(packet);
    }

    Receiver receiver_;
    DropObserver drop_observer_;
    std::vector<std::function<void(bool)>> state_observers_;
    NetIfStats stats_;
    bool up_ = true;
    util::Ipv4Address address_;
};

}  // namespace catenet::link
