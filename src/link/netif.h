// The attachment point between a node and a network. The IP layer talks
// only to this interface, which is exactly the paper's goal-3 discipline:
// the internet layer may assume a network can carry a packet of reasonable
// size with nonzero probability and nothing else — no reliability, no
// ordering, no broadcast.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "link/packet.h"
#include "util/ip_address.h"

namespace catenet::link {

/// Channel-model outcomes (loss, corruption) on a link or LAN segment.
struct ChannelStats {
    std::uint64_t packets_lost = 0;       ///< dropped by the channel model
    std::uint64_t packets_corrupted = 0;  ///< delivered with flipped bits
};

struct NetIfStats {
    std::uint64_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t send_failures = 0;  // down interface or unresolvable next hop
    std::uint64_t busy_ns = 0;  // time the transmitter spent clocking bits out
};

class NetIf {
public:
    // The packet is handed up by rvalue reference so the four-deep delivery
    // chain (channel event → port → deliver → IP receive) moves the Packet
    // once, at the end, instead of at every by-value hand-off. Lambdas that
    // take `Packet` by value still bind — the move happens at their call.
    using Receiver = std::function<void(Packet&&)>;

    /// Burst receiver: consumes burst items in order, advancing the clock
    /// to each item's arrival time, and returns how many it consumed (a
    /// bail on a pending event leaves the tail with the caller, to be
    /// redelivered by a real event). Installed only by stacks whose burst
    /// path is byte-identical to their per-packet path.
    using BurstReceiver = std::function<std::size_t(PacketBurst&)>;

    virtual ~NetIf() = default;

    /// Largest payload this network carries in one frame.
    virtual std::size_t mtu() const noexcept = 0;

    /// Hands a packet to the network for delivery toward `next_hop` (the
    /// link-layer resolves it; point-to-point links ignore it). Best
    /// effort: the packet may be queued, dropped, corrupted or reordered
    /// downstream and the caller will never know — by design.
    virtual void send(Packet packet, util::Ipv4Address next_hop) = 0;

    /// GSO hand-off (DESIGN.md §12): one mega-segment descriptor covering a
    /// whole train of wire segments. The default implementation makes every
    /// network GSO-capable by performing the late split here — one
    /// gso_split_segment() per wire segment, each fed to send() in order,
    /// which is definitionally identical to the per-segment path. Links may
    /// override to splice the split into their own admission machinery, but
    /// only under the same wire-identity contract.
    virtual void send_gso(const GsoDescriptor& d, util::Ipv4Address next_hop);

    virtual const std::string& name() const noexcept = 0;

    /// Installing a plain receiver (tests tap interfaces this way) clears
    /// any burst receiver: a tap must see the exact per-packet hand-off,
    /// so burst delivery falls back to the per-entry path.
    void set_receiver(Receiver receiver) {
        receiver_ = std::move(receiver);
        burst_receiver_ = nullptr;
    }

    /// Installs the burst fast path alongside the per-packet receiver.
    /// IpStack::add_interface is the only expected caller.
    void set_burst_receiver(BurstReceiver receiver) {
        burst_receiver_ = std::move(receiver);
    }

    /// True when a whole run may be handed to deliver_burst(). A down
    /// interface is not burst-capable: the fallback per-entry path applies
    /// deliver()'s silent-discard rule at each packet's own arrival time.
    bool burst_capable() const noexcept {
        return up_ && static_cast<bool>(burst_receiver_);
    }

    /// Administrative / failure state. A down interface silently discards
    /// traffic in both directions (a dead transceiver).
    bool is_up() const noexcept { return up_; }
    virtual void set_up(bool up) {
        if (up_ == up) return;
        up_ = up;
        for (const auto& observer : state_observers_) observer(up);
    }

    /// Registers a carrier-state observer (routing protocols react to
    /// interface death immediately rather than waiting for timeouts).
    void add_state_observer(std::function<void(bool up)> observer) {
        state_observers_.push_back(std::move(observer));
    }

    /// Observer for egress-queue drops: the node that owns the interface
    /// sees which datagram it just threw away (Source Quench hooks here —
    /// the one piece of feedback a 1988 gateway could give).
    using DropObserver = std::function<void(const Packet&)>;
    void set_drop_observer(DropObserver observer) { drop_observer_ = std::move(observer); }

    /// Passive wire tap for equivalence tests: observes (digest, size) of
    /// every packet this interface delivers up its stack, in delivery
    /// order, WITHOUT disabling burst delivery (unlike set_receiver, which
    /// must force the per-packet path). The digest is FNV-1a over the wire
    /// bytes, so two runs whose digest streams match delivered
    /// byte-identical wire streams in the same order.
    using WireTap = std::function<void(std::uint64_t digest, std::uint32_t size)>;
    void set_wire_tap(WireTap tap) { wire_tap_ = std::move(tap); }

    /// FNV-1a over a byte range (the wire tap's digest function).
    static std::uint64_t wire_digest(std::span<const std::uint8_t> bytes) noexcept {
        std::uint64_t h = 1469598103934665603ull;
        for (const std::uint8_t b : bytes) {
            h ^= b;
            h *= 1099511628211ull;
        }
        return h;
    }

    /// Virtual so transmitters with deferred accounting (the burst
    /// in-flight ring) can settle up to now() before anyone reads.
    virtual const NetIfStats& stats() const noexcept { return stats_; }

    /// The IP address bound to this interface (assigned by the builder).
    util::Ipv4Address address() const noexcept { return address_; }
    void set_address(util::Ipv4Address addr) noexcept { address_ = addr; }

protected:
    void deliver(Packet&& packet) {
        if (!up_ || !receiver_) return;
        ++stats_.packets_received;
        stats_.bytes_received += packet.size();
        // The per-packet path may feed a custom receiver (tests capture
        // raw bytes here), so a deferred checksum is always settled.
        if (packet.csum_deferred) materialize_checksum(packet);
        if (wire_tap_) {
            wire_tap_(wire_digest(packet.bytes),
                      static_cast<std::uint32_t>(packet.size()));
        }
        receiver_(std::move(packet));
    }

    /// Hands a run up the stack. Receive stats accrue for exactly the
    /// consumed prefix, after the receiver returns but before any pending
    /// event fires — so a bailed-to event observes the same stats it would
    /// have seen under per-packet delivery. Sizes are snapshotted first:
    /// the receiver moves consumed packets out of their ring slots. The
    /// wire tap likewise digests every slot up front (the bytes are gone
    /// after consumption) but commits only the consumed prefix, so a
    /// bailed tail is reported once, on redelivery.
    std::size_t deliver_burst(PacketBurst& burst) {
        std::array<std::uint32_t, kBurst> sizes;
        std::array<std::uint64_t, kBurst> digests;
        for (std::size_t i = 0; i < burst.count; ++i) {
            sizes[i] = static_cast<std::uint32_t>(burst.items[i].packet->size());
            if (wire_tap_) {
                // The burst receiver is always the vouch-trusting IP stack
                // (custom receivers force the per-packet path), so the tap
                // digest is the only byte observer on this path.
                if (burst.items[i].packet->csum_deferred) {
                    materialize_checksum(*burst.items[i].packet);
                }
                digests[i] = wire_digest(burst.items[i].packet->bytes);
            }
        }
        const std::size_t consumed = burst_receiver_(burst);
        for (std::size_t i = 0; i < consumed; ++i) {
            ++stats_.packets_received;
            stats_.bytes_received += sizes[i];
            if (wire_tap_) wire_tap_(digests[i], sizes[i]);
        }
        return consumed;
    }

    void notify_drop(const Packet& packet) {
        if (drop_observer_) drop_observer_(packet);
    }

    Receiver receiver_;
    BurstReceiver burst_receiver_;
    DropObserver drop_observer_;
    WireTap wire_tap_;
    std::vector<std::function<void(bool)>> state_observers_;
    NetIfStats stats_;
    bool up_ = true;
    util::Ipv4Address address_;
};

}  // namespace catenet::link
