// The attachment point between a node and a network. The IP layer talks
// only to this interface, which is exactly the paper's goal-3 discipline:
// the internet layer may assume a network can carry a packet of reasonable
// size with nonzero probability and nothing else — no reliability, no
// ordering, no broadcast.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "link/packet.h"
#include "util/ip_address.h"

namespace catenet::link {

/// Channel-model outcomes (loss, corruption) on a link or LAN segment.
struct ChannelStats {
    std::uint64_t packets_lost = 0;       ///< dropped by the channel model
    std::uint64_t packets_corrupted = 0;  ///< delivered with flipped bits
};

struct NetIfStats {
    std::uint64_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t send_failures = 0;  // down interface or unresolvable next hop
    std::uint64_t busy_ns = 0;  // time the transmitter spent clocking bits out
};

class NetIf {
public:
    // The packet is handed up by rvalue reference so the four-deep delivery
    // chain (channel event → port → deliver → IP receive) moves the Packet
    // once, at the end, instead of at every by-value hand-off. Lambdas that
    // take `Packet` by value still bind — the move happens at their call.
    using Receiver = std::function<void(Packet&&)>;

    /// Burst receiver: consumes burst items in order, advancing the clock
    /// to each item's arrival time, and returns how many it consumed (a
    /// bail on a pending event leaves the tail with the caller, to be
    /// redelivered by a real event). Installed only by stacks whose burst
    /// path is byte-identical to their per-packet path.
    using BurstReceiver = std::function<std::size_t(PacketBurst&)>;

    virtual ~NetIf() = default;

    /// Largest payload this network carries in one frame.
    virtual std::size_t mtu() const noexcept = 0;

    /// Hands a packet to the network for delivery toward `next_hop` (the
    /// link-layer resolves it; point-to-point links ignore it). Best
    /// effort: the packet may be queued, dropped, corrupted or reordered
    /// downstream and the caller will never know — by design.
    virtual void send(Packet packet, util::Ipv4Address next_hop) = 0;

    virtual const std::string& name() const noexcept = 0;

    /// Installing a plain receiver (tests tap interfaces this way) clears
    /// any burst receiver: a tap must see the exact per-packet hand-off,
    /// so burst delivery falls back to the per-entry path.
    void set_receiver(Receiver receiver) {
        receiver_ = std::move(receiver);
        burst_receiver_ = nullptr;
    }

    /// Installs the burst fast path alongside the per-packet receiver.
    /// IpStack::add_interface is the only expected caller.
    void set_burst_receiver(BurstReceiver receiver) {
        burst_receiver_ = std::move(receiver);
    }

    /// True when a whole run may be handed to deliver_burst(). A down
    /// interface is not burst-capable: the fallback per-entry path applies
    /// deliver()'s silent-discard rule at each packet's own arrival time.
    bool burst_capable() const noexcept {
        return up_ && static_cast<bool>(burst_receiver_);
    }

    /// Administrative / failure state. A down interface silently discards
    /// traffic in both directions (a dead transceiver).
    bool is_up() const noexcept { return up_; }
    virtual void set_up(bool up) {
        if (up_ == up) return;
        up_ = up;
        for (const auto& observer : state_observers_) observer(up);
    }

    /// Registers a carrier-state observer (routing protocols react to
    /// interface death immediately rather than waiting for timeouts).
    void add_state_observer(std::function<void(bool up)> observer) {
        state_observers_.push_back(std::move(observer));
    }

    /// Observer for egress-queue drops: the node that owns the interface
    /// sees which datagram it just threw away (Source Quench hooks here —
    /// the one piece of feedback a 1988 gateway could give).
    using DropObserver = std::function<void(const Packet&)>;
    void set_drop_observer(DropObserver observer) { drop_observer_ = std::move(observer); }

    /// Virtual so transmitters with deferred accounting (the burst
    /// in-flight ring) can settle up to now() before anyone reads.
    virtual const NetIfStats& stats() const noexcept { return stats_; }

    /// The IP address bound to this interface (assigned by the builder).
    util::Ipv4Address address() const noexcept { return address_; }
    void set_address(util::Ipv4Address addr) noexcept { address_ = addr; }

protected:
    void deliver(Packet&& packet) {
        if (!up_ || !receiver_) return;
        ++stats_.packets_received;
        stats_.bytes_received += packet.size();
        receiver_(std::move(packet));
    }

    /// Hands a run up the stack. Receive stats accrue for exactly the
    /// consumed prefix, after the receiver returns but before any pending
    /// event fires — so a bailed-to event observes the same stats it would
    /// have seen under per-packet delivery. Sizes are snapshotted first:
    /// the receiver moves consumed packets out of their ring slots.
    std::size_t deliver_burst(PacketBurst& burst) {
        std::array<std::uint32_t, kBurst> sizes;
        for (std::size_t i = 0; i < burst.count; ++i) {
            sizes[i] = static_cast<std::uint32_t>(burst.items[i].packet->size());
        }
        const std::size_t consumed = burst_receiver_(burst);
        for (std::size_t i = 0; i < consumed; ++i) {
            ++stats_.packets_received;
            stats_.bytes_received += sizes[i];
        }
        return consumed;
    }

    void notify_drop(const Packet& packet) {
        if (drop_observer_) drop_observer_(packet);
    }

    Receiver receiver_;
    BurstReceiver burst_receiver_;
    DropObserver drop_observer_;
    std::vector<std::function<void(bool)>> state_observers_;
    NetIfStats stats_;
    bool up_ = true;
    util::Ipv4Address address_;
};

}  // namespace catenet::link
