// A duplex point-to-point link with a configurable channel model per
// direction: transmission rate, propagation delay, random extra delay
// (jitter), packet loss, and bit-error corruption applied to the actual
// packet bytes. Satellite, packet-radio and serial-line presets are all
// parameterizations of this class (see presets.h).
#pragma once

#include <memory>
#include <string>

#include "link/netif.h"
#include "link/queue.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace catenet::link {

struct LinkParams {
    std::uint64_t bits_per_second = 10'000'000;
    sim::Time propagation_delay = sim::microseconds(100);
    sim::Time jitter;                 ///< extra delay, uniform in [0, jitter]
    double drop_probability = 0.0;    ///< whole-packet channel loss
    double bit_error_rate = 0.0;      ///< per-bit corruption probability
    std::size_t mtu = 1500;
    std::size_t queue_capacity_packets = 64;

    /// Time to clock `bytes` onto the wire at this rate. Exact 64-bit
    /// integer ceiling — a partial nanosecond still occupies the wire — so
    /// serialization delay is deterministic and precise at any rate (the
    /// old double round-trip truncated and lost low bits above ~4 Gb/s).
    /// No overflow: bytes*8e9 <= 65537*8e9 < 2^63 for any IP datagram.
    sim::Time transmission_time(std::size_t bytes) const {
        const auto bits = static_cast<std::uint64_t>(bytes) * 8u;
        const auto ns =
            (bits * 1'000'000'000ull + bits_per_second - 1) / bits_per_second;
        return sim::Time(static_cast<std::int64_t>(ns));
    }
};

class PointToPointLink {
public:
    /// Symmetric link.
    PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng, const LinkParams& params,
                     std::string name = "p2p");
    /// Asymmetric link (e.g. satellite down/up channels).
    PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng, const LinkParams& a_to_b,
                     const LinkParams& b_to_a, std::string name = "p2p");
    ~PointToPointLink();

    NetIf& port_a() noexcept;
    NetIf& port_b() noexcept;

    /// Takes the whole link up or down. Going down flushes queues and
    /// loses every packet in flight — a cut cable.
    void set_up(bool up);
    bool is_up() const noexcept { return up_; }

    const ChannelStats& stats_a_to_b() const noexcept;
    const ChannelStats& stats_b_to_a() const noexcept;

    /// Replaces the egress queue on one port (for fair-queuing/priority
    /// experiments). Must be called while the queue is empty.
    void set_queue_a(std::unique_ptr<PacketQueue> q);
    void set_queue_b(std::unique_ptr<PacketQueue> q);
    PacketQueue& queue_a() noexcept;
    PacketQueue& queue_b() noexcept;

private:
    class Port;

    sim::Simulator& sim_;
    util::Rng rng_;
    std::unique_ptr<Port> a_;
    std::unique_ptr<Port> b_;
    bool up_ = true;
};

}  // namespace catenet::link
