// A duplex point-to-point link with a configurable channel model per
// direction: transmission rate, propagation delay, random extra delay
// (jitter), packet loss, and bit-error corruption applied to the actual
// packet bytes. Satellite, packet-radio and serial-line presets are all
// parameterizations of this class (see presets.h).
#pragma once

#include <memory>
#include <string>

#include "link/netif.h"
#include "link/queue.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace catenet::link {

struct LinkParams {
    std::uint64_t bits_per_second = 10'000'000;
    sim::Time propagation_delay = sim::microseconds(100);
    sim::Time jitter;                 ///< extra delay, uniform in [0, jitter]
    double drop_probability = 0.0;    ///< whole-packet channel loss
    double bit_error_rate = 0.0;      ///< per-bit corruption probability
    std::size_t mtu = 1500;
    std::size_t queue_capacity_packets = 64;

    /// Largest backlog run the transmitter commits to the wire in one
    /// wake-up (clamped to link::kBurst). Values <= 1 select the legacy
    /// per-packet engine. Burst draining also requires a deterministic
    /// channel (no loss, corruption or jitter — their RNG draws are
    /// ordered by per-packet transmit events) and a FIFO queue; links that
    /// fail the gate fall back to per-packet silently. The two engines
    /// produce byte-identical traces, counters and flight-recorder
    /// contents (see DESIGN.md §"burst forwarding").
    std::size_t burst = 32;

    /// Time to clock `bytes` onto the wire at this rate. Exact 64-bit
    /// integer ceiling — a partial nanosecond still occupies the wire — so
    /// serialization delay is deterministic and precise at any rate (the
    /// old double round-trip truncated and lost low bits above ~4 Gb/s).
    /// No overflow: bytes*8e9 <= 65537*8e9 < 2^63 for any IP datagram.
    sim::Time transmission_time(std::size_t bytes) const {
        const auto bits = static_cast<std::uint64_t>(bytes) * 8u;
        const auto ns =
            (bits * 1'000'000'000ull + bits_per_second - 1) / bits_per_second;
        return sim::Time(static_cast<std::int64_t>(ns));
    }
};

class PointToPointLink {
public:
    /// Symmetric link.
    PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng, const LinkParams& params,
                     std::string name = "p2p");
    /// Asymmetric link (e.g. satellite down/up channels).
    PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng, const LinkParams& a_to_b,
                     const LinkParams& b_to_a, std::string name = "p2p");
    ~PointToPointLink();

    NetIf& port_a() noexcept;
    NetIf& port_b() noexcept;

    /// Takes the whole link up or down. Going down flushes queues and
    /// loses every packet in flight — a cut cable.
    void set_up(bool up);
    bool is_up() const noexcept { return up_; }

    const ChannelStats& stats_a_to_b() const noexcept;
    const ChannelStats& stats_b_to_a() const noexcept;

    /// Replaces the egress queue on one port (for fair-queuing/priority
    /// experiments). Must be called while the queue is empty.
    void set_queue_a(std::unique_ptr<PacketQueue> q);
    void set_queue_b(std::unique_ptr<PacketQueue> q);
    PacketQueue& queue_a() noexcept;
    PacketQueue& queue_b() noexcept;

    /// Backlog depth as a per-packet observer would see it: packets still
    /// queued plus burst-drained packets whose serialization has not yet
    /// begun (they would still sit in the queue under per-packet
    /// draining). The queue-depth gauges sample through this.
    std::size_t queue_depth_a() noexcept;
    std::size_t queue_depth_b() noexcept;

private:
    class Port;

    sim::Simulator& sim_;
    util::Rng rng_;
    std::unique_ptr<Port> a_;
    std::unique_ptr<Port> b_;
    bool up_ = true;
};

}  // namespace catenet::link
