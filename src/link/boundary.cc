#include "link/boundary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "link/queue.h"
#include "util/buffer_pool.h"
#include "util/spsc_ring.h"

namespace catenet::link {

namespace {
constexpr std::int64_t kInfNs = std::numeric_limits<std::int64_t>::max();

std::int64_t lookahead_of(const LinkParams& params) {
    // The hard minimum between a send and its delivery: propagation plus
    // clocking one byte. transmission_time's integer ceiling guarantees
    // >= 1ns at any rate, so lookahead is always strictly positive — the
    // conservative engine's liveness condition.
    return params.propagation_delay.nanos() + params.transmission_time(1).nanos();
}
}  // namespace

// One direction's synchronization state. Producer fields are touched only
// by the source shard's thread, consumer fields only by the destination
// shard's; the SPSC ring and the horizon atomic are the entire interface
// between them.
class BoundaryLink::Channel final : public sim::BoundaryChannel {
public:
    Channel(std::uint32_t src_shard, std::uint32_t dst_shard, std::int64_t lookahead_ns,
            util::BufferPool& src_pool, util::BufferPool& dst_pool,
            std::size_t prewarm_bytes)
        : src_shard_(src_shard),
          dst_shard_(dst_shard),
          lookahead_ns_(lookahead_ns),
          src_pool_(src_pool),
          dst_pool_(dst_pool),
          ring_(1024) {
        // Spin one idle lap at construction, leaving an MTU-sized carcass
        // in every slot. The swap-backwards capacity flow otherwise only
        // begins once the ring wraps: until then each producer harvest is
        // the slot's default-constructed (capacity-zero) buffer, and every
        // send re-allocates — a full lap of heap traffic before the path
        // actually goes allocation-free.
        for (std::size_t i = 0; i < ring_.capacity(); ++i) {
            Frame in;
            ring_.push(in);
            Frame out;
            out.bytes.reserve(prewarm_bytes);
            ring_.pop(out);
        }
    }

    void set_dest_port(Port* port) noexcept { dst_port_ = port; }

    std::uint32_t source_shard() const noexcept override { return src_shard_; }
    std::uint32_t dest_shard() const noexcept override { return dst_shard_; }
    std::int64_t lookahead_ns() const noexcept { return lookahead_ns_; }
    const ChannelStats& channel_stats() const noexcept { return channel_stats_; }
    void count_loss() noexcept { ++channel_stats_.packets_lost; }
    void count_corruption() noexcept { ++channel_stats_.packets_corrupted; }

    // --- producer side -------------------------------------------------
    /// Accepts a transmitted datagram. FIFO into the ring (behind any
    /// backlogged frames); the swap-push leaves the slot's previous
    /// occupant — a buffer the consumer retired — in frame.bytes, which is
    /// recycled into the source pool: capacity flows against the stream.
    void submit(std::int64_t send_ns, std::int64_t deliver_ns, Packet&& packet) {
        Frame f;
        f.deliver_ns = std::max(deliver_ns, send_ns + lookahead_ns_);
        f.seq = next_seq_++;
        f.uid = packet.uid;
        f.created_ns = packet.created.nanos();
        f.send_ns = send_ns;
        f.csum_ok = packet.csum_ok;
        f.csum_deferred = packet.csum_deferred;
        f.bytes = std::move(packet.bytes);
        if (pending_head_ == pending_.size() && ring_.push(f)) {
            src_pool_.recycle(std::move(f.bytes));
            return;
        }
        pending_.push_back(std::move(f));
    }

    void flush(std::int64_t horizon_ns) override {
        while (pending_head_ < pending_.size()) {
            Frame& f = pending_[pending_head_];
            if (!ring_.push(f)) break;
            src_pool_.recycle(std::move(f.bytes));
            ++pending_head_;
        }
        if (pending_head_ == pending_.size()) {
            pending_.clear();
            pending_head_ = 0;
        } else if (pending_head_ > 32 && pending_head_ * 2 >= pending_.size()) {
            pending_.erase(pending_.begin(),
                           pending_.begin() + static_cast<std::ptrdiff_t>(pending_head_));
            pending_head_ = 0;
        }
        // Under backpressure the promise must shrink to just before the
        // first send still waiting for ring space (that send has already
        // happened, so "all sends <= h are in the ring" would otherwise be
        // false). Monotone: sends arrive in time order and the previous
        // publication was below this send's time.
        std::int64_t h = horizon_ns;
        if (pending_head_ < pending_.size()) {
            h = std::min(h, pending_[pending_head_].send_ns - 1);
        }
        if (h > horizon_.load(std::memory_order_relaxed)) {
            horizon_.store(h, std::memory_order_release);
        }
    }

    bool fully_flushed() const noexcept override {
        return pending_head_ == pending_.size();
    }

    // --- consumer side -------------------------------------------------
    std::int64_t safe_ns() override {
        return horizon_.load(std::memory_order_acquire) + lookahead_ns_;
    }

    void stage() override {
        while (!ring_.empty()) {
            Frame f;
            // Deposit a retired buffer into the slot as we take the packet
            // out; an empty deposit just means the pool was dry.
            f.bytes = dst_pool_.take_any();
            ring_.pop(f);
            staged_.push_back(std::move(f));
            std::push_heap(staged_.begin(), staged_.end(), later_);
        }
    }

    bool peek(std::int64_t& deliver_ns, std::uint64_t& seq) const override {
        if (staged_.empty()) return false;
        deliver_ns = staged_.front().deliver_ns;
        seq = staged_.front().seq;
        return true;
    }

    std::int64_t staged_head_ns() const override {
        return staged_.empty() ? kInfNs : staged_.front().deliver_ns;
    }

    void deliver_head() override;  // needs Port's definition

private:
    struct Frame {
        std::int64_t deliver_ns = 0;
        std::uint64_t seq = 0;
        std::uint64_t uid = 0;
        std::int64_t created_ns = 0;
        std::int64_t send_ns = 0;
        bool csum_ok = false;  ///< Packet::csum_ok, carried across the boundary
        bool csum_deferred = false;  ///< Packet::csum_deferred, ditto
        util::ByteBuffer bytes;
    };
    // Min-heap order for std::push_heap/pop_heap (which build max-heaps):
    // "later" frames sink. seq breaks equal-time ties FIFO.
    static bool later(const Frame& a, const Frame& b) noexcept {
        if (a.deliver_ns != b.deliver_ns) return a.deliver_ns > b.deliver_ns;
        return a.seq > b.seq;
    }
    static constexpr auto later_ = &Channel::later;

    const std::uint32_t src_shard_;
    const std::uint32_t dst_shard_;
    const std::int64_t lookahead_ns_;

    // Producer-owned.
    util::BufferPool& src_pool_;
    std::vector<Frame> pending_;  ///< sends awaiting ring space, FIFO from pending_head_
    std::size_t pending_head_ = 0;
    std::uint64_t next_seq_ = 0;
    ChannelStats channel_stats_;

    // Consumer-owned.
    util::BufferPool& dst_pool_;
    Port* dst_port_ = nullptr;
    std::vector<Frame> staged_;  ///< binary min-heap by (deliver_ns, seq)

    // Shared.
    util::SpscRing<Frame> ring_;
    std::atomic<std::int64_t> horizon_{-1};
};

// The transmitter: the same state machine as PointToPointLink's Port —
// idle-wire queue bypass, busy-until accounting, a wake-up event only when
// a backlog exists, memoized serialization delay — ending in a channel
// submit instead of a locally scheduled delivery.
//
// The burst engine mirrors the point-to-point port's drain policy exactly
// (same gate, same run limit, same admission rule, same deferred stats
// settlement) so a sharded run's kick events and statistics match the
// sequential twin whose boundary hop is an ordinary burst-mode
// PointToPointLink. A drained run's frames are submitted to the channel at
// drain time with their future serialization-start times; submit() floors
// delivery at send + lookahead, so the conservative promise holds
// unchanged. The one asymmetry: a submitted frame cannot be recalled, so a
// carrier cut with a committed backlog still delivers that run — covered
// by the existing contract that boundary carrier changes happen while the
// shard is quiescent.
class BoundaryLink::Port final : public NetIf {
public:
    Port(sim::Simulator& sim, Channel& out, LinkParams params, util::Rng rng,
         std::string name)
        : sim_(sim),
          out_(out),
          params_(params),
          rng_(std::move(rng)),
          name_(std::move(name)),
          queue_(std::make_unique<DropTailQueue>(params.queue_capacity_packets)) {
        burst_ = params_.burst > 1 && params_.drop_probability <= 0.0 &&
                 params_.bit_error_rate <= 0.0 && params_.jitter <= sim::Time(0) &&
                 queue_->fifo_burst_drainable();
    }

    std::size_t mtu() const noexcept override { return params_.mtu; }
    const std::string& name() const noexcept override { return name_; }

    void send(Packet packet, util::Ipv4Address /*next_hop*/) override {
        if (!up_) {
            ++stats_.send_failures;
            sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        const sim::Time now = sim_.now();
        packet.enqueued = now;
        if (now >= busy_until_ && queue_->empty()) {
            transmit(std::move(packet));
            return;
        }
        if (burst_ && busy_until_ > now) {
            // Same admission rule as the point-to-point burst port:
            // committed-but-unstarted frames still count against the cap.
            settle(now);
            if (ledger_count_ != 0 &&
                queue_->packets() + ledger_count_ >= queue_->capacity_packets()) {
                queue_->record_rejection(packet);
                notify_drop(packet);
                sim_.buffer_pool().recycle(std::move(packet.bytes));
                return;
            }
        }
        if (!queue_->enqueue(std::move(packet))) {
            notify_drop(packet);
            sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        if (now >= busy_until_) {
            start_transmission();
        } else if (!kick_scheduled_) {
            kick_scheduled_ = true;
            sim_.schedule_after(busy_until_ - now, [this] { kick(); });
        }
    }

    /// Carrier changes must happen while the owning shard is quiescent
    /// (between ParallelSimulator::run_until calls): the flag is read by
    /// this shard's thread on every send.
    void set_up(bool up) override {
        NetIf::set_up(up);
        if (!up) queue_->clear();
    }

    const NetIfStats& stats() const noexcept override {
        const_cast<Port*>(this)->settle(sim_.now());
        return stats_;
    }

    void receive_from_boundary(Packet&& packet) { deliver(std::move(packet)); }

private:
    /// A committed-but-unstarted transmission: submitted to the channel at
    /// drain time, its transmit-side stats settle when the clock passes
    /// its serialization start (the instant per-packet transmit() would
    /// have accrued them).
    struct LedgerEntry {
        std::int64_t tx_start_ns = 0;
        std::uint32_t size_bytes = 0;
    };

    sim::Time transmission_time(std::size_t bytes) {
        if (bytes != tx_memo_bytes_) {
            tx_memo_bytes_ = bytes;
            tx_memo_ = params_.transmission_time(bytes);
        }
        return tx_memo_;
    }

    void settle(sim::Time now) noexcept {
        while (ledger_count_ != 0) {
            const LedgerEntry& e = ledger_[ledger_head_];
            if (e.tx_start_ns > now.nanos()) break;
            ++stats_.packets_sent;
            stats_.bytes_sent += e.size_bytes;
            ledger_head_ = (ledger_head_ + 1) & (ledger_.size() - 1);
            --ledger_count_;
        }
    }

    void ledger_push(std::int64_t tx_start_ns, std::uint32_t size_bytes) {
        if (ledger_count_ == ledger_.size()) {
            std::vector<LedgerEntry> bigger(ledger_.empty() ? 2 * kBurst
                                                            : 2 * ledger_.size());
            for (std::size_t i = 0; i < ledger_count_; ++i) {
                bigger[i] = ledger_[(ledger_head_ + i) & (ledger_.size() - 1)];
            }
            ledger_ = std::move(bigger);
            ledger_head_ = 0;
        }
        ledger_[(ledger_head_ + ledger_count_) & (ledger_.size() - 1)] =
            LedgerEntry{tx_start_ns, size_bytes};
        ++ledger_count_;
    }

    void transmit(Packet packet) {
        const auto tx = transmission_time(packet.size());
        const sim::Time now = sim_.now();
        busy_until_ = now + tx;
        ++stats_.packets_sent;
        stats_.bytes_sent += packet.size();
        if (rng_.chance(params_.drop_probability)) {
            out_.count_loss();
            sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        maybe_corrupt(packet);
        sim::Time delay = tx + params_.propagation_delay;
        if (params_.jitter > sim::Time(0)) {
            delay += sim::Time(static_cast<std::int64_t>(
                rng_.uniform(0, static_cast<std::uint64_t>(params_.jitter.nanos()))));
        }
        out_.submit(now.nanos(), (now + delay).nanos(), std::move(packet));
    }

    void drain_burst() {
        const sim::Time now = sim_.now();
        sim::Time start = now;
        std::size_t n = 0;
        const std::size_t limit = std::min(params_.burst, kBurst);
        while (n < limit) {
            auto next = queue_->dequeue();
            if (!next) break;
            const auto tx = transmission_time(next->size());
            const sim::Time tx_start = start;
            start = start + tx;
            ledger_push(tx_start.nanos(), static_cast<std::uint32_t>(next->size()));
            out_.submit(tx_start.nanos(), (start + params_.propagation_delay).nanos(),
                        std::move(*next));
            ++n;
        }
        if (n == 0) return;
        busy_until_ = start;
        settle(now);
        if (!queue_->empty() && !kick_scheduled_) {
            kick_scheduled_ = true;
            sim_.schedule_after(busy_until_ - now, [this] { kick(); });
        }
    }

    void start_transmission() {
        if (burst_) {
            drain_burst();
            return;
        }
        auto next = queue_->dequeue();
        if (!next) return;
        transmit(std::move(*next));
        if (!queue_->empty() && !kick_scheduled_) {
            kick_scheduled_ = true;
            sim_.schedule_after(busy_until_ - sim_.now(), [this] { kick(); });
        }
    }

    void kick() {
        kick_scheduled_ = false;
        const sim::Time now = sim_.now();
        if (now >= busy_until_) {
            start_transmission();
        } else if (!queue_->empty()) {
            kick_scheduled_ = true;
            sim_.schedule_after(busy_until_ - now, [this] { kick(); });
        }
    }

    void maybe_corrupt(Packet& packet) {
        if (params_.bit_error_rate <= 0.0 || packet.bytes.empty()) return;
        const double bits = static_cast<double>(packet.size()) * 8.0;
        const double p_hit = 1.0 - std::pow(1.0 - params_.bit_error_rate, bits);
        if (!rng_.chance(p_hit)) return;
        out_.count_corruption();
        // Settle a deferred checksum before mangling the bytes (the far
        // side's verification fold must see the same wire an eager encode
        // would have produced, minus the flipped bits).
        if (packet.csum_deferred) materialize_checksum(packet);
        // Flipped bits invalidate any encoder-computed checksum.
        packet.csum_ok = false;
        const auto flips = rng_.uniform(1, 3);
        for (std::uint64_t i = 0; i < flips; ++i) {
            const auto bit = rng_.uniform(0, packet.size() * 8 - 1);
            packet.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
    }

    sim::Simulator& sim_;
    Channel& out_;
    LinkParams params_;
    util::Rng rng_;
    std::string name_;
    std::unique_ptr<PacketQueue> queue_;
    sim::Time busy_until_;
    bool kick_scheduled_ = false;
    std::size_t tx_memo_bytes_ = SIZE_MAX;
    sim::Time tx_memo_;
    bool burst_ = false;
    std::vector<LedgerEntry> ledger_;
    std::size_t ledger_head_ = 0;
    std::size_t ledger_count_ = 0;
};

void BoundaryLink::Channel::deliver_head() {
    std::pop_heap(staged_.begin(), staged_.end(), later_);
    Frame f = std::move(staged_.back());
    staged_.pop_back();
    Packet p;
    p.bytes = std::move(f.bytes);
    p.uid = f.uid;
    p.created = sim::Time(f.created_ns);
    p.enqueued = sim::Time(f.send_ns);
    p.csum_ok = f.csum_ok;
    p.csum_deferred = f.csum_deferred;
    dst_port_->receive_from_boundary(std::move(p));
}

BoundaryLink::BoundaryLink(sim::Simulator& sim_a, std::uint32_t shard_a,
                           sim::Simulator& sim_b, std::uint32_t shard_b,
                           util::Rng& parent_rng, const LinkParams& params,
                           std::string name)
    : BoundaryLink(sim_a, shard_a, sim_b, shard_b, parent_rng, params, params,
                   std::move(name)) {}

BoundaryLink::BoundaryLink(sim::Simulator& sim_a, std::uint32_t shard_a,
                           sim::Simulator& sim_b, std::uint32_t shard_b,
                           util::Rng& parent_rng, const LinkParams& a_to_b,
                           const LinkParams& b_to_a, std::string name) {
    util::Rng link_rng = parent_rng.fork();  // one fork, same as PointToPointLink
    ab_ = std::make_unique<Channel>(shard_a, shard_b, lookahead_of(a_to_b),
                                    sim_a.buffer_pool(), sim_b.buffer_pool(),
                                    a_to_b.mtu);
    ba_ = std::make_unique<Channel>(shard_b, shard_a, lookahead_of(b_to_a),
                                    sim_b.buffer_pool(), sim_a.buffer_pool(),
                                    b_to_a.mtu);
    a_ = std::make_unique<Port>(sim_a, *ab_, a_to_b, link_rng.fork(), name + ":a");
    b_ = std::make_unique<Port>(sim_b, *ba_, b_to_a, link_rng.fork(), name + ":b");
    ab_->set_dest_port(b_.get());
    ba_->set_dest_port(a_.get());
}

BoundaryLink::~BoundaryLink() = default;

NetIf& BoundaryLink::port_a() noexcept { return *a_; }
NetIf& BoundaryLink::port_b() noexcept { return *b_; }
sim::BoundaryChannel& BoundaryLink::channel_a_to_b() noexcept { return *ab_; }
sim::BoundaryChannel& BoundaryLink::channel_b_to_a() noexcept { return *ba_; }
const ChannelStats& BoundaryLink::stats_a_to_b() const noexcept {
    return ab_->channel_stats();
}
const ChannelStats& BoundaryLink::stats_b_to_a() const noexcept {
    return ba_->channel_stats();
}
std::uint64_t BoundaryLink::total_bytes_sent() const noexcept {
    return a_->stats().bytes_sent + b_->stats().bytes_sent;
}

}  // namespace catenet::link
