#include "link/netif.h"

// NetIf is header-only today; this translation unit anchors the vtable.
namespace catenet::link {
namespace {
// Intentionally empty.
}
}  // namespace catenet::link
