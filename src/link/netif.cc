#include "link/netif.h"

#include <cstring>

#include "util/checksum.h"

// The GSO late split (DESIGN.md §12): generic byte surgery over a 40-byte
// [IPv4|TCP] header template plus ring views. Deliberately placed in the
// link layer with no ip/ or tcp/ dependency — the split advances raw
// per-segment fields (IP id/length, TCP seq/flags) and re-derives both
// checksums; it needs no protocol object model, exactly like a NIC's TSO
// engine works from descriptor fields, not from the host stack's structs.
namespace catenet::link {

namespace {

inline std::uint16_t load_u16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

inline std::uint32_t load_u32(const std::uint8_t* p) noexcept {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_u16(std::uint8_t* p, std::uint16_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v & 0xff);
}

inline void store_u32(std::uint8_t* p, std::uint32_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v & 0xff);
}

}  // namespace

Packet gso_split_segment(const GsoDescriptor& d, std::size_t i) {
    const std::size_t off = i * d.seg_payload;
    const bool last = (i + 1 == d.seg_count);
    const std::size_t len =
        last ? d.payload_size() - off : d.seg_payload;
    const std::size_t total = 40 + len;

    util::ByteBuffer out = d.sim->buffer_pool().acquire(total);
    // Same sizing discipline as encode_tcp_segment: never resize() over the
    // payload region, so vector value-initialization stays off the hot path.
    out.resize(40);
    std::uint8_t* p = out.data();
    std::memcpy(p, d.proto.data(), 40);

    // IPv4: advance identification by i and set this segment's total
    // length. The template checksum already covers a full-sized segment
    // (write_ipv4_header computed it for id+0, 40 + seg_payload), so each
    // changed word is patched incrementally per RFC 1624 — bit-identical
    // to the full 20-byte refold, at two word swaps instead.
    std::uint16_t ipck = load_u16(p + 10);
    if (i != 0) {
        const std::uint16_t id = load_u16(p + 4);
        const auto nid = static_cast<std::uint16_t>(id + i);
        store_u16(p + 4, nid);
        ipck = util::checksum_update_u16(ipck, id, nid);
    }
    if (const std::uint16_t tpl_total = load_u16(p + 2); tpl_total != total) {
        store_u16(p + 2, static_cast<std::uint16_t>(total));
        ipck = util::checksum_update_u16(ipck, tpl_total,
                                         static_cast<std::uint16_t>(total));
    }
    store_u16(p + 10, ipck);

    // TCP: advance the sequence number by the payload already covered; the
    // final segment may add flag bits (PSH). Checksum is computed below
    // over the assembled [header|payload] exactly like patch_checksum.
    store_u32(p + 24, static_cast<std::uint32_t>(load_u32(p + 24) + off));
    if (last) p[33] |= d.last_flags_or;
    store_u16(p + 36, 0);

    // Append this segment's payload sub-range, spanning the a/b ring views
    // as needed (same no-value-init insert discipline as the encoder).
    if (off < d.payload_a.size()) {
        const std::size_t run = std::min(len, d.payload_a.size() - off);
        out.insert(out.end(), d.payload_a.begin() + static_cast<std::ptrdiff_t>(off),
                   d.payload_a.begin() + static_cast<std::ptrdiff_t>(off + run));
        if (run < len) {
            out.insert(out.end(), d.payload_b.begin(),
                       d.payload_b.begin() + static_cast<std::ptrdiff_t>(len - run));
        }
    } else {
        const std::size_t boff = off - d.payload_a.size();
        out.insert(out.end(), d.payload_b.begin() + static_cast<std::ptrdiff_t>(boff),
                   d.payload_b.begin() + static_cast<std::ptrdiff_t>(boff + len));
    }
    Packet packet = make_packet(std::move(out), *d.sim);
    packet.csum_ok = true;        // IP header checksum is real (patched above)
    packet.csum_deferred = true;  // TCP fold deferred to the first observer
    return packet;
}

void materialize_checksum(Packet& packet) noexcept {
    packet.csum_deferred = false;
    std::uint8_t* p = packet.bytes.data();
    const std::size_t total = packet.bytes.size();
    const std::size_t ihl = (p[0] & 0x0fu) * 4u;  // the split emits 20
    util::ChecksumAccumulator acc;
    acc.add_u32(load_u32(p + 12));                          // pseudo: src
    acc.add_u32(load_u32(p + 16));                          // pseudo: dst
    acc.add_u16(p[9]);                                      // pseudo: protocol
    acc.add_u16(static_cast<std::uint16_t>(total - ihl));   // pseudo: TCP length
    acc.add({p + ihl, total - ihl});  // checksum field holds the zero it expects
    store_u16(p + ihl + 16, acc.finish());
}

void NetIf::send_gso(const GsoDescriptor& d, util::Ipv4Address next_hop) {
    for (std::size_t i = 0; i < d.seg_count; ++i) {
        send(gso_split_segment(d, i), next_hop);
    }
}

}  // namespace catenet::link
