// Egress queue disciplines. Gateways in the base architecture use plain
// drop-tail FIFO (the 1988 reality). The "flows and soft state" experiment
// (E10) and the type-of-service experiments swap in fair queuing and
// strict-priority disciplines via this common interface.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "link/packet.h"

namespace catenet::link {

struct QueueStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t bytes_enqueued = 0;
    std::uint64_t bytes_dropped = 0;
};

class PacketQueue {
public:
    virtual ~PacketQueue() = default;

    /// Returns false (and records a drop) when the packet was not
    /// accepted. Takes an rvalue reference — NOT by value — so that a
    /// rejected packet is left intact in the caller's hands (drop
    /// observers inspect it); implementations move from it only on
    /// acceptance.
    virtual bool enqueue(Packet&& packet) = 0;
    virtual std::optional<Packet> dequeue() = 0;
    virtual std::size_t packets() const noexcept = 0;
    virtual std::size_t bytes() const noexcept = 0;
    virtual void clear() = 0;

    bool empty() const noexcept { return packets() == 0; }
    const QueueStats& stats() const noexcept { return stats_; }

    /// True when the discipline is a plain FIFO whose future dequeue order
    /// is fully determined by the current contents — the precondition for
    /// the burst transmitter to dequeue a whole run up front. Disciplines
    /// whose order depends on packets that arrive later (priority, fair
    /// queuing) must stay on the per-packet path.
    virtual bool fifo_burst_drainable() const noexcept { return false; }

    /// Packet-count cap for admission mirroring; 0 when the discipline has
    /// no single cap (then burst draining is off anyway).
    virtual std::size_t capacity_packets() const noexcept { return 0; }

    /// Records a drop-tail rejection decided by the transmitter rather
    /// than by enqueue(): the burst path pre-dequeues a run, so "queue
    /// full" is judged against queued + not-yet-transmitting in-flight
    /// packets, but the drop must land in this queue's stats exactly as an
    /// enqueue() rejection would.
    void record_rejection(const Packet& packet) noexcept {
        ++stats_.dropped;
        stats_.bytes_dropped += packet.size();
    }

protected:
    QueueStats stats_;
};

/// FIFO with a packet-count cap; the classic 1988 gateway buffer.
/// Implemented as a fixed ring over preallocated slots: the bounded
/// capacity is the whole point of the discipline, so the hot
/// enqueue/dequeue cycle never touches the allocator (a deque allocates
/// and frees a block every few packets as the ring of use crosses block
/// boundaries).
class DropTailQueue final : public PacketQueue {
public:
    explicit DropTailQueue(std::size_t capacity_packets);

    bool enqueue(Packet&& packet) override;
    std::optional<Packet> dequeue() override;
    std::size_t packets() const noexcept override { return count_; }
    std::size_t bytes() const noexcept override { return bytes_; }
    void clear() override;
    bool fifo_burst_drainable() const noexcept override { return true; }
    std::size_t capacity_packets() const noexcept override { return slots_.size(); }

private:
    std::vector<Packet> slots_;  ///< fixed size = capacity, ring-indexed
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t bytes_ = 0;
};

/// Maps a packet to a flow id (for fair queuing) or a priority level.
/// Gateways install a classifier that parses the IP/transport headers.
using Classifier = std::function<std::uint64_t(const Packet&)>;

/// Strict priority with N levels (level 0 = highest), each drop-tail
/// bounded. Models type-of-service / precedence handling (goal 2).
class PriorityQueue final : public PacketQueue {
public:
    PriorityQueue(std::size_t levels, std::size_t per_level_capacity, Classifier level_of);

    bool enqueue(Packet&& packet) override;
    std::optional<Packet> dequeue() override;
    std::size_t packets() const noexcept override { return packets_; }
    std::size_t bytes() const noexcept override { return bytes_; }
    void clear() override;

private:
    std::vector<std::deque<Packet>> levels_;
    std::size_t per_level_capacity_;
    Classifier level_of_;
    std::size_t packets_ = 0;
    std::size_t bytes_ = 0;
};

/// Deficit-round-robin fair queue across dynamically discovered flows.
/// Per-flow state is *soft*: it exists only while the flow has packets
/// queued, exactly in the spirit of the paper's "flows and soft state"
/// section — losing it harms nothing but short-term fairness.
class FairQueue final : public PacketQueue {
public:
    FairQueue(std::size_t per_flow_capacity, std::size_t quantum_bytes, Classifier flow_of);

    bool enqueue(Packet&& packet) override;
    std::optional<Packet> dequeue() override;
    std::size_t packets() const noexcept override { return packets_; }
    std::size_t bytes() const noexcept override { return bytes_; }
    void clear() override;

    /// Number of flows that currently hold queued packets (soft state size).
    std::size_t active_flows() const noexcept { return flows_.size(); }

private:
    struct Flow {
        std::deque<Packet> q;
        std::size_t deficit = 0;
    };

    std::size_t per_flow_capacity_;
    std::size_t quantum_;
    Classifier flow_of_;
    std::map<std::uint64_t, Flow> flows_;
    std::deque<std::uint64_t> round_robin_;
    std::size_t packets_ = 0;
    std::size_t bytes_ = 0;
};

}  // namespace catenet::link
