// A shared broadcast LAN (Ethernet-like bus). One frame occupies the
// medium at a time; stations queue behind it. Frames carry a two-byte
// link-layer destination (port index, or 0xffff broadcast) prepended to
// the payload — the minimal "local network header" the paper's gateways
// must add and strip per attached network. Next-hop IP addresses are
// resolved to ports through a static neighbor table (ARP's steady state).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "link/netif.h"
#include "link/queue.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace catenet::link {

struct LanParams {
    std::uint64_t bits_per_second = 10'000'000;
    sim::Time propagation_delay = sim::microseconds(5);
    double drop_probability = 0.0;
    std::size_t mtu = 1500;
    std::size_t queue_capacity_packets = 64;
};

class Lan {
public:
    static constexpr std::uint16_t kBroadcastPort = 0xffff;

    Lan(sim::Simulator& sim, util::Rng& parent_rng, const LanParams& params,
        std::string name = "lan");
    ~Lan();

    /// Creates a new station attachment. The returned interface is owned
    /// by the Lan and valid for its lifetime.
    NetIf& add_port();

    std::size_t port_count() const noexcept;

    /// Registers `addr` as reachable at `port_index` (static ARP entry).
    /// The builder calls this for every address bound to a LAN port.
    void register_address(util::Ipv4Address addr, std::size_t port_index);

    /// Whole-segment failure: everything queued or in flight is lost.
    void set_up(bool up);
    bool is_up() const noexcept { return up_; }

    const ChannelStats& channel_stats() const noexcept { return channel_stats_; }

    /// Aggregate frame bytes handed to the medium by all stations.
    std::uint64_t total_bytes_sent() const noexcept;

private:
    class Port;

    void transmit_from(std::size_t port_index);
    void medium_idle();
    void deliver_frame(std::size_t src_port, Packet frame);

    sim::Simulator& sim_;
    util::Rng rng_;
    LanParams params_;
    std::string name_;
    std::vector<std::unique_ptr<Port>> ports_;
    std::unordered_map<util::Ipv4Address, std::size_t> neighbors_;
    std::vector<std::size_t> backlog_;  // ports waiting for the medium, FIFO
    bool medium_busy_ = false;
    bool up_ = true;
    ChannelStats channel_stats_;
};

}  // namespace catenet::link
