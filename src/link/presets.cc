#include "link/presets.h"

namespace catenet::link::presets {

LinkParams leased_line() {
    LinkParams p;
    p.bits_per_second = 56'000;
    p.propagation_delay = sim::milliseconds(10);
    p.mtu = 1006;  // ARPANET-era maximum
    p.queue_capacity_packets = 32;
    return p;
}

LinkParams slow_serial() {
    LinkParams p;
    p.bits_per_second = 1'200;
    p.propagation_delay = sim::milliseconds(5);
    p.mtu = 576;
    p.queue_capacity_packets = 16;
    return p;
}

LinkParams ethernet_hop() {
    LinkParams p;
    p.bits_per_second = 10'000'000;
    p.propagation_delay = sim::microseconds(50);
    p.mtu = 1500;
    p.queue_capacity_packets = 64;
    return p;
}

LinkParams satellite() {
    LinkParams p;
    p.bits_per_second = 1'544'000;  // T1 over the bird
    p.propagation_delay = sim::milliseconds(250);
    p.jitter = sim::milliseconds(2);
    p.drop_probability = 0.001;
    p.mtu = 1500;
    p.queue_capacity_packets = 128;
    return p;
}

LinkParams packet_radio() {
    LinkParams p;
    p.bits_per_second = 100'000;
    p.propagation_delay = sim::milliseconds(20);
    p.jitter = sim::milliseconds(30);
    p.drop_probability = 0.03;
    p.bit_error_rate = 1e-6;
    p.mtu = 512;  // small radio frames force fragmentation
    p.queue_capacity_packets = 32;
    return p;
}

LinkParams x25_hop() {
    LinkParams p;
    p.bits_per_second = 64'000;
    p.propagation_delay = sim::milliseconds(40);  // store-and-forward inside the PDN
    p.mtu = 576;
    p.queue_capacity_packets = 32;
    return p;
}

LanParams ethernet_lan() {
    LanParams p;
    p.bits_per_second = 10'000'000;
    p.propagation_delay = sim::microseconds(5);
    p.mtu = 1500;
    p.queue_capacity_packets = 64;
    return p;
}

}  // namespace catenet::link::presets
