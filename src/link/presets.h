// Link parameterizations for the network technologies the paper lists the
// Internet as spanning: "leased lines, X.25 networks, Ethernets, satellite
// networks, packet radio networks, serial links down to 1200 bit/sec".
// Goal-3 experiments run identical transport workloads over each of these.
#pragma once

#include "link/lan.h"
#include "link/point_to_point.h"

namespace catenet::link::presets {

/// 56 kbit/s ARPANET-style leased line.
LinkParams leased_line();

/// 1200 bit/s dial-up serial line (the paper's lower bound).
LinkParams slow_serial();

/// 10 Mbit/s local Ethernet modeled as a point-to-point hop.
LinkParams ethernet_hop();

/// Geostationary satellite channel: ~250 ms one-way delay, moderate rate.
LinkParams satellite();

/// Packet radio: lossy, jittery, modest rate, small MTU.
LinkParams packet_radio();

/// X.25-era public data network hop: slow-ish with store-and-forward delay.
LinkParams x25_hop();

/// Shared 10 Mbit/s Ethernet segment.
LanParams ethernet_lan();

}  // namespace catenet::link::presets
