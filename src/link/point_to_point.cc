#include "link/point_to_point.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

namespace catenet::link {

// One direction of the duplex link: owns the egress queue and the
// transmitter state machine, and knows its peer so it can deliver.
class PointToPointLink::Port final : public NetIf {
public:
    Port(PointToPointLink& link, LinkParams params, std::string name)
        : link_(link),
          params_(params),
          name_(std::move(name)),
          queue_(std::make_unique<DropTailQueue>(params.queue_capacity_packets)) {}

    std::size_t mtu() const noexcept override { return params_.mtu; }
    const std::string& name() const noexcept override { return name_; }

    void send(Packet packet, util::Ipv4Address /*next_hop*/) override {
        if (!up_ || !link_.up_) {
            ++stats_.send_failures;
            link_.sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        const sim::Time now = link_.sim_.now();
        packet.enqueued = now;
        if (now >= busy_until_ && queue_->empty()) {
            // Idle wire, no backlog: any discipline would hand this exact
            // packet straight back, so it skips the queue entirely.
            transmit(std::move(packet));
            return;
        }
        // PacketQueue contract: on rejection the argument is untouched, so
        // the drop observer can still inspect it.
        if (!queue_->enqueue(std::move(packet))) {
            notify_drop(packet);
            link_.sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        if (now >= busy_until_) {
            start_transmission();
        } else if (!kick_scheduled_) {
            // The wire is mid-serialization; wake up exactly when it frees.
            kick_scheduled_ = true;
            link_.sim_.schedule_after(busy_until_ - now, [this] { kick(); });
        }
    }

    void set_up(bool up) override {
        NetIf::set_up(up);
        if (!up) queue_->clear();
    }

    void set_peer(Port* peer) noexcept { peer_ = peer; }
    void set_queue(std::unique_ptr<PacketQueue> q) { queue_ = std::move(q); }
    PacketQueue& queue() noexcept { return *queue_; }
    const ChannelStats& channel_stats() const noexcept { return channel_stats_; }
    void flush() { queue_->clear(); }

    void receive_from_peer(Packet&& packet) { deliver(std::move(packet)); }

private:
    // Clocks the head-of-queue packet onto the wire. The serialization and
    // propagation phases collapse into ONE scheduled event: channel
    // outcomes (loss, corruption, jitter) are drawn at transmission start
    // and delivery lands at now + tx + propagation. A separate wake-up
    // ("kick") at busy_until_ is scheduled only when a backlog actually
    // exists, so the uncongested fast path costs a single event per hop.
    void start_transmission() {
        auto next = queue_->dequeue();
        if (!next) return;
        transmit(std::move(*next));
        if (!queue_->empty() && !kick_scheduled_) {
            kick_scheduled_ = true;
            link_.sim_.schedule_after(busy_until_ - link_.sim_.now(), [this] { kick(); });
        }
    }

    // One-entry memo over LinkParams::transmission_time. A port in steady
    // state clocks a stream of same-sized packets (full segments one way,
    // bare ACKs the other), and the 64-bit ceiling division is the single
    // most expensive instruction left in the per-hop path; the memo turns
    // it into a compare. A size change is just one recomputation.
    sim::Time transmission_time(std::size_t bytes) {
        if (bytes != tx_memo_bytes_) {
            tx_memo_bytes_ = bytes;
            tx_memo_ = params_.transmission_time(bytes);
        }
        return tx_memo_;
    }

    void transmit(Packet packet) {
        const auto tx = transmission_time(packet.size());
        busy_until_ = link_.sim_.now() + tx;
        ++stats_.packets_sent;
        stats_.bytes_sent += packet.size();
        stats_.busy_ns += static_cast<std::uint64_t>(tx.nanos());
        if (link_.rng_.chance(params_.drop_probability)) {
            ++channel_stats_.packets_lost;
            link_.sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        maybe_corrupt(packet);
        sim::Time delay = tx + params_.propagation_delay;
        if (params_.jitter > sim::Time(0)) {
            delay += sim::Time(static_cast<std::int64_t>(
                link_.rng_.uniform(0, static_cast<std::uint64_t>(params_.jitter.nanos()))));
        }
        // The packet rides inside the event slot itself (InlineCallback's
        // capture budget covers this + Packet), so any number of packets can
        // be concurrently propagating without heap traffic.
        link_.sim_.schedule_after(delay, [this, p = std::move(packet)]() mutable {
            if (peer_ != nullptr && link_.up_) {
                peer_->receive_from_peer(std::move(p));
            } else {
                // In flight when the link failed: lost on the wire.
                ++channel_stats_.packets_lost;
                link_.sim_.buffer_pool().recycle(std::move(p.bytes));
            }
        });
    }

    void kick() {
        kick_scheduled_ = false;
        const sim::Time now = link_.sim_.now();
        if (now >= busy_until_) {
            start_transmission();
        } else if (!queue_->empty()) {
            // A same-timestamp send beat us to the wire; chase the new
            // busy horizon.
            kick_scheduled_ = true;
            link_.sim_.schedule_after(busy_until_ - now, [this] { kick(); });
        }
    }

    void maybe_corrupt(Packet& packet) {
        if (params_.bit_error_rate <= 0.0 || packet.bytes.empty()) return;
        const double bits = static_cast<double>(packet.size()) * 8.0;
        // P(any bit flips) = 1 - (1 - ber)^bits; for the small rates we
        // model, flipping one to three random bits on a hit is faithful.
        const double p_hit = 1.0 - std::pow(1.0 - params_.bit_error_rate, bits);
        if (!link_.rng_.chance(p_hit)) return;
        ++channel_stats_.packets_corrupted;
        const auto flips = link_.rng_.uniform(1, 3);
        for (std::uint64_t i = 0; i < flips; ++i) {
            const auto bit = link_.rng_.uniform(0, packet.size() * 8 - 1);
            packet.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
    }

    PointToPointLink& link_;
    LinkParams params_;
    std::string name_;
    std::unique_ptr<PacketQueue> queue_;
    Port* peer_ = nullptr;
    sim::Time busy_until_;        ///< the wire is serializing until this time
    bool kick_scheduled_ = false; ///< a wake-up at busy_until_ is pending
    std::size_t tx_memo_bytes_ = SIZE_MAX;  ///< last size fed to transmission_time
    sim::Time tx_memo_;                     ///< its serialization delay
    ChannelStats channel_stats_;
};

PointToPointLink::PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng,
                                   const LinkParams& params, std::string name)
    : PointToPointLink(sim, parent_rng, params, params, std::move(name)) {}

PointToPointLink::PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng,
                                   const LinkParams& a_to_b, const LinkParams& b_to_a,
                                   std::string name)
    : sim_(sim), rng_(parent_rng.fork()) {
    a_ = std::make_unique<Port>(*this, a_to_b, name + ":a");
    b_ = std::make_unique<Port>(*this, b_to_a, name + ":b");
    a_->set_peer(b_.get());
    b_->set_peer(a_.get());
}

PointToPointLink::~PointToPointLink() = default;

NetIf& PointToPointLink::port_a() noexcept { return *a_; }
NetIf& PointToPointLink::port_b() noexcept { return *b_; }

void PointToPointLink::set_up(bool up) {
    up_ = up;
    // Carrier state is visible at both attachments: a cut cable reads as a
    // dead interface, which routing protocols use to withdraw routes.
    a_->set_up(up);
    b_->set_up(up);
    if (!up) {
        a_->flush();
        b_->flush();
    }
}

const ChannelStats& PointToPointLink::stats_a_to_b() const noexcept {
    return a_->channel_stats();
}
const ChannelStats& PointToPointLink::stats_b_to_a() const noexcept {
    return b_->channel_stats();
}

void PointToPointLink::set_queue_a(std::unique_ptr<PacketQueue> q) { a_->set_queue(std::move(q)); }
void PointToPointLink::set_queue_b(std::unique_ptr<PacketQueue> q) { b_->set_queue(std::move(q)); }
PacketQueue& PointToPointLink::queue_a() noexcept { return a_->queue(); }
PacketQueue& PointToPointLink::queue_b() noexcept { return b_->queue(); }

}  // namespace catenet::link
