#include "link/point_to_point.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

namespace catenet::link {

// One direction of the duplex link: owns the egress queue and the
// transmitter state machine, and knows its peer so it can deliver.
//
// Two engines share this state machine. The legacy per-packet engine
// schedules one delivery event per packet (transmit()). The burst engine
// (DESIGN.md §"burst forwarding") commits a whole backlog run to the wire
// schedule at once: entries move into an in-flight ring, ONE chain event
// per direction fires at the ring head's arrival, and the chain walks the
// run by advancing the clock to each arrival with
// Simulator::advance_if_idle — bailing back to a real event the moment any
// other event would interleave. Transmit-side statistics settle lazily
// (an entry's stats accrue when the clock passes its serialization start),
// so every observer reads exactly what per-packet accounting would show.
class PointToPointLink::Port final : public NetIf {
public:
    Port(PointToPointLink& link, LinkParams params, std::string name)
        : link_(link),
          params_(params),
          name_(std::move(name)),
          queue_(std::make_unique<DropTailQueue>(params.queue_capacity_packets)) {
        refresh_burst_mode();
    }

    std::size_t mtu() const noexcept override { return params_.mtu; }
    const std::string& name() const noexcept override { return name_; }

    void send(Packet packet, util::Ipv4Address /*next_hop*/) override {
        if (!up_ || !link_.up_) {
            ++stats_.send_failures;
            link_.sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        const sim::Time now = link_.sim_.now();
        packet.enqueued = now;
        if (now >= busy_until_ && queue_->empty()) {
            // Idle wire, no backlog: any discipline would hand this exact
            // packet straight back, so it skips the queue entirely.
            // Stream detection: a line-rate stream hands the wire its next
            // packet exactly at the serialization boundary (now ==
            // busy_until_) or while earlier entries still propagate
            // (ring_count_ != 0) — those ride the in-flight ring so runs
            // stay contiguous and deliver as bursts. A send after any
            // strictly positive idle gap is latency traffic: the
            // per-packet transmit is exact there (burst eligibility
            // guarantees no channel randomness — chance(0) never draws —
            // so one delivery event at now + tx + propagation is the
            // identical, and cheapest, schedule), keeping single-packet
            // latency free of ring/chain bookkeeping.
            if (burst_ && (ring_count_ != 0 || now == busy_until_)) {
                transmit_burst_single(std::move(packet), now);
            } else {
                transmit(std::move(packet));
            }
            return;
        }
        if (burst_ && busy_until_ > now) {
            // Admission must mirror per-packet draining: ring entries whose
            // serialization has not begun would still occupy queue slots
            // under the per-packet engine, so they count against the cap.
            settle(now);
            const std::size_t unstarted = ring_count_ - ring_settled_;
            if (unstarted != 0 &&
                queue_->packets() + unstarted >= queue_->capacity_packets()) {
                queue_->record_rejection(packet);
                notify_drop(packet);
                link_.sim_.buffer_pool().recycle(std::move(packet.bytes));
                return;
            }
        }
        // PacketQueue contract: on rejection the argument is untouched, so
        // the drop observer can still inspect it.
        if (!queue_->enqueue(std::move(packet))) {
            notify_drop(packet);
            link_.sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        if (now >= busy_until_) {
            start_transmission();
        } else if (!kick_scheduled_) {
            // The wire is mid-serialization; wake up exactly when it frees.
            kick_scheduled_ = true;
            link_.sim_.schedule_after(busy_until_ - now, [this] { kick(); });
        }
    }

    void set_up(bool up) override {
        NetIf::set_up(up);
        if (up) return;
        queue_->clear();
        if (!burst_ || ring_count_ == ring_settled_) return;
        // A dead transceiver loses its queued packets; ring entries whose
        // serialization has not begun are still "queued" in per-packet
        // terms, so they vanish the same way — silently, with no stats to
        // roll back (settlement never reached them). Entries already on
        // the wire keep propagating and face the carrier check at their
        // own arrival, exactly like per-packet delivery events.
        settle(link_.sim_.now());
        while (ring_count_ > ring_settled_) {
            FlightEntry& e = ring_at(ring_count_ - 1);
            link_.sim_.buffer_pool().recycle(std::move(e.packet.bytes));
            --ring_count_;
        }
        if (ring_settled_ > 0) {
            busy_until_ = ring_at(ring_settled_ - 1).arrival - params_.propagation_delay;
        }
        if (ring_count_ == 0 && chain_pending_) {
            link_.sim_.cancel(chain_id_);
            chain_pending_ = false;
        }
    }

    const NetIfStats& stats() const noexcept override {
        // Deferred-settlement read: accrue every serialization the clock
        // has passed, so gauges and reports see per-packet-exact numbers.
        const_cast<Port*>(this)->settle(link_.sim_.now());
        return stats_;
    }

    void set_peer(Port* peer) noexcept { peer_ = peer; }
    void set_queue(std::unique_ptr<PacketQueue> q) {
        queue_ = std::move(q);
        refresh_burst_mode();
    }
    PacketQueue& queue() noexcept { return *queue_; }
    const ChannelStats& channel_stats() const noexcept { return channel_stats_; }
    void flush() { queue_->clear(); }

    std::size_t queued_depth() noexcept {
        settle(link_.sim_.now());
        return queue_->packets() + (ring_count_ - ring_settled_);
    }

    void receive_from_peer(Packet&& packet) { deliver(std::move(packet)); }

private:
    /// One committed transmission: its packet (until delivery moves it
    /// out), its wire schedule, and a size snapshot so settlement never
    /// depends on the packet still being present.
    struct FlightEntry {
        Packet packet;
        sim::Time tx_start;
        sim::Time arrival;  ///< serialization end + propagation
        std::uint32_t size_bytes = 0;
    };
    // Clocks the head-of-queue packet onto the wire. The serialization and
    // propagation phases collapse into ONE scheduled event: channel
    // outcomes (loss, corruption, jitter) are drawn at transmission start
    // and delivery lands at now + tx + propagation. A separate wake-up
    // ("kick") at busy_until_ is scheduled only when a backlog actually
    // exists, so the uncongested fast path costs a single event per hop.
    void start_transmission() {
        if (burst_) {
            drain_burst();
            return;
        }
        auto next = queue_->dequeue();
        if (!next) return;
        transmit(std::move(*next));
        if (!queue_->empty() && !kick_scheduled_) {
            kick_scheduled_ = true;
            link_.sim_.schedule_after(busy_until_ - link_.sim_.now(), [this] { kick(); });
        }
    }

    // --- burst engine ---------------------------------------------------

    /// The burst gate. A run is committed to the wire schedule before its
    /// packets individually transmit, which is only equivalent to
    /// per-packet operation when (a) the channel draws no randomness per
    /// packet (loss/corruption/jitter draws are ordered by transmit
    /// events), and (b) the queue is a FIFO whose future dequeue order
    /// cannot be changed by later arrivals.
    void refresh_burst_mode() noexcept {
        burst_ = params_.burst > 1 && params_.drop_probability <= 0.0 &&
                 params_.bit_error_rate <= 0.0 && params_.jitter <= sim::Time(0) &&
                 queue_->fifo_burst_drainable();
    }

    std::size_t burst_limit() const noexcept { return std::min(params_.burst, kBurst); }

    FlightEntry& ring_at(std::size_t i) noexcept {
        return ring_[(ring_head_ + i) & (ring_.size() - 1)];
    }

    void ring_push(FlightEntry&& e) {
        if (ring_count_ == ring_.size()) grow_ring();
        ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)] = std::move(e);
        ++ring_count_;
    }

    void ring_pop_front(std::size_t n) noexcept {
        ring_head_ = (ring_head_ + n) & (ring_.size() - 1);
        ring_count_ -= n;
        ring_settled_ -= n;
    }

    void grow_ring() {
        // Doubles until it covers the link's peak in-flight population
        // (bandwidth-delay product in packets), then never allocates again.
        std::vector<FlightEntry> bigger(ring_.empty() ? 2 * kBurst : 2 * ring_.size());
        for (std::size_t i = 0; i < ring_count_; ++i) bigger[i] = std::move(ring_at(i));
        ring_ = std::move(bigger);
        ring_head_ = 0;
    }

    /// Accrues transmit-side stats for every entry whose serialization has
    /// begun by `now` — the instant per-packet transmit() would have
    /// accrued them. Entries settle in ring order (tx_start is monotone).
    void settle(sim::Time now) noexcept {
        while (ring_settled_ < ring_count_) {
            const FlightEntry& e = ring_[(ring_head_ + ring_settled_) & (ring_.size() - 1)];
            if (e.tx_start > now) break;
            ++stats_.packets_sent;
            stats_.bytes_sent += e.size_bytes;
            stats_.busy_ns += static_cast<std::uint64_t>(
                (e.arrival - params_.propagation_delay - e.tx_start).nanos());
            ++ring_settled_;
        }
    }

    void schedule_chain(sim::Time when) {
        if (chain_pending_) {
            // reschedule() re-sequences the event, so a bail's resumption
            // fires after any same-nanosecond event scheduled before it —
            // the same FIFO tie rule a freshly scheduled event obeys.
            link_.sim_.reschedule(chain_id_, when);
        } else {
            chain_id_ = link_.sim_.schedule_at(when, [this] { chain_fire(); });
            chain_pending_ = true;
        }
    }

    /// Idle-wire fast path in burst mode: same wire math as transmit(),
    /// but the packet rides the in-flight ring and the (single) chain
    /// event instead of a dedicated delivery event.
    void transmit_burst_single(Packet packet, sim::Time now) {
        const auto tx = transmission_time(packet.size());
        FlightEntry e;
        e.tx_start = now;
        e.arrival = now + tx + params_.propagation_delay;
        e.size_bytes = static_cast<std::uint32_t>(packet.size());
        e.packet = std::move(packet);
        ring_push(std::move(e));
        busy_until_ = now + tx;
        settle(now);
        // Earlier entries may still be propagating; the chain reaches this
        // one in arrival order (arrivals are monotone: FIFO wire).
        if (!chain_pending_) schedule_chain(ring_at(0).arrival);
    }

    /// Commits up to one burst of backlog to the wire schedule in a single
    /// wake-up: the per-packet engine would re-fire a kick per packet at
    /// each serialization boundary; here the whole run's timeline is fixed
    /// now and the per-boundary wake-ups disappear.
    void drain_burst() {
        const sim::Time now = link_.sim_.now();
        sim::Time start = now;
        std::size_t n = 0;
        const std::size_t limit = burst_limit();
        while (n < limit) {
            auto next = queue_->dequeue();
            if (!next) break;
            const auto tx = transmission_time(next->size());
            FlightEntry e;
            e.tx_start = start;
            start = start + tx;
            e.arrival = start + params_.propagation_delay;
            e.size_bytes = static_cast<std::uint32_t>(next->size());
            e.packet = std::move(*next);
            ring_push(std::move(e));
            ++n;
        }
        if (n == 0) return;
        busy_until_ = start;
        settle(now);
        if (!chain_pending_) schedule_chain(ring_at(0).arrival);
        if (!queue_->empty() && !kick_scheduled_) {
            kick_scheduled_ = true;
            link_.sim_.schedule_after(busy_until_ - now, [this] { kick(); });
        }
    }

    /// The chain event: fires at the ring head's arrival, delivers runs,
    /// and walks forward through subsequent arrivals while the engine is
    /// idle. Every delivered packet is processed at exactly its own
    /// arrival time — advance_if_idle moves the clock and counts the event
    /// the per-packet engine would have fired, or refuses, in which case
    /// the chain reschedules and the pending event sees fully settled
    /// state.
    void chain_fire() {
        chain_pending_ = false;
        for (;;) {
            const std::size_t consumed = deliver_run();
            settle(link_.sim_.now());
            ring_pop_front(consumed);
            if (ring_count_ == 0) return;
            const sim::Time next_arrival = ring_at(0).arrival;
            if (!link_.sim_.advance_if_idle(next_arrival)) {
                schedule_chain(next_arrival);
                return;
            }
        }
    }

    /// Delivers a prefix of the ring (clock at the head entry's arrival).
    /// Returns how many entries were consumed — always at least one.
    std::size_t deliver_run() {
        const std::size_t run = std::min(ring_count_, burst_limit());
        // A run of one gains nothing from the pipelined receive (its
        // per-burst fixed costs — descriptor arrays, memo, counter
        // locals — are pure overhead at n=1); the per-packet delivery
        // below is byte-identical by definition, so take it directly.
        if (run > 1 && peer_ != nullptr && link_.up_ && peer_->burst_capable()) {
            PacketBurst burst;
            for (std::size_t i = 0; i < run; ++i) {
                FlightEntry& e = ring_at(i);
                burst.items[i] = PacketBurst::Item{&e.packet, e.arrival};
            }
            burst.count = run;
            return peer_->deliver_burst(burst);
        }
        // Per-entry fallback (down link, no peer, or a tap receiver):
        // byte-for-byte the per-packet delivery lambda, at each packet's
        // own arrival time.
        std::size_t i = 0;
        for (; i < run; ++i) {
            FlightEntry& e = ring_at(i);
            if (i > 0 && !link_.sim_.advance_if_idle(e.arrival)) break;
            if (peer_ != nullptr && link_.up_) {
                peer_->receive_from_peer(std::move(e.packet));
            } else {
                // In flight when the link failed: lost on the wire.
                ++channel_stats_.packets_lost;
                link_.sim_.buffer_pool().recycle(std::move(e.packet.bytes));
            }
        }
        return i;
    }

    // One-entry memo over LinkParams::transmission_time. A port in steady
    // state clocks a stream of same-sized packets (full segments one way,
    // bare ACKs the other), and the 64-bit ceiling division is the single
    // most expensive instruction left in the per-hop path; the memo turns
    // it into a compare. A size change is just one recomputation.
    sim::Time transmission_time(std::size_t bytes) {
        if (bytes != tx_memo_bytes_) {
            tx_memo_bytes_ = bytes;
            tx_memo_ = params_.transmission_time(bytes);
        }
        return tx_memo_;
    }

    void transmit(Packet packet) {
        const auto tx = transmission_time(packet.size());
        busy_until_ = link_.sim_.now() + tx;
        ++stats_.packets_sent;
        stats_.bytes_sent += packet.size();
        stats_.busy_ns += static_cast<std::uint64_t>(tx.nanos());
        if (link_.rng_.chance(params_.drop_probability)) {
            ++channel_stats_.packets_lost;
            link_.sim_.buffer_pool().recycle(std::move(packet.bytes));
            return;
        }
        maybe_corrupt(packet);
        sim::Time delay = tx + params_.propagation_delay;
        if (params_.jitter > sim::Time(0)) {
            delay += sim::Time(static_cast<std::int64_t>(
                link_.rng_.uniform(0, static_cast<std::uint64_t>(params_.jitter.nanos()))));
        }
        // The packet rides inside the event slot itself (InlineCallback's
        // capture budget covers this + Packet), so any number of packets can
        // be concurrently propagating without heap traffic.
        link_.sim_.schedule_after(delay, [this, p = std::move(packet)]() mutable {
            if (peer_ != nullptr && link_.up_) {
                peer_->receive_from_peer(std::move(p));
            } else {
                // In flight when the link failed: lost on the wire.
                ++channel_stats_.packets_lost;
                link_.sim_.buffer_pool().recycle(std::move(p.bytes));
            }
        });
    }

    void kick() {
        kick_scheduled_ = false;
        const sim::Time now = link_.sim_.now();
        if (now >= busy_until_) {
            start_transmission();
        } else if (!queue_->empty()) {
            // A same-timestamp send beat us to the wire; chase the new
            // busy horizon.
            kick_scheduled_ = true;
            link_.sim_.schedule_after(busy_until_ - now, [this] { kick(); });
        }
    }

    void maybe_corrupt(Packet& packet) {
        if (params_.bit_error_rate <= 0.0 || packet.bytes.empty()) return;
        const double bits = static_cast<double>(packet.size()) * 8.0;
        // P(any bit flips) = 1 - (1 - ber)^bits; for the small rates we
        // model, flipping one to three random bits on a hit is faithful.
        const double p_hit = 1.0 - std::pow(1.0 - params_.bit_error_rate, bits);
        if (!link_.rng_.chance(p_hit)) return;
        ++channel_stats_.packets_corrupted;
        // A deferred checksum must hit the wire before the bits do: the
        // receiver's verification fold runs over [materialized|corrupted]
        // bytes exactly as it would over an eagerly-encoded segment.
        if (packet.csum_deferred) materialize_checksum(packet);
        // Flipped bits invalidate any encoder-computed checksum: the
        // receiver must fall back to the full verification fold.
        packet.csum_ok = false;
        const auto flips = link_.rng_.uniform(1, 3);
        for (std::uint64_t i = 0; i < flips; ++i) {
            const auto bit = link_.rng_.uniform(0, packet.size() * 8 - 1);
            packet.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
    }

    PointToPointLink& link_;
    LinkParams params_;
    std::string name_;
    std::unique_ptr<PacketQueue> queue_;
    Port* peer_ = nullptr;
    sim::Time busy_until_;        ///< the wire is serializing until this time
    bool kick_scheduled_ = false; ///< a wake-up at busy_until_ is pending
    std::size_t tx_memo_bytes_ = SIZE_MAX;  ///< last size fed to transmission_time
    sim::Time tx_memo_;                     ///< its serialization delay
    ChannelStats channel_stats_;

    // Burst engine state. The ring holds committed transmissions in wire
    // order: [0, ring_settled_) have accrued stats, [ring_settled_,
    // ring_count_) have not begun serializing. One chain event per
    // direction (chain_id_) covers every undelivered entry.
    bool burst_ = false;
    std::vector<FlightEntry> ring_;  ///< power-of-two capacity, index-masked
    std::size_t ring_head_ = 0;
    std::size_t ring_count_ = 0;
    std::size_t ring_settled_ = 0;
    sim::EventId chain_id_ = sim::kInvalidEventId;
    bool chain_pending_ = false;
};

PointToPointLink::PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng,
                                   const LinkParams& params, std::string name)
    : PointToPointLink(sim, parent_rng, params, params, std::move(name)) {}

PointToPointLink::PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng,
                                   const LinkParams& a_to_b, const LinkParams& b_to_a,
                                   std::string name)
    : sim_(sim), rng_(parent_rng.fork()) {
    a_ = std::make_unique<Port>(*this, a_to_b, name + ":a");
    b_ = std::make_unique<Port>(*this, b_to_a, name + ":b");
    a_->set_peer(b_.get());
    b_->set_peer(a_.get());
}

PointToPointLink::~PointToPointLink() = default;

NetIf& PointToPointLink::port_a() noexcept { return *a_; }
NetIf& PointToPointLink::port_b() noexcept { return *b_; }

void PointToPointLink::set_up(bool up) {
    up_ = up;
    // Carrier state is visible at both attachments: a cut cable reads as a
    // dead interface, which routing protocols use to withdraw routes.
    a_->set_up(up);
    b_->set_up(up);
    if (!up) {
        a_->flush();
        b_->flush();
    }
}

const ChannelStats& PointToPointLink::stats_a_to_b() const noexcept {
    return a_->channel_stats();
}
const ChannelStats& PointToPointLink::stats_b_to_a() const noexcept {
    return b_->channel_stats();
}

void PointToPointLink::set_queue_a(std::unique_ptr<PacketQueue> q) { a_->set_queue(std::move(q)); }
void PointToPointLink::set_queue_b(std::unique_ptr<PacketQueue> q) { b_->set_queue(std::move(q)); }
PacketQueue& PointToPointLink::queue_a() noexcept { return a_->queue(); }
PacketQueue& PointToPointLink::queue_b() noexcept { return b_->queue(); }

std::size_t PointToPointLink::queue_depth_a() noexcept { return a_->queued_depth(); }
std::size_t PointToPointLink::queue_depth_b() noexcept { return b_->queued_depth(); }

}  // namespace catenet::link
