#include "link/point_to_point.h"

#include <cmath>
#include <memory>
#include <utility>

namespace catenet::link {

// One direction of the duplex link: owns the egress queue and the
// transmitter state machine, and knows its peer so it can deliver.
class PointToPointLink::Port final : public NetIf {
public:
    Port(PointToPointLink& link, LinkParams params, std::string name)
        : link_(link),
          params_(params),
          name_(std::move(name)),
          queue_(std::make_unique<DropTailQueue>(params.queue_capacity_packets)) {}

    std::size_t mtu() const noexcept override { return params_.mtu; }
    const std::string& name() const noexcept override { return name_; }

    void send(Packet packet, util::Ipv4Address /*next_hop*/) override {
        if (!up_ || !link_.up_) {
            ++stats_.send_failures;
            return;
        }
        packet.enqueued = link_.sim_.now();
        // PacketQueue contract: on rejection the argument is untouched, so
        // the drop observer can still inspect it.
        if (!queue_->enqueue(std::move(packet))) {
            notify_drop(packet);
            return;
        }
        if (!transmitting_) start_transmission();
    }

    void set_up(bool up) override {
        NetIf::set_up(up);
        if (!up) queue_->clear();
    }

    void set_peer(Port* peer) noexcept { peer_ = peer; }
    void set_queue(std::unique_ptr<PacketQueue> q) { queue_ = std::move(q); }
    PacketQueue& queue() noexcept { return *queue_; }
    const ChannelStats& channel_stats() const noexcept { return channel_stats_; }
    void flush() { queue_->clear(); }

    void receive_from_peer(Packet packet) { deliver(std::move(packet)); }

private:
    void start_transmission() {
        auto next = queue_->dequeue();
        if (!next) return;
        transmitting_ = true;
        const auto tx = params_.transmission_time(next->size());
        // Capture by shared_ptr: the packet outlives this scope until the
        // delivery event fires.
        auto pkt = std::make_shared<Packet>(std::move(*next));
        link_.sim_.schedule_after(tx, [this, pkt] {
            finish_transmission(std::move(*pkt));
        });
        ++stats_.packets_sent;
        stats_.bytes_sent += pkt->size();
    }

    void finish_transmission(Packet packet) {
        transmitting_ = false;
        propagate(std::move(packet));
        start_transmission();  // clock out the next queued packet, if any
    }

    void propagate(Packet packet) {
        if (!link_.up_) {
            // In-flight at the moment of failure: lost.
            ++channel_stats_.packets_lost;
            return;
        }
        if (link_.rng_.chance(params_.drop_probability)) {
            ++channel_stats_.packets_lost;
            return;
        }
        maybe_corrupt(packet);
        sim::Time delay = params_.propagation_delay;
        if (params_.jitter > sim::Time(0)) {
            delay += sim::Time(static_cast<std::int64_t>(
                link_.rng_.uniform(0, static_cast<std::uint64_t>(params_.jitter.nanos()))));
        }
        auto pkt = std::make_shared<Packet>(std::move(packet));
        link_.sim_.schedule_after(delay, [this, pkt] {
            if (peer_ != nullptr && link_.up_) peer_->receive_from_peer(std::move(*pkt));
        });
    }

    void maybe_corrupt(Packet& packet) {
        if (params_.bit_error_rate <= 0.0 || packet.bytes.empty()) return;
        const double bits = static_cast<double>(packet.size()) * 8.0;
        // P(any bit flips) = 1 - (1 - ber)^bits; for the small rates we
        // model, flipping one to three random bits on a hit is faithful.
        const double p_hit = 1.0 - std::pow(1.0 - params_.bit_error_rate, bits);
        if (!link_.rng_.chance(p_hit)) return;
        ++channel_stats_.packets_corrupted;
        const auto flips = link_.rng_.uniform(1, 3);
        for (std::uint64_t i = 0; i < flips; ++i) {
            const auto bit = link_.rng_.uniform(0, packet.size() * 8 - 1);
            packet.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
    }

    PointToPointLink& link_;
    LinkParams params_;
    std::string name_;
    std::unique_ptr<PacketQueue> queue_;
    Port* peer_ = nullptr;
    bool transmitting_ = false;
    ChannelStats channel_stats_;
};

PointToPointLink::PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng,
                                   const LinkParams& params, std::string name)
    : PointToPointLink(sim, parent_rng, params, params, std::move(name)) {}

PointToPointLink::PointToPointLink(sim::Simulator& sim, util::Rng& parent_rng,
                                   const LinkParams& a_to_b, const LinkParams& b_to_a,
                                   std::string name)
    : sim_(sim), rng_(parent_rng.fork()) {
    a_ = std::make_unique<Port>(*this, a_to_b, name + ":a");
    b_ = std::make_unique<Port>(*this, b_to_a, name + ":b");
    a_->set_peer(b_.get());
    b_->set_peer(a_.get());
}

PointToPointLink::~PointToPointLink() = default;

NetIf& PointToPointLink::port_a() noexcept { return *a_; }
NetIf& PointToPointLink::port_b() noexcept { return *b_; }

void PointToPointLink::set_up(bool up) {
    up_ = up;
    // Carrier state is visible at both attachments: a cut cable reads as a
    // dead interface, which routing protocols use to withdraw routes.
    a_->set_up(up);
    b_->set_up(up);
    if (!up) {
        a_->flush();
        b_->flush();
    }
}

const ChannelStats& PointToPointLink::stats_a_to_b() const noexcept {
    return a_->channel_stats();
}
const ChannelStats& PointToPointLink::stats_b_to_a() const noexcept {
    return b_->channel_stats();
}

void PointToPointLink::set_queue_a(std::unique_ptr<PacketQueue> q) { a_->set_queue(std::move(q)); }
void PointToPointLink::set_queue_b(std::unique_ptr<PacketQueue> q) { b_->set_queue(std::move(q)); }
PacketQueue& PointToPointLink::queue_a() noexcept { return a_->queue(); }
PacketQueue& PointToPointLink::queue_b() noexcept { return b_->queue(); }

}  // namespace catenet::link
