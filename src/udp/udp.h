// RFC 768 UDP: the thin datagram transport whose very existence is the
// paper's goal-2 argument — once reliability moved out of the internet
// layer into TCP, applications that do not want reliability (voice, the
// XNET debugger) needed a transport that adds only ports and a checksum.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>

#include "ip/ip_stack.h"

namespace catenet::udp {

inline constexpr std::size_t kUdpHeaderSize = 8;

struct UdpHeader {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
};

/// Serializes a UDP segment with the RFC 768 pseudo-header checksum.
util::ByteBuffer encode_udp(const UdpHeader& header, util::Ipv4Address src,
                            util::Ipv4Address dst, std::span<const std::uint8_t> payload);

/// Decodes and checksum-verifies. Returns nullopt on bad checksum or
/// malformed length.
std::optional<UdpHeader> decode_udp(util::Ipv4Address src, util::Ipv4Address dst,
                                    std::span<const std::uint8_t> segment,
                                    std::span<const std::uint8_t>& payload_out);

struct UdpStats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t dropped_bad_checksum = 0;
    std::uint64_t dropped_no_socket = 0;
};

class UdpStack;

/// An unreliable datagram endpoint. Destroying the socket unbinds it.
class UdpSocket {
public:
    /// (source address, source port, payload)
    using DatagramHandler = std::function<void(
        util::Ipv4Address, std::uint16_t, std::span<const std::uint8_t>)>;

    ~UdpSocket();
    UdpSocket(const UdpSocket&) = delete;
    UdpSocket& operator=(const UdpSocket&) = delete;

    std::uint16_t local_port() const noexcept { return port_; }
    void set_handler(DatagramHandler handler) { handler_ = std::move(handler); }

    /// Type-of-service bits stamped on outbound datagrams (goal 2).
    void set_tos(std::uint8_t tos) noexcept { tos_ = tos; }

    /// Sends one datagram. Returns false when IP had no route.
    bool send_to(util::Ipv4Address dst, std::uint16_t dst_port,
                 std::span<const std::uint8_t> payload);

private:
    friend class UdpStack;
    UdpSocket(UdpStack& stack, std::uint16_t port) : stack_(&stack), port_(port) {}

    UdpStack* stack_;
    std::uint16_t port_;
    std::uint8_t tos_ = 0;
    DatagramHandler handler_;
};

/// Per-host UDP demultiplexer, registered with the IP stack on creation.
class UdpStack {
public:
    explicit UdpStack(ip::IpStack& ip);
    UdpStack(const UdpStack&) = delete;
    UdpStack& operator=(const UdpStack&) = delete;

    /// Binds a specific port; throws std::invalid_argument if taken.
    std::unique_ptr<UdpSocket> bind(std::uint16_t port);

    /// Binds an ephemeral port.
    std::unique_ptr<UdpSocket> bind_ephemeral();

    const UdpStats& stats() const noexcept { return stats_; }
    /// This stack's UDP counter slots (mirror the UdpStats fields).
    const telemetry::CounterBlock& counters() const noexcept { return counters_; }
    ip::IpStack& ip() noexcept { return ip_; }

private:
    friend class UdpSocket;
    void on_datagram(const ip::Ipv4Header& header, std::span<const std::uint8_t> payload);
    void unbind(std::uint16_t port) { sockets_.erase(port); }

    ip::IpStack& ip_;
    std::map<std::uint16_t, UdpSocket*> sockets_;
    UdpStats stats_;
    telemetry::CounterBlock counters_;
    std::uint16_t next_ephemeral_ = 49152;
};

}  // namespace catenet::udp
