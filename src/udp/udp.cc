#include "udp/udp.h"

#include <stdexcept>

#include "ip/protocols.h"
#include "util/checksum.h"

namespace catenet::udp {

util::ByteBuffer encode_udp(const UdpHeader& header, util::Ipv4Address src,
                            util::Ipv4Address dst, std::span<const std::uint8_t> payload) {
    const std::size_t total = kUdpHeaderSize + payload.size();
    if (total > 0xffff) throw std::length_error("UDP datagram too large");
    util::BufferWriter w(total);
    w.put_u16(header.src_port);
    w.put_u16(header.dst_port);
    w.put_u16(static_cast<std::uint16_t>(total));
    w.put_u16(0);  // checksum placeholder
    w.put_bytes(payload);
    std::uint16_t checksum = util::transport_checksum(src, dst, ip::kProtoUdp, w.data());
    if (checksum == 0) checksum = 0xffff;  // RFC 768: 0 means "no checksum"
    w.patch_u16(6, checksum);
    return w.take();
}

std::optional<UdpHeader> decode_udp(util::Ipv4Address src, util::Ipv4Address dst,
                                    std::span<const std::uint8_t> segment,
                                    std::span<const std::uint8_t>& payload_out) {
    if (segment.size() < kUdpHeaderSize) return std::nullopt;
    util::BufferReader r(segment);
    UdpHeader h;
    h.src_port = r.get_u16();
    h.dst_port = r.get_u16();
    const std::uint16_t length = r.get_u16();
    const std::uint16_t checksum = r.get_u16();
    if (length < kUdpHeaderSize || length > segment.size()) return std::nullopt;
    if (checksum != 0) {
        if (util::transport_checksum(src, dst, ip::kProtoUdp, segment.subspan(0, length)) != 0) {
            return std::nullopt;
        }
    }
    payload_out = segment.subspan(kUdpHeaderSize, length - kUdpHeaderSize);
    return h;
}

UdpSocket::~UdpSocket() {
    if (stack_ != nullptr) stack_->unbind(port_);
}

bool UdpSocket::send_to(util::Ipv4Address dst, std::uint16_t dst_port,
                        std::span<const std::uint8_t> payload) {
    // Resolve the source address the datagram will carry: the egress
    // interface's address, which IP picks; we use the primary address in
    // the checksum. To keep the checksum consistent with the header IP
    // writes, pin the source explicitly.
    const util::Ipv4Address src = stack_->ip().primary_address();
    UdpHeader h;
    h.src_port = port_;
    h.dst_port = dst_port;
    const auto segment = encode_udp(h, src, dst, payload);
    ip::SendOptions opts;
    opts.tos = tos_;
    opts.source = src;
    const bool ok = stack_->ip().send(ip::kProtoUdp, dst, segment, opts);
    if (ok) {
        ++stack_->stats_.datagrams_sent;
        stack_->counters_.inc(telemetry::Counter::UdpTx);
    }
    return ok;
}

UdpStack::UdpStack(ip::IpStack& ip) : ip_(ip) {
    ip_.register_protocol(
        ip::kProtoUdp,
        [this](const ip::Ipv4Header& h, std::span<const std::uint8_t> p, std::size_t) {
            on_datagram(h, p);
        });
}

std::unique_ptr<UdpSocket> UdpStack::bind(std::uint16_t port) {
    if (sockets_.contains(port)) {
        throw std::invalid_argument("UDP port already bound: " + std::to_string(port));
    }
    auto socket = std::unique_ptr<UdpSocket>(new UdpSocket(*this, port));
    sockets_[port] = socket.get();
    return socket;
}

std::unique_ptr<UdpSocket> UdpStack::bind_ephemeral() {
    for (int attempts = 0; attempts < 0xffff; ++attempts) {
        const std::uint16_t candidate = next_ephemeral_;
        next_ephemeral_ = candidate == 0xffff ? 49152 : candidate + 1;
        if (!sockets_.contains(candidate)) return bind(candidate);
    }
    throw std::runtime_error("no free UDP ephemeral ports");
}

void UdpStack::on_datagram(const ip::Ipv4Header& header,
                           std::span<const std::uint8_t> payload) {
    std::span<const std::uint8_t> data;
    auto h = decode_udp(header.src, header.dst, payload, data);
    if (!h) {
        ++stats_.dropped_bad_checksum;
        counters_.inc(telemetry::Counter::UdpDropChecksum);
        return;
    }
    auto it = sockets_.find(h->dst_port);
    if (it == sockets_.end()) {
        ++stats_.dropped_no_socket;
        counters_.inc(telemetry::Counter::UdpDropNoSocket);
        return;
    }
    ++stats_.datagrams_received;
    counters_.inc(telemetry::Counter::UdpRx);
    if (it->second->handler_) {
        it->second->handler_(header.src, h->src_port, data);
    }
}

}  // namespace catenet::udp
