// 32-bit sequence-number arithmetic (RFC 793 §3.3). All comparisons are
// modulo 2^32; "less than" means "earlier in the window", valid as long as
// compared numbers are within half the space of each other.
#pragma once

#include <cstdint>

namespace catenet::tcp {

using SeqNum = std::uint32_t;

constexpr bool seq_lt(SeqNum a, SeqNum b) noexcept {
    return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_leq(SeqNum a, SeqNum b) noexcept {
    return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool seq_gt(SeqNum a, SeqNum b) noexcept { return seq_lt(b, a); }
constexpr bool seq_geq(SeqNum a, SeqNum b) noexcept { return seq_leq(b, a); }

/// True when `seq` falls in the half-open window [lo, lo+size).
constexpr bool seq_in_window(SeqNum seq, SeqNum lo, std::uint32_t size) noexcept {
    return size > 0 && seq_leq(lo, seq) && seq_lt(seq, lo + size);
}

}  // namespace catenet::tcp
