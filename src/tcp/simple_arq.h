// A deliberately old-fashioned reliable transport with **packet-granularity
// sequence numbers** and go-back-N retransmission: the design space the
// paper says TCP rejected in favor of byte sequencing ("permits the packet
// to be broken up ... permits a number of small packets to be gathered
// together into one larger packet"). Data is packetized once, at send
// time, into fixed-size packets; a retransmission must resend exactly the
// original packets — no coalescing, no repacketization. Experiment E9
// races this against TCP; experiment E6 uses its fixed retransmission
// timer as the "naive host" transport.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>

#include "ip/ip_stack.h"
#include "sim/timer.h"

namespace catenet::tcp {

/// Simulator-internal IP protocol number for the ARQ transport.
inline constexpr std::uint8_t kProtoSimpleArq = 254;

struct ArqConfig {
    std::size_t packet_payload = 512;  ///< fixed packetization quantum
    std::size_t window_packets = 8;
    sim::Time rto = sim::seconds(1);   ///< fixed — no adaptation, no backoff
    std::size_t send_buffer_packets = 256;
};

struct ArqStats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_retransmitted = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t out_of_order_dropped = 0;
};

class ArqEndpoint;

/// Sending half of a one-way reliable packet stream.
class ArqSender {
public:
    /// Accepts bytes; they are packetized immediately at the configured
    /// quantum. Returns bytes accepted (bounded by the send buffer).
    std::size_t send(std::span<const std::uint8_t> data);

    /// Flushes a final short packet if one is pending.
    void flush();

    bool idle() const noexcept { return packets_.empty() && partial_.empty(); }
    const ArqStats& stats() const noexcept { return stats_; }

private:
    friend class ArqEndpoint;
    ArqSender(ArqEndpoint& endpoint, util::Ipv4Address dst, std::uint16_t dst_port,
              std::uint16_t src_port, ArqConfig config);

    void try_send();
    void on_ack(std::uint32_t ack);
    void on_rto();
    void transmit_packet(std::uint32_t seq);

    ArqEndpoint& endpoint_;
    util::Ipv4Address dst_;
    std::uint16_t dst_port_;
    std::uint16_t src_port_;
    ArqConfig config_;
    std::deque<util::ByteBuffer> packets_;  ///< unacked + unsent, front = base
    util::ByteBuffer partial_;              ///< bytes not yet filling a packet
    std::uint32_t base_seq_ = 0;            ///< seq of packets_.front()
    std::uint32_t next_unsent_ = 0;         ///< offset into packets_ of first unsent
    sim::Timer rto_timer_;
    ArqStats stats_;
};

/// Per-host demux for the ARQ protocol.
class ArqEndpoint {
public:
    /// In-order packet delivery: (source, source port, payload).
    using Receiver = std::function<void(util::Ipv4Address, std::uint16_t,
                                        std::span<const std::uint8_t>)>;

    explicit ArqEndpoint(ip::IpStack& ip);
    ArqEndpoint(const ArqEndpoint&) = delete;
    ArqEndpoint& operator=(const ArqEndpoint&) = delete;

    std::unique_ptr<ArqSender> create_sender(util::Ipv4Address dst, std::uint16_t dst_port,
                                             ArqConfig config = {});
    void listen(std::uint16_t port, Receiver receiver);

    ip::IpStack& ip() noexcept { return ip_; }
    const ArqStats& receive_stats() const noexcept { return recv_stats_; }

private:
    friend class ArqSender;

    struct StreamKey {
        std::uint32_t src;
        std::uint16_t src_port;
        std::uint16_t dst_port;
        auto operator<=>(const StreamKey&) const = default;
    };

    void on_datagram(const ip::Ipv4Header& header, std::span<const std::uint8_t> payload);
    void send_ack(util::Ipv4Address dst, std::uint16_t dst_port, std::uint16_t src_port,
                  std::uint32_t ack);

    ip::IpStack& ip_;
    std::map<std::uint16_t, Receiver> listeners_;
    std::map<StreamKey, std::uint32_t> expected_;  ///< next in-order seq
    std::map<std::uint16_t, ArqSender*> senders_;  ///< by src_port, for acks
    ArqStats recv_stats_;
    std::uint16_t next_port_ = 1;
};

}  // namespace catenet::tcp
