#include "tcp/simple_arq.h"

#include <algorithm>

namespace catenet::tcp {

namespace {

// Wire format: type(1) src_port(2) dst_port(2) seq/ack(4) [payload].
constexpr std::uint8_t kTypeData = 1;
constexpr std::uint8_t kTypeAck = 2;
constexpr std::size_t kArqHeader = 9;

}  // namespace

// ---------------------------------------------------------------------------
// ArqSender
// ---------------------------------------------------------------------------

ArqSender::ArqSender(ArqEndpoint& endpoint, util::Ipv4Address dst, std::uint16_t dst_port,
                     std::uint16_t src_port, ArqConfig config)
    : endpoint_(endpoint),
      dst_(dst),
      dst_port_(dst_port),
      src_port_(src_port),
      config_(config),
      rto_timer_(endpoint.ip().simulator(), [this] { on_rto(); }) {}

std::size_t ArqSender::send(std::span<const std::uint8_t> data) {
    std::size_t accepted = 0;
    while (accepted < data.size() && packets_.size() < config_.send_buffer_packets) {
        const std::size_t room = config_.packet_payload - partial_.size();
        const std::size_t take = std::min(room, data.size() - accepted);
        partial_.insert(partial_.end(), data.begin() + static_cast<std::ptrdiff_t>(accepted),
                        data.begin() + static_cast<std::ptrdiff_t>(accepted + take));
        accepted += take;
        if (partial_.size() == config_.packet_payload) {
            // Packetization happens HERE, once and forever: this packet's
            // boundaries can never change, even on retransmission.
            packets_.push_back(std::move(partial_));
            partial_.clear();
        }
    }
    try_send();
    return accepted;
}

void ArqSender::flush() {
    if (!partial_.empty() && packets_.size() < config_.send_buffer_packets) {
        packets_.push_back(std::move(partial_));
        partial_.clear();
    }
    try_send();
}

void ArqSender::try_send() {
    while (next_unsent_ < packets_.size() && next_unsent_ < config_.window_packets) {
        transmit_packet(base_seq_ + next_unsent_);
        ++next_unsent_;
        ++stats_.packets_sent;
    }
    if (!packets_.empty()) rto_timer_.schedule_if_idle(config_.rto);
}

void ArqSender::transmit_packet(std::uint32_t seq) {
    const auto& payload = packets_.at(seq - base_seq_);
    util::BufferWriter w(kArqHeader + payload.size());
    w.put_u8(kTypeData);
    w.put_u16(src_port_);
    w.put_u16(dst_port_);
    w.put_u32(seq);
    w.put_bytes(payload);
    endpoint_.ip().send(kProtoSimpleArq, dst_, w.data());
}

void ArqSender::on_ack(std::uint32_t ack) {
    // Cumulative: ack = next packet the receiver expects.
    if (ack <= base_seq_) return;
    const std::uint32_t advanced = ack - base_seq_;
    if (advanced > packets_.size()) return;  // nonsense ack
    packets_.erase(packets_.begin(), packets_.begin() + advanced);
    base_seq_ = ack;
    next_unsent_ -= std::min(next_unsent_, advanced);
    if (packets_.empty()) {
        rto_timer_.cancel();
    } else {
        rto_timer_.schedule(config_.rto);
    }
    try_send();
}

void ArqSender::on_rto() {
    // Go-back-N: resend the whole window, original boundaries intact.
    const std::size_t outstanding = next_unsent_;
    for (std::size_t i = 0; i < outstanding; ++i) {
        transmit_packet(base_seq_ + static_cast<std::uint32_t>(i));
        ++stats_.packets_sent;
        ++stats_.packets_retransmitted;
    }
    if (!packets_.empty()) rto_timer_.schedule(config_.rto);
}

// ---------------------------------------------------------------------------
// ArqEndpoint
// ---------------------------------------------------------------------------

ArqEndpoint::ArqEndpoint(ip::IpStack& ip) : ip_(ip) {
    ip_.register_protocol(
        kProtoSimpleArq,
        [this](const ip::Ipv4Header& h, std::span<const std::uint8_t> p, std::size_t) {
            on_datagram(h, p);
        });
}

std::unique_ptr<ArqSender> ArqEndpoint::create_sender(util::Ipv4Address dst,
                                                      std::uint16_t dst_port,
                                                      ArqConfig config) {
    const std::uint16_t src_port = next_port_++;
    auto sender = std::unique_ptr<ArqSender>(
        new ArqSender(*this, dst, dst_port, src_port, config));
    senders_[src_port] = sender.get();
    return sender;
}

void ArqEndpoint::listen(std::uint16_t port, Receiver receiver) {
    listeners_[port] = std::move(receiver);
}

void ArqEndpoint::on_datagram(const ip::Ipv4Header& header,
                              std::span<const std::uint8_t> payload) {
    try {
        util::BufferReader r(payload);
        const std::uint8_t type = r.get_u8();
        const std::uint16_t src_port = r.get_u16();
        const std::uint16_t dst_port = r.get_u16();
        const std::uint32_t seq = r.get_u32();

        if (type == kTypeAck) {
            auto it = senders_.find(dst_port);
            if (it != senders_.end()) it->second->on_ack(seq);
            return;
        }
        if (type != kTypeData) return;

        auto lit = listeners_.find(dst_port);
        if (lit == listeners_.end()) return;

        const StreamKey key{header.src.value(), src_port, dst_port};
        std::uint32_t& expected = expected_[key];
        if (seq == expected) {
            ++expected;
            recv_stats_.bytes_delivered += r.remaining_size();
            lit->second(header.src, src_port, r.remaining());
        } else {
            ++recv_stats_.out_of_order_dropped;  // go-back-N: discard
        }
        send_ack(header.src, src_port, dst_port, expected);
    } catch (const util::DecodeError&) {
        // malformed; drop
    }
}

void ArqEndpoint::send_ack(util::Ipv4Address dst, std::uint16_t dst_port,
                           std::uint16_t src_port, std::uint32_t ack) {
    util::BufferWriter w(kArqHeader);
    w.put_u8(kTypeAck);
    w.put_u16(src_port);
    w.put_u16(dst_port);
    w.put_u32(ack);
    ip_.send(kProtoSimpleArq, dst, w.data());
    ++recv_stats_.acks_sent;
}

}  // namespace catenet::tcp
