// TCP, 1988 edition: the full RFC 793 state machine with byte-granularity
// sequence numbers (the paper's §TCP discussion: byte, not packet,
// sequencing permits repacketization on retransmission), sliding-window
// flow control, adaptive retransmission (Jacobson SRTT/RTTVAR with Karn's
// rule and exponential backoff), Tahoe-style slow start / congestion
// avoidance / fast retransmit, Nagle's algorithm, delayed ACKs,
// silly-window-syndrome avoidance, zero-window probing, and TIME-WAIT.
//
// Every era-appropriate mechanism is individually switchable in TcpConfig
// so the host-burden (E6) and ablation benchmarks can measure what each
// one buys. Nothing newer than the paper (no SACK, window scaling, ECN).
//
// The established-connection data path is allocation-free in steady state:
// send and receive buffers are power-of-two rings (util::RingBuffer), the
// retransmission "queue" is nothing but sequence arithmetic over the send
// ring (a resend is a peek at a smaller offset), segment wire buffers come
// from the per-simulator BufferPool with IP-header headroom so the IP layer
// serializes in place, out-of-order segments are held in pooled buffers,
// and demux is an open-addressed hash (ConnTable). A Van Jacobson style
// header-prediction fast path short-circuits the two overwhelmingly common
// segment shapes — pure ACK and next-expected data — past the full RFC 793
// receive processing; see try_fast_path for the exact predicate.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ip/ip_stack.h"
#include "sim/timer.h"
#include "tcp/conn_table.h"
#include "tcp/sequence.h"
#include "tcp/tcp_header.h"
#include "util/random.h"
#include "util/ring_buffer.h"

namespace catenet::tcp {

enum class TcpState {
    Closed,
    Listen,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
};

const char* to_string(TcpState s) noexcept;

struct TcpConfig {
    std::size_t send_buffer = 64 * 1024;
    std::size_t recv_buffer = 64 * 1024;
    /// Cap on the MSS we announce; the effective value also respects the
    /// local interface MTU. 536 is the RFC 1122 default.
    std::uint16_t mss_cap = 1460;

    bool nagle = true;
    bool delayed_ack = true;
    /// Jacobson slow start + congestion avoidance. Off = dumb 1986-style
    /// sender that fills the offered window (congestion-collapse fuel).
    bool congestion_control = true;
    bool fast_retransmit = true;

    /// React to ICMP Source Quench by entering slow start (the BSD
    /// behaviour of the era). Meaningful only with congestion_control.
    bool respect_source_quench = true;

    /// Adaptive RTO (Jacobson/Karn). Off = fixed_rto for the naive-host
    /// experiment (E6).
    bool adaptive_rto = true;
    sim::Time fixed_rto = sim::seconds(3);
    sim::Time initial_rto = sim::seconds(1);
    sim::Time min_rto = sim::milliseconds(200);
    sim::Time max_rto = sim::seconds(64);

    sim::Time delayed_ack_timeout = sim::milliseconds(200);
    sim::Time msl = sim::seconds(30);  ///< TIME-WAIT = 2 * msl
    sim::Time persist_interval = sim::seconds(1);
    int max_retries = 12;  ///< consecutive RTOs before giving up (reset)

    /// IP type-of-service bits for this connection (goal 2).
    std::uint8_t tos = 0;

    /// Segmentation offload (DESIGN.md §12). On: a transmission
    /// opportunity the per-segment loop would spend on a train of full-MSS
    /// segments is spent on ONE mega-segment descriptor, split late at the
    /// egress link; outbound segments are stamped checksum-vouched so the
    /// receiving stack may coalesce in-order runs (GRO). Wire bytes, ACK
    /// cadence, and every cross-mode-comparable counter are identical
    /// either way — off reproduces the seed's per-segment pipeline end to
    /// end (the GRO lane needs the vouch this sender then never sets).
    bool segmentation_offload = true;
    /// Cap on wire segments per GSO build (clamped to link::kGsoSegs).
    std::size_t gso_segs = link::kGsoSegs;
};

struct TcpSocketStats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_received = 0;
    std::uint64_t bytes_sent = 0;          ///< app payload bytes, first transmission
    std::uint64_t bytes_received = 0;      ///< app payload bytes delivered in order
    std::uint64_t retransmitted_segments = 0;
    std::uint64_t retransmitted_bytes = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t source_quenches = 0;
    std::uint64_t duplicate_acks_received = 0;
    std::uint64_t out_of_order_segments = 0;
    /// Header-prediction hits: segments fully handled by the fast path.
    std::uint64_t fast_path_acks = 0;
    std::uint64_t fast_path_data = 0;
    double srtt_ms = 0.0;
    double rto_ms = 0.0;
    std::uint64_t cwnd_bytes = 0;
    std::uint64_t flight_bytes = 0;  ///< sent but unacknowledged right now
};

class TcpStack;

/// A TCP connection endpoint. Event-driven: register callbacks, then call
/// send()/close(). Created via TcpStack::connect or a listener's accept
/// callback; always lives in a shared_ptr because the stack and the
/// application share it.
class TcpSocket : public std::enable_shared_from_this<TcpSocket> {
public:
    ~TcpSocket();
    TcpSocket(const TcpSocket&) = delete;
    TcpSocket& operator=(const TcpSocket&) = delete;

    // --- application interface ---------------------------------------
    /// Fires when the three-way handshake completes.
    std::function<void()> on_connected;
    /// In-order payload delivery. The data is consumed by the callback.
    std::function<void(std::span<const std::uint8_t>)> on_data;
    /// Peer sent FIN (no more inbound data; outbound may continue).
    std::function<void()> on_remote_close;
    /// Connection fully terminated (normally or by reset/failure).
    std::function<void()> on_closed;
    /// Connection reset by peer or by repeated timeout.
    std::function<void()> on_reset;
    /// Send-buffer space became available after being full.
    std::function<void()> on_send_space;

    /// Queues application bytes; returns how many were accepted (bounded
    /// by send-buffer space). Zero means "try again after on_send_space".
    std::size_t send(std::span<const std::uint8_t> data);

    /// Marks the current outbound data as urgent-to-deliver (sets PSH on
    /// the final segment of the buffered burst).
    void push();

    /// Flow-control tap. While closed, the receive window advertised to
    /// the peer is zero: the sender must hold data and probe. Reopening
    /// sends a window update. Models a slow application (goal-2 and
    /// flow-control tests).
    void set_receive_open(bool open);

    /// Switches to application-paced receiving: in-order data queues in
    /// the socket (shrinking the advertised window) until the application
    /// read()s it. on_data is not called in this mode; on_readable fires
    /// when new bytes queue. This is the full RFC 793 window dance, with
    /// receiver-side silly-window avoidance on the updates.
    void set_manual_receive(bool manual);

    /// Manual mode: copies up to out.size() queued bytes, frees window
    /// space, and sends a window update when the opening is worth
    /// advertising. Returns bytes copied.
    std::size_t read(std::span<std::uint8_t> out);

    /// Manual mode: bytes queued and readable right now.
    std::size_t bytes_available() const noexcept { return recv_ring_.size(); }

    /// Manual mode: fires when bytes_available() grows.
    std::function<void()> on_readable;

    /// Graceful close (FIN after queued data drains).
    void close();

    /// Hard reset.
    void abort();

    TcpState state() const noexcept { return state_; }
    bool connected() const noexcept { return state_ == TcpState::Established; }
    std::size_t send_space() const noexcept;
    const TcpSocketStats& stats() const;
    util::Ipv4Address remote_address() const noexcept { return remote_addr_; }
    std::uint16_t remote_port() const noexcept { return remote_port_; }
    std::uint16_t local_port() const noexcept { return local_port_; }
    const TcpConfig& config() const noexcept { return config_; }

private:
    friend class TcpStack;

    TcpSocket(TcpStack& stack, TcpConfig config);

    // --- state machine -----------------------------------------------
    void open_active(util::Ipv4Address dst, std::uint16_t dst_port,
                     std::uint16_t src_port);
    void open_passive(util::Ipv4Address peer, std::uint16_t peer_port,
                      std::uint16_t local_port, const TcpHeader& syn);
    void on_segment(const TcpHeader& header, std::span<const std::uint8_t> payload);
    /// Header prediction (Van Jacobson's receive fast path): handles an
    /// in-order data segment or a forward pure ACK on an undisturbed
    /// Established connection without entering the RFC 793 slow path.
    /// Returns false (having done nothing) on any deviation.
    bool try_fast_path(const TcpHeader& header, std::span<const std::uint8_t> payload);
    void enter_state(TcpState next);

    // --- send machinery ------------------------------------------------
    void try_send(bool ack_only_allowed);
    void send_segment(SeqNum seq, std::size_t length, bool fin, bool force_psh);
    void send_control(TcpFlags flags, SeqNum seq);
    void send_ack_now();
    void schedule_ack();
    /// Encodes header + payload (gathered from up to two ring spans) into
    /// a pooled wire buffer with IP headroom and hands it off in place.
    void transmit(const TcpHeader& header, std::span<const std::uint8_t> payload_a,
                  std::span<const std::uint8_t> payload_b);
    std::size_t effective_send_mss() const noexcept;
    std::uint32_t flight_size() const noexcept;
    std::uint32_t usable_window() const noexcept;
    std::uint16_t advertised_window() const noexcept;

    // --- receive machinery ---------------------------------------------
    void process_payload(const TcpHeader& header, std::span<const std::uint8_t> payload);
    void deliver_in_order();

    // --- timers ----------------------------------------------------------
    void arm_rto();
    void on_rto_fire();
    void on_persist_fire();
    void update_rtt(sim::Time sample);
    sim::Time current_rto() const noexcept;

    // --- congestion control ----------------------------------------------
    void on_ack_advance(std::uint32_t acked_bytes);
    void on_duplicate_ack();
    void enter_loss_recovery();
    void on_source_quench();

    void handle_ack(const TcpHeader& header, bool has_payload);
    void handle_rst();
    void fail_connection();
    void finish_and_remove();

    TcpStack& stack_;
    TcpConfig config_;
    TcpState state_ = TcpState::Closed;

    util::Ipv4Address local_addr_;
    util::Ipv4Address remote_addr_;
    std::uint16_t local_port_ = 0;
    std::uint16_t remote_port_ = 0;

    // Send state (RFC 793 names).
    SeqNum iss_ = 0;
    SeqNum snd_una_ = 0;
    SeqNum snd_nxt_ = 0;
    /// Highest sequence ever sent. snd_nxt_ rewinds to snd_una_ on RTO
    /// (go-back-N over the byte stream); ACK validity is judged against
    /// snd_max_ so ACKs of pre-rewind flights are honored.
    SeqNum snd_max_ = 0;
    std::optional<SeqNum> fin_seq_out_;  ///< sequence of our FIN, once sent
    std::uint32_t snd_wnd_ = 0;
    /// Unacknowledged + unsent bytes; front is snd_una_. Retransmission
    /// state is just offsets into this ring — no per-segment copies exist
    /// until a segment is serialized to the wire.
    util::RingBuffer send_ring_;
    bool fin_queued_ = false;
    bool fin_sent_ = false;
    bool push_requested_ = false;
    std::uint16_t peer_mss_ = 536;

    // Receive state.
    SeqNum irs_ = 0;
    SeqNum rcv_nxt_ = 0;
    /// Highest right window edge ever advertised (the window must never
    /// visibly retreat); used by manual-mode SWS avoidance. Updated from
    /// the logically-const advertisement computation.
    mutable SeqNum rcv_adv_ = 0;
    /// Segments beyond rcv_nxt_, sorted by seq, payloads in pooled
    /// buffers. Bounded: ooo_bytes_ <= recv_buffer and entry count at the
    /// reserved capacity, so steady-state reordering never allocates.
    struct OooSegment {
        SeqNum seq;
        util::ByteBuffer data;
    };
    std::vector<OooSegment> out_of_order_;
    std::size_t ooo_bytes_ = 0;
    util::RingBuffer recv_ring_;  ///< manual mode only
    bool manual_receive_ = false;
    bool fin_received_ = false;
    SeqNum fin_seq_ = 0;

    // Congestion control.
    std::uint32_t cwnd_ = 0;
    std::uint32_t ssthresh_ = 0xffffffff;
    std::uint32_t cwnd_acc_ = 0;  ///< byte accumulator for congestion avoidance
    int dup_acks_ = 0;

    // RTT estimation (Jacobson, in nanoseconds).
    bool rtt_valid_ = false;
    double srtt_ns_ = 0.0;
    double rttvar_ns_ = 0.0;
    int backoff_ = 0;
    int consecutive_timeouts_ = 0;
    // Karn: the send time of the segment being timed; invalid when a
    // retransmission overlaps it.
    bool timing_ = false;
    SeqNum timed_seq_ = 0;
    sim::Time timed_sent_at_;

    // Delayed ACK.
    int segments_since_ack_ = 0;
    bool ack_pending_ = false;
    bool recv_open_ = true;

    sim::Timer rto_timer_;
    /// The retransmission clock's true expiry. arm_rto() only bumps this
    /// store; the armed timer re-sleeps to it when it wakes early, so
    /// restarting the clock on every segment/ACK costs no heap operation.
    sim::Time rto_deadline_;
    sim::Timer persist_timer_;
    /// Lazily-fired: left pending after an ACK goes out and re-armed with
    /// schedule_if_idle, so the per-segment cost is a flag write, not a
    /// cancel+schedule pair. A fire with ack_pending_ clear is a no-op.
    sim::Timer delayed_ack_timer_;
    sim::Timer time_wait_timer_;
    /// Pre-Jacobson quench response: transmission pause (see
    /// on_source_quench).
    sim::Time quench_hold_until_;
    sim::Timer quench_resume_timer_;

    mutable TcpSocketStats stats_;
    bool removed_ = false;
};

struct TcpStackStats {
    std::uint64_t segments_received = 0;
    std::uint64_t dropped_bad_checksum = 0;
    std::uint64_t dropped_no_connection = 0;
    std::uint64_t resets_sent = 0;
    std::uint64_t connections_opened = 0;
    std::uint64_t connections_accepted = 0;
};

/// Per-host TCP: demultiplexes segments to connections and holds
/// listeners. One instance per Host. Also implements the internet layer's
/// receive-run hook (GRO, DESIGN.md §12) — privately, since the interface
/// is plumbing between the two layers, not part of the TCP API.
class TcpStack : private ip::IpStack::TransportRunHandler {
public:
    using AcceptHandler = std::function<void(std::shared_ptr<TcpSocket>)>;

    TcpStack(ip::IpStack& ip, util::Rng& parent_rng);
    TcpStack(const TcpStack&) = delete;
    TcpStack& operator=(const TcpStack&) = delete;

    /// Active open. The socket reports via its callbacks.
    std::shared_ptr<TcpSocket> connect(util::Ipv4Address dst, std::uint16_t dst_port,
                                       const TcpConfig& config = {});

    /// Passive open: new connections arrive at the accept handler already
    /// in SynReceived; on_connected fires when established.
    void listen(std::uint16_t port, AcceptHandler on_accept, const TcpConfig& config = {});
    void stop_listening(std::uint16_t port);

    ip::IpStack& ip() noexcept { return ip_; }
    const TcpStackStats& stats() const noexcept { return stats_; }
    /// This stack's TCP counter slots, all connections folded in (mirror
    /// the TcpStackStats fields plus sums of per-socket TcpSocketStats).
    const telemetry::CounterBlock& counters() const noexcept { return counters_; }

    /// Currently tracked connections (debug/test aid).
    std::size_t connection_count() const noexcept { return connections_.size(); }

private:
    friend class TcpSocket;

    struct Listener {
        AcceptHandler on_accept;
        TcpConfig config;
    };

    void on_segment(const ip::Ipv4Header& header, std::span<const std::uint8_t> payload);

    // --- GRO run hook (ip::IpStack::TransportRunHandler) -----------------
    /// Offers one checksum-vouched segment to the open run. Consumes it —
    /// replicating the header-prediction data path's exact accounting and
    /// per-segment ACK clock — only when every fast-path clause holds;
    /// any deviation declines with nothing counted or mutated.
    bool on_run_segment(const ip::Ipv4Header& header,
                        std::span<const std::uint8_t> payload,
                        std::size_t ifindex) override;
    void on_datagram(const ip::Ipv4Header& header,
                     std::span<const std::uint8_t> payload,
                     std::size_t ifindex) override;
    void end_run() override;

    void on_source_quench(const ip::IcmpMessage& msg);
    void send_reset(const ip::Ipv4Header& header, const TcpHeader& offending,
                    std::size_t payload_len);
    void remove_connection(std::uint64_t key);
    std::uint16_t allocate_port();

    ip::IpStack& ip_;
    util::Rng rng_;
    ConnTable<std::shared_ptr<TcpSocket>> connections_;
    std::map<std::uint16_t, Listener> listeners_;
    TcpStackStats stats_;
    telemetry::CounterBlock counters_;
    std::uint16_t next_ephemeral_ = 49152;

    /// Pin on the connection whose GRO run is open: keeps the socket alive
    /// across in-run callbacks and memoizes the demux probe. Reset at
    /// end_run — a table slot may be reused by a new connection, so the
    /// memo never outlives the run.
    std::shared_ptr<TcpSocket> run_socket_;
    std::uint64_t run_key_ = 0;
    std::size_t run_segs_ = 0;
};

}  // namespace catenet::tcp
