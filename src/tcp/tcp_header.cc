#include "tcp/tcp_header.h"

#include "ip/protocols.h"
#include "util/checksum.h"

namespace catenet::tcp {

util::ByteBuffer encode_tcp(const TcpHeader& header, util::Ipv4Address src,
                            util::Ipv4Address dst, std::span<const std::uint8_t> payload) {
    const std::size_t options_len = header.mss ? 4 : 0;
    const std::size_t header_len = kTcpHeaderSize + options_len;
    util::BufferWriter w(header_len + payload.size());
    w.put_u16(header.src_port);
    w.put_u16(header.dst_port);
    w.put_u32(header.seq);
    w.put_u32(header.ack);
    const auto data_offset = static_cast<std::uint8_t>(header_len / 4);
    w.put_u8(static_cast<std::uint8_t>(data_offset << 4));
    std::uint8_t flags = 0;
    if (header.flags.fin) flags |= 0x01;
    if (header.flags.syn) flags |= 0x02;
    if (header.flags.rst) flags |= 0x04;
    if (header.flags.psh) flags |= 0x08;
    if (header.flags.ack) flags |= 0x10;
    if (header.flags.urg) flags |= 0x20;
    w.put_u8(flags);
    w.put_u16(header.window);
    w.put_u16(0);  // checksum placeholder
    w.put_u16(header.urgent_pointer);
    if (header.mss) {
        w.put_u8(2);  // kind: MSS
        w.put_u8(4);  // length
        w.put_u16(*header.mss);
    }
    w.put_bytes(payload);
    w.patch_u16(16, util::transport_checksum(src, dst, ip::kProtoTcp, w.data()));
    return w.take();
}

std::optional<TcpHeader> decode_tcp(util::Ipv4Address src, util::Ipv4Address dst,
                                    std::span<const std::uint8_t> segment,
                                    std::span<const std::uint8_t>& payload_out) {
    if (util::transport_checksum(src, dst, ip::kProtoTcp, segment) != 0) {
        return std::nullopt;
    }
    util::BufferReader r(segment);
    TcpHeader h;
    h.src_port = r.get_u16();
    h.dst_port = r.get_u16();
    h.seq = r.get_u32();
    h.ack = r.get_u32();
    const std::uint8_t offset_byte = r.get_u8();
    const std::size_t header_len = std::size_t{static_cast<std::uint8_t>(offset_byte >> 4)} * 4;
    if (header_len < kTcpHeaderSize || header_len > segment.size()) {
        throw util::DecodeError("bad TCP data offset");
    }
    const std::uint8_t flags = r.get_u8();
    h.flags.fin = (flags & 0x01) != 0;
    h.flags.syn = (flags & 0x02) != 0;
    h.flags.rst = (flags & 0x04) != 0;
    h.flags.psh = (flags & 0x08) != 0;
    h.flags.ack = (flags & 0x10) != 0;
    h.flags.urg = (flags & 0x20) != 0;
    h.window = r.get_u16();
    r.get_u16();  // checksum, already validated
    h.urgent_pointer = r.get_u16();

    // Parse options up to the data offset.
    while (r.position() < header_len) {
        const std::uint8_t kind = r.get_u8();
        if (kind == 0) break;      // end of options
        if (kind == 1) continue;   // no-op padding
        const std::uint8_t len = r.get_u8();
        if (len < 2 || r.position() + (len - 2) > header_len) {
            throw util::DecodeError("bad TCP option length");
        }
        if (kind == 2 && len == 4) {
            h.mss = r.get_u16();
        } else {
            r.skip(len - 2);
        }
    }
    payload_out = segment.subspan(header_len);
    return h;
}

}  // namespace catenet::tcp
