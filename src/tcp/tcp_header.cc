#include "tcp/tcp_header.h"

#include <cstring>

#include "ip/protocols.h"
#include "util/checksum.h"

namespace catenet::tcp {

namespace {

inline std::uint16_t load_u16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

inline std::uint32_t load_u32(const std::uint8_t* p) noexcept {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_u16(std::uint8_t* p, std::uint16_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v & 0xff);
}

inline void store_u32(std::uint8_t* p, std::uint32_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v & 0xff);
}

// Stores the fixed header fields (checksum left zero) at `p`. Shared by
// both encoders so their wire bytes cannot drift apart.
void write_header_fields(std::uint8_t* p, std::size_t header_len, const TcpHeader& header) {
    store_u16(p, header.src_port);
    store_u16(p + 2, header.dst_port);
    store_u32(p + 4, header.seq);
    store_u32(p + 8, header.ack);
    p[12] = static_cast<std::uint8_t>((header_len / 4) << 4);
    std::uint8_t flags = 0;
    if (header.flags.fin) flags |= 0x01;
    if (header.flags.syn) flags |= 0x02;
    if (header.flags.rst) flags |= 0x04;
    if (header.flags.psh) flags |= 0x08;
    if (header.flags.ack) flags |= 0x10;
    if (header.flags.urg) flags |= 0x20;
    p[13] = flags;
    store_u16(p + 14, header.window);
    store_u16(p + 16, 0);  // checksum placeholder
    store_u16(p + 18, header.urgent_pointer);
    if (header.mss) {
        p[20] = 2;  // kind: MSS
        p[21] = 4;  // length
        store_u16(p + 22, *header.mss);
    }
}

// Computes the checksum over the assembled segment [header|payload] at `p`
// in one contiguous RFC 1071 pass (pseudo-header folded in) and patches it
// into the header. Because the payload already sits behind the header, span
// chunking never hits the odd-length-chunk restriction no matter where the
// ring wrapped.
void patch_checksum(std::uint8_t* p, std::size_t total, util::Ipv4Address src,
                    util::Ipv4Address dst) {
    store_u16(p + 16, util::transport_checksum(src, dst, ip::kProtoTcp, {p, total}));
}

// Writes header + gathered payload at `p` (which must have room for
// header_len + payload bytes) and patches the checksum in.
void write_segment(std::uint8_t* p, std::size_t header_len, const TcpHeader& header,
                   util::Ipv4Address src, util::Ipv4Address dst,
                   std::span<const std::uint8_t> payload_a,
                   std::span<const std::uint8_t> payload_b) {
    write_header_fields(p, header_len, header);
    std::uint8_t* data = p + header_len;
    if (!payload_a.empty()) {
        std::memcpy(data, payload_a.data(), payload_a.size());
        data += payload_a.size();
    }
    if (!payload_b.empty()) {
        std::memcpy(data, payload_b.data(), payload_b.size());
        data += payload_b.size();
    }
    patch_checksum(p, static_cast<std::size_t>(data - p), src, dst);
}

}  // namespace

util::ByteBuffer encode_tcp(const TcpHeader& header, util::Ipv4Address src,
                            util::Ipv4Address dst, std::span<const std::uint8_t> payload) {
    const std::size_t header_len = kTcpHeaderSize + (header.mss ? 4 : 0);
    util::ByteBuffer out(header_len + payload.size());
    write_segment(out.data(), header_len, header, src, dst, payload, {});
    return out;
}

util::ByteBuffer encode_tcp_segment(const TcpHeader& header, util::Ipv4Address src,
                                    util::Ipv4Address dst,
                                    std::span<const std::uint8_t> payload_a,
                                    std::span<const std::uint8_t> payload_b,
                                    std::size_t headroom, util::BufferPool& pool) {
    const std::size_t header_len = kTcpHeaderSize + (header.mss ? 4 : 0);
    const std::size_t total =
        headroom + header_len + payload_a.size() + payload_b.size();
    util::ByteBuffer out = pool.acquire(total);
    // Sizing to headroom+header and appending the payload spans keeps
    // vector::resize's value-initialization off the payload bytes — a full
    // extra pass over every segment that the memcpy below makes redundant.
    // The headroom bytes stay unwritten here; send_with_headroom stores the
    // full IPv4 header over them before anything reads the buffer.
    out.resize(headroom + header_len);
    out.insert(out.end(), payload_a.begin(), payload_a.end());
    out.insert(out.end(), payload_b.begin(), payload_b.end());
    write_header_fields(out.data() + headroom, header_len, header);
    patch_checksum(out.data() + headroom, total - headroom, src, dst);
    return out;
}

void write_tcp_header(std::span<std::uint8_t> out, const TcpHeader& header) {
    write_header_fields(out.data(), kTcpHeaderSize, header);
}

std::optional<TcpHeader> decode_tcp(util::Ipv4Address src, util::Ipv4Address dst,
                                    std::span<const std::uint8_t> segment,
                                    std::span<const std::uint8_t>& payload_out) {
    return decode_tcp(src, dst, segment, payload_out, true);
}

std::optional<TcpHeader> decode_tcp(util::Ipv4Address src, util::Ipv4Address dst,
                                    std::span<const std::uint8_t> segment,
                                    std::span<const std::uint8_t>& payload_out,
                                    bool verify_checksum) {
    // Checksum first (over whatever arrived, same as the seed decoder): a
    // corrupted length field must not turn "corrupt" into "malformed".
    if (verify_checksum &&
        util::transport_checksum(src, dst, ip::kProtoTcp, segment) != 0) {
        return std::nullopt;
    }
    // Direct loads, every offset proven in range: the fixed header by the
    // size check, options by the option-length checks below.
    if (segment.size() < kTcpHeaderSize) {
        throw util::DecodeError("truncated TCP header");
    }
    const std::uint8_t* p = segment.data();
    TcpHeader h;
    h.src_port = load_u16(p);
    h.dst_port = load_u16(p + 2);
    h.seq = load_u32(p + 4);
    h.ack = load_u32(p + 8);
    const std::size_t header_len = std::size_t{static_cast<std::uint8_t>(p[12] >> 4)} * 4;
    if (header_len < kTcpHeaderSize || header_len > segment.size()) {
        throw util::DecodeError("bad TCP data offset");
    }
    const std::uint8_t flags = p[13];
    h.flags.fin = (flags & 0x01) != 0;
    h.flags.syn = (flags & 0x02) != 0;
    h.flags.rst = (flags & 0x04) != 0;
    h.flags.psh = (flags & 0x08) != 0;
    h.flags.ack = (flags & 0x10) != 0;
    h.flags.urg = (flags & 0x20) != 0;
    h.window = load_u16(p + 14);
    // p[16..18): checksum, already validated above.
    h.urgent_pointer = load_u16(p + 18);

    // Parse options up to the data offset.
    std::size_t pos = kTcpHeaderSize;
    while (pos < header_len) {
        const std::uint8_t kind = p[pos++];
        if (kind == 0) break;      // end of options
        if (kind == 1) continue;   // no-op padding
        if (pos >= header_len) {
            throw util::DecodeError("bad TCP option length");
        }
        const std::uint8_t len = p[pos++];
        if (len < 2 || pos + (len - 2) > header_len) {
            throw util::DecodeError("bad TCP option length");
        }
        if (kind == 2 && len == 4) {
            h.mss = load_u16(p + pos);
        }
        pos += len - 2;
    }
    payload_out = segment.subspan(header_len);
    return h;
}

}  // namespace catenet::tcp
