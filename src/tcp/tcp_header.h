// RFC 793 TCP segment header with the MSS option (kind 2), encoded in real
// wire format with the pseudo-header checksum.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/buffer_pool.h"
#include "util/byte_buffer.h"
#include "util/ip_address.h"

namespace catenet::tcp {

inline constexpr std::size_t kTcpHeaderSize = 20;

struct TcpFlags {
    bool fin = false;
    bool syn = false;
    bool rst = false;
    bool psh = false;
    bool ack = false;
    bool urg = false;
};

struct TcpHeader {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    TcpFlags flags;
    std::uint16_t window = 0;
    std::uint16_t urgent_pointer = 0;
    /// Maximum segment size option; carried on SYN segments only.
    std::optional<std::uint16_t> mss;
};

/// Serializes header + payload with checksum over the pseudo-header.
util::ByteBuffer encode_tcp(const TcpHeader& header, util::Ipv4Address src,
                            util::Ipv4Address dst, std::span<const std::uint8_t> payload);

/// The data-path encoder: emits [IPv4 headroom][TCP header(+MSS)][payload]
/// into a pool buffer, gathering the payload from up to two spans (a ring
/// buffer's wrap split). The first `headroom` bytes are reserved,
/// uninitialized, for the IP layer to fill in place — see
/// ip::IpStack::send_with_headroom. Wire bytes from offset `headroom` are
/// identical to encode_tcp's output for the concatenated payload.
util::ByteBuffer encode_tcp_segment(const TcpHeader& header, util::Ipv4Address src,
                                    util::Ipv4Address dst,
                                    std::span<const std::uint8_t> payload_a,
                                    std::span<const std::uint8_t> payload_b,
                                    std::size_t headroom, util::BufferPool& pool);

/// Writes the 20-byte option-less header image (checksum field zero) at
/// `out` — the GSO descriptor's TCP template (link::GsoDescriptor). Shares
/// the field writer with both encoders, so the template cannot drift from
/// the per-segment wire bytes. `header.mss` must be empty: data segments
/// never carry options.
void write_tcp_header(std::span<std::uint8_t> out, const TcpHeader& header);

/// Decodes and checksum-verifies a segment. Returns nullopt on checksum
/// failure; throws util::DecodeError when structurally malformed.
std::optional<TcpHeader> decode_tcp(util::Ipv4Address src, util::Ipv4Address dst,
                                    std::span<const std::uint8_t> segment,
                                    std::span<const std::uint8_t>& payload_out);

/// Checksum-offload variant: `verify_checksum = false` skips the RFC 1071
/// pass, for segments whose link::Packet::csum_ok flag vouches that the
/// encoder-computed checksum is untouched. Identical results otherwise.
std::optional<TcpHeader> decode_tcp(util::Ipv4Address src, util::Ipv4Address dst,
                                    std::span<const std::uint8_t> segment,
                                    std::span<const std::uint8_t>& payload_out,
                                    bool verify_checksum);

}  // namespace catenet::tcp
