#include "tcp/tcp.h"
#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "ip/protocols.h"
#include "util/logging.h"

namespace catenet::tcp {

namespace {
const util::Logger kLog("tcp");

constexpr std::size_t kIpTcpOverhead = 40;  // IP + TCP fixed headers

// Smallest data segment worth planning for when sizing the out-of-order
// vector: the RFC 1122 default MSS. The reservation bounds entry count so
// reordering storms re-use the same backing store instead of growing it.
constexpr std::size_t kMinPlausibleMss = 536;

inline std::uint16_t load_u16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

inline std::uint32_t load_u32(const std::uint8_t* p) noexcept {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
}  // namespace

const char* to_string(TcpState s) noexcept {
    switch (s) {
        case TcpState::Closed: return "CLOSED";
        case TcpState::Listen: return "LISTEN";
        case TcpState::SynSent: return "SYN-SENT";
        case TcpState::SynReceived: return "SYN-RECEIVED";
        case TcpState::Established: return "ESTABLISHED";
        case TcpState::FinWait1: return "FIN-WAIT-1";
        case TcpState::FinWait2: return "FIN-WAIT-2";
        case TcpState::CloseWait: return "CLOSE-WAIT";
        case TcpState::Closing: return "CLOSING";
        case TcpState::LastAck: return "LAST-ACK";
        case TcpState::TimeWait: return "TIME-WAIT";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// TcpSocket
// ---------------------------------------------------------------------------

TcpSocket::TcpSocket(TcpStack& stack, TcpConfig config)
    : stack_(stack),
      config_(config),
      send_ring_(config.send_buffer),
      recv_ring_(config.recv_buffer),
      rto_timer_(stack.ip().simulator(), [this] { on_rto_fire(); }),
      persist_timer_(stack.ip().simulator(), [this] { on_persist_fire(); }),
      delayed_ack_timer_(stack.ip().simulator(),
                         [this] {
                             // Lazy fire: the flag may have been consumed by
                             // a piggybacked or forced ACK since this was
                             // armed; then the event is a no-op instead of
                             // every ACK paying a cancel.
                             if (ack_pending_) send_ack_now();
                         }),
      time_wait_timer_(stack.ip().simulator(), [this] { finish_and_remove(); }),
      quench_resume_timer_(stack.ip().simulator(), [this] { try_send(false); }) {
    out_of_order_.reserve(config_.recv_buffer / kMinPlausibleMss + 1);
}

TcpSocket::~TcpSocket() = default;

void TcpSocket::enter_state(TcpState next) {
    kLog.debug() << stack_.ip().name() << ":" << local_port_ << " " << to_string(state_)
                 << " -> " << to_string(next);
    state_ = next;
}

std::size_t TcpSocket::send_space() const noexcept {
    return config_.send_buffer - std::min(config_.send_buffer, send_ring_.size());
}

const TcpSocketStats& TcpSocket::stats() const {
    stats_.srtt_ms = srtt_ns_ / 1e6;
    stats_.rto_ms = static_cast<double>(current_rto().nanos()) / 1e6;
    stats_.cwnd_bytes = cwnd_;
    stats_.flight_bytes = flight_size();
    return stats_;
}

std::size_t TcpSocket::effective_send_mss() const noexcept {
    std::size_t mss = peer_mss_;
    mss = std::min<std::size_t>(mss, config_.mss_cap);
    if (stack_.ip().interface_count() > 0) {
        const std::size_t mtu = stack_.ip().interface(0).mtu();
        if (mtu > kIpTcpOverhead) mss = std::min(mss, mtu - kIpTcpOverhead);
    }
    return std::max<std::size_t>(mss, 1);
}

std::uint32_t TcpSocket::flight_size() const noexcept { return snd_nxt_ - snd_una_; }

std::uint32_t TcpSocket::usable_window() const noexcept {
    std::uint32_t window = snd_wnd_;
    if (config_.congestion_control) window = std::min(window, cwnd_);
    const std::uint32_t flight = flight_size();
    return window > flight ? window - flight : 0;
}

std::uint16_t TcpSocket::advertised_window() const noexcept {
    // Auto-consuming receiver: the application drains on_data immediately,
    // so the full buffer is always offered — unless the application has
    // closed the tap (set_receive_open(false)), which advertises zero and
    // exercises the sender's persist machinery.
    if (!recv_open_) return 0;
    if (!manual_receive_) {
        return static_cast<std::uint16_t>(
            std::min<std::size_t>(config_.recv_buffer, 0xffff));
    }
    // Manual mode: offer the free buffer, with receiver-side SWS
    // avoidance — do not advance the right edge by dribbles — and never
    // retreat a previously advertised edge.
    const std::size_t free_space =
        config_.recv_buffer - std::min(config_.recv_buffer, recv_ring_.size());
    const std::size_t threshold =
        std::min<std::size_t>(effective_send_mss(), config_.recv_buffer / 2);
    SeqNum candidate_edge = rcv_nxt_ + static_cast<std::uint32_t>(
                                           std::min<std::size_t>(free_space, 0xffff));
    // Only honor the candidate if it moves the edge by a worthwhile step.
    SeqNum edge = rcv_adv_;
    if (seq_gt(candidate_edge, rcv_adv_) &&
        candidate_edge - rcv_adv_ >= static_cast<std::uint32_t>(threshold)) {
        edge = candidate_edge;
    }
    if (seq_lt(edge, rcv_nxt_)) edge = rcv_nxt_;
    rcv_adv_ = edge;
    return static_cast<std::uint16_t>(
        std::min<std::uint32_t>(edge - rcv_nxt_, 0xffff));
}

void TcpSocket::set_manual_receive(bool manual) {
    manual_receive_ = manual;
    if (manual) rcv_adv_ = rcv_nxt_ + advertised_window();
}

std::size_t TcpSocket::read(std::span<std::uint8_t> out) {
    const std::size_t take = std::min(out.size(), recv_ring_.size());
    if (take > 0) {
        recv_ring_.read(0, out.first(take));
        recv_ring_.consume(take);
    }
    if (take > 0 && (state_ == TcpState::Established || state_ == TcpState::CloseWait ||
                     state_ == TcpState::FinWait1 || state_ == TcpState::FinWait2)) {
        // Window update if the opening is worth advertising (SWS check is
        // inside advertised_window()).
        const SeqNum before = rcv_adv_;
        const auto window = advertised_window();
        (void)window;
        if (seq_gt(rcv_adv_, before)) send_ack_now();
    }
    return take;
}

void TcpSocket::set_receive_open(bool open) {
    if (recv_open_ == open) return;
    recv_open_ = open;
    if (state_ == TcpState::Established || state_ == TcpState::CloseWait) {
        send_ack_now();  // window update either way
    }
}

// --- open ------------------------------------------------------------------

void TcpSocket::open_active(util::Ipv4Address dst, std::uint16_t dst_port,
                            std::uint16_t src_port) {
    local_addr_ = stack_.ip().primary_address();
    remote_addr_ = dst;
    remote_port_ = dst_port;
    local_port_ = src_port;
    iss_ = static_cast<SeqNum>(stack_.rng_.uniform(0, 0xffffffffu));
    snd_una_ = iss_;
    snd_nxt_ = iss_ + 1;
    snd_max_ = snd_nxt_;
    cwnd_ = static_cast<std::uint32_t>(effective_send_mss());
    enter_state(TcpState::SynSent);

    TcpFlags syn;
    syn.syn = true;
    send_control(syn, iss_);
    arm_rto();
}

void TcpSocket::open_passive(util::Ipv4Address peer, std::uint16_t peer_port,
                             std::uint16_t local_port, const TcpHeader& syn) {
    local_addr_ = stack_.ip().primary_address();
    remote_addr_ = peer;
    remote_port_ = peer_port;
    local_port_ = local_port;
    irs_ = syn.seq;
    rcv_nxt_ = syn.seq + 1;
    if (syn.mss) peer_mss_ = *syn.mss;
    snd_wnd_ = syn.window;
    iss_ = static_cast<SeqNum>(stack_.rng_.uniform(0, 0xffffffffu));
    snd_una_ = iss_;
    snd_nxt_ = iss_ + 1;
    snd_max_ = snd_nxt_;
    cwnd_ = static_cast<std::uint32_t>(effective_send_mss());
    enter_state(TcpState::SynReceived);

    TcpFlags synack;
    synack.syn = true;
    synack.ack = true;
    send_control(synack, iss_);
    arm_rto();
}

// --- application calls -------------------------------------------------------

std::size_t TcpSocket::send(std::span<const std::uint8_t> data) {
    if (state_ != TcpState::Established && state_ != TcpState::CloseWait &&
        state_ != TcpState::SynSent && state_ != TcpState::SynReceived) {
        return 0;
    }
    if (fin_queued_) return 0;
    const std::size_t accept = std::min(data.size(), send_space());
    send_ring_.write(data.first(accept));
    if (state_ == TcpState::Established || state_ == TcpState::CloseWait) {
        try_send(false);
    }
    return accept;
}

void TcpSocket::push() {
    push_requested_ = true;
    if (state_ == TcpState::Established || state_ == TcpState::CloseWait) {
        try_send(false);
    }
}

void TcpSocket::close() {
    switch (state_) {
        case TcpState::SynSent:
            finish_and_remove();
            return;
        case TcpState::SynReceived:
        case TcpState::Established:
            fin_queued_ = true;
            enter_state(TcpState::FinWait1);
            try_send(false);
            return;
        case TcpState::CloseWait:
            fin_queued_ = true;
            enter_state(TcpState::LastAck);
            try_send(false);
            return;
        default:
            return;  // already closing or closed
    }
}

void TcpSocket::abort() {
    if (state_ == TcpState::Closed) return;
    if (state_ != TcpState::SynSent && state_ != TcpState::Listen) {
        TcpFlags rst;
        rst.rst = true;
        rst.ack = true;
        send_control(rst, snd_nxt_);
    }
    finish_and_remove();
}

// --- send machinery -----------------------------------------------------------

void TcpSocket::try_send(bool /*ack_only_allowed*/) {
    if (state_ != TcpState::Established && state_ != TcpState::CloseWait &&
        state_ != TcpState::FinWait1 && state_ != TcpState::Closing &&
        state_ != TcpState::LastAck) {
        return;
    }

    // Pre-Jacobson quench hold-off: stay silent until the pause expires.
    if (stack_.ip().simulator().now() < quench_hold_until_) return;

    const std::size_t mss = effective_send_mss();
    bool sent_any = false;

    while (true) {
        if (fin_sent_) break;  // everything (incl. FIN) already in flight
        const std::uint32_t in_flight_data = flight_size();
        if (send_ring_.size() < in_flight_data) break;  // defensive
        const std::size_t unsent = send_ring_.size() - in_flight_data;
        const std::uint32_t usable = usable_window();

        const bool want_fin =
            fin_queued_ && unsent == 0 &&
            (state_ == TcpState::FinWait1 || state_ == TcpState::LastAck ||
             state_ == TcpState::Closing);

        if (unsent == 0) {
            if (want_fin) {
                send_segment(snd_nxt_, 0, /*fin=*/true, /*force_psh=*/false);
                sent_any = true;
            }
            break;
        }

        std::size_t len = std::min({unsent, mss, static_cast<std::size_t>(usable)});
        if (len == 0) {
            // Window (flow or congestion) closed with data pending.
            if (snd_wnd_ == 0 && in_flight_data == 0) {
                if (!persist_timer_.pending()) {
                    stack_.counters_.inc(telemetry::Counter::TcpZeroWindowEvents);
                }
                persist_timer_.schedule_if_idle(config_.persist_interval);
            }
            break;
        }

        // Nagle: a small segment waits while anything is unacknowledged.
        // (PSH marks urgency to the receiver; per the algorithm it does
        // NOT override the batching — only disabling Nagle does.)
        if (config_.nagle && len < mss && in_flight_data > 0 && !fin_queued_) {
            break;
        }

        // GSO build (DESIGN.md §12): the run of full-MSS segments the loop
        // below would emit one at a time becomes ONE mega-segment
        // descriptor; the egress link's late split produces byte-identical
        // wire segments. Only fresh data qualifies (snd_nxt_ == snd_max_):
        // retransmission re-reads the ring per wire segment through the
        // classic path, repacketizing freely as byte sequencing allows.
        if (config_.segmentation_offload && len == mss && snd_nxt_ == snd_max_) {
            static const bool debug = std::getenv("CATENET_TCP_DEBUG") != nullptr;
            std::size_t n = std::min({unsent / mss,
                                      static_cast<std::size_t>(usable) / mss,
                                      config_.gso_segs, link::kGsoSegs});
            // A FIN-carrying drain stays with the classic loop: the FIN
            // consumes sequence space and moves the state machine.
            if (fin_queued_ && n * mss == unsent) --n;
            if (!debug && n >= 2 &&
                stack_.ip().gso_viable(remote_addr_, kIpTcpOverhead + mss)) {
                const bool drains_all = (n * mss == unsent);
                link::GsoDescriptor d;
                TcpHeader h;
                h.src_port = local_port_;
                h.dst_port = remote_port_;
                h.seq = snd_nxt_;
                h.ack = rcv_nxt_;
                h.flags.ack = true;
                h.window = advertised_window();
                write_tcp_header(
                    {d.proto.data() + ip::kIpv4HeaderSize, kTcpHeaderSize}, h);
                const auto spans = send_ring_.peek(snd_nxt_ - snd_una_, n * mss);
                d.payload_a = spans.first;
                d.payload_b = spans.second;
                d.seg_payload = mss;
                d.seg_count = n;
                // The split ORs PSH onto the final wire segment iff the
                // per-segment loop's drains-and-push rule would have.
                d.last_flags_or =
                    (push_requested_ && drains_all) ? std::uint8_t{0x08}
                                                    : std::uint8_t{0};
                ip::SendOptions opts;
                opts.tos = config_.tos;
                opts.source = local_addr_;
                if (stack_.ip().send_gso(ip::kProtoTcp, remote_addr_, d, opts)) {
                    // Bookkeeping for exactly what n classic iterations
                    // would have recorded, in one pass.
                    stats_.bytes_sent += n * mss;
                    if (!timing_ && config_.adaptive_rto) {
                        timing_ = true;
                        timed_seq_ = snd_nxt_;
                        timed_sent_at_ = stack_.ip().simulator().now();
                    }
                    snd_nxt_ = snd_nxt_ + static_cast<std::uint32_t>(n * mss);
                    snd_max_ = snd_nxt_;
                    if (drains_all) push_requested_ = false;
                    stats_.segments_sent += n;
                    stack_.counters_.add(telemetry::Counter::TcpSegsOut, n);
                    stack_.counters_.inc(telemetry::Counter::TcpGsoBuilds);
                    stack_.counters_.add(telemetry::Counter::TcpGsoSegs, n);
                    sent_any = true;
                    continue;
                }
            }
        }

        const bool drains = (len == unsent);
        const bool fin_now = want_fin || (fin_queued_ && drains &&
                                          (state_ == TcpState::FinWait1 ||
                                           state_ == TcpState::LastAck ||
                                           state_ == TcpState::Closing));
        send_segment(snd_nxt_, len, fin_now, push_requested_ && drains);
        if (drains) push_requested_ = false;
        sent_any = true;
    }

    if (sent_any) {
        arm_rto();
        // Any data segment carries the current ACK; the pending delayed-ACK
        // obligation is satisfied without touching its timer (lazy fire).
        ack_pending_ = false;
        segments_since_ack_ = 0;
    }
}

// Sends payload bytes [seq, seq+length) out of the send ring (possibly a
// retransmission — byte sequencing means we repacketize freely), optionally
// carrying FIN. The payload is never copied here: the ring hands back views
// and the codec gathers them straight into the wire buffer.
void TcpSocket::send_segment(SeqNum seq, std::size_t length, bool fin, bool force_psh) {
    TcpHeader h;
    h.src_port = local_port_;
    h.dst_port = remote_port_;
    h.seq = seq;
    h.ack = rcv_nxt_;
    h.flags.ack = true;
    h.flags.fin = fin;
    h.flags.psh = force_psh || fin;
    h.window = advertised_window();

    util::RingBuffer::Spans payload;
    if (length > 0) {
        payload = send_ring_.peek(seq - snd_una_, length);
    }

    const bool is_retransmission = seq_lt(seq, snd_max_);
    if (is_retransmission) {
        ++stats_.retransmitted_segments;
    stack_.counters_.inc(telemetry::Counter::TcpRetransSegs);
        stats_.retransmitted_bytes += length;
        // Karn's rule: a retransmission invalidates RTT timing.
        timing_ = false;
    } else {
        stats_.bytes_sent += length;
        if (!timing_ && length > 0 && config_.adaptive_rto) {
            timing_ = true;
            timed_seq_ = seq;
            timed_sent_at_ = stack_.ip().simulator().now();
        }
    }

    const SeqNum end = seq + static_cast<std::uint32_t>(length) + (fin ? 1 : 0);
    if (seq == snd_nxt_) snd_nxt_ = end;
    if (seq_gt(end, snd_max_)) snd_max_ = end;
    if (fin) {
        fin_sent_ = true;
        fin_seq_out_ = seq + static_cast<std::uint32_t>(length);
    }

    transmit(h, payload.first, payload.second);
}

void TcpSocket::send_control(TcpFlags flags, SeqNum seq) {
    TcpHeader h;
    h.src_port = local_port_;
    h.dst_port = remote_port_;
    h.seq = seq;
    h.flags = flags;
    if (flags.ack) h.ack = rcv_nxt_;
    h.window = advertised_window();
    if (flags.syn) {
        // Announce the MSS we can receive: bounded by our own MTU, not by
        // anything the peer said.
        std::size_t announce = config_.mss_cap;
        if (stack_.ip().interface_count() > 0) {
            const std::size_t mtu = stack_.ip().interface(0).mtu();
            if (mtu > kIpTcpOverhead) announce = std::min(announce, mtu - kIpTcpOverhead);
        }
        h.mss = static_cast<std::uint16_t>(announce);
    }
    transmit(h, {}, {});
}

void TcpSocket::send_ack_now() {
    if (state_ == TcpState::Closed || state_ == TcpState::Listen ||
        state_ == TcpState::SynSent) {
        return;
    }
    // The delayed-ACK timer is deliberately left pending: its lazy-fire
    // callback sees ack_pending_ == false and does nothing. Clearing the
    // flag here is the whole cost of satisfying the obligation.
    ack_pending_ = false;
    segments_since_ack_ = 0;
    TcpFlags f;
    f.ack = true;
    send_control(f, snd_nxt_);
}

void TcpSocket::schedule_ack() {
    ++segments_since_ack_;
    if (!config_.delayed_ack || segments_since_ack_ >= 2) {
        send_ack_now();
        return;
    }
    ack_pending_ = true;
    delayed_ack_timer_.schedule_if_idle(config_.delayed_ack_timeout);
}

void TcpSocket::transmit(const TcpHeader& header, std::span<const std::uint8_t> payload_a,
                         std::span<const std::uint8_t> payload_b) {
    // getenv walks the environment block; once per process is plenty.
    static const bool debug = std::getenv("CATENET_TCP_DEBUG") != nullptr;
    if (debug) {
        fprintf(stderr, "[%8.3f] %s:%u -> %u seq=%u ack=%u len=%zu %s%s%s%s wnd=%u snd_una=%u snd_nxt=%u rcv_nxt=%u flight=%u\n",
            stack_.ip().simulator().now().seconds(), stack_.ip().name().c_str(),
            local_port_, remote_port_, header.seq, header.ack,
            payload_a.size() + payload_b.size(),
            header.flags.syn?"S":"", header.flags.fin?"F":"", header.flags.rst?"R":"",
            header.flags.ack?".":"", header.window, snd_una_, snd_nxt_, rcv_nxt_, flight_size());
    }
    // One buffer start to finish: the codec lays the segment out behind
    // kIpv4HeaderSize bytes of headroom, the IP layer serializes its header
    // into that headroom, and the link takes ownership — the only payload
    // copy on the whole send path is the ring-to-wire gather above.
    auto wire = encode_tcp_segment(header, local_addr_, remote_addr_, payload_a,
                                   payload_b, ip::kIpv4HeaderSize,
                                   stack_.ip().simulator().buffer_pool());
    ip::SendOptions opts;
    opts.tos = config_.tos;
    opts.source = local_addr_;
    // encode_tcp_segment just computed the transport checksum; vouch for it
    // so offload-aware receivers skip the re-verification fold.
    opts.csum_ok = config_.segmentation_offload;
    stack_.ip().send_with_headroom(ip::kProtoTcp, remote_addr_, std::move(wire), opts);
    ++stats_.segments_sent;
    stack_.counters_.inc(telemetry::Counter::TcpSegsOut);
}

// --- timers ---------------------------------------------------------------------

sim::Time TcpSocket::current_rto() const noexcept {
    if (!config_.adaptive_rto) return config_.fixed_rto;
    sim::Time base = config_.initial_rto;
    if (rtt_valid_) {
        base = sim::Time(static_cast<std::int64_t>(srtt_ns_ + 4.0 * rttvar_ns_));
    }
    base = std::clamp(base, config_.min_rto, config_.max_rto);
    for (int i = 0; i < backoff_; ++i) {
        base = base * 2;
        if (base >= config_.max_rto) return config_.max_rto;
    }
    return base;
}

// Lazy re-arm (the BSD trick): every transmitted segment and every ACK
// restarts the retransmission clock, so a naive implementation pays a heap
// reschedule per packet. Instead the restart is one variable store — the
// deadline — and the armed timer is left alone; when it fires early it
// checks the deadline and goes back to sleep for the remainder. In a
// healthy transfer that is one wake-up per RTO period instead of two heap
// operations per segment.
void TcpSocket::arm_rto() {
    const sim::Time rto = current_rto();
    rto_deadline_ = stack_.ip().simulator().now() + rto;
    if (!rto_timer_.pending() || rto_timer_.expiry() > rto_deadline_) {
        rto_timer_.schedule(rto);
    }
}

void TcpSocket::update_rtt(sim::Time sample) {
    const auto s = static_cast<double>(sample.nanos());
    if (!rtt_valid_) {
        srtt_ns_ = s;
        rttvar_ns_ = s / 2.0;
        rtt_valid_ = true;
    } else {
        // Jacobson 1988, the standard gains.
        const double err = s - srtt_ns_;
        srtt_ns_ += err / 8.0;
        rttvar_ns_ += (std::abs(err) - rttvar_ns_) / 4.0;
    }
}

void TcpSocket::on_rto_fire() {
    const sim::Time now = stack_.ip().simulator().now();
    if (now < rto_deadline_) {
        // The deadline moved while we slept (segments were ACKed); this is
        // the lazy re-arm's deferred reschedule, not a timeout.
        rto_timer_.schedule(rto_deadline_ - now);
        return;
    }
    ++stats_.timeouts;
    stack_.counters_.inc(telemetry::Counter::TcpRtos);
    ++consecutive_timeouts_;
    if (consecutive_timeouts_ > config_.max_retries) {
        fail_connection();
        return;
    }
    if (config_.adaptive_rto) ++backoff_;
    timing_ = false;  // Karn

    if (state_ == TcpState::SynSent) {
        TcpFlags syn;
        syn.syn = true;
        send_control(syn, iss_);
        ++stats_.retransmitted_segments;
    stack_.counters_.inc(telemetry::Counter::TcpRetransSegs);
        arm_rto();
        return;
    }
    if (state_ == TcpState::SynReceived) {
        TcpFlags synack;
        synack.syn = true;
        synack.ack = true;
        send_control(synack, iss_);
        ++stats_.retransmitted_segments;
    stack_.counters_.inc(telemetry::Counter::TcpRetransSegs);
        arm_rto();
        return;
    }
    if (flight_size() == 0 && !fin_queued_) return;

    // Congestion response to loss (Jacobson): collapse to one segment.
    if (config_.congestion_control) {
        const auto mss = static_cast<std::uint32_t>(effective_send_mss());
        ssthresh_ = std::max(flight_size() / 2, 2 * mss);
        cwnd_ = mss;
        cwnd_acc_ = 0;
    }
    dup_acks_ = 0;

    // Go back to the first unacknowledged byte; byte sequencing lets us
    // repacketize the whole outstanding region at the current MSS.
    snd_nxt_ = snd_una_;
    fin_sent_ = false;
    try_send(false);
    arm_rto();
}

void TcpSocket::on_persist_fire() {
    if (state_ == TcpState::Closed) return;
    if (snd_wnd_ > 0) return;  // window opened meanwhile
    // Zero-window probe: one byte beyond the window, if we have one.
    const std::uint32_t in_flight = flight_size();
    if (send_ring_.size() > in_flight) {
        send_segment(snd_nxt_, 1, false, true);
    } else {
        send_ack_now();
    }
    persist_timer_.schedule(config_.persist_interval);
}

// --- congestion control -----------------------------------------------------------

void TcpSocket::on_ack_advance(std::uint32_t acked_bytes) {
    consecutive_timeouts_ = 0;
    backoff_ = 0;
    dup_acks_ = 0;
    if (!config_.congestion_control || acked_bytes == 0) return;
    const auto mss = static_cast<std::uint32_t>(effective_send_mss());
    if (cwnd_ < ssthresh_) {
        cwnd_ += mss;  // slow start: exponential growth
    } else {
        // Congestion avoidance: one MSS per RTT's worth of ACKed bytes.
        cwnd_acc_ += acked_bytes;
        if (cwnd_acc_ >= cwnd_) {
            cwnd_acc_ -= cwnd_;
            cwnd_ += mss;
        }
    }
}

void TcpSocket::on_duplicate_ack() {
    ++stats_.duplicate_acks_received;
    stack_.counters_.inc(telemetry::Counter::TcpDupAcks);
    if (!config_.fast_retransmit) return;
    ++dup_acks_;
    if (dup_acks_ == 3) {
        ++stats_.fast_retransmits;
        stack_.counters_.inc(telemetry::Counter::TcpFastRetransmits);
        enter_loss_recovery();
    }
}

void TcpSocket::on_source_quench() {
    // The gateway threw our datagram away and said so.
    if (!config_.respect_source_quench) return;
    ++stats_.source_quenches;
    if (config_.congestion_control) {
        // 4.3BSD-with-Jacobson behaviour: collapse to one segment and
        // slow-start again.
        const auto mss = static_cast<std::uint32_t>(effective_send_mss());
        ssthresh_ = std::max(flight_size() / 2, 2 * mss);
        cwnd_ = mss;
        cwnd_acc_ = 0;
    } else {
        // Pre-Jacobson host: no window machinery to shrink, so do what
        // 4.3BSD did before slow start existed — stop transmitting for a
        // beat and let the queue drain.
        const sim::Time hold =
            rtt_valid_ ? sim::Time(static_cast<std::int64_t>(2.0 * srtt_ns_))
                       : sim::milliseconds(300);
        quench_hold_until_ = stack_.ip().simulator().now() + hold;
        quench_resume_timer_.schedule(hold);
    }
}

void TcpSocket::enter_loss_recovery() {
    // Tahoe: retransmit the missing segment, then slow-start again.
    if (config_.congestion_control) {
        const auto mss = static_cast<std::uint32_t>(effective_send_mss());
        ssthresh_ = std::max(flight_size() / 2, 2 * mss);
        cwnd_ = mss;
        cwnd_acc_ = 0;
    }
    const std::size_t resend =
        std::min<std::size_t>(effective_send_mss(), send_ring_.size());
    if (resend > 0) {
        send_segment(snd_una_, resend, false, false);
        arm_rto();
    }
}

// --- segment arrival ----------------------------------------------------------------

// Header prediction, after Van Jacobson: on an Established connection that
// is not mid-recovery, not closing, and has no window news, the only two
// segment shapes that occur are "next in-order data, same ack" (receiver
// side of a bulk transfer) and "pure ack advancing snd_una_" (sender side).
// Both are handled here with straight-line code; anything else falls back
// to the full RFC 793 processing in on_segment, which remains the single
// source of truth for every corner case.
bool TcpSocket::try_fast_path(const TcpHeader& h, std::span<const std::uint8_t> payload) {
    if (h.flags.syn || h.flags.fin || h.flags.rst || h.flags.urg || !h.flags.ack) {
        return false;
    }
    if (h.seq != rcv_nxt_) return false;
    if (h.window != snd_wnd_ || snd_wnd_ == 0) return false;
    if (snd_nxt_ != snd_max_) return false;  // RTO rewind in progress
    if (fin_queued_ || fin_received_ || fin_seq_out_.has_value()) return false;

    if (payload.empty()) {
        // Pure ACK moving forward: snd_una_ < ack <= snd_max_, and no
        // fast-retransmit streak to account for.
        if (!(seq_gt(h.ack, snd_una_) && seq_leq(h.ack, snd_max_))) return false;
        if (dup_acks_ != 0) return false;
        ++stats_.fast_path_acks;
        stack_.counters_.inc(telemetry::Counter::TcpPredAcks);
        const std::uint32_t acked = h.ack - snd_una_;
        // RTT sample (Karn-safe: timing_ was invalidated on retransmit).
        if (timing_ && seq_gt(h.ack, timed_seq_)) {
            update_rtt(stack_.ip().simulator().now() - timed_sent_at_);
            timing_ = false;
        }
        const bool buffer_was_full = send_space() == 0;
        send_ring_.consume(acked);
        snd_una_ = h.ack;
        on_ack_advance(acked);
        if (flight_size() == 0) {
            rto_timer_.cancel();
        } else {
            arm_rto();
        }
        if (buffer_was_full && send_space() > 0 && on_send_space) on_send_space();
        try_send(false);
        return true;
    }

    // Next expected data, nothing in flight disturbed (ack repeats
    // snd_una_), reassembly queue empty, auto-delivering receiver with the
    // whole payload inside the advertised window.
    if (h.ack != snd_una_) return false;
    if (!out_of_order_.empty()) return false;
    if (manual_receive_ || !recv_open_) return false;
    if (payload.size() > std::min<std::size_t>(config_.recv_buffer, 0xffff)) {
        return false;
    }
    ++stats_.fast_path_data;
    stack_.counters_.inc(telemetry::Counter::TcpPredData);
    rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
    stats_.bytes_received += payload.size();
    if (on_data) on_data(payload);
    schedule_ack();
    return true;
}

void TcpSocket::on_segment(const TcpHeader& h, std::span<const std::uint8_t> payload) {
    ++stats_.segments_received;

    if (state_ == TcpState::Established && try_fast_path(h, payload)) return;

    if (state_ == TcpState::SynSent) {
        if (h.flags.ack && (seq_leq(h.ack, iss_) || seq_gt(h.ack, snd_nxt_))) {
            if (!h.flags.rst) {
                TcpFlags rst;
                rst.rst = true;
                send_control(rst, h.ack);
            }
            return;
        }
        if (h.flags.rst) {
            if (h.flags.ack) fail_connection();
            return;
        }
        if (h.flags.syn) {
            irs_ = h.seq;
            rcv_nxt_ = h.seq + 1;
            if (h.mss) peer_mss_ = *h.mss;
            snd_wnd_ = h.window;
            if (h.flags.ack) {
                snd_una_ = h.ack;
                cwnd_ = static_cast<std::uint32_t>(effective_send_mss());
                enter_state(TcpState::Established);
                consecutive_timeouts_ = 0;
                backoff_ = 0;
                rto_timer_.cancel();
                send_ack_now();
                if (on_connected) on_connected();
                try_send(false);
            } else {
                // Simultaneous open.
                enter_state(TcpState::SynReceived);
                TcpFlags synack;
                synack.syn = true;
                synack.ack = true;
                send_control(synack, iss_);
                arm_rto();
            }
        }
        return;
    }

    // --- sequence acceptability (RFC 793 p. 69) ---
    const std::uint32_t seg_len = static_cast<std::uint32_t>(payload.size()) +
                                  (h.flags.syn ? 1 : 0) + (h.flags.fin ? 1 : 0);
    const std::uint32_t rcv_wnd = advertised_window();
    bool acceptable;
    if (seg_len == 0) {
        acceptable = rcv_wnd == 0 ? h.seq == rcv_nxt_
                                  : seq_in_window(h.seq, rcv_nxt_, rcv_wnd) || h.seq == rcv_nxt_;
    } else {
        acceptable = rcv_wnd > 0 &&
                     (seq_in_window(h.seq, rcv_nxt_, rcv_wnd) ||
                      seq_in_window(h.seq + seg_len - 1, rcv_nxt_, rcv_wnd) ||
                      (seq_leq(h.seq, rcv_nxt_) && seq_lt(rcv_nxt_, h.seq + seg_len)));
    }
    if (!acceptable) {
        if (!h.flags.rst) send_ack_now();
        return;
    }

    if (h.flags.rst) {
        handle_rst();
        return;
    }

    if (h.flags.syn && seq_geq(h.seq, rcv_nxt_)) {
        // SYN in the window: fatal error per RFC.
        TcpFlags rst;
        rst.rst = true;
        send_control(rst, snd_nxt_);
        fail_connection();
        return;
    }

    if (!h.flags.ack) return;

    if (state_ == TcpState::SynReceived) {
        if (seq_in_window(h.ack, snd_una_ + 1, flight_size()) || h.ack == snd_nxt_) {
            snd_una_ = h.ack;
            snd_wnd_ = h.window;
            cwnd_ = static_cast<std::uint32_t>(effective_send_mss());
            enter_state(TcpState::Established);
            consecutive_timeouts_ = 0;
            backoff_ = 0;
            rto_timer_.cancel();
            ++stack_.stats_.connections_accepted;
            stack_.counters_.inc(telemetry::Counter::TcpConnsAccepted);
            if (on_connected) on_connected();
        } else {
            TcpFlags rst;
            rst.rst = true;
            send_control(rst, h.ack);
            return;
        }
    }

    handle_ack(h, !payload.empty());
    if (state_ == TcpState::Closed) return;

    if (!payload.empty()) {
        process_payload(h, payload);
    }

    if (h.flags.fin) {
        const SeqNum fin_seq = h.seq + static_cast<std::uint32_t>(payload.size());
        if (fin_seq == rcv_nxt_) {
            rcv_nxt_ += 1;
            fin_received_ = true;
            send_ack_now();
            // Transition FIRST: an on_remote_close callback that calls
            // close() must observe CloseWait, not the pre-FIN state.
            switch (state_) {
                case TcpState::Established:
                    enter_state(TcpState::CloseWait);
                    break;
                case TcpState::FinWait1:
                    // Our FIN not yet acked (else we'd be in FinWait2).
                    enter_state(TcpState::Closing);
                    break;
                case TcpState::FinWait2:
                    enter_state(TcpState::TimeWait);
                    time_wait_timer_.schedule(config_.msl * 2);
                    break;
                default:
                    break;
            }
            if (on_remote_close) on_remote_close();
        } else if (seq_gt(fin_seq, rcv_nxt_)) {
            // FIN beyond a hole: ack what we have; peer will retransmit.
            send_ack_now();
        }
    }
}

void TcpSocket::handle_ack(const TcpHeader& h, bool has_payload) {
    if (seq_gt(h.ack, snd_max_)) {
        // Acks something never sent.
        send_ack_now();
        return;
    }

    if (seq_gt(h.ack, snd_una_)) {
        const std::uint32_t acked = h.ack - snd_una_;
        // Split the acked range into data bytes and the FIN's virtual byte.
        std::uint32_t data_acked = acked;
        const bool fin_covered = fin_seq_out_ && seq_gt(h.ack, *fin_seq_out_);
        if (fin_covered) data_acked -= 1;
        data_acked = std::min<std::uint32_t>(data_acked,
                                             static_cast<std::uint32_t>(send_ring_.size()));

        // RTT sample (Karn-safe: timing_ was invalidated on retransmit).
        if (timing_ && seq_gt(h.ack, timed_seq_)) {
            update_rtt(stack_.ip().simulator().now() - timed_sent_at_);
            timing_ = false;
        }

        const bool buffer_was_full = send_space() == 0;
        send_ring_.consume(data_acked);
        snd_una_ = h.ack;
        if (seq_lt(snd_nxt_, snd_una_)) snd_nxt_ = snd_una_;  // post-rewind catch-up
        snd_wnd_ = h.window;
        on_ack_advance(data_acked);

        if (flight_size() == 0) {
            rto_timer_.cancel();
        } else {
            arm_rto();
        }

        if (fin_covered) {
            switch (state_) {
                case TcpState::FinWait1:
                    enter_state(TcpState::FinWait2);
                    break;
                case TcpState::Closing:
                    enter_state(TcpState::TimeWait);
                    time_wait_timer_.schedule(config_.msl * 2);
                    return;
                case TcpState::LastAck:
                    finish_and_remove();
                    return;
                default:
                    break;
            }
        }

        if (buffer_was_full && send_space() > 0 && on_send_space) on_send_space();
        try_send(false);
    } else if (h.ack == snd_una_) {
        // Window update or duplicate.
        const bool dup = flight_size() > 0 && h.window == snd_wnd_ && !has_payload;
        snd_wnd_ = h.window;
        if (snd_wnd_ > 0) persist_timer_.cancel();
        if (dup) {
            on_duplicate_ack();
        } else {
            try_send(false);  // window may have opened
        }
    }
}

void TcpSocket::process_payload(const TcpHeader& h, std::span<const std::uint8_t> payload) {
    SeqNum seq = h.seq;
    std::span<const std::uint8_t> data = payload;

    // Trim anything we already have.
    if (seq_lt(seq, rcv_nxt_)) {
        const std::uint32_t dup = rcv_nxt_ - seq;
        if (dup >= data.size()) {
            send_ack_now();  // wholly duplicate
            return;
        }
        data = data.subspan(dup);
        seq = rcv_nxt_;
    }

    if (seq == rcv_nxt_) {
        // Manual mode stores before advancing so rcv_nxt_ only covers bytes
        // the ring actually holds; a sender that overruns the advertised
        // window retransmits the truncated tail.
        std::size_t taken = data.size();
        if (manual_receive_) taken = recv_ring_.write(data);
        rcv_nxt_ += static_cast<std::uint32_t>(taken);
        stats_.bytes_received += taken;
        if (manual_receive_) {
            if (taken > 0 && on_readable) on_readable();
        } else if (on_data) {
            on_data(data);
        }
        deliver_in_order();
        schedule_ack();
    } else {
        // Out of order: hold (bounded by the receive buffer, in a pooled
        // buffer) and send an immediate duplicate ACK so the sender's fast
        // retransmit works. The capacity guard keeps the sorted vector from
        // ever growing past its connection-setup reservation.
        ++stats_.out_of_order_segments;
        if (ooo_bytes_ + data.size() <= config_.recv_buffer &&
            out_of_order_.size() < out_of_order_.capacity()) {
            const auto pos = std::lower_bound(
                out_of_order_.begin(), out_of_order_.end(), seq,
                [](const OooSegment& s, SeqNum v) { return seq_lt(s.seq, v); });
            if (pos == out_of_order_.end() || pos->seq != seq) {
                util::ByteBuffer held =
                    stack_.ip().simulator().buffer_pool().acquire(data.size());
                held.assign(data.begin(), data.end());
                ooo_bytes_ += data.size();
                out_of_order_.insert(pos, OooSegment{seq, std::move(held)});
            }
        }
        send_ack_now();
    }
}

void TcpSocket::deliver_in_order() {
    while (!out_of_order_.empty()) {
        if (seq_gt(out_of_order_.front().seq, rcv_nxt_)) break;
        const SeqNum seq = out_of_order_.front().seq;
        util::ByteBuffer data = std::move(out_of_order_.front().data);
        out_of_order_.erase(out_of_order_.begin());
        ooo_bytes_ -= data.size();
        const SeqNum end = seq + static_cast<std::uint32_t>(data.size());
        if (seq_leq(end, rcv_nxt_)) {
            // Entirely duplicate.
            stack_.ip().simulator().buffer_pool().recycle(std::move(data));
            continue;
        }
        const std::uint32_t skip = rcv_nxt_ - seq;
        const std::span<const std::uint8_t> fresh(data.data() + skip, data.size() - skip);
        std::size_t taken = fresh.size();
        if (manual_receive_) taken = recv_ring_.write(fresh);
        rcv_nxt_ += static_cast<std::uint32_t>(taken);
        stats_.bytes_received += taken;
        if (manual_receive_) {
            if (taken > 0 && on_readable) on_readable();
        } else if (on_data) {
            on_data(fresh);
        }
        stack_.ip().simulator().buffer_pool().recycle(std::move(data));
    }
}

void TcpSocket::handle_rst() {
    fail_connection();
}

void TcpSocket::fail_connection() {
    if (removed_) return;
    const bool was_open = state_ != TcpState::Closed;
    enter_state(TcpState::Closed);
    if (was_open && on_reset) on_reset();
    finish_and_remove();
}

void TcpSocket::finish_and_remove() {
    if (removed_) return;
    removed_ = true;
    enter_state(TcpState::Closed);
    rto_timer_.cancel();
    persist_timer_.cancel();
    delayed_ack_timer_.cancel();
    time_wait_timer_.cancel();
    if (on_closed) on_closed();
    stack_.remove_connection(
        make_conn_key(remote_addr_.value(), remote_port_, local_port_));
}

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

TcpStack::TcpStack(ip::IpStack& ip, util::Rng& parent_rng)
    : ip_(ip), rng_(parent_rng.fork()) {
    ip_.register_protocol(
        ip::kProtoTcp,
        [this](const ip::Ipv4Header& h, std::span<const std::uint8_t> p, std::size_t) {
            on_segment(h, p);
        });
    ip_.register_protocol_run(ip::kProtoTcp, this);
    ip_.add_icmp_error_handler(
        [this](const ip::IcmpMessage& msg, util::Ipv4Address) {
            if (msg.type == ip::IcmpType::SourceQuench) on_source_quench(msg);
        });
}

// Locates the quenched connection from the ICMP-quoted datagram: the
// quote carries our IP header (20 B) plus the first 8 TCP bytes — ports
// and sequence number.
void TcpStack::on_source_quench(const ip::IcmpMessage& msg) {
    if (msg.body.size() < 24) return;
    if (msg.body[9] != ip::kProtoTcp) return;
    const util::Ipv4Address remote((static_cast<std::uint32_t>(msg.body[16]) << 24) |
                                   (static_cast<std::uint32_t>(msg.body[17]) << 16) |
                                   (static_cast<std::uint32_t>(msg.body[18]) << 8) |
                                   static_cast<std::uint32_t>(msg.body[19]));
    const auto local_port =
        static_cast<std::uint16_t>((msg.body[20] << 8) | msg.body[21]);
    const auto remote_port =
        static_cast<std::uint16_t>((msg.body[22] << 8) | msg.body[23]);
    if (auto* entry = connections_.find(
            make_conn_key(remote.value(), remote_port, local_port))) {
        (*entry)->on_source_quench();
    }
}

std::uint16_t TcpStack::allocate_port() {
    for (int attempts = 0; attempts < 0xffff; ++attempts) {
        const std::uint16_t candidate = next_ephemeral_;
        next_ephemeral_ = candidate == 0xffff ? 49152 : candidate + 1;
        const bool in_use =
            listeners_.contains(candidate) ||
            connections_.any_of([&](std::uint64_t key, const auto&) {
                return conn_key_local_port(key) == candidate;
            });
        if (!in_use) return candidate;
    }
    throw std::runtime_error("no free TCP ephemeral ports");
}

std::shared_ptr<TcpSocket> TcpStack::connect(util::Ipv4Address dst, std::uint16_t dst_port,
                                             const TcpConfig& config) {
    const std::uint16_t src_port = allocate_port();
    auto socket = std::shared_ptr<TcpSocket>(new TcpSocket(*this, config));
    connections_.insert(make_conn_key(dst.value(), dst_port, src_port), socket);
    ++stats_.connections_opened;
    counters_.inc(telemetry::Counter::TcpConnsOpened);
    socket->open_active(dst, dst_port, src_port);
    return socket;
}

void TcpStack::listen(std::uint16_t port, AcceptHandler on_accept, const TcpConfig& config) {
    if (listeners_.contains(port)) {
        throw std::invalid_argument("TCP port already listening: " + std::to_string(port));
    }
    listeners_[port] = Listener{std::move(on_accept), config};
}

void TcpStack::stop_listening(std::uint16_t port) { listeners_.erase(port); }

void TcpStack::on_segment(const ip::Ipv4Header& header,
                          std::span<const std::uint8_t> payload) {
    ++stats_.segments_received;
    counters_.inc(telemetry::Counter::TcpSegsIn);
    std::span<const std::uint8_t> data;
    std::optional<TcpHeader> h;
    try {
        // The checksum fold is skipped while the internet layer vouches
        // for this datagram (csum_ok end to end) — it would provably pass.
        h = decode_tcp(header.src, header.dst, payload, data, !ip_.rx_csum_ok());
    } catch (const util::DecodeError&) {
        ++stats_.dropped_bad_checksum;
        counters_.inc(telemetry::Counter::TcpDropChecksum);
        return;
    }
    if (!h) {
        ++stats_.dropped_bad_checksum;
        counters_.inc(telemetry::Counter::TcpDropChecksum);
        return;
    }

    const std::uint64_t key = make_conn_key(header.src.value(), h->src_port, h->dst_port);
    if (auto* entry = connections_.find(key)) {
        // Keep the socket alive through the callback even if it removes
        // itself from the table.
        auto socket = *entry;
        socket->on_segment(*h, data);
        return;
    }

    // No connection. A SYN may match a listener.
    if (h->flags.syn && !h->flags.ack && !h->flags.rst) {
        if (auto lit = listeners_.find(h->dst_port); lit != listeners_.end()) {
            auto socket =
                std::shared_ptr<TcpSocket>(new TcpSocket(*this, lit->second.config));
            connections_.insert(key, socket);
            socket->open_passive(header.src, h->src_port, h->dst_port, *h);
            if (lit->second.on_accept) lit->second.on_accept(socket);
            return;
        }
    }

    ++stats_.dropped_no_connection;
    counters_.inc(telemetry::Counter::TcpDropNoConnection);
    if (!h->flags.rst) send_reset(header, *h, data.size());
}

// The GRO run lane (DESIGN.md §12): one demux probe and one predicate pass
// per run instead of per segment. Each accepted segment is still processed
// completely — counted, delivered, ACK-clocked — at its own arrival, so the
// run is invisible to everything but the amortized fixed costs. The
// decline discipline is absolute: every check runs BEFORE any counter or
// state moves, so a declined segment reaches on_datagram() untouched.
bool TcpStack::on_run_segment(const ip::Ipv4Header& header,
                              std::span<const std::uint8_t> payload,
                              std::size_t /*ifindex*/) {
    if (payload.size() < kTcpHeaderSize) return false;
    const std::uint8_t* p = payload.data();
    if (p[12] != 0x50) return false;  // data offset 5 words, no options
    // ACK required, PSH tolerated, anything else (SYN/FIN/RST/URG) declines
    // — the same flag gate as the header-prediction fast path.
    if ((p[13] & ~0x08u) != 0x10u) return false;
    const std::size_t len = payload.size() - kTcpHeaderSize;

    // Resolve the socket — through the run pin when it matches, one real
    // demux probe otherwise. The pin itself only moves on a consume: a
    // declined segment re-enters the per-datagram path untouched, so
    // paying a shared_ptr pin for it would be pure decline overhead (felt
    // hardest in connection churn, where every handshake ACK lands here).
    const std::uint64_t key =
        make_conn_key(header.src.value(), load_u16(p), load_u16(p + 2));
    std::shared_ptr<TcpSocket>* entry = nullptr;
    TcpSocket* resolved;
    if (run_socket_ != nullptr && key == run_key_) {
        resolved = run_socket_.get();
    } else {
        entry = connections_.find(key);
        if (entry == nullptr) return false;
        resolved = entry->get();
    }
    TcpSocket& s = *resolved;

    // The try_fast_path data-arm predicate, clause for clause, over
    // direct-loaded fields. Any deviation falls back to the slow path,
    // which remains the single source of truth for every corner case.
    if (s.state_ != TcpState::Established) return false;
    if (load_u32(p + 4) != s.rcv_nxt_) return false;
    const std::uint16_t wnd = load_u16(p + 14);
    if (wnd != s.snd_wnd_ || s.snd_wnd_ == 0) return false;
    if (s.snd_nxt_ != s.snd_max_) return false;
    if (s.fin_queued_ || s.fin_received_ || s.fin_seq_out_.has_value()) return false;

    if (len == 0) {
        // The try_fast_path pure-ACK arm, clause for clause: an ACK train
        // from the receiver is as much a run as the data train that earned
        // it, and consuming it here skips the same re-demux the data arm
        // skips. Effects are copied verbatim from the per-datagram path.
        const std::uint32_t ack = load_u32(p + 8);
        if (!(seq_gt(ack, s.snd_una_) && seq_leq(ack, s.snd_max_))) return false;
        if (s.dup_acks_ != 0) return false;
        if (entry != nullptr) {  // a connection switch splits the run
            if (run_segs_ != 0) end_run();
            run_socket_ = *entry;
            run_key_ = key;
        }
        ++stats_.segments_received;
        counters_.inc(telemetry::Counter::TcpSegsIn);
        ++s.stats_.segments_received;
        ++s.stats_.fast_path_acks;
        counters_.inc(telemetry::Counter::TcpPredAcks);
        const std::uint32_t acked = ack - s.snd_una_;
        if (s.timing_ && seq_gt(ack, s.timed_seq_)) {
            s.update_rtt(ip_.simulator().now() - s.timed_sent_at_);
            s.timing_ = false;
        }
        const bool buffer_was_full = s.send_space() == 0;
        s.send_ring_.consume(acked);
        s.snd_una_ = ack;
        s.on_ack_advance(acked);
        if (s.flight_size() == 0) {
            s.rto_timer_.cancel();
        } else {
            s.arm_rto();
        }
        if (buffer_was_full && s.send_space() > 0 && s.on_send_space) {
            s.on_send_space();
        }
        s.try_send(false);
        ++run_segs_;
        return true;
    }

    if (load_u32(p + 8) != s.snd_una_) return false;
    if (!s.out_of_order_.empty()) return false;
    if (s.manual_receive_ || !s.recv_open_) return false;
    if (len > std::min<std::size_t>(s.config_.recv_buffer, 0xffff)) return false;
    if (entry != nullptr) {  // a connection switch splits the run
        if (run_segs_ != 0) end_run();
        run_socket_ = *entry;
        run_key_ = key;
    }

    // Consumed: the per-datagram fast path's exact accounting and ACK
    // cadence, minus the re-verified checksum and re-run demux.
    ++stats_.segments_received;
    counters_.inc(telemetry::Counter::TcpSegsIn);
    ++s.stats_.segments_received;
    ++s.stats_.fast_path_data;
    counters_.inc(telemetry::Counter::TcpPredData);
    s.rcv_nxt_ += static_cast<std::uint32_t>(len);
    s.stats_.bytes_received += len;
    if (s.on_data) s.on_data(payload.subspan(kTcpHeaderSize));
    s.schedule_ack();
    ++run_segs_;
    return true;
}

void TcpStack::on_datagram(const ip::Ipv4Header& header,
                           std::span<const std::uint8_t> payload,
                           std::size_t /*ifindex*/) {
    on_segment(header, payload);
}

void TcpStack::end_run() {
    // Runs of one amortized nothing; only real coalescing is diagnosed.
    if (run_segs_ >= 2) {
        counters_.inc(telemetry::Counter::TcpGroRuns);
        counters_.add(telemetry::Counter::TcpGroSegs, run_segs_);
    }
    run_segs_ = 0;
    run_socket_.reset();
    run_key_ = 0;
}

void TcpStack::send_reset(const ip::Ipv4Header& header, const TcpHeader& offending,
                          std::size_t payload_len) {
    TcpHeader rst;
    rst.src_port = offending.dst_port;
    rst.dst_port = offending.src_port;
    rst.flags.rst = true;
    if (offending.flags.ack) {
        rst.seq = offending.ack;
    } else {
        rst.flags.ack = true;
        rst.ack = offending.seq + static_cast<std::uint32_t>(payload_len) +
                  (offending.flags.syn ? 1 : 0) + (offending.flags.fin ? 1 : 0);
    }
    const auto wire = encode_tcp(rst, header.dst, header.src, {});
    ip::SendOptions opts;
    opts.source = header.dst;
    ip_.send(ip::kProtoTcp, header.src, wire, opts);
    ++stats_.resets_sent;
    counters_.inc(telemetry::Counter::TcpResetsSent);
}

void TcpStack::remove_connection(std::uint64_t key) {
    auto* entry = connections_.find(key);
    if (entry == nullptr) return;
    auto doomed = std::move(*entry);
    connections_.erase(key);
    // Defer the final release one event: remove_connection is often called
    // from deep inside the doomed socket's own call stack (timer fire,
    // segment processing), and destroying it mid-flight would be UB.
    ip_.simulator().schedule_after(sim::Time(0), [doomed] {});
}

}  // namespace catenet::tcp
