// Open-addressed demultiplexing table for established connections, keyed
// on the 4-tuple packed into one 64-bit word (the local address is implied
// — a TcpStack owns exactly one host). The seed used std::map<ConnKey,...>,
// a red-black tree walk plus a node allocation per connection; here lookup
// is a Fibonacci hash and a short linear probe over one flat array — the
// per-segment demux cost the receive fast path sits behind.
//
// Deletion uses backward-shift (Robin Hood style without the rich
// metadata): instead of tombstones, entries after the hole slide back into
// it when doing so shortens (or keeps) their probe distance. Lookups stay
// tombstone-free forever, which matters for a table that churns a
// connection per request in the churn benchmark.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace catenet::tcp {

template <typename Value>
class ConnTable {
public:
    using Key = std::uint64_t;

    ConnTable() : slots_(kInitialSlots) {}

    std::size_t size() const noexcept { return size_; }

    /// Pointer to the mapped value, or nullptr. Stable only until the next
    /// insert/erase.
    Value* find(Key key) noexcept {
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = index_of(key);; i = (i + 1) & mask) {
            Slot& s = slots_[i];
            if (!s.used) return nullptr;
            if (s.key == key) return &s.value;
        }
    }

    /// Inserts or overwrites.
    void insert(Key key, Value value) {
        if ((size_ + 1) * 4 > slots_.size() * 3) grow();
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = index_of(key);; i = (i + 1) & mask) {
            Slot& s = slots_[i];
            if (!s.used) {
                s.used = true;
                s.key = key;
                s.value = std::move(value);
                ++size_;
                return;
            }
            if (s.key == key) {
                s.value = std::move(value);
                return;
            }
        }
    }

    /// Removes `key` if present; returns whether it was.
    bool erase(Key key) noexcept {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = index_of(key);
        for (;; i = (i + 1) & mask) {
            Slot& s = slots_[i];
            if (!s.used) return false;
            if (s.key == key) break;
        }
        // Backward-shift: walk the probe chain after the hole; an entry at
        // j (ideal slot k) may fill hole h exactly when h lies within its
        // probe path, i.e. (h - k) mod size <= (j - k) mod size.
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
            Slot& cand = slots_[j];
            if (!cand.used) break;
            const std::size_t ideal = index_of(cand.key);
            if (((hole - ideal) & mask) <= ((j - ideal) & mask)) {
                slots_[hole].key = cand.key;
                slots_[hole].value = std::move(cand.value);
                hole = j;
            }
        }
        slots_[hole].used = false;
        slots_[hole].value = Value{};
        --size_;
        return true;
    }

    /// Visits every (key, value) pair; no insert/erase during the walk.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const Slot& s : slots_) {
            if (s.used) fn(s.key, s.value);
        }
    }

    /// True if any entry satisfies the predicate (key, value).
    template <typename Pred>
    bool any_of(Pred&& pred) const {
        for (const Slot& s : slots_) {
            if (s.used && pred(s.key, s.value)) return true;
        }
        return false;
    }

private:
    static constexpr std::size_t kInitialSlots = 16;  // power of two

    struct Slot {
        Key key = 0;
        Value value{};
        bool used = false;
    };

    std::size_t index_of(Key key) const noexcept {
        // Fibonacci hash: the 4-tuple's fields land in distinct byte lanes,
        // so one multiply diffuses them across the high bits.
        return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) &
               (slots_.size() - 1);
    }

    void grow() {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        size_ = 0;
        for (Slot& s : old) {
            if (s.used) insert(s.key, std::move(s.value));
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

/// Packs (remote address, remote port, local port) into a ConnTable key.
inline std::uint64_t make_conn_key(std::uint32_t remote_addr, std::uint16_t remote_port,
                                   std::uint16_t local_port) noexcept {
    return (std::uint64_t{remote_addr} << 32) | (std::uint64_t{remote_port} << 16) |
           std::uint64_t{local_port};
}

/// Extracts the local-port lane of a packed key (ephemeral-port allocation).
inline std::uint16_t conn_key_local_port(std::uint64_t key) noexcept {
    return static_cast<std::uint16_t>(key & 0xffff);
}

}  // namespace catenet::tcp
