// A virtual-circuit switch: the anti-gateway. Where an ip::IpStack gateway
// holds only a routing table, this switch holds **per-call state** — one
// circuit-table entry pair per active call — plus per-link ARQ state.
// Killing it destroys every call routed through it (experiments E1/E8
// measure exactly that), and its neighbors must detect the failure and
// clear the orphaned circuit segments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "link/netif.h"
#include "sim/simulator.h"
#include "vc/frame.h"
#include "vc/link_arq.h"

namespace catenet::vc {

struct VcSwitchStats {
    std::uint64_t calls_routed = 0;
    std::uint64_t calls_cleared = 0;
    std::uint64_t calls_refused = 0;
    std::uint64_t frames_switched = 0;
};

class VcSwitch {
public:
    VcSwitch(sim::Simulator& sim, std::string name, LinkArqConfig arq_config = {});

    /// Attaches a port (one side of a link). Returns the port index.
    std::size_t attach_port(link::NetIf& netif);

    /// Static route: calls to `dst` leave via `port`.
    void set_route(VcAddress dst, std::size_t port);

    /// Crash / restore. Crashing erases the circuit table (it lives in
    /// switch memory — the whole point) and all link-ARQ state.
    void set_down(bool down);
    bool is_down() const noexcept { return down_; }

    std::size_t active_circuits() const noexcept { return circuits_.size() / 2; }
    /// Bytes of in-network connection state held right now (an entry pair
    /// per call plus ARQ backlog) — the replication-cost metric for E8.
    std::size_t state_bytes() const noexcept;

    const VcSwitchStats& stats() const noexcept { return stats_; }
    const std::string& name() const noexcept { return name_; }

private:
    using HalfKey = std::pair<std::size_t, std::uint16_t>;  // (port, vci)

    void on_frame(std::size_t port, const util::ByteBuffer& wire);
    void on_link_failed(std::size_t port);
    void forward(std::size_t port, const VcFrame& frame);
    std::uint16_t allocate_vci(std::size_t port);

    sim::Simulator& sim_;
    std::string name_;
    LinkArqConfig arq_config_;
    std::vector<std::unique_ptr<LinkArq>> ports_;
    std::vector<link::NetIf*> netifs_;
    std::map<VcAddress, std::size_t> routes_;
    std::map<HalfKey, HalfKey> circuits_;  ///< both directions installed
    std::vector<std::uint16_t> next_vci_;
    VcSwitchStats stats_;
    bool down_ = false;
};

}  // namespace catenet::vc
