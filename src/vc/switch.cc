#include "vc/switch.h"

#include <algorithm>

namespace catenet::vc {

VcSwitch::VcSwitch(sim::Simulator& sim, std::string name, LinkArqConfig arq_config)
    : sim_(sim), name_(std::move(name)), arq_config_(arq_config) {}

std::size_t VcSwitch::attach_port(link::NetIf& netif) {
    const std::size_t port = ports_.size();
    ports_.push_back(std::make_unique<LinkArq>(sim_, netif, arq_config_));
    netifs_.push_back(&netif);
    next_vci_.push_back(1);
    ports_[port]->set_deliver([this, port](util::ByteBuffer frame) {
        if (!down_) on_frame(port, frame);
    });
    ports_[port]->set_on_link_failed([this, port] {
        if (!down_) on_link_failed(port);
    });
    return port;
}

void VcSwitch::set_route(VcAddress dst, std::size_t port) { routes_[dst] = port; }

void VcSwitch::set_down(bool down) {
    down_ = down;
    if (down) {
        // The crash: every circuit through this switch ceases to exist.
        circuits_.clear();
        for (auto& port : ports_) port->reset();
    }
    for (auto* netif : netifs_) netif->set_up(!down);
}

std::size_t VcSwitch::state_bytes() const noexcept {
    std::size_t bytes = circuits_.size() * sizeof(std::pair<HalfKey, HalfKey>);
    for (const auto& port : ports_) bytes += port->backlog() * 64;  // approx frame state
    return bytes;
}

std::uint16_t VcSwitch::allocate_vci(std::size_t port) {
    // Find a vci unused on this port (as our outbound identifier).
    for (int attempts = 0; attempts < 0xffff; ++attempts) {
        const std::uint16_t candidate = next_vci_[port]++;
        if (next_vci_[port] == 0) next_vci_[port] = 1;
        if (candidate != 0 && !circuits_.contains({port, candidate})) return candidate;
    }
    return 0;
}

void VcSwitch::on_frame(std::size_t port, const util::ByteBuffer& wire) {
    auto frame = decode_frame(wire);
    if (!frame) return;

    switch (frame->type) {
        case VcFrameType::CallRequest: {
            const VcAddress dst = frame->requested_dst();
            auto rit = routes_.find(dst);
            if (rit == routes_.end() || rit->second >= ports_.size()) {
                ++stats_.calls_refused;
                ports_[port]->send(
                    encode_frame(VcFrame::call_clear(frame->vci, kClearNoRoute)));
                return;
            }
            const std::size_t out_port = rit->second;
            const std::uint16_t out_vci = allocate_vci(out_port);
            if (out_vci == 0) {
                ++stats_.calls_refused;
                ports_[port]->send(
                    encode_frame(VcFrame::call_clear(frame->vci, kClearNoResources)));
                return;
            }
            circuits_[{port, frame->vci}] = {out_port, out_vci};
            circuits_[{out_port, out_vci}] = {port, frame->vci};
            ++stats_.calls_routed;
            VcFrame out = *frame;
            out.vci = out_vci;
            ports_[out_port]->send(encode_frame(out));
            return;
        }
        case VcFrameType::CallAccept:
        case VcFrameType::Data: {
            auto it = circuits_.find({port, frame->vci});
            if (it == circuits_.end()) {
                // No such circuit (e.g. we crashed and lost it): clear.
                ports_[port]->send(encode_frame(
                    VcFrame::call_clear(frame->vci, kClearUnknownCircuit)));
                return;
            }
            const auto [out_port, out_vci] = it->second;
            VcFrame out = *frame;
            out.vci = out_vci;
            ++stats_.frames_switched;
            ports_[out_port]->send(encode_frame(out));
            return;
        }
        case VcFrameType::CallClear: {
            auto it = circuits_.find({port, frame->vci});
            if (it == circuits_.end()) return;
            const auto [out_port, out_vci] = it->second;
            circuits_.erase({out_port, out_vci});
            circuits_.erase(it);
            ++stats_.calls_cleared;
            VcFrame out = *frame;
            out.vci = out_vci;
            ports_[out_port]->send(encode_frame(out));
            return;
        }
    }
}

void VcSwitch::on_link_failed(std::size_t port) {
    // Clear every circuit that uses the dead port, notifying the other
    // side of each.
    std::vector<std::pair<HalfKey, HalfKey>> doomed;
    for (const auto& [in, out] : circuits_) {
        if (in.first == port) doomed.emplace_back(in, out);
    }
    for (const auto& [in, out] : doomed) {
        circuits_.erase(in);
        circuits_.erase(out);
        ++stats_.calls_cleared;
        ports_[out.first]->send(
            encode_frame(VcFrame::call_clear(out.second, kClearLinkFailure)));
    }
    ports_[port]->reset();
}

}  // namespace catenet::vc
