// Frame formats for the virtual-circuit baseline network — the
// architecture the paper contrasts with datagrams: connection state lives
// *inside the network* (each switch holds a circuit table entry per call)
// and reliability is hop-by-hop (each link runs its own ARQ), X.25-style.
//
// Link wire format: every frame is wrapped in an ARQ envelope
//   {kind(1) seq(2) ack(2)} — kind Data carries a VC frame, kind Ack is
// bare. The VC frame inside is {type(1) vci(2) body}.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/byte_buffer.h"

namespace catenet::vc {

/// Network-level address of a VC host (like an X.121 address, shortened).
using VcAddress = std::uint16_t;

enum class VcFrameType : std::uint8_t {
    CallRequest = 1,  ///< body: dst address (2), src address (2)
    CallAccept = 2,   ///< body: empty
    CallClear = 3,    ///< body: cause (1)
    Data = 4,         ///< body: payload bytes
};

/// Clear causes.
inline constexpr std::uint8_t kClearByUser = 0;
inline constexpr std::uint8_t kClearNoRoute = 1;
inline constexpr std::uint8_t kClearUnknownCircuit = 2;
inline constexpr std::uint8_t kClearLinkFailure = 3;
inline constexpr std::uint8_t kClearNoResources = 4;

struct VcFrame {
    VcFrameType type = VcFrameType::Data;
    std::uint16_t vci = 0;
    util::ByteBuffer body;

    static VcFrame call_request(std::uint16_t vci, VcAddress dst, VcAddress src);
    static VcFrame call_accept(std::uint16_t vci);
    static VcFrame call_clear(std::uint16_t vci, std::uint8_t cause);
    static VcFrame data(std::uint16_t vci, std::span<const std::uint8_t> payload);

    /// For CallRequest frames.
    VcAddress requested_dst() const;
    VcAddress requested_src() const;
    /// For CallClear frames.
    std::uint8_t clear_cause() const { return body.empty() ? kClearByUser : body[0]; }
};

util::ByteBuffer encode_frame(const VcFrame& frame);
std::optional<VcFrame> decode_frame(std::span<const std::uint8_t> wire);

}  // namespace catenet::vc
