#include "vc/host.h"

#include <stdexcept>

namespace catenet::vc {

bool VcCall::send(std::span<const std::uint8_t> data) {
    if (state_ != CallState::Connected || host_ == nullptr) return false;
    const std::size_t chunk = host_->config_.frame_payload;
    for (std::size_t pos = 0; pos < data.size(); pos += chunk) {
        const std::size_t len = std::min(chunk, data.size() - pos);
        host_->send_frame(VcFrame::data(vci_, data.subspan(pos, len)));
    }
    return true;
}

void VcCall::clear(std::uint8_t cause) {
    if (state_ == CallState::Cleared || host_ == nullptr) return;
    state_ = CallState::Cleared;
    host_->send_frame(VcFrame::call_clear(vci_, cause));
    host_->calls_.erase(vci_);
}

VcHost::VcHost(sim::Simulator& sim, VcAddress address, std::string name, VcHostConfig config)
    : sim_(sim), address_(address), name_(std::move(name)), config_(config) {}

void VcHost::attach(link::NetIf& netif) {
    if (link_) throw std::logic_error("VcHost::attach called twice");
    link_ = std::make_unique<LinkArq>(sim_, netif, config_.arq);
    link_->set_deliver([this](util::ByteBuffer frame) { on_frame(frame); });
    link_->set_on_link_failed([this] { on_link_failed(); });
}

std::shared_ptr<VcCall> VcHost::place_call(VcAddress dst) {
    if (!link_) throw std::logic_error("VcHost: no access link attached");
    const std::uint16_t vci = next_vci_++;
    if (next_vci_ == 0) next_vci_ = 0x8000;
    auto call = std::shared_ptr<VcCall>(new VcCall(*this, vci, dst, CallState::Requesting));
    calls_[vci] = call;
    send_frame(VcFrame::call_request(vci, dst, address_));
    return call;
}

void VcHost::send_frame(const VcFrame& frame) {
    if (link_) link_->send(encode_frame(frame));
}

void VcHost::on_frame(const util::ByteBuffer& wire) {
    auto frame = decode_frame(wire);
    if (!frame) return;

    switch (frame->type) {
        case VcFrameType::CallRequest: {
            // Incoming call: auto-accept (applications refuse via clear()).
            auto call = std::shared_ptr<VcCall>(
                new VcCall(*this, frame->vci, frame->requested_src(), CallState::Connected));
            calls_[frame->vci] = call;
            send_frame(VcFrame::call_accept(frame->vci));
            if (incoming_) incoming_(call);
            return;
        }
        case VcFrameType::CallAccept: {
            auto it = calls_.find(frame->vci);
            if (it == calls_.end()) return;
            auto call = it->second;
            if (call->state_ == CallState::Requesting) {
                call->state_ = CallState::Connected;
                if (call->on_accepted) call->on_accepted();
            }
            return;
        }
        case VcFrameType::Data: {
            auto it = calls_.find(frame->vci);
            if (it == calls_.end()) {
                send_frame(VcFrame::call_clear(frame->vci, kClearUnknownCircuit));
                return;
            }
            auto call = it->second;
            call->bytes_received_ += frame->body.size();
            if (call->on_data) call->on_data(frame->body);
            return;
        }
        case VcFrameType::CallClear: {
            auto it = calls_.find(frame->vci);
            if (it == calls_.end()) return;
            auto call = it->second;
            calls_.erase(it);
            call->state_ = CallState::Cleared;
            if (call->on_cleared) call->on_cleared(frame->clear_cause());
            return;
        }
    }
}

void VcHost::on_link_failed() {
    // Access link dead: every call is gone.
    auto calls = std::move(calls_);
    calls_.clear();
    link_->reset();
    for (auto& [vci, call] : calls) {
        call->state_ = CallState::Cleared;
        if (call->on_cleared) call->on_cleared(kClearLinkFailure);
    }
}

}  // namespace catenet::vc
