// A host on the virtual-circuit network: places and accepts calls over its
// single access link. Data on an accepted call is delivered reliably and
// in order by the network itself (hop-by-hop ARQ + circuit switching) —
// the host needs no transport protocol, which is the VC architecture's
// selling point and its survivability downfall.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "link/netif.h"
#include "sim/simulator.h"
#include "vc/frame.h"
#include "vc/link_arq.h"

namespace catenet::vc {

class VcHost;

enum class CallState { Requesting, Connected, Cleared };

/// One end of a call. Lives in a shared_ptr held by both the host and the
/// application.
class VcCall : public std::enable_shared_from_this<VcCall> {
public:
    std::function<void()> on_accepted;
    std::function<void(std::span<const std::uint8_t>)> on_data;
    std::function<void(std::uint8_t cause)> on_cleared;

    CallState state() const noexcept { return state_; }
    VcAddress peer() const noexcept { return peer_; }

    /// Sends bytes, chunked into data frames of the configured size.
    /// Returns false if the call is not connected.
    bool send(std::span<const std::uint8_t> data);

    /// Hangs up.
    void clear(std::uint8_t cause = kClearByUser);

    std::uint64_t bytes_received() const noexcept { return bytes_received_; }

private:
    friend class VcHost;
    VcCall(VcHost& host, std::uint16_t vci, VcAddress peer, CallState state)
        : host_(&host), vci_(vci), peer_(peer), state_(state) {}

    VcHost* host_;
    std::uint16_t vci_;
    VcAddress peer_;
    CallState state_;
    std::uint64_t bytes_received_ = 0;
};

struct VcHostConfig {
    std::size_t frame_payload = 128;  ///< X.25-era data frame size
    LinkArqConfig arq;
};

class VcHost {
public:
    using IncomingHandler = std::function<void(std::shared_ptr<VcCall>)>;

    VcHost(sim::Simulator& sim, VcAddress address, std::string name,
           VcHostConfig config = {});

    /// Attaches the access link (call once).
    void attach(link::NetIf& netif);

    /// Places a call; result arrives via the call's callbacks.
    std::shared_ptr<VcCall> place_call(VcAddress dst);

    /// Handler for incoming calls (auto-accepted).
    void set_incoming_handler(IncomingHandler handler) { incoming_ = std::move(handler); }

    VcAddress address() const noexcept { return address_; }
    std::size_t active_calls() const noexcept { return calls_.size(); }
    const std::string& name() const noexcept { return name_; }

private:
    friend class VcCall;

    void on_frame(const util::ByteBuffer& wire);
    void on_link_failed();
    void send_frame(const VcFrame& frame);

    sim::Simulator& sim_;
    VcAddress address_;
    std::string name_;
    VcHostConfig config_;
    std::unique_ptr<LinkArq> link_;
    std::map<std::uint16_t, std::shared_ptr<VcCall>> calls_;
    IncomingHandler incoming_;
    std::uint16_t next_vci_ = 0x8000;  ///< host-originated calls use high vcis
};

}  // namespace catenet::vc
