#include "vc/link_arq.h"

#include <algorithm>
#include <vector>

namespace catenet::vc {

namespace {
constexpr std::uint8_t kKindData = 1;
constexpr std::uint8_t kKindAck = 2;

bool seq16_lt(std::uint16_t a, std::uint16_t b) {
    return static_cast<std::int16_t>(a - b) < 0;
}
}  // namespace

LinkArq::LinkArq(sim::Simulator& sim, link::NetIf& netif, LinkArqConfig config)
    : sim_(sim),
      netif_(netif),
      config_(config),
      rto_timer_(sim, [this] { on_rto(); }) {
    netif_.set_receiver([this](link::Packet p) { on_packet(std::move(p)); });
}

void LinkArq::send(util::ByteBuffer frame) {
    outstanding_.push_back(std::move(frame));
    try_send();
}

void LinkArq::reset() {
    rcv_buffer_.clear();
    outstanding_.clear();
    base_seq_ = 0;
    next_unsent_ = 0;
    rcv_expected_ = 0;
    retry_round_ = 0;
    rto_timer_.cancel();
}

void LinkArq::try_send() {
    while (next_unsent_ < outstanding_.size() && next_unsent_ < config_.window) {
        transmit(static_cast<std::uint16_t>(base_seq_ + next_unsent_),
                 outstanding_[next_unsent_]);
        ++next_unsent_;
        ++stats_.frames_sent;
    }
    if (!outstanding_.empty()) rto_timer_.schedule_if_idle(config_.rto);
}

void LinkArq::transmit(std::uint16_t seq, const util::ByteBuffer& frame) {
    util::BufferWriter w(5 + frame.size());
    w.put_u8(kKindData);
    w.put_u16(seq);
    w.put_u16(rcv_expected_);  // piggybacked cumulative ack
    w.put_bytes(frame);
    netif_.send(link::make_packet(w.take(), sim_), util::Ipv4Address{});
}

void LinkArq::send_ack() {
    util::BufferWriter w(5);
    w.put_u8(kKindAck);
    w.put_u16(0);
    w.put_u16(rcv_expected_);
    netif_.send(link::make_packet(w.take(), sim_), util::Ipv4Address{});
    ++stats_.acks_sent;
}

void LinkArq::on_packet(link::Packet packet) {
    util::BufferReader r(packet.bytes);
    std::uint8_t kind;
    std::uint16_t seq;
    std::uint16_t ack;
    try {
        kind = r.get_u8();
        seq = r.get_u16();
        ack = r.get_u16();
    } catch (const util::DecodeError&) {
        return;
    }

    // Process the (piggybacked) ack.
    if (seq16_lt(base_seq_, ack) || ack == static_cast<std::uint16_t>(
                                              base_seq_ + outstanding_.size())) {
        const std::uint16_t advanced = ack - base_seq_;
        if (advanced <= outstanding_.size()) {
            outstanding_.erase(outstanding_.begin(), outstanding_.begin() + advanced);
            base_seq_ = ack;
            next_unsent_ -= std::min<std::size_t>(next_unsent_, advanced);
            retry_round_ = 0;
            if (outstanding_.empty()) {
                rto_timer_.cancel();
            } else {
                rto_timer_.schedule(config_.rto);
            }
            try_send();
        }
    }

    if (kind == kKindData) {
        if (seq == rcv_expected_) {
            ++rcv_expected_;
            ++stats_.frames_delivered;
            std::vector<util::ByteBuffer> ready;
            ready.push_back(util::to_buffer(r.remaining()));
            // Drain buffered successors (selective repeat).
            for (auto it = rcv_buffer_.find(rcv_expected_); it != rcv_buffer_.end();
                 it = rcv_buffer_.find(rcv_expected_)) {
                ready.push_back(std::move(it->second));
                rcv_buffer_.erase(it);
                ++rcv_expected_;
                ++stats_.frames_delivered;
            }
            send_ack();
            if (deliver_) {
                for (auto& frame : ready) deliver_(frame);
            }
        } else if (seq16_lt(rcv_expected_, seq) &&
                   static_cast<std::uint16_t>(seq - rcv_expected_) <= 2 * config_.window) {
            // Ahead of the hole: hold it and re-ack the gap.
            rcv_buffer_.emplace(seq, util::to_buffer(r.remaining()));
            send_ack();
        } else {
            // Duplicate of something already delivered: re-ack.
            send_ack();
        }
    }
}

void LinkArq::on_rto() {
    ++retry_round_;
    if (retry_round_ > config_.max_retries) {
        // The other side is not acking: declare the link down.
        if (on_link_failed_) on_link_failed_();
        return;
    }
    // Selective repeat: resend only the unacknowledged head; the receiver
    // holds everything after the hole.
    if (next_unsent_ > 0) {
        transmit(base_seq_, outstanding_[0]);
        ++stats_.frames_retransmitted;
    }
    if (!outstanding_.empty()) rto_timer_.schedule(config_.rto);
}

}  // namespace catenet::vc
