// Hop-by-hop reliability: a sliding-window selective-repeat ARQ over one
// link direction (receiver buffers out-of-order frames; the sender
// retransmits only the unacknowledged head). Every link in the VC network
// runs one of these each way, so a frame lost on hop N is repaired on hop
// N at a cost of ~one frame — the "reliability inside the network"
// discipline the paper's cost analysis (E5) and survivability analysis
// (E1/E8) compare against end-to-end recovery.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "link/netif.h"
#include "sim/timer.h"
#include "util/byte_buffer.h"

namespace catenet::vc {

struct LinkArqConfig {
    std::size_t window = 8;
    sim::Time rto = sim::milliseconds(500);
    /// Consecutive retransmission rounds before declaring the link dead.
    int max_retries = 6;
};

struct LinkArqStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_retransmitted = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t acks_sent = 0;
};

/// Full-duplex reliable framing over one NetIf. Owns both the sender and
/// receiver role for its side of the link.
class LinkArq {
public:
    using DeliverFn = std::function<void(util::ByteBuffer frame)>;
    using LinkFailedFn = std::function<void()>;

    LinkArq(sim::Simulator& sim, link::NetIf& netif, LinkArqConfig config = {});

    void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
    void set_on_link_failed(LinkFailedFn fn) { on_link_failed_ = std::move(fn); }

    /// Queues a frame for reliable in-order delivery to the other side.
    void send(util::ByteBuffer frame);

    /// Discards all state (node restart).
    void reset();

    std::size_t backlog() const noexcept { return outstanding_.size(); }
    const LinkArqStats& stats() const noexcept { return stats_; }

private:
    void on_packet(link::Packet packet);
    void try_send();
    void transmit(std::uint16_t seq, const util::ByteBuffer& frame);
    void send_ack();
    void on_rto();

    sim::Simulator& sim_;
    link::NetIf& netif_;
    LinkArqConfig config_;
    DeliverFn deliver_;
    LinkFailedFn on_link_failed_;

    std::deque<util::ByteBuffer> outstanding_;  ///< unacked + unsent
    std::uint16_t base_seq_ = 0;
    std::size_t next_unsent_ = 0;
    std::uint16_t rcv_expected_ = 0;
    std::map<std::uint16_t, util::ByteBuffer> rcv_buffer_;  ///< out-of-order hold
    int retry_round_ = 0;
    sim::Timer rto_timer_;
    LinkArqStats stats_;
};

}  // namespace catenet::vc
