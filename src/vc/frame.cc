#include "vc/frame.h"

namespace catenet::vc {

VcFrame VcFrame::call_request(std::uint16_t vci, VcAddress dst, VcAddress src) {
    VcFrame f;
    f.type = VcFrameType::CallRequest;
    f.vci = vci;
    util::BufferWriter w(4);
    w.put_u16(dst);
    w.put_u16(src);
    f.body = w.take();
    return f;
}

VcFrame VcFrame::call_accept(std::uint16_t vci) {
    VcFrame f;
    f.type = VcFrameType::CallAccept;
    f.vci = vci;
    return f;
}

VcFrame VcFrame::call_clear(std::uint16_t vci, std::uint8_t cause) {
    VcFrame f;
    f.type = VcFrameType::CallClear;
    f.vci = vci;
    f.body.push_back(cause);
    return f;
}

VcFrame VcFrame::data(std::uint16_t vci, std::span<const std::uint8_t> payload) {
    VcFrame f;
    f.type = VcFrameType::Data;
    f.vci = vci;
    f.body = util::to_buffer(payload);
    return f;
}

VcAddress VcFrame::requested_dst() const {
    util::BufferReader r(body);
    return r.get_u16();
}

VcAddress VcFrame::requested_src() const {
    util::BufferReader r(body);
    r.skip(2);
    return r.get_u16();
}

util::ByteBuffer encode_frame(const VcFrame& frame) {
    util::BufferWriter w(3 + frame.body.size());
    w.put_u8(static_cast<std::uint8_t>(frame.type));
    w.put_u16(frame.vci);
    w.put_bytes(frame.body);
    return w.take();
}

std::optional<VcFrame> decode_frame(std::span<const std::uint8_t> wire) {
    try {
        util::BufferReader r(wire);
        VcFrame f;
        const auto type = r.get_u8();
        if (type < 1 || type > 4) return std::nullopt;
        f.type = static_cast<VcFrameType>(type);
        f.vci = r.get_u16();
        f.body = util::to_buffer(r.remaining());
        return f;
    } catch (const util::DecodeError&) {
        return std::nullopt;
    }
}

}  // namespace catenet::vc
