#include "vc/network.h"

#include <deque>
#include <limits>
#include <stdexcept>

namespace catenet::vc {

VcNetwork::VcNetwork(sim::Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

std::size_t VcNetwork::add_switch(const std::string& name, LinkArqConfig arq) {
    switches_.push_back(std::make_unique<VcSwitch>(sim_, name, arq));
    adjacency_.emplace_back();
    return switches_.size() - 1;
}

std::size_t VcNetwork::add_host(VcAddress address, const std::string& name,
                                VcHostConfig config) {
    hosts_.push_back(std::make_unique<VcHost>(sim_, address, name, config));
    return hosts_.size() - 1;
}

std::size_t VcNetwork::connect_switches(std::size_t a, std::size_t b,
                                        const link::LinkParams& params) {
    auto link = std::make_unique<link::PointToPointLink>(
        sim_, rng_, params,
        switches_.at(a)->name() + "-" + switches_.at(b)->name());
    const std::size_t port_a = switches_[a]->attach_port(link->port_a());
    const std::size_t port_b = switches_[b]->attach_port(link->port_b());
    adjacency_[a].push_back(Edge{b, port_a});
    adjacency_[b].push_back(Edge{a, port_b});
    links_.push_back(std::move(link));
    return links_.size() - 1;
}

std::size_t VcNetwork::connect_host(std::size_t host, std::size_t sw,
                                    const link::LinkParams& params) {
    auto link = std::make_unique<link::PointToPointLink>(
        sim_, rng_, params, hosts_.at(host)->name() + "-" + switches_.at(sw)->name());
    hosts_[host]->attach(link->port_a());
    const std::size_t port = switches_[sw]->attach_port(link->port_b());
    attachments_.push_back(HostAttachment{host, sw, port});
    links_.push_back(std::move(link));
    return links_.size() - 1;
}

void VcNetwork::compute_routes() {
    constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();

    for (const auto& attachment : attachments_) {
        const VcAddress dst = hosts_[attachment.host]->address();
        // BFS from the attachment switch across the switch graph.
        std::vector<std::size_t> dist(switches_.size(), kUnreached);
        std::vector<std::size_t> via_port(switches_.size(), kUnreached);
        std::deque<std::size_t> frontier;
        dist[attachment.sw] = 0;
        switches_[attachment.sw]->set_route(dst, attachment.port);
        frontier.push_back(attachment.sw);
        while (!frontier.empty()) {
            const std::size_t current = frontier.front();
            frontier.pop_front();
            for (const Edge& edge : adjacency_[current]) {
                if (dist[edge.peer_switch] != kUnreached) continue;
                dist[edge.peer_switch] = dist[current] + 1;
                // The peer reaches `dst` by sending toward `current`: find
                // the peer's port on this edge.
                for (const Edge& back : adjacency_[edge.peer_switch]) {
                    if (back.peer_switch == current) {
                        switches_[edge.peer_switch]->set_route(dst, back.local_port);
                        break;
                    }
                }
                frontier.push_back(edge.peer_switch);
            }
        }
    }
}

}  // namespace catenet::vc
