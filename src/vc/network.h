// Topology builder for the virtual-circuit baseline: wires switches and
// hosts together over point-to-point links and computes static shortest-
// path call-routing tables (the network operator's job in an X.25 world).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "link/point_to_point.h"
#include "sim/simulator.h"
#include "util/random.h"
#include "vc/host.h"
#include "vc/switch.h"

namespace catenet::vc {

class VcNetwork {
public:
    VcNetwork(sim::Simulator& sim, std::uint64_t seed);

    /// Adds a switch; returns its index.
    std::size_t add_switch(const std::string& name, LinkArqConfig arq = {});

    /// Adds a host with the given network address; returns its index.
    std::size_t add_host(VcAddress address, const std::string& name,
                         VcHostConfig config = {});

    /// Connects two switches; returns the link index.
    std::size_t connect_switches(std::size_t a, std::size_t b,
                                 const link::LinkParams& params);

    /// Connects a host's access line to a switch; returns the link index.
    std::size_t connect_host(std::size_t host, std::size_t sw,
                             const link::LinkParams& params);

    /// Computes shortest-path routes (hop count) from every switch to
    /// every host address. Call after the topology is complete.
    void compute_routes();

    VcSwitch& switch_at(std::size_t i) { return *switches_.at(i); }
    VcHost& host_at(std::size_t i) { return *hosts_.at(i); }
    link::PointToPointLink& link_at(std::size_t i) { return *links_.at(i); }
    std::size_t link_count() const noexcept { return links_.size(); }
    std::size_t switch_count() const noexcept { return switches_.size(); }

    /// Total bytes clocked onto all wires (byte-hops cost metric, E5).
    std::uint64_t total_link_bytes() const {
        std::uint64_t total = 0;
        for (const auto& link : links_) {
            total += link->port_a().stats().bytes_sent + link->port_b().stats().bytes_sent;
        }
        return total;
    }

    void fail_switch(std::size_t i) { switches_.at(i)->set_down(true); }
    void restore_switch(std::size_t i) { switches_.at(i)->set_down(false); }

private:
    struct Edge {
        std::size_t peer_switch;  ///< adjacent switch index
        std::size_t local_port;   ///< port on this switch toward the peer
    };

    sim::Simulator& sim_;
    util::Rng rng_;
    std::vector<std::unique_ptr<VcSwitch>> switches_;
    std::vector<std::unique_ptr<VcHost>> hosts_;
    std::vector<std::unique_ptr<link::PointToPointLink>> links_;
    // adjacency among switches, plus host attachments
    std::vector<std::vector<Edge>> adjacency_;
    struct HostAttachment {
        std::size_t host;
        std::size_t sw;
        std::size_t port;  ///< switch port toward the host
    };
    std::vector<HostAttachment> attachments_;
};

}  // namespace catenet::vc
