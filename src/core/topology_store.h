// The struct-of-arrays topology core (DESIGN.md §11). Clark's scaling
// argument — the entities implementing the architecture "must be able to
// scale to large values" — is a statement about the *representation* of
// the catenet as much as about the protocols: a million-host internet
// cannot be a million heap objects threaded through std::maps. This store
// keeps the node graph as dense indices into parallel arrays:
//
//   - every node (host, gateway, or compact leaf host) is a NodeId into
//     parallel kind / shard / address / object arrays;
//   - point-to-point links are rows of a flat edge table; the partitioner
//     consumes that table directly (EdgeTable / partition_topology);
//   - per-node adjacency is kept in chronological incidence lists and
//     frozen into CSR spans (build_csr) for the routing passes, which walk
//     offsets into one flat array instead of chasing map nodes;
//   - "leaf" hosts — the million-node population — are *not* objects at
//     all: a leaf LAN is one record (subnet, home gateway, span of ids)
//     whose hosts share a single default-route template (the record is the
//     route: via the home gateway, one hop) and one slab-allocated
//     telemetry counter block, with a few bytes of genuinely per-host
//     state (address is implicit in the span; tx/rx tallies are two u32s).
//
// The Internetwork builder owns one store and populates it as the
// topology is built; examples and tests keep their object-level API while
// the routing/partitioning passes and the scale benchmarks run on the
// arrays.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "link/netif.h"
#include "link/packet.h"
#include "sim/simulator.h"
#include "telemetry/counters.h"
#include "util/ip_address.h"

namespace catenet::ip {
class IpStack;
}

namespace catenet::core {

class Node;

/// Dense node index, assigned in construction order (the deterministic
/// tie-break order used everywhere else: RNG forks, trace lanes, shards).
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

enum class NodeKind : std::uint8_t {
    Host = 0,      ///< materialized end system (full transport stack)
    Gateway = 1,   ///< materialized packet switch
    LeafHost = 2,  ///< compact host-class node: exists only in the arrays
};

/// One edge of the node graph as seen by the partitioner.
struct PartitionEdge {
    std::size_t a = 0;  ///< node indices (order of add_host/add_gateway)
    std::size_t b = 0;
    std::int64_t lookahead_ns = 0;  ///< link propagation + 1-byte serialization
    bool cuttable = true;  ///< false pins both ends into one shard (e.g. LANs)
};

/// The flat edge table the partitioner consumes: no Node pointers, no
/// maps — just index pairs. TopologyStore::edge_table() derives one from
/// a built topology; generators build one directly from their plan.
struct EdgeTable {
    std::size_t node_count = 0;
    std::vector<PartitionEdge> edges;
};

/// Greedy latency-aware partition of a node graph into `shards` parts.
/// Non-cuttable edges are contracted first; then cuttable edges merge in
/// ascending lookahead order until at most `shards` components remain —
/// the surviving cut set is the highest-latency edges, which maximizes the
/// conservative engine's lookahead. Components pack into shards largest
/// first onto the least-loaded shard. Fully deterministic. Returns the
/// shard id per node.
std::vector<std::uint32_t> partition_topology(const EdgeTable& table,
                                              std::size_t shards);
/// Back-compat shim over the EdgeTable form.
std::vector<std::uint32_t> partition_topology(std::size_t node_count,
                                              std::vector<PartitionEdge> edges,
                                              std::size_t shards);

/// One incidence: a single-hop neighbor, through which local interface, at
/// what next-hop address. Chronological order (the order edges and LAN
/// attachments were created) is part of the store's contract: the routing
/// passes' tie-breaks follow it, keeping route selection reproducible.
struct Incidence {
    NodeId peer = kNoNode;
    std::uint32_t ifindex = 0;
    util::Ipv4Address peer_addr;
};

class TopologyStore {
public:
    /// A point-to-point link row. `lookahead_ns` is the conservative
    /// engine's per-edge budget (propagation + 1-byte serialization).
    struct LinkRow {
        NodeId a = kNoNode;
        NodeId b = kNoNode;
        std::uint32_t ifindex_a = 0;
        std::uint32_t ifindex_b = 0;
        util::Ipv4Address addr_a;
        util::Ipv4Address addr_b;
        util::Ipv4Prefix subnet;
        std::int64_t lookahead_ns = 0;
    };

    struct Attachment {
        NodeId node = kNoNode;
        std::uint32_t ifindex = 0;
        util::Ipv4Address addr;
    };

    /// A materialized shared-medium LAN segment.
    struct LanRow {
        util::Ipv4Prefix subnet;
        std::uint32_t shard = 0;
        std::uint32_t next_octet = 1;
        std::vector<Attachment> attached;
    };

    /// A compact stub LAN: `count` leaf hosts homed on one gateway. This
    /// record *is* the hosts' shared routing state — every host's table
    /// collapses to "default via the home gateway", so the store keeps one
    /// route template per LAN instead of one RoutingTable per host.
    struct LeafLanRow {
        util::Ipv4Prefix subnet;
        NodeId gateway = kNoNode;
        std::uint32_t gateway_ifindex = 0;  ///< the stub interface on the gateway
        util::Ipv4Address gateway_addr;     ///< .1: the shared default next hop
        NodeId first = kNoNode;             ///< leaf ids are [first, first+count)
        std::uint32_t count = 0;
        std::uint32_t counter_slot = 0;  ///< index into the counter slab
    };

    /// Which array a subnet's prefix lives in, in allocation order — the
    /// route-computation passes iterate subnets in this sequence, which
    /// reproduces the legacy builder's creation-order tie-breaks.
    enum class SubnetKind : std::uint8_t { Link, Lan, Leaf };
    struct SubnetRef {
        SubnetKind kind;
        std::uint32_t index;  ///< into links() / lans() / leaf_lans()
    };

    // --- population ----------------------------------------------------
    NodeId add_node(NodeKind kind, std::uint32_t shard, Node* object);
    void add_link(const LinkRow& row);
    std::uint32_t add_lan(util::Ipv4Prefix subnet, std::uint32_t shard);
    /// Appends an attachment and the full-mesh incidences against every
    /// prior attachee. Returns the address octet the caller assigned.
    void attach_to_lan(std::uint32_t lan, NodeId node, std::uint32_t ifindex,
                       util::Ipv4Address addr);
    /// Records a node's first assigned address as its primary (no-op once set).
    void note_address(NodeId node, util::Ipv4Address addr);

    /// Creates a stub LAN of `count` compact leaf hosts homed on
    /// `gateway`: attaches one stub interface (address .1 of `subnet`) to
    /// the gateway's IP stack, allocates the leaf ids and their per-host
    /// tallies, and one shared counter block from the slab. Host i's
    /// address is subnet base + 2 + i, so `count` must be <= 253.
    std::uint32_t add_leaf_lan(ip::IpStack& gateway_ip, NodeId gateway,
                               util::Ipv4Prefix subnet, std::uint32_t count,
                               sim::Simulator& sim, std::string name);

    // --- node arrays ---------------------------------------------------
    std::size_t node_count() const noexcept { return kind_.size(); }
    NodeKind kind(NodeId id) const { return static_cast<NodeKind>(kind_.at(id)); }
    std::uint32_t shard(NodeId id) const { return shard_.at(id); }
    util::Ipv4Address address(NodeId id) const {
        return util::Ipv4Address(addr_.at(id));
    }
    /// nullptr for leaf hosts.
    Node* object(NodeId id) const { return object_.at(id); }

    const std::vector<Incidence>& incidences(NodeId id) const {
        return incidence_.at(id);
    }

    // --- edge/LAN/subnet arrays ---------------------------------------
    std::span<const LinkRow> links() const noexcept { return links_; }
    std::span<const LanRow> lans() const noexcept { return lans_; }
    LanRow& lan(std::uint32_t i) { return lans_.at(i); }
    std::span<const LeafLanRow> leaf_lans() const noexcept { return leaf_lans_; }
    std::span<const SubnetRef> subnets() const noexcept { return subnets_; }
    util::Ipv4Prefix subnet_prefix(const SubnetRef& ref) const;
    /// The attachments of a subnet (2 for a link row, the attach list for
    /// a LAN, the home gateway's stub for a leaf LAN — written into `out`,
    /// returned as a span to keep the hot loop allocation-free).
    std::span<const Attachment> subnet_attachments(const SubnetRef& ref,
                                                   Attachment (&out)[2]) const;

    /// Derives the partitioner's edge table: every link row becomes a
    /// cuttable edge; every LAN pins its attachees together with
    /// non-cuttable star edges (a shared medium is one shard's state).
    EdgeTable edge_table() const;

    /// Frozen CSR adjacency over the incidence lists: neighbors(id) is a
    /// contiguous span in one flat array, in chronological order. Must be
    /// (re)built after the last mutation; build_csr is idempotent and
    /// cheap when nothing changed.
    void build_csr();
    std::span<const Incidence> neighbors(NodeId id) const {
        return std::span<const Incidence>(csr_flat_).subspan(
            csr_offset_[id], csr_offset_[id + 1] - csr_offset_[id]);
    }

    // --- leaf hosts ----------------------------------------------------
    bool is_leaf(NodeId id) const { return kind(id) == NodeKind::LeafHost; }
    /// The leaf LAN a leaf host belongs to.
    std::uint32_t leaf_lan_of(NodeId id) const { return home_.at(id); }
    NodeId leaf_host(std::uint32_t leaf_lan, std::uint32_t i) const;
    /// Injects a freshly encoded datagram sourced at leaf `src` into its
    /// home gateway, as if the host had transmitted it onto the stub LAN.
    /// Returns false if the gateway-side interface is down.
    bool leaf_inject(NodeId src, util::Ipv4Address dst, std::uint8_t protocol,
                     std::span<const std::uint8_t> payload, std::uint8_t ttl = 64);
    std::uint64_t leaf_delivered(NodeId id) const { return leaf_rx_.at(aux_.at(id)); }
    std::uint64_t leaf_sent(NodeId id) const { return leaf_tx_.at(aux_.at(id)); }
    std::uint64_t leaf_delivered_total() const noexcept;
    /// The shared counter block of one leaf LAN (slab storage).
    const telemetry::CounterBlock& leaf_counters(std::uint32_t leaf_lan) const {
        return counter_slab_.at(leaf_lans_.at(leaf_lan).counter_slot);
    }

    /// Pre-sizes the node arrays (generators know their population).
    void reserve_nodes(std::size_t nodes, std::size_t leaf_hosts);

    /// FNV-1a over every array: two builds are byte-identical iff their
    /// signatures match (and the arrays can be compared directly in tests).
    std::uint64_t signature() const noexcept;

private:
    /// The delivery surface of a leaf LAN: one NetIf on the home gateway
    /// standing in for the whole segment. Egress (gateway -> LAN) tallies
    /// the destination host and recycles the buffer; inject() plays a
    /// host-originated datagram into the gateway's receive path.
    class StubLan final : public link::NetIf {
    public:
        StubLan(TopologyStore& store, std::uint32_t lan_index, sim::Simulator& sim,
                std::string name)
            : store_(store), lan_(lan_index), sim_(sim), name_(std::move(name)) {}

        std::size_t mtu() const noexcept override { return 1500; }
        const std::string& name() const noexcept override { return name_; }
        void send(link::Packet packet, util::Ipv4Address next_hop) override;
        void inject(link::Packet&& packet) { deliver(std::move(packet)); }
        sim::Simulator& simulator() noexcept { return sim_; }

    private:
        TopologyStore& store_;
        std::uint32_t lan_;
        sim::Simulator& sim_;
        std::string name_;
    };

    // Parallel node arrays. `aux_` is the leaf ordinal for leaf hosts
    // (index into leaf_rx_/leaf_tx_ and the id->tally indirection).
    std::vector<std::uint8_t> kind_;
    std::vector<std::uint32_t> shard_;
    std::vector<std::uint32_t> addr_;
    std::vector<std::uint32_t> home_;  ///< leaf LAN index (leaf hosts only)
    std::vector<std::uint32_t> aux_;
    std::vector<Node*> object_;
    std::vector<std::vector<Incidence>> incidence_;

    std::vector<LinkRow> links_;
    std::vector<LanRow> lans_;
    std::vector<LeafLanRow> leaf_lans_;
    std::vector<SubnetRef> subnets_;

    // CSR snapshot of incidence_ for the routing passes.
    std::vector<std::uint32_t> csr_offset_;
    std::vector<Incidence> csr_flat_;
    std::size_t csr_built_incidences_ = 0;

    // Leaf-host state: two u32 tallies per host, one counter block per
    // LAN. The slab is a deque so registered block pointers stay stable.
    std::vector<std::uint32_t> leaf_rx_;
    std::vector<std::uint32_t> leaf_tx_;
    std::deque<telemetry::CounterBlock> counter_slab_;
    std::deque<StubLan> stubs_;
};

}  // namespace catenet::core
