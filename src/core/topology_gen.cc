#include "core/topology_gen.h"

#include <stdexcept>
#include <string>
#include <unordered_set>

namespace catenet::core {

namespace {

/// SplitMix64: the generator's own draw sequence. Deliberately not
/// util::Rng — the topology's *shape* must be a pure function of
/// TwoTierParams::seed, never entangled with the simulation RNG's fork
/// order.
struct SplitMix {
    std::uint64_t state;
    std::uint64_t next() {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
    std::uint32_t below(std::uint32_t bound) {
        return static_cast<std::uint32_t>(next() % bound);
    }
};

std::int64_t trunk_lookahead(const link::LinkParams& trunk) {
    return trunk.propagation_delay.nanos() + trunk.transmission_time(1).nanos();
}

}  // namespace

EdgeTable TwoTierPlan::edge_table(const link::LinkParams& trunk) const {
    EdgeTable table;
    table.node_count = gateways;
    const std::int64_t lookahead = trunk_lookahead(trunk);
    for (const auto& [a, b] : trunks) {
        table.edges.push_back(PartitionEdge{a, b, lookahead, /*cuttable=*/true});
    }
    return table;
}

TwoTierPlan plan_two_tier(const TwoTierParams& params, std::size_t shards) {
    if (params.gateways == 0) throw std::invalid_argument("two_tier: zero gateways");
    if (params.hosts_per_lan > 253) {
        throw std::invalid_argument("two_tier: hosts_per_lan > 253 (one /24 per LAN)");
    }
    TwoTierPlan plan;
    plan.gateways = params.gateways;
    SplitMix rng{params.seed};

    // Tier 1: a ring (connectivity guaranteed) plus seeded chords (short
    // diameter). Chord draws that duplicate an existing edge or land on
    // self are skipped, not redrawn — keeps the draw count fixed.
    const std::uint32_t k = params.gateways;
    std::unordered_set<std::uint64_t> have;
    auto edge_key = [](std::uint32_t a, std::uint32_t b) {
        if (b < a) std::swap(a, b);
        return (std::uint64_t{a} << 32) | b;
    };
    if (k > 1) {
        for (std::uint32_t i = 0; i < (k == 2 ? 1u : k); ++i) {
            const std::uint32_t j = (i + 1) % k;
            plan.trunks.emplace_back(i, j);
            have.insert(edge_key(i, j));
        }
    }
    const std::uint32_t chords =
        params.extra_chords != 0 ? params.extra_chords : k / 2;
    for (std::uint32_t c = 0; c < chords && k > 3; ++c) {
        const std::uint32_t a = rng.below(k);
        const std::uint32_t b = rng.below(k);
        if (a == b || have.contains(edge_key(a, b))) continue;
        plan.trunks.emplace_back(a, b);
        have.insert(edge_key(a, b));
    }

    // Tier 2: each stub LAN homes onto a seeded gateway.
    plan.lan_home.reserve(params.lans);
    for (std::uint32_t l = 0; l < params.lans; ++l) {
        plan.lan_home.push_back(rng.below(k));
    }

    // Shard the mesh; every LAN (and so every host) follows its home
    // gateway — the stub edge is zero-lookahead, exactly the edge the
    // partitioner must never cut.
    if (shards > 1) {
        plan.gateway_shard = partition_topology(plan.edge_table(params.trunk), shards);
    } else {
        plan.gateway_shard.assign(k, 0);
    }
    return plan;
}

TwoTierTopology generate_two_tier(Internetwork& net, const TwoTierParams& params) {
    const std::size_t shards =
        net.parallel() != nullptr ? net.parallel()->shard_count() : 1;
    TwoTierTopology out;
    out.plan = plan_two_tier(params, shards);
    const TwoTierPlan& plan = out.plan;

    const std::size_t leaf_hosts =
        params.compact_hosts
            ? std::size_t{params.lans} * params.hosts_per_lan
            : 0;
    net.topology().reserve_nodes(
        params.gateways + std::size_t{params.lans} * params.hosts_per_lan,
        leaf_hosts);

    out.gateways.reserve(params.gateways);
    for (std::uint32_t i = 0; i < params.gateways; ++i) {
        out.gateways.push_back(
            &net.add_gateway("gw" + std::to_string(i), plan.gateway_shard[i]));
    }
    for (const auto& [a, b] : plan.trunks) {
        net.connect(*out.gateways[a], *out.gateways[b], params.trunk);
    }

    for (std::uint32_t l = 0; l < params.lans; ++l) {
        Gateway& home = *out.gateways[plan.lan_home[l]];
        if (params.compact_hosts) {
            out.leaf_lans.push_back(
                net.add_leaf_lan(home, params.hosts_per_lan, "leaf" + std::to_string(l)));
        } else {
            const std::size_t lan = net.add_lan(
                params.access, "lan" + std::to_string(l), plan.gateway_shard[plan.lan_home[l]]);
            out.lan_indices.push_back(lan);
            net.attach_to_lan(home, lan);
            for (std::uint32_t h = 0; h < params.hosts_per_lan; ++h) {
                Host& host = net.add_host(
                    "h" + std::to_string(l) + "_" + std::to_string(h),
                    plan.gateway_shard[plan.lan_home[l]]);
                net.attach_to_lan(host, lan);
                out.hosts.push_back(&host);
            }
        }
    }

    if (params.install_routes) {
        net.use_static_routes();
        if (!params.compact_hosts) net.install_host_default_routes();
    }
    return out;
}

}  // namespace catenet::core
