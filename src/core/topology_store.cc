#include "core/topology_store.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

#include "ip/ip_stack.h"

namespace catenet::core {

std::vector<std::uint32_t> partition_topology(const EdgeTable& table,
                                              std::size_t shards) {
    if (shards == 0) throw std::invalid_argument("partition_topology: zero shards");
    const std::size_t node_count = table.node_count;
    // Union-find over node indices (path halving).
    std::vector<std::size_t> parent(node_count);
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    auto find = [&parent](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    std::size_t components = node_count;
    auto unite = [&](std::size_t a, std::size_t b) {
        a = find(a);
        b = find(b);
        if (a == b) return;
        // Deterministic root choice: lower index wins.
        if (b < a) std::swap(a, b);
        parent[b] = a;
        --components;
    };

    for (const PartitionEdge& e : table.edges) {
        if (!e.cuttable) unite(e.a, e.b);
    }
    // Contract low-lookahead edges first, so the cut that survives is the
    // set of highest-latency links — the best lookahead the topology has.
    std::vector<PartitionEdge> edges = table.edges;
    std::stable_sort(edges.begin(), edges.end(),
                     [](const PartitionEdge& x, const PartitionEdge& y) {
                         if (x.lookahead_ns != y.lookahead_ns)
                             return x.lookahead_ns < y.lookahead_ns;
                         if (x.a != y.a) return x.a < y.a;
                         return x.b < y.b;
                     });
    for (const PartitionEdge& e : edges) {
        if (components <= shards) break;
        if (e.cuttable) unite(e.a, e.b);
    }

    // Components, largest first (min node index breaks size ties), packed
    // onto the least-loaded shard (lowest id breaks load ties): LPT.
    std::vector<std::size_t> size_of(node_count, 0);
    for (std::size_t i = 0; i < node_count; ++i) ++size_of[find(i)];
    std::vector<std::pair<std::size_t, std::size_t>> comps;  // (root, size)
    for (std::size_t i = 0; i < node_count; ++i) {
        if (size_of[i] != 0) comps.emplace_back(i, size_of[i]);
    }
    std::stable_sort(comps.begin(), comps.end(),
                     [](const auto& x, const auto& y) {
                         if (x.second != y.second) return x.second > y.second;
                         return x.first < y.first;
                     });
    std::vector<std::size_t> load(shards, 0);
    std::vector<std::uint32_t> shard_of_root(node_count, 0);
    for (const auto& [root, size] : comps) {
        const auto lightest = static_cast<std::uint32_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        shard_of_root[root] = lightest;
        load[lightest] += size;
    }
    std::vector<std::uint32_t> out(node_count);
    for (std::size_t i = 0; i < node_count; ++i) out[i] = shard_of_root[find(i)];
    return out;
}

std::vector<std::uint32_t> partition_topology(std::size_t node_count,
                                              std::vector<PartitionEdge> edges,
                                              std::size_t shards) {
    EdgeTable table;
    table.node_count = node_count;
    table.edges = std::move(edges);
    return partition_topology(table, shards);
}

// --- population --------------------------------------------------------

NodeId TopologyStore::add_node(NodeKind kind, std::uint32_t shard, Node* object) {
    const NodeId id = static_cast<NodeId>(kind_.size());
    kind_.push_back(static_cast<std::uint8_t>(kind));
    shard_.push_back(shard);
    addr_.push_back(0);
    home_.push_back(0);
    aux_.push_back(0);
    object_.push_back(object);
    incidence_.emplace_back();
    return id;
}

void TopologyStore::note_address(NodeId node, util::Ipv4Address addr) {
    if (addr_.at(node) == 0) addr_[node] = addr.value();
}

void TopologyStore::add_link(const LinkRow& row) {
    incidence_.at(row.a).push_back(Incidence{row.b, row.ifindex_a, row.addr_b});
    incidence_.at(row.b).push_back(Incidence{row.a, row.ifindex_b, row.addr_a});
    note_address(row.a, row.addr_a);
    note_address(row.b, row.addr_b);
    subnets_.push_back(
        SubnetRef{SubnetKind::Link, static_cast<std::uint32_t>(links_.size())});
    links_.push_back(row);
}

std::uint32_t TopologyStore::add_lan(util::Ipv4Prefix subnet, std::uint32_t shard) {
    const auto index = static_cast<std::uint32_t>(lans_.size());
    lans_.push_back(LanRow{subnet, shard, 1, {}});
    subnets_.push_back(SubnetRef{SubnetKind::Lan, index});
    return index;
}

void TopologyStore::attach_to_lan(std::uint32_t lan, NodeId node,
                                  std::uint32_t ifindex, util::Ipv4Address addr) {
    LanRow& row = lans_.at(lan);
    // A LAN is a full mesh at the node-graph level: every prior attachee
    // becomes a neighbor, in attach order (the BFS tie-break order).
    for (const Attachment& prior : row.attached) {
        incidence_.at(node).push_back(Incidence{prior.node, ifindex, prior.addr});
        incidence_.at(prior.node).push_back(Incidence{node, prior.ifindex, addr});
    }
    row.attached.push_back(Attachment{node, ifindex, addr});
    note_address(node, addr);
}

std::uint32_t TopologyStore::add_leaf_lan(ip::IpStack& gateway_ip, NodeId gateway,
                                          util::Ipv4Prefix subnet,
                                          std::uint32_t count, sim::Simulator& sim,
                                          std::string name) {
    if (count > 253) throw std::invalid_argument("leaf LAN larger than a /24");
    const auto index = static_cast<std::uint32_t>(leaf_lans_.size());
    stubs_.emplace_back(*this, index, sim, std::move(name));
    const util::Ipv4Address gw_addr(subnet.address().value() + 1);
    const auto ifindex = static_cast<std::uint32_t>(
        gateway_ip.add_interface(stubs_.back(), gw_addr, subnet));

    LeafLanRow row;
    row.subnet = subnet;
    row.gateway = gateway;
    row.gateway_ifindex = ifindex;
    row.gateway_addr = gw_addr;
    row.first = static_cast<NodeId>(kind_.size());
    row.count = count;
    row.counter_slot = static_cast<std::uint32_t>(counter_slab_.size());
    counter_slab_.emplace_back();

    const std::uint32_t shard = shard_.at(gateway);
    for (std::uint32_t i = 0; i < count; ++i) {
        const NodeId id = add_node(NodeKind::LeafHost, shard, nullptr);
        addr_[id] = subnet.address().value() + 2 + i;
        home_[id] = index;
        aux_[id] = static_cast<std::uint32_t>(leaf_rx_.size());
        leaf_rx_.push_back(0);
        leaf_tx_.push_back(0);
    }
    subnets_.push_back(SubnetRef{SubnetKind::Leaf, index});
    leaf_lans_.push_back(row);
    return index;
}

// --- subnet views -------------------------------------------------------

util::Ipv4Prefix TopologyStore::subnet_prefix(const SubnetRef& ref) const {
    switch (ref.kind) {
        case SubnetKind::Link: return links_.at(ref.index).subnet;
        case SubnetKind::Lan: return lans_.at(ref.index).subnet;
        case SubnetKind::Leaf: return leaf_lans_.at(ref.index).subnet;
    }
    throw std::logic_error("bad SubnetRef");
}

std::span<const TopologyStore::Attachment> TopologyStore::subnet_attachments(
    const SubnetRef& ref, Attachment (&out)[2]) const {
    switch (ref.kind) {
        case SubnetKind::Link: {
            const LinkRow& row = links_.at(ref.index);
            out[0] = Attachment{row.a, row.ifindex_a, row.addr_a};
            out[1] = Attachment{row.b, row.ifindex_b, row.addr_b};
            return {out, 2};
        }
        case SubnetKind::Lan:
            return {lans_.at(ref.index).attached.data(),
                    lans_.at(ref.index).attached.size()};
        case SubnetKind::Leaf: {
            const LeafLanRow& row = leaf_lans_.at(ref.index);
            out[0] = Attachment{row.gateway, row.gateway_ifindex, row.gateway_addr};
            return {out, 1};
        }
    }
    throw std::logic_error("bad SubnetRef");
}

EdgeTable TopologyStore::edge_table() const {
    EdgeTable table;
    table.node_count = node_count();
    for (const LinkRow& row : links_) {
        table.edges.push_back(
            PartitionEdge{row.a, row.b, row.lookahead_ns, /*cuttable=*/true});
    }
    // A shared medium is one shard's state: star edges pin every LAN's
    // attachees into one component. Same rule for leaf LANs — a compact
    // host has no engine of its own, it lives with its home gateway.
    for (const LanRow& lan : lans_) {
        for (std::size_t i = 1; i < lan.attached.size(); ++i) {
            table.edges.push_back(PartitionEdge{lan.attached.front().node,
                                                lan.attached[i].node, 0,
                                                /*cuttable=*/false});
        }
    }
    for (const LeafLanRow& lan : leaf_lans_) {
        for (std::uint32_t i = 0; i < lan.count; ++i) {
            table.edges.push_back(PartitionEdge{lan.gateway, lan.first + i, 0,
                                                /*cuttable=*/false});
        }
    }
    return table;
}

void TopologyStore::build_csr() {
    std::size_t total = 0;
    for (const auto& list : incidence_) total += list.size();
    if (csr_offset_.size() == node_count() + 1 && csr_built_incidences_ == total) {
        return;  // nothing changed since the last freeze
    }
    csr_offset_.assign(node_count() + 1, 0);
    csr_flat_.clear();
    csr_flat_.reserve(total);
    for (std::size_t i = 0; i < node_count(); ++i) {
        csr_offset_[i] = static_cast<std::uint32_t>(csr_flat_.size());
        csr_flat_.insert(csr_flat_.end(), incidence_[i].begin(), incidence_[i].end());
    }
    csr_offset_[node_count()] = static_cast<std::uint32_t>(csr_flat_.size());
    csr_built_incidences_ = total;
}

// --- leaf hosts ---------------------------------------------------------

NodeId TopologyStore::leaf_host(std::uint32_t leaf_lan, std::uint32_t i) const {
    const LeafLanRow& row = leaf_lans_.at(leaf_lan);
    if (i >= row.count) throw std::out_of_range("leaf_host: index past LAN size");
    return row.first + i;
}

bool TopologyStore::leaf_inject(NodeId src, util::Ipv4Address dst,
                                std::uint8_t protocol,
                                std::span<const std::uint8_t> payload,
                                std::uint8_t ttl) {
    if (!is_leaf(src)) throw std::invalid_argument("leaf_inject: not a leaf host");
    const std::uint32_t lan = home_.at(src);
    StubLan& stub = stubs_.at(lan);
    if (!stub.is_up()) return false;
    sim::Simulator& sim = stub.simulator();
    ip::Ipv4Header header;
    header.protocol = protocol;
    header.ttl = ttl;
    header.src = address(src);
    header.dst = dst;
    link::Packet packet =
        link::make_packet(ip::encode_datagram(header, payload, sim.buffer_pool()), sim);
    ++leaf_tx_[aux_.at(src)];
    counter_slab_[leaf_lans_.at(lan).counter_slot].inc(telemetry::Counter::IpTx);
    stub.inject(std::move(packet));
    return true;
}

std::uint64_t TopologyStore::leaf_delivered_total() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint32_t rx : leaf_rx_) total += rx;
    return total;
}

void TopologyStore::StubLan::send(link::Packet packet, util::Ipv4Address next_hop) {
    const LeafLanRow& row = store_.leaf_lans_.at(lan_);
    const std::uint32_t base = row.subnet.address().value();
    // Hosts occupy base+2 .. base+1+count (the gateway holds .1); anything
    // else aimed at this segment is a dead letter, silently discarded —
    // exactly what a real LAN does with an unclaimed frame.
    const std::uint32_t offset = next_hop.value() - base;
    ++stats_.packets_sent;
    stats_.bytes_sent += packet.size();
    if (offset >= 2 && offset - 2 < row.count) {
        const NodeId host = row.first + (offset - 2);
        ++store_.leaf_rx_[store_.aux_[host]];
        telemetry::CounterBlock& counters = store_.counter_slab_[row.counter_slot];
        counters.inc(telemetry::Counter::IpRx);
        counters.inc(telemetry::Counter::IpDeliver);
    } else {
        ++stats_.send_failures;
    }
    sim_.buffer_pool().recycle(std::move(packet.bytes));
}

// --- bookkeeping --------------------------------------------------------

void TopologyStore::reserve_nodes(std::size_t nodes, std::size_t leaf_hosts) {
    kind_.reserve(nodes);
    shard_.reserve(nodes);
    addr_.reserve(nodes);
    home_.reserve(nodes);
    aux_.reserve(nodes);
    object_.reserve(nodes);
    incidence_.reserve(nodes);
    leaf_rx_.reserve(leaf_hosts);
    leaf_tx_.reserve(leaf_hosts);
}

std::uint64_t TopologyStore::signature() const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (std::size_t i = 0; i < kind_.size(); ++i) {
        mix(kind_[i]);
        mix(shard_[i]);
        mix(addr_[i]);
        mix(home_[i]);
        for (const Incidence& inc : incidence_[i]) {
            mix(inc.peer);
            mix(inc.ifindex);
            mix(inc.peer_addr.value());
        }
    }
    auto mix_prefix = [&](const util::Ipv4Prefix& p) {
        mix(p.address().value());
        mix(static_cast<std::uint64_t>(p.length()));
    };
    for (const LinkRow& row : links_) {
        mix(row.a);
        mix(row.b);
        mix(row.ifindex_a);
        mix(row.ifindex_b);
        mix(row.addr_a.value());
        mix(row.addr_b.value());
        mix_prefix(row.subnet);
        mix(static_cast<std::uint64_t>(row.lookahead_ns));
    }
    for (const LanRow& lan : lans_) {
        mix_prefix(lan.subnet);
        mix(lan.shard);
        for (const Attachment& att : lan.attached) {
            mix(att.node);
            mix(att.ifindex);
            mix(att.addr.value());
        }
    }
    for (const LeafLanRow& lan : leaf_lans_) {
        mix_prefix(lan.subnet);
        mix(lan.gateway);
        mix(lan.gateway_ifindex);
        mix(lan.gateway_addr.value());
        mix(lan.first);
        mix(lan.count);
    }
    for (const SubnetRef& ref : subnets_) {
        mix(static_cast<std::uint64_t>(ref.kind));
        mix(ref.index);
    }
    return h;
}

}  // namespace catenet::core
