#include "core/realizations.h"

#include "link/presets.h"

namespace catenet::core {

namespace {

routing::DvConfig field_routing() {
    routing::DvConfig c;
    c.period = sim::seconds(2);       // aggressive: topology changes often
    c.route_timeout = sim::seconds(7);
    return c;
}

routing::DvConfig office_routing() {
    routing::DvConfig c;
    c.period = sim::seconds(10);      // sedate: topology changes rarely
    c.route_timeout = sim::seconds(35);
    return c;
}

}  // namespace

Realization military_field_realization(std::uint64_t seed) {
    Realization r;
    r.description =
        "battlefield: packet radio units -> field relay -> satellite trunk -> rear";
    r.net = std::make_unique<Internetwork>(seed);
    auto& net = *r.net;

    Host& unit_a = net.add_host("unit-a");
    Host& unit_b = net.add_host("unit-b");
    Host& rear_command = net.add_host("rear-cmd");
    Gateway& field_relay = net.add_gateway("field-relay");
    Gateway& uplink = net.add_gateway("uplink");
    Gateway& rear_gw = net.add_gateway("rear-gw");

    // Units reach the relay over packet radio (lossy, jittery, small MTU).
    net.connect(unit_a, field_relay, link::presets::packet_radio());
    net.connect(unit_b, field_relay, link::presets::packet_radio());
    // Relay to the uplink truck: more radio.
    net.connect(field_relay, uplink, link::presets::packet_radio());
    // The long haul: geostationary satellite.
    net.connect(uplink, rear_gw, link::presets::satellite());
    // Rear headquarters is properly wired.
    net.connect(rear_gw, rear_command, link::presets::ethernet_hop());

    for (auto* g : {&field_relay, &uplink, &rear_gw}) {
        g->enable_distance_vector(field_routing());
    }
    net.install_host_default_routes();

    r.hosts = {&unit_a, &unit_b, &rear_command};
    r.gateways = {&field_relay, &uplink, &rear_gw};
    return r;
}

Realization commercial_realization(std::uint64_t seed) {
    Realization r;
    r.description = "commercial: two office LANs + data center over a leased WAN triangle";
    r.net = std::make_unique<Internetwork>(seed);
    auto& net = *r.net;

    Host& desk_a = net.add_host("desk-a");
    Host& desk_b = net.add_host("desk-b");
    Host& server = net.add_host("server");
    Gateway& border_a = net.add_gateway("border-a");
    Gateway& border_b = net.add_gateway("border-b");
    Gateway& border_dc = net.add_gateway("border-dc");
    Gateway& wan_hub = net.add_gateway("wan-hub");

    const auto lan_a = net.add_lan(link::presets::ethernet_lan(), "office-a");
    net.attach_to_lan(desk_a, lan_a);
    net.attach_to_lan(border_a, lan_a);
    const auto lan_b = net.add_lan(link::presets::ethernet_lan(), "office-b");
    net.attach_to_lan(desk_b, lan_b);
    net.attach_to_lan(border_b, lan_b);

    // WAN: T1-class leased lines in a hub-and-spoke with one cross link
    // for redundancy.
    link::LinkParams t1 = link::presets::leased_line();
    t1.bits_per_second = 1'544'000;
    t1.queue_capacity_packets = 64;
    net.connect(border_a, wan_hub, t1);
    net.connect(border_b, wan_hub, t1);
    net.connect(border_dc, wan_hub, t1);
    net.connect(border_a, border_dc, t1);  // redundant path
    net.connect(border_dc, server, link::presets::ethernet_hop());

    for (auto* g : {&border_a, &border_b, &border_dc, &wan_hub}) {
        g->enable_distance_vector(office_routing());
    }
    net.install_host_default_routes();

    r.hosts = {&desk_a, &desk_b, &server};
    r.gateways = {&border_a, &border_b, &border_dc, &wan_hub};
    return r;
}

}  // namespace catenet::core
