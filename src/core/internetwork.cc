#include "core/internetwork.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace catenet::core {

std::vector<std::uint32_t> partition_topology(std::size_t node_count,
                                              std::vector<PartitionEdge> edges,
                                              std::size_t shards) {
    if (shards == 0) throw std::invalid_argument("partition_topology: zero shards");
    // Union-find over node indices.
    std::vector<std::size_t> parent(node_count);
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    auto find = [&parent](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    std::size_t components = node_count;
    auto unite = [&](std::size_t a, std::size_t b) {
        a = find(a);
        b = find(b);
        if (a == b) return;
        // Deterministic root choice: lower index wins.
        if (b < a) std::swap(a, b);
        parent[b] = a;
        --components;
    };

    for (const PartitionEdge& e : edges) {
        if (!e.cuttable) unite(e.a, e.b);
    }
    // Contract low-lookahead edges first, so the cut that survives is the
    // set of highest-latency links — the best lookahead the topology has.
    std::stable_sort(edges.begin(), edges.end(),
                     [](const PartitionEdge& x, const PartitionEdge& y) {
                         if (x.lookahead_ns != y.lookahead_ns)
                             return x.lookahead_ns < y.lookahead_ns;
                         if (x.a != y.a) return x.a < y.a;
                         return x.b < y.b;
                     });
    for (const PartitionEdge& e : edges) {
        if (components <= shards) break;
        if (e.cuttable) unite(e.a, e.b);
    }

    // Components, largest first (min node index breaks size ties), packed
    // onto the least-loaded shard (lowest id breaks load ties): LPT.
    std::map<std::size_t, std::size_t> size_of;  // root -> node count
    for (std::size_t i = 0; i < node_count; ++i) ++size_of[find(i)];
    std::vector<std::pair<std::size_t, std::size_t>> comps(size_of.begin(),
                                                           size_of.end());
    std::stable_sort(comps.begin(), comps.end(),
                     [](const auto& x, const auto& y) {
                         if (x.second != y.second) return x.second > y.second;
                         return x.first < y.first;
                     });
    std::vector<std::size_t> load(shards, 0);
    std::map<std::size_t, std::uint32_t> shard_of_root;
    for (const auto& [root, size] : comps) {
        const auto lightest = static_cast<std::uint32_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        shard_of_root[root] = lightest;
        load[lightest] += size;
    }
    std::vector<std::uint32_t> out(node_count);
    for (std::size_t i = 0; i < node_count; ++i) out[i] = shard_of_root[find(i)];
    return out;
}

Internetwork::Internetwork(std::uint64_t seed) : rng_(seed) {}

Internetwork::Internetwork(std::uint64_t seed, sim::ParallelSimulator& psim)
    : psim_(&psim), rng_(seed) {}

void Internetwork::check_shard(std::uint32_t shard) const {
    const std::size_t count = psim_ != nullptr ? psim_->shard_count() : 1;
    if (shard >= count) {
        throw std::out_of_range("Internetwork: shard " + std::to_string(shard) +
                                " out of range (have " + std::to_string(count) + ")");
    }
}

Host& Internetwork::add_host(const std::string& name, std::uint32_t shard) {
    check_shard(shard);
    hosts_.push_back(std::make_unique<Host>(shard_sim(shard), name, rng_));
    Host& host = *hosts_.back();
    node_ptrs_.push_back(&host);
    shard_of_[&host] = shard;
    registry_.register_node(name, shard,
                            {&host.ip().counters(), &host.tcp().counters(),
                             &host.udp().counters()});
    return host;
}

Gateway& Internetwork::add_gateway(const std::string& name, std::uint32_t shard) {
    check_shard(shard);
    gateways_.push_back(std::make_unique<Gateway>(shard_sim(shard), name));
    Gateway& gw = *gateways_.back();
    node_ptrs_.push_back(&gw);
    shard_of_[&gw] = shard;
    registry_.register_node(name, shard, {&gw.ip().counters()});
    return gw;
}

std::uint32_t Internetwork::shard_of(const Node& node) const {
    return shard_of_.at(&node);
}

util::Ipv4Prefix Internetwork::allocate_subnet() {
    const std::uint32_t n = next_subnet_++;
    if (n > 0xffff) throw std::runtime_error("subnet space exhausted");
    return util::Ipv4Prefix(
        util::Ipv4Address(10, static_cast<std::uint8_t>(n >> 8),
                          static_cast<std::uint8_t>(n & 0xff), 0),
        24);
}

std::size_t Internetwork::connect(Node& a, Node& b, const link::LinkParams& params) {
    const auto subnet = allocate_subnet();
    const util::Ipv4Address addr_a(subnet.address().value() + 1);
    const util::Ipv4Address addr_b(subnet.address().value() + 2);

    const std::uint32_t shard_a = psim_ != nullptr ? shard_of(a) : 0;
    const std::uint32_t shard_b = psim_ != nullptr ? shard_of(b) : 0;

    std::size_t index;
    std::size_t if_a, if_b;
    if (shard_a == shard_b) {
        auto link = std::make_unique<link::PointToPointLink>(
            shard_sim(shard_a), rng_, params, a.name() + "-" + b.name());
        if_a = a.ip().add_interface(link->port_a(), addr_a, subnet);
        if_b = b.ip().add_interface(link->port_b(), addr_b, subnet);
        telemetry::LinkEntry entry;
        entry.name = a.name() + "-" + b.name();
        entry.if_a = &link->port_a().stats();
        entry.if_b = &link->port_b().stats();
        entry.queue_a = [l = link.get()] { return &l->queue_a().stats(); };
        entry.queue_b = [l = link.get()] { return &l->queue_b().stats(); };
        entry.chan_a_to_b = &link->stats_a_to_b();
        entry.chan_b_to_a = &link->stats_b_to_a();
        registry_.register_link(std::move(entry));
        links_.push_back(std::move(link));
        link_shard_.push_back(shard_a);
        index = links_.size() - 1;
    } else {
        // The ends live in different shards: the wire becomes the
        // synchronization surface. Both directions register with the
        // parallel driver here, in construction order, which fixes the
        // deterministic cross-channel tie-break ranks.
        auto link = std::make_unique<link::BoundaryLink>(
            shard_sim(shard_a), shard_a, shard_sim(shard_b), shard_b, rng_, params,
            a.name() + "-" + b.name());
        psim_->register_channel(&link->channel_a_to_b());
        psim_->register_channel(&link->channel_b_to_a());
        if_a = a.ip().add_interface(link->port_a(), addr_a, subnet);
        if_b = b.ip().add_interface(link->port_b(), addr_b, subnet);
        telemetry::LinkEntry entry;
        entry.name = a.name() + "-" + b.name();
        entry.boundary = true;
        entry.if_a = &link->port_a().stats();
        entry.if_b = &link->port_b().stats();
        entry.chan_a_to_b = &link->stats_a_to_b();
        entry.chan_b_to_a = &link->stats_b_to_a();
        registry_.register_link(std::move(entry));
        boundary_links_.push_back(std::move(link));
        index = kBoundaryIndexBase + boundary_links_.size() - 1;
    }

    adjacency_[&a].push_back(EdgeRef{&b, if_a, addr_b});
    adjacency_[&b].push_back(EdgeRef{&a, if_b, addr_a});
    subnets_.push_back(Subnet{subnet, {{&a, if_a, addr_a}, {&b, if_b, addr_b}}});
    return index;
}

std::size_t Internetwork::add_lan(const link::LanParams& params, const std::string& name,
                                  std::uint32_t shard) {
    check_shard(shard);
    lans_.push_back(std::make_unique<link::Lan>(shard_sim(shard), rng_, params, name));
    const std::size_t index = lans_.size() - 1;
    lan_next_host_.push_back(1);
    lan_shard_.push_back(shard);
    lan_subnet_[index] = allocate_subnet();
    subnets_.push_back(Subnet{lan_subnet_[index], {}});
    return index;
}

util::Ipv4Address Internetwork::attach_to_lan(Node& node, std::size_t lan_index) {
    auto& lan = *lans_.at(lan_index);
    if (psim_ != nullptr && shard_of(node) != lan_shard_.at(lan_index)) {
        // A LAN's medium (contention, broadcast) is one shared state; it
        // cannot straddle shards. Cut at point-to-point links instead.
        throw std::logic_error("attach_to_lan: node " + node.name() +
                               " is in a different shard than the LAN");
    }
    const auto subnet = lan_subnet_.at(lan_index);
    const std::size_t host_octet = lan_next_host_.at(lan_index)++;
    if (host_octet >= 255) throw std::runtime_error("LAN address space exhausted");
    const util::Ipv4Address addr(subnet.address().value() +
                                 static_cast<std::uint32_t>(host_octet));
    const std::size_t port_index = lan.port_count();
    auto& port = lan.add_port();
    const std::size_t ifindex = node.ip().add_interface(port, addr, subnet);
    lan.register_address(addr, port_index);

    // A LAN is a full mesh at the node-graph level: every prior attachee
    // becomes a neighbor.
    for (auto& subnet_rec : subnets_) {
        if (subnet_rec.prefix == subnet) {
            for (const Attachment& prior : subnet_rec.attached) {
                adjacency_[&node].push_back(EdgeRef{prior.node, ifindex, prior.addr});
                adjacency_[prior.node].push_back(EdgeRef{&node, prior.ifindex, addr});
            }
            subnet_rec.attached.push_back(Attachment{&node, ifindex, addr});
            break;
        }
    }
    return addr;
}

void Internetwork::use_static_routes() {
    constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

    for (Node* origin : node_ptrs_) {
        // BFS recording, for each reached node, the first edge taken from
        // `origin` on a shortest path.
        std::map<Node*, std::size_t> dist;
        std::map<Node*, const EdgeRef*> first_hop;
        std::deque<Node*> frontier;
        dist[origin] = 0;
        frontier.push_back(origin);
        while (!frontier.empty()) {
            Node* current = frontier.front();
            frontier.pop_front();
            for (const EdgeRef& edge : adjacency_[current]) {
                if (dist.contains(edge.peer)) continue;
                dist[edge.peer] = dist[current] + 1;
                first_hop[edge.peer] = current == origin ? &edge : first_hop[current];
                frontier.push_back(edge.peer);
            }
        }

        for (const Subnet& subnet : subnets_) {
            // Skip subnets this node touches (connected route suffices).
            bool connected = false;
            for (const Attachment& attached : subnet.attached) {
                if (attached.node == origin) connected = true;
            }
            if (connected) continue;

            // Nearest attached node.
            Node* best = nullptr;
            std::size_t best_dist = kInf;
            for (const Attachment& attached : subnet.attached) {
                auto it = dist.find(attached.node);
                if (it != dist.end() && it->second < best_dist) {
                    best = attached.node;
                    best_dist = it->second;
                }
            }
            if (best == nullptr) continue;  // unreachable

            const EdgeRef* hop = first_hop[best];
            ip::Route route;
            route.prefix = subnet.prefix;
            route.next_hop = hop->peer_addr;
            route.ifindex = hop->my_ifindex;
            route.metric = static_cast<std::uint32_t>(best_dist);
            route.origin = "static";
            origin->ip().routing_table().install(route);
        }
    }
}

void Internetwork::install_host_default_routes() {
    for (auto& host : hosts_) {
        const auto& edges = adjacency_[host.get()];
        if (edges.empty()) continue;
        // Prefer a gateway neighbor.
        const EdgeRef* chosen = &edges.front();
        for (const EdgeRef& edge : edges) {
            if (dynamic_cast<Gateway*>(edge.peer) != nullptr) {
                chosen = &edge;
                break;
            }
        }
        ip::Route route;
        route.prefix = util::Ipv4Prefix(util::Ipv4Address(0), 0);
        route.next_hop = chosen->peer_addr;
        route.ifindex = chosen->my_ifindex;
        route.origin = "static";
        host->ip().routing_table().install(route);
    }
}

void Internetwork::enable_dynamic_routing(const routing::DvConfig& config) {
    for (auto& gateway : gateways_) {
        gateway->enable_distance_vector(config);
    }
    install_host_default_routes();
}

std::uint64_t Internetwork::total_link_bytes() const {
    std::uint64_t total = 0;
    for (const auto& link : links_) {
        total += link->port_a().stats().bytes_sent + link->port_b().stats().bytes_sent;
    }
    for (const auto& link : boundary_links_) {
        total += link->total_bytes_sent();
    }
    for (const auto& lan : lans_) {
        total += lan->total_bytes_sent();
    }
    return total;
}

telemetry::FlightRecorder& Internetwork::attach_flight_recorder(
    std::size_t lane_capacity) {
    if (recorder_ != nullptr) return *recorder_;
    recorder_ = std::make_unique<telemetry::FlightRecorder>();
    for (Node* node : node_ptrs_) {
        const std::size_t lane = recorder_->add_lane(node->name(), lane_capacity);
        node->ip().set_recorder(&recorder_->lane(lane));
    }
    return *recorder_;
}

telemetry::GaugeSampler& Internetwork::sampler_for(std::uint32_t shard) {
    auto& slot = samplers_[shard];
    if (slot == nullptr) {
        slot = std::make_unique<telemetry::GaugeSampler>(shard_sim(shard));
    }
    if (gauge_period_ > sim::Time(0) && !slot->running()) {
        slot->start(gauge_period_);
    }
    return *slot;
}

void Internetwork::enable_gauge_sampling(sim::Time period) {
    gauge_period_ = period;
    if (!link_gauges_registered_) {
        link_gauges_registered_ = true;
        for (std::size_t i = 0; i < links_.size(); ++i) {
            link::PointToPointLink* l = links_[i].get();
            const std::uint32_t shard = link_shard_[i];
            telemetry::GaugeSampler& sampler = sampler_for(shard);
            // queue_depth_* counts queued plus committed-but-unstarted
            // in-flight packets so burst and per-packet engines sample the
            // same backlog (a burst drain moves a run out of the queue in
            // one step; the per-packet twin drains it one serialization at
            // a time).
            auto& qa = registry_.add_series(l->port_a().name() + ".qdepth");
            sampler.add(&qa, [l]() -> std::optional<double> {
                return static_cast<double>(l->queue_depth_a());
            });
            auto& qb = registry_.add_series(l->port_b().name() + ".qdepth");
            sampler.add(&qb, [l]() -> std::optional<double> {
                return static_cast<double>(l->queue_depth_b());
            });
            auto& ua = registry_.add_series(l->port_a().name() + ".util");
            sampler.add(&ua, telemetry::make_utilization_probe(
                                 shard_sim(shard),
                                 [l] { return l->port_a().stats().busy_ns; }));
            auto& ub = registry_.add_series(l->port_b().name() + ".util");
            sampler.add(&ub, telemetry::make_utilization_probe(
                                 shard_sim(shard),
                                 [l] { return l->port_b().stats().busy_ns; }));
        }
    }
    // Samplers created before this call (watch_tcp first) start here.
    for (auto& [shard, sampler] : samplers_) {
        if (!sampler->running()) sampler->start(period);
    }
}

void Internetwork::watch_tcp(Host& host, const std::shared_ptr<tcp::TcpSocket>& socket,
                             const std::string& label) {
    telemetry::GaugeSampler& sampler = sampler_for(psim_ != nullptr ? shard_of(host) : 0);
    auto probe = [](std::weak_ptr<tcp::TcpSocket> w, auto field) {
        return [w = std::move(w), field]() -> std::optional<double> {
            auto s = w.lock();
            if (s == nullptr) return std::nullopt;
            return field(s->stats());
        };
    };
    const std::weak_ptr<tcp::TcpSocket> weak = socket;
    sampler.add(&registry_.add_series(label + ".cwnd_bytes"),
                probe(weak, [](const tcp::TcpSocketStats& st) {
                    return static_cast<double>(st.cwnd_bytes);
                }));
    sampler.add(&registry_.add_series(label + ".flight_bytes"),
                probe(weak, [](const tcp::TcpSocketStats& st) {
                    return static_cast<double>(st.flight_bytes);
                }));
    sampler.add(&registry_.add_series(label + ".srtt_ms"),
                probe(weak, [](const tcp::TcpSocketStats& st) { return st.srtt_ms; }));
}

void Internetwork::run_for(sim::Time duration) {
    if (psim_ != nullptr) {
        psim_->run_until(psim_->now() + duration);
    } else {
        sim_.run_until(sim_.now() + duration);
    }
}

}  // namespace catenet::core
