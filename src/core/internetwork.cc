#include "core/internetwork.h"

#include <deque>
#include <limits>
#include <stdexcept>

namespace catenet::core {

Internetwork::Internetwork(std::uint64_t seed) : rng_(seed) {}

Host& Internetwork::add_host(const std::string& name) {
    hosts_.push_back(std::make_unique<Host>(sim_, name, rng_));
    node_ptrs_.push_back(hosts_.back().get());
    return *hosts_.back();
}

Gateway& Internetwork::add_gateway(const std::string& name) {
    gateways_.push_back(std::make_unique<Gateway>(sim_, name));
    node_ptrs_.push_back(gateways_.back().get());
    return *gateways_.back();
}

util::Ipv4Prefix Internetwork::allocate_subnet() {
    const std::uint32_t n = next_subnet_++;
    if (n > 0xffff) throw std::runtime_error("subnet space exhausted");
    return util::Ipv4Prefix(
        util::Ipv4Address(10, static_cast<std::uint8_t>(n >> 8),
                          static_cast<std::uint8_t>(n & 0xff), 0),
        24);
}

std::size_t Internetwork::connect(Node& a, Node& b, const link::LinkParams& params) {
    const auto subnet = allocate_subnet();
    const util::Ipv4Address addr_a(subnet.address().value() + 1);
    const util::Ipv4Address addr_b(subnet.address().value() + 2);

    auto link = std::make_unique<link::PointToPointLink>(
        sim_, rng_, params, a.name() + "-" + b.name());
    const std::size_t if_a = a.ip().add_interface(link->port_a(), addr_a, subnet);
    const std::size_t if_b = b.ip().add_interface(link->port_b(), addr_b, subnet);

    adjacency_[&a].push_back(EdgeRef{&b, if_a, addr_b});
    adjacency_[&b].push_back(EdgeRef{&a, if_b, addr_a});
    subnets_.push_back(Subnet{subnet, {{&a, if_a, addr_a}, {&b, if_b, addr_b}}});

    links_.push_back(std::move(link));
    return links_.size() - 1;
}

std::size_t Internetwork::add_lan(const link::LanParams& params, const std::string& name) {
    lans_.push_back(std::make_unique<link::Lan>(sim_, rng_, params, name));
    const std::size_t index = lans_.size() - 1;
    lan_next_host_.push_back(1);
    lan_subnet_[index] = allocate_subnet();
    subnets_.push_back(Subnet{lan_subnet_[index], {}});
    return index;
}

util::Ipv4Address Internetwork::attach_to_lan(Node& node, std::size_t lan_index) {
    auto& lan = *lans_.at(lan_index);
    const auto subnet = lan_subnet_.at(lan_index);
    const std::size_t host_octet = lan_next_host_.at(lan_index)++;
    if (host_octet >= 255) throw std::runtime_error("LAN address space exhausted");
    const util::Ipv4Address addr(subnet.address().value() +
                                 static_cast<std::uint32_t>(host_octet));
    const std::size_t port_index = lan.port_count();
    auto& port = lan.add_port();
    const std::size_t ifindex = node.ip().add_interface(port, addr, subnet);
    lan.register_address(addr, port_index);

    // A LAN is a full mesh at the node-graph level: every prior attachee
    // becomes a neighbor.
    for (auto& subnet_rec : subnets_) {
        if (subnet_rec.prefix == subnet) {
            for (const Attachment& prior : subnet_rec.attached) {
                adjacency_[&node].push_back(EdgeRef{prior.node, ifindex, prior.addr});
                adjacency_[prior.node].push_back(EdgeRef{&node, prior.ifindex, addr});
            }
            subnet_rec.attached.push_back(Attachment{&node, ifindex, addr});
            break;
        }
    }
    return addr;
}

void Internetwork::use_static_routes() {
    constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

    for (Node* origin : node_ptrs_) {
        // BFS recording, for each reached node, the first edge taken from
        // `origin` on a shortest path.
        std::map<Node*, std::size_t> dist;
        std::map<Node*, const EdgeRef*> first_hop;
        std::deque<Node*> frontier;
        dist[origin] = 0;
        frontier.push_back(origin);
        while (!frontier.empty()) {
            Node* current = frontier.front();
            frontier.pop_front();
            for (const EdgeRef& edge : adjacency_[current]) {
                if (dist.contains(edge.peer)) continue;
                dist[edge.peer] = dist[current] + 1;
                first_hop[edge.peer] = current == origin ? &edge : first_hop[current];
                frontier.push_back(edge.peer);
            }
        }

        for (const Subnet& subnet : subnets_) {
            // Skip subnets this node touches (connected route suffices).
            bool connected = false;
            for (const Attachment& attached : subnet.attached) {
                if (attached.node == origin) connected = true;
            }
            if (connected) continue;

            // Nearest attached node.
            Node* best = nullptr;
            std::size_t best_dist = kInf;
            for (const Attachment& attached : subnet.attached) {
                auto it = dist.find(attached.node);
                if (it != dist.end() && it->second < best_dist) {
                    best = attached.node;
                    best_dist = it->second;
                }
            }
            if (best == nullptr) continue;  // unreachable

            const EdgeRef* hop = first_hop[best];
            ip::Route route;
            route.prefix = subnet.prefix;
            route.next_hop = hop->peer_addr;
            route.ifindex = hop->my_ifindex;
            route.metric = static_cast<std::uint32_t>(best_dist);
            route.origin = "static";
            origin->ip().routing_table().install(route);
        }
    }
}

void Internetwork::install_host_default_routes() {
    for (auto& host : hosts_) {
        const auto& edges = adjacency_[host.get()];
        if (edges.empty()) continue;
        // Prefer a gateway neighbor.
        const EdgeRef* chosen = &edges.front();
        for (const EdgeRef& edge : edges) {
            if (dynamic_cast<Gateway*>(edge.peer) != nullptr) {
                chosen = &edge;
                break;
            }
        }
        ip::Route route;
        route.prefix = util::Ipv4Prefix(util::Ipv4Address(0), 0);
        route.next_hop = chosen->peer_addr;
        route.ifindex = chosen->my_ifindex;
        route.origin = "static";
        host->ip().routing_table().install(route);
    }
}

void Internetwork::enable_dynamic_routing(const routing::DvConfig& config) {
    for (auto& gateway : gateways_) {
        gateway->enable_distance_vector(config);
    }
    install_host_default_routes();
}

std::uint64_t Internetwork::total_link_bytes() const {
    std::uint64_t total = 0;
    for (const auto& link : links_) {
        total += link->port_a().stats().bytes_sent + link->port_b().stats().bytes_sent;
    }
    for (const auto& lan : lans_) {
        total += lan->total_bytes_sent();
    }
    return total;
}

}  // namespace catenet::core
