#include "core/internetwork.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace catenet::core {

Internetwork::Internetwork(std::uint64_t seed) : rng_(seed) {}

Internetwork::Internetwork(std::uint64_t seed, sim::ParallelSimulator& psim)
    : psim_(&psim), rng_(seed) {}

void Internetwork::check_shard(std::uint32_t shard) const {
    const std::size_t count = psim_ != nullptr ? psim_->shard_count() : 1;
    if (shard >= count) {
        throw std::out_of_range("Internetwork: shard " + std::to_string(shard) +
                                " out of range (have " + std::to_string(count) + ")");
    }
}

Host& Internetwork::add_host(const std::string& name, std::uint32_t shard) {
    check_shard(shard);
    hosts_.push_back(std::make_unique<Host>(shard_sim(shard), name, rng_));
    Host& host = *hosts_.back();
    node_ptrs_.push_back(&host);
    host.set_id(store_.add_node(NodeKind::Host, shard, &host));
    registry_.register_node(name, shard,
                            {&host.ip().counters(), &host.tcp().counters(),
                             &host.udp().counters()});
    return host;
}

Gateway& Internetwork::add_gateway(const std::string& name, std::uint32_t shard) {
    check_shard(shard);
    gateways_.push_back(std::make_unique<Gateway>(shard_sim(shard), name));
    Gateway& gw = *gateways_.back();
    node_ptrs_.push_back(&gw);
    gw.set_id(store_.add_node(NodeKind::Gateway, shard, &gw));
    registry_.register_node(name, shard, {&gw.ip().counters()});
    return gw;
}

util::Ipv4Prefix Internetwork::allocate_subnet() {
    const std::uint32_t n = next_subnet_++;
    if (n > 0xffff) throw std::runtime_error("subnet space exhausted");
    return util::Ipv4Prefix(
        util::Ipv4Address(10, static_cast<std::uint8_t>(n >> 8),
                          static_cast<std::uint8_t>(n & 0xff), 0),
        24);
}

util::Ipv4Prefix Internetwork::allocate_leaf_subnet() {
    const std::uint32_t n = next_leaf_subnet_++;
    if (n > 0xffff) throw std::runtime_error("leaf subnet space exhausted");
    return util::Ipv4Prefix(
        util::Ipv4Address(11, static_cast<std::uint8_t>(n >> 8),
                          static_cast<std::uint8_t>(n & 0xff), 0),
        24);
}

std::size_t Internetwork::connect(Node& a, Node& b, const link::LinkParams& params) {
    const auto subnet = allocate_subnet();
    const util::Ipv4Address addr_a(subnet.address().value() + 1);
    const util::Ipv4Address addr_b(subnet.address().value() + 2);

    const std::uint32_t shard_a = psim_ != nullptr ? shard_of(a) : 0;
    const std::uint32_t shard_b = psim_ != nullptr ? shard_of(b) : 0;

    std::size_t index;
    std::size_t if_a, if_b;
    if (shard_a == shard_b) {
        auto link = std::make_unique<link::PointToPointLink>(
            shard_sim(shard_a), rng_, params, a.name() + "-" + b.name());
        if_a = a.ip().add_interface(link->port_a(), addr_a, subnet);
        if_b = b.ip().add_interface(link->port_b(), addr_b, subnet);
        telemetry::LinkEntry entry;
        entry.name = a.name() + "-" + b.name();
        entry.if_a = &link->port_a().stats();
        entry.if_b = &link->port_b().stats();
        entry.queue_a = [l = link.get()] { return &l->queue_a().stats(); };
        entry.queue_b = [l = link.get()] { return &l->queue_b().stats(); };
        entry.chan_a_to_b = &link->stats_a_to_b();
        entry.chan_b_to_a = &link->stats_b_to_a();
        registry_.register_link(std::move(entry));
        links_.push_back(std::move(link));
        link_shard_.push_back(shard_a);
        index = links_.size() - 1;
    } else {
        // The ends live in different shards: the wire becomes the
        // synchronization surface. Both directions register with the
        // parallel driver here, in construction order, which fixes the
        // deterministic cross-channel tie-break ranks.
        auto link = std::make_unique<link::BoundaryLink>(
            shard_sim(shard_a), shard_a, shard_sim(shard_b), shard_b, rng_, params,
            a.name() + "-" + b.name());
        psim_->register_channel(&link->channel_a_to_b());
        psim_->register_channel(&link->channel_b_to_a());
        if_a = a.ip().add_interface(link->port_a(), addr_a, subnet);
        if_b = b.ip().add_interface(link->port_b(), addr_b, subnet);
        telemetry::LinkEntry entry;
        entry.name = a.name() + "-" + b.name();
        entry.boundary = true;
        entry.if_a = &link->port_a().stats();
        entry.if_b = &link->port_b().stats();
        entry.chan_a_to_b = &link->stats_a_to_b();
        entry.chan_b_to_a = &link->stats_b_to_a();
        registry_.register_link(std::move(entry));
        boundary_links_.push_back(std::move(link));
        index = kBoundaryIndexBase + boundary_links_.size() - 1;
    }

    TopologyStore::LinkRow row;
    row.a = a.id();
    row.b = b.id();
    row.ifindex_a = static_cast<std::uint32_t>(if_a);
    row.ifindex_b = static_cast<std::uint32_t>(if_b);
    row.addr_a = addr_a;
    row.addr_b = addr_b;
    row.subnet = subnet;
    // The same formula BoundaryLink uses for its channel lookahead:
    // propagation plus clocking one byte.
    row.lookahead_ns =
        params.propagation_delay.nanos() + params.transmission_time(1).nanos();
    store_.add_link(row);
    return index;
}

std::size_t Internetwork::add_lan(const link::LanParams& params, const std::string& name,
                                  std::uint32_t shard) {
    check_shard(shard);
    lans_.push_back(std::make_unique<link::Lan>(shard_sim(shard), rng_, params, name));
    return store_.add_lan(allocate_subnet(), shard);
}

util::Ipv4Address Internetwork::attach_to_lan(Node& node, std::size_t lan_index) {
    auto& lan = *lans_.at(lan_index);
    TopologyStore::LanRow& row = store_.lan(static_cast<std::uint32_t>(lan_index));
    if (psim_ != nullptr && shard_of(node) != row.shard) {
        // A LAN's medium (contention, broadcast) is one shared state; it
        // cannot straddle shards. Cut at point-to-point links instead.
        throw std::logic_error("attach_to_lan: node " + node.name() +
                               " is in a different shard than the LAN");
    }
    const std::uint32_t host_octet = row.next_octet++;
    if (host_octet >= 255) throw std::runtime_error("LAN address space exhausted");
    const util::Ipv4Address addr(row.subnet.address().value() + host_octet);
    const std::size_t port_index = lan.port_count();
    auto& port = lan.add_port();
    const std::size_t ifindex = node.ip().add_interface(port, addr, row.subnet);
    lan.register_address(addr, port_index);
    store_.attach_to_lan(static_cast<std::uint32_t>(lan_index), node.id(),
                         static_cast<std::uint32_t>(ifindex), addr);
    return addr;
}

std::uint32_t Internetwork::add_leaf_lan(Gateway& gateway, std::uint32_t hosts,
                                         const std::string& name) {
    const std::uint32_t shard = shard_of(gateway);
    const std::uint32_t index = store_.add_leaf_lan(
        gateway.ip(), gateway.id(), allocate_leaf_subnet(), hosts,
        shard_sim(shard), name + "." + gateway.name());
    registry_.register_node(name + "." + gateway.name(), shard,
                            {&store_.leaf_counters(index)});
    return index;
}

void Internetwork::use_static_routes() {
    constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
    store_.build_csr();
    const std::size_t n = store_.node_count();
    std::vector<std::uint32_t> dist(n, kInf);
    std::vector<const Incidence*> first_hop(n, nullptr);
    std::vector<NodeId> frontier;
    std::vector<ip::Route> batch;
    TopologyStore::Attachment scratch[2];

    for (Node* origin_node : node_ptrs_) {
        const NodeId origin = origin_node->id();
        // BFS recording, for each reached node, the first edge taken from
        // `origin` on a shortest path. Neighbor order is chronological
        // (edge/attach creation order) — the deterministic tie-break.
        frontier.clear();
        frontier.push_back(origin);
        dist[origin] = 0;
        for (std::size_t head = 0; head < frontier.size(); ++head) {
            const NodeId current = frontier[head];
            for (const Incidence& edge : store_.neighbors(current)) {
                if (dist[edge.peer] != kInf) continue;
                dist[edge.peer] = dist[current] + 1;
                first_hop[edge.peer] =
                    current == origin ? &edge : first_hop[current];
                frontier.push_back(edge.peer);
            }
        }

        batch.clear();
        for (const TopologyStore::SubnetRef& ref : store_.subnets()) {
            const auto attached = store_.subnet_attachments(ref, scratch);
            // Skip subnets this node touches (connected route suffices).
            bool connected = false;
            for (const TopologyStore::Attachment& att : attached) {
                if (att.node == origin) connected = true;
            }
            if (connected) continue;

            // Nearest attached node (first wins ties, in attach order).
            NodeId best = kNoNode;
            std::uint32_t best_dist = kInf;
            for (const TopologyStore::Attachment& att : attached) {
                if (dist[att.node] < best_dist) {
                    best = att.node;
                    best_dist = dist[att.node];
                }
            }
            if (best == kNoNode) continue;  // unreachable

            const Incidence* hop = first_hop[best];
            ip::Route route;
            route.prefix = store_.subnet_prefix(ref);
            route.next_hop = hop->peer_addr;
            route.ifindex = hop->ifindex;
            route.metric = best_dist;
            route.origin = "static";
            batch.push_back(route);
        }
        origin_node->ip().routing_table().bulk_load(batch);

        // Undo only what the BFS touched: resetting the full arrays per
        // origin would be O(nodes²) across a large build.
        for (const NodeId id : frontier) {
            dist[id] = kInf;
            first_hop[id] = nullptr;
        }
    }
}

void Internetwork::install_host_default_routes() {
    store_.build_csr();
    for (auto& host : hosts_) {
        const auto edges = store_.neighbors(host->id());
        if (edges.empty()) continue;
        // Prefer a gateway neighbor.
        const Incidence* chosen = &edges.front();
        for (const Incidence& edge : edges) {
            if (store_.kind(edge.peer) == NodeKind::Gateway) {
                chosen = &edge;
                break;
            }
        }
        ip::Route route;
        route.prefix = util::Ipv4Prefix(util::Ipv4Address(0), 0);
        route.next_hop = chosen->peer_addr;
        route.ifindex = chosen->ifindex;
        route.origin = "static";
        host->ip().routing_table().install(route);
    }
}

void Internetwork::enable_dynamic_routing(const routing::DvConfig& config) {
    for (auto& gateway : gateways_) {
        gateway->enable_distance_vector(config);
    }
    install_host_default_routes();
}

std::uint64_t Internetwork::total_link_bytes() const {
    std::uint64_t total = 0;
    for (const auto& link : links_) {
        total += link->port_a().stats().bytes_sent + link->port_b().stats().bytes_sent;
    }
    for (const auto& link : boundary_links_) {
        total += link->total_bytes_sent();
    }
    for (const auto& lan : lans_) {
        total += lan->total_bytes_sent();
    }
    return total;
}

telemetry::FlightRecorder& Internetwork::attach_flight_recorder(
    std::size_t lane_capacity) {
    if (recorder_ != nullptr) return *recorder_;
    recorder_ = std::make_unique<telemetry::FlightRecorder>();
    for (Node* node : node_ptrs_) {
        const std::size_t lane = recorder_->add_lane(node->name(), lane_capacity);
        node->ip().set_recorder(&recorder_->lane(lane));
    }
    return *recorder_;
}

telemetry::GaugeSampler& Internetwork::sampler_for(std::uint32_t shard) {
    if (samplers_.size() <= shard) samplers_.resize(shard + 1);
    auto& slot = samplers_[shard];
    if (slot == nullptr) {
        slot = std::make_unique<telemetry::GaugeSampler>(shard_sim(shard));
    }
    if (gauge_period_ > sim::Time(0) && !slot->running()) {
        slot->start(gauge_period_);
    }
    return *slot;
}

void Internetwork::enable_gauge_sampling(sim::Time period) {
    gauge_period_ = period;
    if (!link_gauges_registered_) {
        link_gauges_registered_ = true;
        for (std::size_t i = 0; i < links_.size(); ++i) {
            link::PointToPointLink* l = links_[i].get();
            const std::uint32_t shard = link_shard_[i];
            telemetry::GaugeSampler& sampler = sampler_for(shard);
            // queue_depth_* counts queued plus committed-but-unstarted
            // in-flight packets so burst and per-packet engines sample the
            // same backlog (a burst drain moves a run out of the queue in
            // one step; the per-packet twin drains it one serialization at
            // a time).
            auto& qa = registry_.add_series(l->port_a().name() + ".qdepth");
            sampler.add(&qa, [l]() -> std::optional<double> {
                return static_cast<double>(l->queue_depth_a());
            });
            auto& qb = registry_.add_series(l->port_b().name() + ".qdepth");
            sampler.add(&qb, [l]() -> std::optional<double> {
                return static_cast<double>(l->queue_depth_b());
            });
            auto& ua = registry_.add_series(l->port_a().name() + ".util");
            sampler.add(&ua, telemetry::make_utilization_probe(
                                 shard_sim(shard),
                                 [l] { return l->port_a().stats().busy_ns; }));
            auto& ub = registry_.add_series(l->port_b().name() + ".util");
            sampler.add(&ub, telemetry::make_utilization_probe(
                                 shard_sim(shard),
                                 [l] { return l->port_b().stats().busy_ns; }));
        }
    }
    // Samplers created before this call (watch_tcp first) start here.
    for (auto& sampler : samplers_) {
        if (sampler != nullptr && !sampler->running()) sampler->start(period);
    }
}

void Internetwork::watch_tcp(Host& host, const std::shared_ptr<tcp::TcpSocket>& socket,
                             const std::string& label) {
    telemetry::GaugeSampler& sampler = sampler_for(psim_ != nullptr ? shard_of(host) : 0);
    auto probe = [](std::weak_ptr<tcp::TcpSocket> w, auto field) {
        return [w = std::move(w), field]() -> std::optional<double> {
            auto s = w.lock();
            if (s == nullptr) return std::nullopt;
            return field(s->stats());
        };
    };
    const std::weak_ptr<tcp::TcpSocket> weak = socket;
    sampler.add(&registry_.add_series(label + ".cwnd_bytes"),
                probe(weak, [](const tcp::TcpSocketStats& st) {
                    return static_cast<double>(st.cwnd_bytes);
                }));
    sampler.add(&registry_.add_series(label + ".flight_bytes"),
                probe(weak, [](const tcp::TcpSocketStats& st) {
                    return static_cast<double>(st.flight_bytes);
                }));
    sampler.add(&registry_.add_series(label + ".srtt_ms"),
                probe(weak, [](const tcp::TcpSocketStats& st) { return st.srtt_ms; }));
}

void Internetwork::run_for(sim::Time duration) {
    if (psim_ != nullptr) {
        psim_->run_until(psim_->now() + duration);
    } else {
        sim_.run_until(sim_.now() + duration);
    }
}

}  // namespace catenet::core
