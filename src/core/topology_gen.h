// Deterministic two-tier AS-like topology generator: a K-gateway transit
// mesh (ring plus seeded chords — every gateway reachable, average degree
// tunable) with N stub LANs of H hosts each homed onto seeded gateways.
// This is the Internet's actual large-scale shape in miniature — a small
// richly-connected core and a vast single-homed edge — and the population
// that makes the paper's scaling claim testable: the same generator
// parameters always produce byte-identical topologies (same addresses,
// same adjacency, same shard assignment), so million-node runs replay and
// A/B like the hand-wired ten-node ones.
//
// Two host realizations:
//  - compact (default): hosts are leaf entries in the TopologyStore's
//    arrays — no Host objects, one shared default-route record and one
//    counter block per LAN. The memory/bytes-per-node regime bench_scale
//    measures.
//  - materialized: real Host objects on real link::Lan segments, full
//    transports. The regime the determinism suite drives end to end.
//
// When the Internetwork is bound to a ParallelSimulator, the generator
// partitions the gateway mesh with partition_topology (LANs follow their
// home gateway), so a generated internet shards without any manual
// placement.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/internetwork.h"
#include "link/lan.h"
#include "link/point_to_point.h"

namespace catenet::core {

struct TwoTierParams {
    std::uint32_t gateways = 8;        ///< K, the transit mesh
    std::uint32_t lans = 16;           ///< N stub LANs
    std::uint32_t hosts_per_lan = 61;  ///< H, <= 253 (one /24 per LAN)
    /// Seeded chords added on top of the ring; 0 means gateways/2.
    std::uint32_t extra_chords = 0;
    /// Drives chord selection and LAN homing only — node RNG forks still
    /// come from the Internetwork's own seed, so topology shape and
    /// channel randomness are independently reproducible.
    std::uint64_t seed = 1;
    bool compact_hosts = true;
    /// Install oracle static routes (bulk-loaded) after building.
    bool install_routes = true;
    link::LinkParams trunk;   ///< gateway<->gateway links
    link::LanParams access;   ///< materialized-mode LAN segments
};

/// The pure plan: gateway-level edges and LAN homing, derived from the
/// params alone (no Internetwork needed). Exposed so tests can check
/// determinism and partitioning without materializing anything.
struct TwoTierPlan {
    std::uint32_t gateways = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> trunks;
    std::vector<std::uint32_t> lan_home;  ///< per LAN: home gateway index
    /// Shard per gateway when planned for `shards` engines (all zero for 1).
    std::vector<std::uint32_t> gateway_shard;

    /// The plan as the partitioner's input (gateway graph only).
    EdgeTable edge_table(const link::LinkParams& trunk) const;
};

/// Derives the deterministic plan; `shards` > 1 also partitions the mesh.
TwoTierPlan plan_two_tier(const TwoTierParams& params, std::size_t shards = 1);

/// What generate_two_tier built, for driving traffic and assertions.
struct TwoTierTopology {
    TwoTierPlan plan;
    std::vector<Gateway*> gateways;
    std::vector<std::uint32_t> leaf_lans;  ///< compact mode: leaf-LAN indices
    std::vector<std::size_t> lan_indices;  ///< materialized mode: LAN indices
    std::vector<Host*> hosts;              ///< materialized mode, LAN-major order
};

/// Builds the planned topology into `net` (which supplies seed, engine and
/// shard layout) and optionally installs routes. Construction order is a
/// pure function of the params, so two builds from equal params are
/// byte-identical in the TopologyStore (same signature()).
TwoTierTopology generate_two_tier(Internetwork& net, const TwoTierParams& params);

}  // namespace catenet::core
