#include "core/flow.h"

#include "util/byte_buffer.h"

namespace catenet::core {

std::uint64_t FlowKey::hash() const noexcept {
    // FNV-1a over the tuple fields.
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v, int bytes) {
        for (int i = 0; i < bytes; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(src, 4);
    mix(dst, 4);
    mix(protocol, 1);
    mix(src_port, 2);
    mix(dst_port, 2);
    mix(tos, 1);
    return h;
}

std::optional<FlowKey> classify_packet(std::span<const std::uint8_t> wire) {
    ip::DecodedDatagram d;
    try {
        if (!ip::decode_datagram(wire, d)) return std::nullopt;
    } catch (const util::DecodeError&) {
        return std::nullopt;
    }
    FlowKey key;
    key.src = d.header.src.value();
    key.dst = d.header.dst.value();
    key.protocol = d.header.protocol;
    key.tos = d.header.tos;
    // Ports are only visible on the first fragment and only for transports
    // that carry them in the first four bytes (TCP and UDP both do).
    if (d.header.fragment_offset == 0 &&
        (d.header.protocol == 6 || d.header.protocol == 17) && d.payload_length >= 4) {
        util::BufferReader r(wire.subspan(d.payload_offset, 4));
        key.src_port = r.get_u16();
        key.dst_port = r.get_u16();
    }
    return key;
}

void FlowTable::record(const FlowKey& key, std::size_t bytes, sim::Time now) {
    auto [it, inserted] = flows_.try_emplace(key);
    FlowRecord& rec = it->second;
    if (inserted) {
        rec.first_seen = now;
        ++stats_.flows_created;
    }
    ++rec.packets;
    rec.bytes += bytes;
    rec.last_seen = now;
    ++stats_.packets_accounted;
}

std::size_t FlowTable::sweep(sim::Time now) {
    std::size_t evicted = 0;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.last_seen + idle_timeout_ <= now) {
            it = flows_.erase(it);
            ++evicted;
            ++stats_.flows_expired;
        } else {
            ++it;
        }
    }
    return evicted;
}

}  // namespace catenet::core
