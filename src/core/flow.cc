#include "core/flow.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/byte_buffer.h"

namespace catenet::core {

std::uint64_t FlowKey::hash() const noexcept {
    // FNV-1a over the tuple fields.
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v, int bytes) {
        for (int i = 0; i < bytes; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(src, 4);
    mix(dst, 4);
    mix(protocol, 1);
    mix(src_port, 2);
    mix(dst_port, 2);
    mix(tos, 1);
    return h;
}

std::optional<FlowKey> classify_packet(std::span<const std::uint8_t> wire) {
    ip::DecodedDatagram d;
    try {
        if (!ip::decode_datagram(wire, d)) return std::nullopt;
    } catch (const util::DecodeError&) {
        return std::nullopt;
    }
    FlowKey key;
    key.src = d.header.src.value();
    key.dst = d.header.dst.value();
    key.protocol = d.header.protocol;
    key.tos = d.header.tos;
    // Ports are only visible on the first fragment and only for transports
    // that carry them in the first four bytes (TCP and UDP both do).
    if (d.header.fragment_offset == 0 &&
        (d.header.protocol == 6 || d.header.protocol == 17) && d.payload_length >= 4) {
        util::BufferReader r(wire.subspan(d.payload_offset, 4));
        key.src_port = r.get_u16();
        key.dst_port = r.get_u16();
    }
    return key;
}

void FlowTable::rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    shift_ = 64 - static_cast<unsigned>(std::countr_zero(capacity));
    tombstones_ = 0;
    const std::size_t mask = capacity - 1;
    for (Slot& slot : old) {
        if (slot.state != kFull) continue;
        std::size_t i = slot_index(slot.key);
        while (slots_[i].state == kFull) i = (i + 1) & mask;
        slots_[i] = std::move(slot);
    }
}

void FlowTable::record(const FlowKey& key, std::size_t bytes, sim::Time now) {
    // Grow before the probe when live + dead slots pass 3/4 load, so the
    // probe sequence below always terminates at an empty slot.
    if (slots_.empty()) {
        rehash(16);
    } else if ((size_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
        // Doubling also purges tombstones; a sweep-heavy table may shrink
        // its probe chains without growing live occupancy.
        rehash(slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = slot_index(key);
    std::size_t insert_at = SIZE_MAX;
    while (true) {
        Slot& slot = slots_[i];
        if (slot.state == kFull && slot.key == key) {
            ++slot.rec.packets;
            slot.rec.bytes += bytes;
            slot.rec.last_seen = now;
            ++stats_.packets_accounted;
            return;
        }
        if (slot.state == kTombstone && insert_at == SIZE_MAX) insert_at = i;
        if (slot.state == kEmpty) {
            if (insert_at == SIZE_MAX) {
                insert_at = i;
            } else {
                --tombstones_;  // reusing a dead slot
            }
            Slot& dest = slots_[insert_at];
            dest.key = key;
            dest.rec = FlowRecord{};
            dest.rec.first_seen = now;
            dest.rec.last_seen = now;
            dest.rec.packets = 1;
            dest.rec.bytes = bytes;
            dest.state = kFull;
            ++size_;
            ++stats_.flows_created;
            ++stats_.packets_accounted;
            return;
        }
        i = (i + 1) & mask;
    }
}

std::size_t FlowTable::sweep(sim::Time now) {
    std::size_t evicted = 0;
    for (Slot& slot : slots_) {
        if (slot.state != kFull) continue;
        if (slot.rec.last_seen + idle_timeout_ <= now) {
            slot.state = kTombstone;
            --size_;
            ++tombstones_;
            ++evicted;
            ++stats_.flows_expired;
        }
    }
    return evicted;
}

void FlowTable::clear() {
    slots_.clear();
    shift_ = 64;
    size_ = 0;
    tombstones_ = 0;
}

std::vector<std::pair<FlowKey, FlowRecord>> FlowTable::flows() const {
    std::vector<std::pair<FlowKey, FlowRecord>> out;
    out.reserve(size_);
    for (const Slot& slot : slots_) {
        if (slot.state == kFull) out.emplace_back(slot.key, slot.rec);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
}

}  // namespace catenet::core
