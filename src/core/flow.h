// Flows and soft state — the paper's "next building block" (§ Datagrams /
// future directions) and the architecture's weak goal 7 (accountability).
// A FlowKey identifies a conversation from packet headers alone; a
// FlowTable holds *soft* per-flow state in a gateway: built from passing
// traffic, evicted on idleness, and rebuildable from scratch after a
// crash with no end-to-end harm.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "ip/ipv4_header.h"
#include "sim/simulator.h"

namespace catenet::core {

struct FlowKey {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint8_t protocol = 0;
    std::uint16_t src_port = 0;  ///< zero for port-less protocols / fragments
    std::uint16_t dst_port = 0;
    std::uint8_t tos = 0;

    auto operator<=>(const FlowKey&) const = default;

    /// Stable hash for queue classifiers.
    std::uint64_t hash() const noexcept;
};

/// Extracts the flow key from a wire-format IP datagram. Non-first
/// fragments have no transport header, so their ports are zero — the same
/// ambiguity a real flow classifier faces.
std::optional<FlowKey> classify_packet(std::span<const std::uint8_t> wire);

struct FlowRecord {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    sim::Time first_seen;
    sim::Time last_seen;
};

struct FlowTableStats {
    std::uint64_t flows_created = 0;
    std::uint64_t flows_expired = 0;
    std::uint64_t packets_accounted = 0;
};

/// Per-gateway flow accounting with idle eviction. All state is
/// reconstructible from traffic: `clear()` (a crash) loses only history,
/// never correctness.
///
/// Storage is an open-addressed table (Fibonacci hashing over
/// FlowKey::hash(), linear probing, tombstone deletion — the ConnTable
/// pattern): record() is one probe sequence over a flat slot array, no
/// tree nodes, no per-flow allocation. flows() returns a key-sorted
/// snapshot so reporting order stays deterministic regardless of hash
/// layout.
class FlowTable {
public:
    explicit FlowTable(sim::Time idle_timeout = sim::seconds(30))
        : idle_timeout_(idle_timeout) {}

    void record(const FlowKey& key, std::size_t bytes, sim::Time now);

    /// Evicts flows idle past the timeout; returns how many were evicted.
    std::size_t sweep(sim::Time now);

    void clear();

    std::size_t active_flows() const noexcept { return size_; }
    /// Key-sorted snapshot of the active flows (deterministic iteration
    /// order for reports and tests — independent of hash layout).
    std::vector<std::pair<FlowKey, FlowRecord>> flows() const;
    const FlowTableStats& stats() const noexcept { return stats_; }

private:
    enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
    struct Slot {
        FlowKey key;
        FlowRecord rec;
        std::uint8_t state = kEmpty;
    };

    std::size_t slot_index(const FlowKey& key) const noexcept {
        // Fibonacci hashing: the golden-ratio multiply spreads FNV's
        // low-entropy high bits before the power-of-two shift.
        return static_cast<std::size_t>((key.hash() * 0x9E3779B97F4A7C15ull) >>
                                        shift_);
    }
    void rehash(std::size_t capacity);

    sim::Time idle_timeout_;
    std::vector<Slot> slots_;
    unsigned shift_ = 64;      ///< 64 - log2(capacity); 64 = not yet allocated
    std::size_t size_ = 0;     ///< live entries
    std::size_t tombstones_ = 0;
    FlowTableStats stats_;
};

}  // namespace catenet::core
