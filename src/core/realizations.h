// Realizations — the paper's own term: "the Internet architecture
// tolerates a wide variety of realizations", from a battlefield internet
// of packet radio and satellite to a campus/commercial internet of LANs
// and leased lines. These builders construct such divergent realizations
// with one call, so tests and benchmarks can run identical workloads over
// both and demonstrate the claim.
#pragma once

#include <memory>
#include <vector>

#include "core/internetwork.h"

namespace catenet::core {

/// A constructed realization: the internetwork plus role handles.
struct Realization {
    std::unique_ptr<Internetwork> net;
    /// End systems available for workloads, in a stable order.
    std::vector<Host*> hosts;
    /// Transit nodes, for failure injection.
    std::vector<Gateway*> gateways;
    /// Human-readable description of what was built.
    std::string description;
};

/// The military field realization the architecture was born for: mobile
/// units on lossy, jittery packet radio; a field headquarters; a satellite
/// trunk to rear headquarters; minimal wired infrastructure; dynamic
/// routing throughout (units appear and disappear).
///   hosts:    [0]=field unit A, [1]=field unit B, [2]=rear command
///   gateways: [0]=field relay, [1]=uplink, [2]=rear gateway
Realization military_field_realization(std::uint64_t seed);

/// The commercial realization the Internet grew into: two office LANs,
/// a leased-line WAN triangle with a redundant path, static-looking
/// (operator-managed) dynamic routing.
///   hosts:    [0]=office A desk, [1]=office B desk, [2]=data-center server
///   gateways: [0]=office A border, [1]=office B border, [2]=dc border,
///             [3]=wan hub
Realization commercial_realization(std::uint64_t seed);

}  // namespace catenet::core
