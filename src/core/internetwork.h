// The Internetwork builder: constructs a "realization" of the
// architecture in the paper's sense — a concrete set of hosts, gateways
// and heterogeneous networks wired together — assigns addressing,
// installs routing (oracle static routes or the real protocols), and
// injects failures. Every experiment and example builds its topology
// through this class.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/node.h"
#include "link/lan.h"
#include "link/point_to_point.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace catenet::core {

class Internetwork {
public:
    explicit Internetwork(std::uint64_t seed);
    Internetwork(const Internetwork&) = delete;
    Internetwork& operator=(const Internetwork&) = delete;

    sim::Simulator& sim() noexcept { return sim_; }
    util::Rng& rng() noexcept { return rng_; }

    // --- topology ------------------------------------------------------
    Host& add_host(const std::string& name);
    Gateway& add_gateway(const std::string& name);

    /// Connects two nodes with a point-to-point link; allocates a /24 and
    /// binds .1 (a's side) and .2 (b's side). Returns the link index.
    std::size_t connect(Node& a, Node& b, const link::LinkParams& params);

    /// Creates a shared LAN segment; returns its index.
    std::size_t add_lan(const link::LanParams& params, const std::string& name = "lan");

    /// Attaches a node to a LAN; returns the address it was given.
    util::Ipv4Address attach_to_lan(Node& node, std::size_t lan_index);

    // --- routing --------------------------------------------------------
    /// Installs oracle shortest-path static routes everywhere (topology
    /// known to the operator; does not adapt to failures).
    void use_static_routes();

    /// Gives every host a default route via an adjacent gateway (or any
    /// neighbor if no gateway is adjacent).
    void install_host_default_routes();

    /// Starts distance-vector routing on every gateway and gives hosts
    /// default routes: the self-managing configuration (goals 1 and 4).
    void enable_dynamic_routing(const routing::DvConfig& config = {});

    // --- failure injection ------------------------------------------------
    void fail_link(std::size_t link_index) { links_.at(link_index)->set_up(false); }
    void restore_link(std::size_t link_index) { links_.at(link_index)->set_up(true); }

    // --- access & metrics ----------------------------------------------
    link::PointToPointLink& link(std::size_t i) { return *links_.at(i); }
    link::Lan& lan(std::size_t i) { return *lans_.at(i); }
    std::size_t link_count() const noexcept { return links_.size(); }
    const std::vector<Node*>& nodes() const noexcept { return node_ptrs_; }

    /// Total bytes clocked onto all wires — the "byte-hops" cost metric
    /// for the E5 experiments.
    std::uint64_t total_link_bytes() const;

    /// Runs the simulation for `duration` of simulated time.
    void run_for(sim::Time duration) { sim_.run_until(sim_.now() + duration); }

private:
    struct EdgeRef {
        Node* peer;
        std::size_t my_ifindex;
        util::Ipv4Address peer_addr;
    };
    struct Attachment {
        Node* node;
        std::size_t ifindex;
        util::Ipv4Address addr;
    };
    struct Subnet {
        util::Ipv4Prefix prefix;
        std::vector<Attachment> attached;
    };

    util::Ipv4Prefix allocate_subnet();

    sim::Simulator sim_;
    util::Rng rng_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<std::unique_ptr<Gateway>> gateways_;
    std::vector<Node*> node_ptrs_;
    std::vector<std::unique_ptr<link::PointToPointLink>> links_;
    std::vector<std::unique_ptr<link::Lan>> lans_;
    std::vector<std::size_t> lan_next_host_;  ///< next address octet per LAN
    std::map<std::size_t, util::Ipv4Prefix> lan_subnet_;
    std::map<Node*, std::vector<EdgeRef>> adjacency_;
    std::vector<Subnet> subnets_;
    std::uint32_t next_subnet_ = 1;
};

}  // namespace catenet::core
